#pragma once

// Binary (Patricia-style, one bit per level) prefix trie keyed by
// Ipv4Prefix, with longest-prefix-match lookup.
//
// Used in two hot paths:
//  - resolving a FIB (set of prefix routes) for an address, and
//  - computing the "effective match" of a forwarding rule in the data plane
//    model: the packets a rule actually sees are its prefix minus the union
//    of all strictly longer prefixes below it (LPM shadowing).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace rcfg::net {

/// A map from Ipv4Prefix to V supporting exact insert/erase/find, LPM
/// lookup, and traversal of descendants (strictly longer covered prefixes).
template <class V>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Deep copies: snapshot/fork of a data-plane model needs value-semantic
  /// device state, so the trie clones its node structure (and V values).
  PrefixTrie(const PrefixTrie& other)
      : root_(clone(other.root_.get())), size_(other.size_) {}
  PrefixTrie& operator=(const PrefixTrie& other) {
    if (this != &other) {
      root_ = clone(other.root_.get());
      size_ = other.size_;
    }
    return *this;
  }
  PrefixTrie(PrefixTrie&&) noexcept = default;
  PrefixTrie& operator=(PrefixTrie&&) noexcept = default;

  /// Insert or overwrite the value at `p`. Returns true if newly inserted.
  bool insert(Ipv4Prefix p, V value) {
    Node* n = descend_create(p);
    const bool fresh = !n->value.has_value();
    n->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Erase the value at exactly `p`. Returns true if a value was removed.
  /// (Nodes are kept; the trie is small relative to its lifetime and
  /// erase/re-insert cycles are frequent in incremental updates.)
  bool erase(Ipv4Prefix p) {
    Node* n = descend(p);
    if (n == nullptr || !n->value.has_value()) return false;
    n->value.reset();
    --size_;
    return true;
  }

  /// Exact-match find; nullptr if absent.
  const V* find(Ipv4Prefix p) const {
    const Node* n = descend(p);
    return (n != nullptr && n->value.has_value()) ? &*n->value : nullptr;
  }

  V* find(Ipv4Prefix p) {
    Node* n = descend(p);
    return (n != nullptr && n->value.has_value()) ? &*n->value : nullptr;
  }

  /// Longest-prefix-match for an address; nullopt if nothing matches.
  std::optional<std::pair<Ipv4Prefix, const V*>> lookup(Ipv4Addr a) const {
    const Node* n = root_.get();
    const Node* best = n->value.has_value() ? n : nullptr;
    std::uint8_t best_len = 0;
    std::uint8_t len = 0;
    while (len < 32) {
      const unsigned bit = (a.bits() >> (31 - len)) & 1u;
      const Node* child = n->children[bit].get();
      if (child == nullptr) break;
      n = child;
      ++len;
      if (n->value.has_value()) {
        best = n;
        best_len = len;
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Ipv4Prefix{a, best_len}, &*best->value);
  }

  /// Visit every (prefix, value) strictly longer than and covered by `p`.
  template <class Fn>
  void visit_descendants(Ipv4Prefix p, Fn&& fn) const {
    const Node* n = descend(p);
    if (n == nullptr) return;
    visit_subtree(n, p, /*include_self=*/false, fn);
  }

  /// Visit every (prefix, value) covering `p`, shortest first, including an
  /// entry at `p` itself if present.
  template <class Fn>
  void visit_ancestors(Ipv4Prefix p, Fn&& fn) const {
    const Node* n = root_.get();
    if (n->value.has_value()) fn(Ipv4Prefix{Ipv4Addr{0}, 0}, *n->value);
    for (std::uint8_t len = 1; len <= p.length(); ++len) {
      const unsigned bit = (p.address().bits() >> (32 - len)) & 1u;
      n = n->children[bit].get();
      if (n == nullptr) return;
      if (n->value.has_value()) fn(Ipv4Prefix{p.address(), len}, *n->value);
    }
  }

  /// Visit every entry in the trie.
  template <class Fn>
  void visit_all(Fn&& fn) const {
    visit_subtree(root_.get(), Ipv4Prefix{Ipv4Addr{0}, 0}, /*include_self=*/true, fn);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<V> value;
    std::unique_ptr<Node> children[2];
  };

  const Node* descend(Ipv4Prefix p) const {
    const Node* n = root_.get();
    for (std::uint8_t depth = 0; depth < p.length(); ++depth) {
      const unsigned bit = (p.address().bits() >> (31 - depth)) & 1u;
      n = n->children[bit].get();
      if (n == nullptr) return nullptr;
    }
    return n;
  }

  Node* descend(Ipv4Prefix p) {
    return const_cast<Node*>(static_cast<const PrefixTrie*>(this)->descend(p));
  }

  Node* descend_create(Ipv4Prefix p) {
    Node* n = root_.get();
    for (std::uint8_t depth = 0; depth < p.length(); ++depth) {
      const unsigned bit = (p.address().bits() >> (31 - depth)) & 1u;
      if (!n->children[bit]) n->children[bit] = std::make_unique<Node>();
      n = n->children[bit].get();
    }
    return n;
  }

  static std::unique_ptr<Node> clone(const Node* n) {
    auto copy = std::make_unique<Node>();
    copy->value = n->value;
    for (unsigned bit = 0; bit < 2; ++bit) {
      if (n->children[bit]) copy->children[bit] = clone(n->children[bit].get());
    }
    return copy;
  }

  template <class Fn>
  static void visit_subtree(const Node* n, Ipv4Prefix at, bool include_self, Fn& fn) {
    if (n->value.has_value() && include_self) fn(at, *n->value);
    if (at.length() == 32) return;
    for (unsigned bit = 0; bit < 2; ++bit) {
      const Node* child = n->children[bit].get();
      if (child == nullptr) continue;
      const std::uint32_t child_bits =
          at.address().bits() | (bit << (31 - at.length()));
      const Ipv4Prefix child_prefix{Ipv4Addr{child_bits},
                                    static_cast<std::uint8_t>(at.length() + 1)};
      visit_subtree(child, child_prefix, /*include_self=*/true, fn);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace rcfg::net
