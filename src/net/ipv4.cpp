#include "net/ipv4.h"

#include "core/strings.h"

namespace rcfg::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) noexcept {
  std::uint32_t bits = 0;
  int octets = 0;
  std::size_t i = 0;
  while (i <= s.size()) {
    std::size_t start = i;
    while (i < s.size() && s[i] != '.') ++i;
    std::uint64_t octet = 0;
    if (!core::parse_u64(s.substr(start, i - start), octet) || octet > 255) return std::nullopt;
    bits = (bits << 8) | static_cast<std::uint32_t>(octet);
    ++octets;
    if (i == s.size()) break;
    ++i;  // skip '.'
    if (i == s.size()) return std::nullopt;  // trailing dot
  }
  if (octets != 4) return std::nullopt;
  return Ipv4Addr{bits};
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((bits_ >> shift) & 0xff);
    if (shift > 0) out += '.';
  }
  return out;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view s) noexcept {
  const std::size_t slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  std::uint64_t len = 0;
  if (!core::parse_u64(s.substr(slash + 1), len) || len > 32) return std::nullopt;
  return Ipv4Prefix{*addr, static_cast<std::uint8_t>(len)};
}

std::string Ipv4Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace rcfg::net
