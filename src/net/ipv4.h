#pragma once

// IPv4 addresses and CIDR prefixes.
//
// Everything downstream (configs, RIBs, forwarding rules, the BDD packet
// model) keys on these two value types; they are trivially copyable and
// totally ordered so they can live in sorted and hashed containers alike.

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace rcfg::net {

/// An IPv4 address as a host-order 32-bit integer value type.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t bits) noexcept : bits_(bits) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t bits() const noexcept { return bits_; }

  /// Parse dotted-quad "a.b.c.d"; nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view s) noexcept;

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

 private:
  std::uint32_t bits_ = 0;
};

/// A CIDR prefix: address plus mask length, canonicalized so that host bits
/// below the mask are zero (enforced by the constructor).
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() noexcept = default;

  /// Builds the canonical prefix: bits below `len` are masked off.
  constexpr Ipv4Prefix(Ipv4Addr addr, std::uint8_t len) noexcept
      : addr_(addr.bits() & mask_for(len)), len_(len) {}

  constexpr Ipv4Addr address() const noexcept { return addr_; }
  constexpr std::uint8_t length() const noexcept { return len_; }

  /// Network mask for a given prefix length (0 => 0, 32 => all-ones).
  static constexpr std::uint32_t mask_for(std::uint8_t len) noexcept {
    return len == 0 ? 0u : ~std::uint32_t{0} << (32u - len);
  }

  constexpr std::uint32_t mask() const noexcept { return mask_for(len_); }

  constexpr bool contains(Ipv4Addr a) const noexcept {
    return (a.bits() & mask()) == addr_.bits();
  }

  /// True if this prefix contains `other` entirely (is equal or shorter).
  constexpr bool contains(Ipv4Prefix other) const noexcept {
    return len_ <= other.len_ && contains(other.addr_);
  }

  /// True if the two prefixes share any address.
  constexpr bool overlaps(Ipv4Prefix other) const noexcept {
    return contains(other) || other.contains(*this);
  }

  /// Lowest and highest addresses covered.
  constexpr Ipv4Addr first() const noexcept { return addr_; }
  constexpr Ipv4Addr last() const noexcept { return Ipv4Addr{addr_.bits() | ~mask()}; }

  /// Parse "a.b.c.d/len"; nullopt on malformed input or len > 32.
  static std::optional<Ipv4Prefix> parse(std::string_view s) noexcept;

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Prefix, Ipv4Prefix) noexcept = default;

 private:
  Ipv4Addr addr_{};
  std::uint8_t len_ = 0;
};

/// The default route 0.0.0.0/0.
inline constexpr Ipv4Prefix kDefaultRoute{Ipv4Addr{0}, 0};

}  // namespace rcfg::net

template <>
struct std::hash<rcfg::net::Ipv4Addr> {
  std::size_t operator()(rcfg::net::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};

template <>
struct std::hash<rcfg::net::Ipv4Prefix> {
  std::size_t operator()(rcfg::net::Ipv4Prefix p) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{p.address().bits()} << 8) | p.length());
  }
};
