#include <functional>
#include "verify/checker.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <type_traits>

namespace rcfg::verify {

namespace {

// EcState::pairs elements and pair_index_ keys pack (src << 32) | dst (see
// pair_key in checker.h). Like the model's move_key, widening NodeId past
// 32 bits would make the shift/mask below silently alias distinct pairs;
// pin the layout where the unpacking lives so such a change fails loudly.
static_assert(sizeof(topo::NodeId) == 4 && std::is_unsigned_v<topo::NodeId>,
              "node-pair keys pack two 32-bit NodeIds into one 64-bit key");
static_assert(sizeof(std::uint64_t) == 2 * sizeof(topo::NodeId),
              "pair unpacking assumes NodeId occupies exactly half the key");

std::pair<topo::NodeId, topo::NodeId> unpack_pair(std::uint64_t p) {
  return {static_cast<topo::NodeId>(p >> 32), static_cast<topo::NodeId>(p & 0xffffffffu)};
}

}  // namespace

IncrementalChecker::IncrementalChecker(const topo::Topology& topo, dpm::PacketSpace& space,
                                       dpm::EcManager& ecs, const dpm::NetworkModel& model,
                                       CheckerOptions options)
    : topo_(topo), space_(space), ecs_(ecs), model_(model), pool_(options.threads) {
  state_.resize(ecs_.ec_count());
  ecs_.subscribe([this](const dpm::EcManager::Split& s) { on_split(s); });
  ecs_.subscribe_remap([this](const dpm::EcRemap& r) { on_remap(r); });
}

void IncrementalChecker::on_remap(const dpm::EcRemap& remap) {
  // Per-EC state: every member of a merged group has the same delivered
  // pairs and flags (that is what made the group mergeable), so keeping
  // the last member seen is keeping them all.
  std::vector<EcState> state(remap.new_count);
  const std::size_t old_n = std::min(state_.size(), remap.forward.size());
  for (dpm::EcId ec = 0; ec < old_n; ++ec) {
    state[remap.forward[ec]] = std::move(state_[ec]);
  }
  state_ = std::move(state);

  // Derived indexes rebuild from the translated state.
  pair_index_.clear();
  for (dpm::EcId ec = 0; ec < state_.size(); ++ec) {
    for (const std::uint64_t p : state_[ec].pairs) pair_index_[p].insert(ec);
  }
  const auto translate_set = [&](std::unordered_set<dpm::EcId>& set) {
    std::unordered_set<dpm::EcId> out;
    out.reserve(set.size());
    for (const dpm::EcId ec : set) out.insert(remap.forward[ec]);
    set = std::move(out);
  };
  translate_set(looping_);
  translate_set(blackholed_);

  // Policy registrations: merge per-EC policy lists onto the new ids.
  std::unordered_map<dpm::EcId, std::vector<PolicyId>> by_ec;
  for (auto& [ec, ids] : policies_by_ec_) {
    std::vector<PolicyId>& dst = by_ec[remap.forward[ec]];
    dst.insert(dst.end(), ids.begin(), ids.end());
  }
  for (auto& [ec, ids] : by_ec) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  policies_by_ec_ = std::move(by_ec);
  for (std::vector<dpm::EcId>& ecs : policy_ecs_) {
    for (dpm::EcId& ec : ecs) ec = remap.forward[ec];
    std::sort(ecs.begin(), ecs.end());
    ecs.erase(std::unique(ecs.begin(), ecs.end()), ecs.end());
  }
  // satisfied_ is untouched: verdicts are invariant under renaming.
}

void IncrementalChecker::on_split(const dpm::EcManager::Split& s) {
  // A split renames packets without changing behaviour: the child starts
  // with a copy of the parent's state, everywhere the parent is indexed.
  if (state_.size() <= s.child) state_.resize(s.child + 1);
  state_[s.child] = state_[s.parent];
  for (const std::uint64_t p : state_[s.child].pairs) pair_index_[p].insert(s.child);
  if (looping_.contains(s.parent)) looping_.insert(s.child);
  if (blackholed_.contains(s.parent)) blackholed_.insert(s.child);
  auto it = policies_by_ec_.find(s.parent);
  if (it != policies_by_ec_.end()) {
    policies_by_ec_[s.child] = it->second;
    for (PolicyId id : it->second) policy_ecs_[id].push_back(s.child);
  }
}

IncrementalChecker::Graph IncrementalChecker::build_graph(dpm::EcId ec) const {
  const std::size_t n = topo_.node_count();
  Graph g;
  g.next.resize(n);
  g.delivers.assign(n, false);
  g.drops.assign(n, false);
  for (topo::NodeId node = 0; node < n; ++node) {
    const dpm::PortKey& port = model_.port_of(node, ec);
    switch (port.action) {
      case routing::FibAction::kDeliver:
        g.delivers[node] = true;
        break;
      case routing::FibAction::kDrop:
        g.drops[node] = true;
        break;
      case routing::FibAction::kForward:
        for (topo::IfaceId iface : port.ifaces) {
          const auto& ifc = topo_.iface(iface);
          if (!ifc.link) continue;  // dangling egress: traffic dies
          const topo::NodeId peer = topo_.peer(*ifc.link, node);
          const topo::IfaceId peer_iface = topo_.peer_iface(*ifc.link, node);
          // Egress ACL on this side, ingress ACL on the peer side.
          if (!model_.permits(node, iface, /*inbound=*/false, ec)) continue;
          if (!model_.permits(peer, peer_iface, /*inbound=*/true, ec)) continue;
          g.next[node].push_back(peer);
        }
        break;
    }
  }
  return g;
}

std::vector<bool> IncrementalChecker::upstream_of(const Graph& g,
                                                  const std::vector<topo::NodeId>& roots) const {
  const std::size_t n = topo_.node_count();
  std::vector<std::vector<topo::NodeId>> prev(n);
  for (topo::NodeId u = 0; u < n; ++u) {
    for (topo::NodeId v : g.next[u]) prev[v].push_back(u);
  }
  std::vector<bool> seen(n, false);
  std::deque<topo::NodeId> q;
  for (topo::NodeId r : roots) {
    if (!seen[r]) {
      seen[r] = true;
      q.push_back(r);
    }
  }
  while (!q.empty()) {
    const topo::NodeId v = q.front();
    q.pop_front();
    for (topo::NodeId u : prev[v]) {
      if (!seen[u]) {
        seen[u] = true;
        q.push_back(u);
      }
    }
  }
  return seen;
}

IncrementalChecker::EcState IncrementalChecker::compute_state(const Graph& g) const {
  const std::size_t n = topo_.node_count();
  EcState st;

  // Reverse adjacency for delivered-pair computation.
  std::vector<std::vector<topo::NodeId>> prev(n);
  for (topo::NodeId u = 0; u < n; ++u) {
    for (topo::NodeId v : g.next[u]) prev[v].push_back(u);
  }

  // (s, d) delivered pairs: reverse BFS from every delivering node. This is
  // "existential" reachability over ECMP branches; loop/blackhole flags
  // account for the branches that do not make it.
  std::vector<bool> seen(n);
  for (topo::NodeId d = 0; d < n; ++d) {
    if (!g.delivers[d]) continue;
    std::fill(seen.begin(), seen.end(), false);
    std::deque<topo::NodeId> q{d};
    seen[d] = true;
    while (!q.empty()) {
      const topo::NodeId v = q.front();
      q.pop_front();
      if (v != d) st.pairs.insert(pair_key(v, d));
      for (topo::NodeId u : prev[v]) {
        if (!seen[u]) {
          seen[u] = true;
          q.push_back(u);
        }
      }
    }
  }

  // Loop: any cycle in the forwarding graph (iterative DFS, three colors).
  {
    std::vector<std::uint8_t> color(n, 0);
    for (topo::NodeId root = 0; root < n && !st.has_loop; ++root) {
      if (color[root] != 0) continue;
      std::vector<std::pair<topo::NodeId, std::size_t>> stack{{root, 0}};
      color[root] = 1;
      while (!stack.empty() && !st.has_loop) {
        auto& [u, idx] = stack.back();
        if (idx < g.next[u].size()) {
          const topo::NodeId v = g.next[u][idx++];
          if (color[v] == 1) {
            st.has_loop = true;
          } else if (color[v] == 0) {
            color[v] = 1;
            stack.push_back({v, 0});
          }
        } else {
          color[u] = 2;
          stack.pop_back();
        }
      }
    }
  }

  // Blackhole: some node forwards this EC into a node that drops it —
  // traffic in flight dies. (Nodes that merely lack a route and never
  // receive the EC's traffic do not count.)
  for (topo::NodeId u = 0; u < n && !st.has_blackhole; ++u) {
    for (topo::NodeId v : g.next[u]) {
      if (g.drops[v]) {
        st.has_blackhole = true;
        break;
      }
    }
  }

  return st;
}

void IncrementalChecker::apply_state(dpm::EcId ec, EcState next,
                                     const std::vector<bool>& near_moved, CheckResult& out,
                                     std::unordered_set<PolicyId>& dirty_policies) {
  EcState& cur = state_[ec];

  // Diff delivered pairs against the index.
  for (const std::uint64_t p : cur.pairs) {
    if (!next.pairs.contains(p)) {
      auto it = pair_index_.find(p);
      if (it != pair_index_.end()) {
        it->second.erase(ec);
        if (it->second.empty()) pair_index_.erase(it);
      }
      out.changed_pairs.push_back(unpack_pair(p));
      out.affected_pairs.push_back(unpack_pair(p));
    }
  }
  for (const std::uint64_t p : next.pairs) {
    if (!cur.pairs.contains(p)) {
      pair_index_[p].insert(ec);
      out.changed_pairs.push_back(unpack_pair(p));
      out.affected_pairs.push_back(unpack_pair(p));
    } else if (!near_moved.empty() && near_moved[unpack_pair(p).first]) {
      // Membership survived, but the source sits upstream of a device whose
      // forwarding changed for this EC: its path was modified, so the pair
      // counts as affected (paper §4.2's pair-update step).
      out.affected_pairs.push_back(unpack_pair(p));
    }
  }

  if (next.has_loop != cur.has_loop) {
    if (next.has_loop) {
      looping_.insert(ec);
      out.loops_begun.push_back(ec);
    } else {
      looping_.erase(ec);
      out.loops_ended.push_back(ec);
    }
  }
  if (next.has_blackhole != cur.has_blackhole) {
    if (next.has_blackhole) {
      blackholed_.insert(ec);
      out.blackholes_begun.push_back(ec);
    } else {
      blackholed_.erase(ec);
      out.blackholes_ended.push_back(ec);
    }
  }

  cur = std::move(next);

  // Only policies registered on this EC need a second look (paper §4.2).
  auto it = policies_by_ec_.find(ec);
  if (it != policies_by_ec_.end()) {
    dirty_policies.insert(it->second.begin(), it->second.end());
  }
}

CheckResult IncrementalChecker::process(const dpm::ModelDelta& delta) {
  CheckResult out;
  if (state_.size() < ecs_.ec_count()) state_.resize(ecs_.ec_count());

  // The batch as independent per-EC work units, in canonical EC-id order.
  const std::vector<dpm::ModelDelta::EcRecord> tasks = delta.per_ec();

  // Compute phase — shardable: each task's new state is a pure function of
  // the (already updated, now read-only) model, written to its own slot.
  struct Recomputed {
    EcState next;
    std::vector<bool> near_moved;
  };
  std::vector<Recomputed> computed(tasks.size());
  const auto compute_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const Graph g = build_graph(tasks[i].ec);
      computed[i].near_moved = tasks[i].moved_devices.empty()
                                   ? std::vector<bool>{}
                                   : upstream_of(g, tasks[i].moved_devices);
      computed[i].next = compute_state(g);
    }
  };
  const std::size_t shards =
      std::min<std::size_t>(pool_.size(), tasks.empty() ? 1 : tasks.size());
  out.parallel.shards = static_cast<unsigned>(shards);
  out.parallel.shard_ms.assign(shards, 0.0);
  pool_.run(shards, [&](std::size_t s) {
    const auto t0 = std::chrono::steady_clock::now();
    compute_range(tasks.size() * s / shards, tasks.size() * (s + 1) / shards);
    out.parallel.shard_ms[s] =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
  });

  // Merge phase — deterministic: tasks are EC-sorted and applied on this
  // thread only, so the report is bit-identical for every thread count.
  std::unordered_set<PolicyId> dirty_policies;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out.affected_ecs.push_back(tasks[i].ec);
    apply_state(tasks[i].ec, std::move(computed[i].next), computed[i].near_moved, out,
                dirty_policies);
  }

  // Deduplicate pair lists (several ECs can touch the same pair).
  for (auto* pairs : {&out.affected_pairs, &out.changed_pairs}) {
    std::sort(pairs->begin(), pairs->end());
    pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
  }

  for (const PolicyId id : dirty_policies) {
    const bool now = evaluate(policies_[id]);
    if (now != satisfied_[id]) {
      satisfied_[id] = now;
      out.events.push_back(PolicyEvent{id, now});
    }
  }
  std::sort(out.events.begin(), out.events.end(),
            [](const PolicyEvent& a, const PolicyEvent& b) { return a.id < b.id; });
  return out;
}

bool IncrementalChecker::evaluate(const Policy& p) const {
  for (const dpm::EcId ec : policy_ecs_[p.id]) {
    const bool delivered = state_[ec].pairs.contains(pair_key(p.src, p.dst));
    switch (p.kind) {
      case PolicyKind::kReachability:
        if (!delivered) return false;
        break;
      case PolicyKind::kIsolation:
        if (delivered) return false;
        break;
      case PolicyKind::kWaypoint:
        if (delivered && !waypoint_ok(p, ec)) return false;
        break;
    }
  }
  return true;
}

bool IncrementalChecker::waypoint_ok(const Policy& p, dpm::EcId ec) const {
  // Violated iff a delivering path s -> d exists that avoids `via`:
  // reverse-reach d in the graph with `via` removed and test s.
  if (p.src == p.via || p.dst == p.via) return true;
  const Graph g = build_graph(ec);
  const std::size_t n = topo_.node_count();
  if (!g.delivers[p.dst]) return true;  // nothing delivered, nothing to check
  std::vector<std::vector<topo::NodeId>> prev(n);
  for (topo::NodeId u = 0; u < n; ++u) {
    if (u == p.via) continue;
    for (topo::NodeId v : g.next[u]) {
      if (v != p.via) prev[v].push_back(u);
    }
  }
  std::vector<bool> seen(n);
  std::deque<topo::NodeId> q{p.dst};
  seen[p.dst] = true;
  while (!q.empty()) {
    const topo::NodeId v = q.front();
    q.pop_front();
    if (v == p.src) return false;  // bypass found
    for (topo::NodeId u : prev[v]) {
      if (!seen[u]) {
        seen[u] = true;
        q.push_back(u);
      }
    }
  }
  return true;
}

namespace {
/// Shared policy-registration plumbing.
PolicyId register_policy(std::vector<Policy>& policies, std::vector<bool>& satisfied,
                         std::vector<std::vector<dpm::EcId>>& policy_ecs, Policy p) {
  p.id = static_cast<PolicyId>(policies.size());
  policies.push_back(p);
  satisfied.push_back(true);
  policy_ecs.emplace_back();
  return p.id;
}
}  // namespace

PolicyId IncrementalChecker::add_reachability(topo::NodeId src, topo::NodeId dst,
                                              dpm::BddRef packets, std::string name) {
  Policy p;
  p.kind = PolicyKind::kReachability;
  p.src = src;
  p.dst = dst;
  p.packets = packets;
  p.name = std::move(name);
  const PolicyId id = register_policy(policies_, satisfied_, policy_ecs_, p);
  ecs_.register_predicate(packets);  // splits fire on_split before returning
  if (state_.size() < ecs_.ec_count()) state_.resize(ecs_.ec_count());
  for (const dpm::EcId ec : ecs_.ecs_in(packets)) {
    policies_by_ec_[ec].push_back(id);
    policy_ecs_[id].push_back(ec);
  }
  satisfied_[id] = evaluate(policies_[id]);
  return id;
}

PolicyId IncrementalChecker::add_isolation(topo::NodeId src, topo::NodeId dst,
                                           dpm::BddRef packets, std::string name) {
  const PolicyId id = add_reachability(src, dst, packets, std::move(name));
  policies_[id].kind = PolicyKind::kIsolation;
  satisfied_[id] = evaluate(policies_[id]);
  return id;
}

PolicyId IncrementalChecker::add_waypoint(topo::NodeId src, topo::NodeId dst, topo::NodeId via,
                                          dpm::BddRef packets, std::string name) {
  const PolicyId id = add_reachability(src, dst, packets, std::move(name));
  policies_[id].kind = PolicyKind::kWaypoint;
  policies_[id].via = via;
  satisfied_[id] = evaluate(policies_[id]);
  return id;
}

bool IncrementalChecker::reachable(topo::NodeId src, topo::NodeId dst, dpm::EcId ec) const {
  return ec < state_.size() && state_[ec].pairs.contains(pair_key(src, dst));
}

std::vector<std::pair<topo::NodeId, topo::NodeId>> IncrementalChecker::reachable_pairs() const {
  std::vector<std::pair<topo::NodeId, topo::NodeId>> out;
  out.reserve(pair_index_.size());
  for (const auto& [p, ecs] : pair_index_) out.push_back(unpack_pair(p));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<topo::NodeId, topo::NodeId>> IncrementalChecker::delivered_pairs(
    dpm::EcId ec) const {
  std::vector<std::pair<topo::NodeId, topo::NodeId>> out;
  if (ec >= state_.size()) return out;
  out.reserve(state_[ec].pairs.size());
  for (const std::uint64_t p : state_[ec].pairs) out.push_back(unpack_pair(p));
  std::sort(out.begin(), out.end());
  return out;
}

IncrementalChecker::Snapshot IncrementalChecker::snapshot() const {
  return Snapshot{state_,    pair_index_, looping_,        blackholed_,
                  policies_, satisfied_,  policies_by_ec_, policy_ecs_};
}

void IncrementalChecker::restore(const Snapshot& snap) {
  state_ = snap.state;
  pair_index_ = snap.pair_index;
  looping_ = snap.looping;
  blackholed_ = snap.blackholed;
  policies_ = snap.policies;
  satisfied_ = snap.satisfied;
  policies_by_ec_ = snap.policies_by_ec;
  policy_ecs_ = snap.policy_ecs;
}

std::vector<dpm::EcId> IncrementalChecker::ecs_between(topo::NodeId src,
                                                       topo::NodeId dst) const {
  auto it = pair_index_.find(pair_key(src, dst));
  if (it == pair_index_.end()) return {};
  std::vector<dpm::EcId> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<topo::NodeId>> IncrementalChecker::trace(topo::NodeId src, dpm::EcId ec,
                                                                 std::size_t limit) const {
  const Graph g = build_graph(ec);
  std::vector<std::vector<topo::NodeId>> paths;
  std::vector<topo::NodeId> cur{src};
  std::function<void(topo::NodeId)> dfs = [&](topo::NodeId u) {
    if (paths.size() >= limit) return;
    if (g.delivers[u] || g.drops[u] || g.next[u].empty()) {
      paths.push_back(cur);
      return;
    }
    for (topo::NodeId v : g.next[u]) {
      if (std::find(cur.begin(), cur.end(), v) != cur.end()) {
        // Loop: record the truncated path once.
        auto looped = cur;
        looped.push_back(v);
        paths.push_back(std::move(looped));
        continue;
      }
      cur.push_back(v);
      dfs(v);
      cur.pop_back();
    }
  };
  dfs(src);
  return paths;
}

}  // namespace rcfg::verify
