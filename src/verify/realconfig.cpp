#include "verify/realconfig.h"

#include <stdexcept>

namespace rcfg::verify {

namespace {
double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}
}  // namespace

RealConfig::RealConfig(const topo::Topology& topo, RealConfigOptions options)
    : topo_(topo),
      options_(options),
      generator_(topo, options.generator),
      space_(options.packet_space),
      ecs_(space_),
      model_(space_, ecs_, topo.node_count()),
      checker_(topo, space_, ecs_, model_, CheckerOptions{options.threads}) {
  if (options_.provenance) generator_.set_provenance(true);
}

RealConfig::Report RealConfig::apply(const config::NetworkConfig& cfg) {
  if (poisoned_) {
    throw std::logic_error(
        "RealConfig::apply called on a poisoned instance: a previous apply() threw "
        "NonterminationError, leaving the pipeline state inconsistent; build a fresh "
        "RealConfig from the last known-good configuration instead");
  }
  Report report;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    report.dataplane = generator_.apply(cfg);
  } catch (const dd::NonterminationError&) {
    poisoned_ = true;
    throw;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (options_.provenance) report.changed_devices = generator_.last_changed_devices();
  report.model = model_.apply_batch(report.dataplane, options_.update_order);
  const auto t2 = std::chrono::steady_clock::now();
  report.check = checker_.process(report.model);
  const auto t3 = std::chrono::steady_clock::now();
  report.generate_ms = ms_between(t0, t1);
  report.model_ms = ms_between(t1, t2);
  report.check_ms = ms_between(t2, t3);
  if (options_.reclamation.enabled) maybe_reclaim(report);
  report.ec_count = ecs_.ec_count();
  report.bdd_nodes = space_.live_nodes();
  return report;
}

void RealConfig::maybe_reclaim(Report& report) {
  const auto t0 = std::chrono::steady_clock::now();
  Report::Reclamation& r = report.reclaim;
  const std::size_t ecs_now = ecs_.ec_count();
  const std::size_t nodes_now = space_.live_nodes();
  // Merging is only worth attempting after a predicate fully dropped —
  // register_predicate() splits from an already-minimal partition, so
  // growth without drops never creates mergeable atoms.
  const bool merge_due = ecs_.dropped_since_compact() > 0 &&
                         ecs_now > options_.reclamation.ec_watermark;
  const bool gc_due = nodes_now > options_.reclamation.bdd_watermark;
  if (!merge_due && !gc_due) return;
  r.ran = true;
  r.ecs_before = ecs_now;
  r.bdd_before = nodes_now;
  if (merge_due) r.remap = ecs_.compact();
  // A merge released the dead atoms' roots, so always sweep after one;
  // otherwise sweep only when the node watermark tripped.
  if (gc_due || r.remap.has_value()) space_.gc();
  r.ecs_after = ecs_.ec_count();
  r.bdd_after = space_.live_nodes();
  r.reclaim_ms = ms_between(t0, std::chrono::steady_clock::now());
}

std::shared_ptr<const RealConfig::Snapshot> RealConfig::snapshot() const {
  if (poisoned_) {
    throw std::logic_error(
        "RealConfig::snapshot called on a poisoned instance: the pipeline state is "
        "inconsistent; snapshots may only capture converged states");
  }
  auto snap = std::make_shared<Snapshot>();
  snap->generator = generator_.snapshot();
  snap->space = space_;
  snap->ecs = ecs_.snapshot();
  snap->model = model_.snapshot();
  snap->checker = checker_.snapshot();
  return snap;
}

void RealConfig::restore(const Snapshot& snap) {
  // Order matters only in that the space must be in place before anything
  // that could consult BDDs; everything else is a plain state overwrite.
  space_ = snap.space;
  ecs_.restore(snap.ecs);
  model_.restore(snap.model);
  checker_.restore(snap.checker);
  generator_.restore(snap.generator);
  poisoned_ = false;
}

std::unique_ptr<RealConfig> RealConfig::fork(const Snapshot& snap) const {
  RealConfigOptions opts = options_;
  opts.threads = 1;  // replicas are driven one-per-thread; no nested pools
  return fork(snap, opts);
}

std::unique_ptr<RealConfig> RealConfig::fork(const Snapshot& snap,
                                             RealConfigOptions opts) const {
  auto replica = std::make_unique<RealConfig>(topo_, opts);
  replica->generator_.set_flush_budget(generator_.flush_budget());
  replica->generator_.set_recurrence_threshold(generator_.recurrence_threshold());
  replica->restore(snap);
  return replica;
}

topo::NodeId RealConfig::node_or_throw(const std::string& name) const {
  const topo::NodeId n = topo_.find_node(name);
  if (n == topo::kInvalidNode) throw std::invalid_argument("unknown node: " + name);
  return n;
}

PolicyId RealConfig::require_reachable(const std::string& src, const std::string& dst,
                                       net::Ipv4Prefix dst_prefix) {
  return checker_.add_reachability(node_or_throw(src), node_or_throw(dst),
                                   space_.dst_prefix(dst_prefix),
                                   src + "->" + dst + " " + dst_prefix.to_string());
}

PolicyId RealConfig::require_isolated(const std::string& src, const std::string& dst,
                                      net::Ipv4Prefix dst_prefix) {
  return checker_.add_isolation(node_or_throw(src), node_or_throw(dst),
                                space_.dst_prefix(dst_prefix),
                                src + "-x->" + dst + " " + dst_prefix.to_string());
}

PolicyId RealConfig::require_waypoint(const std::string& src, const std::string& dst,
                                      const std::string& via, net::Ipv4Prefix dst_prefix) {
  return checker_.add_waypoint(node_or_throw(src), node_or_throw(dst), node_or_throw(via),
                               space_.dst_prefix(dst_prefix),
                               src + "->" + via + "->" + dst + " " + dst_prefix.to_string());
}

}  // namespace rcfg::verify
