#pragma once

// RealConfig — the end-to-end incremental configuration verifier
// (paper Figure 1): three incremental components chained in sequence.
//
//   configuration change
//        │  (1) incremental data plane generator (routing::IncrementalGenerator)
//        ▼
//   forwarding / filtering rule changes
//        │  (2) incremental data plane model updater (dpm::NetworkModel, batch mode)
//        ▼
//   affected ECs with old/new ports
//        │  (3) incremental policy checker (verify::IncrementalChecker)
//        ▼
//   changes in policy satisfaction
//
// Every apply() call takes the *whole* intended configuration; RealConfig
// itself discovers what changed and re-verifies only that. The first call
// is the from-scratch baseline run.

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "config/types.h"
#include "dpm/ec.h"
#include "dpm/model.h"
#include "dpm/packet_space.h"
#include "routing/generator.h"
#include "topo/topology.h"
#include "verify/checker.h"

namespace rcfg::verify {

struct RealConfigOptions {
  dpm::UpdateOrder update_order = dpm::UpdateOrder::kInsertFirst;
  routing::GeneratorOptions generator;
  /// Packet-space backend (see dpm/backend.h). kAuto — the default — starts
  /// on the interval-atom backend (an order of magnitude faster on the
  /// prefix-only churn that dominates real workloads) and migrates to BDDs
  /// once on the first multi-field predicate; kBdd pins the historical
  /// all-BDD path; kInterval behaves like kAuto today (documented intent:
  /// "I expect prefix-only"). EC ids, verdicts, and witnesses are
  /// bit-identical across all three — the differential fuzz harness holds
  /// the backends to that.
  dpm::BackendKind packet_space = dpm::BackendKind::kAuto;
  /// Checker worker-pool width (stage 3 shards the affected-EC set).
  /// 1 (the default) is the historical single-threaded path; any value
  /// produces bit-identical reports — see CheckerOptions::threads.
  unsigned threads = 1;
  /// Record which devices caused each delta (generator fact-origin
  /// tracking; see IncrementalGenerator::set_provenance). Off by default:
  /// the explain path is pay-as-you-go.
  bool provenance = false;
  /// Online memory reclamation for long-lived sessions (see DESIGN.md
  /// "Memory reclamation"). When enabled, apply() runs a reclaim step
  /// after the check phase: merge ECs that predicate withdrawals left
  /// indistinguishable (fanned out as an EcRemap), then garbage-collect
  /// unrooted BDD nodes. Policy verdicts and pair-level results are
  /// unaffected; EC *ids* in subsequent reports are renumbered by merges.
  struct ReclamationOptions {
    bool enabled = false;
    /// Merge only once the partition exceeds this many ECs (0 = merge on
    /// every apply that fully dropped a predicate).
    std::size_t ec_watermark = 0;
    /// GC only once the BDD manager exceeds this many live nodes
    /// (0 = collect on every reclaim).
    std::size_t bdd_watermark = 0;
  };
  ReclamationOptions reclamation;
};

class RealConfig {
 public:
  explicit RealConfig(const topo::Topology& topo, RealConfigOptions options = {});

  /// One verification round. Throws dd::NonterminationError (possibly the
  /// RecurringStateError subclass) when the control plane cannot converge
  /// (paper §6); the instance is then *poisoned* — its internal state is
  /// partially updated and unusable — and must be discarded (or wrapped in
  /// service::Session, which rebuilds automatically). Calling apply() again
  /// on a poisoned instance throws std::logic_error.
  struct Report {
    routing::DataPlaneDelta dataplane;
    dpm::ModelDelta model;
    CheckResult check;
    /// Devices whose compiled facts changed (sorted, unique) — the
    /// fact-level origin of `dataplane`. Filled only with
    /// RealConfigOptions::provenance on; empty otherwise.
    std::vector<topo::NodeId> changed_devices;
    /// What the post-check reclaim step did (all zeros when reclamation is
    /// disabled or nothing was due this round).
    struct Reclamation {
      bool ran = false;  ///< the reclaim step fired this apply()
      std::size_t ecs_before = 0, ecs_after = 0;
      std::size_t bdd_before = 0, bdd_after = 0;  ///< live BDD nodes
      /// The merge's old-id → new-id mapping (absent when no atoms
      /// merged). Consumers holding EC ids from *earlier* reports — the
      /// provenance log, external caches — must translate through it.
      std::optional<dpm::EcRemap> remap;
      double reclaim_ms = 0;
    };
    Reclamation reclaim;
    /// End-of-apply state levels (for the service's gauges).
    std::size_t ec_count = 0;
    std::size_t bdd_nodes = 0;
    double generate_ms = 0;  ///< stage 1 (includes config-to-facts diffing)
    double model_ms = 0;     ///< stage 2
    double check_ms = 0;     ///< stage 3
    double total_ms() const {
      return generate_ms + model_ms + check_ms + reclaim.reclaim_ms;
    }
  };
  Report apply(const config::NetworkConfig& cfg);

  /// True once an apply() ended in NonterminationError: the pipeline state
  /// is inconsistent (the generator converged partially, the model and
  /// checker never saw the delta) and no further apply() is allowed.
  /// restore() un-poisons by overwriting the inconsistent state wholesale.
  bool poisoned() const { return poisoned_; }

  // --- checkpoint / fork ---------------------------------------------------
  /// A converged pipeline state: generator operator state, the whole BDD
  /// manager (so every stored BddRef — EC atoms, policy packet sets, ACL
  /// permit sets — stays meaningful), the EC partition, the model's device
  /// state, and the checker's pair/policy state. Immutable and cheap to
  /// share: one snapshot can seed any number of restores/forks.
  ///
  /// See DESIGN.md "Snapshot / fork" for the deep-copy-vs-shared contract.
  struct Snapshot;

  /// Checkpoint the current (converged, non-poisoned) state. Throws
  /// std::logic_error when poisoned or mid-pipeline.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Reset the pipeline to `snap` (taken from this instance or from any
  /// RealConfig over the same topology and equivalent options). Clears the
  /// poisoned flag: restoring is the sanctioned recovery path after a
  /// divergent apply(). Component wiring (EC-split subscriptions, the
  /// checker's worker pool) is untouched; only state is replaced.
  void restore(const Snapshot& snap);

  /// Build an independent replica seeded from `snap`: a new RealConfig on
  /// the same topology whose next apply() re-converges incrementally from
  /// the snapshot instead of from scratch. The replica owns a private copy
  /// of every mutable structure (BDD manager included), so replicas are
  /// safe to drive from different threads concurrently. Replicas are built
  /// single-threaded (threads = 1) to keep nested worker pools out of
  /// sharded sweeps; generator tuning (flush budget, recurrence threshold)
  /// is inherited from this instance.
  std::unique_ptr<RealConfig> fork(const Snapshot& snap) const;

  /// fork() with caller-chosen options — for replicas that must deviate
  /// from the parent's tuning (the relational checker disables reclamation
  /// so fork EC ids stay relatable to base ids). Generator tuning is still
  /// inherited; the topology contract is unchanged.
  std::unique_ptr<RealConfig> fork(const Snapshot& snap, RealConfigOptions opts) const;

  // --- policy helpers (by device name; packets default to "everything") --
  PolicyId require_reachable(const std::string& src, const std::string& dst,
                             net::Ipv4Prefix dst_prefix);
  PolicyId require_isolated(const std::string& src, const std::string& dst,
                            net::Ipv4Prefix dst_prefix);
  PolicyId require_waypoint(const std::string& src, const std::string& dst,
                            const std::string& via, net::Ipv4Prefix dst_prefix);

  // --- component access ----------------------------------------------------
  const topo::Topology& topology() const { return topo_; }
  const RealConfigOptions& options() const { return options_; }
  routing::IncrementalGenerator& generator() { return generator_; }
  dpm::PacketSpace& packet_space() { return space_; }
  const dpm::PacketSpace& packet_space() const { return space_; }
  dpm::EcManager& ecs() { return ecs_; }
  const dpm::EcManager& ecs() const { return ecs_; }
  dpm::NetworkModel& model() { return model_; }
  const dpm::NetworkModel& model() const { return model_; }
  IncrementalChecker& checker() { return checker_; }
  const IncrementalChecker& checker() const { return checker_; }

 private:
  topo::NodeId node_or_throw(const std::string& name) const;
  /// The post-check reclaim step (no-op unless options_.reclamation.enabled
  /// and a watermark tripped). Fills report.reclaim.
  void maybe_reclaim(Report& report);

  const topo::Topology& topo_;
  RealConfigOptions options_;
  routing::IncrementalGenerator generator_;
  dpm::PacketSpace space_;
  dpm::EcManager ecs_;
  dpm::NetworkModel model_;
  IncrementalChecker checker_;
  bool poisoned_ = false;
};

struct RealConfig::Snapshot {
  routing::IncrementalGenerator::Snapshot generator;
  dpm::PacketSpace space;  ///< full BDD manager copy: keeps every BddRef valid
  dpm::EcManager::Snapshot ecs;
  dpm::NetworkModel::Snapshot model;
  IncrementalChecker::Snapshot checker;
};

}  // namespace rcfg::verify
