#include "verify/failures.h"

#include <algorithm>
#include <chrono>

#include "config/builders.h"
#include "core/worker_pool.h"

namespace rcfg::verify {

namespace {

using Pair = std::pair<topo::NodeId, topo::NodeId>;

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Everything a scenario's verdicts are compared against.
struct HealthyBaseline {
  std::vector<Pair> pairs;              ///< sorted
  std::size_t loops = 0;
  std::vector<PolicyId> watched;        ///< policies satisfied on the healthy net

  static HealthyBaseline of(RealConfig& rc) {
    HealthyBaseline base;
    base.pairs = rc.checker().reachable_pairs();
    base.loops = rc.checker().loop_count();
    for (PolicyId id = 0; id < rc.checker().policy_count(); ++id) {
      if (rc.checker().policy_satisfied(id)) base.watched.push_back(id);
    }
    return base;
  }
};

/// Read a successfully verified scenario's verdicts off a verifier.
void read_outcome(RealConfig& rc, const HealthyBaseline& base, ScenarioOutcome& out,
                  std::vector<Pair>& pairs_out) {
  pairs_out = rc.checker().reachable_pairs();
  out.reachable_pairs = pairs_out.size();
  for (const PolicyId id : base.watched) {
    if (!rc.checker().policy_satisfied(id)) out.violated.push_back(id);
  }
  out.gained_loop = rc.checker().loop_count() > base.loops;
}

std::size_t count_lost(const std::vector<Pair>& healthy, const std::vector<Pair>& now) {
  // Both sorted; count healthy pairs missing under the scenario.
  std::size_t lost = 0;
  auto it = now.begin();
  for (const Pair& p : healthy) {
    while (it != now.end() && *it < p) ++it;
    if (it == now.end() || *it != p) ++lost;
  }
  return lost;
}

/// Fold one scenario (in scenario order) into the sweep aggregates.
/// `pairs` is the scenario's reachable-pair set (ignored when diverged);
/// link-keyed aggregate fields only see single-link scenarios.
void merge_outcome(FailureSweepResult& result, ScenarioOutcome& out,
                   const std::vector<Pair>& pairs) {
  ++result.scenarios;
  const bool single = out.scenario.links.size() == 1;
  if (out.diverged) {
    if (single) result.diverged_links.push_back(out.scenario.links.front());
    return;
  }
  out.pairs_lost = count_lost(result.healthy_pairs, pairs);

  std::vector<Pair> kept;
  kept.reserve(result.fault_tolerant_pairs.size());
  std::set_intersection(result.fault_tolerant_pairs.begin(),
                        result.fault_tolerant_pairs.end(), pairs.begin(), pairs.end(),
                        std::back_inserter(kept));
  result.fault_tolerant_pairs = std::move(kept);

  if (!single) return;
  const topo::LinkId link = out.scenario.links.front();
  if (out.pairs_lost > 0) result.critical_links.push_back(link);
  for (const PolicyId id : out.violated) result.policy_violations[id].push_back(link);
  if (out.gained_loop) result.loop_scenarios.push_back(link);
}

std::vector<FailureScenario> generate_scenarios(const topo::Topology& topo,
                                                const FailureSweepOptions& options) {
  if (!options.scenarios.empty()) return options.scenarios;
  std::vector<FailureScenario> scens;
  const topo::LinkId n = static_cast<topo::LinkId>(topo.link_count());
  for (topo::LinkId l = 0; l < n; ++l) scens.push_back(FailureScenario{{l}});
  if (options.max_failures >= 2) {
    for (topo::LinkId a = 0; a < n; ++a) {
      for (topo::LinkId b = a + 1; b < n; ++b) scens.push_back(FailureScenario{{a, b}});
    }
  }
  return scens;
}

}  // namespace

FailureSweepResult sweep_single_link_failures(RealConfig& rc,
                                              const config::NetworkConfig& healthy,
                                              const std::vector<topo::LinkId>& links) {
  const topo::Topology& topo = rc.topology();

  std::vector<topo::LinkId> scenario_links = links;
  if (scenario_links.empty()) {
    for (topo::LinkId l = 0; l < topo.link_count(); ++l) scenario_links.push_back(l);
  }

  const Timer sweep_timer;
  FailureSweepResult result;
  const HealthyBaseline base = HealthyBaseline::of(rc);
  result.healthy_pairs = base.pairs;
  result.fault_tolerant_pairs = base.pairs;

  // Divergence insurance: a scenario (or the reconvergence back from one)
  // that oscillates is rolled back to this checkpoint instead of poisoning
  // the verifier and losing the partial sweep.
  const Timer snap_timer;
  const auto snap = rc.snapshot();
  result.snapshot_ms = snap_timer.ms();

  config::NetworkConfig scenario = healthy;
  for (const topo::LinkId link : scenario_links) {
    const Timer scenario_timer;
    ScenarioOutcome out;
    out.scenario.links = {link};
    std::vector<Pair> pairs;

    config::fail_link(scenario, topo, link);
    try {
      rc.apply(scenario);
      read_outcome(rc, base, out, pairs);
    } catch (const dd::NonterminationError&) {
      out.diverged = true;
    }
    config::restore_link(scenario, topo, link);

    if (out.diverged) {
      // The verifier is poisoned mid-scenario; snap-back to healthy.
      const Timer restore_timer;
      rc.restore(*snap);
      out.restore_ms = restore_timer.ms();
    } else {
      // Reconverge in place back to the healthy state. Oscillation on the
      // way back (possible: re-adding the link re-creates the unstable
      // part) gets the same snapshot treatment.
      try {
        rc.apply(scenario);
      } catch (const dd::NonterminationError&) {
        const Timer restore_timer;
        rc.restore(*snap);
        out.restore_ms = restore_timer.ms();
      }
    }

    out.total_ms = scenario_timer.ms();
    merge_outcome(result, out, pairs);
    result.outcomes.push_back(std::move(out));
  }

  result.sweep_ms = sweep_timer.ms();
  return result;
}

FailureSweepResult sweep_failures(RealConfig& rc, const config::NetworkConfig& healthy,
                                  const FailureSweepOptions& options) {
  const topo::Topology& topo = rc.topology();
  const std::vector<FailureScenario> scens = generate_scenarios(topo, options);

  const Timer sweep_timer;
  FailureSweepResult result;
  const HealthyBaseline base = HealthyBaseline::of(rc);
  result.healthy_pairs = base.pairs;
  result.fault_tolerant_pairs = base.pairs;

  const Timer snap_timer;
  const auto snap = rc.snapshot();
  result.snapshot_ms = snap_timer.ms();

  // Scenario slots are pre-sized and keyed by index; lanes write disjoint
  // strides and the merge below walks them in index order, so the report is
  // bit-identical for every thread count.
  std::vector<ScenarioOutcome> outcomes(scens.size());
  std::vector<std::vector<Pair>> scenario_pairs(scens.size());

  const unsigned threads = std::max(1u, options.threads);
  core::WorkerPool pool(threads);
  pool.run(threads, [&](std::size_t lane) {
    auto replica = rc.fork(*snap);
    config::NetworkConfig scenario_cfg = healthy;
    for (std::size_t i = lane; i < scens.size(); i += threads) {
      const Timer scenario_timer;
      ScenarioOutcome& out = outcomes[i];
      out.scenario = scens[i];

      // Fork semantics: every scenario starts from the pristine healthy
      // checkpoint — no reconvergence debt, no EC-partition drift, and a
      // diverged previous scenario leaves no trace (restore un-poisons).
      const Timer restore_timer;
      replica->restore(*snap);
      out.restore_ms = restore_timer.ms();

      for (const topo::LinkId l : out.scenario.links) {
        config::fail_link(scenario_cfg, topo, l);
      }
      try {
        replica->apply(scenario_cfg);
        read_outcome(*replica, base, out, scenario_pairs[i]);
      } catch (const dd::NonterminationError&) {
        out.diverged = true;
      }
      for (const topo::LinkId l : out.scenario.links) {
        config::restore_link(scenario_cfg, topo, l);
      }
      out.total_ms = scenario_timer.ms();
    }
  });

  for (std::size_t i = 0; i < scens.size(); ++i) {
    merge_outcome(result, outcomes[i], scenario_pairs[i]);
  }
  result.outcomes = std::move(outcomes);
  result.sweep_ms = sweep_timer.ms();
  return result;
}

}  // namespace rcfg::verify
