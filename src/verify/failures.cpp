#include "verify/failures.h"

#include <algorithm>

#include "config/builders.h"

namespace rcfg::verify {

FailureSweepResult sweep_single_link_failures(RealConfig& rc,
                                              const config::NetworkConfig& healthy,
                                              const std::vector<topo::LinkId>& links) {
  const topo::Topology& topo = rc.topology();

  std::vector<topo::LinkId> scenario_links = links;
  if (scenario_links.empty()) {
    for (topo::LinkId l = 0; l < topo.link_count(); ++l) scenario_links.push_back(l);
  }

  FailureSweepResult result;
  result.healthy_pairs = rc.checker().reachable_pairs();
  result.fault_tolerant_pairs = result.healthy_pairs;

  const std::size_t healthy_loops = rc.checker().loop_count();
  std::vector<bool> policy_healthy(rc.checker().policy_count());
  for (PolicyId id = 0; id < policy_healthy.size(); ++id) {
    policy_healthy[id] = rc.checker().policy_satisfied(id);
  }

  config::NetworkConfig scenario = healthy;
  for (const topo::LinkId link : scenario_links) {
    config::fail_link(scenario, topo, link);
    rc.apply(scenario);
    ++result.scenarios;

    // Intersect the fault-tolerant spec with this scenario's pairs.
    const auto pairs = rc.checker().reachable_pairs();
    std::vector<std::pair<topo::NodeId, topo::NodeId>> kept;
    kept.reserve(result.fault_tolerant_pairs.size());
    std::set_intersection(result.fault_tolerant_pairs.begin(),
                          result.fault_tolerant_pairs.end(), pairs.begin(), pairs.end(),
                          std::back_inserter(kept));
    const bool lost_pairs = pairs.size() < result.healthy_pairs.size();
    result.fault_tolerant_pairs = std::move(kept);
    if (lost_pairs) result.critical_links.push_back(link);

    for (PolicyId id = 0; id < policy_healthy.size(); ++id) {
      if (policy_healthy[id] && !rc.checker().policy_satisfied(id)) {
        result.policy_violations[id].push_back(link);
      }
    }
    if (rc.checker().loop_count() > healthy_loops) result.loop_scenarios.push_back(link);

    config::restore_link(scenario, topo, link);
    rc.apply(scenario);
  }
  return result;
}

}  // namespace rcfg::verify
