#include "verify/failures.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_set>

#include "config/builders.h"
#include "core/worker_pool.h"
#include "verify/sweep_space.h"

namespace rcfg::verify {

namespace {

using Pair = std::pair<topo::NodeId, topo::NodeId>;

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Everything a scenario's verdicts are compared against.
struct HealthyBaseline {
  std::vector<Pair> pairs;              ///< sorted
  std::size_t loops = 0;
  std::vector<PolicyId> watched;        ///< policies satisfied on the healthy net

  static HealthyBaseline of(RealConfig& rc) {
    HealthyBaseline base;
    base.pairs = rc.checker().reachable_pairs();
    base.loops = rc.checker().loop_count();
    for (PolicyId id = 0; id < rc.checker().policy_count(); ++id) {
      if (rc.checker().policy_satisfied(id)) base.watched.push_back(id);
    }
    return base;
  }
};

/// Read a successfully verified scenario's verdicts off a verifier.
/// `lost_out` receives the healthy pairs unreachable under the scenario
/// (sorted) — the only per-scenario pair state the merge needs, and small
/// enough to relabel cheaply during symmetry replay.
void read_outcome(RealConfig& rc, const HealthyBaseline& base, ScenarioOutcome& out,
                  std::vector<Pair>& lost_out) {
  const std::vector<Pair> now = rc.checker().reachable_pairs();
  out.reachable_pairs = now.size();
  lost_out.clear();
  std::set_difference(base.pairs.begin(), base.pairs.end(), now.begin(), now.end(),
                      std::back_inserter(lost_out));
  out.pairs_lost = lost_out.size();
  for (const PolicyId id : base.watched) {
    if (!rc.checker().policy_satisfied(id)) out.violated.push_back(id);
  }
  out.gained_loop = rc.checker().loop_count() > base.loops;
}

/// Pair-set accumulation across scenarios. The mined fault-tolerant spec is
/// healthy minus the union of every scenario's lost set — identical to the
/// historical per-scenario intersection, but replayable: an orbit member
/// contributes its (relabeled) lost set without materializing a full
/// reachable-pair vector.
struct MergeState {
  std::unordered_set<std::uint64_t> lost_union;

  static std::uint64_t key(const Pair& p) {
    return (std::uint64_t{p.first} << 32) | p.second;
  }
};

/// Fold one scenario into the sweep aggregates. Link-keyed aggregate fields
/// only see single-link scenarios; `lost` must match `out.pairs_lost`.
void merge_outcome(FailureSweepResult& result, MergeState& ms, const ScenarioOutcome& out,
                   const std::vector<Pair>& lost) {
  ++result.scenarios;
  const bool single = out.scenario.links.size() == 1;
  if (out.diverged) {
    if (single) result.diverged_links.push_back(out.scenario.links.front());
    result.diverged_scenarios.push_back(out.scenario);
    return;
  }
  for (const Pair& p : lost) ms.lost_union.insert(MergeState::key(p));

  if (!single) return;
  const topo::LinkId link = out.scenario.links.front();
  if (out.pairs_lost > 0) result.critical_links.push_back(link);
  for (const PolicyId id : out.violated) result.policy_violations[id].push_back(link);
  if (out.gained_loop) result.loop_scenarios.push_back(link);
}

/// Derive the final pair spec and put every aggregate into canonical
/// (sorted) order, so pruned/deduplicated sweeps compare bit-identical to
/// exhaustive ones regardless of merge order.
void finalize(FailureSweepResult& result, const MergeState& ms) {
  result.fault_tolerant_pairs.clear();
  for (const Pair& p : result.healthy_pairs) {
    if (!ms.lost_union.count(MergeState::key(p))) result.fault_tolerant_pairs.push_back(p);
  }
  std::sort(result.critical_links.begin(), result.critical_links.end());
  std::sort(result.loop_scenarios.begin(), result.loop_scenarios.end());
  std::sort(result.diverged_links.begin(), result.diverged_links.end());
  for (auto& [id, links] : result.policy_violations) std::sort(links.begin(), links.end());
  std::sort(result.diverged_scenarios.begin(), result.diverged_scenarios.end(),
            [](const FailureScenario& a, const FailureScenario& b) {
              return a.links < b.links;
            });
}

void normalize(FailureScenario& s) {
  std::sort(s.links.begin(), s.links.end());
  s.links.erase(std::unique(s.links.begin(), s.links.end()), s.links.end());
}

}  // namespace

FailureSweepResult sweep_single_link_failures(RealConfig& rc,
                                              const config::NetworkConfig& healthy,
                                              const std::vector<topo::LinkId>& links) {
  const topo::Topology& topo = rc.topology();

  std::vector<topo::LinkId> scenario_links = links;
  if (scenario_links.empty()) {
    for (topo::LinkId l = 0; l < topo.link_count(); ++l) scenario_links.push_back(l);
  }

  const Timer sweep_timer;
  FailureSweepResult result;
  const HealthyBaseline base = HealthyBaseline::of(rc);
  result.healthy_pairs = base.pairs;

  // Divergence insurance: a scenario (or the reconvergence back from one)
  // that oscillates is rolled back to this checkpoint instead of poisoning
  // the verifier and losing the partial sweep.
  const Timer snap_timer;
  const auto snap = rc.snapshot();
  result.snapshot_ms = snap_timer.ms();

  MergeState ms;
  config::NetworkConfig scenario = healthy;
  for (const topo::LinkId link : scenario_links) {
    const Timer scenario_timer;
    ScenarioOutcome out;
    out.scenario.links = {link};
    std::vector<Pair> lost;

    config::fail_link(scenario, topo, link);
    try {
      rc.apply(scenario);
      read_outcome(rc, base, out, lost);
    } catch (const dd::NonterminationError&) {
      out.diverged = true;
    }
    config::restore_link(scenario, topo, link);

    if (out.diverged) {
      // The verifier is poisoned mid-scenario; snap-back to healthy.
      const Timer restore_timer;
      rc.restore(*snap);
      out.restore_ms = restore_timer.ms();
    } else {
      // Reconverge in place back to the healthy state. Oscillation on the
      // way back (possible: re-adding the link re-creates the unstable
      // part) gets the same snapshot treatment.
      try {
        rc.apply(scenario);
      } catch (const dd::NonterminationError&) {
        const Timer restore_timer;
        rc.restore(*snap);
        out.restore_ms = restore_timer.ms();
      }
    }

    out.total_ms = scenario_timer.ms();
    merge_outcome(result, ms, out, lost);
    result.outcomes.push_back(std::move(out));
  }

  finalize(result, ms);
  result.total_scenarios = result.outcomes.size();
  result.explored_scenarios = result.outcomes.size();
  result.coverage = 1.0;
  result.sweep_ms = sweep_timer.ms();
  return result;
}

FailureSweepResult sweep_failures(RealConfig& rc, const config::NetworkConfig& healthy,
                                  const FailureSweepOptions& options) {
  const topo::Topology& topo = rc.topology();

  const Timer sweep_timer;
  FailureSweepResult result;
  const HealthyBaseline base = HealthyBaseline::of(rc);
  result.healthy_pairs = base.pairs;

  std::vector<FailureScenario> scens;
  std::unique_ptr<SweepSpace> space;
  if (!options.scenarios.empty()) {
    // Explicit scenarios run verbatim (normalized to the sorted-unique
    // invariant); pruning/symmetry/budget apply to generated spaces only.
    scens = options.scenarios;
    for (FailureScenario& s : scens) normalize(s);
    result.total_scenarios = scens.size();
  } else {
    space = std::make_unique<SweepSpace>(rc, healthy, options);
    scens = space->reps();
    result.total_scenarios = space->total_scenarios();
    result.pruned_scenarios = space->pruned_scenarios();
  }

  const Timer snap_timer;
  const auto snap = rc.snapshot();
  result.snapshot_ms = snap_timer.ms();

  // Scenario slots are pre-sized and keyed by index; lanes write disjoint
  // strides and the merge below walks them in index order, so the report is
  // bit-identical for every thread count.
  std::vector<ScenarioOutcome> outcomes(scens.size());
  std::vector<std::vector<Pair>> scenario_lost(scens.size());

  const unsigned threads = std::max(1u, options.threads);
  core::WorkerPool pool(threads);
  pool.run(threads, [&](std::size_t lane) {
    auto replica = rc.fork(*snap);
    config::NetworkConfig scenario_cfg = healthy;
    for (std::size_t i = lane; i < scens.size(); i += threads) {
      const Timer scenario_timer;
      ScenarioOutcome& out = outcomes[i];
      out.scenario = scens[i];

      // Fork semantics: every scenario starts from the pristine healthy
      // checkpoint — no reconvergence debt, no EC-partition drift, and a
      // diverged previous scenario leaves no trace (restore un-poisons).
      const Timer restore_timer;
      replica->restore(*snap);
      out.restore_ms = restore_timer.ms();

      for (const topo::LinkId l : out.scenario.links) {
        config::fail_link(scenario_cfg, topo, l);
      }
      try {
        replica->apply(scenario_cfg);
        read_outcome(*replica, base, out, scenario_lost[i]);
      } catch (const dd::NonterminationError&) {
        out.diverged = true;
      }
      for (const topo::LinkId l : out.scenario.links) {
        config::restore_link(scenario_cfg, topo, l);
      }
      out.total_ms = scenario_timer.ms();
    }
  });

  // Deterministic single-threaded merge, replaying each representative's
  // outcome across its symmetry orbit: the verifier is equivariant under
  // admitted pod permutations, so a member's verdicts are the
  // representative's with node-relabeled lost pairs (scalar fields are
  // invariant). finalize() re-sorts every aggregate, keeping the result
  // independent of orbit-visit order.
  MergeState ms;
  const bool replay = space != nullptr && space->symmetry_active();
  for (std::size_t i = 0; i < scens.size(); ++i) {
    ScenarioOutcome& out = outcomes[i];
    if (!replay) {
      merge_outcome(result, ms, out, scenario_lost[i]);
      continue;
    }
    const std::vector<SweepSpace::Member> members = space->expand(out.scenario);
    out.orbit = members.size();
    for (const SweepSpace::Member& member : members) {
      if (member.node_map.empty()) {
        merge_outcome(result, ms, out, scenario_lost[i]);
        continue;
      }
      ScenarioOutcome image;
      image.scenario = member.scenario;
      image.diverged = out.diverged;
      image.reachable_pairs = out.reachable_pairs;
      image.pairs_lost = out.pairs_lost;
      image.violated = out.violated;
      image.gained_loop = out.gained_loop;
      std::vector<Pair> lost;
      lost.reserve(scenario_lost[i].size());
      for (const Pair& p : scenario_lost[i]) {
        lost.emplace_back(member.node_map[p.first], member.node_map[p.second]);
      }
      std::sort(lost.begin(), lost.end());
      merge_outcome(result, ms, image, lost);
      ++result.replayed_scenarios;
    }
  }
  finalize(result, ms);

  result.explored_scenarios = outcomes.size();
  if (result.total_scenarios > 0) {
    result.coverage =
        static_cast<double>(result.explored_scenarios + result.replayed_scenarios +
                            result.pruned_scenarios) /
        static_cast<double>(result.total_scenarios);
  } else {
    result.coverage = 1.0;
  }
  result.outcomes = std::move(outcomes);
  result.sweep_ms = sweep_timer.ms();
  return result;
}

}  // namespace rcfg::verify
