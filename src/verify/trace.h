#pragma once

// Concrete packet tracing — the debugging functionality the paper credits
// to explicit data plane generation (§4): "dumping the full packet traces
// (what rules they match, which path they take, etc.)".
//
// Given a concrete flow and an ingress node, trace_flow() walks the data
// plane model hop by hop, recording at every device the longest-prefix
// rule the packet matched, the ACLs consulted (with the deciding filter
// rule), and the final disposition — fanning out over ECMP branches.

#include <optional>
#include <string>
#include <vector>

#include "config/matchers.h"
#include "dpm/model.h"
#include "topo/topology.h"

namespace rcfg::verify {

enum class Disposition : std::uint8_t {
  kDelivered,    ///< reached a device that delivers the destination locally
  kDropped,      ///< matched an explicit drop (null route / aggregate discard)
  kNoRoute,      ///< no rule covered the destination (implicit drop)
  kFilteredOut,  ///< denied by an egress ACL
  kFilteredIn,   ///< denied by the next hop's ingress ACL
  kDeadEnd,      ///< egress interface is not wired anywhere
  kLoop,         ///< revisited a device: forwarding loop
};

const char* to_string(Disposition d);

/// One device visit on one branch.
struct TraceHop {
  topo::NodeId node = topo::kInvalidNode;
  std::optional<net::Ipv4Prefix> matched_prefix;  ///< nullopt = no route
  dpm::PortKey port;                              ///< the action taken
  topo::IfaceId egress = topo::kInvalidIface;     ///< iface chosen on this branch
  /// ACL decisions made when leaving this hop (egress side, then the next
  /// hop's ingress side); absent when no ACL was bound.
  std::optional<routing::FilterRule> egress_acl_rule;
  std::optional<routing::FilterRule> ingress_acl_rule;
};

/// One root-to-disposition forwarding branch.
struct TraceBranch {
  std::vector<TraceHop> hops;
  Disposition disposition = Disposition::kNoRoute;
};

struct FlowTrace {
  config::Flow flow;
  topo::NodeId ingress = topo::kInvalidNode;
  std::vector<TraceBranch> branches;

  bool any_delivered() const {
    for (const TraceBranch& b : branches) {
      if (b.disposition == Disposition::kDelivered) return true;
    }
    return false;
  }
  bool all_delivered() const {
    for (const TraceBranch& b : branches) {
      if (b.disposition != Disposition::kDelivered) return false;
    }
    return !branches.empty();
  }
};

/// Trace `flow` injected at `ingress` through the converged data plane
/// model. Enumerates every ECMP branch up to `max_branches`.
FlowTrace trace_flow(const topo::Topology& topo, const dpm::NetworkModel& model,
                     const config::Flow& flow, topo::NodeId ingress,
                     std::size_t max_branches = 64);

/// Human-readable rendering, one line per hop.
std::string to_string(const FlowTrace& trace, const topo::Topology& topo);

}  // namespace rcfg::verify
