#pragma once

// The pruned, budgeted failure-scenario space behind sweep_failures()
// (ROADMAP item 1, Plankton-style reductions applied to link failures):
//
//  - Dependency pruning. A link is *policy-relevant* iff (a) some node's
//    FIB forwards a policy EC out one of its interfaces, or (b) one of its
//    interface subnets overlaps a policy EC (failing the link withdraws
//    that subnet network-wide). A scenario all of whose links are
//    irrelevant cannot change any registered policy's verdict: the failed
//    links carry no selected route for any policy EC, so withdrawing them
//    removes only never-selected candidates and the healthy fixpoint
//    restricted to policy ECs persists. Pruned scenarios are counted in
//    closed form (C(irrelevant, m) per size) and never visited.
//
//  - Symmetry dedup. On make_fat_tree() topologies, pods whose
//    configurations are equal up to the induced relabeling (hostnames,
//    interface names, and a consistent permutation of address blocks) and
//    that carry no policy endpoint are interchangeable: the verifier is a
//    deterministic function of (config, scenario), so permuting
//    interchangeable pods permutes its output. Only the lexicographically
//    minimal member of each scenario orbit is verified; the outcome is
//    replayed across the orbit through the automorphism's node map.
//
//  - Lazy prioritized generation. Scenarios stream size by size; under a
//    budget each size is enumerated over links ranked by healthy-path
//    betweenness across policy witness flows, so the budget is spent on the
//    scenarios most likely to matter. Everything not explored, replayed or
//    pruned is reported through the coverage metric.

#include <cstdint>
#include <vector>

#include "topo/symmetry.h"
#include "verify/failures.h"

namespace rcfg::verify {

class SweepSpace {
 public:
  /// Analyzes `rc`'s healthy state (FIBs, ECs, policies, `healthy` config)
  /// and materializes the budgeted representative stream. `rc` is not
  /// mutated (the packet space may hash-cons new predicate handles).
  SweepSpace(RealConfig& rc, const config::NetworkConfig& healthy,
             const FailureSweepOptions& options);

  /// Representatives to verify, in stream order (capped by the budget).
  const std::vector<FailureScenario>& reps() const { return reps_; }

  /// One orbit member of a representative: the scenario plus the node
  /// relabeling that carries the representative's outcome onto it.
  struct Member {
    FailureScenario scenario;
    std::vector<topo::NodeId> node_map;  ///< empty => identity
  };
  /// The whole orbit of one representative, sorted by link set (the
  /// representative itself leads). Singleton when symmetry is inactive.
  std::vector<Member> expand(const FailureScenario& rep) const;

  std::uint64_t total_scenarios() const { return total_; }
  std::uint64_t pruned_scenarios() const { return pruned_; }
  /// True when the stream ended before the budget did (coverage-complete
  /// modulo pruning/replay).
  bool exhausted() const { return exhausted_; }

  bool symmetry_active() const { return !symmetry_.trivial(); }
  const topo::Symmetry& symmetry() const { return symmetry_; }
  bool link_relevant(topo::LinkId l) const;
  std::size_t relevant_links() const { return relevant_count_; }

 private:
  void compute_relevance(RealConfig& rc, const config::NetworkConfig& healthy);
  void compute_scores(RealConfig& rc);
  void admit_symmetry(RealConfig& rc, const config::NetworkConfig& healthy);
  void generate(const FailureSweepOptions& options);

  std::vector<topo::LinkId> universe_;  ///< sorted unique
  std::vector<char> relevant_;          ///< by LinkId
  std::vector<std::uint64_t> score_;    ///< by LinkId (witness-flow betweenness)
  std::size_t relevant_count_ = 0;      ///< relevant links within the universe
  topo::Symmetry symmetry_ = topo::Symmetry::none();
  std::vector<FailureScenario> reps_;
  std::uint64_t total_ = 0;
  std::uint64_t pruned_ = 0;
  bool prune_ = false;
  bool exhausted_ = true;
};

}  // namespace rcfg::verify
