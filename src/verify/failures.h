#pragma once

// Failure-scenario analysis (paper §2 "Specification mining"): sweep link
// failure scenarios with long-lived, incrementally updated verifiers
// instead of a from-scratch verification per scenario.
//
// Two sweep strategies share one result shape:
//  - sweep_single_link_failures: the historical reconverge-in-place loop
//    (fail -> verify -> restore -> verify on the caller's verifier), now
//    with divergence recovery: an oscillating scenario is recorded in
//    `diverged_links` and the verifier is rolled back to a snapshot of the
//    healthy state instead of staying poisoned.
//  - sweep_failures: snapshot/fork — checkpoint the healthy state once,
//    then run every scenario as "restore snapshot -> apply delta -> check
//    -> discard" on forked replicas, optionally sharded over a worker pool
//    (one replica per worker, so nothing is shared but the immutable
//    snapshot). Supports k simultaneous link failures for any k, with
//    Plankton-style pruning for the deep space (sweep_space.h): dependency
//    pruning (skip scenarios that cannot move a registered policy),
//    fat-tree pod symmetry dedup (verify one orbit representative, replay
//    its outcome across the orbit), and prioritized budgeted generation
//    with a coverage metric. DESIGN.md decision 13 states what each
//    reduction does and does not preserve.
//
// Two consumers: Config2Spec-style mining ("which reachability guarantees
// survive every single-link failure?") and operational what-if analysis
// ("which links are critical?", "which scenarios violate my policies?").

#include <unordered_map>
#include <vector>

#include "verify/realconfig.h"

namespace rcfg::verify {

/// One what-if scenario: the links failed simultaneously (sorted, unique).
struct FailureScenario {
  std::vector<topo::LinkId> links;

  friend bool operator==(const FailureScenario&, const FailureScenario&) = default;
};

/// What one scenario did to the network, relative to the healthy state.
/// Semantic fields (everything except the timings) are identical whichever
/// sweep strategy produced them and for any thread count.
struct ScenarioOutcome {
  FailureScenario scenario;
  /// The control plane has no stable state under this failure (the apply
  /// threw NonterminationError/RecurringStateError). No verdicts exist for
  /// the scenario; every other field below is left at its default.
  bool diverged = false;
  std::size_t reachable_pairs = 0;  ///< pairs reachable under the scenario
  std::size_t pairs_lost = 0;       ///< healthy pairs unreachable here
  std::vector<PolicyId> violated;   ///< healthy-satisfied policies now violated
  bool gained_loop = false;         ///< some EC developed a forwarding loop
  /// Scenarios this outcome stands for: the scenario itself plus every
  /// symmetry-equivalent scenario it was replayed onto (1 when symmetry
  /// dedup is off or the orbit is a singleton).
  std::size_t orbit = 1;
  double total_ms = 0;              ///< wall time incl. state reset + verify
  double restore_ms = 0;            ///< snapshot-restore share (0 when in-place)
};

struct FailureSweepResult {
  /// Ordered pairs (s, d) reachable on the healthy network.
  std::vector<std::pair<topo::NodeId, topo::NodeId>> healthy_pairs;
  /// The mined fault-tolerant spec: pairs reachable under EVERY scenario.
  /// Diverged scenarios contribute nothing (they have no stable data plane
  /// to mine; they are reported, not intersected).
  std::vector<std::pair<topo::NodeId, topo::NodeId>> fault_tolerant_pairs;
  /// Links whose single failure disconnects at least one healthy pair.
  std::vector<topo::LinkId> critical_links;
  /// Registered policies -> single-link scenarios that violate them.
  std::unordered_map<PolicyId, std::vector<topo::LinkId>> policy_violations;
  /// Single-link scenarios where some EC developed a forwarding loop.
  std::vector<topo::LinkId> loop_scenarios;
  /// Single-link scenarios whose control plane oscillates instead of
  /// converging (paper §6) — recorded and skipped, never fatal.
  std::vector<topo::LinkId> diverged_links;
  /// Every diverged scenario of any size, sorted by link set — the
  /// multi-link counterpart of `diverged_links`, so detail-free consumers
  /// don't lose k >= 2 oscillation reports.
  std::vector<FailureScenario> diverged_scenarios;
  /// Per-scenario records of the scenarios actually verified on a replica,
  /// in generation order (sizes ascending; within a size, link-id order, or
  /// priority order under a budget). The link-keyed aggregate fields above
  /// summarize only the single-link scenarios; multi-link results live
  /// here and in the aggregates that key by scenario.
  std::vector<ScenarioOutcome> outcomes;
  /// Scenarios covered by verdicts: explored + symmetry-replayed.
  std::size_t scenarios = 0;
  // --- failure-space accounting (sweep_space.h) --------------------------
  std::uint64_t total_scenarios = 0;     ///< |space|: sum of C(links, m), m <= k
  std::uint64_t explored_scenarios = 0;  ///< verified on a replica (== outcomes)
  std::uint64_t replayed_scenarios = 0;  ///< covered via orbit replay
  std::uint64_t pruned_scenarios = 0;    ///< skipped by dependency pruning
  /// (explored + replayed + pruned) / total — 1.0 means every scenario is
  /// accounted for; < 1.0 means the budget ran out first.
  double coverage = 0;
  double snapshot_ms = 0;  ///< cost of checkpointing the healthy state
  double sweep_ms = 0;     ///< total wall time of the sweep
};

/// Verify every single-link-failure scenario (or the `links` subset)
/// incrementally, in place: fail -> re-verify -> restore -> re-verify on
/// `rc` itself. A scenario that diverges is recorded in `diverged_links`
/// and rolled back via a healthy-state snapshot taken at sweep start; the
/// verifier is always left back in the healthy state with
/// rc.poisoned() == false. `healthy` must be the configuration most
/// recently applied to `rc`.
FailureSweepResult sweep_single_link_failures(RealConfig& rc,
                                              const config::NetworkConfig& healthy,
                                              const std::vector<topo::LinkId>& links = {});

struct FailureSweepOptions {
  /// Scenarios to run verbatim (normalized to sorted-unique). Empty =>
  /// generated from `links`/`max_failures` by the lazy generator: sizes
  /// 1..max_failures, each size enumerated in link-id order (or priority
  /// order under a budget), subject to pruning and symmetry dedup.
  std::vector<FailureScenario> scenarios;
  /// The link universe scenarios draw from (sorted + deduped internally).
  /// Empty => every link. A proper subset disables symmetry dedup (orbits
  /// may leave the universe).
  std::vector<topo::LinkId> links;
  unsigned max_failures = 1;  ///< generated-scenario size cap (>= 1)
  /// Cap on *explored* scenarios (replica verifications); 0 = unbounded.
  /// When the cap binds, generation is priority-ordered: links ranked by
  /// healthy-path betweenness over policy witness flows, so the most
  /// load-bearing scenarios are spent on first. Coverage reports the rest.
  std::uint64_t budget = 0;
  /// Dependency pruning: skip scenarios whose failed links touch no EC any
  /// registered policy depends on. Sound for policy verdicts (pruned
  /// scenarios cannot flip them); mined pair/loop/divergence aggregates
  /// then cover only the explored+replayed scenarios (see coverage).
  bool prune = false;
  /// Fat-tree pod symmetry dedup: verify one orbit representative per
  /// equivalence class (modulo config/policy-equivariant pod permutations)
  /// and replay its outcome across the orbit. Bit-identical to exhaustive
  /// sweeps; off by default to keep outcome listings exhaustive.
  bool symmetry = false;
  /// Worker-pool width. Each worker forks its own full replica from the
  /// healthy snapshot, so workers share no mutable state; results are
  /// bit-identical for every value (scenario slots are keyed by index and
  /// merged in order on the caller).
  unsigned threads = 1;
};

/// Snapshot/fork sweep: checkpoint `rc`'s healthy state once, then every
/// scenario is "restore -> apply failure delta -> check -> discard" on a
/// forked replica — no reconvergence back to healthy between scenarios,
/// and `rc` itself is never touched (it keeps serving queries). `healthy`
/// must be the configuration most recently applied to `rc`.
FailureSweepResult sweep_failures(RealConfig& rc, const config::NetworkConfig& healthy,
                                  const FailureSweepOptions& options = {});

}  // namespace rcfg::verify
