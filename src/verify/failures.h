#pragma once

// Failure-scenario analysis (paper §2 "Specification mining"): sweep link
// failure scenarios with one long-lived, incrementally updated verifier
// instead of a from-scratch verification per scenario.
//
// Two consumers: Config2Spec-style mining ("which reachability guarantees
// survive every single-link failure?") and operational what-if analysis
// ("which links are critical?", "which scenarios violate my policies?").

#include <unordered_map>
#include <vector>

#include "verify/realconfig.h"

namespace rcfg::verify {

struct FailureSweepResult {
  /// Ordered pairs (s, d) reachable on the healthy network.
  std::vector<std::pair<topo::NodeId, topo::NodeId>> healthy_pairs;
  /// The mined fault-tolerant spec: pairs reachable under EVERY scenario.
  std::vector<std::pair<topo::NodeId, topo::NodeId>> fault_tolerant_pairs;
  /// Links whose single failure disconnects at least one healthy pair.
  std::vector<topo::LinkId> critical_links;
  /// Registered policies -> scenarios (failed links) that violate them.
  std::unordered_map<PolicyId, std::vector<topo::LinkId>> policy_violations;
  /// Scenarios where some EC developed a forwarding loop.
  std::vector<topo::LinkId> loop_scenarios;
  std::size_t scenarios = 0;
};

/// Verify every single-link-failure scenario (or the `links` subset)
/// incrementally: fail -> re-verify -> restore -> re-verify. The verifier
/// is left back in the healthy state. `healthy` must be the configuration
/// most recently applied to `rc`.
FailureSweepResult sweep_single_link_failures(RealConfig& rc,
                                              const config::NetworkConfig& healthy,
                                              const std::vector<topo::LinkId>& links = {});

}  // namespace rcfg::verify
