#include "verify/sweep_space.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace rcfg::verify {

namespace {

/// C(n, m) saturating at uint64 max.
std::uint64_t choose(std::uint64_t n, std::uint64_t m) {
  if (m > n) return 0;
  m = std::min(m, n - m);
  unsigned __int128 acc = 1;
  for (std::uint64_t i = 1; i <= m; ++i) {
    acc = acc * (n - m + i) / i;
    if (acc > ~std::uint64_t{0}) return ~std::uint64_t{0};
  }
  return static_cast<std::uint64_t>(acc);
}

// ---------------------------------------------------------------------------
// Config equivariance under a pod automorphism: the relabeled configuration
// must equal the original up to one consistent permutation of address
// blocks. The correspondence (pi) is *mined* while walking the config —
// every prefix-typed field of a device must relate to the same field of its
// image device — then validated for global consistency below.
// ---------------------------------------------------------------------------

struct PrefixMapper {
  std::map<std::pair<std::uint32_t, std::uint8_t>, net::Ipv4Prefix> map;

  bool add(net::Ipv4Prefix from, net::Ipv4Prefix to) {
    if (from.length() != to.length()) return false;
    auto [it, inserted] = map.try_emplace({from.address().bits(), from.length()}, to);
    return inserted || it->second == to;
  }
  const net::Ipv4Prefix* image(net::Ipv4Prefix p) const {
    auto it = map.find({p.address().bits(), p.length()});
    return it == map.end() ? nullptr : &it->second;
  }
};

/// The name `iface` takes on the image device under `aut` (unchanged for
/// names topology doesn't know, e.g. the "lan0" stub).
std::string mapped_iface_name(const topo::Topology& topo, topo::NodeId node,
                              const std::string& iface, const topo::Automorphism& aut) {
  const topo::IfaceId i = topo.find_interface(node, iface);
  if (i == topo::kInvalidIface) return iface;
  return topo.iface(aut.iface[i]).name;
}

bool zip_redistribute(const std::vector<config::Redistribution>& a,
                      const std::vector<config::Redistribution>& b) {
  return a == b;  // no prefix-typed fields
}

/// Compare device `d` against its image `d2`, accumulating prefix
/// constraints. Everything that is not a prefix or a topology-derived name
/// must match exactly.
bool compare_device(const topo::Topology& topo, topo::NodeId n, const config::DeviceConfig& d,
                    const config::DeviceConfig& d2, const topo::Automorphism& aut,
                    PrefixMapper& pm) {
  if (d.interfaces.size() != d2.interfaces.size()) return false;
  for (const config::InterfaceConfig& ic : d.interfaces) {
    const config::InterfaceConfig* ic2 =
        d2.find_interface(mapped_iface_name(topo, n, ic.name, aut));
    if (ic2 == nullptr) return false;
    if (ic.address.has_value() != ic2->address.has_value()) return false;
    if (ic.address && !pm.add(*ic.address, *ic2->address)) return false;
    if (ic.shutdown != ic2->shutdown || ic.ospf_cost != ic2->ospf_cost ||
        ic.ospf_area != ic2->ospf_area || ic.ospf_passive != ic2->ospf_passive ||
        ic.rip != ic2->rip || ic.acl_in != ic2->acl_in || ic.acl_out != ic2->acl_out) {
      return false;
    }
  }

  if (d.static_routes.size() != d2.static_routes.size()) return false;
  for (std::size_t i = 0; i < d.static_routes.size(); ++i) {
    const config::StaticRoute& r = d.static_routes[i];
    const config::StaticRoute& r2 = d2.static_routes[i];
    if (!pm.add(r.prefix, r2.prefix)) return false;
    if (mapped_iface_name(topo, n, r.out_iface, aut) != r2.out_iface) return false;
    if (r.admin_distance != r2.admin_distance) return false;
  }

  if (d.ospf.has_value() != d2.ospf.has_value()) return false;
  if (d.ospf && !zip_redistribute(d.ospf->redistribute, d2.ospf->redistribute)) return false;
  if (d.rip.has_value() != d2.rip.has_value()) return false;
  if (d.rip && !zip_redistribute(d.rip->redistribute, d2.rip->redistribute)) return false;

  if (d.bgp.has_value() != d2.bgp.has_value()) return false;
  if (d.bgp) {
    const config::BgpConfig& b = *d.bgp;
    const config::BgpConfig& b2 = *d2.bgp;
    if (b.local_as != b2.local_as) return false;
    if (b.networks.size() != b2.networks.size()) return false;
    for (std::size_t i = 0; i < b.networks.size(); ++i) {
      if (!pm.add(b.networks[i], b2.networks[i])) return false;
    }
    if (b.neighbors.size() != b2.neighbors.size()) return false;
    for (std::size_t i = 0; i < b.neighbors.size(); ++i) {
      const config::BgpNeighbor& nb = b.neighbors[i];
      const config::BgpNeighbor& nb2 = b2.neighbors[i];
      if (mapped_iface_name(topo, n, nb.iface, aut) != nb2.iface) return false;
      if (nb.remote_as != nb2.remote_as || nb.import_route_map != nb2.import_route_map ||
          nb.export_route_map != nb2.export_route_map) {
        return false;
      }
    }
    if (b.aggregates.size() != b2.aggregates.size()) return false;
    for (std::size_t i = 0; i < b.aggregates.size(); ++i) {
      if (!pm.add(b.aggregates[i].prefix, b2.aggregates[i].prefix)) return false;
      if (b.aggregates[i].summary_only != b2.aggregates[i].summary_only) return false;
    }
    if (!zip_redistribute(b.redistribute, b2.redistribute)) return false;
  }

  if (d.acls.size() != d2.acls.size()) return false;
  for (const auto& [name, acl] : d.acls) {
    const auto it = d2.acls.find(name);
    if (it == d2.acls.end() || it->second.rules.size() != acl.rules.size()) return false;
    for (std::size_t i = 0; i < acl.rules.size(); ++i) {
      const config::AclRule& r = acl.rules[i];
      const config::AclRule& r2 = it->second.rules[i];
      if (r.seq != r2.seq || r.action != r2.action || r.proto != r2.proto ||
          r.src_ports != r2.src_ports || r.dst_ports != r2.dst_ports) {
        return false;
      }
      if (!pm.add(r.src, r2.src) || !pm.add(r.dst, r2.dst)) return false;
    }
  }

  if (d.prefix_lists.size() != d2.prefix_lists.size()) return false;
  for (const auto& [name, pl] : d.prefix_lists) {
    const auto it = d2.prefix_lists.find(name);
    if (it == d2.prefix_lists.end() || it->second.entries.size() != pl.entries.size()) {
      return false;
    }
    for (std::size_t i = 0; i < pl.entries.size(); ++i) {
      const config::PrefixListEntry& e = pl.entries[i];
      const config::PrefixListEntry& e2 = it->second.entries[i];
      if (e.seq != e2.seq || e.action != e2.action || e.ge != e2.ge || e.le != e2.le) {
        return false;
      }
      if (!pm.add(e.prefix, e2.prefix)) return false;
    }
  }

  return d.route_maps == d2.route_maps;
}

/// Validate the mined correspondence as a genuine address-space
/// permutation: translate the maximal moved blocks, identity elsewhere.
/// Returns the maximal moved blocks through `moved_out`.
bool validate_prefix_map(const PrefixMapper& pm, std::vector<net::Ipv4Prefix>& moved_out) {
  std::vector<std::pair<net::Ipv4Prefix, net::Ipv4Prefix>> pairs;
  for (const auto& [key, to] : pm.map) {
    pairs.emplace_back(net::Ipv4Prefix{net::Ipv4Addr{key.first}, key.second}, to);
  }
  std::vector<net::Ipv4Prefix> maximal;
  for (const auto& [x, y] : pairs) {
    if (x == y) continue;
    bool inside = false;
    for (const auto& [x2, y2] : pairs) {
      if (x2 == y2 || x2 == x) continue;
      if (x2.contains(x) && x2 != x) inside = true;
    }
    if (!inside) maximal.push_back(x);
  }

  const auto translate = [](net::Ipv4Prefix x, net::Ipv4Prefix b, net::Ipv4Prefix b2) {
    const std::uint32_t off = x.address().bits() - b.address().bits();
    return net::Ipv4Prefix{net::Ipv4Addr{b2.address().bits() + off}, x.length()};
  };

  for (const auto& [x, y] : pairs) {
    if (x != y) {
      if (std::count(maximal.begin(), maximal.end(), x)) {
        // Transposition-generated: the block map must be an involution.
        const net::Ipv4Prefix* back = pm.image(y);
        if (back == nullptr || *back != x) return false;
      } else {
        // Inside a moved block: must translate by the block offset.
        const net::Ipv4Prefix* b = nullptr;
        for (const net::Ipv4Prefix& m : maximal) {
          if (m.contains(x)) b = &m;
        }
        if (b == nullptr) return false;
        if (y != translate(x, *b, *pm.image(*b))) return false;
      }
    } else {
      // Identity-mapped prefix: it must not sit inside a moved block, and
      // any moved block inside it must stay inside it.
      for (const net::Ipv4Prefix& m : maximal) {
        if (m.contains(x)) return false;
        if (x.contains(m) && !x.contains(*pm.image(m))) return false;
      }
    }
  }
  moved_out = std::move(maximal);
  return true;
}

}  // namespace

SweepSpace::SweepSpace(RealConfig& rc, const config::NetworkConfig& healthy,
                       const FailureSweepOptions& options) {
  const topo::Topology& topo = rc.topology();
  universe_ = options.links;
  if (universe_.empty()) {
    universe_.resize(topo.link_count());
    std::iota(universe_.begin(), universe_.end(), topo::LinkId{0});
  } else {
    std::sort(universe_.begin(), universe_.end());
    universe_.erase(std::unique(universe_.begin(), universe_.end()), universe_.end());
  }
  prune_ = options.prune;

  compute_relevance(rc, healthy);
  if (options.budget > 0) compute_scores(rc);
  // Orbit members of a universe-subset scenario may leave the universe, so
  // symmetry dedup only engages over the full link set.
  if (options.symmetry && universe_.size() == topo.link_count()) {
    admit_symmetry(rc, healthy);
  }
  generate(options);
}

bool SweepSpace::link_relevant(topo::LinkId l) const {
  return l < relevant_.size() && relevant_[l] != 0;
}

namespace {

/// True when every device runs pure link-state/distance-vector IGP with no
/// route redistribution — the setting where the downstream-cone relevance
/// rule is provably sound (DESIGN.md decision 13). BGP or redistribution
/// can propagate a withdrawal beyond the failed link's forwarding cone, so
/// those networks fall back to the FIB-anywhere rule.
bool igp_only(const config::NetworkConfig& net) {
  for (const auto& [hostname, dev] : net.devices) {
    if (dev.bgp) return false;
    if (dev.ospf && !dev.ospf->redistribute.empty()) return false;
    if (dev.rip && !dev.rip->redistribute.empty()) return false;
  }
  return true;
}

}  // namespace

void SweepSpace::compute_relevance(RealConfig& rc, const config::NetworkConfig& healthy) {
  const topo::Topology& topo = rc.topology();
  relevant_.assign(topo.link_count(), 0);

  std::unordered_set<dpm::EcId> policy_ecs;
  const IncrementalChecker& checker = rc.checker();
  for (PolicyId id = 0; id < checker.policy_count(); ++id) {
    for (const dpm::EcId ec : checker.policy_ecs(id)) policy_ecs.insert(ec);
  }

  // (a) Links carrying a policy EC's selected (FIB) traffic. Raw FIB ports,
  // not ACL-filtered: a superset keeps pruning conservative. Two variants:
  //  - IGP-only networks: only edges *reachable from a policy's source* in
  //    that policy's EC forwarding graph count. Failing a link outside
  //    every such cone cannot raise any in-cone node's distance (all of its
  //    shortest paths stay intact), so every FIB row a policy verdict reads
  //    is unchanged.
  //  - Otherwise (BGP/redistribution): any edge of any policy EC's graph
  //    counts. A link carrying no selected route for a policy EC withdraws
  //    only never-best candidates, which cannot flip any best-path choice.
  const bool narrow = igp_only(healthy);
  for (PolicyId id = 0; id < checker.policy_count(); ++id) {
    const Policy& p = checker.policy(id);
    for (const dpm::EcId ec : checker.policy_ecs(id)) {
      std::vector<bool> in_cone;
      if (narrow) {
        in_cone.assign(topo.node_count(), false);
        if (p.src != topo::kInvalidNode) {
          in_cone[p.src] = true;
          bool grew = true;
          while (grew) {
            grew = false;
            for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
              if (!in_cone[n]) continue;
              const dpm::PortKey& pk = rc.model().port_of(n, ec);
              if (pk.action != routing::FibAction::kForward) continue;
              for (const topo::IfaceId i : pk.ifaces) {
                const auto link = topo.iface(i).link;
                if (!link) continue;
                const topo::NodeId peer = topo.peer(*link, n);
                if (!in_cone[peer]) {
                  in_cone[peer] = true;
                  grew = true;
                }
              }
            }
          }
        }
      }
      for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
        if (narrow && !in_cone[n]) continue;
        const dpm::PortKey& pk = rc.model().port_of(n, ec);
        if (pk.action != routing::FibAction::kForward) continue;
        for (const topo::IfaceId i : pk.ifaces) {
          const auto link = topo.iface(i).link;
          if (link) relevant_[*link] = 1;
        }
      }
    }
  }

  // (b) Links whose interface subnets overlap a policy EC: failing the link
  // withdraws those subnets network-wide even if no FIB forwards over it.
  for (const topo::LinkId l : universe_) {
    if (relevant_[l]) continue;
    const topo::Link& ln = topo.link(l);
    for (const topo::IfaceId i : {ln.a_iface, ln.b_iface}) {
      const topo::Interface& iface = topo.iface(i);
      const auto dev = healthy.devices.find(topo.node(iface.node).name);
      if (dev == healthy.devices.end()) continue;
      const config::InterfaceConfig* ic = dev->second.find_interface(iface.name);
      if (ic == nullptr || !ic->address) continue;
      for (const dpm::EcId ec : rc.ecs().ecs_in(rc.packet_space().dst_prefix(*ic->address))) {
        if (policy_ecs.count(ec)) {
          relevant_[l] = 1;
          break;
        }
      }
      if (relevant_[l]) break;
    }
  }

  relevant_count_ = 0;
  for (const topo::LinkId l : universe_) relevant_count_ += relevant_[l] ? 1u : 0u;
}

void SweepSpace::compute_scores(RealConfig& rc) {
  const topo::Topology& topo = rc.topology();
  score_.assign(topo.link_count(), 0);
  const IncrementalChecker& checker = rc.checker();

  struct Edge {
    topo::NodeId from, to;
    topo::LinkId link;
  };
  std::unordered_map<dpm::EcId, std::vector<Edge>> graphs;
  const auto edges_of = [&](dpm::EcId ec) -> const std::vector<Edge>& {
    auto it = graphs.find(ec);
    if (it != graphs.end()) return it->second;
    std::vector<Edge> edges;
    for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
      const dpm::PortKey& pk = rc.model().port_of(n, ec);
      if (pk.action != routing::FibAction::kForward) continue;
      for (const topo::IfaceId i : pk.ifaces) {
        const auto link = topo.iface(i).link;
        if (link) edges.push_back({n, topo.peer(*link, n), *link});
      }
    }
    return graphs.emplace(ec, std::move(edges)).first->second;
  };

  const auto reach = [&](const std::vector<Edge>& edges, topo::NodeId root, bool forward) {
    std::vector<bool> seen(topo.node_count(), false);
    if (root == topo::kInvalidNode) return seen;
    seen[root] = true;
    bool grew = true;  // edge-list relaxation; graphs are tiny
    while (grew) {
      grew = false;
      for (const Edge& e : edges) {
        const topo::NodeId src = forward ? e.from : e.to;
        const topo::NodeId dst = forward ? e.to : e.from;
        if (seen[src] && !seen[dst]) {
          seen[dst] = true;
          grew = true;
        }
      }
    }
    return seen;
  };

  // Witness-flow betweenness: a link scores once per (policy, EC) whose
  // src-to-dst flow can cross it on the healthy FIBs.
  for (PolicyId id = 0; id < checker.policy_count(); ++id) {
    const Policy& p = checker.policy(id);
    for (const dpm::EcId ec : checker.policy_ecs(id)) {
      const std::vector<Edge>& edges = edges_of(ec);
      const std::vector<bool> from_src = reach(edges, p.src, /*forward=*/true);
      const std::vector<bool> to_dst = reach(edges, p.dst, /*forward=*/false);
      for (const Edge& e : edges) {
        if (from_src[e.from] && to_dst[e.to]) ++score_[e.link];
      }
    }
  }
}

void SweepSpace::admit_symmetry(RealConfig& rc, const config::NetworkConfig& healthy) {
  const topo::Topology& topo = rc.topology();
  topo::Symmetry sym = topo::Symmetry::fat_tree_pods(topo);
  if (sym.trivial()) return;
  const unsigned pods = sym.pods();
  const IncrementalChecker& checker = rc.checker();

  // Pods hosting a policy endpoint are pinned: an admissible permutation
  // must fix every policy.
  std::vector<bool> pinned(pods, false);
  for (PolicyId id = 0; id < checker.policy_count(); ++id) {
    const Policy& p = checker.policy(id);
    for (const topo::NodeId n : {p.src, p.dst, p.via}) {
      if (n == topo::kInvalidNode) continue;
      const int pod = sym.pod_of_node(n);
      if (pod >= 0) pinned[pod] = true;
    }
  }

  const auto admissible = [&](unsigned p, unsigned q) {
    if (pinned[p] || pinned[q]) return false;
    const topo::Automorphism aut = sym.pod_swap(p, q);
    PrefixMapper pm;
    for (const auto& [hostname, dev] : healthy.devices) {
      const topo::NodeId n = topo.find_node(hostname);
      if (n == topo::kInvalidNode) return false;  // off-topology device: bail
      const auto image = healthy.devices.find(topo.node(aut.node[n]).name);
      if (image == healthy.devices.end()) return false;
      if (!compare_device(topo, n, dev, image->second, aut, pm)) return false;
    }
    std::vector<net::Ipv4Prefix> moved;
    if (!validate_prefix_map(pm, moved)) return false;
    // Every registered policy's packet set must be invariant under the
    // address swap, checked per packet dimension. In one dimension the swap
    // fixes a set when the set holds all of both swapped blocks, none of
    // either, or ignores that dimension entirely (no support on its bits).
    // The clause must hold jointly for a block and its image — "none of b,
    // all of b2" swaps packets across the set boundary. dst and src swaps
    // commute, so per-dimension invariance gives full-swap invariance.
    dpm::PacketSpace& ps = rc.packet_space();
    const auto swap_invariant = [&ps](dpm::BddRef w, dpm::BddRef blk, dpm::BddRef img) {
      return (ps.disjoint(w, blk) && ps.disjoint(w, img)) ||
             (ps.implies(blk, w) && ps.implies(img, w));
    };
    for (PolicyId id = 0; id < checker.policy_count(); ++id) {
      const dpm::BddRef w = checker.policy(id).packets;
      const bool uses_src = ps.depends_on(w, dpm::kSrcIpBase, dpm::kSrcIpBase + 32);
      for (const net::Ipv4Prefix& b : moved) {
        const net::Ipv4Prefix b2 = *pm.image(b);
        if (!swap_invariant(w, ps.dst_prefix(b), ps.dst_prefix(b2))) return false;
        if (uses_src && !swap_invariant(w, ps.src_prefix(b), ps.src_prefix(b2))) {
          return false;
        }
      }
    }
    return true;
  };

  // Interchangeability classes: connected components of the admissible-
  // transposition graph (admissible swaps compose, so each component's full
  // symmetric group acts).
  std::vector<unsigned> parent(pods);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](unsigned x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (unsigned p = 0; p < pods; ++p) {
    for (unsigned q = p + 1; q < pods; ++q) {
      if (find(p) == find(q)) continue;
      if (admissible(p, q)) parent[find(q)] = find(p);
    }
  }
  std::vector<unsigned> classes(pods);
  for (unsigned p = 0; p < pods; ++p) classes[p] = find(p);
  sym.set_pod_classes(std::move(classes));
  if (!sym.trivial()) symmetry_ = std::move(sym);
}

void SweepSpace::generate(const FailureSweepOptions& options) {
  const std::size_t n = universe_.size();
  const unsigned max_failures = std::max(1u, options.max_failures);

  total_ = 0;
  pruned_ = 0;
  const std::size_t irrelevant =
      prune_ ? n - std::min(relevant_count_, n) : 0;
  for (unsigned m = 1; m <= max_failures && m <= n; ++m) {
    const std::uint64_t all = choose(n, m);
    total_ = (~std::uint64_t{0} - total_ < all) ? ~std::uint64_t{0} : total_ + all;
    if (prune_) pruned_ += choose(irrelevant, m);
  }

  // Enumeration order: plain link-id order keeps unbudgeted sweeps
  // byte-compatible with the historical eager generator; a budget switches
  // to priority order (relevant first, then betweenness score, then id) so
  // the budget is spent on load-bearing links — and makes the dependency
  // prune a single tail cut-off per size.
  std::vector<topo::LinkId> ord = universe_;
  if (options.budget > 0) {
    std::stable_sort(ord.begin(), ord.end(), [&](topo::LinkId a, topo::LinkId b) {
      const bool ra = link_relevant(a), rb = link_relevant(b);
      if (ra != rb) return ra;
      const std::uint64_t sa = a < score_.size() ? score_[a] : 0;
      const std::uint64_t sb = b < score_.size() ? score_[b] : 0;
      if (sa != sb) return sa > sb;
      return a < b;
    });
  }
  std::size_t relevant_prefix = n;
  if (prune_ && options.budget > 0) relevant_prefix = relevant_count_;

  exhausted_ = true;
  std::vector<std::size_t> c;
  std::vector<topo::LinkId> links;
  for (unsigned m = 1; m <= max_failures && m <= n; ++m) {
    c.resize(m);
    std::iota(c.begin(), c.end(), std::size_t{0});
    while (true) {
      // Priority order puts every relevant link first: once the leading
      // index leaves that prefix the whole remaining tail of this size is
      // all-irrelevant, i.e. pruned in closed form.
      if (c[0] >= relevant_prefix) break;
      bool skip = false;
      if (prune_) {
        skip = true;
        for (const std::size_t i : c) skip = skip && !link_relevant(ord[i]);
      }
      if (!skip) {
        links.clear();
        for (const std::size_t i : c) links.push_back(ord[i]);
        std::sort(links.begin(), links.end());
        if (!symmetry_.trivial() && !symmetry_.is_canonical(links)) skip = true;
        if (!skip) {
          reps_.push_back(FailureScenario{links});
          if (options.budget > 0 && reps_.size() >= options.budget) {
            exhausted_ = false;
            return;
          }
        }
      }
      // Next lexicographic m-combination of {0..n-1}.
      std::size_t i = m;
      while (i > 0 && c[i - 1] == n - m + (i - 1)) --i;
      if (i == 0) break;
      ++c[i - 1];
      for (std::size_t j = i; j < m; ++j) c[j] = c[j - 1] + 1;
    }
  }
}

std::vector<SweepSpace::Member> SweepSpace::expand(const FailureScenario& rep) const {
  std::vector<Member> members;
  if (symmetry_.trivial()) {
    members.push_back({rep, {}});
    return members;
  }
  const topo::Symmetry::Orbit orbit = symmetry_.orbit(rep.links);
  members.reserve(orbit.images.size());
  for (const topo::Symmetry::Orbit::Image& image : orbit.images) {
    Member m;
    m.scenario.links = image.links;
    if (image.links != rep.links) {
      m.node_map = symmetry_.automorphism(image.pod_map).node;
    }
    members.push_back(std::move(m));
  }
  return members;
}

}  // namespace rcfg::verify
