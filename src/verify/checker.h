#pragma once

// The incremental network policy checker — RealConfig's third pipeline
// stage (paper §4.2): data plane model changes in, changes in policy
// satisfaction out.
//
// Per the paper, two maps make checking incremental:
//   (1) per EC: its forwarding behaviour (here: the delivered (src, dst)
//       pairs, plus loop/blackhole flags derived from its forwarding
//       graph), and
//   (2) per node pair (s, d): the set of ECs that s can send to d.
// A model delta lists the affected ECs; only those ECs' state is
// recomputed, only the pairs they touch are updated, and only the policies
// *registered* on those ECs are re-evaluated.

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/worker_pool.h"
#include "dpm/ec.h"
#include "dpm/model.h"
#include "topo/topology.h"

namespace rcfg::verify {

using PolicyId = std::uint32_t;

struct CheckerOptions {
  /// Worker-pool width for the affected-EC recompute (1 = single-threaded,
  /// the historical behaviour). The pool is created once and reused across
  /// process() calls. Reports are bit-identical for every value: sharding
  /// only covers the pure per-EC recompute; all state mutation happens in a
  /// deterministic EC-ordered merge on the calling thread.
  unsigned threads = 1;
};

enum class PolicyKind : std::uint8_t {
  kReachability,  ///< every packet of `packets` sent s -> d is delivered
  kIsolation,     ///< no packet of `packets` sent s -> d is delivered
  kWaypoint,      ///< every delivered s -> d path crosses `via`
};

struct Policy {
  PolicyId id = 0;
  PolicyKind kind = PolicyKind::kReachability;
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  topo::NodeId via = topo::kInvalidNode;  ///< waypoint only
  dpm::BddRef packets = dpm::kBddTrue;
  std::string name;
};

struct PolicyEvent {
  PolicyId id = 0;
  bool satisfied = false;  ///< the policy's new state
};

struct CheckResult {
  std::vector<dpm::EcId> affected_ecs;
  /// Pairs affected by modified paths (the paper's "#Pairs"): for each
  /// affected EC, the delivered pairs whose source can send traffic through
  /// a device whose forwarding for that EC changed — i.e., the pairs that
  /// had to be re-examined — plus every pair whose membership changed.
  std::vector<std::pair<topo::NodeId, topo::NodeId>> affected_pairs;
  /// The strict subset of affected_pairs whose delivering EC set actually
  /// changed (reachability gained or lost).
  std::vector<std::pair<topo::NodeId, topo::NodeId>> changed_pairs;
  std::vector<PolicyEvent> events;  ///< policies that flipped state
  std::vector<dpm::EcId> loops_begun, loops_ended;
  std::vector<dpm::EcId> blackholes_begun, blackholes_ended;

  /// How the affected-EC recompute executed (observability only; every
  /// semantic field above is invariant under the thread count).
  struct Parallelism {
    unsigned shards = 1;          ///< shards the affected-EC set split into
    std::vector<double> shard_ms; ///< per-shard compute-phase wall time
  };
  Parallelism parallel;

  bool empty() const {
    return affected_ecs.empty() && affected_pairs.empty() && changed_pairs.empty() &&
           events.empty() && loops_begun.empty() && loops_ended.empty() &&
           blackholes_begun.empty() && blackholes_ended.empty();
  }
};

class IncrementalChecker {
 public:
  IncrementalChecker(const topo::Topology& topo, dpm::PacketSpace& space, dpm::EcManager& ecs,
                     const dpm::NetworkModel& model, CheckerOptions options = {});

  /// The pool width this checker shards over (>= 1).
  unsigned threads() const noexcept { return pool_.size(); }

  // --- policy registration (packets BDD registers as an EC predicate) ----
  PolicyId add_reachability(topo::NodeId src, topo::NodeId dst, dpm::BddRef packets,
                            std::string name = "");
  PolicyId add_isolation(topo::NodeId src, topo::NodeId dst, dpm::BddRef packets,
                         std::string name = "");
  PolicyId add_waypoint(topo::NodeId src, topo::NodeId dst, topo::NodeId via,
                        dpm::BddRef packets, std::string name = "");

  bool policy_satisfied(PolicyId id) const { return satisfied_.at(id); }
  const Policy& policy(PolicyId id) const { return policies_.at(id); }
  std::size_t policy_count() const { return policies_.size(); }
  /// The ECs policy `id`'s verdict depends on — the policy-side index the
  /// failure-space pruner consults (sweep_space.h).
  const std::vector<dpm::EcId>& policy_ecs(PolicyId id) const { return policy_ecs_.at(id); }

  /// Re-check everything the model delta touched. Incremental: cost scales
  /// with the number of affected ECs, not network size.
  CheckResult process(const dpm::ModelDelta& delta);

  // --- queries -----------------------------------------------------------
  bool reachable(topo::NodeId src, topo::NodeId dst, dpm::EcId ec) const;
  std::vector<dpm::EcId> ecs_between(topo::NodeId src, topo::NodeId dst) const;
  /// Pairs with at least one delivering EC (total for Table 3 percentages).
  std::size_t pair_count() const { return pair_index_.size(); }
  /// All such pairs, sorted (snapshot for failure-sweep intersection).
  std::vector<std::pair<topo::NodeId, topo::NodeId>> reachable_pairs() const;
  std::size_t loop_count() const { return looping_.size(); }
  std::size_t blackhole_count() const { return blackholed_.size(); }

  // --- per-EC behaviour accessors (relational diffing) --------------------
  /// The delivered (src, dst) pairs of one EC, sorted. ECs the checker has
  /// never seen (beyond the grown state) have no pairs.
  std::vector<std::pair<topo::NodeId, topo::NodeId>> delivered_pairs(dpm::EcId ec) const;
  bool looping(dpm::EcId ec) const { return looping_.count(ec) != 0; }
  bool blackholed(dpm::EcId ec) const { return blackholed_.count(ec) != 0; }

  /// Enumerate (up to `limit`) forwarding paths of `ec` from `src` — the
  /// paper's "dumping the full packet traces" debugging aid. A path ends
  /// with the delivering/dropping node; looping branches are truncated at
  /// the first repeated node.
  std::vector<std::vector<topo::NodeId>> trace(topo::NodeId src, dpm::EcId ec,
                                               std::size_t limit = 16) const;

  /// Value copy of everything process() maintains: per-EC delivered-pair
  /// state, the pair->ECs index, loop/blackhole sets, and the policy tables
  /// (policies reference packet BDDs, so a snapshot pairs with a
  /// PacketSpace snapshot — RealConfig keeps them together). The worker
  /// pool is deliberately not part of the state.
  struct Snapshot;

  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  struct EcState {
    std::unordered_set<std::uint64_t> pairs;  ///< delivered (s<<32)|d, s != d
    bool has_loop = false;
    bool has_blackhole = false;
  };

  /// The EC's forwarding graph, derived from the model (ports + ACLs).
  struct Graph {
    std::vector<std::vector<topo::NodeId>> next;  ///< forwarding successors
    std::vector<bool> delivers;
    std::vector<bool> drops;
  };
  Graph build_graph(dpm::EcId ec) const;

  EcState compute_state(const Graph& g) const;
  /// Sources that can push traffic into any of `roots` (reverse
  /// reachability, roots included).
  std::vector<bool> upstream_of(const Graph& g, const std::vector<topo::NodeId>& roots) const;
  void apply_state(dpm::EcId ec, EcState next, const std::vector<bool>& near_moved,
                   CheckResult& out, std::unordered_set<PolicyId>& dirty_policies);
  bool evaluate(const Policy& p) const;
  bool waypoint_ok(const Policy& p, dpm::EcId ec) const;
  void on_split(const dpm::EcManager::Split& s);
  /// EcManager remap listener: translate every EC-indexed map through a
  /// compact()'s old-id → new-id mapping. Merged atoms carry identical
  /// state, so collapsing them loses nothing; policy verdicts are
  /// invariant under the renaming.
  void on_remap(const dpm::EcRemap& remap);

  static std::uint64_t pair_key(topo::NodeId s, topo::NodeId d) {
    static_assert(sizeof(topo::NodeId) == 4 && std::is_unsigned_v<topo::NodeId>,
                  "pair_key packs two NodeIds into one 64-bit key");
    return (std::uint64_t{s} << 32) | d;
  }

  const topo::Topology& topo_;
  dpm::PacketSpace& space_;
  dpm::EcManager& ecs_;
  const dpm::NetworkModel& model_;
  core::WorkerPool pool_;  ///< fixed; reused by every process() call

  std::vector<EcState> state_;  ///< indexed by EcId (grown on splits)
  std::unordered_map<std::uint64_t, std::unordered_set<dpm::EcId>> pair_index_;
  std::unordered_set<dpm::EcId> looping_;
  std::unordered_set<dpm::EcId> blackholed_;

  std::vector<Policy> policies_;
  std::vector<bool> satisfied_;
  std::unordered_map<dpm::EcId, std::vector<PolicyId>> policies_by_ec_;
  std::vector<std::vector<dpm::EcId>> policy_ecs_;  ///< PolicyId -> its ECs

 public:
  struct Snapshot {
    std::vector<EcState> state;
    std::unordered_map<std::uint64_t, std::unordered_set<dpm::EcId>> pair_index;
    std::unordered_set<dpm::EcId> looping;
    std::unordered_set<dpm::EcId> blackholed;
    std::vector<Policy> policies;
    std::vector<bool> satisfied;
    std::unordered_map<dpm::EcId, std::vector<PolicyId>> policies_by_ec;
    std::vector<std::vector<dpm::EcId>> policy_ecs;
  };
};

}  // namespace rcfg::verify
