#include "verify/trace.h"

#include <algorithm>

namespace rcfg::verify {

const char* to_string(Disposition d) {
  switch (d) {
    case Disposition::kDelivered:
      return "delivered";
    case Disposition::kDropped:
      return "dropped (explicit)";
    case Disposition::kNoRoute:
      return "dropped (no route)";
    case Disposition::kFilteredOut:
      return "filtered (egress ACL)";
    case Disposition::kFilteredIn:
      return "filtered (ingress ACL)";
    case Disposition::kDeadEnd:
      return "dead end (unwired interface)";
    case Disposition::kLoop:
      return "LOOP";
  }
  return "?";
}

namespace {

struct Tracer {
  const topo::Topology& topo;
  const dpm::NetworkModel& model;
  const config::Flow& flow;
  std::size_t max_branches;
  FlowTrace result;
  std::vector<TraceHop> current;
  std::vector<bool> on_path;

  void finish(Disposition d) {
    if (result.branches.size() >= max_branches) return;
    result.branches.push_back(TraceBranch{current, d});
  }

  void visit(topo::NodeId node) {
    if (result.branches.size() >= max_branches) return;
    if (on_path[node]) {
      TraceHop hop;
      hop.node = node;
      current.push_back(hop);
      finish(Disposition::kLoop);
      current.pop_back();
      return;
    }

    TraceHop hop;
    hop.node = node;
    const auto match = model.lookup(node, flow.dst);
    if (!match) {
      current.push_back(hop);
      finish(Disposition::kNoRoute);
      current.pop_back();
      return;
    }
    hop.matched_prefix = match->first;
    hop.port = match->second;

    switch (hop.port.action) {
      case routing::FibAction::kDeliver:
        current.push_back(hop);
        finish(Disposition::kDelivered);
        current.pop_back();
        return;
      case routing::FibAction::kDrop:
        current.push_back(hop);
        finish(Disposition::kDropped);
        current.pop_back();
        return;
      case routing::FibAction::kForward:
        break;
    }

    on_path[node] = true;
    for (const topo::IfaceId egress : hop.port.ifaces) {
      TraceHop branch_hop = hop;
      branch_hop.egress = egress;

      const auto& ifc = topo.iface(egress);
      if (!ifc.link) {
        current.push_back(branch_hop);
        finish(Disposition::kDeadEnd);
        current.pop_back();
        continue;
      }
      const topo::NodeId peer = topo.peer(*ifc.link, node);
      const topo::IfaceId peer_iface = topo.peer_iface(*ifc.link, node);

      const auto out_verdict = model.filter_verdict(node, egress, /*inbound=*/false, flow);
      if (out_verdict.has_acl) branch_hop.egress_acl_rule = out_verdict.rule;
      if (!out_verdict.permit) {
        current.push_back(branch_hop);
        finish(Disposition::kFilteredOut);
        current.pop_back();
        continue;
      }
      const auto in_verdict = model.filter_verdict(peer, peer_iface, /*inbound=*/true, flow);
      if (in_verdict.has_acl) branch_hop.ingress_acl_rule = in_verdict.rule;
      if (!in_verdict.permit) {
        current.push_back(branch_hop);
        finish(Disposition::kFilteredIn);
        current.pop_back();
        continue;
      }

      current.push_back(branch_hop);
      visit(peer);
      current.pop_back();
    }
    on_path[node] = false;
  }
};

std::string describe_rule(const routing::FilterRule& r) {
  std::string out = r.permit ? "permit" : "deny";
  out += " #" + std::to_string(r.priority);
  return out;
}

}  // namespace

FlowTrace trace_flow(const topo::Topology& topo, const dpm::NetworkModel& model,
                     const config::Flow& flow, topo::NodeId ingress,
                     std::size_t max_branches) {
  Tracer tracer{topo, model, flow, max_branches, {}, {}, std::vector<bool>(topo.node_count())};
  tracer.result.flow = flow;
  tracer.result.ingress = ingress;
  tracer.visit(ingress);
  return tracer.result;
}

std::string to_string(const FlowTrace& trace, const topo::Topology& topo) {
  std::string out = "flow " + net::Ipv4Addr(trace.flow.src).to_string() + " -> " +
                    net::Ipv4Addr(trace.flow.dst).to_string() + " (ingress " +
                    topo.node(trace.ingress).name + "): " +
                    std::to_string(trace.branches.size()) + " branch(es)\n";
  for (std::size_t b = 0; b < trace.branches.size(); ++b) {
    const TraceBranch& branch = trace.branches[b];
    out += "  branch " + std::to_string(b + 1) + " [" + to_string(branch.disposition) + "]\n";
    for (const TraceHop& hop : branch.hops) {
      out += "    " + topo.node(hop.node).name;
      if (hop.matched_prefix) {
        out += "  match " + hop.matched_prefix->to_string() + " -> " + dpm::to_string(hop.port);
      } else {
        out += "  (no matching rule)";
      }
      if (hop.egress != topo::kInvalidIface) {
        out += "  via " + topo.iface(hop.egress).name;
      }
      if (hop.egress_acl_rule) out += "  [out-acl " + describe_rule(*hop.egress_acl_rule) + "]";
      if (hop.ingress_acl_rule) out += "  [in-acl " + describe_rule(*hop.ingress_acl_rule) + "]";
      out += "\n";
    }
  }
  return out;
}

}  // namespace rcfg::verify
