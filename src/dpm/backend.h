#pragma once

// The packet-space backend interface: the set algebra the equivalence-class
// partition is computed over. EcManager, NetworkModel, the checker and every
// downstream stage manipulate packet sets exclusively through opaque BddRef
// handles and the operations below, so the *representation* of a set is a
// backend decision:
//
//   * BddSetBackend — the historical representation: hash-consed ROBDDs over
//     the full 98-variable packet header space (dst/src IP, proto, ports).
//     Complete: any field combination is expressible.
//   * IntervalAtomBackend (interval_set.h) — Delta-net-style half-open
//     [lo, hi) ranges over the 32-bit destination address space, kept in
//     sorted boundary arrays. Only destination-prefix predicates are
//     expressible — which covers every FIB rule — and operations are linear
//     merges of boundary arrays instead of memoized BDD traversals, roughly
//     an order of magnitude cheaper on prefix-only churn.
//
// PacketSpace owns one of each and routes through the active one; when a
// predicate outside the interval backend's vocabulary appears (an ACL's
// filter_match, a source prefix, a proto/port range), it migrates the
// partition to the BDD backend exactly once (see PacketSpace::migrate_to_bdd).
// Handle spaces are disjoint by construction — interval handles carry
// kIntervalTag in the top bit, BDD node ids grow from 0 — so a stored handle
// always names the representation it was created in, even across migration.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "dpm/bdd.h"

namespace rcfg::dpm {

/// Which packet-space backend a pipeline runs on. kAuto lets the library
/// choose: it starts on the interval-atom backend (FIB rules dominate every
/// real workload) and falls back to BDDs on the first multi-field predicate.
/// kInterval is today an alias of that same start-fast-migrate-on-demand
/// behaviour (a strict no-fallback mode would have to reject ACLs); kBdd
/// pins the historical all-BDD path.
enum class BackendKind : std::uint8_t { kBdd, kInterval, kAuto };

const char* to_string(BackendKind kind);
/// Parse a service-facing backend name ("bdd" | "interval" | "auto").
std::optional<BackendKind> backend_kind_of(std::string_view name);

/// The set algebra over packet-set handles. Implementations must be
/// deterministic: the same operation sequence yields the same handle values
/// and the same results, independent of hash-map iteration order — EC ids
/// and compact() remaps downstream are bit-identical across backends
/// because of this.
class PacketSpaceBackend {
 public:
  virtual ~PacketSpaceBackend() = default;

  virtual BackendKind kind() const noexcept = 0;

  virtual BddRef set_and(BddRef a, BddRef b) = 0;
  virtual BddRef set_or(BddRef a, BddRef b) = 0;
  /// a ∧ ¬b
  virtual BddRef set_diff(BddRef a, BddRef b) = 0;
  virtual BddRef set_xor(BddRef a, BddRef b) = 0;
  virtual BddRef set_not(BddRef a) = 0;

  virtual bool disjoint(BddRef a, BddRef b) = 0;
  /// a ⊆ b (as sets)
  virtual bool implies(BddRef a, BddRef b) = 0;

  /// Pin/unpin a handle across gc(). Terminals are always live.
  virtual void add_ref(BddRef a) noexcept = 0;
  virtual void release(BddRef a) noexcept = 0;
  virtual std::size_t gc() = 0;

  /// Number of satisfying packets over the full header space.
  virtual double sat_count(BddRef a) = 0;
  /// One satisfying assignment over all packet variables, or nullopt for
  /// the empty set. Must be the *lexicographically minimal* member in
  /// variable order (unconstrained variables 0) so witness packets agree
  /// across backends.
  virtual std::optional<std::vector<bool>> pick_one(BddRef a) const = 0;

  /// Live representation nodes (BDD nodes / interval sets) for the gauges.
  virtual std::size_t live_nodes() const noexcept = 0;
};

/// The ROBDD implementation: thin adapter over the BddManager that
/// PacketSpace owns anyway. Stateless beyond the manager pointer, so
/// PacketSpace re-seats it on copy.
class BddSetBackend final : public PacketSpaceBackend {
 public:
  explicit BddSetBackend(BddManager* bdd) : bdd_(bdd) {}

  BackendKind kind() const noexcept override { return BackendKind::kBdd; }
  BddRef set_and(BddRef a, BddRef b) override { return bdd_->bdd_and(a, b); }
  BddRef set_or(BddRef a, BddRef b) override { return bdd_->bdd_or(a, b); }
  BddRef set_diff(BddRef a, BddRef b) override { return bdd_->bdd_diff(a, b); }
  BddRef set_xor(BddRef a, BddRef b) override { return bdd_->bdd_xor(a, b); }
  BddRef set_not(BddRef a) override { return bdd_->bdd_not(a); }
  bool disjoint(BddRef a, BddRef b) override { return bdd_->disjoint(a, b); }
  bool implies(BddRef a, BddRef b) override { return bdd_->implies(a, b); }
  void add_ref(BddRef a) noexcept override { bdd_->add_ref(a); }
  void release(BddRef a) noexcept override { bdd_->release(a); }
  std::size_t gc() override { return bdd_->gc(); }
  double sat_count(BddRef a) override { return bdd_->sat_count(a); }
  std::optional<std::vector<bool>> pick_one(BddRef a) const override {
    return bdd_->pick_one(a);
  }
  std::size_t live_nodes() const noexcept override { return bdd_->node_count(); }

  void reseat(BddManager* bdd) noexcept { bdd_ = bdd; }

 private:
  BddManager* bdd_;
};

}  // namespace rcfg::dpm
