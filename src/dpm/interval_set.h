#pragma once

// The Delta-net-style interval-atom backend: packet sets that constrain only
// the destination address, represented as sorted boundary arrays of
// half-open [lo, hi) ranges over the 32-bit destination space.
//
// A destination prefix a.b.c.d/len is exactly one such range
// [base, base + 2^(32-len)); boolean combinations of prefixes are unions of
// disjoint ranges. Every operation is a linear two-pointer merge of two
// boundary arrays — no memo tables, no node allocation per operation — which
// is why prefix-only EC maintenance runs an order of magnitude faster here
// than on BDDs (Delta-net, PAPERS.md).
//
// Sets are canonicalized (sorted, disjoint, adjacent ranges coalesced,
// empty/full collapsed to the shared kBddFalse/kBddTrue terminals) and
// hash-consed, so equal sets always get equal handles — the property the
// EcManager's atom index and predicate refcounts rely on, and the property
// that makes the interval handle space behave exactly like the BDD handle
// space. Nontrivial handles carry kIntervalTag in the top bit so they can
// never collide with BDD node ids (a BDD arena would need 2^31 live nodes
// to reach the tag bit).
//
// The arena is append-only: handles are never recycled, so a handle stays
// valid (and keeps denoting the same set) for the life of the PacketSpace —
// including after a migration to the BDD backend, when retained interval
// handles (in policy tables, snapshots, provenance) are translated lazily
// through PacketSpace::canonical(). add_ref/release maintain honest
// refcounts for parity with the BDD contract, but gc() is a no-op: a set is
// a few dozen bytes and the reclamation lever that matters stays BDD-side.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/hash.h"
#include "dpm/backend.h"
#include "net/ipv4.h"

namespace rcfg::dpm {

/// Top bit of a BddRef marks an interval-arena handle.
inline constexpr BddRef kIntervalTag = 0x8000'0000u;

inline constexpr bool is_interval_ref(BddRef r) noexcept {
  return (r & kIntervalTag) != 0;
}

class IntervalAtomBackend final : public PacketSpaceBackend {
 public:
  /// A half-open destination-address range [lo, hi), 0 <= lo < hi <= 2^32.
  using Range = std::pair<std::uint64_t, std::uint64_t>;
  static constexpr std::uint64_t kSpaceEnd = std::uint64_t{1} << 32;

  /// `var_count` is the full packet-variable width (PacketSpace's
  /// kPacketVars): pick_one() answers assignments over the whole header
  /// space and sat_count() scales by the unconstrained non-dst variables,
  /// so results are comparable with the BDD backend bit for bit.
  explicit IntervalAtomBackend(unsigned var_count) : var_count_(var_count) {}

  BackendKind kind() const noexcept override { return BackendKind::kInterval; }

  /// The handle for "destination lies in p": a single half-open range.
  BddRef dst_prefix(net::Ipv4Prefix p);
  /// Hash-cons an arbitrary range list (canonicalized first).
  BddRef from_ranges(std::vector<Range> ranges);
  /// The defining boundary array of a handle (empty for kBddFalse, the full
  /// space for kBddTrue). Used by PacketSpace::canonical() to rebuild the
  /// set as a BDD after migration.
  const std::vector<Range>& ranges(BddRef h) const;

  BddRef set_and(BddRef a, BddRef b) override;
  BddRef set_or(BddRef a, BddRef b) override;
  BddRef set_diff(BddRef a, BddRef b) override;
  BddRef set_xor(BddRef a, BddRef b) override;
  BddRef set_not(BddRef a) override;

  bool disjoint(BddRef a, BddRef b) override;
  bool implies(BddRef a, BddRef b) override;

  void add_ref(BddRef a) noexcept override;
  void release(BddRef a) noexcept override;
  std::size_t gc() override { return 0; }  // append-only arena; see header
  std::uint32_t ref_count(BddRef a) const noexcept;

  double sat_count(BddRef a) override;
  std::optional<std::vector<bool>> pick_one(BddRef a) const override;

  /// Distinct sets interned so far (terminals excluded).
  std::size_t set_count() const noexcept { return sets_.size(); }
  std::size_t live_nodes() const noexcept override { return sets_.size(); }

  /// Total addresses covered (exact; <= 2^32).
  std::uint64_t address_count(BddRef a) const;

 private:
  struct Entry {
    std::vector<Range> ranges;
    std::uint32_t refs = 0;
  };

  const Entry& entry(BddRef h) const;
  static std::size_t hash_ranges(const std::vector<Range>& ranges);

  unsigned var_count_;
  std::vector<Entry> sets_;                           ///< arena, index = handle & ~tag
  std::unordered_map<std::size_t, std::vector<BddRef>> index_;  ///< hash -> candidates
};

}  // namespace rcfg::dpm
