#pragma once

// The APKeep-style data plane model and RealConfig's batch-mode extension
// (paper §4.2, middle pipeline stage).
//
// Each device owns logical *ports*; a port encodes one forwarding action
// (deliver / drop / forward out an ECMP set of interfaces). The model maps
// every EC to the port taking it, per device. A rule update computes the
// rule's *effective* match (its prefix minus all longer prefixes present —
// LPM shadowing, via a per-device prefix trie), refines the EC partition
// with it, and moves the contained ECs between ports.
//
// Batch mode: given a whole batch of rule updates (the output of the
// incremental data plane generator), an update *order* is chosen first.
// Insertion-first turns a (delete old + insert new) modification into one
// direct EC move (the stale delete no-ops); deletion-first detours every EC
// via the covering rule's port — usually the drop port — and then back,
// doubling the EC churn. This asymmetry is the paper's Table 3.

#include <atomic>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "config/matchers.h"
#include "dpm/ec.h"
#include "dpm/packet_space.h"
#include "net/prefix_trie.h"
#include "routing/generator.h"
#include "routing/types.h"

namespace rcfg::dpm {

/// A logical port: one forwarding action.
struct PortKey {
  routing::FibAction action = routing::FibAction::kDrop;
  std::vector<topo::IfaceId> ifaces;  ///< sorted; nonempty iff kForward

  friend bool operator==(const PortKey&, const PortKey&) = default;
  friend auto operator<=>(const PortKey&, const PortKey&) = default;

  static PortKey drop() { return PortKey{}; }
  static PortKey of(const routing::FibEntry& e) {
    return PortKey{e.action, e.out_ifaces};
  }
};

std::string to_string(const PortKey& p);

/// Which order to apply a batch's insertions and deletions in.
enum class UpdateOrder {
  kInsertFirst,  ///< all insertions, then all deletions (paper's "+,-")
  kDeleteFirst,  ///< all deletions, then all insertions (paper's "-,+")
  kInterleaved,  ///< per (device, prefix): insertion immediately before
                 ///< deletion — our ablation extension
};

const char* to_string(UpdateOrder order);

/// Everything the policy checker needs to know about one batch.
struct ModelDelta {
  /// EC splits performed while refining the partition (checker must mirror
  /// parent state onto children *before* processing moves).
  std::vector<EcManager::Split> splits;

  /// Net port changes: first-from != last-to after merging the batch.
  struct Move {
    topo::NodeId device;
    EcId ec;
    PortKey from;
    PortKey to;
  };
  std::vector<Move> moves;

  /// ECs whose ACL filtering changed on some interface.
  std::vector<EcId> acl_affected;

  struct Stats {
    std::size_t rule_inserts = 0;
    std::size_t rule_deletes = 0;
    std::size_t stale_ops = 0;    ///< no-op deletes/inserts (order artifacts)
    std::size_t ec_moves = 0;     ///< raw per-step EC moves (paper's "#ECs")
    std::size_t ecs_changed = 0;  ///< unique (device, EC) with a net change
    std::size_t splits = 0;
  };
  Stats stats;

  /// One independent work unit of this batch: an affected EC plus the
  /// devices whose forwarding for it changed (empty when only its ACL
  /// filtering changed). ECs are independent of each other — recomputing
  /// one never reads another's state — which is what lets the checker
  /// shard them across threads.
  struct EcRecord {
    EcId ec = 0;
    std::vector<topo::NodeId> moved_devices;  ///< sorted, unique
  };

  /// The batch regrouped per EC (moves + acl_affected merged), sorted by
  /// EC id so consumers get a canonical, schedule-independent order.
  std::vector<EcRecord> per_ec() const;

  bool empty() const { return splits.empty() && moves.empty() && acl_affected.empty(); }
};

class NetworkModel {
 public:
  NetworkModel(PacketSpace& space, EcManager& ecs, std::size_t node_count);

  /// Apply a batch of forwarding/filter rule changes in the given order.
  ModelDelta apply_batch(const routing::DataPlaneDelta& delta, UpdateOrder order);

  /// The port taking `ec` at `device` (drop when unmapped).
  const PortKey& port_of(topo::NodeId device, EcId ec) const;

  /// Does the ACL on (device, iface, direction) let `ec` through?
  /// True when no ACL is bound there. Thread-safe for concurrent readers:
  /// the verdict comes from a per-binding bitmap maintained eagerly (on
  /// filter changes and EC splits), not from a BDD query on the hot path —
  /// the checker's parallel shards call this from worker threads.
  bool permits(topo::NodeId device, topo::IfaceId iface, bool inbound, EcId ec) const;

  /// Longest-prefix-match lookup of a concrete destination in the device's
  /// rule table: the matched prefix and its port, or nullopt when no rule
  /// covers the address (implicit drop). Debugging/trace API.
  std::optional<std::pair<net::Ipv4Prefix, PortKey>> lookup(topo::NodeId device,
                                                            net::Ipv4Addr dst) const;

  /// Rule-level ACL decision for a concrete flow (trace API): which filter
  /// rule (if any ACL is bound) decides the flow, and the verdict.
  struct FilterVerdict {
    bool has_acl = false;
    bool permit = true;  ///< implicit deny when an ACL is bound and nothing matches
    std::optional<routing::FilterRule> rule;
  };
  FilterVerdict filter_verdict(topo::NodeId device, topo::IfaceId iface, bool inbound,
                               const config::Flow& flow) const;

  std::size_t device_count() const noexcept { return devices_.size(); }
  std::size_t rule_count() const;

  /// Times permits() had to fall back to a live BDD query because an ACL
  /// binding's permit bitmap did not cover the asked-for EC. Kept complete
  /// by construction (creation-time refresh + split listener + an eager
  /// batch-end sweep), so any nonzero value is a thread-safety bug — the
  /// fuzz harness asserts this stays 0.
  std::uint64_t permit_fallback_count() const { return permit_fallbacks_.load(); }

 private:
  struct AclBinding {
    std::vector<routing::FilterRule> rules;  ///< sorted by priority
    BddRef permit = kBddTrue;
    /// permit membership per EC, kept complete (split listeners extend it),
    /// so permits() never touches the (non-thread-safe) BDD manager.
    std::vector<std::uint8_t> permit_by_ec;
  };

  struct Device {
    net::PrefixTrie<PortKey> rules;
    std::unordered_map<EcId, PortKey> port_of;  ///< absent => drop
    /// Keyed by (iface, inbound).
    std::map<std::pair<topo::IfaceId, bool>, AclBinding> acls;
  };

  /// The packets a rule at `prefix` actually sees on `device`.
  BddRef effective_match(const Device& dev, net::Ipv4Prefix prefix);

  /// Recompute `binding.permit_by_ec` for every current EC.
  void refresh_acl_cache(AclBinding& binding);
  void insert_rule(topo::NodeId device, const routing::FibEntry& e, ModelDelta& out);
  void remove_rule(topo::NodeId device, const routing::FibEntry& e, ModelDelta& out);
  void move_ecs(topo::NodeId device, BddRef packets, const PortKey& to, ModelDelta& out);
  void apply_filter_changes(const dd::ZSet<routing::FilterRule>& delta, ModelDelta& out);
  /// EcManager split listener: children inherit their parent's ports.
  void mirror_split(const EcManager::Split& s);
  /// EcManager remap listener: translate port maps and ACL permit bitmaps
  /// through a compact()'s old-id → new-id mapping. Merged atoms are
  /// indistinguishable by every registered predicate, hence by every rule's
  /// match, so their entries agree (debug-asserted).
  void apply_remap(const EcRemap& remap);

  PacketSpace& space_;
  EcManager& ecs_;
  std::vector<Device> devices_;
  PortKey drop_port_;

  /// A relaxed counter that keeps the model move-constructible (std::atomic
  /// itself is not movable; moves only happen single-threaded during setup).
  struct RelaxedCounter {
    std::atomic<std::uint64_t> value{0};
    RelaxedCounter() noexcept = default;
    RelaxedCounter(const RelaxedCounter& o) noexcept : value(o.load()) {}
    RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
      value.store(o.load(), std::memory_order_relaxed);
      return *this;
    }
    void bump() noexcept { value.fetch_add(1, std::memory_order_relaxed); }
    std::uint64_t load() const noexcept { return value.load(std::memory_order_relaxed); }
  };

  /// Diagnostic only (see permit_fallback_count).
  mutable RelaxedCounter permit_fallbacks_;

  /// Batch-scope scratch: (device, ec) -> port before its first move.
  std::unordered_map<std::uint64_t, PortKey> first_from_;
  /// Set while a batch runs so the split listener can record into it.
  ModelDelta* current_batch_ = nullptr;

 public:
  /// Deep copy of every device's state: rule tries, EC->port maps, and ACL
  /// bindings including their permit BDDs and per-EC permit bitmaps. The
  /// BddRefs inside are valid only alongside the PacketSpace snapshot taken
  /// with them (RealConfig pairs the two).
  struct Snapshot {
    std::vector<Device> devices;
  };

  /// Checkpoint the model. Must not be called while a batch is in flight.
  Snapshot snapshot() const;

  /// Reset device state to `snap`, discarding any batch scratch. The EC
  /// split subscription stays wired (it is pipeline topology, not state).
  void restore(const Snapshot& snap);
};

}  // namespace rcfg::dpm
