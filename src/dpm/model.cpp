#include "dpm/model.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <type_traits>

namespace rcfg::dpm {

namespace {

// The batch scratch map packs (device, ec) into one 64-bit key. Widening
// either id type past 32 bits would silently truncate/overlap keys and
// corrupt the merge of per-EC moves, so pin the widths right here.
static_assert(sizeof(topo::NodeId) == 4 && std::is_unsigned_v<topo::NodeId>,
              "move_key packs NodeId into the upper 32 bits");
static_assert(sizeof(EcId) == 4 && std::is_unsigned_v<EcId>,
              "move_key packs EcId into the lower 32 bits");

std::uint64_t move_key(topo::NodeId device, EcId ec) {
  return (std::uint64_t{device} << 32) | ec;
}

/// Deterministic application order within one phase of a batch.
struct RuleOp {
  routing::FibEntry entry;
  bool insert = true;
};

bool op_before(const RuleOp& a, const RuleOp& b) {
  if (a.entry.node != b.entry.node) return a.entry.node < b.entry.node;
  if (a.entry.prefix != b.entry.prefix) return a.entry.prefix < b.entry.prefix;
  if (a.insert != b.insert) return a.insert;  // insert before delete
  return false;
}

}  // namespace

std::string to_string(const PortKey& p) {
  switch (p.action) {
    case routing::FibAction::kDeliver:
      return "deliver";
    case routing::FibAction::kDrop:
      return "drop";
    case routing::FibAction::kForward: {
      std::string out = "fwd[";
      for (std::size_t i = 0; i < p.ifaces.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(p.ifaces[i]);
      }
      return out + "]";
    }
  }
  return "?";
}

std::vector<ModelDelta::EcRecord> ModelDelta::per_ec() const {
  std::map<EcId, std::vector<topo::NodeId>> grouped;
  for (const Move& mv : moves) grouped[mv.ec].push_back(mv.device);
  for (const EcId ec : acl_affected) grouped.try_emplace(ec);
  std::vector<EcRecord> out;
  out.reserve(grouped.size());
  for (auto& [ec, devices] : grouped) {
    std::sort(devices.begin(), devices.end());
    devices.erase(std::unique(devices.begin(), devices.end()), devices.end());
    out.push_back(EcRecord{ec, std::move(devices)});
  }
  return out;
}

const char* to_string(UpdateOrder order) {
  switch (order) {
    case UpdateOrder::kInsertFirst:
      return "insert-first";
    case UpdateOrder::kDeleteFirst:
      return "delete-first";
    case UpdateOrder::kInterleaved:
      return "interleaved";
  }
  return "?";
}

NetworkModel::NetworkModel(PacketSpace& space, EcManager& ecs, std::size_t node_count)
    : space_(space), ecs_(ecs), devices_(node_count) {
  ecs_.subscribe([this](const EcManager::Split& s) { mirror_split(s); });
  ecs_.subscribe_remap([this](const EcRemap& r) { apply_remap(r); });
}

const PortKey& NetworkModel::port_of(topo::NodeId device, EcId ec) const {
  const Device& dev = devices_.at(device);
  auto it = dev.port_of.find(ec);
  return it == dev.port_of.end() ? drop_port_ : it->second;
}

bool NetworkModel::permits(topo::NodeId device, topo::IfaceId iface, bool inbound,
                           EcId ec) const {
  const Device& dev = devices_.at(device);
  auto it = dev.acls.find({iface, inbound});
  if (it == dev.acls.end()) return true;
  const AclBinding& binding = it->second;
  if (ec < binding.permit_by_ec.size()) return binding.permit_by_ec[ec] != 0;
  // Unreachable by construction: bindings are refreshed at creation, the
  // split listener extends them per split, and apply_batch() eagerly
  // re-extends every binding before returning — so the bitmap always covers
  // ec_count() and the checker's worker threads never reach this line. The
  // BDD fallback below is not thread-safe; it survives only as a release-
  // mode safety net, and the counter lets the fuzz oracle trip on any use.
  assert(false && "NetworkModel::permits: permit_by_ec cache incomplete");
  permit_fallbacks_.bump();
  return space_.implies(ecs_.ec_bdd(ec), binding.permit);
}

void NetworkModel::refresh_acl_cache(AclBinding& binding) {
  const std::size_t n = ecs_.ec_count();
  binding.permit_by_ec.resize(n);
  for (EcId ec = 0; ec < n; ++ec) {
    binding.permit_by_ec[ec] =
        space_.implies(ecs_.ec_bdd(ec), binding.permit) ? 1 : 0;
  }
}

std::optional<std::pair<net::Ipv4Prefix, PortKey>> NetworkModel::lookup(
    topo::NodeId device, net::Ipv4Addr dst) const {
  const auto hit = devices_.at(device).rules.lookup(dst);
  if (!hit) return std::nullopt;
  return std::make_pair(hit->first, *hit->second);
}

namespace {
bool filter_rule_matches(const routing::FilterRule& r, const config::Flow& flow) {
  const auto proto = static_cast<config::IpProto>(r.proto);
  if (proto != config::IpProto::kAny && proto != flow.proto) return false;
  if (!r.src.contains(flow.src) || !r.dst.contains(flow.dst)) return false;
  if (flow.src_port < r.src_port_lo || flow.src_port > r.src_port_hi) return false;
  if (flow.dst_port < r.dst_port_lo || flow.dst_port > r.dst_port_hi) return false;
  return true;
}
}  // namespace

NetworkModel::FilterVerdict NetworkModel::filter_verdict(topo::NodeId device,
                                                         topo::IfaceId iface, bool inbound,
                                                         const config::Flow& flow) const {
  FilterVerdict v;
  const Device& dev = devices_.at(device);
  auto it = dev.acls.find({iface, inbound});
  if (it == dev.acls.end()) return v;  // no ACL: permit
  v.has_acl = true;
  for (const routing::FilterRule& r : it->second.rules) {
    if (filter_rule_matches(r, flow)) {
      v.permit = r.permit;
      v.rule = r;
      return v;
    }
  }
  v.permit = false;  // implicit deny
  return v;
}

std::size_t NetworkModel::rule_count() const {
  std::size_t n = 0;
  for (const Device& d : devices_) n += d.rules.size();
  return n;
}

NetworkModel::Snapshot NetworkModel::snapshot() const {
  if (current_batch_ != nullptr) {
    throw std::logic_error("NetworkModel::snapshot: batch in flight");
  }
  return Snapshot{devices_};
}

void NetworkModel::restore(const Snapshot& snap) {
  if (snap.devices.size() != devices_.size()) {
    throw std::logic_error("NetworkModel::restore: snapshot has " +
                           std::to_string(snap.devices.size()) + " devices, model has " +
                           std::to_string(devices_.size()));
  }
  devices_ = snap.devices;
  first_from_.clear();
  current_batch_ = nullptr;
}

BddRef NetworkModel::effective_match(const Device& dev, net::Ipv4Prefix prefix) {
  BddRef eff = space_.dst_prefix(prefix);
  dev.rules.visit_descendants(prefix, [&](net::Ipv4Prefix longer, const PortKey&) {
    eff = space_.set_diff(eff, space_.dst_prefix(longer));
  });
  return eff;
}

void NetworkModel::mirror_split(const EcManager::Split& s) {
  // Children inherit their parent's port on every device — the packets did
  // not change behaviour by being renamed.
  for (Device& dev : devices_) {
    auto it = dev.port_of.find(s.parent);
    if (it != dev.port_of.end()) dev.port_of.emplace(s.child, it->second);
    // ACL permit bitmaps: a binding's permit set is a registered predicate,
    // so the parent atom was homogeneous w.r.t. it and the child keeps the
    // parent's verdict.
    for (auto& [key, binding] : dev.acls) {
      if (s.parent < binding.permit_by_ec.size()) {
        if (binding.permit_by_ec.size() <= s.child) {
          binding.permit_by_ec.resize(s.child + 1);
        }
        binding.permit_by_ec[s.child] = binding.permit_by_ec[s.parent];
      }
    }
  }
  // Mirror batch-scope bookkeeping too.
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    auto it = first_from_.find(move_key(static_cast<topo::NodeId>(d), s.parent));
    if (it != first_from_.end()) {
      first_from_.emplace(move_key(static_cast<topo::NodeId>(d), s.child), it->second);
    }
  }
  if (current_batch_ != nullptr) {
    ++current_batch_->stats.splits;
    current_batch_->splits.push_back(s);
  }
}

void NetworkModel::apply_remap(const EcRemap& remap) {
  // Compaction runs between batches (RealConfig's reclaim step), never
  // while the model is mid-update.
  assert(current_batch_ == nullptr && "EC remap during a batch");
  first_from_.clear();
  for (Device& dev : devices_) {
    std::unordered_map<EcId, PortKey> ports;
    ports.reserve(dev.port_of.size());
    for (const auto& [ec, port] : dev.port_of) {
      const auto [slot, fresh] = ports.try_emplace(remap.forward[ec], port);
      // Merged atoms take the same port everywhere — that is what made
      // them mergeable.
      assert(fresh || slot->second == port);
      (void)slot;
      (void)fresh;
    }
    dev.port_of = std::move(ports);
    for (auto& [key, binding] : dev.acls) {
      std::vector<std::uint8_t> by_ec(remap.new_count, 0);
      const std::size_t n =
          std::min(binding.permit_by_ec.size(), remap.forward.size());
      for (EcId ec = 0; ec < n; ++ec) {
        by_ec[remap.forward[ec]] = binding.permit_by_ec[ec];
      }
      binding.permit_by_ec = std::move(by_ec);
    }
  }
}

void NetworkModel::move_ecs(topo::NodeId device, BddRef packets, const PortKey& to,
                            ModelDelta& out) {
  Device& dev = devices_[device];
  for (EcId ec : ecs_.ecs_in(packets)) {
    const PortKey& from = port_of(device, ec);
    if (from == to) continue;
    first_from_.try_emplace(move_key(device, ec), from);
    if (to == PortKey::drop()) {
      dev.port_of.erase(ec);
    } else {
      dev.port_of[ec] = to;
    }
    ++out.stats.ec_moves;
  }
}

void NetworkModel::insert_rule(topo::NodeId device, const routing::FibEntry& e,
                               ModelDelta& out) {
  Device& dev = devices_[device];
  const PortKey port = PortKey::of(e);
  const PortKey* existing = dev.rules.find(e.prefix);
  if (existing != nullptr && *existing == port) {
    ++out.stats.stale_ops;
    return;
  }
  // Register the rule's *raw* prefix set, not its effective match. With
  // every present rule's raw prefix registered, no atom straddles any
  // effective match either (an effective match is a boolean combination of
  // present prefixes), so move_ecs below still moves whole atoms — and the
  // raw predicate pairs trivially with the unregister in remove_rule(),
  // which is what lets compact() merge safely. Effective matches have no
  // such pairing: the shape registered at insert time (prefix minus the
  // *then-present* descendants) is generally not reconstructible at
  // withdrawal time, and merging atoms by the surviving effective-match
  // signatures can equate packets with different forwarding behaviour.
  const bool fresh_rule = existing == nullptr;
  const BddRef eff = effective_match(dev, e.prefix);
  if (fresh_rule) ecs_.register_predicate(space_.dst_prefix(e.prefix));
  dev.rules.insert(e.prefix, port);
  move_ecs(device, eff, port, out);
  ++out.stats.rule_inserts;
}

void NetworkModel::remove_rule(topo::NodeId device, const routing::FibEntry& e,
                               ModelDelta& out) {
  Device& dev = devices_[device];
  const PortKey port = PortKey::of(e);
  const PortKey* existing = dev.rules.find(e.prefix);
  if (existing == nullptr || *existing != port) {
    // Stale delete: the rule was already overwritten by an earlier insert
    // in this batch (the insertion-first win) or never existed.
    ++out.stats.stale_ops;
    return;
  }
  const BddRef eff = effective_match(dev, e.prefix);
  dev.rules.erase(e.prefix);

  // Packets revert to the nearest covering rule, or drop.
  PortKey owner = PortKey::drop();
  dev.rules.visit_ancestors(e.prefix,
                            [&](net::Ipv4Prefix, const PortKey& p) { owner = p; });
  move_ecs(device, eff, owner, out);
  // The rule is gone: drop the reference its insert_rule() took. Atoms
  // stay refined until the next compact(), so the move above was safe.
  ecs_.unregister_predicate(space_.dst_prefix(e.prefix));
  ++out.stats.rule_deletes;
}

void NetworkModel::apply_filter_changes(const dd::ZSet<routing::FilterRule>& delta,
                                        ModelDelta& out) {
  if (delta.empty()) return;
  // Group changed bindings.
  std::map<std::tuple<topo::NodeId, topo::IfaceId, bool>, bool> touched;
  for (const auto& [r, w] : delta) {
    touched[{r.node, r.iface, r.inbound}] = true;
    Device& dev = devices_.at(r.node);
    AclBinding& binding = dev.acls[{r.iface, r.inbound}];
    if (w > 0) {
      binding.rules.push_back(r);
    } else {
      auto it = std::find(binding.rules.begin(), binding.rules.end(), r);
      if (it != binding.rules.end()) binding.rules.erase(it);
    }
  }
  for (const auto& [key, _] : touched) {
    const auto [node, iface, inbound] = key;
    Device& dev = devices_.at(node);
    auto it = dev.acls.find({iface, inbound});
    AclBinding& binding = it->second;
    std::sort(binding.rules.begin(), binding.rules.end(),
              [](const routing::FilterRule& a, const routing::FilterRule& b) {
                return a.priority < b.priority;
              });
    const BddRef old_permit = binding.permit;
    const bool unbound = binding.rules.empty();
    // No rules bound means no ACL at all: permit everything.
    const BddRef new_permit = unbound ? kBddTrue : space_.acl_permit_set(binding.rules);
    if (new_permit != old_permit) {
      ecs_.register_predicate(new_permit);
      binding.permit = new_permit;
      const BddRef changed = space_.set_xor(old_permit, new_permit);
      for (EcId ec : ecs_.ecs_in(changed)) out.acl_affected.push_back(ec);
      // Drop the old permit's reference only after the ecs_in above: the
      // atoms remain refined for it regardless, but the pairing rule is
      // "a binding holds exactly one reference to its current permit".
      // A fresh binding starts at kBddTrue, which is never tracked.
      ecs_.unregister_predicate(old_permit);
    }
    if (unbound) {
      dev.acls.erase(it);
    } else {
      refresh_acl_cache(binding);
    }
  }
}

ModelDelta NetworkModel::apply_batch(const routing::DataPlaneDelta& delta, UpdateOrder order) {
  ModelDelta out;
  first_from_.clear();
  current_batch_ = &out;

  std::vector<RuleOp> inserts, deletes;
  for (const auto& [e, w] : delta.fib) {
    if (w > 0) {
      inserts.push_back(RuleOp{e, true});
    } else if (w < 0) {
      deletes.push_back(RuleOp{e, false});
    }
  }
  std::sort(inserts.begin(), inserts.end(), op_before);
  std::sort(deletes.begin(), deletes.end(), op_before);

  auto apply_op = [&](const RuleOp& op) {
    if (op.insert) {
      insert_rule(op.entry.node, op.entry, out);
    } else {
      remove_rule(op.entry.node, op.entry, out);
    }
  };

  switch (order) {
    case UpdateOrder::kInsertFirst:
      for (const RuleOp& op : inserts) apply_op(op);
      for (const RuleOp& op : deletes) apply_op(op);
      break;
    case UpdateOrder::kDeleteFirst:
      for (const RuleOp& op : deletes) apply_op(op);
      for (const RuleOp& op : inserts) apply_op(op);
      break;
    case UpdateOrder::kInterleaved: {
      std::vector<RuleOp> all;
      all.reserve(inserts.size() + deletes.size());
      all.insert(all.end(), inserts.begin(), inserts.end());
      all.insert(all.end(), deletes.begin(), deletes.end());
      std::sort(all.begin(), all.end(), op_before);  // insert precedes delete per key
      for (const RuleOp& op : all) apply_op(op);
      break;
    }
  }

  apply_filter_changes(delta.filters, out);

  // Merge per-(device, EC) moves into net moves.
  for (const auto& [key, from] : first_from_) {
    const auto device = static_cast<topo::NodeId>(key >> 32);
    const auto ec = static_cast<EcId>(key & 0xffffffffu);
    const PortKey& now = port_of(device, ec);
    if (!(from == now)) {
      out.moves.push_back(ModelDelta::Move{device, ec, from, now});
    }
  }
  out.stats.ecs_changed = out.moves.size();
  first_from_.clear();
  current_batch_ = nullptr;

  // Enforce the permits() invariant before the checker's worker threads see
  // this batch: every ACL binding's permit bitmap covers every current EC.
  // This loop is a no-op when the creation-time refresh and the split
  // listener did their jobs (the common case); it exists so the hot path
  // provably never falls back to the non-thread-safe BDD manager.
  const std::size_t ec_count = ecs_.ec_count();
  for (Device& dev : devices_) {
    for (auto& [key, binding] : dev.acls) {
      for (EcId ec = static_cast<EcId>(binding.permit_by_ec.size()); ec < ec_count; ++ec) {
        binding.permit_by_ec.push_back(
            space_.implies(ecs_.ec_bdd(ec), binding.permit) ? 1 : 0);
      }
    }
  }
  return out;
}

}  // namespace rcfg::dpm
