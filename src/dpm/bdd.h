#pragma once

// A reduced, ordered binary decision diagram (ROBDD) package — the symbolic
// set representation under the data plane model (the role bdd/javabdd plays
// for APKeep). Hash-consed nodes, memoized apply, and refcount-rooted
// mark-sweep GC: callers pin the functions they hold across operations with
// add_ref()/release(), and gc() reclaims every node unreachable from a
// pinned root. Live node ids never move (freed slots are recycled by
// make()), so a BddRef held under a root stays valid — and stays *equal*
// after rebuilds of the same function, because the surviving node keeps its
// hash-cons identity. `node_count()` reports live nodes for the benches.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/hash.h"

namespace rcfg::dpm {

/// A BDD node reference. 0 and 1 are the terminal false/true nodes.
using BddRef = std::uint32_t;

inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;

class BddManager {
 public:
  /// `var_count` fixes the variable order: variable 0 is tested first.
  explicit BddManager(unsigned var_count);

  unsigned var_count() const noexcept { return var_count_; }
  /// Live (non-freed) nodes, terminals included.
  std::size_t node_count() const noexcept { return nodes_.size() - free_.size(); }
  /// Total slots ever allocated (live + recyclable).
  std::size_t node_capacity() const noexcept { return nodes_.size(); }

  /// Pin `a` (and transitively everything below it) across gc() calls.
  /// Terminals are always live; pinning them is a no-op.
  void add_ref(BddRef a) noexcept;
  /// Drop one pin. The nodes stay valid until the next gc().
  void release(BddRef a) noexcept;
  /// External pins on `a` (terminals report 0; they need no pin).
  std::uint32_t ref_count(BddRef a) const noexcept;

  /// Mark from every pinned root, sweep dead nodes out of the hash-cons
  /// table, clear the memo caches, and recycle the slots. Returns the
  /// number of nodes reclaimed. Any BddRef not reachable from a pinned
  /// root is invalid afterwards.
  std::size_t gc();

  /// The function "variable v is 1".
  BddRef var(unsigned v);
  /// The function "variable v is 0".
  BddRef nvar(unsigned v);

  BddRef bdd_and(BddRef a, BddRef b);
  BddRef bdd_or(BddRef a, BddRef b);
  BddRef bdd_not(BddRef a);
  /// a ∧ ¬b
  BddRef bdd_diff(BddRef a, BddRef b);
  BddRef bdd_xor(BddRef a, BddRef b);

  bool is_false(BddRef a) const noexcept { return a == kBddFalse; }
  bool is_true(BddRef a) const noexcept { return a == kBddTrue; }

  /// a ∧ b == false, computed without materializing the conjunction when a
  /// short-circuit is possible.
  bool disjoint(BddRef a, BddRef b) { return bdd_and(a, b) == kBddFalse; }

  /// a ⊆ b (as sets): a ∧ ¬b == false.
  bool implies(BddRef a, BddRef b) { return bdd_diff(a, b) == kBddFalse; }

  /// Conjunction of literals: build a cube from (var, value) pairs given in
  /// strictly increasing var order.
  BddRef cube(const std::vector<std::pair<unsigned, bool>>& literals);

  /// Number of satisfying assignments over all var_count() variables.
  double sat_count(BddRef a);

  /// True when `a`'s value depends on some variable in [lo, hi) — i.e. the
  /// diagram tests one of those variables. Pure support walk, no caching.
  bool depends_on_range(BddRef a, unsigned lo, unsigned hi) const;

  /// One satisfying assignment (values indexed by variable), or nullopt for
  /// the false BDD. Unconstrained variables come back as 0. Used to extract
  /// a concrete witness packet from an EC.
  std::optional<std::vector<bool>> pick_one(BddRef a) const;

 private:
  struct Node {
    unsigned var;  ///< ~0u for terminals
    BddRef lo;     ///< value when var = 0
    BddRef hi;     ///< value when var = 1
  };

  BddRef make(unsigned var, BddRef lo, BddRef hi);

  enum class Op : std::uint8_t { kAnd, kOr, kXor };
  BddRef apply(Op op, BddRef a, BddRef b);

  unsigned var_of(BddRef r) const noexcept { return nodes_[r].var; }

  unsigned var_count_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> refs_;  ///< external pins, parallel to nodes_
  std::vector<BddRef> free_;         ///< reclaimed slots, recycled by make()
  std::unordered_map<std::uint64_t, BddRef> unique_;  ///< (var, lo, hi) -> node
  std::unordered_map<std::uint64_t, BddRef> apply_cache_;
  std::unordered_map<BddRef, BddRef> not_cache_;
  std::unordered_map<BddRef, double> count_cache_;
};

}  // namespace rcfg::dpm
