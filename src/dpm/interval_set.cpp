#include "dpm/interval_set.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rcfg::dpm {

namespace {

/// Canonicalize in place: sort, merge overlapping/adjacent, drop empties.
void canonicalize(std::vector<IntervalAtomBackend::Range>& ranges) {
  ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                              [](const auto& r) { return r.first >= r.second; }),
               ranges.end());
  std::sort(ranges.begin(), ranges.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (out > 0 && ranges[i].first <= ranges[out - 1].second) {
      ranges[out - 1].second = std::max(ranges[out - 1].second, ranges[i].second);
    } else {
      ranges[out++] = ranges[i];
    }
  }
  ranges.resize(out);
}

const std::vector<IntervalAtomBackend::Range> kEmptyRanges{};
const std::vector<IntervalAtomBackend::Range> kFullRanges{
    {0, IntervalAtomBackend::kSpaceEnd}};

}  // namespace

std::size_t IntervalAtomBackend::hash_ranges(const std::vector<Range>& ranges) {
  std::size_t seed = ranges.size();
  for (const Range& r : ranges) {
    core::hash_combine(seed, std::hash<std::uint64_t>{}(r.first));
    core::hash_combine(seed, std::hash<std::uint64_t>{}(r.second));
  }
  return seed;
}

const IntervalAtomBackend::Entry& IntervalAtomBackend::entry(BddRef h) const {
  assert(is_interval_ref(h));
  return sets_.at(h & ~kIntervalTag);
}

const std::vector<IntervalAtomBackend::Range>& IntervalAtomBackend::ranges(BddRef h) const {
  if (h == kBddFalse) return kEmptyRanges;
  if (h == kBddTrue) return kFullRanges;
  if (!is_interval_ref(h)) {
    throw std::logic_error("IntervalAtomBackend::ranges: not an interval handle");
  }
  return entry(h).ranges;
}

BddRef IntervalAtomBackend::from_ranges(std::vector<Range> in) {
  canonicalize(in);
  if (in.empty()) return kBddFalse;
  if (in.size() == 1 && in[0].first == 0 && in[0].second == kSpaceEnd) return kBddTrue;
  const std::size_t h = hash_ranges(in);
  std::vector<BddRef>& bucket = index_[h];
  for (const BddRef cand : bucket) {
    if (entry(cand).ranges == in) return cand;  // hash-cons hit
  }
  const BddRef handle = static_cast<BddRef>(sets_.size()) | kIntervalTag;
  sets_.push_back(Entry{std::move(in), 0});
  bucket.push_back(handle);
  return handle;
}

BddRef IntervalAtomBackend::dst_prefix(net::Ipv4Prefix p) {
  const std::uint64_t lo = p.address().bits();
  const std::uint64_t width = std::uint64_t{1} << (32 - p.length());
  return from_ranges({{lo, lo + width}});
}

namespace {

/// Boundary sweep: the union of both boundary arrays cuts the space into
/// segments of constant (in_a, in_b) membership; emit the segments where
/// `keep(in_a, in_b)` holds, coalescing adjacent ones. Outside every input
/// range both memberships are false and keep(false, false) is false for
/// every supported operation, so only segments between cut points matter.
template <class Keep>
std::vector<IntervalAtomBackend::Range> sweep(
    const std::vector<IntervalAtomBackend::Range>& a,
    const std::vector<IntervalAtomBackend::Range>& b, Keep keep) {
  std::vector<std::uint64_t> cuts;
  cuts.reserve(2 * (a.size() + b.size()));
  for (const auto& r : a) {
    cuts.push_back(r.first);
    cuts.push_back(r.second);
  }
  for (const auto& r : b) {
    cuts.push_back(r.first);
    cuts.push_back(r.second);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<IntervalAtomBackend::Range> out;
  std::size_t ia = 0, ib = 0;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const std::uint64_t lo = cuts[i], hi = cuts[i + 1];
    while (ia < a.size() && a[ia].second <= lo) ++ia;
    while (ib < b.size() && b[ib].second <= lo) ++ib;
    const bool in_a = ia < a.size() && a[ia].first <= lo;
    const bool in_b = ib < b.size() && b[ib].first <= lo;
    if (!keep(in_a, in_b)) continue;
    if (!out.empty() && out.back().second == lo) {
      out.back().second = hi;  // coalesce adjacent segments
    } else {
      out.push_back({lo, hi});
    }
  }
  return out;
}

}  // namespace

BddRef IntervalAtomBackend::set_and(BddRef a, BddRef b) {
  if (a == kBddFalse || b == kBddFalse) return kBddFalse;
  if (a == kBddTrue) return b;
  if (b == kBddTrue) return a;
  if (a == b) return a;
  return from_ranges(sweep(ranges(a), ranges(b), [](bool x, bool y) { return x && y; }));
}

BddRef IntervalAtomBackend::set_or(BddRef a, BddRef b) {
  if (a == kBddTrue || b == kBddTrue) return kBddTrue;
  if (a == kBddFalse) return b;
  if (b == kBddFalse) return a;
  if (a == b) return a;
  return from_ranges(sweep(ranges(a), ranges(b), [](bool x, bool y) { return x || y; }));
}

BddRef IntervalAtomBackend::set_diff(BddRef a, BddRef b) {
  if (a == kBddFalse || b == kBddTrue) return kBddFalse;
  if (b == kBddFalse) return a;
  if (a == b) return kBddFalse;
  return from_ranges(sweep(ranges(a), ranges(b), [](bool x, bool y) { return x && !y; }));
}

BddRef IntervalAtomBackend::set_xor(BddRef a, BddRef b) {
  if (a == kBddFalse) return b;
  if (b == kBddFalse) return a;
  if (a == b) return kBddFalse;
  return from_ranges(sweep(ranges(a), ranges(b), [](bool x, bool y) { return x != y; }));
}

BddRef IntervalAtomBackend::set_not(BddRef a) {
  if (a == kBddFalse) return kBddTrue;
  if (a == kBddTrue) return kBddFalse;
  return from_ranges(sweep(kFullRanges, ranges(a), [](bool x, bool y) { return x && !y; }));
}

bool IntervalAtomBackend::disjoint(BddRef a, BddRef b) {
  if (a == kBddFalse || b == kBddFalse) return true;
  if (a == kBddTrue || b == kBddTrue) return false;  // operands are nonempty
  if (a == b) return false;
  const std::vector<Range>& ra = ranges(a);
  const std::vector<Range>& rb = ranges(b);
  std::size_t ia = 0, ib = 0;
  while (ia < ra.size() && ib < rb.size()) {
    if (ra[ia].second <= rb[ib].first) {
      ++ia;
    } else if (rb[ib].second <= ra[ia].first) {
      ++ib;
    } else {
      return false;  // overlap
    }
  }
  return true;
}

bool IntervalAtomBackend::implies(BddRef a, BddRef b) {
  if (a == kBddFalse || b == kBddTrue) return true;
  if (b == kBddFalse) return false;  // a is nonempty
  if (a == kBddTrue) return false;   // b is a proper subset of the space
  if (a == b) return true;
  const std::vector<Range>& ra = ranges(a);
  const std::vector<Range>& rb = ranges(b);
  std::size_t ib = 0;
  for (const Range& r : ra) {
    while (ib < rb.size() && rb[ib].second <= r.first) ++ib;
    // Canonical sets have coalesced ranges, so one b-range must cover the
    // whole a-range (coverage can never be stitched across a gap).
    if (ib >= rb.size() || rb[ib].first > r.first || rb[ib].second < r.second) return false;
  }
  return true;
}

void IntervalAtomBackend::add_ref(BddRef a) noexcept {
  if (!is_interval_ref(a)) return;  // terminals need no pin
  ++sets_[a & ~kIntervalTag].refs;
}

void IntervalAtomBackend::release(BddRef a) noexcept {
  if (!is_interval_ref(a)) return;
  Entry& e = sets_[a & ~kIntervalTag];
  assert(e.refs > 0 && "IntervalAtomBackend::release without matching add_ref");
  if (e.refs > 0) --e.refs;
}

std::uint32_t IntervalAtomBackend::ref_count(BddRef a) const noexcept {
  if (!is_interval_ref(a)) return 0;
  return sets_[a & ~kIntervalTag].refs;
}

std::uint64_t IntervalAtomBackend::address_count(BddRef a) const {
  if (a == kBddFalse) return 0;
  if (a == kBddTrue) return kSpaceEnd;
  std::uint64_t n = 0;
  for (const Range& r : entry(a).ranges) n += r.second - r.first;
  return n;
}

double IntervalAtomBackend::sat_count(BddRef a) {
  // addresses * 2^(non-dst variables); exact in double (the address count
  // fits 33 bits and the scale is a power of two), so it compares equal to
  // the BDD backend's count for any destination-only set.
  return std::ldexp(static_cast<double>(address_count(a)),
                    static_cast<int>(var_count_) - 32);
}

std::optional<std::vector<bool>> IntervalAtomBackend::pick_one(BddRef a) const {
  if (a == kBddFalse) return std::nullopt;
  std::vector<bool> out(var_count_, false);
  if (a == kBddTrue) return out;  // minimal member: address 0, all else 0
  const std::uint64_t addr = entry(a).ranges.front().first;
  for (unsigned bit = 0; bit < 32; ++bit) {
    out[bit] = ((addr >> (31 - bit)) & 1u) != 0;  // dst bits are vars [0, 32)
  }
  return out;
}

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kBdd:
      return "bdd";
    case BackendKind::kInterval:
      return "interval";
    case BackendKind::kAuto:
      return "auto";
  }
  return "?";
}

std::optional<BackendKind> backend_kind_of(std::string_view name) {
  if (name == "bdd") return BackendKind::kBdd;
  if (name == "interval") return BackendKind::kInterval;
  if (name == "auto") return BackendKind::kAuto;
  return std::nullopt;
}

}  // namespace rcfg::dpm
