#pragma once

// Equivalence-class (EC) management, after APKeep: the packet space is
// partitioned into *atoms* — the coarsest partition that is refined with
// respect to every registered predicate. Each atom is an EC: all its
// packets are treated identically by every rule in the network, so
// verification reasons per-EC instead of per-packet.
//
// Registering a predicate splits every straddling atom in two; atoms only
// ever get finer (this implementation does not merge on predicate
// unregistration — a finer-than-minimal partition stays correct, see
// DESIGN.md; compact() rebuilds minimality between benchmark phases).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "dpm/packet_space.h"

namespace rcfg::dpm {

using EcId = std::uint32_t;

class EcManager {
 public:
  explicit EcManager(PacketSpace& space);

  /// A split event: `parent`'s packets inside the predicate moved to the
  /// new atom `child`; the parent atom keeps the packets outside it. Every
  /// structure indexing ECs must mirror child entries from the parent's.
  struct Split {
    EcId parent;
    EcId child;
  };

  /// Structures that index ECs (the network model's port maps, the
  /// checker's per-EC state) subscribe here and mirror each split as it
  /// happens, regardless of which component triggered the registration.
  using SplitListener = std::function<void(const Split&)>;
  void subscribe(SplitListener listener) { listeners_.push_back(std::move(listener)); }

  /// Refine the partition w.r.t. `p`. Idempotent per distinct BDD (a
  /// reference count tracks repeated registrations). Listeners fire once
  /// per split before this returns.
  std::vector<Split> register_predicate(BddRef p);

  /// Drop one reference to `p`. Atoms are not merged (documented above).
  void unregister_predicate(BddRef p);

  /// Rebuild the minimal partition for the currently referenced predicates.
  /// Invalidates all EC ids; only call between verification phases.
  void compact();

  std::size_t ec_count() const noexcept { return atoms_.size(); }
  BddRef ec_bdd(EcId id) const { return atoms_.at(id); }

  /// All ECs contained in `p`. `p` must be a boolean combination of
  /// registered predicates (then every atom is inside or disjoint).
  std::vector<EcId> ecs_in(BddRef p) const;

  /// The EC containing a fully specified packet (by its BDD cube).
  EcId ec_of(BddRef packet_cube) const;

  std::size_t predicate_count() const noexcept { return predicates_.size(); }

  /// Value copy of the partition (atom BDD refs + predicate refcounts).
  /// The BddRefs are only meaningful alongside the PacketSpace state they
  /// were taken with — RealConfig snapshots the space and the partition
  /// together.
  struct Snapshot {
    std::vector<BddRef> atoms;
    std::unordered_map<BddRef, std::uint32_t> predicates;
  };

  Snapshot snapshot() const { return Snapshot{atoms_, predicates_}; }

  /// Reset the partition to `snap`. Split listeners are deliberately kept:
  /// they are subscriptions wired to sibling components (model, checker),
  /// part of the pipeline's topology rather than its state.
  void restore(const Snapshot& snap) {
    atoms_ = snap.atoms;
    predicates_ = snap.predicates;
  }

 private:
  PacketSpace& space_;
  std::vector<BddRef> atoms_;                      ///< EcId -> atom BDD
  std::unordered_map<BddRef, std::uint32_t> predicates_;  ///< refcounts
  std::vector<SplitListener> listeners_;
};

}  // namespace rcfg::dpm
