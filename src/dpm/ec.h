#pragma once

// Equivalence-class (EC) management, after APKeep: the packet space is
// partitioned into *atoms* — the coarsest partition that is refined with
// respect to every registered predicate. Each atom is an EC: all its
// packets are treated identically by every rule in the network, so
// verification reasons per-EC instead of per-packet.
//
// Registering a predicate splits every straddling atom in two. The inverse
// direction is handled by compact(): once unregister_predicate() has
// dropped the last reference to one or more predicates, atoms that are no
// longer distinguished by any *remaining* predicate are merged, and every
// subscriber learns the old-id → new-id mapping through an EcRemap
// notification — so long-lived sessions keep the partition minimal instead
// of refining forever (see DESIGN.md "Memory reclamation").
//
// The manager also owns the garbage-collection roots for the partition:
// every atom handle and every registered predicate key is pinned with
// PacketSpace::add_ref() and released when it dies, so a gc() between
// batches reclaims exactly the nodes no longer reachable from the current
// configuration's state.
//
// The manager is backend-agnostic: all set operations go through the
// PacketSpace facade, so the partition works identically over interval
// atoms and over BDDs. It subscribes to the space's one-time interval→BDD
// migration and rekeys its tables to canonical BDD handles when it fires
// (EC *ids* are untouched — only the handle each id maps to changes).

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dpm/packet_space.h"

namespace rcfg::dpm {

using EcId = std::uint32_t;

/// A merge event produced by EcManager::compact(): every old EC id maps
/// through `forward` onto a dense range [0, new_count). Merged atoms share
/// a forward target; new ids are assigned by first occurrence in old-id
/// order, so an unmerged prefix keeps its ids. Every structure indexing
/// ECs must translate its keys before the next query.
struct EcRemap {
  std::vector<EcId> forward;  ///< old EcId -> new EcId (size = old ec_count)
  std::size_t new_count = 0;
};

class EcManager {
 public:
  explicit EcManager(PacketSpace& space);

  /// A split event: `parent`'s packets inside the predicate moved to the
  /// new atom `child`; the parent atom keeps the packets outside it. Every
  /// structure indexing ECs must mirror child entries from the parent's.
  struct Split {
    EcId parent;
    EcId child;
  };

  /// Structures that index ECs (the network model's port maps, the
  /// checker's per-EC state) subscribe here and mirror each split as it
  /// happens, regardless of which component triggered the registration.
  using SplitListener = std::function<void(const Split&)>;
  void subscribe(SplitListener listener) { listeners_.push_back(std::move(listener)); }

  /// Same contract for merges: compact() fires each subscriber once with
  /// the full remap, after atoms_ already reflects the new partition.
  using RemapListener = std::function<void(const EcRemap&)>;
  void subscribe_remap(RemapListener listener) {
    remap_listeners_.push_back(std::move(listener));
  }

  /// Refine the partition w.r.t. `p`. Idempotent per distinct BDD (a
  /// reference count tracks repeated registrations). Listeners fire once
  /// per split before this returns. The trivial predicates true/false
  /// never refine anything and are not tracked at all.
  std::vector<Split> register_predicate(BddRef p);

  /// Drop one reference to `p`. When the last reference goes, the
  /// predicate stops pinning its BDD root and becomes eligible for
  /// merging at the next compact(). Unregistering a predicate that was
  /// never registered asserts in debug builds and is counted in stats()
  /// — it means the caller's register/unregister pairing is broken.
  void unregister_predicate(BddRef p);

  /// Merge atoms that are indistinguishable under the currently registered
  /// predicates, restoring the minimal partition. Safe to call with live
  /// subscribers: returns the EcRemap (also fanned out to remap
  /// listeners) when anything merged, nullopt when the partition was
  /// already minimal. Deterministic: independent of hash-map iteration
  /// order and thread count.
  std::optional<EcRemap> compact();

  /// Counters for refcount hygiene and reclamation activity.
  struct Stats {
    std::uint64_t unknown_unregisters = 0;  ///< unregister of an unknown predicate
    std::uint64_t compactions = 0;          ///< compact() calls that merged atoms
    std::uint64_t merged_atoms = 0;         ///< atoms eliminated across all compactions
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Predicates whose refcount hit zero since the last compact(). Merges
  /// only become possible after such a drop, so reclamation can skip the
  /// signature pass while this is zero.
  std::size_t dropped_since_compact() const noexcept { return dropped_since_compact_; }

  std::size_t ec_count() const noexcept { return atoms_.size(); }
  BddRef ec_bdd(EcId id) const { return atoms_.at(id); }

  /// All ECs contained in `p`. `p` must be a boolean combination of
  /// registered predicates (then every atom is inside or disjoint).
  /// Fast paths: false/true/single-atom answer without touching the BDD
  /// engine; registered predicates get a cached member list maintained
  /// across splits and invalidated by compact()/restore().
  std::vector<EcId> ecs_in(BddRef p) const;

  /// The EC containing a fully specified packet (by its BDD cube).
  EcId ec_of(BddRef packet_cube) const;

  std::size_t predicate_count() const noexcept { return predicates_.size(); }
  /// Current refcount of a registered predicate (0 when unknown/trivial).
  std::uint32_t predicate_refs(BddRef p) const;

  /// Value copy of the partition (atom BDD refs + predicate refcounts).
  /// The BddRefs are only meaningful alongside the PacketSpace state they
  /// were taken with — RealConfig snapshots the space and the partition
  /// together.
  struct Snapshot {
    std::vector<BddRef> atoms;
    std::unordered_map<BddRef, std::uint32_t> predicates;
    std::size_t dropped_since_compact = 0;
  };

  Snapshot snapshot() const { return Snapshot{atoms_, predicates_, dropped_since_compact_}; }

  /// Reset the partition to `snap`. Split/remap listeners are deliberately
  /// kept: they are subscriptions wired to sibling components (model,
  /// checker), part of the pipeline's topology rather than its state.
  /// BDD roots are NOT re-pinned here — restore only makes sense next to
  /// a PacketSpace restored from the same snapshot, whose BddManager
  /// already carries the matching refcounts.
  void restore(const Snapshot& snap);

 private:
  std::vector<EcId> scan_members(BddRef p) const;

  /// Fired by PacketSpace when the interval→BDD migration happens: rekeys
  /// every atom and predicate to its canonical BDD handle (pinning the new,
  /// releasing the old) so identity-based invariants — the no-straddle
  /// check in register_predicate, atom_index_ lookups, predicate refcount
  /// keys — keep holding across the representation switch.
  void on_backend_migration();

  PacketSpace& space_;
  std::vector<BddRef> atoms_;                      ///< EcId -> atom BDD
  std::unordered_map<BddRef, EcId> atom_index_;    ///< atom BDD -> EcId
  std::unordered_map<BddRef, std::uint32_t> predicates_;  ///< refcounts
  /// Lazily filled per-registered-predicate member lists (sorted). Split
  /// maintenance appends the child wherever the parent is a member;
  /// compact()/restore() drop the cache wholesale.
  mutable std::unordered_map<BddRef, std::vector<EcId>> members_;
  std::vector<SplitListener> listeners_;
  std::vector<RemapListener> remap_listeners_;
  Stats stats_;
  std::size_t dropped_since_compact_ = 0;
};

}  // namespace rcfg::dpm
