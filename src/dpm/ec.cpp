#include "dpm/ec.h"

#include <stdexcept>

namespace rcfg::dpm {

EcManager::EcManager(PacketSpace& space) : space_(space) {
  atoms_.push_back(kBddTrue);  // EC 0: the whole packet space
}

std::vector<EcManager::Split> EcManager::register_predicate(BddRef p) {
  std::vector<Split> splits;
  auto [it, fresh] = predicates_.try_emplace(p, 0);
  ++it->second;
  if (!fresh) return splits;  // partition already refined for p
  if (p == kBddTrue || p == kBddFalse) return splits;

  BddManager& bdd = space_.bdd();
  const std::size_t n = atoms_.size();
  for (EcId id = 0; id < n; ++id) {
    const BddRef inside = bdd.bdd_and(atoms_[id], p);
    if (inside == kBddFalse || inside == atoms_[id]) continue;  // no straddle
    const BddRef outside = bdd.bdd_diff(atoms_[id], p);
    // Parent keeps the outside part; the new child gets the inside part.
    atoms_[id] = outside;
    const EcId child = static_cast<EcId>(atoms_.size());
    atoms_.push_back(inside);
    const Split s{id, child};
    for (const SplitListener& l : listeners_) l(s);
    splits.push_back(s);
  }
  return splits;
}

void EcManager::unregister_predicate(BddRef p) {
  auto it = predicates_.find(p);
  if (it == predicates_.end()) return;
  if (--it->second == 0) predicates_.erase(it);
}

void EcManager::compact() {
  atoms_.clear();
  atoms_.push_back(kBddTrue);
  std::unordered_map<BddRef, std::uint32_t> keep = std::move(predicates_);
  predicates_.clear();
  for (const auto& [p, refs] : keep) {
    register_predicate(p);
    predicates_[p] = refs;  // restore the original refcount
  }
}

std::vector<EcId> EcManager::ecs_in(BddRef p) const {
  std::vector<EcId> out;
  if (p == kBddFalse) return out;
  BddManager& bdd = space_.bdd();
  for (EcId id = 0; id < atoms_.size(); ++id) {
    if (!bdd.disjoint(atoms_[id], p)) out.push_back(id);
  }
  return out;
}

EcId EcManager::ec_of(BddRef packet_cube) const {
  BddManager& bdd = space_.bdd();
  for (EcId id = 0; id < atoms_.size(); ++id) {
    if (!bdd.disjoint(atoms_[id], packet_cube)) return id;
  }
  throw std::logic_error("packet outside every EC (partition invariant broken)");
}

}  // namespace rcfg::dpm
