#include "dpm/ec.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace rcfg::dpm {

EcManager::EcManager(PacketSpace& space) : space_(space) {
  atoms_.push_back(kBddTrue);  // EC 0: the whole packet space
  atom_index_.emplace(kBddTrue, 0);
  space_.subscribe_migration([this] { on_backend_migration(); });
}

std::vector<EcManager::Split> EcManager::register_predicate(BddRef p) {
  std::vector<Split> splits;
  // Predicates minted before a migration canonicalize to the active
  // representation so the refcount map never aliases one set under two keys.
  p = space_.canonical(p);
  // True/false refine nothing; keeping them out of predicates_ means the
  // refcount map only ever holds predicates that pin a real root.
  if (p == kBddTrue || p == kBddFalse) return splits;
  auto [it, fresh] = predicates_.try_emplace(p, 0);
  ++it->second;
  if (!fresh) return splits;  // partition already refined for p

  space_.add_ref(p);  // the predicate key is a GC root while registered
  const std::size_t n = atoms_.size();
  for (EcId id = 0; id < n; ++id) {
    const BddRef inside = space_.set_and(atoms_[id], p);
    if (inside == kBddFalse || inside == atoms_[id]) continue;  // no straddle
    const BddRef outside = space_.set_diff(atoms_[id], p);
    // Parent keeps the outside part; the new child gets the inside part.
    // Re-root before releasing so neither half is ever unpinned.
    space_.add_ref(outside);
    space_.add_ref(inside);
    space_.release(atoms_[id]);
    atom_index_.erase(atoms_[id]);
    atoms_[id] = outside;
    atom_index_.emplace(outside, id);
    const EcId child = static_cast<EcId>(atoms_.size());
    atoms_.push_back(inside);
    atom_index_.emplace(inside, child);
    // Cached member lists: the parent was wholly inside or wholly outside
    // every cached predicate (the partition was refined for it), so the
    // child belongs exactly where the parent does. Child ids are
    // allocated in increasing order, so push_back keeps lists sorted.
    for (auto& [q, members] : members_) {
      if (std::binary_search(members.begin(), members.end(), id)) {
        members.push_back(child);
      }
    }
    const Split s{id, child};
    for (const SplitListener& l : listeners_) l(s);
    splits.push_back(s);
  }
  return splits;
}

void EcManager::unregister_predicate(BddRef p) {
  p = space_.canonical(p);
  if (p == kBddTrue || p == kBddFalse) return;  // mirrors register: never tracked
  auto it = predicates_.find(p);
  if (it == predicates_.end()) {
    // Never registered: a register/unregister pairing bug in the caller.
    ++stats_.unknown_unregisters;
    assert(false && "unregister_predicate: predicate was never registered");
    return;
  }
  if (--it->second == 0) {
    space_.release(it->first);
    predicates_.erase(it);
    members_.erase(p);
    ++dropped_since_compact_;
  }
}

std::optional<EcRemap> EcManager::compact() {
  dropped_since_compact_ = 0;
  const std::size_t n = atoms_.size();
  if (n <= 1) return std::nullopt;

  // Signature basis: the registered predicates in BddRef order — a
  // deterministic order independent of hash-map iteration. Every atom is
  // wholly inside or wholly disjoint from each basis predicate, so a
  // byte per predicate captures its side exactly.
  std::vector<BddRef> basis;
  basis.reserve(predicates_.size());
  for (const auto& [p, refs] : predicates_) basis.push_back(p);
  std::sort(basis.begin(), basis.end());

  EcRemap remap;
  remap.forward.resize(n);
  std::vector<std::vector<EcId>> groups;
  std::unordered_map<std::string, EcId> by_sig;
  for (EcId id = 0; id < n; ++id) {
    std::string sig(basis.size(), '0');
    for (std::size_t i = 0; i < basis.size(); ++i) {
      if (!space_.disjoint(atoms_[id], basis[i])) sig[i] = '1';
    }
    const auto [slot, fresh] =
        by_sig.try_emplace(std::move(sig), static_cast<EcId>(groups.size()));
    if (fresh) groups.emplace_back();
    groups[slot->second].push_back(id);
    remap.forward[id] = slot->second;
  }
  remap.new_count = groups.size();
  if (remap.new_count == n) return std::nullopt;  // already minimal

  // Union each group into its surviving atom. Pin the new atoms before
  // releasing the old ones so shared nodes never go unrooted.
  std::vector<BddRef> merged(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    BddRef u = kBddFalse;
    for (const EcId id : groups[g]) u = space_.set_or(u, atoms_[id]);
    merged[g] = u;
    space_.add_ref(u);
  }
  for (const BddRef a : atoms_) space_.release(a);
  atoms_ = std::move(merged);
  atom_index_.clear();
  for (EcId id = 0; id < atoms_.size(); ++id) atom_index_.emplace(atoms_[id], id);
  members_.clear();  // ids changed wholesale; recompute lazily

  ++stats_.compactions;
  stats_.merged_atoms += n - remap.new_count;
  for (const RemapListener& l : remap_listeners_) l(remap);
  return remap;
}

std::vector<EcId> EcManager::scan_members(BddRef p) const {
  std::vector<EcId> out;
  for (EcId id = 0; id < atoms_.size(); ++id) {
    if (!space_.disjoint(atoms_[id], p)) out.push_back(id);
  }
  return out;
}

std::vector<EcId> EcManager::ecs_in(BddRef p) const {
  p = space_.canonical(p);
  if (p == kBddFalse) return {};
  if (p == kBddTrue) {
    std::vector<EcId> all(atoms_.size());
    for (EcId id = 0; id < atoms_.size(); ++id) all[id] = id;
    return all;
  }
  // Single-atom fast path: atoms are pairwise disjoint, so a predicate
  // that *is* an atom contains exactly that atom.
  if (const auto it = atom_index_.find(p); it != atom_index_.end()) return {it->second};
  if (predicates_.find(p) != predicates_.end()) {
    const auto [it, fresh] = members_.try_emplace(p);
    if (fresh) it->second = scan_members(p);
    return it->second;
  }
  return scan_members(p);
}

EcId EcManager::ec_of(BddRef packet_cube) const {
  packet_cube = space_.canonical(packet_cube);
  for (EcId id = 0; id < atoms_.size(); ++id) {
    if (!space_.disjoint(atoms_[id], packet_cube)) return id;
  }
  throw std::logic_error("packet outside every EC (partition invariant broken)");
}

std::uint32_t EcManager::predicate_refs(BddRef p) const {
  const auto it = predicates_.find(space_.canonical(p));
  return it == predicates_.end() ? 0 : it->second;
}

void EcManager::restore(const Snapshot& snap) {
  atoms_ = snap.atoms;
  predicates_ = snap.predicates;
  dropped_since_compact_ = snap.dropped_since_compact;
  atom_index_.clear();
  for (EcId id = 0; id < atoms_.size(); ++id) atom_index_.emplace(atoms_[id], id);
  members_.clear();
}

void EcManager::on_backend_migration() {
  // Translate every atom to its canonical BDD, pinning the new handle
  // before releasing the old (the interval arena keeps the old set alive
  // regardless — this keeps both backends' refcounts honest). Atoms are
  // pairwise-disjoint nonempty sets and canonical() is injective on them,
  // so no two ids can collapse onto one handle; EC ids do not move.
  for (EcId id = 0; id < atoms_.size(); ++id) {
    const BddRef neu = space_.canonical(atoms_[id]);
    if (neu == atoms_[id]) continue;
    space_.add_ref(neu);
    space_.release(atoms_[id]);
    atoms_[id] = neu;
  }
  atom_index_.clear();
  for (EcId id = 0; id < atoms_.size(); ++id) atom_index_.emplace(atoms_[id], id);

  std::unordered_map<BddRef, std::uint32_t> rekeyed;
  rekeyed.reserve(predicates_.size());
  for (const auto& [p, refs] : predicates_) {
    const BddRef neu = space_.canonical(p);
    if (neu != p) {
      space_.add_ref(neu);
      space_.release(p);
    }
    rekeyed[neu] += refs;  // interned interval sets are distinct, so no merge
  }
  predicates_ = std::move(rekeyed);
  members_.clear();  // keys changed; recompute lazily
}

}  // namespace rcfg::dpm
