#include "dpm/packet_space.h"

#include <algorithm>

namespace rcfg::dpm {

BddRef PacketSpace::ip_prefix(unsigned base, net::Ipv4Prefix p) {
  std::vector<std::pair<unsigned, bool>> literals;
  literals.reserve(p.length());
  for (unsigned bit = 0; bit < p.length(); ++bit) {
    const bool value = (p.address().bits() >> (31 - bit)) & 1u;
    literals.emplace_back(base + bit, value);
  }
  return bdd_.cube(literals);
}

BddRef PacketSpace::dst_prefix(net::Ipv4Prefix p) { return ip_prefix(kDstIpBase, p); }
BddRef PacketSpace::src_prefix(net::Ipv4Prefix p) { return ip_prefix(kSrcIpBase, p); }

BddRef PacketSpace::proto(config::IpProto proto) {
  switch (proto) {
    case config::IpProto::kAny:
      return kBddTrue;
    case config::IpProto::kTcp:
      return bdd_.cube({{kProtoBase, false}, {kProtoBase + 1, false}});  // 0
    case config::IpProto::kUdp:
      return bdd_.cube({{kProtoBase, false}, {kProtoBase + 1, true}});  // 1
    case config::IpProto::kIcmp:
      return bdd_.cube({{kProtoBase, true}, {kProtoBase + 1, false}});  // 2
  }
  return kBddFalse;
}

BddRef PacketSpace::uint_range(unsigned base, unsigned bits, std::uint32_t lo, std::uint32_t hi) {
  // Recursive interval construction on the bit strings [lo, hi], MSB first.
  // ge(lo) ∧ le(hi) built as two linear-size threshold BDDs.
  auto threshold = [&](std::uint32_t bound, bool greater_equal) {
    // greater_equal: { x | x >= bound }; else { x | x <= bound }.
    BddRef r = kBddTrue;
    for (unsigned i = 0; i < bits; ++i) {
      // Process from LSB to MSB, building bottom-up.
      const unsigned bit = bits - 1 - i;
      const bool b = (bound >> i) & 1u;
      const unsigned v = base + bit;
      if (greater_equal) {
        // bound bit 1: x_bit must be 1 and the suffix >= bound suffix;
        // bound bit 0: x_bit = 1 wins outright, else decide on the suffix.
        r = b ? bdd_.bdd_and(bdd_.var(v), r) : bdd_.bdd_or(bdd_.var(v), r);
      } else {
        r = b ? bdd_.bdd_or(bdd_.nvar(v), r) : bdd_.bdd_and(bdd_.nvar(v), r);
      }
    }
    return r;
  };
  if (lo > hi) return kBddFalse;
  BddRef ge = lo == 0 ? kBddTrue : threshold(lo, true);
  const std::uint32_t max = bits >= 32 ? ~0u : ((1u << bits) - 1);
  BddRef le = hi >= max ? kBddTrue : threshold(hi, false);
  return bdd_.bdd_and(ge, le);
}

BddRef PacketSpace::src_port_range(std::uint16_t lo, std::uint16_t hi) {
  return uint_range(kSrcPortBase, 16, lo, hi);
}

BddRef PacketSpace::dst_port_range(std::uint16_t lo, std::uint16_t hi) {
  return uint_range(kDstPortBase, 16, lo, hi);
}

BddRef PacketSpace::filter_match(const routing::FilterRule& rule) {
  BddRef m = dst_prefix(rule.dst);
  m = bdd_.bdd_and(m, src_prefix(rule.src));
  m = bdd_.bdd_and(m, proto(static_cast<config::IpProto>(rule.proto)));
  m = bdd_.bdd_and(m, src_port_range(rule.src_port_lo, rule.src_port_hi));
  m = bdd_.bdd_and(m, dst_port_range(rule.dst_port_lo, rule.dst_port_hi));
  return m;
}

BddRef PacketSpace::acl_permit_set(const std::vector<routing::FilterRule>& rules) {
  BddRef permit = kBddFalse;
  BddRef remaining = kBddTrue;  // packets not matched by earlier rules
  for (const routing::FilterRule& r : rules) {
    const BddRef eff = bdd_.bdd_and(filter_match(r), remaining);
    if (r.permit) permit = bdd_.bdd_or(permit, eff);
    remaining = bdd_.bdd_diff(remaining, eff);
    if (remaining == kBddFalse) break;
  }
  return permit;  // implicit deny for whatever remains
}

net::Ipv4Addr PacketSpace::dst_of(const std::vector<bool>& assignment) {
  std::uint32_t bits = 0;
  for (unsigned i = 0; i < 32; ++i) {
    bits = (bits << 1) | (assignment[kDstIpBase + i] ? 1u : 0u);
  }
  return net::Ipv4Addr{bits};
}

namespace {
std::uint32_t field_of(const std::vector<bool>& assignment, unsigned base, unsigned width) {
  std::uint32_t bits = 0;
  for (unsigned i = 0; i < width; ++i) {
    bits = (bits << 1) | (assignment[base + i] ? 1u : 0u);
  }
  return bits;
}
}  // namespace

config::Flow PacketSpace::flow_of(const std::vector<bool>& assignment) {
  config::Flow flow;
  flow.dst = net::Ipv4Addr{field_of(assignment, kDstIpBase, 32)};
  flow.src = net::Ipv4Addr{field_of(assignment, kSrcIpBase, 32)};
  switch (field_of(assignment, kProtoBase, 2)) {
    case 0: flow.proto = config::IpProto::kTcp; break;
    case 1: flow.proto = config::IpProto::kUdp; break;
    case 2: flow.proto = config::IpProto::kIcmp; break;
    default: flow.proto = config::IpProto::kAny; break;
  }
  flow.src_port = static_cast<std::uint16_t>(field_of(assignment, kSrcPortBase, 16));
  flow.dst_port = static_cast<std::uint16_t>(field_of(assignment, kDstPortBase, 16));
  return flow;
}

}  // namespace rcfg::dpm
