#include "dpm/packet_space.h"

#include <algorithm>
#include <utility>

namespace rcfg::dpm {

namespace {

PacketSpaceBackend* pick_active(BackendKind kind, IntervalAtomBackend& interval,
                                BddSetBackend& bdd) {
  // kAuto and kInterval both start fast on interval atoms and migrate on
  // demand (see backend.h); kBdd pins the historical path.
  return kind == BackendKind::kBdd ? static_cast<PacketSpaceBackend*>(&bdd)
                                   : static_cast<PacketSpaceBackend*>(&interval);
}

}  // namespace

PacketSpace::PacketSpace(BackendKind kind)
    : bdd_(kPacketVars),
      interval_(kPacketVars),
      bdd_backend_(&bdd_),
      active_(pick_active(kind, interval_, bdd_backend_)),
      requested_(kind) {}

PacketSpace::PacketSpace(const PacketSpace& other)
    : bdd_(other.bdd_),
      interval_(other.interval_),
      bdd_backend_(&bdd_),
      active_(other.active_backend() == BackendKind::kBdd
                  ? static_cast<PacketSpaceBackend*>(&bdd_backend_)
                  : static_cast<PacketSpaceBackend*>(&interval_)),
      requested_(other.requested_),
      migrated_(other.migrated_),
      interval_to_bdd_(other.interval_to_bdd_) {
  // migration_listeners_ deliberately left empty — see the header.
}

PacketSpace& PacketSpace::operator=(const PacketSpace& other) {
  if (this == &other) return *this;
  bdd_ = other.bdd_;
  interval_ = other.interval_;
  bdd_backend_.reseat(&bdd_);
  active_ = other.active_backend() == BackendKind::kBdd
                ? static_cast<PacketSpaceBackend*>(&bdd_backend_)
                : static_cast<PacketSpaceBackend*>(&interval_);
  requested_ = other.requested_;
  migrated_ = other.migrated_;
  interval_to_bdd_ = other.interval_to_bdd_;
  // Own migration_listeners_ kept: a restore rewinds set state, not the
  // subscription topology (the live EcManager stays subscribed to us).
  return *this;
}

void PacketSpace::subscribe_migration(std::function<void()> listener) {
  migration_listeners_.push_back(std::move(listener));
}

void PacketSpace::migrate_to_bdd() {
  if (active_->kind() == BackendKind::kBdd) return;
  active_ = &bdd_backend_;
  migrated_ = true;
  // Listeners fire with the BDD backend already active so they can rekey
  // their tables through canonical().
  for (const auto& listener : migration_listeners_) listener();
}

void PacketSpace::require_bdd() {
  if (interval_active()) migrate_to_bdd();
}

BddRef PacketSpace::canonical(BddRef r) {
  if (!migrated_ || !is_interval_ref(r)) return r;
  const auto it = interval_to_bdd_.find(r);
  if (it != interval_to_bdd_.end()) return it->second;
  BddRef out = kBddFalse;
  for (const auto& [lo, hi] : interval_.ranges(r)) {
    out = bdd_.bdd_or(out, uint_range(kDstIpBase, 32, static_cast<std::uint32_t>(lo),
                                      static_cast<std::uint32_t>(hi - 1)));
  }
  bdd_.add_ref(out);  // pin: memo entries must survive BddManager::gc()
  interval_to_bdd_.emplace(r, out);
  return out;
}

BddRef PacketSpace::ip_prefix(unsigned base, net::Ipv4Prefix p) {
  std::vector<std::pair<unsigned, bool>> literals;
  literals.reserve(p.length());
  for (unsigned bit = 0; bit < p.length(); ++bit) {
    const bool value = (p.address().bits() >> (31 - bit)) & 1u;
    literals.emplace_back(base + bit, value);
  }
  return bdd_.cube(literals);
}

bool PacketSpace::depends_on(BddRef a, unsigned lo, unsigned hi) {
  const BddRef c = canonical(a);
  if (c == kBddFalse || c == kBddTrue) return false;
  if (interval_active()) {
    // Interval sets are unions of dst-address ranges: a non-trivial handle
    // depends on dst bits and nothing else.
    return lo < kDstIpBase + 32 && hi > kDstIpBase;
  }
  return bdd_.depends_on_range(c, lo, hi);
}

BddRef PacketSpace::dst_prefix(net::Ipv4Prefix p) {
  if (interval_active()) return interval_.dst_prefix(p);
  return ip_prefix(kDstIpBase, p);
}

BddRef PacketSpace::src_prefix(net::Ipv4Prefix p) {
  if (p.length() == 0) return kBddTrue;
  require_bdd();
  return ip_prefix(kSrcIpBase, p);
}

BddRef PacketSpace::proto(config::IpProto proto) {
  if (proto == config::IpProto::kAny) return kBddTrue;
  require_bdd();
  switch (proto) {
    case config::IpProto::kAny:
      return kBddTrue;
    case config::IpProto::kTcp:
      return bdd_.cube({{kProtoBase, false}, {kProtoBase + 1, false}});  // 0
    case config::IpProto::kUdp:
      return bdd_.cube({{kProtoBase, false}, {kProtoBase + 1, true}});  // 1
    case config::IpProto::kIcmp:
      return bdd_.cube({{kProtoBase, true}, {kProtoBase + 1, false}});  // 2
  }
  return kBddFalse;
}

BddRef PacketSpace::uint_range(unsigned base, unsigned bits, std::uint32_t lo, std::uint32_t hi) {
  // Recursive interval construction on the bit strings [lo, hi], MSB first.
  // ge(lo) ∧ le(hi) built as two linear-size threshold BDDs.
  auto threshold = [&](std::uint32_t bound, bool greater_equal) {
    // greater_equal: { x | x >= bound }; else { x | x <= bound }.
    BddRef r = kBddTrue;
    for (unsigned i = 0; i < bits; ++i) {
      // Process from LSB to MSB, building bottom-up.
      const unsigned bit = bits - 1 - i;
      const bool b = (bound >> i) & 1u;
      const unsigned v = base + bit;
      if (greater_equal) {
        // bound bit 1: x_bit must be 1 and the suffix >= bound suffix;
        // bound bit 0: x_bit = 1 wins outright, else decide on the suffix.
        r = b ? bdd_.bdd_and(bdd_.var(v), r) : bdd_.bdd_or(bdd_.var(v), r);
      } else {
        r = b ? bdd_.bdd_or(bdd_.nvar(v), r) : bdd_.bdd_and(bdd_.nvar(v), r);
      }
    }
    return r;
  };
  if (lo > hi) return kBddFalse;
  BddRef ge = lo == 0 ? kBddTrue : threshold(lo, true);
  const std::uint32_t max = bits >= 32 ? ~0u : ((1u << bits) - 1);
  BddRef le = hi >= max ? kBddTrue : threshold(hi, false);
  return bdd_.bdd_and(ge, le);
}

BddRef PacketSpace::src_port_range(std::uint16_t lo, std::uint16_t hi) {
  if (lo > hi) return kBddFalse;
  if (lo == 0 && hi == 0xFFFF) return kBddTrue;
  require_bdd();
  return uint_range(kSrcPortBase, 16, lo, hi);
}

BddRef PacketSpace::dst_port_range(std::uint16_t lo, std::uint16_t hi) {
  if (lo > hi) return kBddFalse;
  if (lo == 0 && hi == 0xFFFF) return kBddTrue;
  require_bdd();
  return uint_range(kDstPortBase, 16, lo, hi);
}

BddRef PacketSpace::filter_match(const routing::FilterRule& rule) {
  // An ACL filter is a multi-field predicate, the canonical migration
  // trigger (even a dst-only rule migrates: detecting triviality here would
  // make the migration point depend on rule contents, and the differential
  // harness wants it deterministic per feature, not per value).
  require_bdd();
  BddRef m = dst_prefix(rule.dst);
  m = bdd_.bdd_and(m, src_prefix(rule.src));
  m = bdd_.bdd_and(m, proto(static_cast<config::IpProto>(rule.proto)));
  m = bdd_.bdd_and(m, src_port_range(rule.src_port_lo, rule.src_port_hi));
  m = bdd_.bdd_and(m, dst_port_range(rule.dst_port_lo, rule.dst_port_hi));
  return m;
}

BddRef PacketSpace::acl_permit_set(const std::vector<routing::FilterRule>& rules) {
  require_bdd();
  BddRef permit = kBddFalse;
  BddRef remaining = kBddTrue;  // packets not matched by earlier rules
  for (const routing::FilterRule& r : rules) {
    const BddRef eff = bdd_.bdd_and(filter_match(r), remaining);
    if (r.permit) permit = bdd_.bdd_or(permit, eff);
    remaining = bdd_.bdd_diff(remaining, eff);
    if (remaining == kBddFalse) break;
  }
  return permit;  // implicit deny for whatever remains
}

net::Ipv4Addr PacketSpace::dst_of(const std::vector<bool>& assignment) {
  std::uint32_t bits = 0;
  for (unsigned i = 0; i < 32; ++i) {
    bits = (bits << 1) | (assignment[kDstIpBase + i] ? 1u : 0u);
  }
  return net::Ipv4Addr{bits};
}

namespace {
std::uint32_t field_of(const std::vector<bool>& assignment, unsigned base, unsigned width) {
  std::uint32_t bits = 0;
  for (unsigned i = 0; i < width; ++i) {
    bits = (bits << 1) | (assignment[base + i] ? 1u : 0u);
  }
  return bits;
}
}  // namespace

config::Flow PacketSpace::flow_of(const std::vector<bool>& assignment) {
  config::Flow flow;
  flow.dst = net::Ipv4Addr{field_of(assignment, kDstIpBase, 32)};
  flow.src = net::Ipv4Addr{field_of(assignment, kSrcIpBase, 32)};
  switch (field_of(assignment, kProtoBase, 2)) {
    case 0: flow.proto = config::IpProto::kTcp; break;
    case 1: flow.proto = config::IpProto::kUdp; break;
    case 2: flow.proto = config::IpProto::kIcmp; break;
    default: flow.proto = config::IpProto::kAny; break;
  }
  flow.src_port = static_cast<std::uint16_t>(field_of(assignment, kSrcPortBase, 16));
  flow.dst_port = static_cast<std::uint16_t>(field_of(assignment, kDstPortBase, 16));
  return flow;
}

}  // namespace rcfg::dpm
