#include "dpm/bdd.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace rcfg::dpm {

namespace {
constexpr unsigned kTerminalVar = ~0u;
constexpr unsigned kFreeVar = ~0u - 1;  ///< poison marker for reclaimed slots

std::uint64_t unique_key(unsigned var, BddRef lo, BddRef hi) {
  // var < 2^16 in practice; lo/hi < 2^24 comfortably for our workloads, but
  // mix a full hash to stay safe at any size.
  std::size_t h = rcfg::core::hash_all(var, lo, hi);
  return static_cast<std::uint64_t>(h);
}

std::uint64_t apply_key(unsigned op, BddRef a, BddRef b) {
  return static_cast<std::uint64_t>(rcfg::core::hash_all(op, a, b));
}
}  // namespace

BddManager::BddManager(unsigned var_count) : var_count_(var_count) {
  nodes_.push_back(Node{kTerminalVar, kBddFalse, kBddFalse});  // 0 = false
  nodes_.push_back(Node{kTerminalVar, kBddTrue, kBddTrue});    // 1 = true
  refs_.resize(nodes_.size(), 0);
}

BddRef BddManager::make(unsigned var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;  // reduction rule
  const std::uint64_t key = unique_key(var, lo, hi);
  auto it = unique_.find(key);
  if (it != unique_.end()) {
    // Guard against (astronomically unlikely) hash collisions.
    const Node& n = nodes_[it->second];
    if (n.var == var && n.lo == lo && n.hi == hi) return it->second;
  }
  BddRef r;
  if (!free_.empty()) {
    r = free_.back();
    free_.pop_back();
    nodes_[r] = Node{var, lo, hi};
    refs_[r] = 0;
  } else {
    r = static_cast<BddRef>(nodes_.size());
    nodes_.push_back(Node{var, lo, hi});
    refs_.push_back(0);
  }
  unique_[key] = r;
  return r;
}

void BddManager::add_ref(BddRef a) noexcept {
  if (a > kBddTrue) ++refs_[a];
}

void BddManager::release(BddRef a) noexcept {
  if (a > kBddTrue && refs_[a] > 0) --refs_[a];
}

std::uint32_t BddManager::ref_count(BddRef a) const noexcept {
  return a > kBddTrue ? refs_[a] : 0;
}

std::size_t BddManager::gc() {
  // Mark: everything reachable from an externally pinned node stays.
  std::vector<bool> marked(nodes_.size(), false);
  marked[kBddFalse] = marked[kBddTrue] = true;
  std::vector<BddRef> stack;
  for (BddRef r = kBddTrue + 1; r < nodes_.size(); ++r) {
    if (refs_[r] > 0) stack.push_back(r);
  }
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (marked[r]) continue;
    marked[r] = true;
    const Node& n = nodes_[r];
    if (!marked[n.lo]) stack.push_back(n.lo);
    if (!marked[n.hi]) stack.push_back(n.hi);
  }

  // Sweep: unhook dead nodes from the hash-cons table, poison, recycle.
  std::size_t reclaimed = 0;
  for (BddRef r = kBddTrue + 1; r < nodes_.size(); ++r) {
    if (marked[r] || nodes_[r].var == kFreeVar) continue;
    const Node& n = nodes_[r];
    const std::uint64_t key = unique_key(n.var, n.lo, n.hi);
    if (auto it = unique_.find(key); it != unique_.end() && it->second == r) {
      unique_.erase(it);
    }
    nodes_[r] = Node{kFreeVar, kBddFalse, kBddFalse};
    refs_[r] = 0;
    free_.push_back(r);
    ++reclaimed;
  }

  // The memo caches may name reclaimed ids; a recycled slot would make a
  // stale hit silently wrong, so drop them wholesale.
  if (reclaimed > 0) {
    apply_cache_.clear();
    not_cache_.clear();
    count_cache_.clear();
  }
  return reclaimed;
}

BddRef BddManager::var(unsigned v) {
  if (v >= var_count_) throw std::out_of_range("BDD variable out of range");
  return make(v, kBddFalse, kBddTrue);
}

BddRef BddManager::nvar(unsigned v) {
  if (v >= var_count_) throw std::out_of_range("BDD variable out of range");
  return make(v, kBddTrue, kBddFalse);
}

BddRef BddManager::apply(Op op, BddRef a, BddRef b) {
  // Terminal cases.
  switch (op) {
    case Op::kAnd:
      if (a == kBddFalse || b == kBddFalse) return kBddFalse;
      if (a == kBddTrue) return b;
      if (b == kBddTrue) return a;
      if (a == b) return a;
      break;
    case Op::kOr:
      if (a == kBddTrue || b == kBddTrue) return kBddTrue;
      if (a == kBddFalse) return b;
      if (b == kBddFalse) return a;
      if (a == b) return a;
      break;
    case Op::kXor:
      if (a == kBddFalse) return b;
      if (b == kBddFalse) return a;
      if (a == b) return kBddFalse;
      break;
  }
  // Commutative ops: canonicalize operand order for better cache hits.
  if (a > b) std::swap(a, b);
  const std::uint64_t key = apply_key(static_cast<unsigned>(op), a, b);
  if (auto it = apply_cache_.find(key); it != apply_cache_.end()) return it->second;

  const unsigned va = var_of(a);
  const unsigned vb = var_of(b);
  const unsigned v = std::min(va, vb);
  const BddRef a_lo = va == v ? nodes_[a].lo : a;
  const BddRef a_hi = va == v ? nodes_[a].hi : a;
  const BddRef b_lo = vb == v ? nodes_[b].lo : b;
  const BddRef b_hi = vb == v ? nodes_[b].hi : b;

  const BddRef lo = apply(op, a_lo, b_lo);
  const BddRef hi = apply(op, a_hi, b_hi);
  const BddRef r = make(v, lo, hi);
  apply_cache_[key] = r;
  return r;
}

BddRef BddManager::bdd_and(BddRef a, BddRef b) { return apply(Op::kAnd, a, b); }
BddRef BddManager::bdd_or(BddRef a, BddRef b) { return apply(Op::kOr, a, b); }
BddRef BddManager::bdd_xor(BddRef a, BddRef b) { return apply(Op::kXor, a, b); }

BddRef BddManager::bdd_not(BddRef a) {
  if (a == kBddFalse) return kBddTrue;
  if (a == kBddTrue) return kBddFalse;
  if (auto it = not_cache_.find(a); it != not_cache_.end()) return it->second;
  // Copy, not reference: the recursive calls may grow (and reallocate)
  // nodes_, which would leave a dangling reference.
  const Node n = nodes_[a];
  const BddRef lo = bdd_not(n.lo);
  const BddRef hi = bdd_not(n.hi);
  const BddRef r = make(n.var, lo, hi);
  not_cache_[a] = r;
  return r;
}

BddRef BddManager::bdd_diff(BddRef a, BddRef b) { return bdd_and(a, bdd_not(b)); }

BddRef BddManager::cube(const std::vector<std::pair<unsigned, bool>>& literals) {
  // Build bottom-up (reverse var order) so each make() call is O(1).
  BddRef r = kBddTrue;
  for (auto it = literals.rbegin(); it != literals.rend(); ++it) {
    const auto [v, value] = *it;
    if (v >= var_count_) throw std::out_of_range("BDD variable out of range");
    r = value ? make(v, kBddFalse, r) : make(v, r, kBddFalse);
  }
  return r;
}

double BddManager::sat_count(BddRef a) {
  // count(a) relative to the variables below a's level, then scale.
  std::function<double(BddRef)> rec = [&](BddRef r) -> double {
    if (r == kBddFalse) return 0.0;
    if (r == kBddTrue) return 1.0;
    if (auto it = count_cache_.find(r); it != count_cache_.end()) return it->second;
    const Node& n = nodes_[r];
    const unsigned lo_var = var_of(n.lo) == kTerminalVar ? var_count_ : var_of(n.lo);
    const unsigned hi_var = var_of(n.hi) == kTerminalVar ? var_count_ : var_of(n.hi);
    const double lo = rec(n.lo) * std::pow(2.0, lo_var - n.var - 1);
    const double hi = rec(n.hi) * std::pow(2.0, hi_var - n.var - 1);
    const double c = lo + hi;
    count_cache_[r] = c;
    return c;
  };
  const unsigned top = var_of(a) == kTerminalVar ? var_count_ : var_of(a);
  return rec(a) * std::pow(2.0, top);
}

bool BddManager::depends_on_range(BddRef a, unsigned lo, unsigned hi) const {
  std::vector<BddRef> stack = {a};
  std::unordered_set<BddRef> seen;
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (r == kBddFalse || r == kBddTrue || !seen.insert(r).second) continue;
    const Node& n = nodes_[r];
    if (n.var >= lo && n.var < hi) return true;
    // Variables are tested in increasing order, so once a node's var passes
    // `hi` nothing below can fall back into the range.
    if (n.var >= hi) continue;
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  return false;
}

std::optional<std::vector<bool>> BddManager::pick_one(BddRef a) const {
  if (a == kBddFalse) return std::nullopt;
  std::vector<bool> out(var_count_, false);
  BddRef r = a;
  while (r != kBddTrue) {
    const Node& n = nodes_[r];
    if (n.lo != kBddFalse) {
      out[n.var] = false;
      r = n.lo;
    } else {
      out[n.var] = true;
      r = n.hi;
    }
  }
  return out;
}

}  // namespace rcfg::dpm
