#pragma once

// The packet header space and its set encoding.
//
// Layout (variable 0 tested first — destination bits lead because FIB
// prefixes are by far the most common predicates):
//   [0, 32)    dst IPv4 address, MSB first
//   [32, 64)   src IPv4 address, MSB first
//   [64, 66)   protocol (2 bits: tcp=0, udp=1, icmp=2, other=3)
//   [66, 82)   src port, MSB first
//   [82, 98)   dst port, MSB first
//
// PacketSpace owns both packet-set representations — the ROBDD manager and
// the interval-atom arena (backend.h / interval_set.h) — and routes every
// set operation through the *active* backend. Pipelines that never see a
// multi-field predicate run entirely on interval atoms; the first predicate
// outside the interval vocabulary (src prefix, proto, port range, ACL
// filter) triggers a one-time migration to the BDD backend. Retained
// interval handles stay valid forever (the interval arena is append-only)
// and are translated lazily through canonical() wherever they meet a BDD
// operation, so EC tables, snapshots and provenance built before the
// migration need no rewriting beyond the EcManager's own rekey (which
// subscribes via subscribe_migration()).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "config/matchers.h"
#include "config/types.h"
#include "dpm/backend.h"
#include "dpm/bdd.h"
#include "dpm/interval_set.h"
#include "net/ipv4.h"
#include "routing/types.h"

namespace rcfg::dpm {

inline constexpr unsigned kDstIpBase = 0;
inline constexpr unsigned kSrcIpBase = 32;
inline constexpr unsigned kProtoBase = 64;
inline constexpr unsigned kSrcPortBase = 66;
inline constexpr unsigned kDstPortBase = 82;
inline constexpr unsigned kPacketVars = 98;

/// Owns the packet-set backends, the field encoders, and the migration
/// machinery. The default is the all-BDD backend so existing call sites
/// (and anything poking bdd() directly) behave exactly as before; kInterval
/// and kAuto start on interval atoms and migrate to BDDs on demand.
class PacketSpace {
 public:
  explicit PacketSpace(BackendKind kind = BackendKind::kBdd);

  /// Copies carry full set state (both arenas, the active-backend choice,
  /// the translation memo) but NOT migration subscriptions: a subscription
  /// wires a live EcManager to *its* space, and a snapshot copy firing into
  /// somebody else's EcManager would corrupt it. Mirrors EcManager::restore
  /// keeping its own listeners — subscriptions are pipeline topology, not
  /// state. Moves fall back to these (handles stay valid either way).
  PacketSpace(const PacketSpace& other);
  PacketSpace& operator=(const PacketSpace& other);

  BddManager& bdd() noexcept { return bdd_; }
  const BddManager& bdd() const noexcept { return bdd_; }
  IntervalAtomBackend& interval() noexcept { return interval_; }
  const IntervalAtomBackend& interval() const noexcept { return interval_; }

  /// The backend requested at construction (never changes).
  BackendKind requested_backend() const noexcept { return requested_; }
  /// The backend currently executing operations (kInterval until the first
  /// multi-field predicate, kBdd after — or always kBdd in kBdd mode).
  BackendKind active_backend() const noexcept { return active_->kind(); }
  /// True once the one-time interval→BDD migration has happened.
  bool migrated() const noexcept { return migrated_; }

  /// Subscribe to the one-time migration event. Fired after the active
  /// backend has flipped to BDD, so handlers may call canonical().
  /// Subscriptions are intentionally not copied with the space.
  void subscribe_migration(std::function<void()> listener);

  /// Flip to the BDD backend (idempotent; no-op when already on BDDs).
  /// Every handle minted so far remains valid — interval handles translate
  /// through canonical() from here on.
  void migrate_to_bdd();

  /// The handle's meaning in the active backend: identity for BDD handles
  /// and for interval handles while the interval backend is active; after
  /// migration, interval handles map (memoized, pinned across gc()) to the
  /// ROBDD of the same destination set.
  BddRef canonical(BddRef r);

  // ---- set algebra over the active backend -------------------------------
  // Operands may be handles from either representation; they are
  // canonicalized first, so callers never need to care when a handle was
  // minted relative to the migration.
  BddRef set_and(BddRef a, BddRef b) { return active_->set_and(canonical(a), canonical(b)); }
  BddRef set_or(BddRef a, BddRef b) { return active_->set_or(canonical(a), canonical(b)); }
  BddRef set_diff(BddRef a, BddRef b) { return active_->set_diff(canonical(a), canonical(b)); }
  BddRef set_xor(BddRef a, BddRef b) { return active_->set_xor(canonical(a), canonical(b)); }
  BddRef set_not(BddRef a) { return active_->set_not(canonical(a)); }
  bool disjoint(BddRef a, BddRef b) { return active_->disjoint(canonical(a), canonical(b)); }
  bool implies(BddRef a, BddRef b) { return active_->implies(canonical(a), canonical(b)); }
  double sat_count(BddRef a) { return active_->sat_count(canonical(a)); }
  /// True when the set's membership can depend on a variable in [lo, hi).
  /// Exact on the BDD backend (support walk); interval-backend sets
  /// constrain the destination address only, so non-trivial handles report
  /// dependence exactly on ranges meeting the dst bits.
  bool depends_on(BddRef a, unsigned lo, unsigned hi);
  std::optional<std::vector<bool>> pick_one(BddRef a) {
    return active_->pick_one(canonical(a));
  }
  /// Pin/unpin route by the handle's own representation (the interval arena
  /// stays live after migration, so its refcounts stay honest too).
  void add_ref(BddRef a) noexcept {
    is_interval_ref(a) ? interval_.add_ref(a) : bdd_.add_ref(a);
  }
  void release(BddRef a) noexcept {
    is_interval_ref(a) ? interval_.release(a) : bdd_.release(a);
  }
  std::size_t gc() { return active_->gc(); }
  std::size_t live_nodes() const noexcept { return active_->live_nodes(); }

  // ---- field encoders ----------------------------------------------------
  /// Packets whose destination lies in `p`. The one encoder the interval
  /// backend answers natively; everything below migrates if non-trivial.
  BddRef dst_prefix(net::Ipv4Prefix p);
  /// Packets whose source lies in `p`.
  BddRef src_prefix(net::Ipv4Prefix p);
  /// Packets with the given protocol (kAny => all packets).
  BddRef proto(config::IpProto proto);
  /// Packets whose src/dst port lies in [lo, hi].
  BddRef src_port_range(std::uint16_t lo, std::uint16_t hi);
  BddRef dst_port_range(std::uint16_t lo, std::uint16_t hi);

  /// The match set of one ACL filter rule (conjunction of all fields).
  BddRef filter_match(const routing::FilterRule& rule);

  /// First-match permit set of an ordered rule list (rules sorted by
  /// priority ascending = evaluation order); unmatched packets are denied.
  BddRef acl_permit_set(const std::vector<routing::FilterRule>& rules);

  /// Destination address encoded by a satisfying assignment from pick_one.
  static net::Ipv4Addr dst_of(const std::vector<bool>& assignment);

  /// The full concrete flow encoded by a satisfying assignment — a witness
  /// packet for tracing. The "other" protocol value decodes to kAny.
  static config::Flow flow_of(const std::vector<bool>& assignment);

 private:
  bool interval_active() const noexcept {
    return active_->kind() == BackendKind::kInterval;
  }
  /// Migrate if the interval backend is active (called by encoders whose
  /// predicate the interval vocabulary cannot express).
  void require_bdd();

  BddRef ip_prefix(unsigned base, net::Ipv4Prefix p);
  BddRef uint_range(unsigned base, unsigned bits, std::uint32_t lo, std::uint32_t hi);

  BddManager bdd_;
  IntervalAtomBackend interval_;
  BddSetBackend bdd_backend_;
  PacketSpaceBackend* active_;
  BackendKind requested_;
  bool migrated_ = false;
  /// interval handle -> pinned BDD translation (see canonical()).
  std::unordered_map<BddRef, BddRef> interval_to_bdd_;
  std::vector<std::function<void()>> migration_listeners_;
};

}  // namespace rcfg::dpm
