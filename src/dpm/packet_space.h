#pragma once

// The packet header space and its BDD encoding.
//
// Layout (variable 0 tested first — destination bits lead because FIB
// prefixes are by far the most common predicates):
//   [0, 32)    dst IPv4 address, MSB first
//   [32, 64)   src IPv4 address, MSB first
//   [64, 66)   protocol (2 bits: tcp=0, udp=1, icmp=2, other=3)
//   [66, 82)   src port, MSB first
//   [82, 98)   dst port, MSB first

#include <cstdint>

#include "config/matchers.h"
#include "config/types.h"
#include "dpm/bdd.h"
#include "net/ipv4.h"
#include "routing/types.h"

namespace rcfg::dpm {

inline constexpr unsigned kDstIpBase = 0;
inline constexpr unsigned kSrcIpBase = 32;
inline constexpr unsigned kProtoBase = 64;
inline constexpr unsigned kSrcPortBase = 66;
inline constexpr unsigned kDstPortBase = 82;
inline constexpr unsigned kPacketVars = 98;

/// Wraps a BddManager with encoders for the packet fields.
class PacketSpace {
 public:
  PacketSpace() : bdd_(kPacketVars) {}

  BddManager& bdd() noexcept { return bdd_; }
  const BddManager& bdd() const noexcept { return bdd_; }

  /// Packets whose destination lies in `p`.
  BddRef dst_prefix(net::Ipv4Prefix p);
  /// Packets whose source lies in `p`.
  BddRef src_prefix(net::Ipv4Prefix p);
  /// Packets with the given protocol (kAny => all packets).
  BddRef proto(config::IpProto proto);
  /// Packets whose src/dst port lies in [lo, hi].
  BddRef src_port_range(std::uint16_t lo, std::uint16_t hi);
  BddRef dst_port_range(std::uint16_t lo, std::uint16_t hi);

  /// The match set of one ACL filter rule (conjunction of all fields).
  BddRef filter_match(const routing::FilterRule& rule);

  /// First-match permit set of an ordered rule list (rules sorted by
  /// priority ascending = evaluation order); unmatched packets are denied.
  BddRef acl_permit_set(const std::vector<routing::FilterRule>& rules);

  /// Destination address encoded by a satisfying assignment from
  /// BddManager::pick_one.
  static net::Ipv4Addr dst_of(const std::vector<bool>& assignment);

  /// The full concrete flow encoded by a satisfying assignment — a witness
  /// packet for tracing. The "other" protocol value decodes to kAny.
  static config::Flow flow_of(const std::vector<bool>& assignment);

 private:
  BddRef ip_prefix(unsigned base, net::Ipv4Prefix p);
  BddRef uint_range(unsigned base, unsigned bits, std::uint32_t lo, std::uint32_t hi);

  BddManager bdd_;
};

}  // namespace rcfg::dpm
