#pragma once

// Protocol semantics as pure functions over route tuples and facts.
//
// Both implementations of the control plane — the incremental dataflow
// program (routing/generator.cpp) and the from-scratch baseline simulator
// (baseline/simulator.cpp) — call exactly these functions, so differential
// tests between them exercise *propagation and incrementality*, never
// semantic drift.

#include <optional>
#include <vector>

#include "routing/decision.h"
#include "routing/facts.h"
#include "routing/types.h"

namespace rcfg::routing {

/// Route injected into OSPF by an origin fact.
OspfRoute make_ospf_origin(const OspfOriginFact& f);

/// Route injected into BGP by an origin fact.
BgpRoute make_bgp_origin(const BgpOriginFact& f);

/// Propagate an OSPF route over a directed adjacency; nullopt when the
/// receiving node already sits on the route's path (loop check).
std::optional<OspfRoute> extend_ospf(const OspfRoute& r, const OspfLinkFact& l);

/// Propagate a BGP route over a directed session: AS-path loop prevention,
/// sender export policy, receiver import policy, non-transitive attribute
/// reset. nullopt when rejected.
std::optional<BgpRoute> extend_bgp(const BgpRoute& r, const BgpSessionFact& s);

/// The aggregate route originated by `f` (valid only while a strictly more
/// specific route exists in the node's BGP table — the callers gate on
/// that). The origin discards traffic without a more-specific match.
BgpRoute make_bgp_aggregate(const BgpAggregateFact& f);

/// Does `f`'s aggregate have `r` as a contributor (strictly more specific
/// route at the same node)?
bool contributes_to_aggregate(const BgpRoute& r, const BgpAggregateFact& f);

/// Route injected into RIP by an origin fact.
RipRoute make_rip_origin(const RipOriginFact& f);

/// Propagate a RIP route one hop; nullopt once the metric reaches the
/// protocol's infinity (16).
std::optional<RipRoute> extend_rip(const RipRoute& r, const RipLinkFact& l);

// --- dynamic redistribution (native source route -> target protocol) -----
// The source route contributes only (prefix, egress); the fact carries the
// target-protocol attributes and optional policy. nullopt when the policy
// rejects the prefix. Results are tagged kTagRedistributed.
std::optional<OspfRoute> make_redist_ospf(net::Ipv4Prefix prefix, topo::IfaceId egress,
                                          const DynRedistFact& f);
std::optional<BgpRoute> make_redist_bgp(net::Ipv4Prefix prefix, topo::IfaceId egress,
                                        const DynRedistFact& f);
std::optional<RipRoute> make_redist_rip(net::Ipv4Prefix prefix, topo::IfaceId egress,
                                        const DynRedistFact& f);

// ---------------------------------------------------------------------------
// FIB selection
// ---------------------------------------------------------------------------

/// A RIB candidate competing for a (node, prefix) FIB slot.
struct FibCandidate {
  std::uint32_t ad = 0;      ///< admin distance
  std::uint32_t metric = 0;  ///< protocol-internal metric (tie-break within ad)
  FibAction action = FibAction::kDrop;
  topo::IfaceId egress = topo::kInvalidIface;
};

/// Lowest (ad, metric) wins; among winners, kForward candidates merge into
/// one ECMP entry (forward beats deliver beats drop on exact ties).
FibEntry select_fib(topo::NodeId node, net::Ipv4Prefix prefix,
                    const std::vector<FibCandidate>& candidates);

FibCandidate candidate_of(const ConnectedFact& f);
FibCandidate candidate_of(const StaticFact& f);
FibCandidate candidate_of(const OspfRoute& r);
FibCandidate candidate_of(const BgpRoute& r);
FibCandidate candidate_of(const RipRoute& r);

}  // namespace rcfg::routing
