#include "routing/facts.h"

#include <stdexcept>

namespace rcfg::routing {

namespace {

/// Default metric for routes redistributed into OSPF (IOS default).
constexpr std::uint32_t kDefaultOspfRedistMetric = 20;

struct DeviceCtx {
  topo::NodeId node;
  const config::DeviceConfig* cfg;
};

bool iface_up(const config::InterfaceConfig& i) { return !i.shutdown; }

/// Interface config on `dev` for topology interface `iface`; nullptr if the
/// config does not mention it.
const config::InterfaceConfig* iface_cfg(const topo::Topology& topo,
                                         const config::DeviceConfig& dev,
                                         topo::IfaceId iface) {
  return dev.find_interface(topo.iface(iface).name);
}

/// Apply an optional compile-time redistribution policy. Returns the
/// effective metric, or nullopt when the policy rejects the prefix.
std::optional<std::uint32_t> redist_metric(const config::DeviceConfig& dev,
                                           const config::Redistribution& r,
                                           net::Ipv4Prefix prefix,
                                           std::uint32_t default_metric) {
  const std::uint32_t base = r.metric != 0 ? r.metric : default_metric;
  if (!r.route_map) return base;
  config::RouteAttrs attrs;
  attrs.metric = base;
  const auto out = apply_policy(compile_policy(dev, *r.route_map), prefix, attrs);
  if (!out) return std::nullopt;
  return out->metric;
}

/// The prefixes a redistribution source contributes at this device
/// (compile-time sources only: connected and static).
std::vector<net::Ipv4Prefix> redist_source_prefixes(const config::DeviceConfig& dev,
                                                    config::Redistribution::Source src) {
  std::vector<net::Ipv4Prefix> out;
  switch (src) {
    case config::Redistribution::Source::kConnected:
      for (const auto& i : dev.interfaces) {
        if (iface_up(i) && i.address) out.push_back(*i.address);
      }
      break;
    case config::Redistribution::Source::kStatic:
      for (const auto& s : dev.static_routes) out.push_back(s.prefix);
      break;
    default:
      break;  // dynamic sources handled as facts
  }
  return out;
}

/// Build a DynRedistFact for a dynamic redistribution statement; the
/// defaulting of the target metric depends on the target protocol.
DynRedistFact make_dyn_redist(const config::DeviceConfig& dev, topo::NodeId node, Proto from,
                              Proto to, std::uint32_t as_number,
                              const config::Redistribution& r, std::uint32_t default_metric) {
  DynRedistFact f;
  f.node = node;
  f.from = from;
  f.to = to;
  f.as_number = as_number;
  f.metric = r.metric != 0 ? r.metric : default_metric;
  if (r.route_map) {
    f.has_policy = true;
    f.policy = compile_policy(dev, *r.route_map);
  }
  return f;
}

std::optional<Proto> dynamic_source(config::Redistribution::Source s) {
  switch (s) {
    case config::Redistribution::Source::kOspf:
      return Proto::kOspf;
    case config::Redistribution::Source::kBgp:
      return Proto::kBgp;
    case config::Redistribution::Source::kRip:
      return Proto::kRip;
    default:
      return std::nullopt;
  }
}

}  // namespace

const char* to_string(Proto p) {
  switch (p) {
    case Proto::kOspf:
      return "ospf";
    case Proto::kBgp:
      return "bgp";
    case Proto::kRip:
      return "rip";
  }
  return "?";
}

FactSnapshot compile_facts(const topo::Topology& topo, const config::NetworkConfig& cfg) {
  FactSnapshot out;

  // Resolve devices once.
  std::vector<DeviceCtx> devices;
  devices.reserve(cfg.devices.size());
  for (const auto& [name, dev] : cfg.devices) {
    const topo::NodeId n = topo.find_node(name);
    if (n == topo::kInvalidNode) {
      throw std::invalid_argument("config for unknown topology node: " + name);
    }
    devices.push_back(DeviceCtx{n, &dev});
  }

  // Per-device facts.
  for (const DeviceCtx& d : devices) {
    const config::DeviceConfig& dev = *d.cfg;

    for (const auto& i : dev.interfaces) {
      if (!iface_up(i) || !i.address) continue;
      out.connected.add(ConnectedFact{d.node, *i.address}, 1);
      if (i.ospf_enabled()) {
        out.ospf_origins.add(OspfOriginFact{d.node, *i.address, i.ospf_cost}, 1);
      }
      if (i.rip) {
        out.rip_origins.add(RipOriginFact{d.node, *i.address, 1}, 1);
      }
    }

    for (const auto& s : dev.static_routes) {
      if (s.out_iface == config::kNullInterface) {
        out.statics.add(StaticFact{d.node, s.prefix, true, topo::kInvalidIface, s.admin_distance},
                        1);
        continue;
      }
      const config::InterfaceConfig* ic = dev.find_interface(s.out_iface);
      const topo::IfaceId tif = topo.find_interface(d.node, s.out_iface);
      const bool wired = tif != topo::kInvalidIface && topo.iface(tif).link.has_value();
      if (ic != nullptr && iface_up(*ic) && wired) {
        out.statics.add(StaticFact{d.node, s.prefix, false, tif, s.admin_distance}, 1);
      }
      // Else: unresolved static route, stays out of the RIB.
    }

    if (dev.bgp) {
      for (const net::Ipv4Prefix& p : dev.bgp->networks) {
        out.bgp_origins.add(BgpOriginFact{d.node, dev.bgp->local_as, p, 0}, 1);
      }
      for (const config::BgpAggregate& a : dev.bgp->aggregates) {
        out.bgp_aggregates.add(
            BgpAggregateFact{d.node, dev.bgp->local_as, a.prefix, a.summary_only}, 1);
      }
      for (const config::Redistribution& r : dev.bgp->redistribute) {
        if (const auto from = dynamic_source(r.source)) {
          out.redist.add(make_dyn_redist(dev, d.node, *from, Proto::kBgp, dev.bgp->local_as,
                                         r, /*default_metric=*/0),
                         1);
          continue;
        }
        for (net::Ipv4Prefix p : redist_source_prefixes(dev, r.source)) {
          if (const auto med = redist_metric(dev, r, p, 0)) {
            out.bgp_origins.add(BgpOriginFact{d.node, dev.bgp->local_as, p, *med}, 1);
          }
        }
      }
    }

    if (dev.ospf) {
      for (const config::Redistribution& r : dev.ospf->redistribute) {
        if (const auto from = dynamic_source(r.source)) {
          out.redist.add(make_dyn_redist(dev, d.node, *from, Proto::kOspf, 0, r,
                                         kDefaultOspfRedistMetric),
                         1);
          continue;
        }
        for (net::Ipv4Prefix p : redist_source_prefixes(dev, r.source)) {
          if (const auto m = redist_metric(dev, r, p, kDefaultOspfRedistMetric)) {
            out.ospf_origins.add(OspfOriginFact{d.node, p, *m}, 1);
          }
        }
      }
    }

    if (dev.rip) {
      for (const config::Redistribution& r : dev.rip->redistribute) {
        if (const auto from = dynamic_source(r.source)) {
          out.redist.add(make_dyn_redist(dev, d.node, *from, Proto::kRip, 0, r,
                                         /*default_metric=*/1),
                         1);
          continue;
        }
        for (net::Ipv4Prefix p : redist_source_prefixes(dev, r.source)) {
          if (const auto m = redist_metric(dev, r, p, 1)) {
            out.rip_origins.add(RipOriginFact{d.node, p, *m}, 1);
          }
        }
      }
    }
  }

  // Link-derived facts (OSPF adjacencies, BGP sessions). Both endpoint
  // devices must be configured.
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    const topo::Link& lk = topo.link(l);
    auto a_it = cfg.devices.find(topo.node(lk.a).name);
    auto b_it = cfg.devices.find(topo.node(lk.b).name);
    if (a_it == cfg.devices.end() || b_it == cfg.devices.end()) continue;
    const config::DeviceConfig& da = a_it->second;
    const config::DeviceConfig& db = b_it->second;
    const config::InterfaceConfig* ia = iface_cfg(topo, da, lk.a_iface);
    const config::InterfaceConfig* ib = iface_cfg(topo, db, lk.b_iface);
    if (ia == nullptr || ib == nullptr || !iface_up(*ia) || !iface_up(*ib)) continue;

    // OSPF adjacency: both sides OSPF, non-passive, same area.
    if (ia->ospf_enabled() && ib->ospf_enabled() && !ia->ospf_passive && !ib->ospf_passive &&
        ia->ospf_area == ib->ospf_area) {
      if (ia->ospf_cost == 0 || ib->ospf_cost == 0) {
        // IOS interface costs are 1..65535; cost 0 would also break the
        // strictly-increasing-distance assumption of the simulators.
        throw std::invalid_argument("OSPF interface cost must be >= 1 (link " +
                                    topo.node(lk.a).name + " -- " + topo.node(lk.b).name + ")");
      }
      out.ospf_links.add(OspfLinkFact{lk.a, lk.b, lk.b_iface, ib->ospf_cost}, 1);
      out.ospf_links.add(OspfLinkFact{lk.b, lk.a, lk.a_iface, ia->ospf_cost}, 1);
    }

    // RIP adjacency: both sides enabled.
    if (ia->rip && ib->rip) {
      out.rip_links.add(RipLinkFact{lk.a, lk.b, lk.b_iface}, 1);
      out.rip_links.add(RipLinkFact{lk.b, lk.a, lk.a_iface}, 1);
    }

    // BGP session: mutual neighbor statements with matching remote AS.
    if (da.bgp && db.bgp) {
      const config::BgpNeighbor* na = nullptr;
      const config::BgpNeighbor* nb = nullptr;
      for (const auto& n : da.bgp->neighbors) {
        if (n.iface == ia->name && n.remote_as == db.bgp->local_as) na = &n;
      }
      for (const auto& n : db.bgp->neighbors) {
        if (n.iface == ib->name && n.remote_as == da.bgp->local_as) nb = &n;
      }
      if (na != nullptr && nb != nullptr) {
        auto make_session = [&](topo::NodeId from, topo::NodeId to, const config::DeviceConfig& dfrom,
                                const config::DeviceConfig& dto, const config::BgpNeighbor& nfrom,
                                const config::BgpNeighbor& nto, topo::IfaceId to_iface) {
          BgpSessionFact s;
          s.from = from;
          s.to = to;
          s.from_as = dfrom.bgp->local_as;
          s.to_as = dto.bgp->local_as;
          s.via_iface = to_iface;
          if (nfrom.export_route_map) {
            s.has_export = true;
            s.export_policy = compile_policy(dfrom, *nfrom.export_route_map);
          }
          if (nto.import_route_map) {
            s.has_import = true;
            s.import_policy = compile_policy(dto, *nto.import_route_map);
          }
          for (const config::BgpAggregate& a : dfrom.bgp->aggregates) {
            if (a.summary_only) s.suppressed.push_back(a.prefix);
          }
          std::sort(s.suppressed.begin(), s.suppressed.end());
          out.bgp_sessions.add(s, 1);
        };
        make_session(lk.a, lk.b, da, db, *na, *nb, lk.b_iface);
        make_session(lk.b, lk.a, db, da, *nb, *na, lk.a_iface);
      }
    }
  }

  return out;
}

dd::ZSet<FilterRule> extract_filter_rules(const topo::Topology& topo,
                                          const config::NetworkConfig& cfg) {
  dd::ZSet<FilterRule> out;
  for (const auto& [name, dev] : cfg.devices) {
    const topo::NodeId node = topo.find_node(name);
    if (node == topo::kInvalidNode) {
      throw std::invalid_argument("config for unknown topology node: " + name);
    }
    for (const auto& i : dev.interfaces) {
      const topo::IfaceId tif = topo.find_interface(node, i.name);
      if (tif == topo::kInvalidIface) continue;  // stub interface: no transit traffic
      auto emit_binding = [&](const std::optional<std::string>& acl_name, bool inbound) {
        if (!acl_name) return;
        auto it = dev.acls.find(*acl_name);
        if (it == dev.acls.end()) {
          // Dangling binding: fail closed with a deny-everything rule.
          FilterRule deny;
          deny.node = node;
          deny.iface = tif;
          deny.inbound = inbound;
          deny.priority = 0;
          deny.permit = false;
          out.add(deny, 1);
          return;
        }
        std::uint32_t position = 0;
        for (const config::AclRule& r : it->second.rules) {
          FilterRule fr;
          fr.node = node;
          fr.iface = tif;
          fr.inbound = inbound;
          fr.priority = position++;
          fr.permit = r.action == config::Action::kPermit;
          fr.proto = static_cast<std::uint8_t>(r.proto);
          fr.src = r.src;
          fr.dst = r.dst;
          fr.src_port_lo = r.src_ports.lo;
          fr.src_port_hi = r.src_ports.hi;
          fr.dst_port_lo = r.dst_ports.lo;
          fr.dst_port_hi = r.dst_ports.hi;
          out.add(fr, 1);
        }
      };
      emit_binding(i.acl_in, /*inbound=*/true);
      emit_binding(i.acl_out, /*inbound=*/false);
    }
  }
  return out;
}

}  // namespace rcfg::routing
