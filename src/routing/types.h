#pragma once

// Value types shared by the incremental control-plane program
// (rcfg::routing::IncrementalGenerator) and the from-scratch baseline
// simulator (rcfg::baseline). Everything here is a plain comparable,
// hashable value so it can live in dd::ZSet relations.

#include <cstdint>
#include <string>
#include <vector>

#include "core/hash.h"
#include "net/ipv4.h"
#include "topo/topology.h"

namespace rcfg::routing {

/// AS path from the origin AS to the current AS (BGP routes).
using AsPath = std::vector<std::uint32_t>;

// ---------------------------------------------------------------------------
// Protocol route tuples
// ---------------------------------------------------------------------------

/// An OSPF route candidate held at `node`. `egress` is the interface this
/// node would forward through (invalid for locally originated prefixes).
/// No path vector is carried: the route computation is stratified by
/// explicit synchronous rounds (see routing/generator.h), so derivations
/// are bounded without per-route provenance.
struct OspfRoute {
  topo::NodeId node = topo::kInvalidNode;
  net::Ipv4Prefix prefix;
  std::uint32_t cost = 0;
  topo::IfaceId egress = topo::kInvalidIface;
  std::uint8_t tag = 0;  ///< kTagNative / kTagRedistributed (see decision.h)

  friend bool operator==(const OspfRoute&, const OspfRoute&) = default;
};

/// A BGP route candidate held at `node`.
struct BgpRoute {
  topo::NodeId node = topo::kInvalidNode;
  net::Ipv4Prefix prefix;
  std::uint32_t local_pref = 100;
  std::uint32_t med = 0;
  AsPath as_path;  ///< as_path.front() = origin AS, back() = this node's AS
  topo::IfaceId egress = topo::kInvalidIface;
  std::uint32_t neighbor_as = 0;  ///< AS the route was learned from (0 = local)
  std::uint8_t tag = 0;           ///< kTagNative / kTagRedistributed (see decision.h)
  bool aggregate = false;         ///< originated by aggregate-address (origin discards)

  friend bool operator==(const BgpRoute&, const BgpRoute&) = default;
};

/// A RIPv2 route candidate held at `node`. Hop-count metric; candidates at
/// or beyond config::kRipInfinity (16) are unreachable and never derived.
struct RipRoute {
  topo::NodeId node = topo::kInvalidNode;
  net::Ipv4Prefix prefix;
  std::uint32_t metric = 1;
  topo::IfaceId egress = topo::kInvalidIface;
  std::uint8_t tag = 0;  ///< kTagNative / kTagRedistributed (see decision.h)

  friend bool operator==(const RipRoute&, const RipRoute&) = default;
};

// ---------------------------------------------------------------------------
// FIB
// ---------------------------------------------------------------------------

enum class FibAction : std::uint8_t {
  kForward,  ///< send out one of `out_ifaces` (ECMP when several)
  kDeliver,  ///< destination is attached here
  kDrop,     ///< discard (null route)
};

/// The converged forwarding behaviour of `node` for `prefix` — one row per
/// (node, prefix); ECMP shows up as several entries in `out_ifaces`
/// (sorted, so equal FIBs compare equal).
struct FibEntry {
  topo::NodeId node = topo::kInvalidNode;
  net::Ipv4Prefix prefix;
  FibAction action = FibAction::kDrop;
  std::vector<topo::IfaceId> out_ifaces;  ///< sorted; empty unless kForward

  friend bool operator==(const FibEntry&, const FibEntry&) = default;
};

std::string to_string(const FibEntry& e);

// ---------------------------------------------------------------------------
// Filter (ACL) rules — extracted directly from configs (paper §4.2)
// ---------------------------------------------------------------------------

/// One data plane filtering rule: the ACL rule `acl_seq` of the ACL bound
/// to (node, iface) in the given direction.
struct FilterRule {
  topo::NodeId node = topo::kInvalidNode;
  topo::IfaceId iface = topo::kInvalidIface;
  bool inbound = true;
  std::uint32_t priority = 0;  ///< position in the ACL (lower = first)
  bool permit = true;
  // Match fields (flattened from config::AclRule for hashability).
  std::uint8_t proto = 0;  ///< 0 = any, else config::IpProto numeric value
  net::Ipv4Prefix src;
  net::Ipv4Prefix dst;
  std::uint16_t src_port_lo = 0, src_port_hi = 65535;
  std::uint16_t dst_port_lo = 0, dst_port_hi = 65535;

  friend bool operator==(const FilterRule&, const FilterRule&) = default;
};

}  // namespace rcfg::routing

// Hash specializations so the route tuples can key dd::ZSet relations.
template <>
struct std::hash<rcfg::routing::OspfRoute> {
  std::size_t operator()(const rcfg::routing::OspfRoute& r) const {
    return rcfg::core::hash_all(r.node, r.prefix, r.cost, r.egress, r.tag);
  }
};

template <>
struct std::hash<rcfg::routing::BgpRoute> {
  std::size_t operator()(const rcfg::routing::BgpRoute& r) const {
    return rcfg::core::hash_all(r.node, r.prefix, r.local_pref, r.med,
                                rcfg::core::TupleHash{}(r.as_path), r.egress, r.neighbor_as,
                                r.tag, r.aggregate);
  }
};

template <>
struct std::hash<rcfg::routing::RipRoute> {
  std::size_t operator()(const rcfg::routing::RipRoute& r) const {
    return rcfg::core::hash_all(r.node, r.prefix, r.metric, r.egress, r.tag);
  }
};

template <>
struct std::hash<rcfg::routing::FibEntry> {
  std::size_t operator()(const rcfg::routing::FibEntry& e) const {
    return rcfg::core::hash_all(e.node, e.prefix, static_cast<unsigned>(e.action),
                                rcfg::core::TupleHash{}(e.out_ifaces));
  }
};

template <>
struct std::hash<rcfg::routing::FilterRule> {
  std::size_t operator()(const rcfg::routing::FilterRule& r) const {
    return rcfg::core::hash_all(r.node, r.iface, r.inbound, r.priority, r.permit, r.proto,
                                r.src, r.dst, r.src_port_lo, r.src_port_hi, r.dst_port_lo,
                                r.dst_port_hi);
  }
};
