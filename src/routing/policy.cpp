#include "routing/policy.h"

namespace rcfg::routing {

CompiledPolicy compile_policy(const config::DeviceConfig& device,
                              const std::string& route_map_name) {
  CompiledPolicy out;
  auto rm_it = device.route_maps.find(route_map_name);
  if (rm_it == device.route_maps.end()) return out;  // reject-all
  for (const config::RouteMapClause& c : rm_it->second.clauses) {
    CompiledClause cc;
    cc.action = c.action;
    cc.set_local_pref = c.set_local_pref;
    cc.set_med = c.set_med;
    cc.set_metric = c.set_metric;
    if (c.match_prefix_list) {
      cc.has_match = true;
      auto pl_it = device.prefix_lists.find(*c.match_prefix_list);
      if (pl_it != device.prefix_lists.end()) {
        cc.match_entries = pl_it->second.entries;
      }
      // Dangling prefix list: has_match with no entries never matches
      // (implicit deny), same as the uncompiled evaluator.
    }
    out.clauses.push_back(std::move(cc));
  }
  return out;
}

std::optional<config::RouteAttrs> apply_policy(const CompiledPolicy& policy,
                                               net::Ipv4Prefix route,
                                               config::RouteAttrs attrs) {
  for (const CompiledClause& c : policy.clauses) {
    bool matches = true;
    if (c.has_match) {
      matches = false;
      for (const config::PrefixListEntry& e : c.match_entries) {
        if (config::entry_matches(e, route)) {
          matches = e.action == config::Action::kPermit;
          break;
        }
      }
    }
    if (!matches) continue;
    if (c.action == config::Action::kDeny) return std::nullopt;
    if (c.set_local_pref) attrs.local_pref = *c.set_local_pref;
    if (c.set_med) attrs.med = *c.set_med;
    if (c.set_metric) attrs.metric = *c.set_metric;
    return attrs;
  }
  return std::nullopt;
}

}  // namespace rcfg::routing
