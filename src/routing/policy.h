#pragma once

// Compiled routing policies.
//
// Route maps reference prefix lists by name inside a device's config. For
// the dataflow program, policies must travel *inside facts* (so that a
// policy edit changes the fact, which is what triggers incremental
// recomputation of exactly the routes filtered by that policy). A
// CompiledPolicy is therefore a self-contained value: clauses with their
// prefix-list entries resolved inline, hashable and comparable.

#include <cstdint>
#include <optional>
#include <vector>

#include "config/matchers.h"
#include "config/types.h"
#include "core/hash.h"
#include "net/ipv4.h"

namespace rcfg::routing {

struct CompiledClause {
  config::Action action = config::Action::kPermit;
  bool has_match = false;                              ///< false => matches everything
  std::vector<config::PrefixListEntry> match_entries;  ///< resolved prefix list
  std::optional<std::uint32_t> set_local_pref;
  std::optional<std::uint32_t> set_med;
  std::optional<std::uint32_t> set_metric;

  friend bool operator==(const CompiledClause&, const CompiledClause&) = default;
};

/// A resolved route map; empty `clauses` with engaged state means
/// "reject everything" (Cisco's implicit deny), so "no policy at all" is
/// represented by an *disengaged* std::optional<CompiledPolicy> upstream.
struct CompiledPolicy {
  std::vector<CompiledClause> clauses;

  friend bool operator==(const CompiledPolicy&, const CompiledPolicy&) = default;
};

/// Resolve `route_map_name` against `device`. A dangling route-map name
/// compiles to the empty (reject-all) policy — fail closed, mirroring
/// config::apply_route_map's treatment of dangling prefix lists.
CompiledPolicy compile_policy(const config::DeviceConfig& device,
                              const std::string& route_map_name);

/// Apply a compiled policy. Semantics must equal config::apply_route_map
/// on the uncompiled form (tested).
std::optional<config::RouteAttrs> apply_policy(const CompiledPolicy& policy,
                                               net::Ipv4Prefix route,
                                               config::RouteAttrs attrs);

}  // namespace rcfg::routing

template <>
struct std::hash<rcfg::config::PrefixListEntry> {
  std::size_t operator()(const rcfg::config::PrefixListEntry& e) const {
    return rcfg::core::hash_all(e.seq, static_cast<unsigned>(e.action), e.prefix, e.ge, e.le);
  }
};

template <>
struct std::hash<rcfg::routing::CompiledClause> {
  std::size_t operator()(const rcfg::routing::CompiledClause& c) const {
    std::size_t h = rcfg::core::hash_all(
        static_cast<unsigned>(c.action), c.has_match,
        c.set_local_pref.value_or(~0u), c.set_med.value_or(~0u), c.set_metric.value_or(~0u));
    rcfg::core::hash_combine(h, rcfg::core::TupleHash{}(c.match_entries));
    return h;
  }
};

template <>
struct std::hash<rcfg::routing::CompiledPolicy> {
  std::size_t operator()(const rcfg::routing::CompiledPolicy& p) const {
    return rcfg::core::TupleHash{}(p.clauses);
  }
};
