#pragma once

// The incremental data plane generator — RealConfig's first pipeline stage
// (paper §4.2): configuration changes in, forwarding/filtering rule changes
// out.
//
// The control-plane semantics (OSPF, BGP, static routes, connected routes,
// route redistribution) are written once, as a dataflow program over the
// rcfg::dd engine, our stand-in for DDlog/Differential Dataflow. apply()
// lowers the new configuration to fact relations, stages the fact delta
// against the previous snapshot, and commits; the engine re-converges
// incrementally from the previous fixpoint and the FIB delta falls out of
// the output sink. Filter (ACL) rules never need simulation and are diffed
// directly from the configs.
//
// Round-stratified evaluation. Route propagation is a fixpoint of
//     best_r = select(origins ∪ extend(best_{r-1}))
// and the program materializes max_rounds explicit stages of it (the
// moral equivalent of differential dataflow's per-iteration timestamps).
// This keeps the dataflow acyclic, so deletions cost work proportional to
// the truly affected state per round — the naive cyclic formulation instead
// "path hunts" through exponentially many stale alternative routes when a
// route is withdrawn. Convergence is checked by comparing the last two
// stages; a difference means either max_rounds is too small for the
// network's diameter/metric structure (increase it) or the control plane
// genuinely oscillates (paper §6) — both reported as NonterminationError.

#include <cstdint>
#include <memory>

#include "config/types.h"
#include "dd/graph.h"
#include "dd/operators.h"
#include "dd/zset.h"
#include "routing/facts.h"
#include "routing/types.h"
#include "topo/topology.h"

namespace rcfg::routing {

/// Rule-level changes produced by one configuration change.
struct DataPlaneDelta {
  dd::ZSet<FibEntry> fib;        ///< +1 inserted rule, -1 deleted rule
  dd::ZSet<FilterRule> filters;  ///< ditto for ACL rules

  bool empty() const { return fib.empty() && filters.empty(); }
  std::size_t insertions() const;
  std::size_t deletions() const;
};

struct GeneratorOptions {
  /// Number of synchronous propagation rounds materialized per protocol.
  /// Must exceed the longest minimal route's hop count (bounded by the
  /// node count; for fat-tree-like fabrics a couple dozen is plenty).
  unsigned max_rounds = 24;
};

class IncrementalGenerator {
 public:
  /// The topology is fixed for the generator's lifetime; configurations
  /// (including interface shutdowns) vary per apply().
  explicit IncrementalGenerator(const topo::Topology& topo, GeneratorOptions options = {});

  /// Load a configuration (the first call computes from scratch; later
  /// calls re-converge incrementally) and return the data plane delta.
  /// Throws dd::NonterminationError when the route computation has not
  /// converged within max_rounds (see header comment).
  DataPlaneDelta apply(const config::NetworkConfig& cfg);

  /// Current converged state.
  const dd::ZSet<FibEntry>& fib() const { return fib_out_->current(); }
  const dd::ZSet<FilterRule>& filters() const { return filters_; }
  const dd::ZSet<OspfRoute>& ospf_best() const { return ospf_best_out_->current(); }
  const dd::ZSet<BgpRoute>& bgp_best() const { return bgp_best_out_->current(); }
  const dd::ZSet<RipRoute>& rip_best() const { return rip_best_out_->current(); }

  /// Engine work done by the last apply() — the paper's "incremental
  /// computation is small" claim made measurable.
  std::uint64_t last_flushes() const { return graph_.last_commit_flushes(); }
  std::size_t operator_count() const { return graph_.operator_count(); }
  unsigned max_rounds() const { return options_.max_rounds; }

  /// Tuning passthroughs (see dd::Graph).
  void set_flush_budget(std::uint64_t budget) { graph_.set_flush_budget(budget); }
  void set_recurrence_threshold(std::uint64_t t) { graph_.set_recurrence_threshold(t); }
  std::uint64_t flush_budget() const { return graph_.flush_budget(); }
  std::uint64_t recurrence_threshold() const { return graph_.recurrence_threshold(); }

  /// Checkpoint of the generator's converged state: every dataflow
  /// operator's state plus the directly diffed filter relation (and, when
  /// provenance is on, the previous fact snapshot). Restorable into this
  /// generator or any generator built over the same topology and options —
  /// build_program() is deterministic, so operator positions line up.
  struct Snapshot {
    dd::GraphSnapshot graph;
    dd::ZSet<FilterRule> filters;
    std::shared_ptr<const FactSnapshot> prev_facts;  ///< null when provenance off
  };

  /// Requires a quiescent graph (apply() either finished or threw with the
  /// commit unwound); throws std::logic_error otherwise.
  Snapshot snapshot() const;

  /// Restore converged state from `snap`. Also recovers a generator whose
  /// last apply() diverged — the partially flushed operator state is
  /// overwritten wholesale. Tuning knobs (budgets) are not part of the
  /// snapshot and keep their current values.
  void restore(const Snapshot& snap);

  // --- provenance (pay-as-you-go: nothing is retained until enabled) ------
  /// When on, apply() keeps the previous fact snapshot and records which
  /// devices' compiled facts changed — the fact-level origin of the rule
  /// delta, used by the explain layer to tie ops back to config edits.
  void set_provenance(bool on);
  bool provenance() const noexcept { return provenance_; }
  /// Devices whose facts changed in the last apply() (sorted, unique).
  /// Always empty while provenance is off.
  const std::vector<topo::NodeId>& last_changed_devices() const noexcept {
    return changed_devices_;
  }

 private:
  void build_program();
  void record_changed_devices_(const FactSnapshot& facts);

  const topo::Topology& topo_;
  GeneratorOptions options_;
  dd::Graph graph_;

  bool provenance_ = false;
  std::unique_ptr<FactSnapshot> prev_facts_;  ///< only while provenance is on
  std::vector<topo::NodeId> changed_devices_;

  // Input relations.
  dd::Input<OspfLinkFact>* in_ospf_links_ = nullptr;
  dd::Input<OspfOriginFact>* in_ospf_origins_ = nullptr;
  dd::Input<BgpSessionFact>* in_bgp_sessions_ = nullptr;
  dd::Input<BgpOriginFact>* in_bgp_origins_ = nullptr;
  dd::Input<BgpAggregateFact>* in_bgp_aggregates_ = nullptr;
  dd::Input<RipLinkFact>* in_rip_links_ = nullptr;
  dd::Input<RipOriginFact>* in_rip_origins_ = nullptr;
  dd::Input<DynRedistFact>* in_redist_ = nullptr;
  dd::Input<StaticFact>* in_statics_ = nullptr;
  dd::Input<ConnectedFact>* in_connected_ = nullptr;

  // Output sinks.
  dd::Output<FibEntry>* fib_out_ = nullptr;
  dd::Output<OspfRoute>* ospf_best_out_ = nullptr;
  dd::Output<BgpRoute>* bgp_best_out_ = nullptr;
  dd::Output<RipRoute>* rip_best_out_ = nullptr;
  // Convergence sinks: best_R - best_{R-1}; nonempty => not converged.
  dd::Output<OspfRoute>* ospf_conv_ = nullptr;
  dd::Output<BgpRoute>* bgp_conv_ = nullptr;
  dd::Output<RipRoute>* rip_conv_ = nullptr;

  // Filter rules are maintained by direct diffing (no simulation needed).
  dd::ZSet<FilterRule> filters_;
};

}  // namespace rcfg::routing
