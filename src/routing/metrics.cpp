#include "routing/metrics.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace rcfg::routing {

namespace {

constexpr std::uint64_t kUnreachable = std::numeric_limits<std::uint64_t>::max();

}  // namespace

MetricPathStats metric_path_stats(const topo::Topology& topo,
                                  const std::vector<std::uint32_t>& link_cost) {
  if (!link_cost.empty() && link_cost.size() != topo.link_count()) {
    throw std::invalid_argument("metric_path_stats: need one cost per link (or none)");
  }
  for (const std::uint32_t c : link_cost) {
    if (c < 1) throw std::invalid_argument("metric_path_stats: link costs must be >= 1");
  }
  const auto cost_of = [&](topo::LinkId l) -> std::uint64_t {
    return link_cost.empty() ? 1 : link_cost[l];
  };

  const std::size_t n = topo.node_count();
  MetricPathStats stats;
  std::vector<std::uint64_t> dist(n);
  std::vector<unsigned> hops(n);
  using Item = std::pair<std::uint64_t, topo::NodeId>;  // (distance, node)

  for (topo::NodeId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), kUnreachable);
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    dist[s] = 0;
    heap.push({0, s});
    // `order` collects nodes in the settled (distance-ascending) order the
    // DAG pass below needs.
    std::vector<topo::NodeId> order;
    order.reserve(n);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d != dist[u]) continue;  // stale entry
      order.push_back(u);
      for (const auto& adj : topo.adjacencies(u)) {
        const std::uint64_t nd = d + cost_of(adj.link);
        if (nd < dist[adj.peer]) {
          dist[adj.peer] = nd;
          heap.push({nd, adj.peer});
        }
      }
    }
    // Longest hop path inside the shortest-path DAG rooted at s: process
    // nodes by ascending distance; every tight edge (dist[u] + w == dist[v])
    // is a DAG edge.
    std::fill(hops.begin(), hops.end(), 0);
    for (const topo::NodeId u : order) {
      for (const auto& adj : topo.adjacencies(u)) {
        if (dist[u] != kUnreachable &&
            dist[u] + cost_of(adj.link) == dist[adj.peer]) {
          hops[adj.peer] = std::max(hops[adj.peer], hops[u] + 1);
        }
      }
    }
    for (topo::NodeId v = 0; v < n; ++v) {
      if (dist[v] == kUnreachable) {
        stats.connected = false;
        continue;
      }
      stats.weighted_diameter = std::max(stats.weighted_diameter, dist[v]);
      stats.max_hops = std::max(stats.max_hops, hops[v]);
    }
  }
  return stats;
}

unsigned recommended_max_rounds(const topo::Topology& topo,
                                const std::vector<std::uint32_t>& link_cost,
                                unsigned slack) {
  return metric_path_stats(topo, link_cost).max_hops + slack;
}

}  // namespace rcfg::routing
