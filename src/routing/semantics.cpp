#include "routing/semantics.h"

#include <algorithm>
#include <limits>

namespace rcfg::routing {

namespace {
constexpr std::uint32_t kDefaultLocalPref = 100;
}  // namespace

OspfRoute make_ospf_origin(const OspfOriginFact& f) {
  OspfRoute r;
  r.node = f.node;
  r.prefix = f.prefix;
  r.cost = f.metric;
  r.tag = kTagNative;
  return r;
}

BgpRoute make_bgp_origin(const BgpOriginFact& f) {
  BgpRoute r;
  r.node = f.node;
  r.prefix = f.prefix;
  r.local_pref = kDefaultLocalPref;
  r.med = f.med;
  r.as_path = {f.as_number};
  r.tag = kTagNative;
  return r;
}

std::optional<OspfRoute> extend_ospf(const OspfRoute& r, const OspfLinkFact& l) {
  // No loop check needed: positive link costs mean a route that walks a
  // cycle can never be minimum-cost, and the round-stratified evaluation
  // bounds derivation depth regardless.
  OspfRoute nr;
  nr.node = l.to;
  nr.prefix = r.prefix;
  nr.cost = r.cost + l.cost;
  nr.egress = l.via_iface;
  nr.tag = r.tag;
  return nr;
}

std::optional<BgpRoute> extend_bgp(const BgpRoute& r, const BgpSessionFact& s) {
  if (std::find(r.as_path.begin(), r.as_path.end(), s.to_as) != r.as_path.end()) {
    return std::nullopt;
  }
  // summary-only aggregation on the sender: strictly more-specific routes
  // stay home; only the aggregate leaves.
  for (const net::Ipv4Prefix& agg : s.suppressed) {
    if (agg.contains(r.prefix) && agg != r.prefix) return std::nullopt;
  }
  // local-pref and MED are non-transitive across eBGP: the receiver starts
  // from defaults; the sender's export policy may set MED, the receiver's
  // import policy may set local-pref.
  config::RouteAttrs attrs;
  attrs.local_pref = kDefaultLocalPref;
  attrs.med = 0;
  if (s.has_export) {
    const auto a = apply_policy(s.export_policy, r.prefix, attrs);
    if (!a) return std::nullopt;
    attrs = *a;
  }
  if (s.has_import) {
    const auto a = apply_policy(s.import_policy, r.prefix, attrs);
    if (!a) return std::nullopt;
    attrs = *a;
  }
  BgpRoute nr;
  nr.node = s.to;
  nr.prefix = r.prefix;
  nr.local_pref = attrs.local_pref;
  nr.med = attrs.med;
  nr.as_path = r.as_path;
  nr.as_path.push_back(s.to_as);
  nr.egress = s.via_iface;
  nr.neighbor_as = s.from_as;
  nr.tag = r.tag;
  return nr;
}

BgpRoute make_bgp_aggregate(const BgpAggregateFact& f) {
  BgpRoute r;
  r.node = f.node;
  r.prefix = f.prefix;
  r.local_pref = kDefaultLocalPref;
  r.as_path = {f.as_number};
  r.tag = kTagNative;
  r.aggregate = true;
  return r;
}

bool contributes_to_aggregate(const BgpRoute& r, const BgpAggregateFact& f) {
  return r.node == f.node && f.prefix.contains(r.prefix) && f.prefix != r.prefix;
}

RipRoute make_rip_origin(const RipOriginFact& f) {
  RipRoute r;
  r.node = f.node;
  r.prefix = f.prefix;
  r.metric = f.metric;
  r.tag = kTagNative;
  return r;
}

std::optional<RipRoute> extend_rip(const RipRoute& r, const RipLinkFact& l) {
  if (r.metric + 1 >= config::kRipInfinity) return std::nullopt;  // 15-hop horizon
  RipRoute nr;
  nr.node = l.to;
  nr.prefix = r.prefix;
  nr.metric = r.metric + 1;
  nr.egress = l.via_iface;
  nr.tag = r.tag;
  return nr;
}

namespace {
/// Shared policy step for redistribution: returns the effective metric/MED,
/// nullopt when the policy rejects the prefix.
std::optional<std::uint32_t> redist_attrs(net::Ipv4Prefix prefix, const DynRedistFact& f,
                                          bool use_med) {
  config::RouteAttrs attrs;
  (use_med ? attrs.med : attrs.metric) = f.metric;
  if (f.has_policy) {
    const auto a = apply_policy(f.policy, prefix, attrs);
    if (!a) return std::nullopt;
    attrs = *a;
  }
  return use_med ? attrs.med : attrs.metric;
}
}  // namespace

std::optional<OspfRoute> make_redist_ospf(net::Ipv4Prefix prefix, topo::IfaceId egress,
                                          const DynRedistFact& f) {
  const auto metric = redist_attrs(prefix, f, /*use_med=*/false);
  if (!metric) return std::nullopt;
  OspfRoute nr;
  nr.node = f.node;
  nr.prefix = prefix;
  nr.cost = *metric;
  nr.egress = egress;
  nr.tag = kTagRedistributed;
  return nr;
}

std::optional<BgpRoute> make_redist_bgp(net::Ipv4Prefix prefix, topo::IfaceId egress,
                                        const DynRedistFact& f) {
  const auto med = redist_attrs(prefix, f, /*use_med=*/true);
  if (!med) return std::nullopt;
  BgpRoute nr;
  nr.node = f.node;
  nr.prefix = prefix;
  nr.local_pref = kDefaultLocalPref;
  nr.med = *med;
  nr.as_path = {f.as_number};
  nr.egress = egress;
  nr.tag = kTagRedistributed;
  return nr;
}

std::optional<RipRoute> make_redist_rip(net::Ipv4Prefix prefix, topo::IfaceId egress,
                                        const DynRedistFact& f) {
  const auto metric = redist_attrs(prefix, f, /*use_med=*/false);
  if (!metric || *metric >= config::kRipInfinity) return std::nullopt;
  RipRoute nr;
  nr.node = f.node;
  nr.prefix = prefix;
  nr.metric = std::max<std::uint32_t>(1, *metric);
  nr.egress = egress;
  nr.tag = kTagRedistributed;
  return nr;
}

FibEntry select_fib(topo::NodeId node, net::Ipv4Prefix prefix,
                    const std::vector<FibCandidate>& candidates) {
  std::uint32_t best_ad = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t best_metric = std::numeric_limits<std::uint32_t>::max();
  for (const FibCandidate& c : candidates) {
    if (c.ad < best_ad || (c.ad == best_ad && c.metric < best_metric)) {
      best_ad = c.ad;
      best_metric = c.metric;
    }
  }
  bool any_forward = false;
  bool any_deliver = false;
  std::vector<topo::IfaceId> egresses;
  for (const FibCandidate& c : candidates) {
    if (c.ad != best_ad || c.metric != best_metric) continue;
    if (c.action == FibAction::kForward) {
      any_forward = true;
      egresses.push_back(c.egress);
    } else if (c.action == FibAction::kDeliver) {
      any_deliver = true;
    }
  }
  FibEntry e;
  e.node = node;
  e.prefix = prefix;
  if (any_forward) {
    e.action = FibAction::kForward;
    std::sort(egresses.begin(), egresses.end());
    egresses.erase(std::unique(egresses.begin(), egresses.end()), egresses.end());
    e.out_ifaces = std::move(egresses);
  } else if (any_deliver) {
    e.action = FibAction::kDeliver;
  } else {
    e.action = FibAction::kDrop;
  }
  return e;
}

FibCandidate candidate_of(const ConnectedFact&) {
  return FibCandidate{config::AdminDistance::kConnected, 0, FibAction::kDeliver,
                      topo::kInvalidIface};
}

FibCandidate candidate_of(const StaticFact& f) {
  return FibCandidate{f.distance, 0, f.drop ? FibAction::kDrop : FibAction::kForward, f.egress};
}

FibCandidate candidate_of(const OspfRoute& r) {
  const auto action = r.egress == topo::kInvalidIface ? FibAction::kDeliver : FibAction::kForward;
  return FibCandidate{config::AdminDistance::kOspf, r.cost, action, r.egress};
}

FibCandidate candidate_of(const BgpRoute& r) {
  // An aggregate at its origin installs a discard route: packets matching
  // the aggregate but no contributor are dropped, as on real routers.
  const auto action = r.egress != topo::kInvalidIface ? FibAction::kForward
                      : r.aggregate                   ? FibAction::kDrop
                                                      : FibAction::kDeliver;
  return FibCandidate{config::AdminDistance::kBgp, 0, action, r.egress};
}

FibCandidate candidate_of(const RipRoute& r) {
  const auto action = r.egress == topo::kInvalidIface ? FibAction::kDeliver : FibAction::kForward;
  return FibCandidate{config::AdminDistance::kRip, r.metric, action, r.egress};
}

}  // namespace rcfg::routing
