#include "routing/generator.h"

#include <algorithm>
#include <limits>
#include <string>

#include "routing/semantics.h"

namespace rcfg::routing {

namespace {

using namespace rcfg::dd;

/// Reduce key: (node, prefix).
using Key = std::pair<topo::NodeId, net::Ipv4Prefix>;

/// FIB candidate packed as a hashable tuple: (ad, metric, action, egress).
using Cand = std::tuple<std::uint32_t, std::uint32_t, std::uint8_t, topo::IfaceId>;

Cand pack(const FibCandidate& c) {
  return Cand{c.ad, c.metric, static_cast<std::uint8_t>(c.action), c.egress};
}

FibCandidate unpack(const Cand& c) {
  return FibCandidate{std::get<0>(c), std::get<1>(c), static_cast<FibAction>(std::get<2>(c)),
                      std::get<3>(c)};
}

/// Joins cannot return "no tuple", so rejected derivations surface as a
/// sentinel (node == kInvalidNode) and are dropped by the next Filter.
template <class R>
bool is_rejected(const R& r) {
  return r.node == topo::kInvalidNode;
}

std::uint32_t metric_of(const OspfRoute& r) { return r.cost; }
std::uint32_t metric_of(const RipRoute& r) { return r.metric; }

/// OSPF/RIP selection: every minimum-metric candidate (the ECMP set).
template <class Route>
void min_metric_select(const Key&, const ZSet<Route>& group, std::vector<Route>& out) {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (const auto& [r, w] : group) best = std::min(best, metric_of(r));
  for (const auto& [r, w] : group) {
    if (metric_of(r) == best) out.push_back(r);
  }
}

/// BGP decision process: single deterministic winner.
void bgp_select(const Key&, const ZSet<BgpRoute>& group, std::vector<BgpRoute>& out) {
  const BgpRoute* best = nullptr;
  for (const auto& [r, w] : group) {
    if (best == nullptr || bgp_better(r, *best)) best = &r;
  }
  if (best != nullptr) out.push_back(*best);
}

/// One protocol's round-stratified chain plus its plumbing handles.
template <class Route>
struct Chain {
  Concat<Route>* origins = nullptr;          ///< extra origins can be wired in later
  Stream<Route>* best = nullptr;             ///< best_R
  Stream<Route>* conv_diff = nullptr;        ///< best_R - best_{R-1}
};

/// Builds: origins -> best_0 -> [extend ⋈ links -> candidates -> best_r]*R
/// plus the convergence diff. `extend` maps (route, link-fact) to the
/// propagated route or a sentinel; `select` is the protocol's decision.
template <class Route, class LinkFact, class Select, class Extend>
Chain<Route> build_chain(Graph& g, const std::string& proto, Stream<LinkFact>& links,
                         unsigned rounds, Select select, Extend extend) {
  Chain<Route> chain;
  chain.origins = &g.make<Concat<Route>>(proto + ".origins");

  auto key_route = [](const Route& r) { return std::pair<Key, Route>{{r.node, r.prefix}, r}; };
  auto& origins_keyed = g.make<Map<Route, std::pair<Key, Route>>>(chain.origins->out, key_route,
                                                                  proto + ".origins_keyed");
  auto& links_by_from = g.make<Map<LinkFact, std::pair<topo::NodeId, LinkFact>>>(
      links, [](const LinkFact& f) { return std::pair<topo::NodeId, LinkFact>{f.from, f}; },
      proto + ".links_by_from");

  Reduce<Key, Route, Route>* prev =
      &g.make<Reduce<Key, Route, Route>>(origins_keyed.out, select, proto + ".best_r0");
  Reduce<Key, Route, Route>* prev_prev = nullptr;
  for (unsigned r = 1; r <= rounds; ++r) {
    const std::string tag = proto + ".r" + std::to_string(r);
    auto& by_node = g.make<Map<Route, std::pair<topo::NodeId, Route>>>(
        prev->out,
        [](const Route& rt) { return std::pair<topo::NodeId, Route>{rt.node, rt}; },
        tag + ".by_node");
    auto& ext = g.make<Join<topo::NodeId, Route, LinkFact, Route>>(
        by_node.out, links_by_from.out,
        [extend](const topo::NodeId&, const Route& rt, const LinkFact& l) {
          return extend(rt, l);
        },
        tag + ".extend");
    auto& ext_ok = g.make<Filter<Route>>(
        ext.out, [](const Route& rt) { return !is_rejected(rt); }, tag + ".extend_ok");
    auto& ext_keyed =
        g.make<Map<Route, std::pair<Key, Route>>>(ext_ok.out, key_route, tag + ".extend_keyed");
    auto& cand = g.make<Concat<std::pair<Key, Route>>>(tag + ".cand");
    cand.add_input(origins_keyed.out);
    cand.add_input(ext_keyed.out);
    auto& best = g.make<Reduce<Key, Route, Route>>(cand.out, select, tag + ".best");
    prev_prev = prev;
    prev = &best;
  }
  chain.best = &prev->out;

  auto& neg = g.make<Negate<Route>>(prev_prev->out, proto + ".conv_neg");
  auto& diff = g.make<Concat<Route>>(proto + ".conv_diff");
  diff.add_input(prev->out);
  diff.add_input(neg.out);
  chain.conv_diff = &diff.out;
  return chain;
}

/// Wires dynamic redistribution: native best routes of `from_best` are
/// converted (per matching facts at the same node) and added to the target
/// protocol's origins. `convert(prefix, egress, fact)` returns the target
/// route or nullopt.
template <class FromRoute, class ToRoute, class Convert>
void wire_redist(Graph& g, const std::string& name, Stream<FromRoute>& from_best,
                 Stream<std::pair<topo::NodeId, DynRedistFact>>& redist_by_node, Proto from,
                 Proto to, Concat<ToRoute>& to_origins, Convert convert) {
  auto& native = g.make<Filter<FromRoute>>(
      from_best, [](const FromRoute& r) { return r.tag == kTagNative; }, name + ".native");
  auto& native_by_node = g.make<Map<FromRoute, std::pair<topo::NodeId, FromRoute>>>(
      native.out,
      [](const FromRoute& r) { return std::pair<topo::NodeId, FromRoute>{r.node, r}; },
      name + ".by_node");
  auto& direction = g.make<Filter<std::pair<topo::NodeId, DynRedistFact>>>(
      redist_by_node,
      [from, to](const std::pair<topo::NodeId, DynRedistFact>& kv) {
        return kv.second.from == from && kv.second.to == to;
      },
      name + ".direction");
  auto& join = g.make<Join<topo::NodeId, FromRoute, DynRedistFact, ToRoute>>(
      native_by_node.out, direction.out,
      [convert](const topo::NodeId&, const FromRoute& r, const DynRedistFact& f) {
        return convert(r.prefix, r.egress, f).value_or(ToRoute{});
      },
      name + ".convert");
  auto& ok = g.make<Filter<ToRoute>>(
      join.out, [](const ToRoute& r) { return !is_rejected(r); }, name + ".ok");
  to_origins.add_input(ok.out);
}

}  // namespace

std::size_t DataPlaneDelta::insertions() const {
  std::size_t n = 0;
  for (const auto& [e, w] : fib) {
    if (w > 0) ++n;
  }
  for (const auto& [e, w] : filters) {
    if (w > 0) ++n;
  }
  return n;
}

std::size_t DataPlaneDelta::deletions() const {
  std::size_t n = 0;
  for (const auto& [e, w] : fib) {
    if (w < 0) ++n;
  }
  for (const auto& [e, w] : filters) {
    if (w < 0) ++n;
  }
  return n;
}

IncrementalGenerator::IncrementalGenerator(const topo::Topology& topo, GeneratorOptions options)
    : topo_(topo), options_(options) {
  if (options_.max_rounds < 2) options_.max_rounds = 2;
  build_program();
}

void IncrementalGenerator::build_program() {
  const unsigned rounds = options_.max_rounds;

  // ---- input relations ----------------------------------------------------
  in_ospf_links_ = &graph_.make<Input<OspfLinkFact>>("in.ospf_links");
  in_ospf_origins_ = &graph_.make<Input<OspfOriginFact>>("in.ospf_origins");
  in_bgp_sessions_ = &graph_.make<Input<BgpSessionFact>>("in.bgp_sessions");
  in_bgp_origins_ = &graph_.make<Input<BgpOriginFact>>("in.bgp_origins");
  in_bgp_aggregates_ = &graph_.make<Input<BgpAggregateFact>>("in.bgp_aggregates");
  in_rip_links_ = &graph_.make<Input<RipLinkFact>>("in.rip_links");
  in_rip_origins_ = &graph_.make<Input<RipOriginFact>>("in.rip_origins");
  in_redist_ = &graph_.make<Input<DynRedistFact>>("in.redist");
  in_statics_ = &graph_.make<Input<StaticFact>>("in.statics");
  in_connected_ = &graph_.make<Input<ConnectedFact>>("in.connected");

  // ---- protocol chains -----------------------------------------------------
  Chain<OspfRoute> ospf = build_chain<OspfRoute, OspfLinkFact>(
      graph_, "ospf", in_ospf_links_->out, rounds, min_metric_select<OspfRoute>,
      [](const OspfRoute& rt, const OspfLinkFact& l) {
        return extend_ospf(rt, l).value_or(OspfRoute{});
      });
  auto& ospf_fact_origins = graph_.make<Map<OspfOriginFact, OspfRoute>>(
      in_ospf_origins_->out, [](const OspfOriginFact& f) { return make_ospf_origin(f); },
      "ospf.fact_origins");
  ospf.origins->add_input(ospf_fact_origins.out);

  Chain<BgpRoute> bgp = build_chain<BgpRoute, BgpSessionFact>(
      graph_, "bgp", in_bgp_sessions_->out, rounds, bgp_select,
      [](const BgpRoute& rt, const BgpSessionFact& s) {
        return extend_bgp(rt, s).value_or(BgpRoute{});
      });
  auto& bgp_fact_origins = graph_.make<Map<BgpOriginFact, BgpRoute>>(
      in_bgp_origins_->out, [](const BgpOriginFact& f) { return make_bgp_origin(f); },
      "bgp.fact_origins");
  bgp.origins->add_input(bgp_fact_origins.out);

  // RIP's horizon bounds convergence at 15 rounds regardless of topology.
  const unsigned rip_rounds = std::min(rounds, config::kRipInfinity - 1);
  Chain<RipRoute> rip = build_chain<RipRoute, RipLinkFact>(
      graph_, "rip", in_rip_links_->out, rip_rounds, min_metric_select<RipRoute>,
      [](const RipRoute& rt, const RipLinkFact& l) {
        return extend_rip(rt, l).value_or(RipRoute{});
      });
  auto& rip_fact_origins = graph_.make<Map<RipOriginFact, RipRoute>>(
      in_rip_origins_->out, [](const RipOriginFact& f) { return make_rip_origin(f); },
      "rip.fact_origins");
  rip.origins->add_input(rip_fact_origins.out);

  ospf_best_out_ = &graph_.make<Output<OspfRoute>>(*ospf.best, "ospf.best_out");
  bgp_best_out_ = &graph_.make<Output<BgpRoute>>(*bgp.best, "bgp.best_out");
  rip_best_out_ = &graph_.make<Output<RipRoute>>(*rip.best, "rip.best_out");
  ospf_conv_ = &graph_.make<Output<OspfRoute>>(*ospf.conv_diff, "ospf.conv");
  bgp_conv_ = &graph_.make<Output<BgpRoute>>(*bgp.conv_diff, "bgp.conv");
  rip_conv_ = &graph_.make<Output<RipRoute>>(*rip.conv_diff, "rip.conv");

  // ---- BGP route aggregation --------------------------------------------------
  // An aggregate is originated while any strictly more-specific route sits
  // in the node's BGP table. Each contributor derives the same aggregate
  // tuple, so Z-set weights count the contributors: the aggregate retracts
  // exactly when the last contributor withdraws. Aggregates may contribute
  // to wider aggregates; containment keeps such chains finite.
  {
    auto& agg_by_node = graph_.make<Map<BgpAggregateFact, std::pair<topo::NodeId, BgpAggregateFact>>>(
        in_bgp_aggregates_->out,
        [](const BgpAggregateFact& f) {
          return std::pair<topo::NodeId, BgpAggregateFact>{f.node, f};
        },
        "agg.by_node");
    auto& best_by_node = graph_.make<Map<BgpRoute, std::pair<topo::NodeId, BgpRoute>>>(
        *bgp.best,
        [](const BgpRoute& r) { return std::pair<topo::NodeId, BgpRoute>{r.node, r}; },
        "agg.best_by_node");
    auto& contrib = graph_.make<Join<topo::NodeId, BgpRoute, BgpAggregateFact, BgpRoute>>(
        best_by_node.out, agg_by_node.out,
        [](const topo::NodeId&, const BgpRoute& r, const BgpAggregateFact& f) {
          return contributes_to_aggregate(r, f) ? make_bgp_aggregate(f) : BgpRoute{};
        },
        "agg.contrib");
    auto& ok = graph_.make<Filter<BgpRoute>>(
        contrib.out, [](const BgpRoute& r) { return !is_rejected(r); }, "agg.ok");
    bgp.origins->add_input(ok.out);
  }

  // ---- dynamic redistribution: the full protocol triangle --------------------
  auto& redist_by_node = graph_.make<Map<DynRedistFact, std::pair<topo::NodeId, DynRedistFact>>>(
      in_redist_->out,
      [](const DynRedistFact& f) { return std::pair<topo::NodeId, DynRedistFact>{f.node, f}; },
      "redist.by_node");

  wire_redist(graph_, "redist.ospf2bgp", *ospf.best, redist_by_node.out, Proto::kOspf,
              Proto::kBgp, *bgp.origins, make_redist_bgp);
  wire_redist(graph_, "redist.ospf2rip", *ospf.best, redist_by_node.out, Proto::kOspf,
              Proto::kRip, *rip.origins, make_redist_rip);
  wire_redist(graph_, "redist.bgp2ospf", *bgp.best, redist_by_node.out, Proto::kBgp,
              Proto::kOspf, *ospf.origins, make_redist_ospf);
  wire_redist(graph_, "redist.bgp2rip", *bgp.best, redist_by_node.out, Proto::kBgp, Proto::kRip,
              *rip.origins, make_redist_rip);
  wire_redist(graph_, "redist.rip2ospf", *rip.best, redist_by_node.out, Proto::kRip,
              Proto::kOspf, *ospf.origins, make_redist_ospf);
  wire_redist(graph_, "redist.rip2bgp", *rip.best, redist_by_node.out, Proto::kRip, Proto::kBgp,
              *bgp.origins, make_redist_bgp);

  // ---- FIB selection -----------------------------------------------------------
  auto& candidates = graph_.make<Concat<std::pair<Key, Cand>>>("fib.candidates");

  auto& cand_connected = graph_.make<Map<ConnectedFact, std::pair<Key, Cand>>>(
      in_connected_->out,
      [](const ConnectedFact& f) {
        return std::pair<Key, Cand>{{f.node, f.prefix}, pack(candidate_of(f))};
      },
      "fib.cand_connected");
  candidates.add_input(cand_connected.out);

  auto& cand_static = graph_.make<Map<StaticFact, std::pair<Key, Cand>>>(
      in_statics_->out,
      [](const StaticFact& f) {
        return std::pair<Key, Cand>{{f.node, f.prefix}, pack(candidate_of(f))};
      },
      "fib.cand_static");
  candidates.add_input(cand_static.out);

  auto& cand_ospf = graph_.make<Map<OspfRoute, std::pair<Key, Cand>>>(
      *ospf.best,
      [](const OspfRoute& r) {
        return std::pair<Key, Cand>{{r.node, r.prefix}, pack(candidate_of(r))};
      },
      "fib.cand_ospf");
  candidates.add_input(cand_ospf.out);

  auto& cand_bgp = graph_.make<Map<BgpRoute, std::pair<Key, Cand>>>(
      *bgp.best,
      [](const BgpRoute& r) {
        return std::pair<Key, Cand>{{r.node, r.prefix}, pack(candidate_of(r))};
      },
      "fib.cand_bgp");
  candidates.add_input(cand_bgp.out);

  auto& cand_rip = graph_.make<Map<RipRoute, std::pair<Key, Cand>>>(
      *rip.best,
      [](const RipRoute& r) {
        return std::pair<Key, Cand>{{r.node, r.prefix}, pack(candidate_of(r))};
      },
      "fib.cand_rip");
  candidates.add_input(cand_rip.out);

  auto& fib = graph_.make<Reduce<Key, Cand, FibEntry>>(
      candidates.out,
      [](const Key& key, const ZSet<Cand>& group, std::vector<FibEntry>& out) {
        std::vector<FibCandidate> cands;
        cands.reserve(group.size());
        for (const auto& [c, w] : group) cands.push_back(unpack(c));
        out.push_back(select_fib(key.first, key.second, cands));
      },
      "fib.select");
  fib_out_ = &graph_.make<Output<FibEntry>>(fib.out, "fib.out");
}

void IncrementalGenerator::set_provenance(bool on) {
  provenance_ = on;
  if (!on) {
    prev_facts_.reset();
    changed_devices_.clear();
  }
}

namespace {

/// Collect the device endpoints of every fact in the symmetric difference
/// of two relation snapshots. `endpoints` projects one fact to its nodes.
template <typename T, typename Fn>
void changed_endpoints(const dd::ZSet<T>& now, const dd::ZSet<T>& before, Fn endpoints,
                       std::vector<topo::NodeId>& out) {
  for (const auto& [fact, weight] : dd::ZSet<T>::difference(now, before)) {
    (void)weight;
    endpoints(fact, out);
  }
}

}  // namespace

void IncrementalGenerator::record_changed_devices_(const FactSnapshot& facts) {
  changed_devices_.clear();
  if (prev_facts_ != nullptr) {
    const FactSnapshot& prev = *prev_facts_;
    auto node = [](const auto& f, std::vector<topo::NodeId>& out) { out.push_back(f.node); };
    auto edge = [](const auto& f, std::vector<topo::NodeId>& out) {
      out.push_back(f.from);
      out.push_back(f.to);
    };
    changed_endpoints(facts.ospf_links, prev.ospf_links, edge, changed_devices_);
    changed_endpoints(facts.ospf_origins, prev.ospf_origins, node, changed_devices_);
    changed_endpoints(facts.bgp_sessions, prev.bgp_sessions, edge, changed_devices_);
    changed_endpoints(facts.bgp_origins, prev.bgp_origins, node, changed_devices_);
    changed_endpoints(facts.bgp_aggregates, prev.bgp_aggregates, node, changed_devices_);
    changed_endpoints(facts.rip_links, prev.rip_links, edge, changed_devices_);
    changed_endpoints(facts.rip_origins, prev.rip_origins, node, changed_devices_);
    changed_endpoints(facts.redist, prev.redist, node, changed_devices_);
    changed_endpoints(facts.statics, prev.statics, node, changed_devices_);
    changed_endpoints(facts.connected, prev.connected, node, changed_devices_);
    std::sort(changed_devices_.begin(), changed_devices_.end());
    changed_devices_.erase(std::unique(changed_devices_.begin(), changed_devices_.end()),
                           changed_devices_.end());
  }
  prev_facts_ = std::make_unique<FactSnapshot>(facts);
}

IncrementalGenerator::Snapshot IncrementalGenerator::snapshot() const {
  Snapshot snap;
  snap.graph = graph_.snapshot();
  snap.filters = filters_;
  if (provenance_ && prev_facts_ != nullptr) {
    snap.prev_facts = std::make_shared<const FactSnapshot>(*prev_facts_);
  }
  return snap;
}

void IncrementalGenerator::restore(const Snapshot& snap) {
  graph_.restore(snap.graph);
  filters_ = snap.filters;
  changed_devices_.clear();
  if (provenance_ && snap.prev_facts != nullptr) {
    prev_facts_ = std::make_unique<FactSnapshot>(*snap.prev_facts);
  } else {
    prev_facts_.reset();
  }
}

DataPlaneDelta IncrementalGenerator::apply(const config::NetworkConfig& cfg) {
  const FactSnapshot facts = compile_facts(topo_, cfg);
  if (provenance_) record_changed_devices_(facts);
  in_ospf_links_->set_to(facts.ospf_links);
  in_ospf_origins_->set_to(facts.ospf_origins);
  in_bgp_sessions_->set_to(facts.bgp_sessions);
  in_bgp_origins_->set_to(facts.bgp_origins);
  in_bgp_aggregates_->set_to(facts.bgp_aggregates);
  in_rip_links_->set_to(facts.rip_links);
  in_rip_origins_->set_to(facts.rip_origins);
  in_redist_->set_to(facts.redist);
  in_statics_->set_to(facts.statics);
  in_connected_->set_to(facts.connected);

  graph_.commit();

  // Keep the sinks' delta accumulators from growing unboundedly.
  (void)ospf_best_out_->take_delta();
  (void)bgp_best_out_->take_delta();
  (void)rip_best_out_->take_delta();
  (void)ospf_conv_->take_delta();
  (void)bgp_conv_->take_delta();
  (void)rip_conv_->take_delta();

  if (!ospf_conv_->current().empty() || !bgp_conv_->current().empty() ||
      !rip_conv_->current().empty()) {
    throw dd::NonterminationError(
        "route computation did not converge within " + std::to_string(options_.max_rounds) +
        " rounds: either raise GeneratorOptions::max_rounds (long minimal paths) or the "
        "control plane oscillates with no stable state (paper §6, e.g. a BGP dispute wheel)");
  }

  DataPlaneDelta delta;
  delta.fib = fib_out_->take_delta();

  // Filter rules: straight extraction + diff, no simulation involved.
  dd::ZSet<FilterRule> new_filters = extract_filter_rules(topo_, cfg);
  delta.filters = dd::ZSet<FilterRule>::difference(new_filters, filters_);
  filters_ = std::move(new_filters);

  return delta;
}

std::string to_string(const FibEntry& e) {
  std::string out = "node=" + std::to_string(e.node) + " " + e.prefix.to_string() + " -> ";
  switch (e.action) {
    case FibAction::kDeliver:
      out += "deliver";
      break;
    case FibAction::kDrop:
      out += "drop";
      break;
    case FibAction::kForward: {
      out += "ifaces[";
      for (std::size_t i = 0; i < e.out_ifaces.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(e.out_ifaces[i]);
      }
      out += "]";
      break;
    }
  }
  return out;
}

}  // namespace rcfg::routing
