#pragma once

// Metric-aware sizing of the round-stratified route evaluation.
//
// The generator materializes GeneratorOptions::max_rounds synchronous
// propagation stages, and convergence requires that no NEW minimal-cost
// route candidate can appear after the last stage. On unweighted fabrics
// the hop diameter bounds that; on WAN-style weighted graphs a minimal-cost
// path may prefer many cheap hops over one expensive link, so its hop count
// — not the hop diameter — is the binding quantity. metric_path_stats
// computes the exact bound: the longest (in hops) path that is still
// minimal-cost between some pair, i.e. the longest path through any
// shortest-path DAG. recommended_max_rounds adds the slack the protocol
// semantics need on top (origination + FIB selection stages).

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace rcfg::routing {

struct MetricPathStats {
  /// Hop count of the longest minimal-cost path between any node pair
  /// (maximized over equal-cost alternatives: ties may be broken toward
  /// either path by the per-round select, so both must have stabilized).
  unsigned max_hops = 0;
  /// Largest minimal-cost distance between any connected pair.
  std::uint64_t weighted_diameter = 0;
  /// False when some node pair has no path at all.
  bool connected = true;
};

/// Per-source Dijkstra over `link_cost` (indexed by LinkId, all >= 1; one
/// entry per link, both directions priced identically), then the longest
/// hop path inside each shortest-path DAG. O(n * m log n); intended for
/// generator sizing, not per-apply hot paths. An empty `link_cost` prices
/// every link at 1 (pure hop metric).
MetricPathStats metric_path_stats(const topo::Topology& topo,
                                  const std::vector<std::uint32_t>& link_cost = {});

/// GeneratorOptions::max_rounds for a (possibly weighted) topology:
/// max_hops plus `slack` rounds for origination, redistribution, and the
/// convergence-detection comparison of the final two stages.
unsigned recommended_max_rounds(const topo::Topology& topo,
                                const std::vector<std::uint32_t>& link_cost = {},
                                unsigned slack = 4);

}  // namespace rcfg::routing
