#pragma once

// Input fact relations: the bridge from configurations to the dataflow
// program. compile_facts() lowers (Topology, NetworkConfig) into plain
// relations; the incremental generator diffs consecutive snapshots with
// Input::set_to, so a small config change becomes a small fact delta (the
// analog of the paper feeding config changes into DDlog input relations).
//
// Conventions:
//  - "up" interface = present in the device config, not shutdown.
//  - Adjacency/session facts are *directed*: (from -> to) means routes flow
//    from `from` to `to`; `via_iface` is to's interface toward from, i.e.
//    the egress `to` uses when forwarding along the reverse direction.
//  - Config interfaces with no counterpart in the topology (e.g. "lan0")
//    are stub interfaces: they contribute connected prefixes but can never
//    form adjacencies or sessions.

#include <cstdint>

#include "config/types.h"
#include "core/hash.h"
#include "dd/zset.h"
#include "net/ipv4.h"
#include "routing/policy.h"
#include "routing/types.h"
#include "topo/topology.h"

namespace rcfg::routing {

/// Directed OSPF adjacency: both endpoint interfaces up, OSPF-enabled,
/// non-passive, and in the same area. `cost` is to's interface cost.
struct OspfLinkFact {
  topo::NodeId from = topo::kInvalidNode;
  topo::NodeId to = topo::kInvalidNode;
  topo::IfaceId via_iface = topo::kInvalidIface;
  std::uint32_t cost = 1;

  friend bool operator==(const OspfLinkFact&, const OspfLinkFact&) = default;
};

/// A prefix injected into OSPF at `node`: connected subnets of OSPF
/// interfaces (metric = interface cost) and compile-time redistributions
/// (static/connected, metric from the redistribute statement).
struct OspfOriginFact {
  topo::NodeId node = topo::kInvalidNode;
  net::Ipv4Prefix prefix;
  std::uint32_t metric = 0;

  friend bool operator==(const OspfOriginFact&, const OspfOriginFact&) = default;
};

/// Directed BGP session (from -> to): both interfaces up and the neighbor
/// statements mutually consistent (each side names the link interface with
/// the peer's AS). Policies are resolved values so policy edits show up as
/// fact deltas.
struct BgpSessionFact {
  topo::NodeId from = topo::kInvalidNode;
  topo::NodeId to = topo::kInvalidNode;
  std::uint32_t from_as = 0;
  std::uint32_t to_as = 0;
  topo::IfaceId via_iface = topo::kInvalidIface;
  bool has_export = false;  ///< from's export route-map toward to
  bool has_import = false;  ///< to's import route-map from from
  CompiledPolicy export_policy;
  CompiledPolicy import_policy;
  /// summary-only aggregates configured on `from`: strictly more-specific
  /// routes are suppressed on this session (sorted for stable equality).
  std::vector<net::Ipv4Prefix> suppressed;

  friend bool operator==(const BgpSessionFact&, const BgpSessionFact&) = default;
};

/// BGP route aggregation at `node`: the aggregate is originated while some
/// strictly more-specific route sits in the node's BGP table.
struct BgpAggregateFact {
  topo::NodeId node = topo::kInvalidNode;
  std::uint32_t as_number = 0;
  net::Ipv4Prefix prefix;
  bool summary_only = false;

  friend bool operator==(const BgpAggregateFact&, const BgpAggregateFact&) = default;
};

/// A prefix originated into BGP at `node` (network statements and
/// compile-time redistributions; `med` carries the redistribution metric).
struct BgpOriginFact {
  topo::NodeId node = topo::kInvalidNode;
  std::uint32_t as_number = 0;
  net::Ipv4Prefix prefix;
  std::uint32_t med = 0;

  friend bool operator==(const BgpOriginFact&, const BgpOriginFact&) = default;
};

/// Directed RIP adjacency (both endpoint interfaces up with `rip enable`);
/// the hop metric is implicit (1 per hop).
struct RipLinkFact {
  topo::NodeId from = topo::kInvalidNode;
  topo::NodeId to = topo::kInvalidNode;
  topo::IfaceId via_iface = topo::kInvalidIface;

  friend bool operator==(const RipLinkFact&, const RipLinkFact&) = default;
};

/// A prefix injected into RIP at `node` (connected RIP subnets, metric 1,
/// and compile-time redistributions).
struct RipOriginFact {
  topo::NodeId node = topo::kInvalidNode;
  net::Ipv4Prefix prefix;
  std::uint32_t metric = 1;

  friend bool operator==(const RipOriginFact&, const RipOriginFact&) = default;
};

/// Routing protocols that can exchange routes via redistribution.
enum class Proto : std::uint8_t { kOspf, kBgp, kRip };

const char* to_string(Proto p);

/// Dynamic route redistribution at `node`: native best routes of `from`
/// are injected into `to` (tagged, so they can never cross a second
/// boundary — that keeps mutual redistribution well-founded, DESIGN.md §5).
struct DynRedistFact {
  topo::NodeId node = topo::kInvalidNode;
  Proto from = Proto::kOspf;
  Proto to = Proto::kBgp;
  std::uint32_t as_number = 0;  ///< origin AS when to == kBgp
  std::uint32_t metric = 0;     ///< target-protocol metric / MED
  bool has_policy = false;
  CompiledPolicy policy;

  friend bool operator==(const DynRedistFact&, const DynRedistFact&) = default;
};

/// An *active* static route (egress interface up, or a null0 drop route).
struct StaticFact {
  topo::NodeId node = topo::kInvalidNode;
  net::Ipv4Prefix prefix;
  bool drop = false;
  topo::IfaceId egress = topo::kInvalidIface;
  std::uint32_t distance = 1;

  friend bool operator==(const StaticFact&, const StaticFact&) = default;
};

/// A connected subnet (up, addressed interface) — delivered locally.
struct ConnectedFact {
  topo::NodeId node = topo::kInvalidNode;
  net::Ipv4Prefix prefix;

  friend bool operator==(const ConnectedFact&, const ConnectedFact&) = default;
};

/// All input relations of the control-plane program.
struct FactSnapshot {
  dd::ZSet<OspfLinkFact> ospf_links;
  dd::ZSet<OspfOriginFact> ospf_origins;
  dd::ZSet<BgpSessionFact> bgp_sessions;
  dd::ZSet<BgpOriginFact> bgp_origins;
  dd::ZSet<BgpAggregateFact> bgp_aggregates;
  dd::ZSet<RipLinkFact> rip_links;
  dd::ZSet<RipOriginFact> rip_origins;
  dd::ZSet<DynRedistFact> redist;
  dd::ZSet<StaticFact> statics;
  dd::ZSet<ConnectedFact> connected;

  std::size_t total_size() const {
    return ospf_links.size() + ospf_origins.size() + bgp_sessions.size() + bgp_origins.size() +
           bgp_aggregates.size() + rip_links.size() + rip_origins.size() + redist.size() +
           statics.size() + connected.size();
  }
};

/// Lower a configuration to fact relations. Devices whose hostname has no
/// topology node are rejected (std::invalid_argument): a config for an
/// unknown router is an input error, not a semantic condition.
FactSnapshot compile_facts(const topo::Topology& topo, const config::NetworkConfig& cfg);

/// Extract the data plane *filter* rules (bound ACLs) straight from the
/// configuration — the paper's observation that filtering rules need no
/// control-plane simulation. Dangling ACL bindings compile to a single
/// deny-everything rule (fail closed).
dd::ZSet<FilterRule> extract_filter_rules(const topo::Topology& topo,
                                          const config::NetworkConfig& cfg);

}  // namespace rcfg::routing

template <>
struct std::hash<rcfg::routing::OspfLinkFact> {
  std::size_t operator()(const rcfg::routing::OspfLinkFact& f) const {
    return rcfg::core::hash_all(f.from, f.to, f.via_iface, f.cost);
  }
};

template <>
struct std::hash<rcfg::routing::OspfOriginFact> {
  std::size_t operator()(const rcfg::routing::OspfOriginFact& f) const {
    return rcfg::core::hash_all(f.node, f.prefix, f.metric);
  }
};

template <>
struct std::hash<rcfg::routing::BgpSessionFact> {
  std::size_t operator()(const rcfg::routing::BgpSessionFact& f) const {
    std::size_t h = rcfg::core::hash_all(f.from, f.to, f.from_as, f.to_as, f.via_iface,
                                         f.has_export, f.has_import);
    rcfg::core::hash_combine(h, std::hash<rcfg::routing::CompiledPolicy>{}(f.export_policy));
    rcfg::core::hash_combine(h, std::hash<rcfg::routing::CompiledPolicy>{}(f.import_policy));
    rcfg::core::hash_combine(h, rcfg::core::TupleHash{}(f.suppressed));
    return h;
  }
};

template <>
struct std::hash<rcfg::routing::BgpAggregateFact> {
  std::size_t operator()(const rcfg::routing::BgpAggregateFact& f) const {
    return rcfg::core::hash_all(f.node, f.as_number, f.prefix, f.summary_only);
  }
};

template <>
struct std::hash<rcfg::routing::BgpOriginFact> {
  std::size_t operator()(const rcfg::routing::BgpOriginFact& f) const {
    return rcfg::core::hash_all(f.node, f.as_number, f.prefix, f.med);
  }
};

template <>
struct std::hash<rcfg::routing::RipLinkFact> {
  std::size_t operator()(const rcfg::routing::RipLinkFact& f) const {
    return rcfg::core::hash_all(f.from, f.to, f.via_iface);
  }
};

template <>
struct std::hash<rcfg::routing::RipOriginFact> {
  std::size_t operator()(const rcfg::routing::RipOriginFact& f) const {
    return rcfg::core::hash_all(f.node, f.prefix, f.metric);
  }
};

template <>
struct std::hash<rcfg::routing::DynRedistFact> {
  std::size_t operator()(const rcfg::routing::DynRedistFact& f) const {
    return rcfg::core::hash_all(f.node, static_cast<unsigned>(f.from),
                                static_cast<unsigned>(f.to), f.as_number, f.metric,
                                f.has_policy,
                                std::hash<rcfg::routing::CompiledPolicy>{}(f.policy));
  }
};

template <>
struct std::hash<rcfg::routing::StaticFact> {
  std::size_t operator()(const rcfg::routing::StaticFact& f) const {
    return rcfg::core::hash_all(f.node, f.prefix, f.drop, f.egress, f.distance);
  }
};

template <>
struct std::hash<rcfg::routing::ConnectedFact> {
  std::size_t operator()(const rcfg::routing::ConnectedFact& f) const {
    return rcfg::core::hash_all(f.node, f.prefix);
  }
};
