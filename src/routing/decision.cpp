#include "routing/decision.h"

namespace rcfg::routing {

bool bgp_better(const BgpRoute& a, const BgpRoute& b) {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.as_path.size() != b.as_path.size()) return a.as_path.size() < b.as_path.size();
  if (a.med != b.med) return a.med < b.med;
  if (a.neighbor_as != b.neighbor_as) return a.neighbor_as < b.neighbor_as;
  if (a.egress != b.egress) return a.egress < b.egress;
  return a.as_path < b.as_path;
}

}  // namespace rcfg::routing
