#pragma once

// Route selection — the single definition shared by the incremental
// dataflow program and the from-scratch baseline simulator, so the two can
// never disagree about what "best" means.

#include "routing/types.h"

namespace rcfg::routing {

/// BGP decision process (deterministic total order within one (node,
/// prefix) group): higher local-pref, then shorter AS path, then lower MED,
/// then lower neighbor AS (learned-locally = 0 wins), then lower egress
/// interface id, then lexicographically smaller AS path.
/// Returns true when `a` is strictly better than `b`.
bool bgp_better(const BgpRoute& a, const BgpRoute& b);

/// OSPF preference: lower cost wins; all minimum-cost routes are kept
/// (ECMP). Returns true when `a` is strictly better (cheaper) than `b`.
inline bool ospf_better(const OspfRoute& a, const OspfRoute& b) { return a.cost < b.cost; }

/// Route tags distinguishing native routes from redistributed ones, used
/// to suppress re-redistribution (see DESIGN.md §5).
inline constexpr std::uint8_t kTagNative = 0;
inline constexpr std::uint8_t kTagRedistributed = 1;

}  // namespace rcfg::routing
