#include "core/strings.h"

#include <cctype>
#include <cstdint>

namespace rcfg::core {

namespace {
bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool parse_u64(std::string_view s, std::uint64_t& out) noexcept {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

}  // namespace rcfg::core
