#pragma once

// Small string helpers used by the config parser and printers.

#include <string>
#include <string_view>
#include <vector>

namespace rcfg::core {

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on runs of whitespace; empty tokens are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Parse a non-negative decimal integer; returns false on any non-digit or
/// overflow of uint64.
bool parse_u64(std::string_view s, std::uint64_t& out) noexcept;

}  // namespace rcfg::core
