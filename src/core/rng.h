#pragma once

// Deterministic pseudo-random number generation.
//
// Tests, workload generators and benchmarks must be reproducible across
// runs and platforms, so we ship our own SplitMix64 generator instead of
// relying on the (implementation-defined) std distributions.

#include <cstdint>
#include <vector>

namespace rcfg::core {

/// SplitMix64: tiny, fast, 2^64-period generator with a one-word state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace rcfg::core
