#pragma once

// Hashing utilities shared by all RealConfig modules.
//
// The incremental engine (rcfg::dd) keys most of its state by tuple hashes,
// so hash quality and the ability to combine field hashes cheaply matter.
// We use the boost-style combiner on top of a 64-bit mixer.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace rcfg::core {

/// Final mixing step of SplitMix64; a cheap, well-distributed 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine a field hash into a running seed (order-sensitive).
constexpr void hash_combine(std::size_t& seed, std::size_t value) noexcept {
  seed ^= mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hash any value with std::hash and fold it into `seed`.
template <class T>
void hash_field(std::size_t& seed, const T& value) {
  hash_combine(seed, std::hash<T>{}(value));
}

/// Hash a pack of values into one size_t.
template <class... Ts>
std::size_t hash_all(const Ts&... values) {
  std::size_t seed = 0;
  (hash_field(seed, values), ...);
  return seed;
}

/// Generic hasher for std::pair / std::tuple / std::vector, usable as the
/// Hash template argument of unordered containers.
struct TupleHash {
  template <class A, class B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = 0;
    hash_combine(seed, (*this)(p.first));
    hash_combine(seed, (*this)(p.second));
    return seed;
  }

  template <class... Ts>
  std::size_t operator()(const std::tuple<Ts...>& t) const {
    std::size_t seed = 0;
    std::apply([&](const Ts&... vs) { (hash_combine(seed, (*this)(vs)), ...); }, t);
    return seed;
  }

  template <class T>
  std::size_t operator()(const std::vector<T>& v) const {
    std::size_t seed = v.size();
    for (const T& x : v) hash_combine(seed, (*this)(x));
    return seed;
  }

  template <class T>
  std::size_t operator()(const T& v) const {
    return std::hash<T>{}(v);
  }
};

}  // namespace rcfg::core
