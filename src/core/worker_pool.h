#pragma once

// A fixed-size worker pool for intra-verification parallelism: N threads
// created once and reused across calls (thread spawn cost must not land on
// the incremental hot path, whose whole budget is milliseconds).
//
// The unit of dispatch is a *shard index*: run(shards, job) invokes
// job(shard) exactly once for every shard in [0, shards), distributed over
// the pool plus the calling thread, and returns when all shards finished.
// Determinism is the caller's problem by construction: jobs write to
// disjoint, pre-sized slots keyed by shard index, so the schedule cannot
// leak into the results.
//
// A pool of size <= 1 spawns no threads at all and run() degenerates to a
// plain loop on the caller — the single-threaded configuration is exactly
// the old code path, not a one-thread pool pretending to be one.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rcfg::core {

class WorkerPool {
 public:
  /// `threads` is the total parallelism including the calling thread:
  /// threads - 1 workers are spawned. 0 is treated as 1.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total parallelism (spawned workers + the caller).
  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run job(shard) for every shard in [0, shards); blocks until all done.
  /// The job must not throw (shard work in the checker is noexcept by
  /// design; violations terminate). Not reentrant: one run() at a time.
  void run(std::size_t shards, const std::function<void(std::size_t)>& job);

 private:
  void worker_loop_();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a new run() arrived / stop
  std::condition_variable done_cv_;  ///< run(): all shards of this epoch done
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t shards_ = 0;
  std::size_t next_shard_ = 0;   ///< next unclaimed shard of the current epoch
  std::size_t in_flight_ = 0;    ///< shards claimed but not yet finished
  std::uint64_t epoch_ = 0;      ///< bumped per run() so workers never re-enter
  bool stop_ = false;
};

}  // namespace rcfg::core
