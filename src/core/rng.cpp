#include "core/rng.h"

namespace rcfg::core {

std::uint64_t Rng::next() noexcept {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Debiased modulo via rejection sampling on the top range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace rcfg::core
