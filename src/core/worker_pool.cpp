#include "core/worker_pool.h"

namespace rcfg::core {

WorkerPool::WorkerPool(unsigned threads) {
  const unsigned helpers = threads <= 1 ? 0 : threads - 1;
  workers_.reserve(helpers);
  for (unsigned i = 0; i < helpers; ++i) {
    workers_.emplace_back([this] { worker_loop_(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::run(std::size_t shards, const std::function<void(std::size_t)>& job) {
  if (shards == 0) return;
  if (workers_.empty()) {
    for (std::size_t s = 0; s < shards; ++s) job(s);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  job_ = &job;
  shards_ = shards;
  next_shard_ = 0;
  in_flight_ = 0;
  ++epoch_;
  work_cv_.notify_all();

  // The caller is a worker too: claim shards until none are left.
  while (next_shard_ < shards_) {
    const std::size_t s = next_shard_++;
    ++in_flight_;
    lock.unlock();
    job(s);
    lock.lock();
    --in_flight_;
  }
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  job_ = nullptr;
  shards_ = 0;
}

void WorkerPool::worker_loop_() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (epoch_ != seen_epoch && next_shard_ < shards_);
    });
    if (stop_) return;
    seen_epoch = epoch_;
    const std::function<void(std::size_t)>* job = job_;
    while (next_shard_ < shards_) {
      const std::size_t s = next_shard_++;
      ++in_flight_;
      lock.unlock();
      (*job)(s);
      lock.lock();
      --in_flight_;
      if (next_shard_ >= shards_ && in_flight_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace rcfg::core
