#pragma once

// The rcfgd wire protocol: JSON lines, one request or response per line, so
// the engine is drivable from files, pipes, or a socket shim.
//
// Requests ({"id":N,"op":VERB,...}):
//   open        {"session", "topology":{"kind","k"|"n"|"w","h"}, "config",
//                [options...]} — the COMPLETE option set, in one place:
//                 "max_rounds":N            control-plane convergence cap
//                 "update_order":"insert_first"|"delete_first"|"interleaved"
//                                           batch rule-update order (Table 3;
//                                           default insert_first)
//                 "flush_budget":N          generator divergence detector:
//                                           operator-flush budget (0 = default)
//                 "recurrence_threshold":N  generator divergence detector:
//                                           recurring-state threshold
//                 "threads":N               checker worker-pool width
//                                           (default 1); reports are identical
//                                           for any value — only latency moves
//                 "trace":true              record per-batch provenance for
//                                           `explain` (pay-as-you-go: without
//                                           it, batches record nothing)
//                 "reclaim":true            online memory reclamation (EC merge
//                                           + BDD GC after each check); verdicts
//                                           and pair results unaffected, EC ids
//                                           in later reports renumbered by merges
//                 "ec_watermark":N          defer reclamation until the EC
//                                           partition exceeds N atoms (0 = eager)
//                 "bdd_watermark":N         defer BDD GC until the manager
//                                           exceeds N live nodes (0 = eager)
//                 "replicas":N              read replicas forked off the
//                                           session (<= 16). query/explain/
//                                           relate fan out round-robin across
//                                           them; mutations apply once on the
//                                           primary and stream deltas (see
//                                           engine.h). Replica answers are
//                                           bit-identical to the primary's at
//                                           the same acknowledged epoch.
//   propose     {"session", "config"}          config = the DSL text of the
//                                              *whole* intended network
//   commit      {"session"}
//   abort       {"session"}
//   add_policy  {"session", "policy":{"kind":"reachable"|"isolated"|
//                "waypoint", "name","src","dst",["via"],"prefix"}}
//   query       {"session", ["policy":NAME], ["primary":true]}
//               no "policy" => summary. On a session opened with replicas,
//               "primary":true pins the read to the primary verifier
//               (diagnostics; replicas answer identically by construction)
//   explain     {"session", ["policy":NAME]}   no "policy" => the most
//               recent violation; replays the policy's witness packet
//               hop-by-hop (LPM rule + ACL verdict per hop) and names the
//               batch + config lines that last moved the policy's ECs
//   sweep       {"session", ["links":[IDs]], ["max_failures":1..6],
//                ["budget":N], ["prune":true], ["symmetry":true],
//                ["threads":N], ["detail":true]}
//               snapshot-fork failure sweep over the live configuration:
//               every scenario runs on a forked replica of the session's
//               verifier (the live state is never touched). "links" limits
//               the swept links (default: all; duplicates collapse);
//               "max_failures":k sweeps every scenario of up to k
//               simultaneous failures; "prune" skips scenarios that cannot
//               move a registered policy; "symmetry" dedups fat-tree pod
//               orbits and replays the representative's outcome; "budget"
//               caps the scenarios verified on replicas, spending them in
//               priority order (coverage reports the shortfall); "threads"
//               shards scenarios over that many replicas; "detail" includes
//               the per-scenario outcome array.
//   relate      {"session", "config", ["specs":[{"kind":"none"|
//                "only_dst_in"|"only_src_in", ["prefixes":[CIDR,...]],
//                ["name"]}]], ["witnesses":true], ["detail":true]}
//               relational check of a proposed config against the live
//               state (fork-pair behavioural diff; the live verifier is
//               never touched): which ECs forward/filter differently, per
//               device, with gained/lost delivered pairs. Each spec says
//               which traffic MAY change ("none" = behaviour-preserving);
//               violating ECs come back with a hop-by-hop witness trace
//               through both data planes. "detail" adds the per-EC diff.
//   order       {"session", "steps":[{"name","config"},...],
//                ["max_blocking":N], ["detail":true]}
//               safe update-order synthesis: each step's "config" is a
//               patch (DSL text of just the devices it reconfigures; steps
//               must touch disjoint devices). Searches for a rollout order
//               where every prefix keeps every currently-satisfied policy
//               satisfied, on a scratch fork (restore → apply → check →
//               discard). Answers a safe total order with per-step
//               verdicts, or the minimal blocking subset (up to
//               "max_blocking", default 2) whose exclusion unblocks the
//               rest. "detail" adds per-step verdict records.
//   stats       {}                             waits for in-flight requests
//
// Responses echo the id: {"id":N,"ok":true,...} or
// {"id":N,"ok":false,"error":"..."}. A propose superseded by coalescing
// answers {"ok":true,"status":"coalesced","superseded_by":M}.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "relate/relate.h"
#include "service/json.h"
#include "service/session.h"
#include "topo/topology.h"

namespace rcfg::service {

/// Thrown on a malformed or semantically invalid request line.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& message) : std::runtime_error(message) {}
};

enum class Verb : std::uint8_t {
  kOpen,
  kPropose,
  kCommit,
  kAbort,
  kAddPolicy,
  kQuery,
  kExplain,
  kSweep,
  kRelate,
  kOrder,
  kStats,
};

const char* verb_name(Verb v);

/// How to construct a session's topology. Kinds: "fat_tree" (param k),
/// "ring" / "full_mesh" (param n), "grid" (params w, h).
struct TopologySpec {
  std::string kind;
  unsigned k = 0;  ///< fat_tree k / ring n / full_mesh n
  unsigned w = 0, h = 0;  ///< grid
};

topo::Topology build_topology(const TopologySpec& spec);  // throws ProtocolError

/// Upper bound on simultaneous failures per sweep scenario. Deep spaces are
/// meant to be driven with "prune"/"symmetry"/"budget"; the cap only stops
/// accidental combinatorial requests.
inline constexpr unsigned kMaxSweepFailures = 6;

/// Sweep parameters (the sweep verb).
struct SweepSpec {
  std::vector<topo::LinkId> links;  ///< swept links; empty => every link
  unsigned max_failures = 1;        ///< scenario size cap, 1..kMaxSweepFailures
  std::uint64_t budget = 0;         ///< explored-scenario cap; 0 = unbounded
  bool prune = false;               ///< dependency pruning (policy-relevant links)
  bool symmetry = false;            ///< fat-tree pod symmetry dedup
  unsigned threads = 1;             ///< replicas to shard scenarios over
  bool detail = false;              ///< include per-scenario outcomes
};

/// Relational-check parameters (the relate verb). The proposed config
/// itself rides in Request::config_text.
struct RelateSpec {
  std::vector<relate::RelationalSpec> specs;  ///< may be empty (diff only)
  bool witnesses = true;  ///< trace a witness flow per violated spec
  bool detail = false;    ///< include the per-EC diff array
};

/// One rollout step of the order verb: a named config patch (DSL text).
struct OrderStepSpec {
  std::string name;
  std::string config_text;
};

/// Order-synthesis parameters (the order verb).
struct OrderSpec {
  std::vector<OrderStepSpec> steps;
  unsigned max_blocking = 2;  ///< blocking-subset search size cap
  bool detail = false;        ///< include per-step verdict records
};

/// Upper bound on per-session read replicas (open's "replicas" option).
inline constexpr unsigned kMaxReplicas = 16;

struct Request {
  std::uint64_t id = 0;
  Verb verb = Verb::kStats;
  std::string session;      ///< empty for stats
  TopologySpec topology;    ///< open
  std::string config_text;  ///< open, propose, relate (config DSL, see config/parse.h)
  PolicySpec policy;        ///< add_policy
  std::string query_policy; ///< query/explain; empty => summary / last violation
  SweepSpec sweep;          ///< sweep
  RelateSpec relate;        ///< relate
  OrderSpec order;          ///< order
  SessionOptions options;   ///< open
  bool force_primary = false;  ///< query/explain/relate: bypass read replicas
};

/// Parse one request line / document. Throws ProtocolError (including for
/// invalid JSON, wrapped with the parse position).
Request parse_request(std::string_view line);
Request parse_request_doc(const json::Value& doc);

struct Response {
  std::uint64_t id = 0;
  bool ok = true;
  std::string error;  ///< set iff !ok
  json::Value body;   ///< verb-specific fields, merged into the response object
};

Response error_response(std::uint64_t id, std::string message);

/// The response as one JSON object: {"id":..,"ok":..,<body fields>} with
/// "error" added when !ok. Both wire framings serialize this value.
json::Value response_value(const Response& r);

/// response_value(r).dump(): one line, no trailing newline.
std::string serialize_response(const Response& r);

}  // namespace rcfg::service
