#pragma once

// The rcfgd wire protocol: JSON lines, one request or response per line, so
// the engine is drivable from files, pipes, or a socket shim.
//
// Requests ({"id":N,"op":VERB,...}):
//   open        {"session", "topology":{"kind","k"|"n"|"w","h"}, "config",
//                ["max_rounds","update_order","flush_budget",
//                 "recurrence_threshold","threads","trace",
//                 "reclaim","ec_watermark","bdd_watermark"]}
//               "threads" widens the checker's worker pool (default 1);
//               reports are identical for any value — only latency changes.
//               "trace":true records per-batch provenance for `explain`
//               (pay-as-you-go: without it, batches record nothing).
//               "reclaim":true enables online memory reclamation (EC merge
//               + BDD GC after each check); "ec_watermark"/"bdd_watermark"
//               defer it until the partition / node count exceeds the
//               given size (0, the default, reclaims eagerly). Verdicts
//               and pair-level results are unaffected; EC ids in later
//               reports are renumbered by merges.
//   propose     {"session", "config"}          config = the DSL text of the
//                                              *whole* intended network
//   commit      {"session"}
//   abort       {"session"}
//   add_policy  {"session", "policy":{"kind":"reachable"|"isolated"|
//                "waypoint", "name","src","dst",["via"],"prefix"}}
//   query       {"session", ["policy":NAME]}   no "policy" => summary
//   explain     {"session", ["policy":NAME]}   no "policy" => the most
//               recent violation; replays the policy's witness packet
//               hop-by-hop (LPM rule + ACL verdict per hop) and names the
//               batch + config lines that last moved the policy's ECs
//   sweep       {"session", ["links":[IDs]], ["max_failures":1|2],
//                ["threads":N], ["detail":true]}
//               snapshot-fork failure sweep over the live configuration:
//               every scenario runs on a forked replica of the session's
//               verifier (the live state is never touched). "links" limits
//               the swept links (default: all); "max_failures":2 adds every
//               link pair; "threads" shards scenarios over that many
//               replicas; "detail" includes the per-scenario outcome array.
//   stats       {}                             waits for in-flight requests
//
// Responses echo the id: {"id":N,"ok":true,...} or
// {"id":N,"ok":false,"error":"..."}. A propose superseded by coalescing
// answers {"ok":true,"status":"coalesced","superseded_by":M}.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "service/json.h"
#include "service/session.h"
#include "topo/topology.h"

namespace rcfg::service {

/// Thrown on a malformed or semantically invalid request line.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& message) : std::runtime_error(message) {}
};

enum class Verb : std::uint8_t {
  kOpen,
  kPropose,
  kCommit,
  kAbort,
  kAddPolicy,
  kQuery,
  kExplain,
  kSweep,
  kStats,
};

const char* verb_name(Verb v);

/// How to construct a session's topology. Kinds: "fat_tree" (param k),
/// "ring" / "full_mesh" (param n), "grid" (params w, h).
struct TopologySpec {
  std::string kind;
  unsigned k = 0;  ///< fat_tree k / ring n / full_mesh n
  unsigned w = 0, h = 0;  ///< grid
};

topo::Topology build_topology(const TopologySpec& spec);  // throws ProtocolError

/// Sweep parameters (the sweep verb).
struct SweepSpec {
  std::vector<topo::LinkId> links;  ///< swept links; empty => every link
  unsigned max_failures = 1;        ///< 1 = singles; 2 = singles + pairs
  unsigned threads = 1;             ///< replicas to shard scenarios over
  bool detail = false;              ///< include per-scenario outcomes
};

struct Request {
  std::uint64_t id = 0;
  Verb verb = Verb::kStats;
  std::string session;      ///< empty for stats
  TopologySpec topology;    ///< open
  std::string config_text;  ///< open, propose (config DSL, see config/parse.h)
  PolicySpec policy;        ///< add_policy
  std::string query_policy; ///< query/explain; empty => summary / last violation
  SweepSpec sweep;          ///< sweep
  SessionOptions options;   ///< open
};

/// Parse one request line / document. Throws ProtocolError (including for
/// invalid JSON, wrapped with the parse position).
Request parse_request(std::string_view line);
Request parse_request_doc(const json::Value& doc);

struct Response {
  std::uint64_t id = 0;
  bool ok = true;
  std::string error;  ///< set iff !ok
  json::Value body;   ///< verb-specific fields, merged into the response object
};

Response error_response(std::uint64_t id, std::string message);

/// One line, no trailing newline: {"id":..,"ok":..,<body fields>} with
/// "error" added when !ok.
std::string serialize_response(const Response& r);

}  // namespace rcfg::service
