#include "service/io.h"

#include <atomic>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "service/pool.h"

namespace rcfg::service {

namespace {

/// Engine or EnginePool behind one submit surface. The pool is engaged only
/// when asked for (engines > 1 or admission control), so the single-engine
/// path keeps its flat `stats` body and zero extra indirection.
struct Backend {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<EnginePool> pool;

  explicit Backend(const ServiceOptions& options) {
    if (options.engines > 1 || options.max_sessions != 0) {
      PoolOptions popts;
      popts.engine = options.engine;
      popts.engines = options.engines == 0 ? 1 : options.engines;
      popts.max_sessions = options.max_sessions;
      pool = std::make_unique<EnginePool>(std::move(popts));
    } else {
      engine = std::make_unique<Engine>(options.engine);
    }
  }

  void submit(Request req, Engine::Callback callback) {
    if (engine != nullptr) {
      engine->submit(std::move(req), std::move(callback));
    } else {
      pool->submit(std::move(req), std::move(callback));
    }
  }
  void drain() { engine != nullptr ? engine->drain() : pool->drain(); }
  void pause() { engine != nullptr ? engine->pause() : pool->pause(); }
  void resume() { engine != nullptr ? engine->resume() : pool->resume(); }
  /// Protocol-level errors are attributed to engine 0 when pooled.
  ServiceMetrics& metrics() {
    return engine != nullptr ? engine->metrics() : pool->engine(0).metrics();
  }
};

}  // namespace

void run_service(std::istream& in, std::ostream& out, const ServiceOptions& options) {
  Backend backend(options);

  // Everything `emit` touches must outlive the DrainGuard below, so that an
  // exception unwinding this frame drains the backend (flushing worker
  // callbacks through emit) while the mutex and streams are still alive.
  std::atomic<std::uint64_t> sink_errors{0};
  std::mutex out_mu;
  bool binary_out = false;    // set once, before any request is submitted
  bool wrote_magic = false;   // guarded by out_mu
  // The request has already been applied by the time emit runs; a response
  // we cannot deliver must not take the serving loop (or a worker thread)
  // down with it. Two failure shapes: a streambuf exception that escapes
  // the stream (caller opted into exceptions()), and the default-mode
  // version where operator<< swallows it and just sets badbit. Both are
  // counted, and the stream is cleared so one failed write doesn't turn
  // every later response into a silent no-op on a wedged stream.
  const auto emit = [&](const Response& r) noexcept {
    try {
      const std::lock_guard<std::mutex> lock(out_mu);
      try {
        if (binary_out) {
          if (!wrote_magic) {
            write_magic(out);
            wrote_magic = true;
          }
          std::string payload;
          encode_value(response_value(r), payload);
          write_frame(out, payload);
          out.flush();
        } else {
          out << serialize_response(r) << std::endl;  // flush per line: pipes
        }
        if (!out) {
          sink_errors.fetch_add(1, std::memory_order_relaxed);
          out.clear();
        }
      } catch (...) {
        sink_errors.fetch_add(1, std::memory_order_relaxed);
        try {
          out.clear();
        } catch (...) {
        }
      }
    } catch (...) {
      // Lock acquisition itself failed; nothing left to do safely.
      sink_errors.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Declared after emit/out_mu so it is destroyed FIRST: whatever unwinds
  // this frame, the backend quiesces before emit's captures die. Without
  // this, ~Engine's implicit drain would run worker callbacks against an
  // already-destroyed mutex.
  struct DrainGuard {
    Backend& backend;
    ~DrainGuard() {
      try {
        backend.drain();
      } catch (...) {
      }
    }
  } guard{backend};

  Framing framing = options.framing;
  if (framing == Framing::kAuto) {
    const int first = in.peek();
    if (first == std::char_traits<char>::eof()) return;
    framing = static_cast<unsigned char>(first) == kFramingMagic[0] ? Framing::kBinary
                                                                    : Framing::kJsonl;
  }
  binary_out = framing == Framing::kBinary;

  if (framing == Framing::kBinary) {
    try {
      read_magic(in);
    } catch (const FramingError& e) {
      backend.metrics().errors_total.inc();
      emit(error_response(0, std::string("framing: ") + e.what()));
      return;
    }
    std::string payload;
    for (;;) {
      bool got = false;
      try {
        got = read_frame(in, payload);
      } catch (const FramingError& e) {
        // Truncated header/payload: the stream offset is lost, end the
        // connection (after answering so the client sees why).
        backend.metrics().errors_total.inc();
        emit(error_response(0, std::string("framing: ") + e.what()));
        break;
      }
      if (!got) break;
      Request req;
      try {
        req = parse_request_doc(decode_value(payload));
      } catch (const FramingError& e) {
        // The frame boundary held; only the value inside was malformed, so
        // the next frame is still addressable — answer and keep serving.
        backend.metrics().errors_total.inc();
        emit(error_response(0, std::string("framing: ") + e.what()));
        continue;
      } catch (const ProtocolError& e) {
        backend.metrics().errors_total.inc();
        emit(error_response(0, e.what()));
        continue;
      }
      backend.submit(std::move(req), emit);
    }
    return;
  }

  std::string line;
  while (std::getline(in, line)) {
    std::string_view view(line);
    while (!view.empty() && (view.front() == ' ' || view.front() == '\t')) view.remove_prefix(1);
    while (!view.empty() && (view.back() == '\r' || view.back() == ' ')) view.remove_suffix(1);
    if (view.empty() || view.front() == '#') {
      // Two comment directives make replayed transcripts deterministic:
      // "#pause" queues everything until "#resume", forcing the requests in
      // between into one batch regardless of machine speed.
      if (view == "#pause") backend.pause();
      if (view == "#resume") backend.resume();
      continue;
    }

    Request req;
    try {
      req = parse_request(view);
    } catch (const ProtocolError& e) {
      backend.metrics().errors_total.inc();
      emit(error_response(0, e.what()));
      continue;
    }
    backend.submit(std::move(req), emit);
  }
}

void run_jsonl(std::istream& in, std::ostream& out, const EngineOptions& options) {
  ServiceOptions sopts;
  sopts.engine = options;
  sopts.framing = Framing::kJsonl;
  run_service(in, out, sopts);
}

}  // namespace rcfg::service
