#pragma once

// A minimal JSON value type, parser, and serializer for the service layer's
// JSON-lines protocol (protocol.h) and metrics dumps (metrics.h).
//
// Deliberately small: no external dependency, objects keep sorted keys (so
// serialization is deterministic and transcripts diff cleanly), numbers are
// either int64 or double, and \uXXXX escapes decode the full code-point
// range — surrogate pairs combine per RFC 8259 §7, lone surrogates are a
// ParseError — while output escapes control characters only (other
// non-ASCII text passes through as UTF-8).

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rcfg::service::json {

/// Thrown on malformed JSON text; carries the byte offset of the error.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t offset, const std::string& message)
      : std::runtime_error("json offset " + std::to_string(offset) + ": " + message),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Thrown on accessing a Value as the wrong kind.
class TypeError : public std::runtime_error {
 public:
  explicit TypeError(const std::string& message) : std::runtime_error(message) {}
};

class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;  ///< sorted => deterministic dump

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(std::int64_t n) : v_(n) {}
  Value(int n) : v_(static_cast<std::int64_t>(n)) {}
  Value(unsigned n) : v_(static_cast<std::int64_t>(n)) {}
  Value(std::uint64_t n) : v_(static_cast<std::int64_t>(n)) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(std::string_view s) : v_(std::string(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const;
  std::int64_t as_int() const;  ///< ints, or doubles with an exact integer value
  double as_double() const;     ///< any number
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object access. operator[] turns a null Value into an object (builder
  /// style); find() returns nullptr when absent or not an object.
  Value& operator[](const std::string& key);
  const Value* find(std::string_view key) const;

  /// Typed object lookups with defaults (missing key => fallback; present
  /// key of the wrong kind => TypeError).
  std::string get_string(std::string_view key, std::string fallback = "") const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
  bool get_bool(std::string_view key, bool fallback = false) const;

  /// Array append (turns a null Value into an array).
  void push_back(Value v);

  std::string dump() const;

  /// Parse a complete JSON document (trailing whitespace allowed, trailing
  /// garbage is an error). Throws ParseError.
  static Value parse(std::string_view text);

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> v_;
};

/// Escape + quote a string for direct JSON embedding.
std::string quote(std::string_view s);

}  // namespace rcfg::service::json
