#include "service/engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "config/parse.h"
#include "dd/graph.h"

namespace rcfg::service {

Engine::Engine(EngineOptions options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.read_workers == 0) options_.read_workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop_(); });
  }
  read_workers_.reserve(options_.read_workers);
  for (unsigned i = 0; i < options_.read_workers; ++i) {
    read_workers_.emplace_back([this] { read_worker_loop_(); });
  }
}

Engine::~Engine() {
  resume();
  drain();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  read_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  for (std::thread& t : read_workers_) t.join();
}

void Engine::pause() {
  const std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Engine::resume() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
  read_cv_.notify_all();
}

void Engine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    if (active_workers_ != 0) return false;
    for (const auto& [name, slot] : slots_) {
      if (!slot.queue.empty() || slot.busy) return false;
      for (const auto& lane : slot.lanes) {
        // Pending deltas alone don't block drain — only unanswered reads
        // do. (Lanes with a backlog are already queued for catch-up.)
        if (!lane->queue.empty() || lane->busy) return false;
      }
    }
    return true;
  });
}

std::size_t Engine::session_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, slot] : slots_) {
    if (slot.has_session) ++n;
  }
  return n;
}

void Engine::submit(Request req, Callback callback) {
  metrics_.requests_total.inc();

  if (req.verb == Verb::kStats) {
    metrics_.stats_calls.inc();
    drain();  // report a quiescent engine: everything submitted before us is done
    Response r;
    r.id = req.id;
    r.body = stats_json();
    callback(std::move(r));
    return;
  }

  switch (req.verb) {
    case Verb::kOpen: metrics_.opens.inc(); break;
    case Verb::kPropose: metrics_.proposes.inc(); break;
    case Verb::kCommit: metrics_.commits.inc(); break;
    case Verb::kAbort: metrics_.aborts.inc(); break;
    case Verb::kAddPolicy: metrics_.add_policies.inc(); break;
    case Verb::kQuery: metrics_.queries.inc(); break;
    case Verb::kExplain: metrics_.explains.inc(); break;
    case Verb::kSweep: metrics_.sweeps.inc(); break;
    case Verb::kRelate: metrics_.relates.inc(); break;
    case Verb::kOrder: metrics_.orders.inc(); break;
    case Verb::kStats: break;
  }

  std::unique_lock<std::mutex> lock(mu_);
  auto it = slots_.find(req.session);
  if (req.verb == Verb::kOpen) {
    if (it != slots_.end()) {
      lock.unlock();
      metrics_.errors_total.inc();
      callback(error_response(req.id, "session already open: '" + req.session + "'"));
      return;
    }
    it = slots_.try_emplace(req.session).first;
  } else if (it == slots_.end()) {
    lock.unlock();
    metrics_.errors_total.inc();
    callback(error_response(req.id, "unknown session: '" + req.session + "'"));
    return;
  }

  Slot& slot = it->second;

  // Read routing: on a session with replica lanes, query/explain/relate go
  // to a lane (unless pinned to the primary), fenced at the epoch of the
  // latest acknowledged mutation. Fence-aware: prefer a lane already at the
  // fence — the read needs no replay — round-robin among those; with every
  // lane behind, pick the freshest, so one lane pays the catch-up instead
  // of spreading the same replay across all of them.
  const bool is_read = req.verb == Verb::kQuery || req.verb == Verb::kExplain ||
                       req.verb == Verb::kRelate;
  if (is_read && !req.force_primary && slot.has_session && !slot.lanes.empty()) {
    const std::uint64_t fence = slot.processed_epoch;
    std::size_t lane_index = slot.lanes.size();
    for (std::size_t i = 0; i < slot.lanes.size(); ++i) {
      const std::size_t candidate = (slot.next_lane + i) % slot.lanes.size();
      const ReplicaLane& lane = *slot.lanes[candidate];
      if (lane.broken) continue;
      if (lane.epoch >= fence) {
        lane_index = candidate;
        break;
      }
      if (lane_index == slot.lanes.size() ||
          lane.epoch > slot.lanes[lane_index]->epoch) {
        lane_index = candidate;
      }
    }
    if (lane_index != slot.lanes.size()) {  // else: every lane broken -> primary
      slot.next_lane = (lane_index + 1) % slot.lanes.size();
      ReplicaLane& lane = *slot.lanes[lane_index];
      if (lane.queue.size() >= options_.queue_capacity && options_.reject_on_full) {
        lock.unlock();
        metrics_.rejected_total.inc();
        metrics_.errors_total.inc();
        callback(error_response(req.id,
                                "backpressure: session '" + req.session + "' queue full"));
        return;
      }
      space_cv_.wait(lock, [&] { return lane.queue.size() < options_.queue_capacity; });
      Pending pending{std::move(req), std::move(callback)};
      pending.fence = slot.processed_epoch;
      lane.queue.push_back(std::move(pending));
      metrics_.queue_depth.add(1);
      enqueue_lane_(it->first, slot, lane_index);
      return;
    }
  }

  // Backpressure: a full queue blocks the submitter — or, with
  // reject_on_full, answers an explicit backpressure error so the caller
  // can shed load. The slot cannot be erased while its queue is non-empty,
  // so the reference stays valid.
  if (slot.queue.size() >= options_.queue_capacity && options_.reject_on_full) {
    // An `open` slot just created above has an empty queue, so this path
    // never strands a fresh slot.
    lock.unlock();
    metrics_.rejected_total.inc();
    metrics_.errors_total.inc();
    callback(error_response(req.id,
                            "backpressure: session '" + req.session + "' queue full"));
    return;
  }
  space_cv_.wait(lock, [&] { return slot.queue.size() < options_.queue_capacity; });

  slot.queue.push_back(Pending{std::move(req), std::move(callback)});
  metrics_.queue_depth.add(1);
  if (!slot.busy && !slot.ready) {
    slot.ready = true;
    ready_.push_back(it->first);
    work_cv_.notify_one();
  }
}

bool Engine::lane_claimable_(const ReplicaLane& lane) {
  if (lane.busy || lane.ready || lane.broken) return false;
  // Catch-up is read-driven: a lane replays its backlog only on the way to
  // answering a read, so read workers never burn cycles on replay no read
  // is waiting for (under write saturation, N eager lanes would multiply
  // every verification N-fold). A lane no reads are routed to stays behind
  // until the backlog squash (acknowledge_) collapses its backlog into one
  // snapshot fork.
  if (lane.queue.empty()) return false;
  return lane.queue.front().fence <= lane.epoch || !lane.deltas.empty();
}

void Engine::enqueue_lane_(const std::string& name, Slot& slot, std::size_t index) {
  ReplicaLane& lane = *slot.lanes[index];
  if (!lane_claimable_(lane)) return;
  lane.ready = true;
  read_ready_.emplace_back(name, index);
  read_cv_.notify_one();
}

Response Engine::call(Request req) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  submit(std::move(req), [&promise](Response r) { promise.set_value(std::move(r)); });
  return future.get();
}

void Engine::worker_loop_() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || (!paused_ && !ready_.empty()); });
    if (stop_ && (paused_ || ready_.empty())) return;

    const std::string name = std::move(ready_.front());
    ready_.pop_front();
    Slot& slot = slots_.at(name);
    slot.ready = false;
    slot.busy = true;
    std::vector<Pending> batch;
    batch.reserve(slot.queue.size());
    for (Pending& p : slot.queue) batch.push_back(std::move(p));
    slot.queue.clear();
    // Inside the lock, so the gauge never transiently exceeds the sum of
    // the per-session capacities.
    metrics_.queue_depth.add(-static_cast<std::int64_t>(batch.size()));
    ++active_workers_;
    lock.unlock();

    space_cv_.notify_all();
    process_batch_(slot, std::move(batch));

    lock.lock();
    slot.busy = false;
    --active_workers_;
    if (!slot.queue.empty()) {
      if (!slot.ready) {
        slot.ready = true;
        ready_.push_back(name);
      }
      work_cv_.notify_one();
    } else if (slot.session == nullptr) {
      // `open` failed (or was never the first request): drop the slot so
      // the session name can be reused.
      slots_.erase(name);
    }
    idle_cv_.notify_all();
  }
}

void Engine::read_worker_loop_() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    read_cv_.wait(lock, [this] { return stop_ || (!paused_ && !read_ready_.empty()); });
    if (stop_ && (paused_ || read_ready_.empty())) return;

    auto [name, index] = std::move(read_ready_.front());
    read_ready_.pop_front();
    Slot& slot = slots_.at(name);
    ReplicaLane& lane = *slot.lanes[index];
    lane.ready = false;
    lane.busy = true;

    // Claim the delta backlog plus every read fenced at or below the epoch
    // the backlog reaches. Reads fenced above it arrived after a mutation
    // that is still being acknowledged; they stay queued.
    std::deque<ReplicaDelta> deltas;
    deltas.swap(lane.deltas);
    const std::uint64_t target = deltas.empty() ? lane.epoch : deltas.back().epoch;
    std::vector<Pending> batch;
    while (!lane.queue.empty() && lane.queue.front().fence <= target) {
      batch.push_back(std::move(lane.queue.front()));
      lane.queue.pop_front();
    }
    metrics_.queue_depth.add(-static_cast<std::int64_t>(batch.size()));
    ++active_workers_;
    lock.unlock();
    space_cv_.notify_all();

    bool broke = false;
    if (!deltas.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      for (ReplicaDelta& delta : deltas) {
        try {
          if (delta.kind == ReplicaDelta::Kind::kResync) {
            lane.replica = std::move(delta.resync);
          } else {
            lane.replica->apply_replica_delta(delta);
          }
        } catch (const std::exception&) {
          // Replay diverged from the primary (should be impossible —
          // deterministic apply on an identical fork). Contain: stop the
          // lane, fall every queued read back to the primary.
          broke = true;
          break;
        }
      }
      metrics_.replica_catchup_ms.record(
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count());
    }

    if (!broke) {
      for (Pending& p : batch) {
        Response r = handle_read_(name, *lane.replica, p.req);
        metrics_.replica_queries.inc();
        if (!r.ok) metrics_.errors_total.inc();
        p.callback(std::move(r));
      }
    }

    lock.lock();
    if (broke) {
      lane.broken = true;
      metrics_.replica_lane_failures.inc();
      // Re-route this claim's and any still-queued reads to the primary
      // queue (FIFO; their fences are trivially satisfied there).
      for (Pending& p : lane.queue) batch.push_back(std::move(p));
      lane.queue.clear();
      metrics_.replica_fallbacks.inc(batch.size());
      for (Pending& p : batch) {
        slot.queue.push_back(std::move(p));
        metrics_.queue_depth.add(1);
      }
      if (!slot.queue.empty() && !slot.busy && !slot.ready) {
        slot.ready = true;
        ready_.push_back(name);
        work_cv_.notify_one();
      }
    } else {
      lane.epoch = target;
    }
    lane.busy = false;
    --active_workers_;
    enqueue_lane_(name, slot, index);
    idle_cv_.notify_all();
  }
}

void Engine::process_batch_(Slot& slot, std::vector<Pending> batch) {
  metrics_.batches_total.inc();
  metrics_.batch_size.record(static_cast<double>(batch.size()));

  // Coalesce runs of consecutive proposes: within [i..j] all proposes, only
  // batch[j] is verified; the earlier ones are answered "coalesced". The
  // final policy state is identical to applying them one by one, because
  // every apply() takes the whole intended configuration (the last write
  // wins) — the superseded deltas simply fold into one batched delta.
  std::vector<std::uint64_t> superseded_by(batch.size(), 0);
  if (options_.coalesce) {
    std::size_t coalesced = 0;
    for (std::size_t i = 0; i + 1 < batch.size(); ++i) {
      if (batch[i].req.verb == Verb::kPropose && batch[i + 1].req.verb == Verb::kPropose) {
        // The run's last propose is the survivor; point every earlier member
        // of the run at it.
        std::size_t j = i + 1;
        while (j + 1 < batch.size() && batch[j + 1].req.verb == Verb::kPropose) ++j;
        for (std::size_t k = i; k < j; ++k) {
          superseded_by[k] = batch[j].req.id;
          ++coalesced;
        }
        i = j;
      }
    }
    if (coalesced > 0) {
      metrics_.coalesced_batches.inc();
      metrics_.coalesced_proposes.inc(coalesced);
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    Response r;
    ReplicaEffect effect;
    if (superseded_by[i] != 0) {
      r.id = p.req.id;
      r.body["session"] = json::Value(p.req.session);
      r.body["status"] = json::Value("coalesced");
      r.body["superseded_by"] = json::Value(superseded_by[i]);
    } else {
      r = handle_(slot, p.req, effect);
    }
    // Acknowledge before the callback: once the caller sees the response,
    // the epoch fence guarantees any subsequent read observes this request.
    acknowledge_(slot, std::move(effect));
    if (!r.ok) metrics_.errors_total.inc();
    p.callback(std::move(r));
  }
}

void Engine::acknowledge_(Slot& slot, ReplicaEffect effect) {
  // Lanes are only created/destroyed by the primary worker that owns this
  // slot (busy=true), so reading the vector's shape unlocked is safe; lane
  // *state* is touched under mu_ only.
  std::vector<std::unique_ptr<Session>> installs;
  std::vector<std::unique_ptr<Session>> resyncs;
  if (effect.install_lanes > 0 && slot.session != nullptr) {
    installs.reserve(effect.install_lanes);
    for (unsigned i = 0; i < effect.install_lanes; ++i) {
      installs.push_back(slot.session->fork_replica());
    }
  }
  if (effect.kind == ReplicaDelta::Kind::kResync && !slot.lanes.empty() &&
      slot.session != nullptr) {
    resyncs.reserve(slot.lanes.size());
    for (std::size_t i = 0; i < slot.lanes.size(); ++i) {
      resyncs.push_back(slot.session->fork_replica());
    }
    metrics_.replica_resyncs.inc(slot.lanes.size());
  }

  // Backlog squash: a lane about to exceed lane_resync_backlog pending
  // deltas gets a snapshot resync instead of yet another delta to replay —
  // its whole backlog collapses into one fork of the current primary state.
  // Backlog sizes are lane state (mutated by read workers), so peek under
  // the lock, fork outside it, install below. A lane that drains in between
  // just takes a cheap redundant resync.
  std::vector<std::unique_ptr<Session>> squashes(slot.lanes.size());
  if (options_.lane_resync_backlog > 0 && slot.session != nullptr &&
      effect.kind != ReplicaDelta::Kind::kResync && !slot.lanes.empty()) {
    std::vector<std::size_t> behind;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 0; i < slot.lanes.size(); ++i) {
        const ReplicaLane& lane = *slot.lanes[i];
        if (!lane.broken && lane.deltas.size() + 1 >= options_.lane_resync_backlog) {
          behind.push_back(i);
        }
      }
    }
    for (const std::size_t i : behind) {
      squashes[i] = slot.session->fork_replica();
      metrics_.replica_squashes.inc();
    }
  }

  const std::lock_guard<std::mutex> lock(mu_);
  slot.has_session = slot.session != nullptr;
  ++slot.processed_epoch;
  const std::string name = slot.session != nullptr ? slot.session->name() : std::string();
  for (std::size_t i = 0; i < slot.lanes.size(); ++i) {
    ReplicaLane& lane = *slot.lanes[i];
    if (lane.broken) continue;
    ReplicaDelta delta;
    delta.epoch = slot.processed_epoch;
    if (squashes[i] != nullptr) {
      lane.deltas.clear();
      delta.kind = ReplicaDelta::Kind::kResync;
      delta.resync = std::move(squashes[i]);
    } else {
      delta.kind = effect.kind;
      delta.config = effect.config;
      delta.staged_after = effect.staged_after;
      delta.policy = effect.policy;
      delta.record = effect.record;
      if (effect.kind == ReplicaDelta::Kind::kResync) delta.resync = std::move(resyncs[i]);
    }
    lane.deltas.push_back(std::move(delta));
    metrics_.replica_deltas.inc();
    enqueue_lane_(name, slot, i);
  }
  if (!installs.empty()) {
    for (auto& replica : installs) {
      auto lane = std::make_unique<ReplicaLane>();
      lane->replica = std::move(replica);
      lane->epoch = slot.processed_epoch;  // forked from the post-open state
      slot.lanes.push_back(std::move(lane));
    }
    metrics_.replicas_open.add(static_cast<std::int64_t>(installs.size()));
  }
}

void Engine::record_report_(Slot& slot, const verify::RealConfig::Report& report) {
  metrics_.generate_ms.record(report.generate_ms);
  metrics_.model_ms.record(report.model_ms);
  metrics_.check_ms.record(report.check_ms);
  metrics_.total_ms.record(report.total_ms());

  metrics_.ec_count.set(static_cast<std::int64_t>(report.ec_count));
  metrics_.bdd_nodes.set(static_cast<std::int64_t>(report.bdd_nodes));
  if (report.reclaim.ran) {
    metrics_.reclaims.inc();
    if (report.reclaim.ecs_before > report.reclaim.ecs_after) {
      metrics_.reclaimed_ecs.inc(report.reclaim.ecs_before - report.reclaim.ecs_after);
    }
    if (report.reclaim.bdd_before > report.reclaim.bdd_after) {
      metrics_.reclaimed_bdd_nodes.inc(report.reclaim.bdd_before -
                                       report.reclaim.bdd_after);
    }
    metrics_.compact_ms.record(report.reclaim.reclaim_ms);
  }
  if (slot.session != nullptr) {
    const std::uint64_t now =
        slot.session->verifier().ecs().stats().unknown_unregisters;
    if (now > slot.unknown_unregisters_seen) {
      metrics_.unknown_unregisters.inc(now - slot.unknown_unregisters_seen);
    }
    slot.unknown_unregisters_seen = now;
  }

  const verify::CheckResult::Parallelism& par = report.check.parallel;
  metrics_.check_parallelism.set(par.shards);
  if (par.shard_ms.size() > 1) {
    double sum = 0, slowest = 0;
    for (const double ms : par.shard_ms) {
      sum += ms;
      slowest = std::max(slowest, ms);
    }
    const double mean = sum / static_cast<double>(par.shard_ms.size());
    if (mean > 0) metrics_.shard_imbalance.record(slowest / mean);
  }
}

namespace {

/// The verb-independent summary of one verification round.
json::Value report_body(const Session& session, const verify::RealConfig::Report& report) {
  json::Value body;
  body["fib_changes"] = json::Value(report.dataplane.fib.size());
  body["filter_changes"] = json::Value(report.dataplane.filters.size());
  body["affected_ecs"] = json::Value(report.check.affected_ecs.size());
  body["affected_pairs"] = json::Value(report.check.affected_pairs.size());
  body["changed_pairs"] = json::Value(report.check.changed_pairs.size());
  body["generate_ms"] = json::Value(report.generate_ms);
  body["model_ms"] = json::Value(report.model_ms);
  body["check_ms"] = json::Value(report.check_ms);
  body["total_ms"] = json::Value(report.total_ms());
  body["ec_count"] = json::Value(report.ec_count);
  body["bdd_nodes"] = json::Value(report.bdd_nodes);
  if (report.reclaim.ran) {
    json::Value reclaim;
    reclaim["ecs_before"] = json::Value(report.reclaim.ecs_before);
    reclaim["ecs_after"] = json::Value(report.reclaim.ecs_after);
    reclaim["bdd_before"] = json::Value(report.reclaim.bdd_before);
    reclaim["bdd_after"] = json::Value(report.reclaim.bdd_after);
    reclaim["merged"] = json::Value(report.reclaim.remap.has_value());
    reclaim["reclaim_ms"] = json::Value(report.reclaim.reclaim_ms);
    body["reclaim"] = std::move(reclaim);
  }
  json::Value::Array events;
  for (const verify::PolicyEvent& e : report.check.events) {
    json::Value ev;
    const std::string name = session.policy_name(e.id);
    ev["policy"] = name.empty() ? json::Value(static_cast<std::uint64_t>(e.id))
                                : json::Value(name);
    ev["satisfied"] = json::Value(e.satisfied);
    events.push_back(std::move(ev));
  }
  body["events"] = json::Value(std::move(events));
  return body;
}

json::Value::Array link_id_array(const std::vector<topo::LinkId>& links) {
  json::Value::Array out;
  for (const topo::LinkId l : links) out.push_back(json::Value(static_cast<std::uint64_t>(l)));
  return out;
}

/// Serialize one sweep: the mined aggregates, then (detail only) the
/// per-scenario outcome records.
json::Value sweep_body(const Session& session, const verify::FailureSweepResult& result,
                       bool detail) {
  json::Value body;
  body["scenarios"] = json::Value(result.scenarios);
  body["healthy_pairs"] = json::Value(result.healthy_pairs.size());
  body["fault_tolerant_pairs"] = json::Value(result.fault_tolerant_pairs.size());
  body["critical_links"] = json::Value(link_id_array(result.critical_links));
  body["diverged_links"] = json::Value(link_id_array(result.diverged_links));
  body["loop_links"] = json::Value(link_id_array(result.loop_scenarios));
  json::Value violations{json::Value::Object{}};  // {} even when nothing violated
  for (const auto& [policy, links] : result.policy_violations) {
    const std::string name = session.policy_name(policy);
    violations[name.empty() ? "#" + std::to_string(policy) : name] =
        json::Value(link_id_array(links));
  }
  body["policy_violations"] = std::move(violations);
  // Multi-link oscillation reports ride in the aggregate body so that
  // detail:false consumers don't lose k >= 2 divergences (diverged_links
  // only carries the single-link ones).
  json::Value::Array diverged_scenarios;
  for (const verify::FailureScenario& s : result.diverged_scenarios) {
    diverged_scenarios.push_back(json::Value(link_id_array(s.links)));
  }
  body["diverged_scenarios"] = json::Value(std::move(diverged_scenarios));
  body["total_scenarios"] = json::Value(result.total_scenarios);
  body["explored_scenarios"] = json::Value(result.explored_scenarios);
  body["replayed_scenarios"] = json::Value(result.replayed_scenarios);
  body["pruned_scenarios"] = json::Value(result.pruned_scenarios);
  body["coverage"] = json::Value(result.coverage);
  body["snapshot_ms"] = json::Value(result.snapshot_ms);
  body["sweep_ms"] = json::Value(result.sweep_ms);
  if (!detail) return body;

  json::Value::Array outcomes;
  for (const verify::ScenarioOutcome& out : result.outcomes) {
    json::Value o;
    o["links"] = json::Value(link_id_array(out.scenario.links));
    o["diverged"] = json::Value(out.diverged);
    if (!out.diverged) {
      o["reachable_pairs"] = json::Value(out.reachable_pairs);
      o["pairs_lost"] = json::Value(out.pairs_lost);
      o["gained_loop"] = json::Value(out.gained_loop);
      json::Value::Array violated;
      for (const verify::PolicyId id : out.violated) {
        const std::string name = session.policy_name(id);
        violated.push_back(name.empty()
                               ? json::Value("#" + std::to_string(id))
                               : json::Value(name));
      }
      o["violated"] = json::Value(std::move(violated));
    }
    if (out.orbit > 1) o["orbit"] = json::Value(out.orbit);
    o["total_ms"] = json::Value(out.total_ms);
    o["restore_ms"] = json::Value(out.restore_ms);
    outcomes.push_back(std::move(o));
  }
  body["outcomes"] = json::Value(std::move(outcomes));
  return body;
}

// parse_network silently yields an empty config for text with no "hostname"
// stanza; over the wire that is almost certainly a malformed request, not an
// intentional zero-device network.
config::NetworkConfig parse_config_text(const std::string& text) {
  config::NetworkConfig cfg = config::parse_network(text);
  if (cfg.devices.empty()) throw ProtocolError("config defines no devices");
  return cfg;
}

const char* proto_text(config::IpProto proto) {
  switch (proto) {
    case config::IpProto::kTcp: return "tcp";
    case config::IpProto::kUdp: return "udp";
    case config::IpProto::kIcmp: return "icmp";
    case config::IpProto::kAny: break;
  }
  return "any";
}

std::string filter_rule_text(const routing::FilterRule& r) {
  std::string out = r.permit ? "permit" : "deny";
  out += std::string(" ") + proto_text(static_cast<config::IpProto>(r.proto));
  out += " src " + r.src.to_string() + " dst " + r.dst.to_string();
  if (r.src_port_lo != 0 || r.src_port_hi != 65535) {
    out += " sport " + std::to_string(r.src_port_lo) + "-" + std::to_string(r.src_port_hi);
  }
  if (r.dst_port_lo != 0 || r.dst_port_hi != 65535) {
    out += " dport " + std::to_string(r.dst_port_lo) + "-" + std::to_string(r.dst_port_hi);
  }
  out += " (priority " + std::to_string(r.priority) + ")";
  return out;
}

const char* kind_text(verify::PolicyKind kind) {
  switch (kind) {
    case verify::PolicyKind::kReachability: return "reachable";
    case verify::PolicyKind::kIsolation: return "isolated";
    case verify::PolicyKind::kWaypoint: return "waypoint";
  }
  return "?";
}

json::Value flow_json(const config::Flow& flow) {
  json::Value f;
  f["src"] = json::Value(flow.src.to_string());
  f["dst"] = json::Value(flow.dst.to_string());
  f["proto"] = json::Value(proto_text(flow.proto));
  f["src_port"] = json::Value(static_cast<std::uint64_t>(flow.src_port));
  f["dst_port"] = json::Value(static_cast<std::uint64_t>(flow.dst_port));
  return f;
}

/// Compact per-branch rendering of one flow trace (node names only; the
/// explain verb carries the rule-level detail).
json::Value trace_json(const topo::Topology& topo, const verify::FlowTrace& trace) {
  json::Value t;
  t["delivered"] = json::Value(trace.any_delivered());
  json::Value::Array branches;
  for (const verify::TraceBranch& b : trace.branches) {
    json::Value branch;
    branch["disposition"] = json::Value(verify::to_string(b.disposition));
    json::Value::Array path;
    for (const verify::TraceHop& h : b.hops) {
      path.push_back(json::Value(topo.node(h.node).name));
    }
    branch["path"] = json::Value(std::move(path));
    branches.push_back(std::move(branch));
  }
  t["branches"] = json::Value(std::move(branches));
  return t;
}

json::Value::Array pair_strings(const topo::Topology& topo,
                                const std::vector<std::pair<topo::NodeId, topo::NodeId>>& pairs) {
  json::Value::Array out;
  for (const auto& [s, d] : pairs) {
    out.push_back(json::Value(topo.node(s).name + "->" + topo.node(d).name));
  }
  return out;
}

/// Serialize one relational check: summary counts, violated specs with
/// witnesses, and (detail only) the per-EC diff array.
json::Value relate_body(const Session& session, const relate::RelationalResult& result,
                        const RelateSpec& spec) {
  const topo::Topology& topo = session.topology();
  json::Value body;
  body["holds"] = json::Value(result.holds);
  body["ecs_compared"] = json::Value(result.ecs_compared);
  body["ecs_changed"] = json::Value(result.diff.ecs.size());
  body["pairs_gained"] = json::Value(result.diff.pairs_gained());
  body["pairs_lost"] = json::Value(result.diff.pairs_lost());
  body["devices_diverged"] = json::Value(result.diff.devices_diverged());
  json::Value::Array violations;
  for (const relate::SpecViolation& v : result.violations) {
    const relate::RelationalSpec& rs = spec.specs[v.spec];
    json::Value vj;
    vj["spec"] = rs.name.empty() ? json::Value(v.spec) : json::Value(rs.name);
    vj["kind"] = json::Value(relate::to_string(rs.kind));
    json::Value::Array ecs;
    for (const dpm::EcId ec : v.ecs) ecs.push_back(json::Value(static_cast<std::uint64_t>(ec)));
    vj["ecs"] = json::Value(std::move(ecs));
    if (v.witness.has_value()) {
      json::Value w;
      w["flow"] = flow_json(v.witness->flow);
      w["ingress"] = json::Value(topo.node(v.witness->ingress).name);
      w["before"] = trace_json(topo, v.witness->before);
      w["after"] = trace_json(topo, v.witness->after);
      vj["witness"] = std::move(w);
    }
    violations.push_back(std::move(vj));
  }
  body["violations"] = json::Value(std::move(violations));
  body["snapshot_ms"] = json::Value(result.snapshot_ms);
  body["fork_ms"] = json::Value(result.fork_ms);
  body["apply_ms"] = json::Value(result.apply_ms);
  body["diff_ms"] = json::Value(result.diff_ms);
  body["relate_ms"] = json::Value(result.total_ms());
  if (!spec.detail) return body;

  json::Value::Array diff;
  for (const relate::EcDiff& d : result.diff.ecs) {
    json::Value e;
    e["ec"] = json::Value(static_cast<std::uint64_t>(d.changed_ec));
    e["base_ec"] = json::Value(static_cast<std::uint64_t>(d.base_ec));
    e["example"] = flow_json(d.example);
    json::Value::Array devices;
    for (const relate::DeviceDivergence& dd : d.devices) {
      json::Value dv;
      dv["device"] = json::Value(topo.node(dd.device).name);
      dv["before"] = json::Value(dpm::to_string(dd.before));
      dv["after"] = json::Value(dpm::to_string(dd.after));
      devices.push_back(std::move(dv));
    }
    e["devices"] = json::Value(std::move(devices));
    e["pairs_gained"] = json::Value(pair_strings(topo, d.pairs_gained));
    e["pairs_lost"] = json::Value(pair_strings(topo, d.pairs_lost));
    if (d.loop_before != d.loop_after) e["loop"] = json::Value(d.loop_after);
    if (d.blackhole_before != d.blackhole_after) {
      e["blackhole"] = json::Value(d.blackhole_after);
    }
    diff.push_back(std::move(e));
  }
  body["diff"] = json::Value(std::move(diff));
  return body;
}

/// Serialize one order synthesis: the rollout order (or blocking subset)
/// by step name, and (detail only) the per-step verdict records.
json::Value order_body(const Session& session, const relate::OrderResult& result,
                       const std::vector<relate::UpdateStep>& steps, bool detail) {
  json::Value body;
  body["found"] = json::Value(result.found);
  json::Value::Array order;
  for (const std::size_t idx : result.order) order.push_back(json::Value(steps[idx].name));
  body["order"] = json::Value(std::move(order));
  json::Value::Array blocking;
  for (const std::size_t idx : result.blocking) {
    blocking.push_back(json::Value(steps[idx].name));
  }
  body["blocking"] = json::Value(std::move(blocking));
  body["blocking_minimal"] = json::Value(result.blocking_minimal);
  body["explored"] = json::Value(result.explored);
  body["restores"] = json::Value(result.restores);
  body["snapshot_ms"] = json::Value(result.snapshot_ms);
  body["search_ms"] = json::Value(result.search_ms);
  body["order_ms"] = json::Value(result.snapshot_ms + result.search_ms);
  if (!detail) return body;

  json::Value::Array verdicts;
  for (const relate::StepVerdict& v : result.verdicts) {
    json::Value s;
    s["name"] = json::Value(steps[v.step].name);
    s["converged"] = json::Value(v.converged);
    json::Value::Array violated;
    for (const verify::PolicyId id : v.violated) {
      const std::string name = session.policy_name(id);
      violated.push_back(name.empty() ? json::Value("#" + std::to_string(id))
                                      : json::Value(name));
    }
    s["violated"] = json::Value(std::move(violated));
    s["affected_ecs"] = json::Value(v.affected_ecs);
    s["apply_ms"] = json::Value(v.apply_ms);
    verdicts.push_back(std::move(s));
  }
  body["steps"] = json::Value(std::move(verdicts));
  return body;
}

/// Serialize one explanation: witness, hop-by-hop branches, causes.
json::Value explanation_body(const Session& session, const Session::ExplainResult& result) {
  const topo::Topology& topo = session.topology();
  const rcfg::explain::Explanation& ex = result.explanation;
  json::Value body;
  body["policy"] = json::Value(result.policy);
  body["kind"] = json::Value(kind_text(ex.kind));
  body["satisfied"] = json::Value(ex.satisfied);
  body["trace_enabled"] = json::Value(session.tracing());
  if (!ex.has_witness) return body;

  json::Value witness;
  witness["ec"] = json::Value(static_cast<std::uint64_t>(ex.witness_ec));
  witness["ingress"] = json::Value(topo.node(ex.trace.ingress).name);
  witness["src"] = json::Value(ex.witness.src.to_string());
  witness["dst"] = json::Value(ex.witness.dst.to_string());
  witness["proto"] = json::Value(proto_text(ex.witness.proto));
  witness["src_port"] = json::Value(static_cast<std::uint64_t>(ex.witness.src_port));
  witness["dst_port"] = json::Value(static_cast<std::uint64_t>(ex.witness.dst_port));
  body["witness"] = std::move(witness);

  json::Value::Array branches;
  for (const verify::TraceBranch& b : ex.trace.branches) {
    json::Value branch;
    branch["disposition"] = json::Value(verify::to_string(b.disposition));
    json::Value::Array hops;
    for (const verify::TraceHop& h : b.hops) {
      json::Value hop;
      hop["node"] = json::Value(topo.node(h.node).name);
      hop["lpm"] = h.matched_prefix.has_value() ? json::Value(h.matched_prefix->to_string())
                                                : json::Value("no route");
      hop["action"] = json::Value(dpm::to_string(h.port));
      if (h.egress != topo::kInvalidIface) {
        hop["egress"] = json::Value(topo.iface(h.egress).name);
      }
      if (h.egress_acl_rule.has_value()) {
        hop["egress_acl"] = json::Value(filter_rule_text(*h.egress_acl_rule));
      }
      if (h.ingress_acl_rule.has_value()) {
        hop["ingress_acl"] = json::Value(filter_rule_text(*h.ingress_acl_rule));
      }
      hops.push_back(std::move(hop));
    }
    branch["hops"] = json::Value(std::move(hops));
    branches.push_back(std::move(branch));
  }
  body["branches"] = json::Value(std::move(branches));

  if (ex.offending_batch != 0) {
    json::Value cause;
    cause["batch"] = json::Value(ex.offending_batch);
    cause["label"] = json::Value(ex.offending_label);
    cause["generate_ms"] = json::Value(ex.offending_spans.generate_ms);
    cause["model_ms"] = json::Value(ex.offending_spans.model_ms);
    cause["check_ms"] = json::Value(ex.offending_spans.check_ms);
    json::Value::Array devices;
    for (const rcfg::explain::Cause& c : ex.causes) {
      json::Value dev;
      dev["device"] = json::Value(c.device);
      dev["direct"] = json::Value(c.direct);
      json::Value::Array edits;
      for (const config::LineEdit& e : c.edits) {
        json::Value edit;
        edit["op"] = json::Value(e.kind == config::LineEdit::Kind::kInsert ? "insert"
                                                                           : "delete");
        edit["line"] = json::Value(e.line);
        edit["text"] = json::Value(e.text);
        edits.push_back(std::move(edit));
      }
      dev["edits"] = json::Value(std::move(edits));
      devices.push_back(std::move(dev));
    }
    cause["devices"] = json::Value(std::move(devices));
    body["cause"] = std::move(cause);
  }
  return body;
}

}  // namespace

Response Engine::handle_open_(Slot& slot, const Request& req, ReplicaEffect& effect) {
  if (slot.session != nullptr) {
    return error_response(req.id, "session already open: '" + req.session + "'");
  }
  topo::Topology topology = build_topology(req.topology);
  config::NetworkConfig initial = parse_config_text(req.config_text);
  // May throw NonterminationError: with no committed baseline there is
  // nothing to recover to, so a nonconvergent *initial* config fails open.
  slot.session = std::make_unique<Session>(req.session, std::move(topology),
                                           std::move(initial), req.options);
  effect.install_lanes = req.options.replicas;
  metrics_.sessions_open.add(1);
  const verify::RealConfig::Report& report = slot.session->baseline_report();
  record_report_(slot, report);

  Response r;
  r.id = req.id;
  r.body = report_body(*slot.session, report);
  r.body["session"] = json::Value(req.session);
  r.body["status"] = json::Value("open");
  r.body["nodes"] = json::Value(slot.session->topology().node_count());
  r.body["links"] = json::Value(slot.session->topology().link_count());
  r.body["rules"] = json::Value(slot.session->verifier().generator().fib().size());
  r.body["ecs"] = json::Value(slot.session->verifier().ecs().ec_count());
  r.body["pairs"] = json::Value(slot.session->verifier().checker().pair_count());
  return r;
}

Response Engine::handle_read_(const std::string& session_name, Session& session,
                              const Request& req) {
  try {
    Response r;
    r.id = req.id;
    r.body["session"] = json::Value(session_name);

    switch (req.verb) {
      case Verb::kQuery: {
        if (!req.query_policy.empty()) {
          r.body["policy"] = json::Value(req.query_policy);
          r.body["satisfied"] = json::Value(session.policy_satisfied(req.query_policy));
          break;
        }
        verify::RealConfig& rc = session.verifier();
        r.body["pairs"] = json::Value(rc.checker().pair_count());
        r.body["loops"] = json::Value(rc.checker().loop_count());
        r.body["blackholes"] = json::Value(rc.checker().blackhole_count());
        r.body["ecs"] = json::Value(rc.ecs().ec_count());
        r.body["staged"] = json::Value(session.has_staged());
        r.body["rebuilds"] = json::Value(session.rebuilds());
        r.body["generation"] = json::Value(session.generation());
        json::Value::Array policies;
        for (const PolicySpec& spec : session.policies()) {
          json::Value p;
          p["name"] = json::Value(spec.name);
          p["satisfied"] = json::Value(session.policy_satisfied(spec.name));
          policies.push_back(std::move(p));
        }
        r.body["policies"] = json::Value(std::move(policies));
        break;
      }
      case Verb::kExplain: {
        const auto t0 = std::chrono::steady_clock::now();
        const Session::ExplainResult result = session.explain(req.query_policy);
        const auto t1 = std::chrono::steady_clock::now();
        metrics_.explain_ms.record(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        json::Value body = explanation_body(session, result);
        body["session"] = json::Value(session_name);
        r.body = std::move(body);
        break;
      }
      case Verb::kRelate: {
        const config::NetworkConfig cfg = parse_config_text(req.config_text);
        const auto t0 = std::chrono::steady_clock::now();
        const relate::RelationalResult result =
            session.relate(cfg, req.relate.specs, req.relate.witnesses);
        metrics_.relate_ms.record(
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count());
        metrics_.relate_diff_ecs.inc(result.diff.ecs.size());
        json::Value body = relate_body(session, result, req.relate);
        body["session"] = json::Value(session_name);
        r.body = std::move(body);
        break;
      }
      default:
        return error_response(req.id, "unreachable read verb");
    }
    return r;
  } catch (const std::exception& e) {
    return error_response(req.id, std::string(verb_name(req.verb)) + ": " + e.what());
  }
}

Response Engine::handle_(Slot& slot, const Request& req, ReplicaEffect& effect) {
  try {
    if (req.verb == Verb::kOpen) return handle_open_(slot, req, effect);
    if (slot.session == nullptr) {
      return error_response(req.id, "session '" + req.session + "' failed to open");
    }
    Session& session = *slot.session;

    // The read verbs run against the primary here (sessions without lanes,
    // or reads pinned with "primary":true). Replica-lane reads go through
    // handle_read_ directly from the read workers.
    if (req.verb == Verb::kQuery || req.verb == Verb::kExplain || req.verb == Verb::kRelate) {
      return handle_read_(req.session, session, req);
    }

    Response r;
    r.id = req.id;
    r.body["session"] = json::Value(req.session);

    switch (req.verb) {
      case Verb::kPropose: {
        auto cfg = std::make_shared<const config::NetworkConfig>(
            parse_config_text(req.config_text));
        const bool was_migrated = session.verifier().packet_space().migrated();
        const ProposeOutcome outcome = session.propose(*cfg);
        if (outcome.converged) {
          record_report_(slot, outcome.report);
          // Incremental replay keeps replicas bit-identical — except where
          // the id space moved underneath: a reclamation merge (EcRemap) or
          // a backend migration. Those stream a fresh fork instead.
          if (outcome.report.reclaim.remap.has_value() ||
              session.verifier().packet_space().migrated() != was_migrated) {
            effect.kind = ReplicaDelta::Kind::kResync;
          } else {
            effect.kind = ReplicaDelta::Kind::kApply;
            effect.config = cfg;
            effect.staged_after = true;
            if (session.tracing() && session.provenance()->latest() != nullptr) {
              effect.record = std::make_shared<const ::rcfg::explain::BatchRecord>(
                  *session.provenance()->latest());
            }
          }
          json::Value body = report_body(session, outcome.report);
          body["session"] = json::Value(req.session);
          body["status"] = json::Value("staged");
          r.body = std::move(body);
        } else {
          metrics_.recoveries.inc();
          // The session rebuilt itself from the committed baseline: a fresh
          // EC id space, so replicas must resync.
          effect.kind = ReplicaDelta::Kind::kResync;
          r.body["status"] = json::Value("nonconvergent");
          r.body["recovered"] = json::Value(true);
          r.body["rebuilds"] = json::Value(session.rebuilds());
          r.body["detail"] = json::Value(outcome.error);
        }
        break;
      }
      case Verb::kCommit:
        session.commit();
        effect.kind = ReplicaDelta::Kind::kCommit;
        r.body["status"] = json::Value("committed");
        break;
      case Verb::kAbort: {
        const verify::RealConfig::Report report = session.abort();
        record_report_(slot, report);
        if (report.reclaim.remap.has_value()) {
          effect.kind = ReplicaDelta::Kind::kResync;
        } else {
          effect.kind = ReplicaDelta::Kind::kApply;
          effect.config = std::make_shared<const config::NetworkConfig>(session.committed());
          effect.staged_after = false;
          if (session.tracing() && session.provenance()->latest() != nullptr) {
            effect.record = std::make_shared<const ::rcfg::explain::BatchRecord>(
                *session.provenance()->latest());
          }
        }
        r.body["status"] = json::Value("aborted");
        r.body["rollback_ms"] = json::Value(report.total_ms());
        break;
      }
      case Verb::kAddPolicy: {
        const bool satisfied = session.add_policy(req.policy);
        effect.kind = ReplicaDelta::Kind::kAddPolicy;
        effect.policy = std::make_shared<const PolicySpec>(req.policy);
        r.body["status"] = json::Value("policy_added");
        r.body["policy"] = json::Value(req.policy.name);
        r.body["satisfied"] = json::Value(satisfied);
        break;
      }
      case Verb::kSweep: {
        verify::FailureSweepOptions options;
        options.max_failures = req.sweep.max_failures;
        options.budget = req.sweep.budget;
        options.prune = req.sweep.prune;
        options.symmetry = req.sweep.symmetry;
        options.threads = req.sweep.threads;
        if (!req.sweep.links.empty()) {
          // An explicit link subset becomes the generator's universe, after
          // restoring the sorted-unique invariant the generator relies on:
          // duplicated or unsorted ids used to leak duplicate scenarios
          // straight into the report.
          std::vector<topo::LinkId> ls = req.sweep.links;
          std::sort(ls.begin(), ls.end());
          ls.erase(std::unique(ls.begin(), ls.end()), ls.end());
          for (const topo::LinkId l : ls) {
            if (l >= session.topology().link_count()) {
              return error_response(req.id, "sweep: link id " + std::to_string(l) +
                                                " out of range");
            }
          }
          options.links = std::move(ls);
        }
        const verify::FailureSweepResult result = session.sweep(options);
        metrics_.sweep_ms.record(result.sweep_ms);
        metrics_.sweep_scenarios.inc(result.scenarios);
        metrics_.sweep_pruned.inc(result.pruned_scenarios);
        metrics_.sweep_replayed.inc(result.replayed_scenarios);
        std::uint64_t diverged = 0;
        for (const verify::ScenarioOutcome& out : result.outcomes) {
          metrics_.sweep_scenario_ms.record(out.total_ms);
          if (out.diverged) ++diverged;
        }
        metrics_.sweep_diverged.inc(diverged);
        json::Value body = sweep_body(session, result, req.sweep.detail);
        body["session"] = json::Value(req.session);
        r.body = std::move(body);
        break;
      }
      case Verb::kOrder: {
        std::vector<relate::UpdateStep> steps;
        steps.reserve(req.order.steps.size());
        for (const OrderStepSpec& s : req.order.steps) {
          relate::UpdateStep step;
          step.name = s.name;
          step.patch = parse_config_text(s.config_text);
          steps.push_back(std::move(step));
        }
        relate::OrderOptions options;
        options.max_blocking = req.order.max_blocking;
        const auto t0 = std::chrono::steady_clock::now();
        const relate::OrderResult result = session.order(steps, options);
        metrics_.order_ms.record(
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count());
        metrics_.order_steps_explored.inc(result.explored);
        json::Value body = order_body(session, result, steps, req.order.detail);
        body["session"] = json::Value(req.session);
        r.body = std::move(body);
        break;
      }
      case Verb::kOpen:
      case Verb::kStats:
      case Verb::kQuery:
      case Verb::kExplain:
      case Verb::kRelate:
        return error_response(req.id, "unreachable verb");
    }
    return r;
  } catch (const std::exception& e) {
    return error_response(req.id, std::string(verb_name(req.verb)) + ": " + e.what());
  }
}

json::Value Engine::stats_json() const {
  json::Value out;
  out["metrics"] = metrics_.to_json();
  json::Value::Array sessions;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, slot] : slots_) {
      if (slot.session == nullptr) continue;
      json::Value s;
      s["name"] = json::Value(name);
      s["policies"] = json::Value(slot.session->policies().size());
      s["staged"] = json::Value(slot.session->has_staged());
      s["rebuilds"] = json::Value(slot.session->rebuilds());
      s["generation"] = json::Value(slot.session->generation());
      if (!slot.lanes.empty()) {
        s["replicas"] = json::Value(slot.lanes.size());
        s["epoch"] = json::Value(slot.processed_epoch);
        std::size_t broken = 0;
        for (const auto& lane : slot.lanes) {
          if (lane->broken) ++broken;
        }
        if (broken > 0) s["replicas_broken"] = json::Value(broken);
      }
      sessions.push_back(std::move(s));
    }
  }
  out["sessions"] = json::Value(std::move(sessions));
  return out;
}

}  // namespace rcfg::service
