#include "service/metrics.h"

#include <algorithm>

namespace rcfg::service {

void Gauge::add(std::int64_t delta) {
  const std::int64_t now = v_.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (now > seen && !max_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

void Gauge::set(std::int64_t value) {
  v_.store(value, std::memory_order_relaxed);
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

Histogram Histogram::latency_ms() {
  return Histogram({0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
                    1000, 2500, 5000, 10000});
}

Histogram Histogram::batch_sizes() { return Histogram({1, 2, 4, 8, 16, 32, 64, 128, 256}); }

Histogram Histogram::imbalance_ratios() {
  return Histogram({1.05, 1.1, 1.25, 1.5, 2, 3, 5, 10});
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  const std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

std::uint64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : min_;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

json::Value Histogram::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  json::Value out;
  out["count"] = json::Value(count_);
  out["sum"] = json::Value(sum_);
  out["min"] = json::Value(count_ == 0 ? 0.0 : min_);
  out["max"] = json::Value(max_);
  out["mean"] = json::Value(count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_));
  json::Value::Array buckets;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    json::Value b;
    b["le"] = json::Value(bounds_[i]);
    b["count"] = json::Value(counts_[i]);
    buckets.push_back(std::move(b));
  }
  json::Value overflow;
  overflow["le"] = json::Value("inf");
  overflow["count"] = json::Value(counts_.back());
  buckets.push_back(std::move(overflow));
  out["buckets"] = json::Value(std::move(buckets));
  return out;
}

json::Value ServiceMetrics::to_json() const {
  json::Value out;

  json::Value requests;
  requests["total"] = json::Value(requests_total.value());
  requests["errors"] = json::Value(errors_total.value());
  requests["open"] = json::Value(opens.value());
  requests["propose"] = json::Value(proposes.value());
  requests["commit"] = json::Value(commits.value());
  requests["abort"] = json::Value(aborts.value());
  requests["add_policy"] = json::Value(add_policies.value());
  requests["query"] = json::Value(queries.value());
  requests["explain"] = json::Value(explains.value());
  requests["sweep"] = json::Value(sweeps.value());
  requests["relate"] = json::Value(relates.value());
  requests["order"] = json::Value(orders.value());
  requests["stats"] = json::Value(stats_calls.value());
  out["requests"] = std::move(requests);

  json::Value batching;
  batching["batches"] = json::Value(batches_total.value());
  batching["coalesced_batches"] = json::Value(coalesced_batches.value());
  batching["coalesced_proposes"] = json::Value(coalesced_proposes.value());
  batching["batch_size"] = batch_size.to_json();
  out["batching"] = std::move(batching);

  out["recoveries"] = json::Value(recoveries.value());

  json::Value sweeping;
  sweeping["scenarios"] = json::Value(sweep_scenarios.value());
  sweeping["diverged"] = json::Value(sweep_diverged.value());
  sweeping["pruned"] = json::Value(sweep_pruned.value());
  sweeping["replayed"] = json::Value(sweep_replayed.value());
  sweeping["sweep_ms"] = sweep_ms.to_json();
  sweeping["scenario_ms"] = sweep_scenario_ms.to_json();
  out["sweeps"] = std::move(sweeping);

  json::Value relational;
  relational["relate_diff_ecs"] = json::Value(relate_diff_ecs.value());
  relational["order_steps_explored"] = json::Value(order_steps_explored.value());
  relational["relate_ms"] = relate_ms.to_json();
  relational["order_ms"] = order_ms.to_json();
  out["relational"] = std::move(relational);

  json::Value parallelism;
  parallelism["check_shards"] = json::Value(check_parallelism.value());
  parallelism["check_shards_max"] = json::Value(check_parallelism.max());
  parallelism["shard_imbalance"] = shard_imbalance.to_json();
  out["parallelism"] = std::move(parallelism);

  json::Value reclamation;
  reclamation["reclaims"] = json::Value(reclaims.value());
  reclamation["reclaimed_ecs"] = json::Value(reclaimed_ecs.value());
  reclamation["reclaimed_bdd_nodes"] = json::Value(reclaimed_bdd_nodes.value());
  reclamation["unknown_unregisters"] = json::Value(unknown_unregisters.value());
  reclamation["ec_count"] = json::Value(ec_count.value());
  reclamation["ec_count_max"] = json::Value(ec_count.max());
  reclamation["bdd_nodes"] = json::Value(bdd_nodes.value());
  reclamation["bdd_nodes_max"] = json::Value(bdd_nodes.max());
  reclamation["compact_ms"] = compact_ms.to_json();
  out["reclamation"] = std::move(reclamation);

  json::Value latency;
  latency["generate_ms"] = generate_ms.to_json();
  latency["model_ms"] = model_ms.to_json();
  latency["check_ms"] = check_ms.to_json();
  latency["total_ms"] = total_ms.to_json();
  latency["explain_ms"] = explain_ms.to_json();
  out["latency"] = std::move(latency);

  json::Value replicas;
  replicas["queries"] = json::Value(replica_queries.value());
  replicas["deltas"] = json::Value(replica_deltas.value());
  replicas["resyncs"] = json::Value(replica_resyncs.value());
  replicas["squashes"] = json::Value(replica_squashes.value());
  replicas["fallbacks"] = json::Value(replica_fallbacks.value());
  replicas["lane_failures"] = json::Value(replica_lane_failures.value());
  replicas["open"] = json::Value(replicas_open.value());
  replicas["open_max"] = json::Value(replicas_open.max());
  replicas["catchup_ms"] = replica_catchup_ms.to_json();
  out["replicas"] = std::move(replicas);

  json::Value load;
  load["queue_depth"] = json::Value(queue_depth.value());
  load["queue_depth_max"] = json::Value(queue_depth.max());
  load["sessions_open"] = json::Value(sessions_open.value());
  load["sessions_open_max"] = json::Value(sessions_open.max());
  load["rejected"] = json::Value(rejected_total.value());
  out["load"] = std::move(load);

  return out;
}

}  // namespace rcfg::service
