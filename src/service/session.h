#pragma once

// One long-lived verification session: a RealConfig instance wrapped with
//
//   * change transactions — propose(cfg) runs a what-if verification on the
//     live incremental state and stages the configuration; commit() makes
//     it the new baseline; abort() rolls the live state back to the last
//     committed configuration *incrementally* (re-applying it, which only
//     touches what the aborted proposal changed);
//   * a named-policy registry — policies survive verifier rebuilds, because
//     the session remembers their specs, not just their PolicyIds;
//   * automatic nontermination recovery — when a proposal's control plane
//     does not converge (dd::NonterminationError, paper §6), the poisoned
//     RealConfig is discarded and rebuilt from the last committed
//     configuration, policies re-registered, and the caller gets a
//     structured "nonconvergent" outcome instead of a dead verifier. This
//     turns the paper's discard-and-restart caveat into a service-level
//     guarantee: a session is never left unusable by a bad proposal.
//
// A Session is NOT thread-safe; the Engine serializes access per session.

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/types.h"
#include "explain/explain.h"
#include "explain/provenance.h"
#include "net/ipv4.h"
#include "relate/order.h"
#include "relate/relate.h"
#include "topo/topology.h"
#include "verify/failures.h"
#include "verify/realconfig.h"

namespace rcfg::service {

/// A policy by name + node names: everything needed to (re)register it on a
/// fresh verifier.
struct PolicySpec {
  enum class Kind : std::uint8_t { kReachable, kIsolated, kWaypoint };
  Kind kind = Kind::kReachable;
  std::string name;
  std::string src;
  std::string dst;
  std::string via;  ///< waypoint only
  net::Ipv4Prefix prefix;
};

struct SessionOptions {
  verify::RealConfigOptions verifier;
  /// dd::Graph divergence-detector passthroughs; 0 keeps the engine default.
  std::uint64_t flush_budget = 0;
  std::uint64_t recurrence_threshold = 0;
  /// Record per-batch provenance (config diff → rule delta → EC moves →
  /// verdict flips) for the `explain` verb. Pay-as-you-go: off (the
  /// default) means zero recording overhead on every batch.
  bool trace = false;
  std::size_t trace_capacity = 32;  ///< provenance ring size (trace only)
  /// Read replicas forked off the session at open (engine-managed): queries
  /// fan out across them while mutations stream deltas from the primary.
  /// 0 (the default) keeps the single-verifier path.
  unsigned replicas = 0;
};

/// Result of propose(): either a verification report (converged) or the
/// recovery record (nonconvergent; the session was rebuilt and is usable).
struct ProposeOutcome {
  bool converged = true;
  verify::RealConfig::Report report;  ///< valid iff converged
  std::string error;                  ///< nontermination message otherwise
};

struct ReplicaDelta;

class Session {
 public:
  /// Builds the verifier and runs the from-scratch verification of
  /// `initial`, which becomes the committed baseline. Throws
  /// dd::NonterminationError if even the initial configuration does not
  /// converge (there is no earlier state to recover to).
  Session(std::string name, topo::Topology topology, config::NetworkConfig initial,
          SessionOptions options = {});

  const std::string& name() const { return name_; }
  const topo::Topology& topology() const { return *topo_; }
  const config::NetworkConfig& committed() const { return committed_; }
  const verify::RealConfig::Report& baseline_report() const { return baseline_report_; }

  // --- change transaction --------------------------------------------------
  /// Verify `cfg` against the live state and stage it. Proposing on top of
  /// an uncommitted proposal is allowed (the staged config is replaced; the
  /// verification is incremental from the previous proposal — this is what
  /// the engine's coalescing leans on). On nontermination the session
  /// rebuilds itself from the committed baseline and reports converged=false.
  ProposeOutcome propose(const config::NetworkConfig& cfg);

  bool has_staged() const { return staged_.has_value(); }

  /// Promote the staged configuration to committed. Metadata-only: the live
  /// verifier already reflects it. Throws std::logic_error with no staged
  /// proposal.
  void commit();

  /// Discard the staged proposal and roll the live verifier back to the
  /// committed configuration (an incremental re-apply). Returns the
  /// rollback's report. Throws std::logic_error with no staged proposal.
  verify::RealConfig::Report abort();

  // --- named policies ------------------------------------------------------
  /// Registers the policy on the live verifier and records the spec for
  /// re-registration after a rebuild. Returns its current satisfaction.
  /// Throws std::invalid_argument on duplicate name or unknown node.
  bool add_policy(const PolicySpec& spec);

  bool has_policy(const std::string& name) const { return ids_.count(name) != 0; }
  /// Throws std::invalid_argument on unknown name.
  bool policy_satisfied(const std::string& name) const;
  const std::vector<PolicySpec>& policies() const { return specs_; }
  /// Display name for a checker PolicyId ("" if unknown — e.g. registered
  /// directly on the checker, bypassing the session).
  std::string policy_name(verify::PolicyId id) const;

  // --- failure sweep -------------------------------------------------------
  /// Snapshot-fork what-if sweep over the configuration the live verifier
  /// currently reflects (the staged proposal when one exists, else the
  /// committed baseline). Every scenario runs on a forked replica; the live
  /// verifier itself is checkpointed but never mutated, so the session keeps
  /// serving queries mid-sweep. Diverging scenarios are reported, never
  /// fatal. Throws std::logic_error if the verifier is poisoned (cannot
  /// happen through the public verbs: propose() rebuilds on divergence).
  verify::FailureSweepResult sweep(const verify::FailureSweepOptions& options = {});

  // --- relational verification --------------------------------------------
  /// Relational check of `proposed` against the configuration the live
  /// verifier currently reflects: fork-pair behavioural diff + spec
  /// evaluation (see relate::RelationalChecker). The live verifier is
  /// checkpointed but never mutated. Throws dd::NonterminationError when
  /// the proposal does not converge on the fork (the session stays
  /// healthy — nothing to recover).
  relate::RelationalResult relate(const config::NetworkConfig& proposed,
                                  const std::vector<relate::RelationalSpec>& specs,
                                  bool witnesses = true);

  /// Safe update-order synthesis over the live configuration and this
  /// session's registered policies (see relate::UpdateOrderSynthesizer).
  /// All search work happens on a scratch fork. Throws
  /// std::invalid_argument on overlapping/unknown-device steps.
  relate::OrderResult order(const std::vector<relate::UpdateStep>& steps,
                            const relate::OrderOptions& options = {});

  // --- explain -------------------------------------------------------------
  /// Explain `policy_name`, or — with an empty name — the most recent
  /// violation (newest verdict-flip-to-false in the provenance window,
  /// falling back to any currently violated policy). Works without tracing
  /// (the path replay needs only the live model); causes then stay empty.
  /// Throws std::invalid_argument on unknown name / nothing violated.
  struct ExplainResult {
    std::string policy;  ///< resolved name
    ::rcfg::explain::Explanation explanation;
  };
  ExplainResult explain(const std::string& policy_name) const;

  bool tracing() const { return log_ != nullptr; }
  /// The provenance window, or nullptr when the session was opened
  /// without tracing.
  const ::rcfg::explain::ProvenanceLog* provenance() const { return log_.get(); }

  // --- read replicas -------------------------------------------------------
  /// Clone the whole session state for a read replica: a forked verifier
  /// (EC ids preserved — see RealConfig::fork), the policy registry with
  /// identical PolicyIds, copies of committed/staged, and the provenance
  /// window (so explain answers, including cause spans, match the primary's
  /// byte for byte). The clone shares the immutable topology. The caller
  /// must not mutate primary and clone concurrently *with each other's
  /// construction*; afterwards they are fully independent.
  /// Throws std::logic_error if the verifier is poisoned.
  std::unique_ptr<Session> fork_replica() const;

  /// Replay one primary mutation on this replica (see ReplicaDelta). The
  /// verifier's apply() is deterministic, so replaying the same committed
  /// stream from an identical fork keeps the replica bit-identical to the
  /// primary — EC ids, verdicts, witnesses, and provenance all line up.
  void apply_replica_delta(const ReplicaDelta& delta);

  // --- introspection -------------------------------------------------------
  std::size_t rebuilds() const { return rebuilds_; }
  std::size_t generation() const { return generation_; }  ///< verifier instance #
  verify::RealConfig& verifier() { return *rc_; }
  const verify::RealConfig& verifier() const { return *rc_; }

 private:
  std::unique_ptr<verify::RealConfig> make_verifier_() const;
  verify::PolicyId register_on_verifier_(const PolicySpec& spec);
  /// Discard the (poisoned) verifier, rebuild from `committed_`, re-register
  /// all policies.
  void rebuild_();
  /// Append one batch to the provenance log (no-op when tracing is off).
  void record_(const char* label, const config::NetworkConfig& old_cfg,
               const config::NetworkConfig& new_cfg,
               const verify::RealConfig::Report& report);
  /// The configuration the live verifier currently reflects.
  const config::NetworkConfig& live_() const {
    return staged_.has_value() ? *staged_ : committed_;
  }

  /// Uninitialized shell for fork_replica (fills every member by hand).
  Session() = default;

  std::string name_;
  /// Shared with replica clones (immutable after construction); rc_ holds a
  /// reference into it, so clones keep it alive together.
  std::shared_ptr<const topo::Topology> topo_;
  SessionOptions options_;
  std::unique_ptr<verify::RealConfig> rc_;
  verify::RealConfig::Report baseline_report_;

  config::NetworkConfig committed_;
  std::optional<config::NetworkConfig> staged_;

  std::vector<PolicySpec> specs_;
  std::unordered_map<std::string, verify::PolicyId> ids_;
  std::unordered_map<verify::PolicyId, std::string> names_by_id_;

  /// Present iff SessionOptions::trace. Cleared on rebuild: a fresh
  /// verifier starts a fresh EC id space, so older records would lie.
  std::unique_ptr<::rcfg::explain::ProvenanceLog> log_;

  std::size_t rebuilds_ = 0;
  std::size_t generation_ = 1;
};

/// One primary-side mutation, as streamed to a session's read replicas.
///
/// Every request the primary processes advances the session's acknowledged
/// epoch by exactly one and enqueues one delta per replica — kNoop for
/// non-mutating verbs — so a query fenced at epoch E can always be answered
/// once a replica has consumed deltas up to E (the fence never waits on
/// anything that was not already acknowledged).
///
/// kApply deltas carry the *whole* proposed configuration, not a diff: the
/// verifier's apply() is itself incremental (cost scales with the change),
/// and replaying the identical input stream on an identical fork is what
/// keeps replicas bit-identical — including EC ids, whose split history
/// depends on every intermediate configuration. For the same reason replica
/// catch-up never coalesces kApply deltas.
///
/// kResync replaces incremental replay where id-stability breaks: after a
/// primary rebuild (nontermination recovery), after a reclamation merge
/// (EcRemap — replaying it would renumber independently), and after a
/// packet-space backend migration. The delta carries a fresh fork of the
/// post-mutation primary.
struct ReplicaDelta {
  enum class Kind : std::uint8_t {
    kNoop,       ///< non-mutating request; advances the epoch only
    kApply,      ///< propose/abort: re-apply `config` on the replica
    kCommit,     ///< promote staged -> committed (metadata only)
    kAddPolicy,  ///< register `policy` (same PolicyId by construction)
    kResync,     ///< adopt `resync`, a fresh fork of the primary
  };

  Kind kind = Kind::kNoop;
  std::uint64_t epoch = 0;  ///< the acknowledged epoch this delta completes

  std::shared_ptr<const config::NetworkConfig> config;  ///< kApply
  bool staged_after = false;  ///< kApply: propose stages, abort un-stages
  std::shared_ptr<const PolicySpec> policy;  ///< kAddPolicy
  /// kApply, tracing sessions only: the primary's provenance record for
  /// this batch, so replica explain answers carry the primary's timings.
  std::shared_ptr<const ::rcfg::explain::BatchRecord> record;
  std::unique_ptr<Session> resync;  ///< kResync
};

}  // namespace rcfg::service
