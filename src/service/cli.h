#pragma once

// Flag-argument parsing for rcfgd, split out of the main() so the parsing
// rules are unit-testable (tests/service/cli_test.cpp).

#include <optional>

#include "service/framing.h"

namespace rcfg::service {

/// Parse a strictly positive decimal count. Rejects (returns nullopt):
/// null/empty input, any non-digit character (including a trailing suffix
/// like "4x", signs, and whitespace), zero, and values above UINT_MAX.
std::optional<unsigned> parse_count_arg(const char* value);

/// Parse a --framing argument: "auto" | "jsonl" | "binary".
std::optional<Framing> parse_framing_arg(const char* value);

}  // namespace rcfg::service
