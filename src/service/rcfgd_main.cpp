// rcfgd — the RealConfig verification daemon.
//
// Speaks the JSON-lines protocol (see protocol.h) on stdin/stdout, or on
// files when given as positional arguments — so it can be driven
// interactively, from a pipe, or replayed from a transcript:
//
//   $ rcfgd                               # stdin -> stdout
//   $ rcfgd requests.jsonl                # file  -> stdout
//   $ rcfgd requests.jsonl replies.jsonl  # file  -> file
//
// Flags:
//   --workers N   worker threads (default 2)
//   --queue N     per-session queue capacity before backpressure (default 64)
//   --no-coalesce process every propose individually (debugging aid)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "service/engine.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue N] [--no-coalesce] [in.jsonl [out.jsonl]]\n",
               argv0);
  std::exit(2);
}

unsigned parse_count(const char* argv0, const char* flag, const char* value) {
  if (value == nullptr) usage(argv0);
  const long n = std::strtol(value, nullptr, 10);
  if (n <= 0) {
    std::fprintf(stderr, "%s: %s wants a positive integer, got '%s'\n", argv0, flag, value);
    std::exit(2);
  }
  return static_cast<unsigned>(n);
}

}  // namespace

int main(int argc, char** argv) {
  rcfg::service::EngineOptions options;
  const char* in_path = nullptr;
  const char* out_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--workers") == 0) {
      options.workers = parse_count(argv[0], arg, i + 1 < argc ? argv[++i] : nullptr);
    } else if (std::strcmp(arg, "--queue") == 0) {
      options.queue_capacity = parse_count(argv[0], arg, i + 1 < argc ? argv[++i] : nullptr);
    } else if (std::strcmp(arg, "--no-coalesce") == 0) {
      options.coalesce = false;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
    } else if (arg[0] == '-') {
      usage(argv[0]);
    } else if (in_path == nullptr) {
      in_path = arg;
    } else if (out_path == nullptr) {
      out_path = arg;
    } else {
      usage(argv[0]);
    }
  }

  std::ifstream in_file;
  if (in_path != nullptr) {
    in_file.open(in_path);
    if (!in_file) {
      std::fprintf(stderr, "%s: cannot open '%s'\n", argv[0], in_path);
      return 1;
    }
  }
  std::ofstream out_file;
  if (out_path != nullptr) {
    out_file.open(out_path);
    if (!out_file) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0], out_path);
      return 1;
    }
  }

  rcfg::service::run_jsonl(in_path != nullptr ? in_file : std::cin,
                           out_path != nullptr ? out_file : std::cout, options);
  return 0;
}
