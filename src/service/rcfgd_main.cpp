// rcfgd — the RealConfig verification daemon.
//
// Speaks the service protocol on stdin/stdout, or on files when given as
// positional arguments — so it can be driven interactively, from a pipe, or
// replayed from a transcript:
//
//   $ rcfgd                               # stdin -> stdout
//   $ rcfgd requests.jsonl                # file  -> stdout
//   $ rcfgd requests.jsonl replies.jsonl  # file  -> file
//
// The wire framing (JSON-lines or length-prefixed binary, framing.h) is
// auto-detected from the first input byte by default.
//
// Flags:
//   --workers N         worker threads per engine (default 2)
//   --read-workers N    replica read threads per engine (default 2)
//   --queue N           per-session queue capacity before backpressure
//                       (default 64)
//   --engines N         engines to shard sessions across (default 1)
//   --max-sessions N    deny opens beyond N live sessions (default unlimited)
//   --reject-on-full    answer "backpressure" errors instead of blocking
//                       when a session queue is full
//   --framing auto|jsonl|binary   wire framing (default auto)
//   --no-coalesce       process every propose individually (debugging aid)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "service/cli.h"
#include "service/io.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--read-workers N] [--queue N] [--engines N]\n"
               "       %*s [--max-sessions N] [--reject-on-full] [--framing auto|jsonl|binary]\n"
               "       %*s [--no-coalesce] [in [out]]\n",
               argv0, static_cast<int>(std::strlen(argv0)), "",
               static_cast<int>(std::strlen(argv0)), "");
  std::exit(2);
}

unsigned parse_count(const char* argv0, const char* flag, const char* value) {
  if (value == nullptr) usage(argv0);
  const auto n = rcfg::service::parse_count_arg(value);
  if (!n.has_value()) {
    std::fprintf(stderr, "%s: %s wants a positive integer, got '%s'\n", argv0, flag, value);
    std::exit(2);
  }
  return *n;
}

}  // namespace

int main(int argc, char** argv) {
  rcfg::service::ServiceOptions options;
  const char* in_path = nullptr;
  const char* out_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--workers") == 0) {
      options.engine.workers = parse_count(argv[0], arg, value);
      ++i;
    } else if (std::strcmp(arg, "--read-workers") == 0) {
      options.engine.read_workers = parse_count(argv[0], arg, value);
      ++i;
    } else if (std::strcmp(arg, "--queue") == 0) {
      options.engine.queue_capacity = parse_count(argv[0], arg, value);
      ++i;
    } else if (std::strcmp(arg, "--engines") == 0) {
      options.engines = parse_count(argv[0], arg, value);
      ++i;
    } else if (std::strcmp(arg, "--max-sessions") == 0) {
      options.max_sessions = parse_count(argv[0], arg, value);
      ++i;
    } else if (std::strcmp(arg, "--reject-on-full") == 0) {
      options.engine.reject_on_full = true;
    } else if (std::strcmp(arg, "--framing") == 0) {
      if (value == nullptr) usage(argv[0]);
      const auto framing = rcfg::service::parse_framing_arg(value);
      if (!framing.has_value()) {
        std::fprintf(stderr, "%s: --framing wants auto|jsonl|binary, got '%s'\n", argv[0],
                     value);
        std::exit(2);
      }
      options.framing = *framing;
      ++i;
    } else if (std::strcmp(arg, "--no-coalesce") == 0) {
      options.engine.coalesce = false;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
    } else if (arg[0] == '-') {
      usage(argv[0]);
    } else if (in_path == nullptr) {
      in_path = arg;
    } else if (out_path == nullptr) {
      out_path = arg;
    } else {
      usage(argv[0]);
    }
  }

  std::ifstream in_file;
  if (in_path != nullptr) {
    in_file.open(in_path, std::ios::binary);
    if (!in_file) {
      std::fprintf(stderr, "%s: cannot open '%s'\n", argv[0], in_path);
      return 1;
    }
  }
  std::ofstream out_file;
  if (out_path != nullptr) {
    out_file.open(out_path, std::ios::binary);
    if (!out_file) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0], out_path);
      return 1;
    }
  }

  rcfg::service::run_service(in_path != nullptr ? in_file : std::cin,
                             out_path != nullptr ? out_file : std::cout, options);
  return 0;
}
