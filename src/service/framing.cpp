#include "service/framing.h"

#include <cstring>
#include <istream>
#include <ostream>

namespace rcfg::service {

namespace {

enum : unsigned char {
  kTagNull = 0x00,
  kTagFalse = 0x01,
  kTagTrue = 0x02,
  kTagInt = 0x03,
  kTagDouble = 0x04,
  kTagString = 0x05,
  kTagArray = 0x06,
  kTagObject = 0x07,
};

constexpr std::size_t kMaxDepth = 256;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_sized(std::string& out, std::string_view s, const char* what) {
  if (s.size() > kMaxFrameBytes) {
    throw FramingError(std::string(what) + " too large to encode");
  }
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Bounds-checked cursor over one frame's payload.
struct Reader {
  const char* p;
  const char* end;

  [[noreturn]] static void truncated() { throw FramingError("truncated frame"); }

  unsigned char u8() {
    if (p == end) truncated();
    return static_cast<unsigned char>(*p++);
  }
  std::uint32_t u32() {
    if (end - p < 4) truncated();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    p += 4;
    return v;
  }
  std::uint64_t u64() {
    if (end - p < 8) truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    p += 8;
    return v;
  }
  std::string_view bytes(std::uint32_t n) {
    if (static_cast<std::size_t>(end - p) < n) truncated();
    std::string_view s(p, n);
    p += n;
    return s;
  }
};

json::Value decode_one(Reader& r, std::size_t depth) {
  if (depth > kMaxDepth) throw FramingError("value nested too deeply");
  const unsigned char tag = r.u8();
  switch (tag) {
    case kTagNull: return json::Value();
    case kTagFalse: return json::Value(false);
    case kTagTrue: return json::Value(true);
    case kTagInt: return json::Value(static_cast<std::int64_t>(r.u64()));
    case kTagDouble: {
      const std::uint64_t bits = r.u64();
      double d;
      std::memcpy(&d, &bits, sizeof d);
      return json::Value(d);
    }
    case kTagString: return json::Value(std::string(r.bytes(r.u32())));
    case kTagArray: {
      const std::uint32_t n = r.u32();
      json::Value::Array a;
      // Each element costs >= 1 byte, so the remaining payload bounds the
      // count — a hostile header can't force a huge reserve.
      if (n > static_cast<std::size_t>(r.end - r.p)) Reader::truncated();
      a.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) a.push_back(decode_one(r, depth + 1));
      return json::Value(std::move(a));
    }
    case kTagObject: {
      const std::uint32_t n = r.u32();
      if (n > static_cast<std::size_t>(r.end - r.p)) Reader::truncated();
      json::Value::Object o;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string key(r.bytes(r.u32()));
        o.insert_or_assign(std::move(key), decode_one(r, depth + 1));
      }
      return json::Value(std::move(o));
    }
    default:
      throw FramingError("unknown value tag 0x" + std::to_string(tag));
  }
}

}  // namespace

void encode_value(const json::Value& v, std::string& out) {
  if (v.is_null()) {
    out.push_back(static_cast<char>(kTagNull));
  } else if (v.is_bool()) {
    out.push_back(static_cast<char>(v.as_bool() ? kTagTrue : kTagFalse));
  } else if (v.is_int()) {
    out.push_back(static_cast<char>(kTagInt));
    put_u64(out, static_cast<std::uint64_t>(v.as_int()));
  } else if (v.is_double()) {
    out.push_back(static_cast<char>(kTagDouble));
    const double d = v.as_double();
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    put_u64(out, bits);
  } else if (v.is_string()) {
    out.push_back(static_cast<char>(kTagString));
    put_sized(out, v.as_string(), "string");
  } else if (v.is_array()) {
    const json::Value::Array& a = v.as_array();
    out.push_back(static_cast<char>(kTagArray));
    put_u32(out, static_cast<std::uint32_t>(a.size()));
    for (const json::Value& e : a) encode_value(e, out);
  } else {
    const json::Value::Object& o = v.as_object();
    out.push_back(static_cast<char>(kTagObject));
    put_u32(out, static_cast<std::uint32_t>(o.size()));
    for (const auto& [key, val] : o) {
      put_sized(out, key, "object key");
      encode_value(val, out);
    }
  }
}

json::Value decode_value(std::string_view payload) {
  Reader r{payload.data(), payload.data() + payload.size()};
  json::Value v = decode_one(r, 0);
  if (r.p != r.end) throw FramingError("trailing bytes after value");
  return v;
}

std::string encode_frame(const json::Value& v) {
  std::string payload;
  encode_value(v, payload);
  std::string out;
  out.reserve(payload.size() + 4);
  put_sized(out, payload, "frame");
  return out;
}

void write_magic(std::ostream& out) {
  out.write(reinterpret_cast<const char*>(kFramingMagic), sizeof kFramingMagic);
}

void read_magic(std::istream& in) {
  char buf[4];
  in.read(buf, 4);
  if (in.gcount() != 4 || std::memcmp(buf, kFramingMagic, 4) != 0) {
    throw FramingError("bad stream magic (expected B5 'R' 'C' '1')");
  }
}

bool read_frame(std::istream& in, std::string& payload) {
  char hdr[4];
  in.read(hdr, 4);
  if (in.gcount() == 0) return false;  // clean EOF at a frame boundary
  if (in.gcount() != 4) throw FramingError("truncated frame header");
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(static_cast<unsigned char>(hdr[i])) << (8 * i);
  if (len > kMaxFrameBytes) {
    throw FramingError("frame length " + std::to_string(len) + " exceeds cap");
  }
  payload.resize(len);
  in.read(payload.data(), static_cast<std::streamsize>(len));
  if (static_cast<std::uint32_t>(in.gcount()) != len) throw FramingError("truncated frame payload");
  return true;
}

void write_frame(std::ostream& out, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) throw FramingError("frame too large to write");
  char hdr[4];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) hdr[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  out.write(hdr, 4);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

}  // namespace rcfg::service
