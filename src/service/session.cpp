#include "service/session.h"

#include <stdexcept>
#include <utility>

#include "dd/graph.h"

namespace rcfg::service {

Session::Session(std::string name, topo::Topology topology, config::NetworkConfig initial,
                 SessionOptions options)
    : name_(std::move(name)),
      topo_(std::make_shared<const topo::Topology>(std::move(topology))),
      options_(options) {
  options_.verifier.provenance = options_.trace;
  rc_ = make_verifier_();
  committed_ = std::move(initial);
  baseline_report_ = rc_->apply(committed_);
  if (options_.trace) {
    log_ = std::make_unique<::rcfg::explain::ProvenanceLog>(options_.trace_capacity);
    record_("open", committed_, committed_, baseline_report_);
  }
}

std::unique_ptr<verify::RealConfig> Session::make_verifier_() const {
  auto rc = std::make_unique<verify::RealConfig>(*topo_, options_.verifier);
  if (options_.flush_budget != 0) rc->generator().set_flush_budget(options_.flush_budget);
  if (options_.recurrence_threshold != 0) {
    rc->generator().set_recurrence_threshold(options_.recurrence_threshold);
  }
  return rc;
}

verify::PolicyId Session::register_on_verifier_(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicySpec::Kind::kReachable:
      return rc_->require_reachable(spec.src, spec.dst, spec.prefix);
    case PolicySpec::Kind::kIsolated:
      return rc_->require_isolated(spec.src, spec.dst, spec.prefix);
    case PolicySpec::Kind::kWaypoint:
      return rc_->require_waypoint(spec.src, spec.dst, spec.via, spec.prefix);
  }
  throw std::logic_error("unreachable: bad PolicySpec::Kind");
}

void Session::rebuild_() {
  rc_ = make_verifier_();
  ++generation_;
  ++rebuilds_;
  // The committed baseline converged when it was committed; deterministic
  // re-verification converges again. (If it somehow does not, the throw
  // propagates — the caller sees a hard error, not silent corruption.)
  baseline_report_ = rc_->apply(committed_);
  ids_.clear();
  names_by_id_.clear();
  for (const PolicySpec& spec : specs_) {
    const verify::PolicyId id = register_on_verifier_(spec);
    ids_.emplace(spec.name, id);
    names_by_id_.emplace(id, spec.name);
  }
  if (log_ != nullptr) {
    // The fresh verifier starts a fresh EC id space: older records would
    // name ECs that no longer exist, so the window starts over.
    log_ = std::make_unique<::rcfg::explain::ProvenanceLog>(options_.trace_capacity);
    record_("rebuild", committed_, committed_, baseline_report_);
  }
}

void Session::record_(const char* label, const config::NetworkConfig& old_cfg,
                      const config::NetworkConfig& new_cfg,
                      const verify::RealConfig::Report& report) {
  if (log_ == nullptr) return;
  ::rcfg::explain::BatchRecord rec;
  rec.generation = generation_;
  rec.label = label;
  rec.old_config = old_cfg;
  rec.new_config = new_cfg;
  rec.dataplane = report.dataplane;
  rec.changed_devices = report.changed_devices;
  rec.model = report.model;
  rec.events = report.check.events;
  rec.remap = report.reclaim.remap;
  rec.spans = {report.generate_ms, report.model_ms, report.check_ms};
  log_->record(std::move(rec));
}

ProposeOutcome Session::propose(const config::NetworkConfig& cfg) {
  ProposeOutcome outcome;
  // Copied only when tracing: the record needs the pre-batch config after
  // staged_ has been overwritten.
  config::NetworkConfig old_cfg;
  if (log_ != nullptr) old_cfg = live_();
  try {
    outcome.report = rc_->apply(cfg);
    staged_ = cfg;
    record_("propose", old_cfg, cfg, outcome.report);
    return outcome;
  } catch (const dd::NonterminationError& e) {
    outcome.converged = false;
    outcome.error = e.what();
  }
  // Graceful recovery (paper §6 says "discard and restart"; we do it for
  // the caller): drop the poisoned verifier and any staged proposal, and
  // re-establish the last committed state.
  staged_.reset();
  rebuild_();
  return outcome;
}

void Session::commit() {
  if (!staged_.has_value()) {
    throw std::logic_error("session '" + name_ + "': commit with no staged proposal");
  }
  committed_ = std::move(*staged_);
  staged_.reset();
}

verify::RealConfig::Report Session::abort() {
  if (!staged_.has_value()) {
    throw std::logic_error("session '" + name_ + "': abort with no staged proposal");
  }
  config::NetworkConfig old_cfg;
  if (log_ != nullptr) old_cfg = *staged_;
  staged_.reset();
  // Roll back incrementally: re-applying the committed config re-verifies
  // only what the aborted proposal(s) had touched.
  verify::RealConfig::Report report = rc_->apply(committed_);
  record_("abort", old_cfg, committed_, report);
  return report;
}

bool Session::add_policy(const PolicySpec& spec) {
  if (spec.name.empty()) throw std::invalid_argument("policy name must be non-empty");
  if (ids_.count(spec.name) != 0) {
    throw std::invalid_argument("duplicate policy name: " + spec.name);
  }
  const verify::PolicyId id = register_on_verifier_(spec);  // throws on bad node
  specs_.push_back(spec);
  ids_.emplace(spec.name, id);
  names_by_id_.emplace(id, spec.name);
  return rc_->checker().policy_satisfied(id);
}

bool Session::policy_satisfied(const std::string& name) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) throw std::invalid_argument("unknown policy: " + name);
  return rc_->checker().policy_satisfied(it->second);
}

std::string Session::policy_name(verify::PolicyId id) const {
  const auto it = names_by_id_.find(id);
  return it == names_by_id_.end() ? std::string() : it->second;
}

verify::FailureSweepResult Session::sweep(const verify::FailureSweepOptions& options) {
  return verify::sweep_failures(*rc_, live_(), options);
}

relate::RelationalResult Session::relate(const config::NetworkConfig& proposed,
                                         const std::vector<relate::RelationalSpec>& specs,
                                         bool witnesses) {
  relate::RelationalChecker checker(*rc_);
  return checker.check(proposed, specs, witnesses);
}

relate::OrderResult Session::order(const std::vector<relate::UpdateStep>& steps,
                                   const relate::OrderOptions& options) {
  relate::UpdateOrderSynthesizer synth(*rc_, live_());
  return synth.synthesize(steps, options);
}

std::unique_ptr<Session> Session::fork_replica() const {
  std::unique_ptr<Session> r(new Session());
  r->name_ = name_;
  r->topo_ = topo_;  // immutable, shared: both verifiers reference it
  r->options_ = options_;
  // fork() preserves EC ids and pins threads=1 — replica reads are cheap
  // and many replicas share one machine.
  r->rc_ = rc_->fork(*rc_->snapshot());
  r->baseline_report_ = baseline_report_;
  r->committed_ = committed_;
  r->staged_ = staged_;
  r->specs_ = specs_;
  r->ids_ = ids_;
  r->names_by_id_ = names_by_id_;
  if (log_ != nullptr) r->log_ = std::make_unique<::rcfg::explain::ProvenanceLog>(*log_);
  r->rebuilds_ = rebuilds_;
  r->generation_ = generation_;
  return r;
}

void Session::apply_replica_delta(const ReplicaDelta& delta) {
  switch (delta.kind) {
    case ReplicaDelta::Kind::kNoop:
    case ReplicaDelta::Kind::kResync:  // the lane swaps sessions; nothing to do here
      return;
    case ReplicaDelta::Kind::kApply: {
      // Deterministic replay of the primary's apply. The primary already
      // converged on this input, reclamation did not fire (that would have
      // been a kResync), so neither happens here either.
      rc_->apply(*delta.config);
      if (delta.staged_after) {
        staged_ = *delta.config;
      } else {
        staged_.reset();
      }
      if (log_ != nullptr && delta.record != nullptr) {
        // The primary's record verbatim (modulo the log-assigned seq, which
        // advances in lockstep): spans carry the primary's timings.
        log_->record(*delta.record);
      }
      return;
    }
    case ReplicaDelta::Kind::kCommit:
      if (!staged_.has_value()) {
        throw std::logic_error("replica '" + name_ + "': commit delta with no staged config");
      }
      committed_ = std::move(*staged_);
      staged_.reset();
      return;
    case ReplicaDelta::Kind::kAddPolicy:
      add_policy(*delta.policy);
      return;
  }
}

Session::ExplainResult Session::explain(const std::string& policy_name) const {
  std::string resolved = policy_name;
  if (resolved.empty()) {
    // Newest verdict-flip-to-false still in the provenance window. The
    // window never spans a rebuild, so its PolicyIds are current.
    if (log_ != nullptr) {
      for (std::size_t i = 0; i < log_->size() && resolved.empty(); ++i) {
        for (const verify::PolicyEvent& e : log_->newest(i).events) {
          if (!e.satisfied) {
            const auto it = names_by_id_.find(e.id);
            if (it != names_by_id_.end()) {
              resolved = it->second;
              break;
            }
          }
        }
      }
    }
    // Fallback: any currently violated policy.
    if (resolved.empty()) {
      for (const PolicySpec& spec : specs_) {
        if (!policy_satisfied(spec.name)) {
          resolved = spec.name;
          break;
        }
      }
    }
    if (resolved.empty()) {
      throw std::invalid_argument("nothing to explain: no policy is violated");
    }
  }
  const auto it = ids_.find(resolved);
  if (it == ids_.end()) throw std::invalid_argument("unknown policy: " + resolved);
  ExplainResult result;
  result.policy = resolved;
  result.explanation = ::rcfg::explain::explain_policy(*rc_, it->second, log_.get());
  return result;
}

}  // namespace rcfg::service
