#include "service/session.h"

#include <stdexcept>
#include <utility>

#include "dd/graph.h"

namespace rcfg::service {

Session::Session(std::string name, topo::Topology topology, config::NetworkConfig initial,
                 SessionOptions options)
    : name_(std::move(name)),
      topo_(std::move(topology)),
      options_(options),
      rc_(make_verifier_()),
      committed_(std::move(initial)) {
  baseline_report_ = rc_->apply(committed_);
}

std::unique_ptr<verify::RealConfig> Session::make_verifier_() const {
  auto rc = std::make_unique<verify::RealConfig>(topo_, options_.verifier);
  if (options_.flush_budget != 0) rc->generator().set_flush_budget(options_.flush_budget);
  if (options_.recurrence_threshold != 0) {
    rc->generator().set_recurrence_threshold(options_.recurrence_threshold);
  }
  return rc;
}

verify::PolicyId Session::register_on_verifier_(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicySpec::Kind::kReachable:
      return rc_->require_reachable(spec.src, spec.dst, spec.prefix);
    case PolicySpec::Kind::kIsolated:
      return rc_->require_isolated(spec.src, spec.dst, spec.prefix);
    case PolicySpec::Kind::kWaypoint:
      return rc_->require_waypoint(spec.src, spec.dst, spec.via, spec.prefix);
  }
  throw std::logic_error("unreachable: bad PolicySpec::Kind");
}

void Session::rebuild_() {
  rc_ = make_verifier_();
  ++generation_;
  ++rebuilds_;
  // The committed baseline converged when it was committed; deterministic
  // re-verification converges again. (If it somehow does not, the throw
  // propagates — the caller sees a hard error, not silent corruption.)
  baseline_report_ = rc_->apply(committed_);
  ids_.clear();
  names_by_id_.clear();
  for (const PolicySpec& spec : specs_) {
    const verify::PolicyId id = register_on_verifier_(spec);
    ids_.emplace(spec.name, id);
    names_by_id_.emplace(id, spec.name);
  }
}

ProposeOutcome Session::propose(const config::NetworkConfig& cfg) {
  ProposeOutcome outcome;
  try {
    outcome.report = rc_->apply(cfg);
    staged_ = cfg;
    return outcome;
  } catch (const dd::NonterminationError& e) {
    outcome.converged = false;
    outcome.error = e.what();
  }
  // Graceful recovery (paper §6 says "discard and restart"; we do it for
  // the caller): drop the poisoned verifier and any staged proposal, and
  // re-establish the last committed state.
  staged_.reset();
  rebuild_();
  return outcome;
}

void Session::commit() {
  if (!staged_.has_value()) {
    throw std::logic_error("session '" + name_ + "': commit with no staged proposal");
  }
  committed_ = std::move(*staged_);
  staged_.reset();
}

verify::RealConfig::Report Session::abort() {
  if (!staged_.has_value()) {
    throw std::logic_error("session '" + name_ + "': abort with no staged proposal");
  }
  staged_.reset();
  // Roll back incrementally: re-applying the committed config re-verifies
  // only what the aborted proposal(s) had touched.
  return rc_->apply(committed_);
}

bool Session::add_policy(const PolicySpec& spec) {
  if (spec.name.empty()) throw std::invalid_argument("policy name must be non-empty");
  if (ids_.count(spec.name) != 0) {
    throw std::invalid_argument("duplicate policy name: " + spec.name);
  }
  const verify::PolicyId id = register_on_verifier_(spec);  // throws on bad node
  specs_.push_back(spec);
  ids_.emplace(spec.name, id);
  names_by_id_.emplace(id, spec.name);
  return rc_->checker().policy_satisfied(id);
}

bool Session::policy_satisfied(const std::string& name) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) throw std::invalid_argument("unknown policy: " + name);
  return rc_->checker().policy_satisfied(it->second);
}

std::string Session::policy_name(verify::PolicyId id) const {
  const auto it = names_by_id_.find(id);
  return it == names_by_id_.end() ? std::string() : it->second;
}

}  // namespace rcfg::service
