#pragma once

// Session sharding across a pool of Engines, with admission control.
//
// Each session name hashes (FNV-1a) to one engine, so a session's requests
// keep their per-session FIFO order while unrelated sessions spread across
// engines — each with its own worker pools, lock, and slot map. This is the
// horizontal axis: one Engine's mutex and condition variables eventually
// serialize tens of thousands of sessions; E engines cut that contention by
// E with no cross-engine coordination (sessions never interact).
//
// Admission control: with max_sessions > 0, an `open` that would exceed the
// pool-wide live-session count is answered immediately with an explicit
// "admission denied" error instead of consuming memory. The count is taken
// under no global lock (it sums per-engine counts), so a burst of racing
// opens can transiently overshoot by the number of in-flight opens — a
// deliberate trade: admission is a resource guard, not a mutex.
//
// `stats` drains every engine and answers one merged body:
//   {"engines":[<per-engine stats_json>...],"pool":{...}}.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "service/engine.h"

namespace rcfg::service {

struct PoolOptions {
  EngineOptions engine;       ///< applied to every engine in the pool
  unsigned engines = 1;
  std::size_t max_sessions = 0;  ///< 0 = unlimited; else opens beyond are denied
};

class EnginePool {
 public:
  explicit EnginePool(PoolOptions options = {});

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  /// Routes to the session's engine (kStats answers the merged pool body).
  void submit(Request req, Engine::Callback callback);
  Response call(Request req);

  /// Block until every request submitted so far, on every engine, is done.
  void drain();
  void pause();
  void resume();

  std::size_t size() const { return engines_.size(); }
  Engine& engine(std::size_t i) { return *engines_[i]; }
  /// The engine that owns `session` under the sharding function.
  Engine& engine_for(const std::string& session) { return *engines_[shard_(session)]; }

  std::size_t session_count() const;
  std::uint64_t admission_denials() const {
    return denials_.load(std::memory_order_relaxed);
  }

  /// The merged `stats` body (drains first, like Engine::submit on kStats).
  json::Value stats_json();

 private:
  std::size_t shard_(const std::string& session) const;

  PoolOptions options_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::atomic<std::uint64_t> denials_{0};
};

}  // namespace rcfg::service
