#pragma once

// The concurrent verification engine: N worker threads serving many
// Sessions, each session fed by a bounded FIFO request queue.
//
//   * Isolation / concurrency — a session is processed by at most one
//     worker at a time (Sessions are single-threaded by contract), while
//     distinct sessions verify fully in parallel.
//   * Batching — a worker claims a session's *entire* pending queue at
//     once. Within that batch, a run of consecutive `propose` requests is
//     coalesced: only the last configuration is verified (earlier ones are
//     answered "coalesced"), so a burst of changes becomes one incremental
//     apply() whose input delta is the whole burst — the service layer is
//     what turns an update stream into the paper's §4 batch mode.
//   * Backpressure — submit() blocks while the target session's queue is at
//     queue_capacity, bounding memory under overload.
//   * Recovery — nonterminating proposals are absorbed by Session (the
//     verifier rebuilds from the last committed config); the engine just
//     reports the structured outcome and counts the recovery.
//
// Callbacks run on whichever thread produced the response: a worker thread
// for queued requests, the submitting thread for immediate errors and
// `stats`. `stats` first waits for all previously submitted requests to
// finish, so its numbers describe a quiescent engine.

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "service/metrics.h"
#include "service/protocol.h"
#include "service/session.h"

namespace rcfg::service {

struct EngineOptions {
  unsigned workers = 2;
  std::size_t queue_capacity = 64;  ///< per-session; submit() blocks beyond
  bool coalesce = true;             ///< batch consecutive proposes
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Finishes every queued request, then stops the workers.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  using Callback = std::function<void(Response)>;

  /// Enqueue a request; the callback receives exactly one Response. Blocks
  /// while the session's queue is full (backpressure). Requests that cannot
  /// be routed (unknown session, duplicate open) are answered with an error
  /// on the calling thread.
  void submit(Request req, Callback callback);

  /// Synchronous convenience: submit + wait for the response.
  Response call(Request req);

  /// Block until every request submitted so far has been processed.
  void drain();

  /// Gate worker dispatch: while paused, workers finish their current batch
  /// but claim no new one, so submitted requests pile up in the session
  /// queues (deterministic batches in tests; quiesce in operations).
  void pause();
  void resume();

  ServiceMetrics& metrics() { return metrics_; }
  std::size_t session_count() const;

  /// {"metrics": ..., "sessions": [...]} — the body of a `stats` response.
  json::Value stats_json() const;

 private:
  struct Pending {
    Request req;
    Callback callback;
  };
  struct Slot {
    std::unique_ptr<Session> session;  ///< null until `open` has been processed
    std::deque<Pending> queue;
    bool busy = false;   ///< a worker is processing this session
    bool ready = false;  ///< queued in ready_
    /// High-water mark of the session's cumulative unknown-unregister
    /// count already folded into the service counter (the session's value
    /// resets on rebuild, so deltas are clamped at zero).
    std::uint64_t unknown_unregisters_seen = 0;
  };

  void worker_loop_();
  void process_batch_(Slot& slot, std::vector<Pending> batch);
  Response handle_(Slot& slot, const Request& req);
  Response handle_open_(Slot& slot, const Request& req);
  void record_report_(Slot& slot, const verify::RealConfig::Report& report);

  EngineOptions options_;
  ServiceMetrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: ready_ / stop / resume
  std::condition_variable space_cv_;  ///< submitters: queue has room again
  std::condition_variable idle_cv_;   ///< drain(): engine went quiescent
  std::map<std::string, Slot> slots_;
  std::deque<std::string> ready_;     ///< sessions with pending, unclaimed work
  unsigned active_workers_ = 0;
  bool paused_ = false;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

/// Drive an Engine from a JSON-lines stream: one request per line (blank
/// lines and lines starting with '#' are skipped), one response per line on
/// `out` in completion order (per-session FIFO). Returns after EOF once all
/// requests have been answered. This is rcfgd's whole main loop — tests and
/// examples call it directly on string streams.
///
/// The comment directives "#pause" / "#resume" gate worker dispatch (see
/// Engine::pause), so a transcript can deterministically force a run of
/// requests into one coalesced batch.
void run_jsonl(std::istream& in, std::ostream& out, const EngineOptions& options = {});

}  // namespace rcfg::service
