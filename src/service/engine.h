#pragma once

// The concurrent verification engine: N worker threads serving many
// Sessions, each session fed by a bounded FIFO request queue.
//
//   * Isolation / concurrency — a session is processed by at most one
//     worker at a time (Sessions are single-threaded by contract), while
//     distinct sessions verify fully in parallel.
//   * Batching — a worker claims a session's *entire* pending queue at
//     once. Within that batch, a run of consecutive `propose` requests is
//     coalesced: only the last configuration is verified (earlier ones are
//     answered "coalesced"), so a burst of changes becomes one incremental
//     apply() whose input delta is the whole burst — the service layer is
//     what turns an update stream into the paper's §4 batch mode.
//   * Backpressure — submit() blocks while the target session's queue is at
//     queue_capacity, bounding memory under overload. With
//     `reject_on_full`, a full queue instead answers immediately with an
//     explicit "backpressure" error, so callers can shed load rather than
//     stall (the EnginePool's admission control composes with this).
//   * Recovery — nonterminating proposals are absorbed by Session (the
//     verifier rebuilds from the last committed config); the engine just
//     reports the structured outcome and counts the recovery.
//
// Read replicas (sessions opened with "replicas":N > 0):
//
//   The slot keeps the primary Session plus N replica *lanes*, each a full
//   fork of the session (Session::fork_replica). Read verbs — query,
//   explain, relate without "primary":true — are routed to a lane and
//   processed by a dedicated read-worker pool, so a read never queues
//   behind an in-flight verification, on either the session's FIFO or the
//   write workers. Routing is fence-aware: round-robin across the lanes
//   already at the read's fence (the read is answerable with no replay);
//   when none is, the freshest lane, so catch-up work concentrates on one
//   lane instead of being paid by all of them. Mutations stay on the
//   primary; after the primary acknowledges each request it advances the
//   session's epoch and enqueues one ReplicaDelta per lane (kNoop for
//   non-mutating verbs). A lane whose backlog reaches lane_resync_backlog
//   is squashed: the backlog is replaced by one snapshot resync, so a
//   lagging lane costs a fork per backlog rather than a replay per
//   mutation.
//
//   Consistency — read-your-acknowledged-writes: a read is fenced at the
//   epoch of the latest *acknowledged* mutation at submit time, and a lane
//   answers it only after consuming deltas up to that fence. Reads never
//   wait for in-flight proposes (that would reintroduce the head-of-line
//   blocking replicas exist to remove), and lanes replay the identical
//   apply stream, so their answers are bit-identical to the primary's at
//   the same epoch. Where incremental replay cannot preserve EC ids —
//   rebuilds, reclamation merges, backend migrations — the primary streams
//   a snapshot resync (a fresh fork) instead. See DESIGN.md.
//
// Callbacks run on whichever thread produced the response: a worker thread
// for queued requests, the submitting thread for immediate errors and
// `stats`. `stats` first waits for all previously submitted requests to
// finish, so its numbers describe a quiescent engine.

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "service/metrics.h"
#include "service/protocol.h"
#include "service/session.h"

namespace rcfg::service {

struct EngineOptions {
  unsigned workers = 2;
  /// Dedicated pool for replica-lane reads; only exercised by sessions
  /// opened with replicas. Kept separate from `workers` so reads are never
  /// starved of a thread by long verifications.
  unsigned read_workers = 2;
  std::size_t queue_capacity = 64;  ///< per-session; submit() blocks beyond
  bool coalesce = true;             ///< batch consecutive proposes
  /// Answer "backpressure: session queue full" instead of blocking the
  /// submitter when a queue is at capacity.
  bool reject_on_full = false;
  /// Collapse a replica lane's pending-delta backlog into one snapshot
  /// resync once it reaches this many deltas (0 = never). Under write
  /// saturation a lane that cannot keep up would otherwise replay every
  /// mutation — N lanes multiply verification work N-fold; squashing caps a
  /// lagging lane's cost at one fork per `lane_resync_backlog` mutations
  /// and bounds its backlog memory.
  std::size_t lane_resync_backlog = 8;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Finishes every queued request, then stops the workers.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  using Callback = std::function<void(Response)>;

  /// Enqueue a request; the callback receives exactly one Response. Blocks
  /// while the session's queue is full (backpressure), unless
  /// reject_on_full. Requests that cannot be routed (unknown session,
  /// duplicate open) are answered with an error on the calling thread.
  void submit(Request req, Callback callback);

  /// Synchronous convenience: submit + wait for the response.
  Response call(Request req);

  /// Block until every request submitted so far has been processed.
  void drain();

  /// Gate worker dispatch: while paused, workers finish their current batch
  /// but claim no new one, so submitted requests pile up in the session
  /// queues (deterministic batches in tests; quiesce in operations).
  void pause();
  void resume();

  ServiceMetrics& metrics() { return metrics_; }
  std::size_t session_count() const;

  /// {"metrics": ..., "sessions": [...]} — the body of a `stats` response.
  json::Value stats_json() const;

 private:
  struct Pending {
    Request req;
    Callback callback;
    /// Replica-lane reads only: the session epoch this read must observe
    /// (the acknowledged-mutation count at submit time).
    std::uint64_t fence = 0;
  };

  /// One read replica: a forked Session, its fenced read queue, and the
  /// delta backlog the primary has streamed but the lane has not consumed.
  struct ReplicaLane {
    std::unique_ptr<Session> replica;
    std::deque<Pending> queue;
    std::deque<ReplicaDelta> deltas;
    std::uint64_t epoch = 0;  ///< deltas consumed up to here
    bool busy = false;
    bool ready = false;  ///< queued in read_ready_
    /// Delta replay threw (cannot happen when primary and fork agree; this
    /// is the containment path): the lane stops serving, queued reads fall
    /// back to the primary.
    bool broken = false;
  };

  struct Slot {
    std::unique_ptr<Session> session;  ///< null until `open` has been processed
    /// Mirror of `session != nullptr` for threads that don't own the slot.
    /// `session` itself is assigned by the owning worker outside `mu_`, so
    /// submit/session_count must read this flag (written under `mu_` in
    /// acknowledge_, before the open's callback fires) instead.
    bool has_session = false;
    std::deque<Pending> queue;
    bool busy = false;   ///< a worker is processing this session
    bool ready = false;  ///< queued in ready_
    /// High-water mark of the session's cumulative unknown-unregister
    /// count already folded into the service counter (the session's value
    /// resets on rebuild, so deltas are clamped at zero).
    std::uint64_t unknown_unregisters_seen = 0;

    std::vector<std::unique_ptr<ReplicaLane>> lanes;  ///< empty without replicas
    std::uint64_t processed_epoch = 0;  ///< mutations acknowledged by the primary
    std::size_t next_lane = 0;          ///< round-robin read routing cursor
  };

  /// What a handled request must stream to the session's replica lanes
  /// (always exactly one delta per lane — kNoop when nothing changed — so
  /// the epoch advances uniformly and fences never deadlock).
  struct ReplicaEffect {
    ReplicaDelta::Kind kind = ReplicaDelta::Kind::kNoop;
    std::shared_ptr<const config::NetworkConfig> config;
    bool staged_after = false;
    std::shared_ptr<const PolicySpec> policy;
    std::shared_ptr<const ::rcfg::explain::BatchRecord> record;
    unsigned install_lanes = 0;  ///< open only: fork this many lanes
  };

  void worker_loop_();
  void read_worker_loop_();
  void process_batch_(Slot& slot, std::vector<Pending> batch);
  Response handle_(Slot& slot, const Request& req, ReplicaEffect& effect);
  Response handle_open_(Slot& slot, const Request& req, ReplicaEffect& effect);
  /// The read-only verbs (query/explain/relate), runnable against either
  /// the primary or a replica Session.
  Response handle_read_(const std::string& session_name, Session& session,
                        const Request& req);
  void record_report_(Slot& slot, const verify::RealConfig::Report& report);
  /// Advance the slot's epoch and stream `effect` to every lane (plus lane
  /// installation / resync forks). Called by the primary worker after each
  /// request, before the callback fires.
  void acknowledge_(Slot& slot, ReplicaEffect effect);
  /// True if a read worker could make progress on the lane right now.
  static bool lane_claimable_(const ReplicaLane& lane);
  void enqueue_lane_(const std::string& name, Slot& slot, std::size_t index);

  EngineOptions options_;
  ServiceMetrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< write workers: ready_ / stop / resume
  std::condition_variable read_cv_;   ///< read workers: read_ready_ / stop / resume
  std::condition_variable space_cv_;  ///< submitters: queue has room again
  std::condition_variable idle_cv_;   ///< drain(): engine went quiescent
  std::map<std::string, Slot> slots_;
  std::deque<std::string> ready_;     ///< sessions with pending, unclaimed work
  std::deque<std::pair<std::string, std::size_t>> read_ready_;  ///< (session, lane)
  unsigned active_workers_ = 0;       ///< both pools
  bool paused_ = false;
  bool stop_ = false;

  std::vector<std::thread> workers_;
  std::vector<std::thread> read_workers_;
};

/// Drive an Engine from a JSON-lines stream: one request per line (blank
/// lines and lines starting with '#' are skipped), one response per line on
/// `out` in completion order (per-session FIFO). Returns after EOF once all
/// requests have been answered. Tests and examples call it directly on
/// string streams; rcfgd's main loop is the framing-aware superset
/// run_service (io.h), of which this is the framing=jsonl special case.
///
/// The comment directives "#pause" / "#resume" gate worker dispatch (see
/// Engine::pause), so a transcript can deterministically force a run of
/// requests into one coalesced batch.
void run_jsonl(std::istream& in, std::ostream& out, const EngineOptions& options = {});

}  // namespace rcfg::service
