#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rcfg::service::json {

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

namespace {
[[noreturn]] void wrong_kind(const char* wanted) {
  throw TypeError(std::string("json value is not ") + wanted);
}
}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  wrong_kind("a bool");
}

std::int64_t Value::as_int() const {
  if (const std::int64_t* n = std::get_if<std::int64_t>(&v_)) return *n;
  if (const double* d = std::get_if<double>(&v_)) {
    if (*d == std::floor(*d) && std::abs(*d) < 9.0e18) return static_cast<std::int64_t>(*d);
  }
  wrong_kind("an integer");
}

double Value::as_double() const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  if (const std::int64_t* n = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*n);
  wrong_kind("a number");
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
  wrong_kind("a string");
}

const Value::Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&v_)) return *a;
  wrong_kind("an array");
}

Value::Array& Value::as_array() {
  if (Array* a = std::get_if<Array>(&v_)) return *a;
  wrong_kind("an array");
}

const Value::Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&v_)) return *o;
  wrong_kind("an object");
}

Value::Object& Value::as_object() {
  if (Object* o = std::get_if<Object>(&v_)) return *o;
  wrong_kind("an object");
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) v_ = Object{};
  return as_object()[key];
}

const Value* Value::find(std::string_view key) const {
  const Object* o = std::get_if<Object>(&v_);
  if (o == nullptr) return nullptr;
  const auto it = o->find(std::string(key));
  return it == o->end() ? nullptr : &it->second;
}

std::string Value::get_string(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return v == nullptr || v->is_null() ? std::move(fallback) : v->as_string();
}

std::int64_t Value::get_int(std::string_view key, std::int64_t fallback) const {
  const Value* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_int();
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_bool();
}

void Value::push_back(Value v) {
  if (is_null()) v_ = Array{};
  as_array().push_back(std::move(v));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void dump_to(const Value& v, std::string& out);

void dump_number(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; null is the least-surprising stand-in
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.15g", d);
  if (std::strtod(buf, nullptr) != d) std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
  // An integer-valued double printed by "%g" has no '.' or exponent and would
  // parse back as an int; keep the kind stable across a dump/parse round-trip.
  if (std::strcspn(buf, ".eE") == std::strlen(buf)) out += ".0";
}

void dump_to(const Value& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    dump_number(v.as_double(), out);
  } else if (v.is_string()) {
    out += quote(v.as_string());
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const Value& e : v.as_array()) {
      if (!first) out += ',';
      first = false;
      dump_to(e, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out += ',';
      first = false;
      out += quote(k);
      out += ':';
      dump_to(e, out);
    }
    out += '}';
  }
}

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) { throw ParseError(pos_, message); }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char sep = next();
      if (sep == '}') return Value(std::move(obj));
      if (sep != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char sep = next();
      if (sep == ']') return Value(std::move(arr));
      if (sep != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(parse_unicode_escape(), out); break;
        default: --pos_; fail("invalid escape");
      }
    }
  }

  /// One \uXXXX escape, already past the "\u". High surrogates must be
  /// followed by a \uXXXX low surrogate (combined into one code point, RFC
  /// 8259 §7); unpaired surrogates in either position are malformed.
  unsigned parse_unicode_escape() {
    const unsigned units = parse_hex4();
    if (units >= 0xDC00 && units <= 0xDFFF) fail("lone low surrogate in \\u escape");
    if (units < 0xD800 || units > 0xDBFF) return units;
    if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
      fail("high surrogate not followed by \\u low surrogate");
    }
    pos_ += 2;
    const unsigned low = parse_hex4();
    if (low < 0xDC00 || low > 0xDFFF) fail("high surrogate followed by a non-low surrogate");
    return 0x10000 + ((units - 0xD800) << 10) + (low - 0xDC00);
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape");
      }
    }
    return v;
  }

  static void append_utf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      const long long n = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno == 0) {
        return Value(static_cast<std::int64_t>(n));
      }
      // fall through to double on int64 overflow
    }
    char* end = nullptr;
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace rcfg::service::json
