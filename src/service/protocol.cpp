#include "service/protocol.h"

#include <limits>

#include "topo/generators.h"

namespace rcfg::service {

const char* verb_name(Verb v) {
  switch (v) {
    case Verb::kOpen: return "open";
    case Verb::kPropose: return "propose";
    case Verb::kCommit: return "commit";
    case Verb::kAbort: return "abort";
    case Verb::kAddPolicy: return "add_policy";
    case Verb::kQuery: return "query";
    case Verb::kExplain: return "explain";
    case Verb::kSweep: return "sweep";
    case Verb::kRelate: return "relate";
    case Verb::kOrder: return "order";
    case Verb::kStats: return "stats";
  }
  return "?";
}

namespace {

Verb parse_verb(const std::string& op) {
  if (op == "open") return Verb::kOpen;
  if (op == "propose") return Verb::kPropose;
  if (op == "commit") return Verb::kCommit;
  if (op == "abort") return Verb::kAbort;
  if (op == "add_policy") return Verb::kAddPolicy;
  if (op == "query") return Verb::kQuery;
  if (op == "explain") return Verb::kExplain;
  if (op == "sweep") return Verb::kSweep;
  if (op == "relate") return Verb::kRelate;
  if (op == "order") return Verb::kOrder;
  if (op == "stats") return Verb::kStats;
  throw ProtocolError("unknown op: '" + op + "'");
}

unsigned get_unsigned(const json::Value& obj, std::string_view key, unsigned fallback = 0) {
  const std::int64_t v = obj.get_int(key, fallback);
  if (v < 0) throw ProtocolError("'" + std::string(key) + "' must be >= 0");
  return static_cast<unsigned>(v);
}

TopologySpec parse_topology(const json::Value& v) {
  TopologySpec spec;
  spec.kind = v.get_string("kind");
  if (spec.kind.empty()) throw ProtocolError("topology needs a 'kind'");
  spec.k = get_unsigned(v, "k", get_unsigned(v, "n"));
  spec.w = get_unsigned(v, "w");
  spec.h = get_unsigned(v, "h");
  return spec;
}

net::Ipv4Prefix parse_prefix(const std::string& text) {
  const auto p = net::Ipv4Prefix::parse(text);
  if (!p.has_value()) throw ProtocolError("invalid prefix: '" + text + "'");
  return *p;
}

PolicySpec parse_policy(const json::Value& v) {
  PolicySpec spec;
  const std::string kind = v.get_string("kind", "reachable");
  if (kind == "reachable") {
    spec.kind = PolicySpec::Kind::kReachable;
  } else if (kind == "isolated") {
    spec.kind = PolicySpec::Kind::kIsolated;
  } else if (kind == "waypoint") {
    spec.kind = PolicySpec::Kind::kWaypoint;
  } else {
    throw ProtocolError("unknown policy kind: '" + kind + "'");
  }
  spec.name = v.get_string("name");
  spec.src = v.get_string("src");
  spec.dst = v.get_string("dst");
  spec.via = v.get_string("via");
  if (spec.name.empty() || spec.src.empty() || spec.dst.empty()) {
    throw ProtocolError("policy needs 'name', 'src' and 'dst'");
  }
  if (spec.kind == PolicySpec::Kind::kWaypoint && spec.via.empty()) {
    throw ProtocolError("waypoint policy needs 'via'");
  }
  spec.prefix = parse_prefix(v.get_string("prefix", "0.0.0.0/0"));
  return spec;
}

SessionOptions parse_options(const json::Value& doc) {
  SessionOptions opts;
  const unsigned rounds = get_unsigned(doc, "max_rounds");
  if (rounds != 0) opts.verifier.generator.max_rounds = rounds;
  const unsigned threads = get_unsigned(doc, "threads");
  if (threads != 0) opts.verifier.threads = threads;
  opts.flush_budget = static_cast<std::uint64_t>(doc.get_int("flush_budget", 0));
  opts.recurrence_threshold =
      static_cast<std::uint64_t>(doc.get_int("recurrence_threshold", 0));
  opts.trace = doc.get_bool("trace", false);
  opts.replicas = get_unsigned(doc, "replicas");
  if (opts.replicas > kMaxReplicas) {
    throw ProtocolError("'replicas' must be <= " + std::to_string(kMaxReplicas));
  }
  opts.verifier.reclamation.enabled = doc.get_bool("reclaim", false);
  opts.verifier.reclamation.ec_watermark =
      static_cast<std::size_t>(doc.get_int("ec_watermark", 0));
  opts.verifier.reclamation.bdd_watermark =
      static_cast<std::size_t>(doc.get_int("bdd_watermark", 0));
  const std::string order = doc.get_string("update_order");
  if (order == "insert_first" || order.empty()) {
    opts.verifier.update_order = dpm::UpdateOrder::kInsertFirst;
  } else if (order == "delete_first") {
    opts.verifier.update_order = dpm::UpdateOrder::kDeleteFirst;
  } else if (order == "interleaved") {
    opts.verifier.update_order = dpm::UpdateOrder::kInterleaved;
  } else {
    throw ProtocolError("unknown update_order: '" + order + "'");
  }
  const std::string backend = doc.get_string("packet_space");
  if (!backend.empty()) {
    const auto kind = dpm::backend_kind_of(backend);
    if (!kind) {
      throw ProtocolError("unknown packet_space: '" + backend +
                          "' (expected auto | bdd | interval)");
    }
    opts.verifier.packet_space = *kind;
  }
  return opts;
}

RelateSpec parse_relate(const json::Value& doc) {
  RelateSpec spec;
  if (const json::Value* specs = doc.find("specs"); specs != nullptr) {
    if (!specs->is_array()) throw ProtocolError("'specs' must be an array");
    for (const json::Value& s : specs->as_array()) {
      if (!s.is_object()) throw ProtocolError("relate spec must be an object");
      relate::RelationalSpec rs;
      const std::string kind = s.get_string("kind");
      if (kind.empty()) throw ProtocolError("relate spec needs a 'kind'");
      try {
        rs.kind = relate::spec_kind_of(kind);
      } catch (const std::invalid_argument& e) {
        throw ProtocolError(e.what());
      }
      rs.name = s.get_string("name");
      if (const json::Value* prefixes = s.find("prefixes"); prefixes != nullptr) {
        if (!prefixes->is_array()) {
          throw ProtocolError("'prefixes' must be an array of CIDR strings");
        }
        for (const json::Value& p : prefixes->as_array()) {
          if (!p.is_string()) {
            throw ProtocolError("'prefixes' must be an array of CIDR strings");
          }
          rs.prefixes.push_back(parse_prefix(p.as_string()));
        }
      }
      if (rs.kind == relate::RelationalSpec::Kind::kNone) {
        if (!rs.prefixes.empty()) {
          throw ProtocolError("spec kind 'none' takes no 'prefixes'");
        }
      } else if (rs.prefixes.empty()) {
        throw ProtocolError(std::string("spec kind '") + relate::to_string(rs.kind) +
                            "' needs a non-empty 'prefixes'");
      }
      spec.specs.push_back(std::move(rs));
    }
  }
  spec.witnesses = doc.get_bool("witnesses", true);
  spec.detail = doc.get_bool("detail", false);
  return spec;
}

OrderSpec parse_order(const json::Value& doc) {
  OrderSpec spec;
  const json::Value* steps = doc.find("steps");
  if (steps == nullptr || !steps->is_array() || steps->as_array().empty()) {
    throw ProtocolError("order needs a non-empty 'steps' array");
  }
  for (const json::Value& s : steps->as_array()) {
    if (!s.is_object()) throw ProtocolError("order step must be an object");
    OrderStepSpec step;
    step.name = s.get_string("name");
    if (step.name.empty()) throw ProtocolError("order step needs a 'name'");
    step.config_text = s.get_string("config");
    if (step.config_text.empty()) {
      throw ProtocolError("order step '" + step.name + "' needs a 'config'");
    }
    for (const OrderStepSpec& earlier : spec.steps) {
      if (earlier.name == step.name) {
        throw ProtocolError("duplicate order step name '" + step.name + "'");
      }
    }
    spec.steps.push_back(std::move(step));
  }
  spec.max_blocking = get_unsigned(doc, "max_blocking", 2);
  spec.detail = doc.get_bool("detail", false);
  return spec;
}

}  // namespace

topo::Topology build_topology(const TopologySpec& spec) {
  if (spec.kind == "fat_tree") {
    if (spec.k < 2 || spec.k % 2 != 0) throw ProtocolError("fat_tree needs even k >= 2");
    return topo::make_fat_tree(spec.k);
  }
  if (spec.kind == "ring") {
    if (spec.k < 3) throw ProtocolError("ring needs n >= 3");
    return topo::make_ring(spec.k);
  }
  if (spec.kind == "full_mesh") {
    if (spec.k < 2) throw ProtocolError("full_mesh needs n >= 2");
    return topo::make_full_mesh(spec.k);
  }
  if (spec.kind == "grid") {
    if (spec.w < 1 || spec.h < 1) throw ProtocolError("grid needs w >= 1 and h >= 1");
    return topo::make_grid(spec.w, spec.h);
  }
  throw ProtocolError("unknown topology kind: '" + spec.kind +
                      "' (want fat_tree | ring | full_mesh | grid)");
}

Request parse_request(std::string_view line) {
  json::Value doc;
  try {
    doc = json::Value::parse(line);
  } catch (const json::ParseError& e) {
    throw ProtocolError(std::string("invalid JSON: ") + e.what());
  }
  return parse_request_doc(doc);
}

Request parse_request_doc(const json::Value& doc) {
  if (!doc.is_object()) throw ProtocolError("request must be a JSON object");
  Request req;
  const std::int64_t id = doc.get_int("id", 0);
  req.id = id < 0 ? 0 : static_cast<std::uint64_t>(id);
  req.verb = parse_verb(doc.get_string("op"));
  req.session = doc.get_string("session");

  if (req.verb != Verb::kStats && req.session.empty()) {
    throw ProtocolError(std::string(verb_name(req.verb)) + " needs a 'session'");
  }

  switch (req.verb) {
    case Verb::kOpen: {
      const json::Value* topo = doc.find("topology");
      if (topo == nullptr) throw ProtocolError("open needs a 'topology'");
      req.topology = parse_topology(*topo);
      req.config_text = doc.get_string("config");
      if (req.config_text.empty()) throw ProtocolError("open needs a 'config'");
      req.options = parse_options(doc);
      break;
    }
    case Verb::kPropose:
      req.config_text = doc.get_string("config");
      if (req.config_text.empty()) throw ProtocolError("propose needs a 'config'");
      break;
    case Verb::kAddPolicy: {
      const json::Value* policy = doc.find("policy");
      if (policy == nullptr) throw ProtocolError("add_policy needs a 'policy'");
      req.policy = parse_policy(*policy);
      break;
    }
    case Verb::kQuery:
    case Verb::kExplain:
      req.query_policy = doc.get_string("policy");
      req.force_primary = doc.get_bool("primary", false);
      break;
    case Verb::kSweep: {
      if (const json::Value* links = doc.find("links"); links != nullptr) {
        if (!links->is_array()) throw ProtocolError("'links' must be an array of link ids");
        for (const json::Value& l : links->as_array()) {
          const std::int64_t id = l.as_int();
          // Range-check before the narrowing cast: 2^32 must not alias
          // link 0 past the engine's own bound check.
          if (id < 0 || static_cast<std::uint64_t>(id) >
                            std::numeric_limits<topo::LinkId>::max()) {
            throw ProtocolError("'links' entries must be valid link ids");
          }
          req.sweep.links.push_back(static_cast<topo::LinkId>(id));
        }
      }
      req.sweep.max_failures = get_unsigned(doc, "max_failures", 1);
      if (req.sweep.max_failures < 1 || req.sweep.max_failures > kMaxSweepFailures) {
        throw ProtocolError("'max_failures' must be between 1 and 6");
      }
      req.sweep.budget = get_unsigned(doc, "budget", 0);
      req.sweep.prune = doc.get_bool("prune", false);
      req.sweep.symmetry = doc.get_bool("symmetry", false);
      req.sweep.threads = get_unsigned(doc, "threads", 1);
      if (req.sweep.threads == 0) req.sweep.threads = 1;
      req.sweep.detail = doc.get_bool("detail", false);
      break;
    }
    case Verb::kRelate:
      req.config_text = doc.get_string("config");
      if (req.config_text.empty()) throw ProtocolError("relate needs a 'config'");
      req.relate = parse_relate(doc);
      req.force_primary = doc.get_bool("primary", false);
      break;
    case Verb::kOrder:
      req.order = parse_order(doc);
      break;
    case Verb::kCommit:
    case Verb::kAbort:
    case Verb::kStats:
      break;
  }
  return req;
}

Response error_response(std::uint64_t id, std::string message) {
  Response r;
  r.id = id;
  r.ok = false;
  r.error = std::move(message);
  return r;
}

json::Value response_value(const Response& r) {
  json::Value out = r.body.is_object() ? r.body : json::Value();
  out["id"] = json::Value(r.id);
  out["ok"] = json::Value(r.ok);
  if (!r.ok) out["error"] = json::Value(r.error);
  return out;
}

std::string serialize_response(const Response& r) { return response_value(r).dump(); }

}  // namespace rcfg::service
