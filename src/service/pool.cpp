#include "service/pool.h"

#include <future>
#include <utility>

namespace rcfg::service {

EnginePool::EnginePool(PoolOptions options) : options_(std::move(options)) {
  if (options_.engines == 0) options_.engines = 1;
  engines_.reserve(options_.engines);
  for (unsigned i = 0; i < options_.engines; ++i) {
    engines_.push_back(std::make_unique<Engine>(options_.engine));
  }
}

std::size_t EnginePool::shard_(const std::string& session) const {
  // FNV-1a: stable across runs (unlike std::hash), so a session's shard is
  // reproducible in logs and tests.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : session) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % engines_.size());
}

void EnginePool::submit(Request req, Engine::Callback callback) {
  if (req.verb == Verb::kStats) {
    Response r;
    r.id = req.id;
    r.body = stats_json();
    callback(std::move(r));
    return;
  }
  if (req.verb == Verb::kOpen && options_.max_sessions != 0 &&
      session_count() >= options_.max_sessions) {
    denials_.fetch_add(1, std::memory_order_relaxed);
    callback(error_response(req.id, "admission denied: pool at max_sessions (" +
                                        std::to_string(options_.max_sessions) + ")"));
    return;
  }
  engines_[shard_(req.session)]->submit(std::move(req), std::move(callback));
}

Response EnginePool::call(Request req) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  submit(std::move(req), [&promise](Response r) { promise.set_value(std::move(r)); });
  return future.get();
}

void EnginePool::drain() {
  for (auto& engine : engines_) engine->drain();
}

void EnginePool::pause() {
  for (auto& engine : engines_) engine->pause();
}

void EnginePool::resume() {
  for (auto& engine : engines_) engine->resume();
}

std::size_t EnginePool::session_count() const {
  std::size_t n = 0;
  for (const auto& engine : engines_) n += engine->session_count();
  return n;
}

json::Value EnginePool::stats_json() {
  drain();
  json::Value out;
  json::Value::Array per_engine;
  per_engine.reserve(engines_.size());
  for (auto& engine : engines_) per_engine.push_back(engine->stats_json());
  out["engines"] = json::Value(std::move(per_engine));
  json::Value pool;
  pool["engines"] = json::Value(static_cast<std::uint64_t>(engines_.size()));
  pool["sessions"] = json::Value(static_cast<std::uint64_t>(session_count()));
  pool["max_sessions"] = json::Value(static_cast<std::uint64_t>(options_.max_sessions));
  pool["admission_denials"] = json::Value(admission_denials());
  out["pool"] = std::move(pool);
  return out;
}

}  // namespace rcfg::service
