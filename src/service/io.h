#pragma once

// The rcfgd stream-serving loop: drive an Engine (or a sharded EnginePool)
// from an input stream of requests and write one response per request to an
// output stream, in either wire framing.
//
//   * Framing — kAuto (default) peeks the first input byte: 0xB5 (the
//     binary stream magic, framing.h) selects binary frames, anything else
//     selects JSON-lines. Responses use the same framing as requests; a
//     binary stream's output begins with the magic so clients can
//     auto-detect it symmetrically.
//   * Sharding — engines > 1 (or max_sessions > 0) serves through an
//     EnginePool: sessions hash across engines, opens beyond max_sessions
//     are answered with an explicit admission-denial error.
//   * Robustness — the response emitter never throws (a sink failure is
//     counted and swallowed: responses are delivery-best-effort once the
//     request has been applied), and the serving loop drains the backend
//     via a scope guard BEFORE its locals unwind, so an exception anywhere
//     in the read loop cannot destroy the output mutex while worker
//     callbacks still reference it.

#include <iosfwd>

#include "service/engine.h"
#include "service/framing.h"

namespace rcfg::service {

struct ServiceOptions {
  EngineOptions engine;
  /// Engines to shard sessions across (pool.h). 1 serves straight from one
  /// Engine — note `stats` answers the flat engine body then, and the
  /// merged {"engines":[...],"pool":{...}} body when the pool is engaged
  /// (engines > 1 or max_sessions > 0).
  unsigned engines = 1;
  std::size_t max_sessions = 0;  ///< 0 = unlimited (pool admission control)
  Framing framing = Framing::kAuto;
};

/// Serve requests from `in` until EOF; all responses are written to `out`
/// (completion order across sessions, FIFO within one) before returning.
void run_service(std::istream& in, std::ostream& out, const ServiceOptions& options = {});

}  // namespace rcfg::service
