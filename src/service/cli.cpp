#include "service/cli.h"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>

namespace rcfg::service {

std::optional<unsigned> parse_count_arg(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  // strtoul is permissive (leading whitespace, '+'/'-' with wraparound): a
  // count must start with a digit outright.
  if (value[0] < '0' || value[0] > '9') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long n = std::strtoul(value, &end, 10);
  if (errno == ERANGE) return std::nullopt;
  if (end == value || *end != '\0') return std::nullopt;  // "4x", "12 " etc.
  if (n == 0 || n > UINT_MAX) return std::nullopt;
  return static_cast<unsigned>(n);
}

std::optional<Framing> parse_framing_arg(const char* value) {
  if (value == nullptr) return std::nullopt;
  if (std::strcmp(value, "auto") == 0) return Framing::kAuto;
  if (std::strcmp(value, "jsonl") == 0) return Framing::kJsonl;
  if (std::strcmp(value, "binary") == 0) return Framing::kBinary;
  return std::nullopt;
}

}  // namespace rcfg::service
