#pragma once

// Binary framing for the rcfgd wire protocol: the same Request/Response
// surface as JSON-lines (protocol.h), but length-prefixed binary values so
// the hot serving path never tokenizes text.
//
// Stream layout:
//
//   magic   4 bytes   0xB5 'R' 'C' '1'   once, at stream start
//   frame   u32 LE payload length, then payload (one encoded Value)
//   frame   ...
//
// The magic doubles as the auto-detection byte: 0xB5 can never start a
// JSON-lines request (lines begin with '{', whitespace, or '#'), so
// run_service peeks one byte and picks the framing per stream.
//
// Value encoding (tag byte, then payload; all integers little-endian):
//
//   0x00  null
//   0x01  false
//   0x02  true
//   0x03  int64    8 bytes
//   0x04  double   8 bytes (IEEE-754 bit pattern)
//   0x05  string   u32 byte length + bytes (UTF-8, NUL allowed)
//   0x06  array    u32 count + count values
//   0x07  object   u32 count + count of (u32 key length + key bytes, value)
//
// Frames and strings are capped at kMaxFrameBytes; oversized or truncated
// input throws FramingError. Decoding is strict: a frame must contain
// exactly one value with no trailing bytes.

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "service/json.h"

namespace rcfg::service {

/// Thrown on malformed binary frames (bad tag, truncation, oversize,
/// trailing bytes, nesting too deep). Unlike a bad JSON line — which is
/// answered with an error response and skipped — a framing error is not
/// recoverable: the stream offset is lost, so the connection ends.
class FramingError : public std::runtime_error {
 public:
  explicit FramingError(const std::string& message) : std::runtime_error(message) {}
};

/// Wire framing of a service stream.
enum class Framing : std::uint8_t {
  kAuto,    ///< detect per stream from the first byte (default)
  kJsonl,   ///< JSON lines (protocol.h)
  kBinary,  ///< length-prefixed binary frames (this header)
};

inline constexpr unsigned char kFramingMagic[4] = {0xB5, 'R', 'C', '1'};
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 30;  ///< 1 GiB

/// Append the binary encoding of `v` to `out` (no frame header).
void encode_value(const json::Value& v, std::string& out);

/// Decode exactly one value spanning all of `payload`. Throws FramingError
/// on truncation, trailing bytes, unknown tags, or nesting deeper than 256.
json::Value decode_value(std::string_view payload);

/// u32-length-prefixed frame around encode_value(v) (no magic).
std::string encode_frame(const json::Value& v);

/// Write the 4-byte stream magic.
void write_magic(std::ostream& out);

/// Read + validate the 4-byte stream magic. Throws FramingError on mismatch.
void read_magic(std::istream& in);

/// Read one frame's payload into `payload`. Returns false on clean EOF at a
/// frame boundary; throws FramingError on a truncated header/payload or a
/// length above kMaxFrameBytes.
bool read_frame(std::istream& in, std::string& payload);

/// Write one frame (u32 LE length + payload).
void write_frame(std::ostream& out, std::string_view payload);

}  // namespace rcfg::service
