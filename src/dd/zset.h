#pragma once

// Z-sets: multisets with signed 64-bit multiplicities.
//
// A Z-set is the value flowing on every edge of the incremental dataflow
// graph: the *current contents* of a relation (all weights positive) and a
// *delta* (mixed signs) are the same type. Z-sets form a commutative group
// under `merge`, which is what makes incremental operators compositional:
// an operator receiving delta d over state S must emit f(S+d) - f(S).

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/hash.h"

namespace rcfg::dd {

using Weight = std::int64_t;

template <class T>
class ZSet {
 public:
  using Map = std::unordered_map<T, Weight, core::TupleHash>;
  using const_iterator = typename Map::const_iterator;

  ZSet() = default;

  /// Add `w` to the multiplicity of `t`; entries reaching zero are erased,
  /// so the container is always consolidated.
  void add(const T& t, Weight w) {
    if (w == 0) return;
    auto [it, inserted] = data_.try_emplace(t, w);
    if (!inserted) {
      it->second += w;
      if (it->second == 0) data_.erase(it);
    }
  }

  void add(T&& t, Weight w) {
    if (w == 0) return;
    auto [it, inserted] = data_.try_emplace(std::move(t), w);
    if (!inserted) {
      it->second += w;
      if (it->second == 0) data_.erase(it);
    }
  }

  /// Merge another Z-set into this one (group addition).
  void merge(const ZSet& other) {
    for (const auto& [t, w] : other.data_) add(t, w);
  }

  void merge(ZSet&& other) {
    if (data_.empty()) {
      data_ = std::move(other.data_);
      other.data_.clear();
      return;
    }
    for (auto& [t, w] : other.data_) add(t, w);
    other.data_.clear();
  }

  /// Multiplicity of `t` (0 if absent).
  Weight weight(const T& t) const {
    auto it = data_.find(t);
    return it == data_.end() ? 0 : it->second;
  }

  bool contains(const T& t) const { return data_.contains(t); }

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  void clear() noexcept { data_.clear(); }

  const_iterator begin() const noexcept { return data_.begin(); }
  const_iterator end() const noexcept { return data_.end(); }

  /// True when every multiplicity is positive (i.e., this is a valid
  /// relation snapshot rather than a general delta).
  bool is_set_like() const {
    for (const auto& [t, w] : data_) {
      if (w < 0) return false;
    }
    return true;
  }

  /// The delta turning `from` into `this` (this - from).
  static ZSet difference(const ZSet& to, const ZSet& from) {
    ZSet out = to;
    for (const auto& [t, w] : from.data_) out.add(t, -w);
    return out;
  }

  /// A deterministic content hash (order-independent).
  std::size_t content_hash() const {
    std::size_t h = 0;
    core::TupleHash th;
    for (const auto& [t, w] : data_) {
      // XOR of per-entry hashes keeps the result order-independent.
      h ^= core::hash_all(th(t), static_cast<std::size_t>(w));
    }
    return h;
  }

  friend bool operator==(const ZSet& a, const ZSet& b) { return a.data_ == b.data_; }

  /// Sorted materialization is occasionally handy for tests and debugging.
  std::vector<std::pair<T, Weight>> entries() const {
    return std::vector<std::pair<T, Weight>>(data_.begin(), data_.end());
  }

 private:
  Map data_;
};

}  // namespace rcfg::dd
