#pragma once

// The incremental operator library: Input, Map, FlatMap, Filter, Concat,
// Join, Reduce, Distinct, Inspect, Output.
//
// Every operator keeps whatever persistent state it needs (join
// arrangements, reduce groups, distinct counts) so that processing a delta
// costs time proportional to the delta and the state it touches — never to
// the full relation. That state reuse is precisely the "incremental
// computation" the paper borrows from differential dataflow.

#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dd/graph.h"
#include "dd/zset.h"

namespace rcfg::dd {

namespace detail {

/// Emit with recurring-state bookkeeping; hashing happens only once the
/// operator is hot enough for the detector to care.
template <class T>
void emit_delta(Graph& graph, OperatorBase& op, Stream<T>& out, const ZSet<T>& delta) {
  if (delta.empty()) return;
  graph.note_emitted_delta(op, delta.content_hash());
  out.emit(delta);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------------

/// An editable base relation. Mutations accumulate until the next
/// Graph::commit(). `set_to` computes the delta against the current
/// contents, which is how whole-snapshot reloads stay incremental.
template <class T>
class Input final : public OperatorBase {
 public:
  explicit Input(Graph& graph, std::string name = "input")
      : OperatorBase(graph, std::move(name)) {}

  void insert(const T& t) { update(t, +1); }
  void remove(const T& t) { update(t, -1); }

  void update(const T& t, Weight w) {
    pending_.add(t, w);
    graph_.schedule(*this);
  }

  /// Replace the full contents with `target`: stages target - current.
  /// Any not-yet-committed staged edits are discarded.
  void set_to(const ZSet<T>& target) {
    pending_ = ZSet<T>::difference(target, current_);
    if (!pending_.empty()) graph_.schedule(*this);
  }

  void flush() override {
    ZSet<T> delta = std::move(pending_);
    pending_.clear();
    current_.merge(delta);
    detail::emit_delta(graph_, *this, out, delta);
  }

  std::shared_ptr<const void> save_state() const override {
    return std::make_shared<const ZSet<T>>(current_);
  }
  void load_state(const void* state) override {
    current_ = *static_cast<const ZSet<T>*>(state);
    pending_.clear();
  }

  const ZSet<T>& current() const noexcept { return current_; }

  Stream<T> out;

 private:
  ZSet<T> current_;
  ZSet<T> pending_;
};

// ---------------------------------------------------------------------------
// Stateless per-tuple operators
// ---------------------------------------------------------------------------

/// One-to-one transform; weights pass through.
template <class In, class Out>
class Map final : public OperatorBase {
 public:
  using Fn = std::function<Out(const In&)>;

  Map(Graph& graph, Stream<In>& upstream, Fn fn, std::string name = "map")
      : OperatorBase(graph, std::move(name)), fn_(std::move(fn)) {
    upstream.subscribe([this](const ZSet<In>& d) {
      pending_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    ZSet<Out> delta;
    for (const auto& [t, w] : pending_) delta.add(fn_(t), w);
    pending_.clear();
    detail::emit_delta(graph_, *this, out, delta);
  }

  // Stateless: only the pending buffer, which a restore discards.
  std::shared_ptr<const void> save_state() const override { return nullptr; }
  void load_state(const void*) override { pending_.clear(); }

  Stream<Out> out;

 private:
  Fn fn_;
  ZSet<In> pending_;
};

/// One-to-many transform; each produced tuple inherits the input weight.
template <class In, class Out>
class FlatMap final : public OperatorBase {
 public:
  using Fn = std::function<void(const In&, std::vector<Out>&)>;

  FlatMap(Graph& graph, Stream<In>& upstream, Fn fn, std::string name = "flat_map")
      : OperatorBase(graph, std::move(name)), fn_(std::move(fn)) {
    upstream.subscribe([this](const ZSet<In>& d) {
      pending_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    ZSet<Out> delta;
    std::vector<Out> scratch;
    for (const auto& [t, w] : pending_) {
      scratch.clear();
      fn_(t, scratch);
      for (Out& o : scratch) delta.add(std::move(o), w);
    }
    pending_.clear();
    detail::emit_delta(graph_, *this, out, delta);
  }

  std::shared_ptr<const void> save_state() const override { return nullptr; }
  void load_state(const void*) override { pending_.clear(); }

  Stream<Out> out;

 private:
  Fn fn_;
  ZSet<In> pending_;
};

template <class T>
class Filter final : public OperatorBase {
 public:
  using Fn = std::function<bool(const T&)>;

  Filter(Graph& graph, Stream<T>& upstream, Fn fn, std::string name = "filter")
      : OperatorBase(graph, std::move(name)), fn_(std::move(fn)) {
    upstream.subscribe([this](const ZSet<T>& d) {
      pending_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    ZSet<T> delta;
    for (const auto& [t, w] : pending_) {
      if (fn_(t)) delta.add(t, w);
    }
    pending_.clear();
    detail::emit_delta(graph_, *this, out, delta);
  }

  std::shared_ptr<const void> save_state() const override { return nullptr; }
  void load_state(const void*) override { pending_.clear(); }

  Stream<T> out;

 private:
  Fn fn_;
  ZSet<T> pending_;
};

/// Weight negation: the output is the input with every multiplicity
/// flipped. concat(a, negate(b)) materializes the difference a - b, which
/// is how convergence checks compare two relations cheaply.
template <class T>
class Negate final : public OperatorBase {
 public:
  Negate(Graph& graph, Stream<T>& upstream, std::string name = "negate")
      : OperatorBase(graph, std::move(name)) {
    upstream.subscribe([this](const ZSet<T>& d) {
      pending_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    ZSet<T> delta;
    for (const auto& [t, w] : pending_) delta.add(t, -w);
    pending_.clear();
    detail::emit_delta(graph_, *this, out, delta);
  }

  std::shared_ptr<const void> save_state() const override { return nullptr; }
  void load_state(const void*) override { pending_.clear(); }

  Stream<T> out;

 private:
  ZSet<T> pending_;
};

/// N-ary union (weights add). `add_input` may be called after downstream
/// operators were built, which is how feedback cycles are tied.
template <class T>
class Concat final : public OperatorBase {
 public:
  explicit Concat(Graph& graph, std::string name = "concat")
      : OperatorBase(graph, std::move(name)) {}

  void add_input(Stream<T>& upstream) {
    upstream.subscribe([this](const ZSet<T>& d) {
      pending_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    ZSet<T> delta = std::move(pending_);
    pending_.clear();
    detail::emit_delta(graph_, *this, out, delta);
  }

  std::shared_ptr<const void> save_state() const override { return nullptr; }
  void load_state(const void*) override { pending_.clear(); }

  Stream<T> out;

 private:
  ZSet<T> pending_;
};

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

/// Binary equi-join on K. Both sides are arranged (indexed by key) so a
/// delta on either side only probes the matching key's group on the other.
/// The bilinear update rule d(A ⋈ B) = dA ⋈ B ∪ (A + dA) ⋈ dB is applied
/// per flush.
template <class K, class A, class B, class Out>
class Join final : public OperatorBase {
 public:
  using Fn = std::function<Out(const K&, const A&, const B&)>;

  Join(Graph& graph, Stream<std::pair<K, A>>& left, Stream<std::pair<K, B>>& right, Fn fn,
       std::string name = "join")
      : OperatorBase(graph, std::move(name)), fn_(std::move(fn)) {
    left.subscribe([this](const ZSet<std::pair<K, A>>& d) {
      pending_left_.merge(d);
      graph_.schedule(*this);
    });
    right.subscribe([this](const ZSet<std::pair<K, B>>& d) {
      pending_right_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    ZSet<std::pair<K, A>> da = std::move(pending_left_);
    ZSet<std::pair<K, B>> db = std::move(pending_right_);
    pending_left_.clear();
    pending_right_.clear();

    ZSet<Out> delta;
    // dA joined against the *old* right arrangement.
    for (const auto& [ka, wa] : da) {
      auto it = right_.find(ka.first);
      if (it == right_.end()) continue;
      for (const auto& [b, wb] : it->second) {
        delta.add(fn_(ka.first, ka.second, b), wa * wb);
      }
    }
    apply(left_, da);
    // dB joined against the *new* left arrangement.
    for (const auto& [kb, wb] : db) {
      auto it = left_.find(kb.first);
      if (it == left_.end()) continue;
      for (const auto& [a, wa] : it->second) {
        delta.add(fn_(kb.first, a, kb.second), wa * wb);
      }
    }
    apply(right_, db);

    detail::emit_delta(graph_, *this, out, delta);
  }

  std::shared_ptr<const void> save_state() const override {
    return std::make_shared<const Saved>(Saved{left_, right_});
  }
  void load_state(const void* state) override {
    const Saved& s = *static_cast<const Saved*>(state);
    left_ = s.left;
    right_ = s.right;
    pending_left_.clear();
    pending_right_.clear();
  }

  Stream<Out> out;

  /// Number of keys currently arranged on the left/right (introspection).
  std::size_t left_keys() const noexcept { return left_.size(); }
  std::size_t right_keys() const noexcept { return right_.size(); }

 private:
  template <class V>
  using Arrangement = std::unordered_map<K, ZSet<V>, core::TupleHash>;

  struct Saved {
    Arrangement<A> left;
    Arrangement<B> right;
  };

  template <class V>
  static void apply(Arrangement<V>& arr, const ZSet<std::pair<K, V>>& delta) {
    for (const auto& [kv, w] : delta) {
      ZSet<V>& group = arr[kv.first];
      group.add(kv.second, w);
      if (group.empty()) arr.erase(kv.first);
    }
  }

  Fn fn_;
  Arrangement<A> left_;
  Arrangement<B> right_;
  ZSet<std::pair<K, A>> pending_left_;
  ZSet<std::pair<K, B>> pending_right_;
};

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

/// Group-by-key aggregation. Only groups touched by the incoming delta are
/// re-evaluated; the operator emits the difference between each group's new
/// and previously emitted output (retract old / assert new), which is what
/// lets best-route changes ripple like protocol withdrawals.
template <class K, class V, class Out>
class Reduce final : public OperatorBase {
 public:
  /// `fn` sees the group's full contents (all weights positive in a
  /// well-formed program) and appends output tuples (weight 1 each).
  using Fn = std::function<void(const K&, const ZSet<V>&, std::vector<Out>&)>;

  Reduce(Graph& graph, Stream<std::pair<K, V>>& upstream, Fn fn, std::string name = "reduce")
      : OperatorBase(graph, std::move(name)), fn_(std::move(fn)) {
    upstream.subscribe([this](const ZSet<std::pair<K, V>>& d) {
      pending_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    // Apply deltas to group contents, remembering which keys were touched.
    ZSet<K> unique;
    for (const auto& [kv, w] : pending_) {
      groups_.try_emplace(kv.first).first->second.input.add(kv.second, w);
      unique.add(kv.first, 1);
    }
    pending_.clear();

    ZSet<Out> delta;
    std::vector<Out> scratch;
    for (const auto& [k, _] : unique) {
      auto it = groups_.find(k);
      if (it == groups_.end()) continue;
      Group& g = it->second;
      scratch.clear();
      if (!g.input.empty()) fn_(k, g.input, scratch);
      ZSet<Out> next;
      for (Out& o : scratch) next.add(std::move(o), 1);
      ZSet<Out> diff = ZSet<Out>::difference(next, g.output);
      delta.merge(diff);
      if (g.input.empty()) {
        groups_.erase(it);
      } else {
        g.output = std::move(next);
      }
    }

    detail::emit_delta(graph_, *this, out, delta);
  }

  std::shared_ptr<const void> save_state() const override {
    return std::make_shared<const Groups>(groups_);
  }
  void load_state(const void* state) override {
    groups_ = *static_cast<const Groups*>(state);
    pending_.clear();
  }

  Stream<Out> out;

  std::size_t group_count() const noexcept { return groups_.size(); }

 private:
  struct Group {
    ZSet<V> input;
    ZSet<Out> output;
  };
  using Groups = std::unordered_map<K, Group, core::TupleHash>;

  Fn fn_;
  Groups groups_;
  ZSet<std::pair<K, V>> pending_;
};

// ---------------------------------------------------------------------------
// Distinct
// ---------------------------------------------------------------------------

/// Set semantics: output weight is 1 while the input multiplicity is
/// positive, 0 otherwise. Needed after projections that can derive the
/// same tuple several ways (e.g., a FIB entry supported by many paths).
template <class T>
class Distinct final : public OperatorBase {
 public:
  Distinct(Graph& graph, Stream<T>& upstream, std::string name = "distinct")
      : OperatorBase(graph, std::move(name)) {
    upstream.subscribe([this](const ZSet<T>& d) {
      pending_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    ZSet<T> delta;
    for (const auto& [t, w] : pending_) {
      const Weight before = counts_.weight(t);
      const Weight after = before + w;
      counts_.add(t, w);
      const int sign_before = before > 0 ? 1 : 0;
      const int sign_after = after > 0 ? 1 : 0;
      if (sign_after != sign_before) delta.add(t, sign_after - sign_before);
    }
    pending_.clear();
    detail::emit_delta(graph_, *this, out, delta);
  }

  std::shared_ptr<const void> save_state() const override {
    return std::make_shared<const ZSet<T>>(counts_);
  }
  void load_state(const void* state) override {
    counts_ = *static_cast<const ZSet<T>*>(state);
    pending_.clear();
  }

  Stream<T> out;

 private:
  ZSet<T> counts_;
  ZSet<T> pending_;
};

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Invoke a callback on every delta that reaches this sink.
template <class T>
class Inspect final : public OperatorBase {
 public:
  using Fn = std::function<void(const ZSet<T>&)>;

  Inspect(Graph& graph, Stream<T>& upstream, Fn fn, std::string name = "inspect")
      : OperatorBase(graph, std::move(name)), fn_(std::move(fn)) {
    upstream.subscribe([this](const ZSet<T>& d) {
      pending_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    ZSet<T> delta = std::move(pending_);
    pending_.clear();
    if (!delta.empty()) fn_(delta);
  }

  std::shared_ptr<const void> save_state() const override { return nullptr; }
  void load_state(const void*) override { pending_.clear(); }

 private:
  Fn fn_;
  ZSet<T> pending_;
};

/// Materialized sink: exposes the relation's current contents plus the
/// accumulated delta since the caller last drained it.
template <class T>
class Output final : public OperatorBase {
 public:
  Output(Graph& graph, Stream<T>& upstream, std::string name = "output")
      : OperatorBase(graph, std::move(name)) {
    upstream.subscribe([this](const ZSet<T>& d) {
      pending_.merge(d);
      graph_.schedule(*this);
    });
  }

  void flush() override {
    current_.merge(pending_);
    accumulated_.merge(std::move(pending_));
    pending_.clear();
  }

  std::shared_ptr<const void> save_state() const override {
    return std::make_shared<const Saved>(Saved{current_, accumulated_});
  }
  void load_state(const void* state) override {
    const Saved& s = *static_cast<const Saved*>(state);
    current_ = s.current;
    accumulated_ = s.accumulated;
    pending_.clear();
  }

  const ZSet<T>& current() const noexcept { return current_; }

  /// Deltas accumulated since the previous take_delta() call.
  ZSet<T> take_delta() {
    ZSet<T> d = std::move(accumulated_);
    accumulated_.clear();
    return d;
  }

 private:
  struct Saved {
    ZSet<T> current;
    ZSet<T> accumulated;
  };

  ZSet<T> current_;
  ZSet<T> accumulated_;
  ZSet<T> pending_;
};

}  // namespace rcfg::dd
