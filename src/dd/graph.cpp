#include "dd/graph.h"

namespace rcfg::dd {

OperatorBase::OperatorBase(Graph& graph, std::string name)
    : graph_(graph), name_(std::move(name)) {}

void Graph::commit() {
  in_commit_ = true;
  commit_flush_counter_ = 0;
  recurrence_.assign(ops_.size(), RecurrenceState{});

  // On divergence the graph's operator state is partially updated and the
  // instance must be discarded; make sure bookkeeping reflects that.
  struct CommitGuard {
    Graph& graph;
    ~CommitGuard() {
      graph.in_commit_ = false;
      graph.ready_.clear();
      graph.last_commit_flushes_ = graph.commit_flush_counter_;
    }
  } guard{*this};

  while (!ready_.empty()) {
    const std::uint32_t id = *ready_.begin();
    ready_.erase(ready_.begin());
    OperatorBase& op = *ops_[id];
    ++op.flushes_;
    ++commit_flush_counter_;
    recurrence_[id].commit_flushes += 1;
    if (commit_flush_counter_ > flush_budget_) {
      // Find the hottest operator for the diagnostic.
      std::uint32_t hottest = 0;
      for (std::uint32_t i = 0; i < recurrence_.size(); ++i) {
        if (recurrence_[i].commit_flushes > recurrence_[hottest].commit_flushes) hottest = i;
      }
      throw NonterminationError(
          "dataflow commit exceeded flush budget (" + std::to_string(flush_budget_) +
          "); hottest operator: " + ops_[hottest]->name() + " with " +
          std::to_string(recurrence_[hottest].commit_flushes) + " flushes");
    }
    op.flush();
  }

  ++commits_;
}

GraphSnapshot Graph::snapshot() const {
  if (in_commit_) throw std::logic_error("Graph::snapshot: called during commit()");
  if (!ready_.empty()) {
    throw std::logic_error("Graph::snapshot: pending work scheduled; commit() first");
  }
  GraphSnapshot snap;
  snap.op_state.reserve(ops_.size());
  for (const auto& op : ops_) snap.op_state.push_back(op->save_state());
  snap.commits = commits_;
  return snap;
}

void Graph::restore(const GraphSnapshot& snap) {
  if (in_commit_) throw std::logic_error("Graph::restore: called during commit()");
  if (snap.op_state.size() != ops_.size()) {
    throw std::logic_error("Graph::restore: snapshot has " +
                           std::to_string(snap.op_state.size()) + " operators, graph has " +
                           std::to_string(ops_.size()) + " (different program?)");
  }
  for (std::size_t i = 0; i < ops_.size(); ++i) ops_[i]->load_state(snap.op_state[i].get());
  ready_.clear();
  commits_ = snap.commits;
  last_commit_flushes_ = 0;
}

void Graph::note_emitted_delta(const OperatorBase& op, std::size_t delta_hash) {
  if (!in_commit_ || recurrence_threshold_ == 0) return;
  RecurrenceState& rs = recurrence_[op.id()];
  if (rs.commit_flushes < recurrence_threshold_) return;
  // Heuristic: a convergent computation keeps producing *new* (shrinking)
  // deltas; an oscillating one cycles through the same few deltas forever.
  // Seeing hashes that already sit in the recent-history ring many times in
  // a row is treated as recurrence. The ring catches period-k cycles for
  // k <= kRing (e.g., the +route/-route flip of BGP route oscillation).
  bool seen_recently = false;
  for (std::size_t h : rs.ring) {
    if (h != 0 && h == delta_hash) {
      seen_recently = true;
      break;
    }
  }
  rs.ring[rs.ring_pos] = delta_hash;
  rs.ring_pos = (rs.ring_pos + 1) % RecurrenceState::kRing;
  if (seen_recently) {
    if (++rs.repeats >= 2 * RecurrenceState::kRing) {
      throw RecurringStateError("recurring state detected at operator '" + op.name() +
                                "' after " + std::to_string(rs.commit_flushes) +
                                " flushes: the control plane likely oscillates "
                                "(multiple converged states or no convergence)");
    }
  } else {
    rs.repeats = 0;
  }
}

}  // namespace rcfg::dd
