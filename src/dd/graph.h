#pragma once

// Dataflow graph core: operators, typed streams, and the delta scheduler.
//
// Execution model (the substitute for Differential Dataflow, see DESIGN.md
// §2): users mutate Input operators, then call Graph::commit(). The
// scheduler flushes operators in ascending id order; flushing consumes an
// operator's pending input deltas, updates its persistent state, and emits
// an output delta to its subscribers' pending buffers. Feedback edges
// (subscriptions from a later operator back to an earlier one) simply
// re-schedule the earlier operator, so recursive programs iterate until no
// pending deltas remain — a fixpoint reached *from the previous fixpoint*,
// touching only state reachable from the input change.
//
// Nontermination (paper §6): a commit that exceeds the flush budget throws
// NonterminationError; a cheap recurring-delta heuristic upgrades the
// diagnosis to RecurringStateError when an operator keeps re-emitting the
// same delta (the signature of BGP-style route oscillation).

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "dd/zset.h"

namespace rcfg::dd {

class Graph;

/// Commit diverged: the flush budget was exhausted without quiescence.
class NonterminationError : public std::runtime_error {
 public:
  explicit NonterminationError(const std::string& message) : std::runtime_error(message) {}
};

/// Commit diverged *and* revisited a previously seen delta — strong
/// evidence of an oscillating (multi-stable) control plane.
class RecurringStateError : public NonterminationError {
 public:
  explicit RecurringStateError(const std::string& message) : NonterminationError(message) {}
};

/// Base class of every dataflow operator. Identity (`id`) doubles as the
/// scheduling priority; operators are created in dependency order for
/// acyclic edges, so ascending-id scheduling gives each operator at most
/// one flush per "round" of a recursive computation.
class OperatorBase {
 public:
  explicit OperatorBase(Graph& graph, std::string name);
  virtual ~OperatorBase() = default;

  OperatorBase(const OperatorBase&) = delete;
  OperatorBase& operator=(const OperatorBase&) = delete;

  /// Consume pending inputs, update state, emit deltas downstream.
  virtual void flush() = 0;

  /// Deep-copy the operator's persistent state (arrangements, groups,
  /// counts) into an immutable, type-erased blob. Stateless operators
  /// return nullptr. The blob is shared: many forks may restore from it.
  virtual std::shared_ptr<const void> save_state() const = 0;

  /// Replace the operator's state with a copy of `state` — a blob produced
  /// by save_state() on an operator occupying the same graph position —
  /// and discard any pending input deltas. `state` may be nullptr for
  /// stateless operators.
  virtual void load_state(const void* state) = 0;

  std::uint32_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  std::uint64_t flush_count() const noexcept { return flushes_; }

 protected:
  Graph& graph_;

 private:
  friend class Graph;
  std::uint32_t id_ = 0;
  std::string name_;
  std::uint64_t flushes_ = 0;
};

/// A typed edge bundle: the producer-side handle holding subscriber
/// callbacks. Subscribers merge emitted deltas into their pending buffers
/// and ask the graph to schedule them.
template <class T>
class Stream {
 public:
  using Subscriber = std::function<void(const ZSet<T>&)>;

  void subscribe(Subscriber fn) { subs_.push_back(std::move(fn)); }

  /// Deliver a delta to all subscribers (no-op when empty).
  void emit(const ZSet<T>& delta) {
    if (delta.empty()) return;
    for (const Subscriber& s : subs_) s(delta);
  }

 private:
  std::vector<Subscriber> subs_;
};

/// A checkpoint of every operator's persistent state, taken at quiescence.
/// The per-operator blobs are immutable and shared, so one snapshot can
/// seed any number of forked replicas without further copying; each
/// Graph::restore() deep-copies blob contents back into its operators.
struct GraphSnapshot {
  std::vector<std::shared_ptr<const void>> op_state;
  std::uint64_t commits = 0;
};

/// Owns the operators and runs commits. See file header for the model.
class Graph {
 public:
  Graph() = default;

  /// Construct an operator of type Op in this graph.
  template <class Op, class... Args>
  Op& make(Args&&... args) {
    auto op = std::make_unique<Op>(*this, std::forward<Args>(args)...);
    Op& ref = *op;
    ref.id_ = static_cast<std::uint32_t>(ops_.size());
    ops_.push_back(std::move(op));
    return ref;
  }

  /// Mark an operator as having pending input.
  void schedule(OperatorBase& op) { ready_.insert(op.id()); }

  /// Run to quiescence. Throws NonterminationError / RecurringStateError if
  /// the flush budget is exceeded.
  void commit();

  /// Total flushes allowed per commit before declaring divergence. The
  /// default is generous: a converging routing computation needs at most
  /// O(diameter * operators) flushes.
  void set_flush_budget(std::uint64_t budget) noexcept { flush_budget_ = budget; }

  /// Once an operator has been flushed more than this many times within one
  /// commit, its emitted-delta hashes are recorded for the recurring-state
  /// heuristic. 0 disables the heuristic.
  void set_recurrence_threshold(std::uint64_t threshold) noexcept {
    recurrence_threshold_ = threshold;
  }

  std::size_t operator_count() const noexcept { return ops_.size(); }
  std::uint64_t last_commit_flushes() const noexcept { return last_commit_flushes_; }
  std::uint64_t commit_count() const noexcept { return commits_; }
  std::uint64_t flush_budget() const noexcept { return flush_budget_; }
  std::uint64_t recurrence_threshold() const noexcept { return recurrence_threshold_; }

  /// Checkpoint every operator's state. Requires quiescence (no operator
  /// scheduled); throws std::logic_error mid-commit or with pending work.
  GraphSnapshot snapshot() const;

  /// Restore every operator's state from `snap`, discarding pending deltas
  /// and clearing the schedule. The snapshot must come from a graph with an
  /// identical program (same operator count/order) — in practice either this
  /// graph or one built by the same deterministic builder. Safe to call on a
  /// graph whose last commit diverged: partially flushed state is simply
  /// overwritten.
  void restore(const GraphSnapshot& snap);

  /// Used by operators (inside flush) to report the hash of the delta they
  /// just emitted, feeding the recurring-state detector.
  void note_emitted_delta(const OperatorBase& op, std::size_t delta_hash);

 private:
  std::vector<std::unique_ptr<OperatorBase>> ops_;
  std::set<std::uint32_t> ready_;  // ordered: lowest id flushed first
  std::uint64_t flush_budget_ = 50'000'000;
  std::uint64_t recurrence_threshold_ = 10'000;
  std::uint64_t last_commit_flushes_ = 0;
  std::uint64_t commits_ = 0;

  // Recurring-state detection scratch (reset each commit). A ring of
  // recently emitted delta hashes catches period-k oscillations (k <= ring
  // size), not just period-1.
  struct RecurrenceState {
    static constexpr std::size_t kRing = 8;
    std::uint64_t commit_flushes = 0;
    std::size_t ring[kRing] = {};
    std::size_t ring_pos = 0;
    std::uint32_t repeats = 0;
  };
  std::vector<RecurrenceState> recurrence_;
  bool in_commit_ = false;
  std::uint64_t commit_flush_counter_ = 0;
};

}  // namespace rcfg::dd
