#include "topo/topology.h"

#include <stdexcept>

namespace rcfg::topo {

NodeId Topology::add_node(std::string name) {
  if (node_by_name_.contains(name)) {
    throw std::invalid_argument("duplicate node name: " + name);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node_by_name_.emplace(name, id);
  nodes_.push_back(Node{std::move(name), {}});
  return id;
}

IfaceId Topology::add_interface(NodeId node, std::string name) {
  Node& n = nodes_.at(node);
  if (find_interface(node, name) != kInvalidIface) {
    throw std::invalid_argument("duplicate interface " + name + " on " + n.name);
  }
  const IfaceId id = static_cast<IfaceId>(ifaces_.size());
  ifaces_.push_back(Interface{std::move(name), node, std::nullopt});
  n.ifaces.push_back(id);
  return id;
}

LinkId Topology::add_link(IfaceId a, IfaceId b) {
  Interface& ia = ifaces_.at(a);
  Interface& ib = ifaces_.at(b);
  if (a == b || ia.node == ib.node) {
    throw std::invalid_argument("link endpoints must be on distinct nodes");
  }
  if (ia.link || ib.link) {
    throw std::invalid_argument("interface already wired");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{ia.node, ib.node, a, b});
  ia.link = id;
  ib.link = id;
  return id;
}

LinkId Topology::connect(NodeId a, NodeId b) {
  auto fresh_name = [this](NodeId on, NodeId toward) {
    std::string base = "to-" + nodes_.at(toward).name;
    std::string name = base;
    for (int k = 1; find_interface(on, name) != kInvalidIface; ++k) {
      name = base + "." + std::to_string(k);
    }
    return name;
  };
  const IfaceId ia = add_interface(a, fresh_name(a, b));
  const IfaceId ib = add_interface(b, fresh_name(b, a));
  return add_link(ia, ib);
}

NodeId Topology::find_node(std::string_view name) const {
  auto it = node_by_name_.find(std::string{name});
  return it == node_by_name_.end() ? kInvalidNode : it->second;
}

IfaceId Topology::find_interface(NodeId node, std::string_view name) const {
  for (IfaceId i : nodes_.at(node).ifaces) {
    if (ifaces_[i].name == name) return i;
  }
  return kInvalidIface;
}

NodeId Topology::peer(LinkId l, NodeId n) const {
  const Link& lk = links_.at(l);
  if (lk.a == n) return lk.b;
  if (lk.b == n) return lk.a;
  return kInvalidNode;
}

IfaceId Topology::peer_iface(LinkId l, NodeId n) const {
  const Link& lk = links_.at(l);
  if (lk.a == n) return lk.b_iface;
  if (lk.b == n) return lk.a_iface;
  return kInvalidIface;
}

IfaceId Topology::remote_iface(IfaceId i) const {
  const Interface& ifc = ifaces_.at(i);
  if (!ifc.link) return kInvalidIface;
  return peer_iface(*ifc.link, ifc.node);
}

std::vector<Topology::Adjacency> Topology::adjacencies(NodeId n) const {
  std::vector<Adjacency> out;
  for (IfaceId i : nodes_.at(n).ifaces) {
    const Interface& ifc = ifaces_[i];
    if (!ifc.link) continue;
    out.push_back(Adjacency{i, *ifc.link, peer(*ifc.link, n)});
  }
  return out;
}

std::string Topology::to_dot() const {
  std::string out = "graph topology {\n";
  for (const Node& n : nodes_) {
    out += "  \"" + n.name + "\";\n";
  }
  for (const Link& l : links_) {
    out += "  \"" + nodes_[l.a].name + "\" -- \"" + nodes_[l.b].name + "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace rcfg::topo
