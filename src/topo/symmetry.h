#pragma once

// Topology symmetry: automorphisms that relabel nodes/interfaces/links while
// preserving the wiring. Used by the failure-space explorer to deduplicate
// scenarios that are equivalent modulo symmetric fat-tree pods: one orbit
// representative is verified, the outcome is replayed across the orbit.
//
// The only group currently recognized is the pod-permutation group of a
// make_fat_tree() topology, identified through the generator's naming
// contract (core<j>, agg<p>-<i>, edge<p>-<i>) and validated structurally
// (every link must classify as an intra-pod edge-agg link or an agg-core
// uplink with the canonical core grouping). Anything else yields the
// trivial symmetry. Callers narrow the group further with set_pod_classes()
// — only pods in the same class may be exchanged (the verify layer computes
// classes from configuration/policy equivariance, which topology alone
// cannot see).

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace rcfg::topo {

/// One automorphism: consistent relabelings of nodes, interfaces and links.
/// Each vector maps old id -> new id and is a permutation.
struct Automorphism {
  std::vector<NodeId> node;
  std::vector<IfaceId> iface;
  std::vector<LinkId> link;
};

class Symmetry {
 public:
  /// The trivial symmetry (identity only).
  static Symmetry none();

  /// Recognize a make_fat_tree() topology and return its pod-permutation
  /// symmetry; the trivial symmetry if `t` does not match the contract.
  static Symmetry fat_tree_pods(const Topology& t);

  /// True when only the identity is available (no dedup possible).
  bool trivial() const;

  /// Number of pods (0 for the trivial symmetry).
  unsigned pods() const { return pod_count_; }

  /// The pod a link belongs to; -1 for the trivial symmetry. Agg-core
  /// uplinks belong to the agg's pod (cores are fixed by every pod
  /// permutation).
  int pod_of_link(LinkId l) const;

  /// The pod a node belongs to; -1 for cores and for the trivial symmetry.
  int pod_of_node(NodeId n) const;

  /// Restrict the group to permutations that keep every pod inside its
  /// class. `class_of_pod` must have pods() entries. Default: one class.
  void set_pod_classes(std::vector<unsigned> class_of_pod);

  /// The transposition of pods p and q (identity elsewhere). Requires a
  /// non-trivial symmetry; p != q. Ignores classes (callers use it to
  /// *decide* classes).
  Automorphism pod_swap(unsigned p, unsigned q) const;

  /// The automorphism induced by a full pod permutation (`pod_map[p]` =
  /// image pod; must be a bijection respecting classes).
  Automorphism automorphism(const std::vector<unsigned>& pod_map) const;

  /// True if no class-respecting pod permutation maps `links` (sorted,
  /// unique) to a lexicographically smaller link set. Always true for the
  /// trivial symmetry.
  bool is_canonical(const std::vector<LinkId>& links) const;

  /// Lexicographically smallest image of `links` over the group.
  std::vector<LinkId> canonical(const std::vector<LinkId>& links) const;

  struct Orbit {
    struct Image {
      std::vector<LinkId> links;      ///< sorted
      std::vector<unsigned> pod_map;  ///< full pod permutation producing it
    };
    /// Distinct images, sorted by link set (so the canonical member leads).
    std::vector<Image> images;
  };
  /// The whole orbit of `links` under the class-respecting group. For the
  /// trivial symmetry: the single identity image.
  Orbit orbit(const std::vector<LinkId>& links) const;

 private:
  Symmetry() = default;

  /// Enumerate class-respecting full pod permutations moving exactly the
  /// pods occupied by `links`; calls fn(pod_map) until it returns false.
  template <typename Fn>
  void each_assignment(const std::vector<LinkId>& links, Fn&& fn) const;

  std::vector<LinkId> apply_to_links(const std::vector<unsigned>& pod_map,
                                     const std::vector<LinkId>& links) const;

  const Topology* topo_ = nullptr;  ///< null for the trivial symmetry
  unsigned pod_count_ = 0;
  unsigned half_ = 0;  ///< k/2
  std::vector<int> link_pod_, link_role_;
  std::vector<int> node_pod_;   ///< -1 for cores
  std::vector<int> node_kind_;  ///< 0 core, 1 agg, 2 edge
  std::vector<int> node_index_; ///< j for cores, i within pod otherwise
  /// [pod][role] -> link, roles 0..k^2/2: edge-agg first (e*half+a), then
  /// agg-core (half^2 + a*half + c).
  std::vector<std::vector<LinkId>> pod_links_;
  /// [pod][kind-1][i] -> node (kind 1 = agg, 2 = edge).
  std::vector<std::vector<std::vector<NodeId>>> pod_nodes_;
  std::vector<unsigned> class_of_pod_;
};

}  // namespace rcfg::topo
