#pragma once

// Synthetic topology generators used by tests, examples, and the paper's
// evaluation (fat tree). Node-name conventions are part of the contract:
// config builders key on them to assign roles.

#include <cstdint>

#include "core/rng.h"
#include "topo/topology.h"

namespace rcfg::topo {

/// Three-tier k-ary fat tree (k even): k pods, each with k/2 edge and k/2
/// aggregation switches; (k/2)^2 core switches. Node names: "core<j>",
/// "agg<p>-<i>", "edge<p>-<i>". k=12 yields the paper's 180 nodes and
/// 864 links.
Topology make_fat_tree(unsigned k);

/// Structural facts about a fat tree, used by config builders.
struct FatTreeShape {
  unsigned k = 0;
  unsigned pods() const { return k; }
  unsigned edge_per_pod() const { return k / 2; }
  unsigned agg_per_pod() const { return k / 2; }
  unsigned cores() const { return (k / 2) * (k / 2); }
  unsigned nodes() const { return 5 * k * k / 4; }
  unsigned links() const { return k * k * k / 2; }
};

/// 2-D grid (w x h), names "n<x>-<y>", links to right and down neighbors.
Topology make_grid(unsigned w, unsigned h);

/// Ring of n nodes, names "r<i>".
Topology make_ring(unsigned n);

/// Full mesh over n nodes, names "m<i>".
Topology make_full_mesh(unsigned n);

/// Connected random graph: a random spanning tree plus extra random links
/// until `links` total (links >= n-1). Names "v<i>".
Topology make_random_connected(unsigned n, unsigned links, core::Rng& rng);

}  // namespace rcfg::topo
