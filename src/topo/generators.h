#pragma once

// Synthetic topology generators used by tests, examples, and the paper's
// evaluation (fat tree), plus the diversity families the benchmarks sweep:
// tori, dragonflies, and WAN-style weighted random graphs. Node-name
// conventions are part of the contract: config builders key on them to
// assign roles.

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "topo/topology.h"

namespace rcfg::topo {

/// Three-tier k-ary fat tree (k even): k pods, each with k/2 edge and k/2
/// aggregation switches; (k/2)^2 core switches. Node names: "core<j>",
/// "agg<p>-<i>", "edge<p>-<i>". k=12 yields the paper's 180 nodes and
/// 864 links.
Topology make_fat_tree(unsigned k);

/// Structural facts about a fat tree, used by config builders. Constructing
/// a shape validates k exactly like make_fat_tree (even, >= 2), so shape
/// arithmetic can never disagree with a topology the generator refuses to
/// build; counts are computed in 64 bits (k=2000 already overflows 32-bit
/// link math).
struct FatTreeShape {
  explicit FatTreeShape(unsigned k);

  unsigned k = 0;
  unsigned pods() const { return k; }
  unsigned edge_per_pod() const { return k / 2; }
  unsigned agg_per_pod() const { return k / 2; }
  std::uint64_t cores() const { return (std::uint64_t{k} / 2) * (k / 2); }
  std::uint64_t nodes() const { return 5 * std::uint64_t{k} * k / 4; }
  std::uint64_t links() const { return std::uint64_t{k} * k * k / 2; }
};

/// 2-D grid (w x h), names "n<x>-<y>", links to right and down neighbors.
Topology make_grid(unsigned w, unsigned h);

/// Ring of n nodes, names "r<i>".
Topology make_ring(unsigned n);

/// Full mesh over n nodes, names "m<i>".
Topology make_full_mesh(unsigned n);

/// Connected random graph: a random spanning tree plus extra random links
/// until `links` total. Requires n-1 <= links <= n*(n-1)/2: the graph is
/// always simple (downstream failure-sweep link normalization relies on
/// that), so link counts beyond the simple-graph capacity are rejected
/// with std::invalid_argument instead of silently emitting parallel links.
/// Names "v<i>".
Topology make_random_connected(unsigned n, unsigned links, core::Rng& rng);

// ---------------------------------------------------------------------------
// Torus (2-D / 3-D)
// ---------------------------------------------------------------------------

/// Structural facts about a torus. `dims` holds 2 or 3 extents, each >= 2.
/// Along a dimension of extent m every line of m nodes carries m links
/// (path + wraparound) when m >= 3, and a single link when m == 2 — the
/// wrap link would duplicate the path link, and the graphs stay simple.
struct TorusShape {
  explicit TorusShape(std::vector<unsigned> dims);

  std::vector<unsigned> dims;
  std::uint64_t nodes() const;
  std::uint64_t links() const;
  /// Uniform node degree: sum over dims of 2 (m >= 3) or 1 (m == 2).
  unsigned degree() const;
};

/// 2-D torus (w x h wraparound grid), names "ts<x>-<y>".
Topology make_torus(unsigned w, unsigned h);

/// 3-D torus (x * y * z), names "ts<x>-<y>-<z>".
Topology make_torus(unsigned x, unsigned y, unsigned z);

// ---------------------------------------------------------------------------
// Dragonfly
// ---------------------------------------------------------------------------

/// Dragonfly parameters: `groups` groups of `routers_per_group` routers in
/// a full intra-group mesh; every pair of groups is joined by exactly one
/// global link, distributed round-robin over each group's routers (so a
/// router carries at most `global_per_router` global links — validated:
/// groups-1 <= routers_per_group * global_per_router); every router hosts
/// `terminals_per_router` single-homed terminal nodes.
struct DragonflyParams {
  unsigned groups = 0;               ///< g >= 2
  unsigned routers_per_group = 0;    ///< a >= 1
  unsigned global_per_router = 0;    ///< h >= 1
  unsigned terminals_per_router = 0; ///< p >= 0
};

/// Structural facts about a dragonfly (validates params on construction).
struct DragonflyShape {
  explicit DragonflyShape(DragonflyParams params);

  DragonflyParams p;
  std::uint64_t routers() const { return std::uint64_t{p.groups} * p.routers_per_group; }
  std::uint64_t terminals() const { return routers() * p.terminals_per_router; }
  std::uint64_t nodes() const { return routers() + terminals(); }
  std::uint64_t links() const {
    const std::uint64_t a = p.routers_per_group;
    const std::uint64_t g = p.groups;
    return g * (a * (a - 1) / 2)  // intra-group full mesh
           + g * (g - 1) / 2      // one global link per group pair
           + terminals();         // one access link per terminal
  }
};

/// Router names "dfr<g>-<r>", terminal names "dft<g>-<r>-<t>".
Topology make_dragonfly(const DragonflyParams& params);

// ---------------------------------------------------------------------------
// WAN-style weighted random graphs
// ---------------------------------------------------------------------------

/// A topology plus one IGP metric per link (indexed by LinkId), produced by
/// make_wan. Costs feed config::apply_link_costs / set_ospf_cost.
struct WeightedTopology {
  Topology topo;
  std::vector<std::uint32_t> link_cost;
};

struct WanParams {
  unsigned nodes = 0;            ///< >= 2
  unsigned links = 0;            ///< n-1 .. n*(n-1)/2 (simple, connected)
  std::uint32_t min_cost = 1;    ///< >= 1 (OSPF interface costs are 1..65535)
  std::uint32_t max_cost = 64;   ///< >= min_cost, <= 65535
};

/// Connected simple random graph with per-link costs drawn uniformly from
/// [min_cost, max_cost]. Names "w<i>". Same structural rules as
/// make_random_connected (and the same rejection of saturating counts).
WeightedTopology make_wan(const WanParams& params, core::Rng& rng);

}  // namespace rcfg::topo
