#include "topo/symmetry.h"

#include <algorithm>
#include <charconv>
#include <numeric>
#include <string_view>

namespace rcfg::topo {

namespace {

/// Parse "<prefix><number>" or "<prefix><number>-<number>"; returns false on
/// any mismatch or trailing garbage.
bool parse_indexed(std::string_view name, std::string_view prefix, unsigned& a,
                   unsigned* b = nullptr) {
  if (name.substr(0, prefix.size()) != prefix) return false;
  std::string_view rest = name.substr(prefix.size());
  const char* end = rest.data() + rest.size();
  auto r = std::from_chars(rest.data(), end, a);
  if (r.ec != std::errc{}) return false;
  if (b == nullptr) return r.ptr == end;
  if (r.ptr == end || *r.ptr != '-') return false;
  auto r2 = std::from_chars(r.ptr + 1, end, *b);
  return r2.ec == std::errc{} && r2.ptr == end;
}

}  // namespace

Symmetry Symmetry::none() { return Symmetry{}; }

bool Symmetry::trivial() const {
  if (topo_ == nullptr) return true;
  // All-singleton classes admit only the identity.
  for (unsigned p = 0; p < pod_count_; ++p) {
    for (unsigned q = p + 1; q < pod_count_; ++q) {
      if (class_of_pod_[p] == class_of_pod_[q]) return false;
    }
  }
  return true;
}

Symmetry Symmetry::fat_tree_pods(const Topology& t) {
  Symmetry s;
  const std::size_t n = t.node_count();
  if (n == 0) return none();

  // Classify nodes by name.
  std::vector<int> kind(n, -1), pod(n, -1), index(n, -1);
  unsigned max_pod = 0, max_half_index = 0, cores = 0;
  for (NodeId id = 0; id < n; ++id) {
    unsigned a = 0, b = 0;
    const std::string& name = t.node(id).name;
    if (parse_indexed(name, "core", a)) {
      kind[id] = 0;
      index[id] = static_cast<int>(a);
      ++cores;
    } else if (parse_indexed(name, "agg", a, &b)) {
      kind[id] = 1;
      pod[id] = static_cast<int>(a);
      index[id] = static_cast<int>(b);
    } else if (parse_indexed(name, "edge", a, &b)) {
      kind[id] = 2;
      pod[id] = static_cast<int>(a);
      index[id] = static_cast<int>(b);
    } else {
      return none();
    }
    if (pod[id] >= 0) {
      max_pod = std::max(max_pod, a);
      max_half_index = std::max(max_half_index, b);
    }
  }
  const unsigned k = max_pod + 1;
  const unsigned half = max_half_index + 1;
  if (k < 2 || k % 2 != 0 || half != k / 2) return none();
  if (cores != half * half || n != cores + static_cast<std::size_t>(k) * k) return none();

  // Node tables: pod_nodes_[p][kind-1][i].
  s.pod_nodes_.assign(k, std::vector<std::vector<NodeId>>(
                             2, std::vector<NodeId>(half, kInvalidNode)));
  std::vector<NodeId> core(half * half, kInvalidNode);
  for (NodeId id = 0; id < n; ++id) {
    if (kind[id] == 0) {
      if (static_cast<unsigned>(index[id]) >= core.size()) return none();
      if (core[index[id]] != kInvalidNode) return none();
      core[index[id]] = id;
    } else {
      if (static_cast<unsigned>(index[id]) >= half) return none();
      NodeId& slot = s.pod_nodes_[pod[id]][kind[id] - 1][index[id]];
      if (slot != kInvalidNode) return none();
      slot = id;
    }
  }

  // Classify links: (pod, role) with identical role layout in every pod.
  const unsigned roles = half * half * 2;
  s.pod_links_.assign(k, std::vector<LinkId>(roles, kInvalidLink));
  s.link_pod_.assign(t.link_count(), -1);
  s.link_role_.assign(t.link_count(), -1);
  for (LinkId l = 0; l < t.link_count(); ++l) {
    const Link& ln = t.link(l);
    NodeId x = ln.a, y = ln.b;
    // Normalize endpoint order to (edge, agg) or (agg, core).
    if (kind[x] > kind[y]) std::swap(x, y);
    unsigned p = 0, role = 0;
    if (kind[x] == 1 && kind[y] == 2) {
      // (agg, edge) intra-pod link.
      if (pod[x] != pod[y]) return none();
      p = static_cast<unsigned>(pod[x]);
      role = static_cast<unsigned>(index[y]) * half + static_cast<unsigned>(index[x]);
    } else if (kind[x] == 0 && kind[y] == 1) {
      // (core, agg) uplink; agg i must hit core group i.
      const unsigned j = static_cast<unsigned>(index[x]);
      const unsigned a = static_cast<unsigned>(index[y]);
      if (j / half != a) return none();
      p = static_cast<unsigned>(pod[y]);
      role = half * half + j;
    } else {
      return none();
    }
    if (s.pod_links_[p][role] != kInvalidLink) return none();
    s.pod_links_[p][role] = l;
    s.link_pod_[l] = static_cast<int>(p);
    s.link_role_[l] = static_cast<int>(role);
  }
  for (unsigned p = 0; p < k; ++p) {
    for (unsigned r = 0; r < roles; ++r) {
      if (s.pod_links_[p][r] == kInvalidLink) return none();
    }
  }

  s.topo_ = &t;
  s.pod_count_ = k;
  s.half_ = half;
  s.node_kind_ = std::move(kind);
  s.node_pod_ = std::move(pod);
  s.node_index_ = std::move(index);
  s.class_of_pod_.assign(k, 0);
  return s;
}

int Symmetry::pod_of_link(LinkId l) const {
  if (topo_ == nullptr || l >= link_pod_.size()) return -1;
  return link_pod_[l];
}

int Symmetry::pod_of_node(NodeId n) const {
  if (topo_ == nullptr || n >= node_pod_.size()) return -1;
  return node_pod_[n];
}

void Symmetry::set_pod_classes(std::vector<unsigned> class_of_pod) {
  if (topo_ == nullptr) return;
  if (class_of_pod.size() != pod_count_) return;
  class_of_pod_ = std::move(class_of_pod);
}

Automorphism Symmetry::pod_swap(unsigned p, unsigned q) const {
  std::vector<unsigned> pod_map(pod_count_);
  std::iota(pod_map.begin(), pod_map.end(), 0u);
  std::swap(pod_map[p], pod_map[q]);
  return automorphism(pod_map);
}

Automorphism Symmetry::automorphism(const std::vector<unsigned>& pod_map) const {
  Automorphism a;
  a.node.resize(topo_->node_count());
  a.iface.resize(topo_->iface_count());
  a.link.resize(topo_->link_count());
  for (NodeId n = 0; n < a.node.size(); ++n) {
    if (node_kind_[n] == 0) {
      a.node[n] = n;  // cores are fixed
    } else {
      const unsigned p = pod_map[node_pod_[n]];
      a.node[n] = pod_nodes_[p][node_kind_[n] - 1][node_index_[n]];
    }
  }
  std::iota(a.iface.begin(), a.iface.end(), IfaceId{0});
  for (LinkId l = 0; l < a.link.size(); ++l) {
    const LinkId l2 = pod_links_[pod_map[link_pod_[l]]][link_role_[l]];
    a.link[l] = l2;
    const Link& src = topo_->link(l);
    const Link& dst = topo_->link(l2);
    if (a.node[src.a] == dst.a) {
      a.iface[src.a_iface] = dst.a_iface;
      a.iface[src.b_iface] = dst.b_iface;
    } else {
      a.iface[src.a_iface] = dst.b_iface;
      a.iface[src.b_iface] = dst.a_iface;
    }
  }
  return a;
}

std::vector<LinkId> Symmetry::apply_to_links(const std::vector<unsigned>& pod_map,
                                             const std::vector<LinkId>& links) const {
  std::vector<LinkId> out;
  out.reserve(links.size());
  for (const LinkId l : links) {
    out.push_back(pod_links_[pod_map[link_pod_[l]]][link_role_[l]]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

template <typename Fn>
void Symmetry::each_assignment(const std::vector<LinkId>& links, Fn&& fn) const {
  // Pods occupied by the link set, ascending.
  std::vector<unsigned> occupied;
  for (const LinkId l : links) {
    const unsigned p = static_cast<unsigned>(link_pod_[l]);
    if (!std::count(occupied.begin(), occupied.end(), p)) occupied.push_back(p);
  }
  std::sort(occupied.begin(), occupied.end());

  std::vector<unsigned> target(occupied.size());
  std::vector<bool> used(pod_count_, false);
  std::vector<unsigned> pod_map(pod_count_);

  // Complete occupied->target into a full class-respecting permutation by
  // mapping the remaining pods of each class onto the remaining slots in
  // ascending order (deterministic).
  const auto emit = [&]() {
    std::iota(pod_map.begin(), pod_map.end(), 0u);
    for (std::size_t i = 0; i < occupied.size(); ++i) pod_map[occupied[i]] = target[i];
    std::vector<bool> taken(pod_count_, false);
    for (std::size_t i = 0; i < occupied.size(); ++i) taken[target[i]] = true;
    std::vector<bool> moved(pod_count_, false);
    for (std::size_t i = 0; i < occupied.size(); ++i) moved[occupied[i]] = true;
    // Per class, zip unmoved sources with free targets in ascending order.
    for (unsigned cls = 0;; ++cls) {
      std::vector<unsigned> src, dst;
      for (unsigned p = 0; p < pod_count_; ++p) {
        if (class_of_pod_[p] != cls) continue;
        if (!moved[p]) src.push_back(p);
        if (!taken[p]) dst.push_back(p);
      }
      if (src.empty() && dst.empty()) {
        bool any = false;
        for (unsigned p = 0; p < pod_count_; ++p) any |= class_of_pod_[p] > cls;
        if (!any) break;
        continue;
      }
      for (std::size_t i = 0; i < src.size(); ++i) pod_map[src[i]] = dst[i];
    }
    return fn(static_cast<const std::vector<unsigned>&>(pod_map));
  };

  // Backtracking over class-respecting injective target assignments.
  bool stop = false;
  auto rec = [&](auto&& self, std::size_t idx) -> void {
    if (stop) return;
    if (idx == occupied.size()) {
      if (!emit()) stop = true;
      return;
    }
    const unsigned p = occupied[idx];
    for (unsigned q = 0; q < pod_count_ && !stop; ++q) {
      if (used[q] || class_of_pod_[q] != class_of_pod_[p]) continue;
      used[q] = true;
      target[idx] = q;
      self(self, idx + 1);
      used[q] = false;
    }
  };
  rec(rec, 0);
}

bool Symmetry::is_canonical(const std::vector<LinkId>& links) const {
  if (topo_ == nullptr) return true;
  bool canonical = true;
  each_assignment(links, [&](const std::vector<unsigned>& pod_map) {
    if (apply_to_links(pod_map, links) < links) {
      canonical = false;
      return false;  // stop
    }
    return true;
  });
  return canonical;
}

std::vector<LinkId> Symmetry::canonical(const std::vector<LinkId>& links) const {
  if (topo_ == nullptr) return links;
  std::vector<LinkId> best = links;
  each_assignment(links, [&](const std::vector<unsigned>& pod_map) {
    std::vector<LinkId> image = apply_to_links(pod_map, links);
    if (image < best) best = std::move(image);
    return true;
  });
  return best;
}

Symmetry::Orbit Symmetry::orbit(const std::vector<LinkId>& links) const {
  Orbit o;
  if (topo_ == nullptr) {
    std::vector<unsigned> identity(pod_count_);
    std::iota(identity.begin(), identity.end(), 0u);
    o.images.push_back({links, std::move(identity)});
    return o;
  }
  each_assignment(links, [&](const std::vector<unsigned>& pod_map) {
    std::vector<LinkId> image = apply_to_links(pod_map, links);
    for (const Orbit::Image& seen : o.images) {
      if (seen.links == image) return true;  // keep first pod_map per image
    }
    o.images.push_back({std::move(image), pod_map});
    return true;
  });
  std::sort(o.images.begin(), o.images.end(),
            [](const Orbit::Image& x, const Orbit::Image& y) { return x.links < y.links; });
  return o;
}

}  // namespace rcfg::topo
