#pragma once

// Physical topology: nodes (routers/switches), interfaces, point-to-point
// links. Purely structural — protocol configuration lives in rcfg::config.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rcfg::topo {

using NodeId = std::uint32_t;
using IfaceId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr IfaceId kInvalidIface = ~IfaceId{0};
inline constexpr LinkId kInvalidLink = ~LinkId{0};

/// A router interface. `link` is set once the interface is wired.
struct Interface {
  std::string name;          ///< unique within its node, e.g. "eth3"
  NodeId node = kInvalidNode;
  std::optional<LinkId> link;
};

struct Node {
  std::string name;  ///< unique within the topology
  std::vector<IfaceId> ifaces;
};

/// An undirected point-to-point link between two interfaces.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  IfaceId a_iface = kInvalidIface;
  IfaceId b_iface = kInvalidIface;
};

class Topology {
 public:
  /// Add a node; name must be unique.
  NodeId add_node(std::string name);

  /// Add an interface to `node`; name must be unique within the node.
  IfaceId add_interface(NodeId node, std::string name);

  /// Wire two yet-unwired interfaces together.
  LinkId add_link(IfaceId a, IfaceId b);

  /// Convenience: create an interface on each node and wire them. The
  /// interface names default to "to-<peer>" (with a numeric suffix when a
  /// parallel link needs disambiguation).
  LinkId connect(NodeId a, NodeId b);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t iface_count() const noexcept { return ifaces_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }

  const Node& node(NodeId id) const { return nodes_.at(id); }
  const Interface& iface(IfaceId id) const { return ifaces_.at(id); }
  const Link& link(LinkId id) const { return links_.at(id); }

  /// Node lookup by name; kInvalidNode if absent.
  NodeId find_node(std::string_view name) const;

  /// Interface lookup by (node, name); kInvalidIface if absent.
  IfaceId find_interface(NodeId node, std::string_view name) const;

  /// The node on the other end of `l` from `n`; kInvalidNode if `n` is not
  /// an endpoint of `l`.
  NodeId peer(LinkId l, NodeId n) const;

  /// The interface of the peer of `n` on link `l`.
  IfaceId peer_iface(LinkId l, NodeId n) const;

  /// The remote interface connected to local interface `i` (through its
  /// link); kInvalidIface if `i` is unwired.
  IfaceId remote_iface(IfaceId i) const;

  /// All (iface, link, peer-node) triples of a node's wired interfaces.
  struct Adjacency {
    IfaceId iface;
    LinkId link;
    NodeId peer;
  };
  std::vector<Adjacency> adjacencies(NodeId n) const;

  /// Graphviz DOT rendering (for docs/examples).
  std::string to_dot() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Interface> ifaces_;
  std::vector<Link> links_;
  std::unordered_map<std::string, NodeId> node_by_name_;
};

}  // namespace rcfg::topo
