#include "topo/generators.h"

#include <stdexcept>
#include <string>
#include <unordered_set>

#include "core/hash.h"

namespace rcfg::topo {

FatTreeShape::FatTreeShape(unsigned k_) : k(k_) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat tree requires even k >= 2");
  }
}

Topology make_fat_tree(unsigned k) {
  const FatTreeShape shape{k};
  const unsigned half = k / 2;
  Topology t;

  std::vector<NodeId> core(static_cast<std::size_t>(shape.cores()));
  for (unsigned j = 0; j < core.size(); ++j) {
    core[j] = t.add_node("core" + std::to_string(j));
  }
  std::vector<std::vector<NodeId>> agg(k), edge(k);
  for (unsigned p = 0; p < k; ++p) {
    agg[p].resize(half);
    edge[p].resize(half);
    for (unsigned i = 0; i < half; ++i) {
      agg[p][i] = t.add_node("agg" + std::to_string(p) + "-" + std::to_string(i));
    }
    for (unsigned i = 0; i < half; ++i) {
      edge[p][i] = t.add_node("edge" + std::to_string(p) + "-" + std::to_string(i));
    }
  }

  for (unsigned p = 0; p < k; ++p) {
    // Every edge switch peers with every aggregation switch in its pod.
    for (unsigned e = 0; e < half; ++e) {
      for (unsigned a = 0; a < half; ++a) {
        t.connect(edge[p][e], agg[p][a]);
      }
    }
    // Aggregation switch i uplinks to core group i (cores i*half..i*half+half-1).
    for (unsigned a = 0; a < half; ++a) {
      for (unsigned c = 0; c < half; ++c) {
        t.connect(agg[p][a], core[a * half + c]);
      }
    }
  }
  return t;
}

Topology make_grid(unsigned w, unsigned h) {
  if (w == 0 || h == 0) throw std::invalid_argument("grid dimensions must be positive");
  Topology t;
  std::vector<NodeId> ids(static_cast<std::size_t>(w) * h);
  for (unsigned y = 0; y < h; ++y) {
    for (unsigned x = 0; x < w; ++x) {
      ids[static_cast<std::size_t>(y) * w + x] =
          t.add_node("n" + std::to_string(x) + "-" + std::to_string(y));
    }
  }
  for (unsigned y = 0; y < h; ++y) {
    for (unsigned x = 0; x < w; ++x) {
      const NodeId here = ids[static_cast<std::size_t>(y) * w + x];
      if (x + 1 < w) t.connect(here, ids[static_cast<std::size_t>(y) * w + x + 1]);
      if (y + 1 < h) t.connect(here, ids[(static_cast<std::size_t>(y) + 1) * w + x]);
    }
  }
  return t;
}

Topology make_ring(unsigned n) {
  if (n < 3) throw std::invalid_argument("ring requires n >= 3");
  Topology t;
  std::vector<NodeId> ids(n);
  for (unsigned i = 0; i < n; ++i) ids[i] = t.add_node("r" + std::to_string(i));
  for (unsigned i = 0; i < n; ++i) t.connect(ids[i], ids[(i + 1) % n]);
  return t;
}

Topology make_full_mesh(unsigned n) {
  if (n < 2) throw std::invalid_argument("mesh requires n >= 2");
  Topology t;
  std::vector<NodeId> ids(n);
  for (unsigned i = 0; i < n; ++i) ids[i] = t.add_node("m" + std::to_string(i));
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; ++j) t.connect(ids[i], ids[j]);
  }
  return t;
}

namespace {

/// Shared body of make_random_connected / make_wan: spanning tree plus
/// random extra links, simple by construction. Node names "<prefix><i>".
Topology random_connected(const char* prefix, unsigned n, unsigned links,
                          core::Rng& rng) {
  if (n < 2) throw std::invalid_argument("random graph requires n >= 2");
  if (links < n - 1) throw std::invalid_argument("need at least n-1 links");
  const std::uint64_t simple_cap = std::uint64_t{n} * (n - 1) / 2;
  if (links > simple_cap) {
    // Downstream consumers (failure-sweep link normalization, per-link
    // subnets) assume simple graphs; refuse rather than silently emitting
    // parallel links once the simple graph saturates.
    throw std::invalid_argument("random graph on " + std::to_string(n) +
                                " nodes holds at most " + std::to_string(simple_cap) +
                                " simple links; asked for " + std::to_string(links));
  }
  Topology t;
  std::vector<NodeId> ids(n);
  for (unsigned i = 0; i < n; ++i) ids[i] = t.add_node(prefix + std::to_string(i));

  std::unordered_set<std::uint64_t> used;
  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (std::uint64_t{a} << 32) | b;
  };

  // Random spanning tree: attach each node to a random earlier node.
  for (unsigned i = 1; i < n; ++i) {
    const NodeId parent = ids[rng.next_below(i)];
    t.connect(parent, ids[i]);
    used.insert(key(parent, ids[i]));
  }
  // Extra links, always distinct from the ones already placed.
  unsigned added = n - 1;
  while (added < links) {
    const NodeId a = ids[rng.next_below(n)];
    const NodeId b = ids[rng.next_below(n)];
    if (a == b) continue;
    if (used.contains(key(a, b))) continue;
    used.insert(key(a, b));
    t.connect(a, b);
    ++added;
  }
  return t;
}

}  // namespace

Topology make_random_connected(unsigned n, unsigned links, core::Rng& rng) {
  return random_connected("v", n, links, rng);
}

// --- torus -----------------------------------------------------------------

TorusShape::TorusShape(std::vector<unsigned> dims_) : dims(std::move(dims_)) {
  if (dims.size() != 2 && dims.size() != 3) {
    throw std::invalid_argument("torus requires 2 or 3 dimensions");
  }
  for (const unsigned m : dims) {
    if (m < 2) throw std::invalid_argument("torus extents must be >= 2");
  }
}

std::uint64_t TorusShape::nodes() const {
  std::uint64_t n = 1;
  for (const unsigned m : dims) n *= m;
  return n;
}

std::uint64_t TorusShape::links() const {
  const std::uint64_t n = nodes();
  std::uint64_t total = 0;
  for (const unsigned m : dims) {
    // n/m lines of m nodes: m links each with a wrap (m >= 3), else 1.
    total += n / m * (m >= 3 ? m : 1);
  }
  return total;
}

unsigned TorusShape::degree() const {
  unsigned d = 0;
  for (const unsigned m : dims) d += m >= 3 ? 2 : 1;
  return d;
}

namespace {

Topology make_torus_impl(const std::vector<unsigned>& dims) {
  const TorusShape shape{dims};
  Topology t;
  // Row-major node ids: coordinate (c0, c1[, c2]) at index
  // ((c2) * dims[1] + c1) * dims[0] + c0 for the 3-D case.
  std::vector<unsigned> coord(dims.size(), 0);
  const std::uint64_t n = shape.nodes();
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t rest = i;
    std::string name = "ts";
    for (std::size_t d = 0; d < dims.size(); ++d) {
      coord[d] = static_cast<unsigned>(rest % dims[d]);
      rest /= dims[d];
      name += (d == 0 ? "" : "-") + std::to_string(coord[d]);
    }
    ids[i] = t.add_node(std::move(name));
  }
  auto index_of = [&](const std::vector<unsigned>& c) {
    std::uint64_t idx = 0;
    for (std::size_t d = dims.size(); d-- > 0;) idx = idx * dims[d] + c[d];
    return idx;
  };
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t rest = i;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      coord[d] = static_cast<unsigned>(rest % dims[d]);
      rest /= dims[d];
    }
    for (std::size_t d = 0; d < dims.size(); ++d) {
      const unsigned m = dims[d];
      // +1 neighbor with wraparound; skip the wrap link when m == 2 (it
      // would duplicate the path link) and always skip self-links (m == 1
      // is already rejected by the shape).
      if (coord[d] + 1 == m && m < 3) continue;
      std::vector<unsigned> peer = coord;
      peer[d] = (coord[d] + 1) % m;
      t.connect(ids[i], ids[index_of(peer)]);
    }
  }
  return t;
}

}  // namespace

Topology make_torus(unsigned w, unsigned h) { return make_torus_impl({w, h}); }

Topology make_torus(unsigned x, unsigned y, unsigned z) {
  return make_torus_impl({x, y, z});
}

// --- dragonfly -------------------------------------------------------------

DragonflyShape::DragonflyShape(DragonflyParams params) : p(params) {
  if (p.groups < 2) throw std::invalid_argument("dragonfly requires >= 2 groups");
  if (p.routers_per_group < 1) {
    throw std::invalid_argument("dragonfly requires >= 1 router per group");
  }
  if (p.global_per_router < 1) {
    throw std::invalid_argument("dragonfly requires >= 1 global link per router");
  }
  if (std::uint64_t{p.groups} - 1 >
      std::uint64_t{p.routers_per_group} * p.global_per_router) {
    throw std::invalid_argument(
        "dragonfly global capacity exceeded: groups-1 must be <= "
        "routers_per_group * global_per_router");
  }
}

Topology make_dragonfly(const DragonflyParams& params) {
  const DragonflyShape shape{params};
  const unsigned g = params.groups;
  const unsigned a = params.routers_per_group;
  Topology t;

  std::vector<std::vector<NodeId>> router(g);
  for (unsigned gi = 0; gi < g; ++gi) {
    router[gi].resize(a);
    for (unsigned r = 0; r < a; ++r) {
      router[gi][r] =
          t.add_node("dfr" + std::to_string(gi) + "-" + std::to_string(r));
    }
  }
  // Terminals: p single-homed leaves per router.
  for (unsigned gi = 0; gi < g; ++gi) {
    for (unsigned r = 0; r < a; ++r) {
      for (unsigned ti = 0; ti < params.terminals_per_router; ++ti) {
        const NodeId term = t.add_node("dft" + std::to_string(gi) + "-" +
                                       std::to_string(r) + "-" + std::to_string(ti));
        t.connect(router[gi][r], term);
      }
    }
  }
  // Intra-group full mesh.
  for (unsigned gi = 0; gi < g; ++gi) {
    for (unsigned i = 0; i < a; ++i) {
      for (unsigned j = i + 1; j < a; ++j) t.connect(router[gi][i], router[gi][j]);
    }
  }
  // One global link per group pair, endpoints assigned round-robin over
  // each group's routers so per-router global degree stays <= h.
  std::vector<unsigned> next_port(g, 0);
  for (unsigned i = 0; i < g; ++i) {
    for (unsigned j = i + 1; j < g; ++j) {
      const NodeId from = router[i][next_port[i]++ % a];
      const NodeId to = router[j][next_port[j]++ % a];
      t.connect(from, to);
    }
  }
  return t;
}

// --- WAN -------------------------------------------------------------------

WeightedTopology make_wan(const WanParams& params, core::Rng& rng) {
  if (params.min_cost < 1 || params.max_cost < params.min_cost ||
      params.max_cost > 65535) {
    throw std::invalid_argument("WAN link costs must satisfy 1 <= min <= max <= 65535");
  }
  WeightedTopology wt;
  wt.topo = random_connected("w", params.nodes, params.links, rng);
  wt.link_cost.reserve(wt.topo.link_count());
  for (std::size_t l = 0; l < wt.topo.link_count(); ++l) {
    wt.link_cost.push_back(static_cast<std::uint32_t>(
        rng.next_in(params.min_cost, params.max_cost)));
  }
  return wt;
}

}  // namespace rcfg::topo
