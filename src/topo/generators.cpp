#include "topo/generators.h"

#include <stdexcept>
#include <unordered_set>

#include "core/hash.h"

namespace rcfg::topo {

Topology make_fat_tree(unsigned k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat tree requires even k >= 2");
  }
  const unsigned half = k / 2;
  Topology t;

  std::vector<NodeId> core(half * half);
  for (unsigned j = 0; j < core.size(); ++j) {
    core[j] = t.add_node("core" + std::to_string(j));
  }
  std::vector<std::vector<NodeId>> agg(k), edge(k);
  for (unsigned p = 0; p < k; ++p) {
    agg[p].resize(half);
    edge[p].resize(half);
    for (unsigned i = 0; i < half; ++i) {
      agg[p][i] = t.add_node("agg" + std::to_string(p) + "-" + std::to_string(i));
    }
    for (unsigned i = 0; i < half; ++i) {
      edge[p][i] = t.add_node("edge" + std::to_string(p) + "-" + std::to_string(i));
    }
  }

  for (unsigned p = 0; p < k; ++p) {
    // Every edge switch peers with every aggregation switch in its pod.
    for (unsigned e = 0; e < half; ++e) {
      for (unsigned a = 0; a < half; ++a) {
        t.connect(edge[p][e], agg[p][a]);
      }
    }
    // Aggregation switch i uplinks to core group i (cores i*half..i*half+half-1).
    for (unsigned a = 0; a < half; ++a) {
      for (unsigned c = 0; c < half; ++c) {
        t.connect(agg[p][a], core[a * half + c]);
      }
    }
  }
  return t;
}

Topology make_grid(unsigned w, unsigned h) {
  if (w == 0 || h == 0) throw std::invalid_argument("grid dimensions must be positive");
  Topology t;
  std::vector<NodeId> ids(static_cast<std::size_t>(w) * h);
  for (unsigned y = 0; y < h; ++y) {
    for (unsigned x = 0; x < w; ++x) {
      ids[static_cast<std::size_t>(y) * w + x] =
          t.add_node("n" + std::to_string(x) + "-" + std::to_string(y));
    }
  }
  for (unsigned y = 0; y < h; ++y) {
    for (unsigned x = 0; x < w; ++x) {
      const NodeId here = ids[static_cast<std::size_t>(y) * w + x];
      if (x + 1 < w) t.connect(here, ids[static_cast<std::size_t>(y) * w + x + 1]);
      if (y + 1 < h) t.connect(here, ids[(static_cast<std::size_t>(y) + 1) * w + x]);
    }
  }
  return t;
}

Topology make_ring(unsigned n) {
  if (n < 3) throw std::invalid_argument("ring requires n >= 3");
  Topology t;
  std::vector<NodeId> ids(n);
  for (unsigned i = 0; i < n; ++i) ids[i] = t.add_node("r" + std::to_string(i));
  for (unsigned i = 0; i < n; ++i) t.connect(ids[i], ids[(i + 1) % n]);
  return t;
}

Topology make_full_mesh(unsigned n) {
  if (n < 2) throw std::invalid_argument("mesh requires n >= 2");
  Topology t;
  std::vector<NodeId> ids(n);
  for (unsigned i = 0; i < n; ++i) ids[i] = t.add_node("m" + std::to_string(i));
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; ++j) t.connect(ids[i], ids[j]);
  }
  return t;
}

Topology make_random_connected(unsigned n, unsigned links, core::Rng& rng) {
  if (n < 2) throw std::invalid_argument("random graph requires n >= 2");
  if (links < n - 1) throw std::invalid_argument("need at least n-1 links");
  Topology t;
  std::vector<NodeId> ids(n);
  for (unsigned i = 0; i < n; ++i) ids[i] = t.add_node("v" + std::to_string(i));

  std::unordered_set<std::uint64_t> used;
  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (std::uint64_t{a} << 32) | b;
  };

  // Random spanning tree: attach each node to a random earlier node.
  for (unsigned i = 1; i < n; ++i) {
    const NodeId parent = ids[rng.next_below(i)];
    t.connect(parent, ids[i]);
    used.insert(key(parent, ids[i]));
  }
  // Extra links. Parallel links allowed only if the simple graph saturates.
  const std::uint64_t simple_cap = std::uint64_t{n} * (n - 1) / 2;
  unsigned added = n - 1;
  while (added < links) {
    const NodeId a = ids[rng.next_below(n)];
    const NodeId b = ids[rng.next_below(n)];
    if (a == b) continue;
    if (used.size() < simple_cap && used.contains(key(a, b))) continue;
    used.insert(key(a, b));
    t.connect(a, b);
    ++added;
  }
  return t;
}

}  // namespace rcfg::topo
