#pragma once

// The explain engine: given a policy on a live verifier, produce the
// operator-facing story of *why* it currently holds or fails —
//
//   * a witness EC and a concrete witness packet inside the policy's
//     packet set, chosen to exhibit the current verdict (for a violated
//     waypoint: a delivered path that misses the waypoint; for a violated
//     reachability: a non-delivering EC; for a violated isolation: a
//     leaking EC);
//   * the hop-by-hop replay of that packet through the data plane model
//     (verify::trace_flow over NetworkModel::lookup / filter_verdict),
//     with the LPM rule and deciding ACL rule at every hop;
//   * the causes: the batch in the provenance window that last moved the
//     policy's ECs, its per-stage spans, and the config-line edits of that
//     batch — devices whose own rule ops touched the witness ECs marked
//     as direct causes, the rest as remote (a config edit here, a rule
//     change there).
//
// EC ids shift across batches as the partition refines; the cause walk
// translates the policy's *current* ECs backwards through each batch's
// recorded splits (child → parent) so older batches are tested against
// the ids that existed when they ran.

#include <cstdint>
#include <string>
#include <vector>

#include "explain/provenance.h"
#include "verify/realconfig.h"
#include "verify/trace.h"

namespace rcfg::explain {

/// One config-level cause from the offending batch.
struct Cause {
  std::string device;  ///< device whose config changed in the batch
  /// True when the device's own rule ops in the batch touched the witness
  /// ECs; false for a remote cause (its config edit moved rules elsewhere).
  bool direct = false;
  std::vector<config::LineEdit> edits;  ///< that device's config-line edits
};

struct Explanation {
  verify::PolicyId policy_id = 0;
  verify::PolicyKind kind = verify::PolicyKind::kReachability;
  bool satisfied = false;

  bool has_witness = false;  ///< false when the policy's packet set is empty
  dpm::EcId witness_ec = 0;
  config::Flow witness;       ///< concrete packet from the witness EC
  verify::FlowTrace trace;    ///< hop-by-hop replay from the policy's src

  /// The newest batch in the window whose EC moves / ACL changes touched
  /// the policy's ECs; 0 when none is in the window (or no log).
  std::uint64_t offending_batch = 0;
  std::string offending_label;
  StageSpans offending_spans;
  std::vector<Cause> causes;  ///< direct causes first
};

/// Explain policy `id` on the live verifier. `log` may be null (tracing
/// off): the witness and path replay still work, causes stay empty.
Explanation explain_policy(verify::RealConfig& rc, verify::PolicyId id,
                           const ProvenanceLog* log);

}  // namespace rcfg::explain
