#include "explain/explain.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace rcfg::explain {

namespace {

/// Does `trace` contain a branch delivered at `dst` that never visits
/// `via`? (The concrete counterexample shape for a violated waypoint.)
bool delivered_missing_via(const verify::FlowTrace& trace, topo::NodeId dst,
                          topo::NodeId via) {
  for (const verify::TraceBranch& b : trace.branches) {
    if (b.disposition != verify::Disposition::kDelivered) continue;
    if (b.hops.empty() || b.hops.back().node != dst) continue;
    bool crosses = false;
    for (const verify::TraceHop& h : b.hops) crosses = crosses || h.node == via;
    if (!crosses) return true;
  }
  return false;
}

/// Pick the EC (and its concrete packet) that exhibits the policy's
/// current verdict. Returns false when the policy's packet set holds no EC
/// (nothing to trace).
bool pick_witness(verify::RealConfig& rc, const verify::Policy& policy, bool satisfied,
                  Explanation& out) {
  const std::vector<dpm::EcId> candidates = rc.ecs().ecs_in(policy.packets);
  if (candidates.empty()) return false;

  auto flow_of_ec = [&rc](dpm::EcId ec) {
    const auto assignment = rc.packet_space().pick_one(rc.ecs().ec_bdd(ec));
    return assignment.has_value() ? dpm::PacketSpace::flow_of(*assignment) : config::Flow{};
  };

  const verify::IncrementalChecker& checker = rc.checker();
  auto take = [&](dpm::EcId ec) {
    out.has_witness = true;
    out.witness_ec = ec;
    out.witness = flow_of_ec(ec);
    out.trace = verify::trace_flow(rc.topology(), rc.model(), out.witness, policy.src);
  };

  switch (policy.kind) {
    case verify::PolicyKind::kReachability:
      // Violated: an EC that does not reach. Satisfied: any (all reach).
      for (const dpm::EcId ec : candidates) {
        if (satisfied || !checker.reachable(policy.src, policy.dst, ec)) {
          take(ec);
          return true;
        }
      }
      break;
    case verify::PolicyKind::kIsolation:
      // Violated: a leaking EC. Satisfied: any (none leak).
      for (const dpm::EcId ec : candidates) {
        if (!satisfied && !checker.reachable(policy.src, policy.dst, ec)) continue;
        take(ec);
        return true;
      }
      break;
    case verify::PolicyKind::kWaypoint:
      // Violated: an EC with a delivered branch that misses the waypoint.
      for (const dpm::EcId ec : candidates) {
        take(ec);
        if (satisfied || delivered_missing_via(out.trace, policy.dst, policy.via)) return true;
      }
      break;
  }
  // No EC matched the expected shape (stale verdict would be a checker
  // bug); fall back to the first candidate so the caller still gets a path.
  take(candidates.front());
  return true;
}

/// Walk the log newest-first for the batch that last moved `policy_ecs`,
/// translating EC ids backwards through splits, and fill in the causes.
void find_causes(const ProvenanceLog& log, const verify::RealConfig& rc,
                 const std::vector<dpm::EcId>& policy_ecs, Explanation& out) {
  std::unordered_set<dpm::EcId> relevant(policy_ecs.begin(), policy_ecs.end());

  for (std::size_t i = 0; i < log.size(); ++i) {
    const BatchRecord& batch = log.newest(i);

    // If this batch ended in an EC merge, `relevant` (expressed in the id
    // space newer batches speak) must first be translated back into the
    // pre-remap ids the batch's own moves were recorded in: every old id
    // whose forward image is relevant is relevant.
    if (batch.remap.has_value()) {
      std::unordered_set<dpm::EcId> pre;
      const std::vector<dpm::EcId>& fwd = batch.remap->forward;
      for (dpm::EcId old = 0; old < fwd.size(); ++old) {
        if (relevant.count(fwd[old]) != 0) pre.insert(old);
      }
      relevant = std::move(pre);
    }

    // Devices whose rule ops in this batch touched the relevant ECs.
    std::unordered_set<topo::NodeId> direct_devices;
    for (const dpm::ModelDelta::Move& m : batch.model.moves) {
      if (relevant.count(m.ec) != 0) direct_devices.insert(m.device);
    }
    bool acl_hit = false;
    for (const dpm::EcId ec : batch.model.acl_affected) acl_hit = acl_hit || relevant.count(ec) != 0;
    if (acl_hit) {
      for (const auto& [rule, weight] : batch.dataplane.filters) {
        (void)weight;
        direct_devices.insert(rule.node);
      }
    }

    if (!direct_devices.empty()) {
      out.offending_batch = batch.seq;
      out.offending_label = batch.label;
      out.offending_spans = batch.spans;
      for (const config::DeviceDiff& dd : batch.config_diff()) {
        Cause cause;
        cause.device = dd.device;
        const topo::NodeId node = rc.topology().find_node(dd.device);
        cause.direct = node != topo::kInvalidNode && direct_devices.count(node) != 0;
        cause.edits = dd.edits;
        out.causes.push_back(std::move(cause));
      }
      std::stable_sort(out.causes.begin(), out.causes.end(),
                       [](const Cause& a, const Cause& b) { return a.direct > b.direct; });
      return;
    }

    // Translate the relevant set into the id space that existed *before*
    // this batch's splits, then keep walking older batches.
    for (auto it = batch.model.splits.rbegin(); it != batch.model.splits.rend(); ++it) {
      if (relevant.count(it->child) != 0) relevant.insert(it->parent);
    }
  }
}

}  // namespace

Explanation explain_policy(verify::RealConfig& rc, verify::PolicyId id,
                           const ProvenanceLog* log) {
  Explanation out;
  const verify::Policy& policy = rc.checker().policy(id);
  out.policy_id = id;
  out.kind = policy.kind;
  out.satisfied = rc.checker().policy_satisfied(id);

  pick_witness(rc, policy, out.satisfied, out);

  if (log != nullptr && !log->empty()) {
    find_causes(*log, rc, rc.ecs().ecs_in(policy.packets), out);
  }
  return out;
}

}  // namespace rcfg::explain
