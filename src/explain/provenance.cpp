#include "explain/provenance.h"

#include <utility>

namespace rcfg::explain {

const std::vector<config::DeviceDiff>& BatchRecord::config_diff() const {
  if (!diff_.has_value()) diff_ = config::diff_networks(old_config, new_config);
  return *diff_;
}

std::uint64_t ProvenanceLog::record(BatchRecord record) {
  record.seq = next_seq_++;
  records_.push_back(std::move(record));
  if (records_.size() > capacity_) records_.pop_front();
  return records_.back().seq;
}

const BatchRecord* ProvenanceLog::latest() const {
  return records_.empty() ? nullptr : &records_.back();
}

const BatchRecord* ProvenanceLog::find(std::uint64_t seq) const {
  for (const BatchRecord& r : records_) {
    if (r.seq == seq) return &r;
  }
  return nullptr;
}

}  // namespace rcfg::explain
