#pragma once

// Cross-stage provenance: per change batch, the causal chain the pipeline
// walked — config diff → data-plane rule delta → EC splits/moves → policy
// verdict flips — plus the per-stage timing spans.
//
// The log is strictly pay-as-you-go: nothing in the pipeline records into
// it unless a session was opened with tracing on, and the config-line diff
// (the only expensive derived view) is computed lazily on the first
// explain that needs it, then cached. A bounded ring keeps the newest
// batches; explain answers come from what is still in the window.
//
// A ProvenanceLog is owned by one service::Session and inherits its
// threading contract: the engine serializes all access per session, so no
// locking happens here (the lazy diff cache included).

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "config/diff.h"
#include "config/types.h"
#include "dpm/model.h"
#include "routing/generator.h"
#include "verify/checker.h"
#include "verify/realconfig.h"

namespace rcfg::explain {

/// Wall time spent in each pipeline stage for one batch (mirrors
/// verify::RealConfig::Report's timing fields).
struct StageSpans {
  double generate_ms = 0;
  double model_ms = 0;
  double check_ms = 0;
  double total_ms() const { return generate_ms + model_ms + check_ms; }
};

/// Everything one change batch did, end to end.
struct BatchRecord {
  std::uint64_t seq = 0;       ///< log-assigned, monotonically increasing
  std::size_t generation = 0;  ///< verifier instance that ran the batch
  std::string label;           ///< "open" | "propose" | "abort"

  config::NetworkConfig old_config;  ///< before the batch
  config::NetworkConfig new_config;  ///< after the batch

  /// Stage 1 output: the rule delta, plus the devices whose compiled facts
  /// changed (the fact-level origin of the delta; sorted, unique).
  routing::DataPlaneDelta dataplane;
  std::vector<topo::NodeId> changed_devices;

  /// Stage 2 output: splits, net EC moves, ACL-affected ECs.
  dpm::ModelDelta model;

  /// Stage 3 output: the policies whose verdict flipped.
  std::vector<verify::PolicyEvent> events;

  /// The reclaim step's EC merge, when one ran after this batch's check.
  /// The batch's own splits/moves are recorded in the *pre-remap* id
  /// space; newer batches (and the live verifier) speak post-remap ids,
  /// so cause walks translate backward through this before matching.
  std::optional<dpm::EcRemap> remap;

  StageSpans spans;

  /// Per-device config-line edits old → new, computed on first use and
  /// cached (single-threaded per the session contract).
  const std::vector<config::DeviceDiff>& config_diff() const;

 private:
  mutable std::optional<std::vector<config::DeviceDiff>> diff_;
};

/// Bounded newest-first history of batch records.
class ProvenanceLog {
 public:
  explicit ProvenanceLog(std::size_t capacity = 32)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Stamp `record` with the next sequence number and append it, evicting
  /// the oldest record when full. Returns the assigned seq (first is 1).
  std::uint64_t record(BatchRecord record);

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Newest record, or nullptr when empty.
  const BatchRecord* latest() const;
  /// Record by sequence number, or nullptr when evicted / never recorded.
  const BatchRecord* find(std::uint64_t seq) const;

  /// Records newest-first (index 0 = latest).
  const BatchRecord& newest(std::size_t i) const { return records_[records_.size() - 1 - i]; }

 private:
  std::size_t capacity_;
  std::uint64_t next_seq_ = 1;
  std::deque<BatchRecord> records_;  ///< oldest at front
};

}  // namespace rcfg::explain
