#pragma once

// Safe update-order synthesis (Toward Synthesis of Network Updates,
// PAPERS.md): given a batch of per-device configuration updates and the
// policies registered on a live verifier, find an order in which to roll
// the updates out so that EVERY intermediate state satisfies every policy
// that held at the start — or, when no such order exists, identify the
// smallest subset of updates that blocks all orderings.
//
// The verifier is the inner loop. One scratch replica is forked from the
// base state; placing a step is "restore the parent checkpoint -> apply
// the prefix's composed config incrementally -> re-check" (PR 4's
// restore/apply/check/discard recipe, with a per-depth snapshot stack so
// backtracking is a restore, not a rebuild). Steps must touch pairwise
// disjoint device sets — then placed sets commute, the intermediate state
// depends only on WHICH steps are placed (not their order), and the search
// memoises failed placed-sets as bitmasks, collapsing the n! order space
// to at most 2^n distinct states.
//
// Search: greedy descent (steps tried in index order, first passing step
// taken) with backtracking on dead ends. When the full set is infeasible,
// a minimal-blocking search re-runs the synthesis with every size-1, then
// size-2, ... subset excluded (bounded by OrderOptions::max_blocking):
// the first exclusion that admits a safe order of the remainder is the
// minimal blocking subset — which names the broken step(s) instead of
// reporting a bare failure.

#include <cstdint>
#include <string>
#include <vector>

#include "config/types.h"
#include "verify/realconfig.h"

namespace rcfg::relate {

/// One rollout step: the devices it reconfigures and their new configs.
/// Patch devices replace (or extend) the base network's entries; steps in
/// one batch must touch pairwise disjoint device sets.
struct UpdateStep {
  std::string name;
  config::NetworkConfig patch;
};

struct OrderOptions {
  /// Largest blocking subset the exclusion search will look for. Bigger
  /// values prove minimality for deeper faults at combinatorial cost.
  std::size_t max_blocking = 2;
  /// Hard cap on verified candidate placements across the whole synthesis
  /// (a safety valve; 2^n memoisation keeps real runs far below it).
  std::size_t max_explored = 4096;
};

/// What happened when one step was placed on top of a (safe) prefix.
struct StepVerdict {
  std::size_t step = 0;       ///< index into the input batch
  bool converged = true;      ///< the control plane reached a stable state
  /// Policies that held at base but are violated after placing the step
  /// (empty iff the placement is safe and converged).
  std::vector<verify::PolicyId> violated;
  std::size_t affected_ecs = 0;  ///< incremental work the placement caused
  double apply_ms = 0;
};

struct OrderResult {
  /// A safe total order was found. When `blocking` is also nonempty the
  /// order covers every step EXCEPT the blocking subset.
  bool found = false;
  std::vector<std::size_t> order;     ///< step indices in rollout order
  std::vector<StepVerdict> verdicts;  ///< per placed step of `order`
  /// Minimal subset whose exclusion makes the rest orderable (empty when
  /// found on the full set, or when no subset within max_blocking works).
  std::vector<std::size_t> blocking;
  /// True when `blocking` is provably minimal: every strictly smaller
  /// exclusion (including none) was searched exhaustively and failed.
  bool blocking_minimal = false;
  std::size_t explored = 0;  ///< candidate placements actually verified
  std::size_t restores = 0;  ///< checkpoint restores performed
  double snapshot_ms = 0;    ///< base checkpoint cost
  double search_ms = 0;      ///< everything after the checkpoint
};

/// Synthesize a safe rollout order for `steps` over the base verifier's
/// current state and registered policies. The base is never mutated: all
/// work happens on a private scratch fork. Throws std::invalid_argument
/// when two steps touch the same device, a step is empty, or the batch
/// exceeds 64 steps (the bitmask memo width); dd::NonterminationError is
/// absorbed — a non-converging placement is an unsafe placement, not an
/// error.
class UpdateOrderSynthesizer {
 public:
  /// `base_cfg` must be the configuration most recently applied to `base`.
  UpdateOrderSynthesizer(verify::RealConfig& base, config::NetworkConfig base_cfg)
      : base_(base), base_cfg_(std::move(base_cfg)) {}

  OrderResult synthesize(const std::vector<UpdateStep>& steps,
                         const OrderOptions& options = {});

 private:
  verify::RealConfig& base_;
  config::NetworkConfig base_cfg_;
};

}  // namespace rcfg::relate
