#include "relate/order.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "dd/graph.h"

namespace rcfg::relate {

namespace {
double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint64_t bit(std::size_t i) { return std::uint64_t{1} << i; }
}  // namespace

OrderResult UpdateOrderSynthesizer::synthesize(const std::vector<UpdateStep>& steps,
                                               const OrderOptions& options) {
  OrderResult result;
  const std::size_t n = steps.size();
  if (n == 0) {
    result.found = true;  // nothing to roll out
    return result;
  }
  if (n > 64) {
    throw std::invalid_argument(
        "order synthesis supports at most 64 steps (bitmask memo width)");
  }
  // Disjointness is what makes placed-set memoisation sound: when no two
  // steps touch the same device, placements commute and the intermediate
  // state depends only on the placed SET.
  std::map<std::string, std::size_t> owner;
  for (std::size_t i = 0; i < n; ++i) {
    if (steps[i].patch.devices.empty()) {
      throw std::invalid_argument("step '" + steps[i].name + "' has an empty patch");
    }
    for (const auto& [device, cfg] : steps[i].patch.devices) {
      if (base_cfg_.devices.find(device) == base_cfg_.devices.end()) {
        throw std::invalid_argument("step '" + steps[i].name +
                                    "' touches unknown device '" + device + "'");
      }
      const auto [it, inserted] = owner.emplace(device, i);
      if (!inserted) {
        throw std::invalid_argument("steps '" + steps[it->second].name + "' and '" +
                                    steps[i].name + "' both touch device '" + device +
                                    "' — update steps must be pairwise disjoint");
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto base_snap = base_.snapshot();
  // One scratch replica serves the whole search; reclamation off so EC ids
  // stay stable across the restore/apply churn, single-threaded so the
  // synthesizer composes with sharded callers.
  verify::RealConfigOptions opts = base_.options();
  opts.threads = 1;
  opts.reclamation.enabled = false;
  opts.provenance = false;
  std::unique_ptr<verify::RealConfig> replica = base_.fork(*base_snap, opts);
  result.snapshot_ms = ms_between(t0, std::chrono::steady_clock::now());
  const auto t1 = std::chrono::steady_clock::now();

  // Safety = every policy that holds at base keeps holding at every prefix.
  std::vector<verify::PolicyId> watched;
  for (verify::PolicyId id = 0; id < base_.checker().policy_count(); ++id) {
    if (base_.checker().policy_satisfied(id)) watched.push_back(id);
  }

  const auto compose = [&](std::uint64_t mask) {
    config::NetworkConfig cfg = base_cfg_;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask & bit(i))) continue;
      for (const auto& [device, dev_cfg] : steps[i].patch.devices) {
        cfg.devices[device] = dev_cfg;
      }
    }
    return cfg;
  };

  // Per-depth checkpoints of the scratch replica: snaps[d] is the state
  // with the first d steps of the current candidate order placed, so a
  // backtrack is a restore, never a rebuild.
  std::vector<std::shared_ptr<const verify::RealConfig::Snapshot>> snaps(n + 1);
  snaps[0] = base_snap;

  // Placements that failed, keyed by (placed set, step) — valid across
  // exclusion runs because the state reached by a placed set is unique.
  std::map<std::pair<std::uint64_t, std::size_t>, StepVerdict> failed_tests;
  // Placed sets from which no completion exists — relative to the current
  // allowed set, so cleared between exclusion runs.
  std::unordered_set<std::uint64_t> failed_sets;
  bool budget_exhausted = false;

  // Place `s` on top of the placed set `mask` (replica checkpointed at
  // snaps[depth]) and verify. On success the replica is left in the new
  // state; on failure its state is dirty and the next test restores first.
  const auto test = [&](std::uint64_t mask, std::size_t s, std::size_t depth,
                        StepVerdict& verdict) {
    verdict = StepVerdict{};
    verdict.step = s;
    if (result.explored >= options.max_explored) {
      budget_exhausted = true;
      return false;
    }
    ++result.explored;
    replica->restore(*snaps[depth]);
    ++result.restores;
    try {
      const verify::RealConfig::Report report = replica->apply(compose(mask | bit(s)));
      verdict.affected_ecs = report.check.affected_ecs.size();
      verdict.apply_ms = report.total_ms();
    } catch (const dd::NonterminationError&) {
      verdict.converged = false;  // replica poisoned; the next restore recovers it
      return false;
    }
    for (const verify::PolicyId id : watched) {
      if (!replica->checker().policy_satisfied(id)) verdict.violated.push_back(id);
    }
    return verdict.violated.empty();
  };

  std::uint64_t allowed = n == 64 ? ~std::uint64_t{0} : bit(n) - 1;
  const std::function<bool(std::uint64_t, std::size_t)> dfs =
      [&](std::uint64_t mask, std::size_t depth) -> bool {
    if (mask == allowed) return true;
    if (budget_exhausted || failed_sets.count(mask)) return false;
    for (std::size_t s = 0; s < n; ++s) {
      if (!(allowed & bit(s)) || (mask & bit(s))) continue;
      if (failed_tests.count({mask, s})) continue;
      StepVerdict verdict;
      if (test(mask, s, depth, verdict)) {
        result.order.push_back(s);
        result.verdicts.push_back(verdict);
        snaps[depth + 1] = replica->snapshot();
        if (dfs(mask | bit(s), depth + 1)) return true;
        result.order.pop_back();
        result.verdicts.pop_back();
      } else if (!budget_exhausted) {
        failed_tests.emplace(std::make_pair(mask, s), verdict);
      }
    }
    if (!budget_exhausted) failed_sets.insert(mask);
    return false;
  };

  result.found = dfs(0, 0);

  if (!result.found && !budget_exhausted) {
    // Minimal blocking subset: the smallest exclusion that unblocks the
    // rest. Sizes are tried in increasing order, subsets in lexicographic
    // index order, so the answer is deterministic and provably minimal.
    const std::size_t cap = std::min(options.max_blocking, n);
    std::vector<std::size_t> subset;
    const std::function<bool(std::size_t, std::size_t, std::uint64_t)> exclude =
        [&](std::size_t next, std::size_t remaining, std::uint64_t excluded) -> bool {
      if (remaining == 0) {
        result.order.clear();
        result.verdicts.clear();
        failed_sets.clear();
        allowed = (n == 64 ? ~std::uint64_t{0} : bit(n) - 1) & ~excluded;
        if (!dfs(0, 0)) return false;
        result.blocking = subset;
        return true;
      }
      for (std::size_t s = next; s + remaining <= n; ++s) {
        subset.push_back(s);
        if (exclude(s + 1, remaining - 1, excluded | bit(s))) return true;
        subset.pop_back();
      }
      return false;
    };
    for (std::size_t size = 1; size <= cap && !budget_exhausted; ++size) {
      if (exclude(0, size, 0)) {
        result.found = true;
        result.blocking_minimal = !budget_exhausted;
        break;
      }
    }
    if (!result.found) {
      result.order.clear();
      result.verdicts.clear();
    }
  }

  result.search_ms = ms_between(t1, std::chrono::steady_clock::now());
  return result;
}

}  // namespace rcfg::relate
