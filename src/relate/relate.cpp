#include "relate/relate.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>

namespace rcfg::relate {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

using Pair = std::pair<topo::NodeId, topo::NodeId>;

/// Sorted set difference a \ b (both sorted).
std::vector<Pair> pair_difference(const std::vector<Pair>& a, const std::vector<Pair>& b) {
  std::vector<Pair> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

/// Compare one (base EC, fork EC) ancestry pair; returns the diff record
/// when any observable behaviour differs, nullopt otherwise. Shared by the
/// incremental checker and the brute-force oracle so both produce
/// bit-identical records.
std::optional<EcDiff> diff_one_ec(verify::RealConfig& base, verify::RealConfig& changed,
                                  dpm::EcId base_ec, dpm::EcId changed_ec) {
  EcDiff d;
  d.base_ec = base_ec;
  d.changed_ec = changed_ec;
  const std::size_t devices = base.model().device_count();
  for (topo::NodeId dev = 0; dev < devices; ++dev) {
    const dpm::PortKey& before = base.model().port_of(dev, base_ec);
    const dpm::PortKey& after = changed.model().port_of(dev, changed_ec);
    if (!(before == after)) d.devices.push_back({dev, before, after});
  }
  const std::vector<Pair> before_pairs = base.checker().delivered_pairs(base_ec);
  const std::vector<Pair> after_pairs = changed.checker().delivered_pairs(changed_ec);
  d.pairs_gained = pair_difference(after_pairs, before_pairs);
  d.pairs_lost = pair_difference(before_pairs, after_pairs);
  d.loop_before = base.checker().looping(base_ec);
  d.loop_after = changed.checker().looping(changed_ec);
  d.blackhole_before = base.checker().blackholed(base_ec);
  d.blackhole_after = changed.checker().blackholed(changed_ec);
  const bool differs = !d.devices.empty() || !d.pairs_gained.empty() ||
                       !d.pairs_lost.empty() || d.loop_before != d.loop_after ||
                       d.blackhole_before != d.blackhole_after;
  if (!differs) return std::nullopt;
  d.packets = changed.ecs().ec_bdd(changed_ec);
  const auto assignment = changed.packet_space().pick_one(d.packets);
  if (assignment) d.example = dpm::PacketSpace::flow_of(*assignment);
  return d;
}

}  // namespace

const char* to_string(RelationalSpec::Kind k) {
  switch (k) {
    case RelationalSpec::Kind::kNone: return "none";
    case RelationalSpec::Kind::kOnlyDstIn: return "only_dst_in";
    case RelationalSpec::Kind::kOnlySrcIn: return "only_src_in";
  }
  return "?";
}

RelationalSpec::Kind spec_kind_of(const std::string& s) {
  if (s == "none") return RelationalSpec::Kind::kNone;
  if (s == "only_dst_in") return RelationalSpec::Kind::kOnlyDstIn;
  if (s == "only_src_in") return RelationalSpec::Kind::kOnlySrcIn;
  throw std::invalid_argument("unknown relational spec kind '" + s +
                              "' (expected none | only_dst_in | only_src_in)");
}

std::size_t RelationalDiff::pairs_gained() const {
  std::size_t n = 0;
  for (const EcDiff& d : ecs) n += d.pairs_gained.size();
  return n;
}

std::size_t RelationalDiff::pairs_lost() const {
  std::size_t n = 0;
  for (const EcDiff& d : ecs) n += d.pairs_lost.size();
  return n;
}

std::size_t RelationalDiff::devices_diverged() const {
  std::set<topo::NodeId> devices;
  for (const EcDiff& d : ecs)
    for (const DeviceDivergence& dd : d.devices) devices.insert(dd.device);
  return devices.size();
}

RelationalResult RelationalChecker::check(const config::NetworkConfig& proposed,
                                          const std::vector<RelationalSpec>& specs,
                                          bool witnesses) {
  RelationalResult result;
  const auto t0 = std::chrono::steady_clock::now();
  const auto snap = base_.snapshot();
  const auto t1 = std::chrono::steady_clock::now();
  // The fork must not reclaim: a compact() would renumber fork ECs and
  // could merge across base-EC ancestry boundaries, severing base_of_.
  verify::RealConfigOptions opts = base_.options();
  opts.threads = 1;
  opts.reclamation.enabled = false;
  opts.provenance = false;
  changed_ = base_.fork(*snap, opts);
  const auto t2 = std::chrono::steady_clock::now();
  const std::size_t base_count = base_.ecs().ec_count();
  const verify::RealConfig::Report report = changed_->apply(proposed);
  const auto t3 = std::chrono::steady_clock::now();

  // Relate the two partitions: fork ECs below base_count ARE base ECs
  // (the fork's BDD manager started as a copy and reclamation is off);
  // every split child descends from its parent's ancestor.
  base_of_.resize(changed_->ecs().ec_count());
  for (dpm::EcId e = 0; e < base_count; ++e) base_of_[e] = e;
  for (const dpm::EcManager::Split& s : report.model.splits) {
    base_of_.at(s.child) = base_of_.at(s.parent);
  }

  // Only ECs the incremental apply touched can behave differently — the
  // pipeline recomputed exactly their state; everything else kept both its
  // ports and its delivered pairs (split children mirror their parent).
  result.ecs_compared = report.check.affected_ecs.size();
  for (const dpm::EcId e : report.check.affected_ecs) {
    if (auto d = diff_one_ec(base_, *changed_, base_of_.at(e), e)) {
      result.diff.ecs.push_back(std::move(*d));
    }
  }
  std::sort(result.diff.ecs.begin(), result.diff.ecs.end(),
            [](const EcDiff& a, const EcDiff& b) { return a.changed_ec < b.changed_ec; });

  // Evaluate the relational specs against the diff. All set algebra goes
  // through the PacketSpace facade: the fork may be running on interval
  // atoms (d.packets) while an only_src_in spec needs BDDs — the facade
  // migrates and canonicalizes as required.
  dpm::PacketSpace& space = changed_->packet_space();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RelationalSpec& spec = specs[i];
    dpm::BddRef allowed = dpm::kBddFalse;
    for (const net::Ipv4Prefix& p : spec.prefixes) {
      const dpm::BddRef match = spec.kind == RelationalSpec::Kind::kOnlySrcIn
                                    ? space.src_prefix(p)
                                    : space.dst_prefix(p);
      allowed = space.set_or(allowed, match);
    }
    SpecViolation violation;
    violation.spec = i;
    for (const EcDiff& d : result.diff.ecs) {
      const dpm::BddRef escaped = space.set_diff(d.packets, allowed);
      if (escaped == dpm::kBddFalse) continue;  // diff confined to the allowed set
      violation.ecs.push_back(d.changed_ec);
      if (witnesses && !violation.witness) {
        RelationalWitness w;
        const auto assignment = space.pick_one(escaped);
        w.flow = dpm::PacketSpace::flow_of(*assignment);
        w.ingress = !d.pairs_lost.empty()     ? d.pairs_lost.front().first
                    : !d.pairs_gained.empty() ? d.pairs_gained.front().first
                    : !d.devices.empty()      ? d.devices.front().device
                                              : topo::NodeId{0};
        w.before = verify::trace_flow(base_.topology(), base_.model(), w.flow, w.ingress);
        w.after =
            verify::trace_flow(base_.topology(), changed_->model(), w.flow, w.ingress);
        violation.witness = std::move(w);
      }
    }
    if (!violation.ecs.empty()) {
      result.holds = false;
      result.violations.push_back(std::move(violation));
    }
  }

  result.snapshot_ms = ms_between(t0, t1);
  result.fork_ms = ms_between(t1, t2);
  result.apply_ms = ms_between(t2, t3);
  result.diff_ms = ms_between(t3, std::chrono::steady_clock::now());
  return result;
}

RelationalDiff relational_diff_bruteforce(verify::RealConfig& base,
                                          verify::RealConfig& changed,
                                          const std::vector<dpm::EcId>& base_of) {
  RelationalDiff diff;
  const std::size_t ec_count = changed.ecs().ec_count();
  for (dpm::EcId e = 0; e < ec_count; ++e) {
    if (auto d = diff_one_ec(base, changed, base_of.at(e), e)) {
      diff.ecs.push_back(std::move(*d));
    }
  }
  return diff;
}

}  // namespace rcfg::relate
