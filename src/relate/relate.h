#pragma once

// Relational change verification (ROADMAP item 3; Relational Network
// Verification, PAPERS.md): instead of asking "does the proposed network
// satisfy my policies?", ask "how does the proposed network BEHAVE
// DIFFERENTLY from the running one — and is every difference intended?".
//
// The architecture makes this cheap. A proposed change is verified against
// the running state by forking the pipeline from a snapshot (PR 4) and
// applying the change to the fork; the fork's BDD manager starts as a copy
// of the base's, so the two replicas share one packet space and the EC
// partitions are relatable: every fork EC descends from exactly one base
// EC through the apply's split chain. The behavioural diff is then a
// per-EC comparison restricted to the ECs the incremental apply actually
// touched — everything else is provably identical, which is why the diff
// costs a fork + incremental apply instead of two scratch builds plus a
// full pairwise EC comparison (BENCH_relate.json quantifies the gap).
//
// Relational specs say which traffic is ALLOWED to change behaviour:
//   only_dst_in P / only_src_in P  — only packets to/from prefix-set P
//   none                           — the change must be behaviour-preserving
// Any diffed EC whose packets escape the allowed set is a violation,
// reported with the exact EC set and a concrete witness flow traced hop by
// hop through both data planes (trace_flow).

#include <memory>
#include <string>
#include <vector>

#include "config/types.h"
#include "verify/realconfig.h"
#include "verify/trace.h"

namespace rcfg::relate {

/// "Only traffic matching the prefix set may change behaviour."
struct RelationalSpec {
  enum class Kind : std::uint8_t {
    kNone,       ///< no traffic may change behaviour at all
    kOnlyDstIn,  ///< only packets whose destination lies in `prefixes`
    kOnlySrcIn,  ///< only packets whose source lies in `prefixes`
  };
  Kind kind = Kind::kNone;
  std::vector<net::Ipv4Prefix> prefixes;  ///< the allowed set P (union); empty for kNone
  std::string name;                       ///< optional display name
};

const char* to_string(RelationalSpec::Kind k);
/// Parses "none" / "only_dst_in" / "only_src_in"; throws std::invalid_argument.
RelationalSpec::Kind spec_kind_of(const std::string& s);

/// One device whose forwarding action for a diffed EC differs.
struct DeviceDivergence {
  topo::NodeId device = topo::kInvalidNode;
  dpm::PortKey before;  ///< base port
  dpm::PortKey after;   ///< changed port

  friend bool operator==(const DeviceDivergence&, const DeviceDivergence&) = default;
};

/// One equivalence class whose behaviour differs between base and fork.
/// `changed_ec`/`packets`/`example` live in the fork's EC partition and
/// packet space; `base_ec` is the base-partition ancestor the fork EC
/// descends from (identical packets when no split refined it).
struct EcDiff {
  dpm::EcId base_ec = 0;
  dpm::EcId changed_ec = 0;
  dpm::BddRef packets = dpm::kBddFalse;  ///< the EC's atom BDD (fork space)
  config::Flow example;                  ///< one concrete packet of the EC
  std::vector<DeviceDivergence> devices;  ///< sorted by device id
  /// Delivered (src, dst) pairs gained/lost by the change, sorted.
  std::vector<std::pair<topo::NodeId, topo::NodeId>> pairs_gained;
  std::vector<std::pair<topo::NodeId, topo::NodeId>> pairs_lost;
  bool loop_before = false, loop_after = false;
  bool blackhole_before = false, blackhole_after = false;

  friend bool operator==(const EcDiff&, const EcDiff&) = default;
};

/// The full behavioural diff, sorted by changed_ec.
struct RelationalDiff {
  std::vector<EcDiff> ecs;

  std::size_t pairs_gained() const;
  std::size_t pairs_lost() const;
  /// Unique devices appearing in any divergence.
  std::size_t devices_diverged() const;

  friend bool operator==(const RelationalDiff&, const RelationalDiff&) = default;
};

/// A concrete flow that proves a spec violation, traced through both
/// data planes.
struct RelationalWitness {
  config::Flow flow;
  topo::NodeId ingress = topo::kInvalidNode;
  verify::FlowTrace before;  ///< trace through the base data plane
  verify::FlowTrace after;   ///< trace through the changed data plane
};

struct SpecViolation {
  std::size_t spec = 0;                ///< index into the spec list
  std::vector<dpm::EcId> ecs;          ///< violating fork ECs, sorted
  std::optional<RelationalWitness> witness;  ///< for the first violating EC
};

struct RelationalResult {
  RelationalDiff diff;
  std::vector<SpecViolation> violations;  ///< one entry per violated spec
  bool holds = true;                      ///< no spec violated
  std::size_t ecs_compared = 0;  ///< candidate ECs examined (incremental set)
  double snapshot_ms = 0;        ///< checkpointing the base state
  double fork_ms = 0;            ///< building the fork replica
  double apply_ms = 0;           ///< incremental apply of the proposal
  double diff_ms = 0;            ///< per-EC comparison + spec evaluation
  double total_ms() const { return snapshot_ms + fork_ms + apply_ms + diff_ms; }
};

/// Relational checker over a live base verifier. check() never mutates the
/// base: the proposal is applied to a private fork kept alive afterwards
/// for witness extraction and oracle cross-checks.
class RelationalChecker {
 public:
  explicit RelationalChecker(verify::RealConfig& base) : base_(base) {}

  /// Diff the proposed configuration against the base state and evaluate
  /// `specs`. Throws dd::NonterminationError when the proposal does not
  /// converge (the base is untouched either way) and std::logic_error when
  /// the base is poisoned.
  RelationalResult check(const config::NetworkConfig& proposed,
                         const std::vector<RelationalSpec>& specs = {},
                         bool witnesses = true);

  /// The fork the last check() applied the proposal to (valid until the
  /// next check()). Used by the brute-force oracle and the benches.
  verify::RealConfig& changed() { return *changed_; }
  bool has_changed() const { return changed_ != nullptr; }

  /// Fork EC id -> base EC id it descends from (size = fork ec_count).
  const std::vector<dpm::EcId>& base_of() const { return base_of_; }

 private:
  verify::RealConfig& base_;
  std::unique_ptr<verify::RealConfig> changed_;
  std::vector<dpm::EcId> base_of_;
};

/// Reference implementation for the fuzz oracle and the naive-cost bench:
/// compare EVERY fork EC against its base ancestor — all devices' ports,
/// full delivered-pair sets, loop/blackhole flags — with no use of the
/// incremental apply's affected set. Produces the same RelationalDiff as
/// RelationalChecker::check (witness `example` included) or the comparison
/// is wrong.
RelationalDiff relational_diff_bruteforce(verify::RealConfig& base,
                                          verify::RealConfig& changed,
                                          const std::vector<dpm::EcId>& base_of);

}  // namespace rcfg::relate
