#pragma once

// The from-scratch baseline simulator — the "Batfish (current)" role in the
// paper's Table 2: a non-incremental control-plane simulator built on
// domain-specific algorithms (per-prefix multi-source Dijkstra for OSPF,
// synchronous path-vector iteration for BGP).
//
// It consumes the same compiled facts and calls the same semantic functions
// (routing/semantics.h) as the incremental engine, so it doubles as the
// differential-testing oracle: for any configuration, simulate().fib must
// equal IncrementalGenerator::fib() — and stays equal after any sequence of
// incremental apply() calls.

#include <stdexcept>

#include "config/types.h"
#include "dd/zset.h"
#include "routing/facts.h"
#include "routing/types.h"
#include "topo/topology.h"

namespace rcfg::baseline {

/// The synchronous BGP/redistribution iteration exceeded its round bound —
/// the control plane has no (unique) converged state.
class NonconvergenceError : public std::runtime_error {
 public:
  explicit NonconvergenceError(const std::string& message) : std::runtime_error(message) {}
};

struct SimulationResult {
  dd::ZSet<routing::FibEntry> fib;
  dd::ZSet<routing::BgpRoute> bgp_best;  ///< one winner per (node, prefix)
  unsigned bgp_rounds = 0;               ///< rounds until the path-vector iteration stabilized
  unsigned redistribution_rounds = 0;    ///< OSPF<->BGP alternations until stable
};

/// Compute the converged data plane from scratch.
SimulationResult simulate(const topo::Topology& topo, const config::NetworkConfig& cfg);

/// Same, starting from pre-compiled facts (used by benches to separate
/// compile time from simulation time).
SimulationResult simulate_facts(const topo::Topology& topo, const routing::FactSnapshot& facts);

}  // namespace rcfg::baseline
