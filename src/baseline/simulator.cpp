#include "baseline/simulator.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/hash.h"
#include "routing/semantics.h"

namespace rcfg::baseline {

namespace {

using namespace rcfg::routing;

using Key = std::pair<topo::NodeId, net::Ipv4Prefix>;

/// An OSPF origin for one prefix (native origin fact or a redistributed
/// BGP route acting as one).
struct OspfSeed {
  topo::NodeId node = topo::kInvalidNode;
  std::uint32_t cost = 0;
  topo::IfaceId egress = topo::kInvalidIface;
  std::uint8_t tag = kTagNative;

  friend bool operator==(const OspfSeed&, const OspfSeed&) = default;
};

/// Converged OSPF state for one (prefix, node): the minimum cost and every
/// (egress, tag) that achieves it — exactly the engine's best-route set
/// projected to the fields that matter downstream.
struct OspfBest {
  std::uint32_t cost = 0;
  std::vector<std::pair<topo::IfaceId, std::uint8_t>> achievers;  ///< (egress, tag), deduped

  bool has_native() const {
    for (const auto& [e, t] : achievers) {
      if (t == kTagNative) return true;
    }
    return false;
  }
};

/// Per-prefix multi-source Dijkstra over the OSPF adjacency, followed by a
/// dist-order sweep assigning achiever (egress, tag) sets. Only the tags of
/// a node's *best* routes propagate, mirroring best-route propagation in
/// the dataflow program.
std::unordered_map<topo::NodeId, OspfBest> ospf_single_prefix(
    std::size_t node_count, const std::vector<std::vector<OspfLinkFact>>& arcs_by_from,
    const std::vector<OspfSeed>& seeds, std::uint32_t max_metric) {
  constexpr std::uint32_t kInf = ~std::uint32_t{0};
  std::vector<std::uint32_t> dist(node_count, kInf);

  using QEntry = std::pair<std::uint32_t, topo::NodeId>;  // (cost, node)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  for (const OspfSeed& s : seeds) {
    if (s.cost <= max_metric && s.cost < dist[s.node]) {
      dist[s.node] = s.cost;
      pq.push({s.cost, s.node});
    }
  }
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const OspfLinkFact& l : arcs_by_from[u]) {
      const std::uint32_t nd = d + l.cost;
      if (nd <= max_metric && nd < dist[l.to]) {
        dist[l.to] = nd;
        pq.push({nd, l.to});
      }
    }
  }

  // Tag propagation in increasing-dist order (arc costs are >= 1, so every
  // achieving predecessor has strictly smaller dist).
  std::vector<topo::NodeId> order;
  for (topo::NodeId n = 0; n < node_count; ++n) {
    if (dist[n] != kInf) order.push_back(n);
  }
  std::sort(order.begin(), order.end(),
            [&](topo::NodeId a, topo::NodeId b) { return dist[a] < dist[b]; });

  std::vector<std::vector<OspfLinkFact>> arcs_by_to(node_count);
  for (topo::NodeId u = 0; u < node_count; ++u) {
    for (const OspfLinkFact& l : arcs_by_from[u]) arcs_by_to[l.to].push_back(l);
  }
  std::vector<std::uint8_t> has_tag(node_count * 2, 0);

  std::unordered_map<topo::NodeId, OspfBest> out;
  for (topo::NodeId n : order) {
    OspfBest& b = out[n];
    b.cost = dist[n];
    for (const OspfSeed& s : seeds) {
      if (s.node == n && s.cost == dist[n]) {
        b.achievers.emplace_back(s.egress, s.tag);
        has_tag[2 * n + s.tag] = 1;
      }
    }
    for (const OspfLinkFact& l : arcs_by_to[n]) {
      if (dist[l.from] == kInf || dist[l.from] + l.cost != dist[n]) continue;
      for (std::uint8_t tag : {kTagNative, kTagRedistributed}) {
        if (has_tag[2 * l.from + tag]) {
          b.achievers.emplace_back(l.via_iface, tag);
          has_tag[2 * n + tag] = 1;
        }
      }
    }
    std::sort(b.achievers.begin(), b.achievers.end());
    b.achievers.erase(std::unique(b.achievers.begin(), b.achievers.end()), b.achievers.end());
  }
  return out;
}

/// All-prefix OSPF pass.
using OspfState = std::unordered_map<net::Ipv4Prefix, std::unordered_map<topo::NodeId, OspfBest>>;

OspfState ospf_pass(std::size_t node_count,
                    const std::vector<std::vector<OspfLinkFact>>& arcs_by_from,
                    const std::unordered_map<net::Ipv4Prefix, std::vector<OspfSeed>>& seeds,
                    std::uint32_t max_metric = ~std::uint32_t{0}) {
  OspfState out;
  for (const auto& [prefix, seed_list] : seeds) {
    out.emplace(prefix, ospf_single_prefix(node_count, arcs_by_from, seed_list, max_metric));
  }
  return out;
}

/// Synchronous path-vector BGP. `seeds` are the locally available routes
/// (origins + redistributed); each round every node re-selects from its
/// seeds plus the extensions of its neighbors' previous bests.
std::unordered_map<Key, BgpRoute, core::TupleHash> bgp_pass(
    std::size_t node_count, const std::vector<std::vector<BgpSessionFact>>& sessions_by_from,
    const std::unordered_map<Key, std::vector<BgpRoute>, core::TupleHash>& seeds,
    const std::vector<BgpAggregateFact>& aggregates, unsigned* rounds_out) {
  std::unordered_map<Key, BgpRoute, core::TupleHash> best;
  const unsigned max_rounds = static_cast<unsigned>(2 * node_count + 5);
  unsigned round = 0;
  for (; round < max_rounds; ++round) {
    std::unordered_map<Key, BgpRoute, core::TupleHash> next;
    auto offer = [&next](const BgpRoute& r) {
      const Key k{r.node, r.prefix};
      auto [it, inserted] = next.try_emplace(k, r);
      if (!inserted && bgp_better(r, it->second)) it->second = r;
    };
    for (const auto& [key, routes] : seeds) {
      for (const BgpRoute& r : routes) offer(r);
    }
    for (const auto& [key, r] : best) {
      for (const BgpSessionFact& s : sessions_by_from[key.first]) {
        if (auto nr = extend_bgp(r, s)) offer(*nr);
      }
    }
    // Aggregates originate while a contributor sits in the previous round's
    // table — the same equation the dataflow program solves.
    for (const BgpAggregateFact& f : aggregates) {
      for (const auto& [key, r] : best) {
        if (contributes_to_aggregate(r, f)) {
          offer(make_bgp_aggregate(f));
          break;
        }
      }
    }
    if (next == best) break;
    best = std::move(next);
  }
  if (round == max_rounds) {
    throw NonconvergenceError("synchronous BGP iteration did not stabilize within " +
                              std::to_string(max_rounds) + " rounds");
  }
  if (rounds_out != nullptr) *rounds_out = round;
  return best;
}

}  // namespace

SimulationResult simulate_facts(const topo::Topology& topo, const FactSnapshot& facts) {
  const std::size_t n = topo.node_count();
  using SeedMap = std::unordered_map<net::Ipv4Prefix, std::vector<OspfSeed>>;
  using BgpSeedMap = std::unordered_map<Key, std::vector<BgpRoute>, core::TupleHash>;

  std::vector<std::vector<OspfLinkFact>> ospf_arcs(n);
  for (const auto& [l, w] : facts.ospf_links) ospf_arcs[l.from].push_back(l);
  // RIP arcs reuse the OSPF arc shape with unit cost.
  std::vector<std::vector<OspfLinkFact>> rip_arcs(n);
  for (const auto& [l, w] : facts.rip_links) {
    rip_arcs[l.from].push_back(OspfLinkFact{l.from, l.to, l.via_iface, 1});
  }
  std::vector<std::vector<BgpSessionFact>> sessions_by_from(n);
  for (const auto& [s2, w] : facts.bgp_sessions) sessions_by_from[s2.from].push_back(s2);

  SeedMap native_ospf_seeds;
  for (const auto& [f, w] : facts.ospf_origins) {
    native_ospf_seeds[f.prefix].push_back(
        OspfSeed{f.node, f.metric, topo::kInvalidIface, kTagNative});
  }
  SeedMap native_rip_seeds;
  for (const auto& [f, w] : facts.rip_origins) {
    native_rip_seeds[f.prefix].push_back(
        OspfSeed{f.node, f.metric, topo::kInvalidIface, kTagNative});
  }
  BgpSeedMap native_bgp_seeds;
  for (const auto& [f, w] : facts.bgp_origins) {
    const BgpRoute r = make_bgp_origin(f);
    native_bgp_seeds[Key{r.node, r.prefix}].push_back(r);
  }

  std::vector<DynRedistFact> redist;
  for (const auto& [f, w] : facts.redist) redist.push_back(f);
  std::vector<BgpAggregateFact> aggregates;
  for (const auto& [f, w] : facts.bgp_aggregates) aggregates.push_back(f);

  // Alternate protocol passes until the redistributed seed sets are stable.
  // Without redistribution this settles after the first pass. Stability is
  // checked on order-independent canonical (ZSet) forms; the seed
  // containers themselves have nondeterministic iteration order.
  using OspfSeedCanon =
      std::tuple<net::Ipv4Prefix, topo::NodeId, std::uint32_t, topo::IfaceId, std::uint8_t>;
  auto canon_ospf = [](const SeedMap& m) {
    dd::ZSet<OspfSeedCanon> z;
    for (const auto& [p2, list] : m) {
      for (const OspfSeed& s2 : list) {
        z.add(OspfSeedCanon{p2, s2.node, s2.cost, s2.egress, s2.tag}, 1);
      }
    }
    return z;
  };
  auto canon_bgp = [](const BgpSeedMap& m) {
    dd::ZSet<BgpRoute> z;
    for (const auto& [k, list] : m) {
      for (const BgpRoute& r : list) z.add(r, 1);
    }
    return z;
  };
  auto merged = [](const SeedMap& native, const SeedMap& extra) {
    SeedMap seeds = native;
    for (const auto& [p2, list] : extra) {
      auto& dst = seeds[p2];
      dst.insert(dst.end(), list.begin(), list.end());
    }
    return seeds;
  };

  SimulationResult result;
  OspfState ospf, rip;
  std::unordered_map<Key, BgpRoute, core::TupleHash> bgp;
  SeedMap extra_ospf_seeds, extra_rip_seeds;
  BgpSeedMap extra_bgp_seeds = native_bgp_seeds;

  constexpr unsigned kMaxRedistRounds = 10;
  unsigned iter = 0;
  for (; iter < kMaxRedistRounds; ++iter) {
    ospf = ospf_pass(n, ospf_arcs, merged(native_ospf_seeds, extra_ospf_seeds));
    rip = ospf_pass(n, rip_arcs, merged(native_rip_seeds, extra_rip_seeds),
                    config::kRipInfinity - 1);

    SeedMap new_extra_ospf, new_extra_rip;
    BgpSeedMap new_extra_bgp = native_bgp_seeds;

    // Exports from the link-state-style protocols (native achievers only).
    auto export_from_state = [&](const OspfState& state, Proto from) {
      for (const DynRedistFact& f : redist) {
        if (f.from != from) continue;
        for (const auto& [prefix, per_node] : state) {
          auto it = per_node.find(f.node);
          if (it == per_node.end()) continue;
          for (const auto& [egress, tag] : it->second.achievers) {
            if (tag != kTagNative) continue;
            switch (f.to) {
              case Proto::kBgp:
                if (auto r = make_redist_bgp(prefix, egress, f)) {
                  new_extra_bgp[Key{r->node, r->prefix}].push_back(*r);
                }
                break;
              case Proto::kOspf:
                if (auto r = make_redist_ospf(prefix, egress, f)) {
                  new_extra_ospf[r->prefix].push_back(
                      OspfSeed{r->node, r->cost, r->egress, kTagRedistributed});
                }
                break;
              case Proto::kRip:
                if (auto r = make_redist_rip(prefix, egress, f)) {
                  new_extra_rip[r->prefix].push_back(
                      OspfSeed{r->node, r->metric, r->egress, kTagRedistributed});
                }
                break;
            }
          }
        }
      }
    };
    export_from_state(ospf, Proto::kOspf);
    export_from_state(rip, Proto::kRip);

    unsigned rounds = 0;
    bgp = bgp_pass(n, sessions_by_from, new_extra_bgp, aggregates, &rounds);
    result.bgp_rounds = rounds;

    // Exports from BGP.
    for (const DynRedistFact& f : redist) {
      if (f.from != Proto::kBgp) continue;
      for (const auto& [key, r] : bgp) {
        if (key.first != f.node || r.tag != kTagNative) continue;
        switch (f.to) {
          case Proto::kOspf:
            if (auto nr = make_redist_ospf(r.prefix, r.egress, f)) {
              new_extra_ospf[nr->prefix].push_back(
                  OspfSeed{nr->node, nr->cost, nr->egress, kTagRedistributed});
            }
            break;
          case Proto::kRip:
            if (auto nr = make_redist_rip(r.prefix, r.egress, f)) {
              new_extra_rip[nr->prefix].push_back(
                  OspfSeed{nr->node, nr->metric, nr->egress, kTagRedistributed});
            }
            break;
          case Proto::kBgp:
            break;  // BGP-to-BGP redistribution is a no-op
        }
      }
    }

    const bool stable = canon_ospf(new_extra_ospf) == canon_ospf(extra_ospf_seeds) &&
                        canon_ospf(new_extra_rip) == canon_ospf(extra_rip_seeds) &&
                        canon_bgp(new_extra_bgp) == canon_bgp(extra_bgp_seeds);
    extra_bgp_seeds = std::move(new_extra_bgp);
    extra_ospf_seeds = std::move(new_extra_ospf);
    extra_rip_seeds = std::move(new_extra_rip);
    if (stable) break;
  }
  if (iter == kMaxRedistRounds) {
    throw NonconvergenceError("mutual route redistribution did not stabilize within " +
                              std::to_string(kMaxRedistRounds) + " alternations");
  }
  result.redistribution_rounds = iter + 1;

  // ---- FIB assembly ---------------------------------------------------------
  std::unordered_map<Key, std::vector<FibCandidate>, core::TupleHash> cands;
  for (const auto& [f, w] : facts.connected) {
    cands[Key{f.node, f.prefix}].push_back(candidate_of(f));
  }
  for (const auto& [f, w] : facts.statics) cands[Key{f.node, f.prefix}].push_back(candidate_of(f));
  for (const auto& [prefix, per_node] : ospf) {
    for (const auto& [node, best] : per_node) {
      for (const auto& [egress, tag] : best.achievers) {
        OspfRoute r;
        r.cost = best.cost;
        r.egress = egress;
        cands[Key{node, prefix}].push_back(candidate_of(r));
      }
    }
  }
  for (const auto& [prefix, per_node] : rip) {
    for (const auto& [node, best] : per_node) {
      for (const auto& [egress, tag] : best.achievers) {
        RipRoute r;
        r.metric = best.cost;
        r.egress = egress;
        cands[Key{node, prefix}].push_back(candidate_of(r));
      }
    }
  }
  for (const auto& [key, r] : bgp) {
    cands[key].push_back(candidate_of(r));
    result.bgp_best.add(r, 1);
  }

  for (const auto& [key, list] : cands) {
    result.fib.add(select_fib(key.first, key.second, list), 1);
  }
  return result;
}

SimulationResult simulate(const topo::Topology& topo, const config::NetworkConfig& cfg) {
  return simulate_facts(topo, compile_facts(topo, cfg));
}

}  // namespace rcfg::baseline
