#pragma once

// Programmatic construction of complete network configurations for a given
// topology, plus the three change mutators the paper evaluates (§5):
// LinkFailure, LC (OSPF link cost), and LP (BGP local preference).
//
// Address plan (documented because tests and examples rely on it):
//  - node i originates "host" subnet 10.(i/256).(i%256).0/24 on a passive
//    stub interface named "lan0";
//  - link l uses the /31 subnet 172.16.0.0 + 2l.

#include <cstdint>
#include <string>

#include "config/types.h"
#include "core/rng.h"
#include "topo/generators.h"
#include "topo/topology.h"

namespace rcfg::config {

/// The /24 a node originates (its simulated attached hosts).
net::Ipv4Prefix host_prefix(topo::NodeId node);

/// The /31 assigned to a link.
net::Ipv4Prefix link_subnet(topo::LinkId link);

/// Single-area OSPF everywhere: every wired interface runs OSPF in area 0
/// with cost `default_cost`; every node advertises its host subnet via a
/// passive "lan0" interface.
NetworkConfig build_ospf_network(const topo::Topology& topo,
                                 std::uint32_t default_cost = kDefaultOspfCost);

/// eBGP everywhere: node i gets AS base_as+i, peers with every physical
/// neighbor, and originates its host subnet with a `network` statement.
NetworkConfig build_bgp_network(const topo::Topology& topo, std::uint32_t base_as = 65000);

/// RIPv2 everywhere: every interface (including the "lan0" stub, whose
/// subnet is thereby advertised) participates. Mind the 15-hop horizon on
/// large-diameter topologies.
NetworkConfig build_rip_network(const topo::Topology& topo);

// ---------------------------------------------------------------------------
// Paper §5 change mutators. Each edits the NetworkConfig in place; callers
// snapshot the old config first if they need a diff.
// ---------------------------------------------------------------------------

/// LinkFailure: deactivate (shutdown) the interfaces on both ends of `link`.
void fail_link(NetworkConfig& net, const topo::Topology& topo, topo::LinkId link);

/// Undo fail_link.
void restore_link(NetworkConfig& net, const topo::Topology& topo, topo::LinkId link);

/// LC: set the OSPF cost of one interface (paper: 1 -> 100).
void set_ospf_cost(NetworkConfig& net, const std::string& device, const std::string& iface,
                   std::uint32_t cost);

/// LP: set the BGP local preference for all routes received on one
/// interface (paper: 100 -> 150). Implemented the way an operator would:
/// a match-all prefix list + a route map attached as the neighbor's import
/// policy.
void set_local_pref(NetworkConfig& net, const std::string& device, const std::string& iface,
                    std::uint32_t pref);

/// Attach a randomly generated ACL (entries drawn from host prefixes) to an
/// interface; used by dpm tests/benches to exercise multi-field rules.
void attach_random_acl(NetworkConfig& net, const topo::Topology& topo,
                       const std::string& device, const std::string& iface, bool inbound,
                       unsigned rules, core::Rng& rng);

// ---------------------------------------------------------------------------
// Weighted (WAN) metrics
// ---------------------------------------------------------------------------

/// Set the OSPF cost of both end interfaces of every link to `cost[link]`
/// (the per-link metrics of a topo::WeightedTopology). `cost` must hold
/// exactly one entry per link; entries must be >= 1 (OSPF interface costs
/// are 1..65535 and the routing simulators require strictly positive
/// distances).
void apply_link_costs(NetworkConfig& net, const topo::Topology& topo,
                      const std::vector<std::uint32_t>& cost);

/// build_ospf_network + apply_link_costs over a weighted WAN graph.
NetworkConfig build_wan_ospf_network(const topo::WeightedTopology& wan);

// ---------------------------------------------------------------------------
// Churn profiles. One `*_churn_step` call mutates the configuration the way
// one operator change would; benches and fuzz harnesses chain steps into
// apply() sequences. Both are deterministic in the caller's Rng.
// ---------------------------------------------------------------------------

/// The extra /24 a node announces and withdraws under ISP route churn
/// (disjoint from host_prefix and link_subnet blocks).
net::Ipv4Prefix isp_extra_prefix(topo::NodeId node);

/// BGP-heavy ISP-edge churn: one step either rewrites the local preference
/// of a random neighbor session (set_local_pref with a pref drawn from
/// {50, 100, 150, 200}) or toggles the announcement of the device's
/// isp_extra_prefix — the local-pref/route-churn mix that dominates an ISP
/// edge. The configuration must have been built by build_bgp_network (every
/// device runs BGP on every wired interface); throws std::invalid_argument
/// otherwise.
void isp_route_churn_step(NetworkConfig& net, const topo::Topology& topo, core::Rng& rng);

/// ACL-heavy campus churn: one step re-randomizes an ACL on a random wired
/// interface (attach_random_acl with 2..6 multi-field rules, random
/// direction). The multi-field matches are exactly what forces the
/// interval-atom packet-space backend through its one-time BDD migration.
void campus_acl_churn_step(NetworkConfig& net, const topo::Topology& topo, core::Rng& rng);

}  // namespace rcfg::config
