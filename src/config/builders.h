#pragma once

// Programmatic construction of complete network configurations for a given
// topology, plus the three change mutators the paper evaluates (§5):
// LinkFailure, LC (OSPF link cost), and LP (BGP local preference).
//
// Address plan (documented because tests and examples rely on it):
//  - node i originates "host" subnet 10.(i/256).(i%256).0/24 on a passive
//    stub interface named "lan0";
//  - link l uses the /31 subnet 172.16.0.0 + 2l.

#include <cstdint>
#include <string>

#include "config/types.h"
#include "core/rng.h"
#include "topo/topology.h"

namespace rcfg::config {

/// The /24 a node originates (its simulated attached hosts).
net::Ipv4Prefix host_prefix(topo::NodeId node);

/// The /31 assigned to a link.
net::Ipv4Prefix link_subnet(topo::LinkId link);

/// Single-area OSPF everywhere: every wired interface runs OSPF in area 0
/// with cost `default_cost`; every node advertises its host subnet via a
/// passive "lan0" interface.
NetworkConfig build_ospf_network(const topo::Topology& topo,
                                 std::uint32_t default_cost = kDefaultOspfCost);

/// eBGP everywhere: node i gets AS base_as+i, peers with every physical
/// neighbor, and originates its host subnet with a `network` statement.
NetworkConfig build_bgp_network(const topo::Topology& topo, std::uint32_t base_as = 65000);

/// RIPv2 everywhere: every interface (including the "lan0" stub, whose
/// subnet is thereby advertised) participates. Mind the 15-hop horizon on
/// large-diameter topologies.
NetworkConfig build_rip_network(const topo::Topology& topo);

// ---------------------------------------------------------------------------
// Paper §5 change mutators. Each edits the NetworkConfig in place; callers
// snapshot the old config first if they need a diff.
// ---------------------------------------------------------------------------

/// LinkFailure: deactivate (shutdown) the interfaces on both ends of `link`.
void fail_link(NetworkConfig& net, const topo::Topology& topo, topo::LinkId link);

/// Undo fail_link.
void restore_link(NetworkConfig& net, const topo::Topology& topo, topo::LinkId link);

/// LC: set the OSPF cost of one interface (paper: 1 -> 100).
void set_ospf_cost(NetworkConfig& net, const std::string& device, const std::string& iface,
                   std::uint32_t cost);

/// LP: set the BGP local preference for all routes received on one
/// interface (paper: 100 -> 150). Implemented the way an operator would:
/// a match-all prefix list + a route map attached as the neighbor's import
/// policy.
void set_local_pref(NetworkConfig& net, const std::string& device, const std::string& iface,
                    std::uint32_t pref);

/// Attach a randomly generated ACL (entries drawn from host prefixes) to an
/// interface; used by dpm tests/benches to exercise multi-field rules.
void attach_random_acl(NetworkConfig& net, const topo::Topology& topo,
                       const std::string& device, const std::string& iface, bool inbound,
                       unsigned rules, core::Rng& rng);

}  // namespace rcfg::config
