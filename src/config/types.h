#pragma once

// The vendor-neutral configuration model.
//
// This is the "source of truth" input to verification: a NetworkConfig maps
// device hostnames to DeviceConfigs, each holding the stanza types the
// paper models (§4.2): interfaces, OSPF, BGP, static routes, ACLs, route
// redistribution — plus the policy machinery they need (prefix lists and
// route maps). A Cisco-flavoured text form is defined in parse.h/print.h.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace rcfg::config {

enum class Action : std::uint8_t { kPermit, kDeny };

// ---------------------------------------------------------------------------
// Prefix lists
// ---------------------------------------------------------------------------

/// One entry of a prefix list: matches a route's prefix if it is covered by
/// `prefix` and its length lies in [ge, le] (defaults: exactly
/// prefix.length()).
struct PrefixListEntry {
  std::uint32_t seq = 0;
  Action action = Action::kPermit;
  net::Ipv4Prefix prefix;
  std::uint8_t ge = 0;  ///< 0 means "unset" (defaults to prefix length)
  std::uint8_t le = 0;  ///< 0 means "unset" (defaults to ge or prefix length)

  friend bool operator==(const PrefixListEntry&, const PrefixListEntry&) = default;
};

struct PrefixList {
  std::string name;
  std::vector<PrefixListEntry> entries;  ///< evaluated in seq order

  friend bool operator==(const PrefixList&, const PrefixList&) = default;
};

// ---------------------------------------------------------------------------
// Route maps
// ---------------------------------------------------------------------------

/// One clause of a route map. A route is tested against clauses in seq
/// order; the first clause whose matches all pass decides: permit applies
/// the set-actions and accepts, deny rejects. No matching clause => reject.
struct RouteMapClause {
  std::uint32_t seq = 0;
  Action action = Action::kPermit;
  std::optional<std::string> match_prefix_list;
  std::optional<std::uint32_t> set_local_pref;
  std::optional<std::uint32_t> set_med;
  std::optional<std::uint32_t> set_metric;  ///< for redistribution maps

  friend bool operator==(const RouteMapClause&, const RouteMapClause&) = default;
};

struct RouteMap {
  std::string name;
  std::vector<RouteMapClause> clauses;

  friend bool operator==(const RouteMap&, const RouteMap&) = default;
};

// ---------------------------------------------------------------------------
// ACLs
// ---------------------------------------------------------------------------

enum class IpProto : std::uint8_t { kAny, kTcp, kUdp, kIcmp };

struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;
  bool is_any() const { return lo == 0 && hi == 65535; }
  friend bool operator==(const PortRange&, const PortRange&) = default;
};

/// One ACL rule (5-tuple match). "any" is encoded as 0.0.0.0/0 / full port
/// range / IpProto::kAny. First match wins; implicit deny terminates.
struct AclRule {
  std::uint32_t seq = 0;
  Action action = Action::kPermit;
  IpProto proto = IpProto::kAny;
  net::Ipv4Prefix src;  ///< default 0.0.0.0/0
  net::Ipv4Prefix dst;
  PortRange src_ports;
  PortRange dst_ports;

  friend bool operator==(const AclRule&, const AclRule&) = default;
};

struct Acl {
  std::string name;
  std::vector<AclRule> rules;

  friend bool operator==(const Acl&, const Acl&) = default;
};

// ---------------------------------------------------------------------------
// Interfaces
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kDefaultOspfCost = 1;
inline constexpr std::uint32_t kNoOspfArea = ~std::uint32_t{0};

struct InterfaceConfig {
  std::string name;
  std::optional<net::Ipv4Prefix> address;  ///< address + subnet length
  bool shutdown = false;                   ///< administratively down
  std::uint32_t ospf_cost = kDefaultOspfCost;
  std::uint32_t ospf_area = kNoOspfArea;   ///< kNoOspfArea => not in OSPF
  bool ospf_passive = false;               ///< advertise subnet, no adjacency
  bool rip = false;                        ///< participates in RIPv2
  std::optional<std::string> acl_in;       ///< ACL applied to ingress traffic
  std::optional<std::string> acl_out;      ///< ACL applied to egress traffic

  bool ospf_enabled() const { return ospf_area != kNoOspfArea; }

  friend bool operator==(const InterfaceConfig&, const InterfaceConfig&) = default;
};

// ---------------------------------------------------------------------------
// Static routes
// ---------------------------------------------------------------------------

struct StaticRoute {
  net::Ipv4Prefix prefix;
  std::string out_iface;  ///< egress interface; "null0" discards
  std::uint32_t admin_distance = 1;

  friend bool operator==(const StaticRoute&, const StaticRoute&) = default;
};

inline constexpr const char* kNullInterface = "null0";

// ---------------------------------------------------------------------------
// Routing processes
// ---------------------------------------------------------------------------

/// Which other RIB a process imports routes from (route redistribution).
struct Redistribution {
  enum class Source : std::uint8_t { kConnected, kStatic, kOspf, kBgp, kRip };
  Source source = Source::kConnected;
  std::uint32_t metric = 0;                   ///< 0 => protocol default
  std::optional<std::string> route_map;       ///< filter/transform

  friend bool operator==(const Redistribution&, const Redistribution&) = default;
};

struct OspfConfig {
  std::vector<Redistribution> redistribute;

  friend bool operator==(const OspfConfig&, const OspfConfig&) = default;
};

/// RIPv2: interfaces opt in via InterfaceConfig::rip; hop-count metric with
/// the protocol's 15-hop reachability horizon (16 = infinity).
struct RipConfig {
  std::vector<Redistribution> redistribute;

  friend bool operator==(const RipConfig&, const RipConfig&) = default;
};

inline constexpr std::uint32_t kRipInfinity = 16;

inline constexpr std::uint32_t kDefaultLocalPref = 100;

struct BgpNeighbor {
  std::string iface;          ///< single-hop session over this interface
  std::uint32_t remote_as = 0;
  std::optional<std::string> import_route_map;  ///< applied to received routes
  std::optional<std::string> export_route_map;  ///< applied to sent routes

  friend bool operator==(const BgpNeighbor&, const BgpNeighbor&) = default;
};

/// BGP route aggregation: the aggregate is originated whenever a strictly
/// more-specific route exists in the local BGP table; `summary_only`
/// additionally suppresses the more-specifics when advertising to
/// neighbors. The origin installs a discard route for the aggregate
/// (packets with no more-specific match are dropped, as on real routers).
struct BgpAggregate {
  net::Ipv4Prefix prefix;
  bool summary_only = false;

  friend bool operator==(const BgpAggregate&, const BgpAggregate&) = default;
};

struct BgpConfig {
  std::uint32_t local_as = 0;
  std::vector<net::Ipv4Prefix> networks;  ///< locally originated prefixes
  std::vector<BgpNeighbor> neighbors;
  std::vector<BgpAggregate> aggregates;
  std::vector<Redistribution> redistribute;

  friend bool operator==(const BgpConfig&, const BgpConfig&) = default;
};

// ---------------------------------------------------------------------------
// Device & network
// ---------------------------------------------------------------------------

/// Administrative distances used to pick among protocols for the FIB.
struct AdminDistance {
  static constexpr std::uint32_t kConnected = 0;
  static constexpr std::uint32_t kStatic = 1;
  static constexpr std::uint32_t kBgp = 20;  ///< eBGP
  static constexpr std::uint32_t kOspf = 110;
  static constexpr std::uint32_t kRip = 120;
};

struct DeviceConfig {
  std::string hostname;
  std::vector<InterfaceConfig> interfaces;
  std::vector<StaticRoute> static_routes;
  std::optional<OspfConfig> ospf;
  std::optional<RipConfig> rip;
  std::optional<BgpConfig> bgp;
  std::map<std::string, Acl> acls;
  std::map<std::string, PrefixList> prefix_lists;
  std::map<std::string, RouteMap> route_maps;

  /// Find an interface config by name; nullptr if absent.
  const InterfaceConfig* find_interface(const std::string& name) const {
    for (const auto& i : interfaces) {
      if (i.name == name) return &i;
    }
    return nullptr;
  }
  InterfaceConfig* find_interface(const std::string& name) {
    return const_cast<InterfaceConfig*>(
        static_cast<const DeviceConfig*>(this)->find_interface(name));
  }

  friend bool operator==(const DeviceConfig&, const DeviceConfig&) = default;
};

/// The whole network's configuration, keyed by hostname (== topology node
/// name).
struct NetworkConfig {
  std::map<std::string, DeviceConfig> devices;

  friend bool operator==(const NetworkConfig&, const NetworkConfig&) = default;
};

}  // namespace rcfg::config
