#pragma once

// Canonical text rendering of the config model (the inverse of parse.h).
//
// The renderer is deterministic: stanzas appear in a fixed order and maps
// are emitted sorted, so two equal DeviceConfigs always print identically.
// The line-level config differ (diff.h) relies on this canonical form.

#include <string>

#include "config/types.h"

namespace rcfg::config {

std::string print_device(const DeviceConfig& dev);
std::string print_network(const NetworkConfig& net);

}  // namespace rcfg::config
