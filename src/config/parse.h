#pragma once

// Parser for the Cisco-flavoured configuration DSL.
//
// The grammar is line-oriented: a top-level keyword either is a complete
// statement (`ip route ...`) or opens a block (`interface ...`,
// `router bgp ...`, `ip access-list ...`, `route-map ...`) whose body runs
// until the next top-level keyword or a `!` separator. Indentation is
// ignored. See print.h for the canonical rendering (parse/print round-trip
// is tested).

#include <stdexcept>
#include <string>
#include <string_view>

#include "config/types.h"

namespace rcfg::config {

/// Thrown on malformed input; carries the 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}

  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parse one device's configuration. The text must contain exactly one
/// `hostname` statement.
DeviceConfig parse_device(std::string_view text);

/// Parse a multi-device file: each `hostname` statement starts a new
/// device.
NetworkConfig parse_network(std::string_view text);

}  // namespace rcfg::config
