#include "config/print.h"

namespace rcfg::config {

namespace {

void print_redistribution(std::string& out, const Redistribution& r) {
  out += "  redistribute ";
  switch (r.source) {
    case Redistribution::Source::kConnected:
      out += "connected";
      break;
    case Redistribution::Source::kStatic:
      out += "static";
      break;
    case Redistribution::Source::kOspf:
      out += "ospf";
      break;
    case Redistribution::Source::kBgp:
      out += "bgp";
      break;
    case Redistribution::Source::kRip:
      out += "rip";
      break;
  }
  if (r.metric != 0) out += " metric " + std::to_string(r.metric);
  if (r.route_map) out += " route-map " + *r.route_map;
  out += '\n';
}

std::string endpoint_to_string(net::Ipv4Prefix p, const PortRange& ports) {
  std::string out = p == net::kDefaultRoute ? "any" : p.to_string();
  if (!ports.is_any()) {
    if (ports.lo == ports.hi) {
      out += " eq " + std::to_string(ports.lo);
    } else {
      out += " range " + std::to_string(ports.lo) + " " + std::to_string(ports.hi);
    }
  }
  return out;
}

const char* action_str(Action a) { return a == Action::kPermit ? "permit" : "deny"; }

}  // namespace

std::string print_device(const DeviceConfig& dev) {
  std::string out;
  out += "hostname " + dev.hostname + "\n!\n";

  for (const InterfaceConfig& i : dev.interfaces) {
    out += "interface " + i.name + "\n";
    if (i.address) out += "  ip address " + i.address->to_string() + "\n";
    if (i.shutdown) out += "  shutdown\n";
    // Cost/passive are printed even without an area (meaningless to the
    // protocol then, but faithful to what the operator wrote).
    if (i.ospf_enabled()) out += "  ospf area " + std::to_string(i.ospf_area) + "\n";
    if (i.ospf_cost != kDefaultOspfCost) {
      out += "  ospf cost " + std::to_string(i.ospf_cost) + "\n";
    }
    if (i.ospf_passive) out += "  ospf passive\n";
    if (i.rip) out += "  rip enable\n";
    if (i.acl_in) out += "  ip access-group " + *i.acl_in + " in\n";
    if (i.acl_out) out += "  ip access-group " + *i.acl_out + " out\n";
    out += "!\n";
  }

  for (const StaticRoute& r : dev.static_routes) {
    out += "ip route " + r.prefix.to_string() + " " + r.out_iface;
    if (r.admin_distance != 1) out += " distance " + std::to_string(r.admin_distance);
    out += "\n";
  }
  if (!dev.static_routes.empty()) out += "!\n";

  for (const auto& [name, pl] : dev.prefix_lists) {
    for (const PrefixListEntry& e : pl.entries) {
      out += "ip prefix-list " + name + " seq " + std::to_string(e.seq) + " " +
             action_str(e.action) + " " + e.prefix.to_string();
      if (e.ge != 0) out += " ge " + std::to_string(e.ge);
      if (e.le != 0) out += " le " + std::to_string(e.le);
      out += "\n";
    }
    out += "!\n";
  }

  for (const auto& [name, acl] : dev.acls) {
    out += "ip access-list " + name + "\n";
    for (const AclRule& r : acl.rules) {
      out += "  " + std::to_string(r.seq) + " " + std::string{action_str(r.action)} + " ";
      switch (r.proto) {
        case IpProto::kAny:
          out += "ip";
          break;
        case IpProto::kTcp:
          out += "tcp";
          break;
        case IpProto::kUdp:
          out += "udp";
          break;
        case IpProto::kIcmp:
          out += "icmp";
          break;
      }
      out += " " + endpoint_to_string(r.src, r.src_ports);
      out += " " + endpoint_to_string(r.dst, r.dst_ports);
      out += "\n";
    }
    out += "!\n";
  }

  for (const auto& [name, rm] : dev.route_maps) {
    for (const RouteMapClause& c : rm.clauses) {
      out += "route-map " + name + " " + action_str(c.action) + " " + std::to_string(c.seq) + "\n";
      if (c.match_prefix_list) out += "  match ip prefix-list " + *c.match_prefix_list + "\n";
      if (c.set_local_pref) out += "  set local-preference " + std::to_string(*c.set_local_pref) + "\n";
      if (c.set_med) out += "  set med " + std::to_string(*c.set_med) + "\n";
      if (c.set_metric) out += "  set metric " + std::to_string(*c.set_metric) + "\n";
      out += "!\n";
    }
  }

  if (dev.ospf) {
    out += "router ospf\n";
    for (const Redistribution& r : dev.ospf->redistribute) print_redistribution(out, r);
    out += "!\n";
  }

  if (dev.rip) {
    out += "router rip\n";
    for (const Redistribution& r : dev.rip->redistribute) print_redistribution(out, r);
    out += "!\n";
  }

  if (dev.bgp) {
    out += "router bgp " + std::to_string(dev.bgp->local_as) + "\n";
    for (const net::Ipv4Prefix& p : dev.bgp->networks) {
      out += "  network " + p.to_string() + "\n";
    }
    for (const BgpAggregate& a : dev.bgp->aggregates) {
      out += "  aggregate-address " + a.prefix.to_string();
      if (a.summary_only) out += " summary-only";
      out += "\n";
    }
    for (const BgpNeighbor& n : dev.bgp->neighbors) {
      out += "  neighbor " + n.iface + " remote-as " + std::to_string(n.remote_as) + "\n";
      if (n.import_route_map) {
        out += "  neighbor " + n.iface + " route-map " + *n.import_route_map + " in\n";
      }
      if (n.export_route_map) {
        out += "  neighbor " + n.iface + " route-map " + *n.export_route_map + " out\n";
      }
    }
    for (const Redistribution& r : dev.bgp->redistribute) print_redistribution(out, r);
    out += "!\n";
  }

  return out;
}

std::string print_network(const NetworkConfig& net) {
  std::string out;
  for (const auto& [name, dev] : net.devices) {
    out += print_device(dev);
  }
  return out;
}

}  // namespace rcfg::config
