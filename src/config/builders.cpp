#include "config/builders.h"

#include <stdexcept>

namespace rcfg::config {

namespace {

constexpr std::uint32_t kHostBase = (10u << 24);             // 10.0.0.0
constexpr std::uint32_t kLinkBase = (172u << 24) | (16u << 16);  // 172.16.0.0

/// The base skeleton shared by all protocol builders: one DeviceConfig per
/// node with addressed interfaces for every wired link plus the "lan0"
/// stub holding the host subnet.
NetworkConfig build_skeleton(const topo::Topology& topo) {
  NetworkConfig net;
  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    DeviceConfig dev;
    dev.hostname = topo.node(n).name;
    InterfaceConfig lan;
    lan.name = "lan0";
    lan.address = host_prefix(n);
    dev.interfaces.push_back(lan);
    for (const auto& adj : topo.adjacencies(n)) {
      InterfaceConfig ic;
      ic.name = topo.iface(adj.iface).name;
      ic.address = link_subnet(adj.link);
      dev.interfaces.push_back(ic);
    }
    net.devices.emplace(dev.hostname, std::move(dev));
  }
  return net;
}

DeviceConfig& device_or_throw(NetworkConfig& net, const std::string& name) {
  auto it = net.devices.find(name);
  if (it == net.devices.end()) throw std::invalid_argument("unknown device: " + name);
  return it->second;
}

InterfaceConfig& iface_or_throw(DeviceConfig& dev, const std::string& iface) {
  InterfaceConfig* i = dev.find_interface(iface);
  if (i == nullptr) {
    throw std::invalid_argument("unknown interface " + iface + " on " + dev.hostname);
  }
  return *i;
}

}  // namespace

net::Ipv4Prefix host_prefix(topo::NodeId node) {
  return net::Ipv4Prefix{net::Ipv4Addr{kHostBase | (node << 8)}, 24};
}

net::Ipv4Prefix link_subnet(topo::LinkId link) {
  return net::Ipv4Prefix{net::Ipv4Addr{kLinkBase + 2 * link}, 31};
}

NetworkConfig build_ospf_network(const topo::Topology& topo, std::uint32_t default_cost) {
  NetworkConfig net = build_skeleton(topo);
  for (auto& [name, dev] : net.devices) {
    for (InterfaceConfig& i : dev.interfaces) {
      i.ospf_area = 0;
      i.ospf_cost = default_cost;
      if (i.name == "lan0") i.ospf_passive = true;
    }
    dev.ospf.emplace();
  }
  return net;
}

NetworkConfig build_rip_network(const topo::Topology& topo) {
  NetworkConfig net = build_skeleton(topo);
  for (auto& [name, dev] : net.devices) {
    for (InterfaceConfig& i : dev.interfaces) i.rip = true;
    dev.rip.emplace();
  }
  return net;
}

NetworkConfig build_bgp_network(const topo::Topology& topo, std::uint32_t base_as) {
  NetworkConfig net = build_skeleton(topo);
  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    DeviceConfig& dev = net.devices.at(topo.node(n).name);
    BgpConfig bgp;
    bgp.local_as = base_as + n;
    bgp.networks.push_back(host_prefix(n));
    for (const auto& adj : topo.adjacencies(n)) {
      BgpNeighbor nb;
      nb.iface = topo.iface(adj.iface).name;
      nb.remote_as = base_as + adj.peer;
      bgp.neighbors.push_back(std::move(nb));
    }
    dev.bgp = std::move(bgp);
  }
  return net;
}

void fail_link(NetworkConfig& net, const topo::Topology& topo, topo::LinkId link) {
  const topo::Link& l = topo.link(link);
  iface_or_throw(device_or_throw(net, topo.node(l.a).name), topo.iface(l.a_iface).name)
      .shutdown = true;
  iface_or_throw(device_or_throw(net, topo.node(l.b).name), topo.iface(l.b_iface).name)
      .shutdown = true;
}

void restore_link(NetworkConfig& net, const topo::Topology& topo, topo::LinkId link) {
  const topo::Link& l = topo.link(link);
  iface_or_throw(device_or_throw(net, topo.node(l.a).name), topo.iface(l.a_iface).name)
      .shutdown = false;
  iface_or_throw(device_or_throw(net, topo.node(l.b).name), topo.iface(l.b_iface).name)
      .shutdown = false;
}

void set_ospf_cost(NetworkConfig& net, const std::string& device, const std::string& iface,
                   std::uint32_t cost) {
  iface_or_throw(device_or_throw(net, device), iface).ospf_cost = cost;
}

void set_local_pref(NetworkConfig& net, const std::string& device, const std::string& iface,
                    std::uint32_t pref) {
  DeviceConfig& dev = device_or_throw(net, device);
  if (!dev.bgp) throw std::invalid_argument("device runs no BGP: " + device);

  // Match-all prefix list (idempotent).
  PrefixList& pl = dev.prefix_lists["PL-ANY"];
  if (pl.entries.empty()) {
    pl.name = "PL-ANY";
    pl.entries.push_back(PrefixListEntry{10, Action::kPermit, net::kDefaultRoute, 0, 32});
  }

  const std::string rm_name = "LP-" + iface;
  RouteMap& rm = dev.route_maps[rm_name];
  rm.name = rm_name;
  rm.clauses.clear();
  RouteMapClause c;
  c.seq = 10;
  c.action = Action::kPermit;
  c.match_prefix_list = "PL-ANY";
  c.set_local_pref = pref;
  rm.clauses.push_back(c);

  for (BgpNeighbor& n : dev.bgp->neighbors) {
    if (n.iface == iface) {
      n.import_route_map = rm_name;
      return;
    }
  }
  throw std::invalid_argument("no BGP neighbor on interface " + iface);
}

void attach_random_acl(NetworkConfig& net, const topo::Topology& topo,
                       const std::string& device, const std::string& iface, bool inbound,
                       unsigned rules, core::Rng& rng) {
  DeviceConfig& dev = device_or_throw(net, device);
  const std::string acl_name = "ACL-" + iface + (inbound ? "-in" : "-out");
  Acl& acl = dev.acls[acl_name];
  acl.name = acl_name;
  acl.rules.clear();
  for (unsigned r = 0; r < rules; ++r) {
    AclRule rule;
    rule.seq = (r + 1) * 10;
    rule.action = rng.next_bool(0.7) ? Action::kPermit : Action::kDeny;
    rule.proto = rng.next_bool(0.5) ? IpProto::kTcp : IpProto::kAny;
    const auto dst_node = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
    rule.dst = host_prefix(dst_node);
    if (rng.next_bool(0.5)) {
      const auto src_node = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
      rule.src = host_prefix(src_node);
    }
    if (rule.proto == IpProto::kTcp && rng.next_bool(0.5)) {
      const auto port = static_cast<std::uint16_t>(rng.next_in(1, 1024));
      rule.dst_ports = PortRange{port, port};
    }
    acl.rules.push_back(rule);
  }
  // Final catch-all so the ACL's intent is explicit.
  AclRule tail;
  tail.seq = (rules + 1) * 10;
  tail.action = Action::kPermit;
  acl.rules.push_back(tail);

  InterfaceConfig& i = iface_or_throw(dev, iface);
  (inbound ? i.acl_in : i.acl_out) = acl_name;
}

void apply_link_costs(NetworkConfig& net, const topo::Topology& topo,
                      const std::vector<std::uint32_t>& cost) {
  if (cost.size() != topo.link_count()) {
    throw std::invalid_argument("apply_link_costs: need exactly one cost per link");
  }
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    if (cost[l] < 1) {
      throw std::invalid_argument("apply_link_costs: OSPF costs must be >= 1");
    }
    const topo::Link& lk = topo.link(l);
    iface_or_throw(device_or_throw(net, topo.node(lk.a).name), topo.iface(lk.a_iface).name)
        .ospf_cost = cost[l];
    iface_or_throw(device_or_throw(net, topo.node(lk.b).name), topo.iface(lk.b_iface).name)
        .ospf_cost = cost[l];
  }
}

NetworkConfig build_wan_ospf_network(const topo::WeightedTopology& wan) {
  NetworkConfig net = build_ospf_network(wan.topo);
  apply_link_costs(net, wan.topo, wan.link_cost);
  return net;
}

net::Ipv4Prefix isp_extra_prefix(topo::NodeId node) {
  return net::Ipv4Prefix{net::Ipv4Addr{(100u << 24) | (node << 8)}, 24};
}

void isp_route_churn_step(NetworkConfig& net, const topo::Topology& topo, core::Rng& rng) {
  // Pick a random device with at least one wired interface (every churn
  // profile keeps the step count independent of the draw outcome, so the
  // sequence stays reproducible across topologies).
  const auto node = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
  DeviceConfig& dev = device_or_throw(net, topo.node(node).name);
  if (!dev.bgp) {
    throw std::invalid_argument("ISP churn requires a BGP configuration (build_bgp_network)");
  }
  const auto adj = topo.adjacencies(node);
  if (rng.next_bool(0.5) && !adj.empty()) {
    // Local-pref churn on a random neighbor session.
    static constexpr std::uint32_t kPrefs[] = {50, 100, 150, 200};
    const auto& a = adj[rng.next_below(adj.size())];
    set_local_pref(net, dev.hostname, topo.iface(a.iface).name,
                   kPrefs[rng.next_below(4)]);
  } else {
    // Route churn: toggle the device's extra announcement.
    const net::Ipv4Prefix extra = isp_extra_prefix(node);
    auto& nets = dev.bgp->networks;
    for (auto it = nets.begin(); it != nets.end(); ++it) {
      if (*it == extra) {
        nets.erase(it);
        return;
      }
    }
    nets.push_back(extra);
  }
}

void campus_acl_churn_step(NetworkConfig& net, const topo::Topology& topo, core::Rng& rng) {
  const auto node = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
  const auto adj = topo.adjacencies(node);
  if (adj.empty()) return;  // isolated node: nothing to filter
  const auto& a = adj[rng.next_below(adj.size())];
  const bool inbound = rng.next_bool(0.5);
  const auto rules = static_cast<unsigned>(rng.next_in(2, 6));
  attach_random_acl(net, topo, topo.node(node).name, topo.iface(a.iface).name, inbound,
                    rules, rng);
}

}  // namespace rcfg::config
