#pragma once

// Line-level configuration diffing.
//
// The paper defines a configuration change as "insertions or deletions of
// configuration lines" (a modification = delete + insert). This module
// computes exactly that: an LCS-based line diff between the canonical
// renderings of two configurations, grouped per device. The routing layer
// does not consume these edits directly (it diffs compiled facts), but the
// edits are the operator-facing change description, and their count drives
// the "change size" statistics reported by the benches.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "config/types.h"

namespace rcfg::config {

struct LineEdit {
  enum class Kind : std::uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  std::size_t line = 0;  ///< line number in the *new* (insert) or *old* (delete) text
  std::string text;

  friend bool operator==(const LineEdit&, const LineEdit&) = default;
};

/// Minimal line edit script turning `old_text` into `new_text`
/// (deletions reported in old-line order, insertions in new-line order).
std::vector<LineEdit> diff_lines(std::string_view old_text, std::string_view new_text);

struct DeviceDiff {
  std::string device;
  std::vector<LineEdit> edits;
};

/// Per-device diffs between two network configurations; devices present in
/// only one side appear as all-insert / all-delete diffs. Devices with no
/// changes are omitted.
std::vector<DeviceDiff> diff_networks(const NetworkConfig& old_net, const NetworkConfig& new_net);

/// Total number of line edits across all devices.
std::size_t edit_count(const std::vector<DeviceDiff>& diffs);

}  // namespace rcfg::config
