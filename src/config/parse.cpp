#include "config/parse.h"

#include <algorithm>
#include <vector>

#include "core/strings.h"

namespace rcfg::config {

namespace {

using core::split_ws;
using core::trim;

/// Parser context: which block (if any) the current line belongs to.
struct Context {
  enum class Kind { kTop, kInterface, kAcl, kRouteMap, kOspf, kRip, kBgp };
  Kind kind = Kind::kTop;
  InterfaceConfig* iface = nullptr;
  Acl* acl = nullptr;
  RouteMapClause* rm_clause = nullptr;
};

class DeviceParser {
 public:
  explicit DeviceParser(std::size_t base_line) : base_line_(base_line) {}

  DeviceConfig finish(const std::vector<std::string_view>& lines) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      line_no_ = base_line_ + i + 1;
      parse_line(trim(lines[i]));
    }
    if (dev_.hostname.empty()) throw err("missing hostname statement");
    return std::move(dev_);
  }

 private:
  ParseError err(const std::string& message) const { return ParseError(line_no_, message); }

  net::Ipv4Prefix parse_prefix(std::string_view tok) const {
    auto p = net::Ipv4Prefix::parse(tok);
    if (!p) throw err("malformed prefix: " + std::string{tok});
    return *p;
  }

  net::Ipv4Prefix parse_prefix_or_any(std::string_view tok) const {
    if (tok == "any") return net::kDefaultRoute;
    return parse_prefix(tok);
  }

  std::uint32_t parse_u32(std::string_view tok, const char* what) const {
    std::uint64_t v = 0;
    if (!core::parse_u64(tok, v) || v > UINT32_MAX) {
      throw err(std::string{"malformed "} + what + ": " + std::string{tok});
    }
    return static_cast<std::uint32_t>(v);
  }

  Action parse_action(std::string_view tok) const {
    if (tok == "permit") return Action::kPermit;
    if (tok == "deny") return Action::kDeny;
    throw err("expected permit/deny, got: " + std::string{tok});
  }

  Redistribution parse_redistribution(const std::vector<std::string_view>& t,
                                      std::size_t from) const {
    // redistribute <source> [metric N] [route-map NAME]
    Redistribution r;
    const std::string_view src = t.at(from);
    if (src == "connected") {
      r.source = Redistribution::Source::kConnected;
    } else if (src == "static") {
      r.source = Redistribution::Source::kStatic;
    } else if (src == "ospf") {
      r.source = Redistribution::Source::kOspf;
    } else if (src == "bgp") {
      r.source = Redistribution::Source::kBgp;
    } else if (src == "rip") {
      r.source = Redistribution::Source::kRip;
    } else {
      throw err("unknown redistribution source: " + std::string{src});
    }
    for (std::size_t i = from + 1; i < t.size();) {
      if (t[i] == "metric" && i + 1 < t.size()) {
        r.metric = parse_u32(t[i + 1], "metric");
        i += 2;
      } else if (t[i] == "route-map" && i + 1 < t.size()) {
        r.route_map = std::string{t[i + 1]};
        i += 2;
      } else {
        throw err("unexpected token in redistribute: " + std::string{t[i]});
      }
    }
    return r;
  }

  void parse_line(std::string_view line) {
    if (line.empty() || line[0] == '#') return;
    if (line == "!") {
      ctx_ = Context{};
      return;
    }
    const std::vector<std::string_view> t = split_ws(line);

    // --- statements that open or belong to top level ---------------------
    if (t[0] == "hostname") {
      if (!dev_.hostname.empty()) throw err("duplicate hostname");
      if (t.size() != 2) throw err("hostname requires one argument");
      dev_.hostname = std::string{t[1]};
      ctx_ = Context{};
      return;
    }
    if (t[0] == "interface") {
      if (t.size() != 2) throw err("interface requires one argument");
      dev_.interfaces.push_back(InterfaceConfig{});
      dev_.interfaces.back().name = std::string{t[1]};
      ctx_ = Context{};
      ctx_.kind = Context::Kind::kInterface;
      ctx_.iface = &dev_.interfaces.back();
      return;
    }
    if (t[0] == "router" && t.size() >= 2 && t[1] == "ospf") {
      if (!dev_.ospf) dev_.ospf.emplace();
      ctx_ = Context{};
      ctx_.kind = Context::Kind::kOspf;
      return;
    }
    if (t[0] == "router" && t.size() >= 2 && t[1] == "rip") {
      if (!dev_.rip) dev_.rip.emplace();
      ctx_ = Context{};
      ctx_.kind = Context::Kind::kRip;
      return;
    }
    if (t[0] == "router" && t.size() >= 2 && t[1] == "bgp") {
      if (t.size() != 3) throw err("router bgp requires an AS number");
      if (!dev_.bgp) dev_.bgp.emplace();
      dev_.bgp->local_as = parse_u32(t[2], "AS number");
      ctx_ = Context{};
      ctx_.kind = Context::Kind::kBgp;
      return;
    }
    if (t[0] == "route-map") {
      // route-map NAME permit|deny SEQ
      if (t.size() != 4) throw err("route-map header requires NAME ACTION SEQ");
      RouteMap& rm = dev_.route_maps[std::string{t[1]}];
      rm.name = std::string{t[1]};
      RouteMapClause clause;
      clause.action = parse_action(t[2]);
      clause.seq = parse_u32(t[3], "sequence number");
      rm.clauses.push_back(clause);
      std::sort(rm.clauses.begin(), rm.clauses.end(),
                [](const RouteMapClause& a, const RouteMapClause& b) { return a.seq < b.seq; });
      ctx_ = Context{};
      ctx_.kind = Context::Kind::kRouteMap;
      // find the clause we just inserted (by seq)
      for (RouteMapClause& c : rm.clauses) {
        if (c.seq == clause.seq) ctx_.rm_clause = &c;
      }
      return;
    }
    if (t[0] == "ip" && t.size() >= 2 && t[1] == "route") {
      // ip route PREFIX IFACE [distance N]
      if (t.size() != 4 && t.size() != 6) throw err("ip route requires PREFIX IFACE [distance N]");
      StaticRoute r;
      r.prefix = parse_prefix(t[2]);
      r.out_iface = std::string{t[3]};
      if (t.size() == 6) {
        if (t[4] != "distance") throw err("expected 'distance'");
        r.admin_distance = parse_u32(t[5], "distance");
      }
      dev_.static_routes.push_back(r);
      return;
    }
    if (t[0] == "ip" && t.size() >= 2 && t[1] == "prefix-list") {
      // ip prefix-list NAME seq N permit|deny PREFIX [ge N] [le N]
      if (t.size() < 7 || t[3] != "seq") {
        throw err("prefix-list requires NAME seq N ACTION PREFIX");
      }
      PrefixList& pl = dev_.prefix_lists[std::string{t[2]}];
      pl.name = std::string{t[2]};
      PrefixListEntry e;
      e.seq = parse_u32(t[4], "sequence number");
      e.action = parse_action(t[5]);
      e.prefix = parse_prefix(t[6]);
      for (std::size_t i = 7; i < t.size();) {
        if (t[i] == "ge" && i + 1 < t.size()) {
          e.ge = static_cast<std::uint8_t>(parse_u32(t[i + 1], "ge"));
          i += 2;
        } else if (t[i] == "le" && i + 1 < t.size()) {
          e.le = static_cast<std::uint8_t>(parse_u32(t[i + 1], "le"));
          i += 2;
        } else {
          throw err("unexpected token in prefix-list: " + std::string{t[i]});
        }
      }
      pl.entries.push_back(e);
      std::sort(pl.entries.begin(), pl.entries.end(),
                [](const PrefixListEntry& a, const PrefixListEntry& b) { return a.seq < b.seq; });
      return;
    }
    if (t[0] == "ip" && t.size() >= 2 && t[1] == "access-list") {
      if (t.size() != 3) throw err("ip access-list requires a name");
      Acl& acl = dev_.acls[std::string{t[2]}];
      acl.name = std::string{t[2]};
      ctx_ = Context{};
      ctx_.kind = Context::Kind::kAcl;
      ctx_.acl = &acl;
      return;
    }

    // --- block bodies -----------------------------------------------------
    switch (ctx_.kind) {
      case Context::Kind::kInterface:
        parse_interface_line(t);
        return;
      case Context::Kind::kAcl:
        parse_acl_line(t);
        return;
      case Context::Kind::kRouteMap:
        parse_route_map_line(t);
        return;
      case Context::Kind::kOspf:
        parse_ospf_line(t);
        return;
      case Context::Kind::kRip:
        parse_rip_line(t);
        return;
      case Context::Kind::kBgp:
        parse_bgp_line(t);
        return;
      case Context::Kind::kTop:
        throw err("unknown statement: " + std::string{t[0]});
    }
  }

  void parse_interface_line(const std::vector<std::string_view>& t) {
    InterfaceConfig& i = *ctx_.iface;
    if (t[0] == "ip" && t.size() == 3 && t[1] == "address") {
      // The address keeps its host bits; store as (addr, len) pair. We
      // re-parse manually because Ipv4Prefix would canonicalize.
      const auto slash = t[2].find('/');
      if (slash == std::string_view::npos) throw err("address requires /len");
      auto addr = net::Ipv4Addr::parse(t[2].substr(0, slash));
      std::uint64_t len = 0;
      if (!addr || !core::parse_u64(t[2].substr(slash + 1), len) || len > 32) {
        throw err("malformed address");
      }
      // We model the interface by its subnet; the concrete host address is
      // not needed for verification, so canonical form is stored.
      i.address = net::Ipv4Prefix{*addr, static_cast<std::uint8_t>(len)};
      return;
    }
    if (t[0] == "shutdown" && t.size() == 1) {
      i.shutdown = true;
      return;
    }
    if (t[0] == "ospf" && t.size() == 3 && t[1] == "cost") {
      i.ospf_cost = parse_u32(t[2], "cost");
      return;
    }
    if (t[0] == "ospf" && t.size() == 3 && t[1] == "area") {
      i.ospf_area = parse_u32(t[2], "area");
      return;
    }
    if (t[0] == "ospf" && t.size() == 2 && t[1] == "passive") {
      i.ospf_passive = true;
      return;
    }
    if (t[0] == "rip" && t.size() == 2 && t[1] == "enable") {
      i.rip = true;
      return;
    }
    if (t[0] == "ip" && t.size() == 4 && t[1] == "access-group") {
      if (t[3] == "in") {
        i.acl_in = std::string{t[2]};
      } else if (t[3] == "out") {
        i.acl_out = std::string{t[2]};
      } else {
        throw err("access-group direction must be in/out");
      }
      return;
    }
    throw err("unknown interface statement: " + std::string{t[0]});
  }

  void parse_acl_line(const std::vector<std::string_view>& t) {
    // SEQ permit|deny PROTO SRC [eq N | range A B] DST [eq N | range A B]
    if (t.size() < 5) throw err("ACL rule too short");
    AclRule r;
    r.seq = parse_u32(t[0], "sequence number");
    r.action = parse_action(t[1]);
    if (t[2] == "ip") {
      r.proto = IpProto::kAny;
    } else if (t[2] == "tcp") {
      r.proto = IpProto::kTcp;
    } else if (t[2] == "udp") {
      r.proto = IpProto::kUdp;
    } else if (t[2] == "icmp") {
      r.proto = IpProto::kIcmp;
    } else {
      throw err("unknown protocol: " + std::string{t[2]});
    }
    std::size_t i = 3;
    auto parse_endpoint = [&](net::Ipv4Prefix& prefix, PortRange& ports) {
      prefix = parse_prefix_or_any(t.at(i++));
      if (i < t.size() && t[i] == "eq") {
        if (i + 1 >= t.size()) throw err("eq requires a port");
        const auto p = static_cast<std::uint16_t>(parse_u32(t[i + 1], "port"));
        ports = PortRange{p, p};
        i += 2;
      } else if (i < t.size() && t[i] == "range") {
        if (i + 2 >= t.size()) throw err("range requires two ports");
        ports.lo = static_cast<std::uint16_t>(parse_u32(t[i + 1], "port"));
        ports.hi = static_cast<std::uint16_t>(parse_u32(t[i + 2], "port"));
        i += 3;
      }
    };
    parse_endpoint(r.src, r.src_ports);
    if (i >= t.size()) throw err("ACL rule missing destination");
    parse_endpoint(r.dst, r.dst_ports);
    if (i != t.size()) throw err("trailing tokens in ACL rule");
    ctx_.acl->rules.push_back(r);
    std::sort(ctx_.acl->rules.begin(), ctx_.acl->rules.end(),
              [](const AclRule& a, const AclRule& b) { return a.seq < b.seq; });
    return;
  }

  void parse_route_map_line(const std::vector<std::string_view>& t) {
    RouteMapClause& c = *ctx_.rm_clause;
    if (t[0] == "match" && t.size() == 4 && t[1] == "ip" && t[2] == "prefix-list") {
      c.match_prefix_list = std::string{t[3]};
      return;
    }
    if (t[0] == "set" && t.size() == 3 && t[1] == "local-preference") {
      c.set_local_pref = parse_u32(t[2], "local-preference");
      return;
    }
    if (t[0] == "set" && t.size() == 3 && t[1] == "med") {
      c.set_med = parse_u32(t[2], "med");
      return;
    }
    if (t[0] == "set" && t.size() == 3 && t[1] == "metric") {
      c.set_metric = parse_u32(t[2], "metric");
      return;
    }
    throw err("unknown route-map statement: " + std::string{t[0]});
  }

  void parse_ospf_line(const std::vector<std::string_view>& t) {
    if (t[0] == "redistribute" && t.size() >= 2) {
      dev_.ospf->redistribute.push_back(parse_redistribution(t, 1));
      return;
    }
    throw err("unknown router ospf statement: " + std::string{t[0]});
  }

  void parse_rip_line(const std::vector<std::string_view>& t) {
    if (t[0] == "redistribute" && t.size() >= 2) {
      dev_.rip->redistribute.push_back(parse_redistribution(t, 1));
      return;
    }
    throw err("unknown router rip statement: " + std::string{t[0]});
  }

  void parse_bgp_line(const std::vector<std::string_view>& t) {
    BgpConfig& bgp = *dev_.bgp;
    if (t[0] == "network" && t.size() == 2) {
      bgp.networks.push_back(parse_prefix(t[1]));
      return;
    }
    if (t[0] == "neighbor" && t.size() == 4 && t[2] == "remote-as") {
      const std::string iface{t[1]};
      BgpNeighbor* n = find_neighbor(bgp, iface);
      if (n == nullptr) {
        bgp.neighbors.push_back(BgpNeighbor{});
        n = &bgp.neighbors.back();
        n->iface = iface;
      }
      n->remote_as = parse_u32(t[3], "AS number");
      return;
    }
    if (t[0] == "neighbor" && t.size() == 5 && t[2] == "route-map") {
      const std::string iface{t[1]};
      BgpNeighbor* n = find_neighbor(bgp, iface);
      if (n == nullptr) throw err("route-map for unknown neighbor: " + iface);
      if (t[4] == "in") {
        n->import_route_map = std::string{t[3]};
      } else if (t[4] == "out") {
        n->export_route_map = std::string{t[3]};
      } else {
        throw err("neighbor route-map direction must be in/out");
      }
      return;
    }
    if (t[0] == "aggregate-address" && (t.size() == 2 || t.size() == 3)) {
      BgpAggregate agg;
      agg.prefix = parse_prefix(t[1]);
      if (t.size() == 3) {
        if (t[2] != "summary-only") throw err("expected 'summary-only'");
        agg.summary_only = true;
      }
      bgp.aggregates.push_back(agg);
      return;
    }
    if (t[0] == "redistribute" && t.size() >= 2) {
      bgp.redistribute.push_back(parse_redistribution(t, 1));
      return;
    }
    throw err("unknown router bgp statement: " + std::string{t[0]});
  }

  static BgpNeighbor* find_neighbor(BgpConfig& bgp, const std::string& iface) {
    for (BgpNeighbor& n : bgp.neighbors) {
      if (n.iface == iface) return &n;
    }
    return nullptr;
  }

  DeviceConfig dev_;
  Context ctx_;
  std::size_t base_line_;
  std::size_t line_no_ = 0;
};

}  // namespace

DeviceConfig parse_device(std::string_view text) {
  std::vector<std::string_view> lines;
  for (std::string_view l : core::split(text, '\n')) lines.push_back(l);
  DeviceParser p{0};
  return p.finish(lines);
}

NetworkConfig parse_network(std::string_view text) {
  NetworkConfig net;
  const std::vector<std::string_view> lines = core::split(text, '\n');
  std::size_t start = 0;
  bool in_device = false;
  auto flush = [&](std::size_t end) {
    if (!in_device) return;
    std::vector<std::string_view> chunk(lines.begin() + static_cast<std::ptrdiff_t>(start),
                                        lines.begin() + static_cast<std::ptrdiff_t>(end));
    DeviceParser p{start};
    DeviceConfig dev = p.finish(chunk);
    const std::string host = dev.hostname;
    if (!net.devices.emplace(host, std::move(dev)).second) {
      throw ParseError(start + 1, "duplicate device: " + host);
    }
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (core::starts_with(trim(lines[i]), "hostname ")) {
      flush(i);
      start = i;
      in_device = true;
    }
  }
  flush(lines.size());
  return net;
}

}  // namespace rcfg::config
