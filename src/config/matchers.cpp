#include "config/matchers.h"

namespace rcfg::config {

bool entry_matches(const PrefixListEntry& entry, net::Ipv4Prefix route) noexcept {
  if (!entry.prefix.contains(route)) return false;
  const std::uint8_t ge = entry.ge != 0 ? entry.ge : entry.prefix.length();
  const std::uint8_t le = entry.le != 0 ? entry.le : ge;
  return route.length() >= ge && route.length() <= le;
}

Action evaluate_prefix_list(const PrefixList& pl, net::Ipv4Prefix route) noexcept {
  for (const PrefixListEntry& e : pl.entries) {
    if (entry_matches(e, route)) return e.action;
  }
  return Action::kDeny;
}

std::optional<RouteAttrs> apply_route_map(const RouteMap& rm, const DeviceConfig& device,
                                          net::Ipv4Prefix route, RouteAttrs attrs) {
  for (const RouteMapClause& c : rm.clauses) {
    bool matches = true;
    if (c.match_prefix_list) {
      auto it = device.prefix_lists.find(*c.match_prefix_list);
      matches = it != device.prefix_lists.end() &&
                evaluate_prefix_list(it->second, route) == Action::kPermit;
    }
    if (!matches) continue;
    if (c.action == Action::kDeny) return std::nullopt;
    if (c.set_local_pref) attrs.local_pref = *c.set_local_pref;
    if (c.set_med) attrs.med = *c.set_med;
    if (c.set_metric) attrs.metric = *c.set_metric;
    return attrs;
  }
  return std::nullopt;  // implicit deny
}

bool rule_matches(const AclRule& rule, const Flow& flow) noexcept {
  if (rule.proto != IpProto::kAny && rule.proto != flow.proto) return false;
  if (!rule.src.contains(flow.src)) return false;
  if (!rule.dst.contains(flow.dst)) return false;
  if (flow.src_port < rule.src_ports.lo || flow.src_port > rule.src_ports.hi) return false;
  if (flow.dst_port < rule.dst_ports.lo || flow.dst_port > rule.dst_ports.hi) return false;
  return true;
}

Action evaluate_acl(const Acl& acl, const Flow& flow) noexcept {
  for (const AclRule& r : acl.rules) {
    if (rule_matches(r, flow)) return r.action;
  }
  return Action::kDeny;
}

}  // namespace rcfg::config
