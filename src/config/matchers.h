#pragma once

// Evaluation semantics for the policy objects in the config model:
// prefix lists, route maps, and ACLs. These functions are the single
// definition of semantics shared by the incremental engine (rcfg::routing),
// the from-scratch baseline (rcfg::baseline), and the data plane model
// compiler (rcfg::dpm) — so the implementations can never disagree on what
// a route map means.

#include <cstdint>
#include <optional>

#include "config/types.h"
#include "net/ipv4.h"

namespace rcfg::config {

/// Does `route` match a single prefix-list entry?
/// The entry matches when `entry.prefix` covers `route` and route.length()
/// is within [ge, le] (with the usual Cisco defaulting: unset ge => the
/// entry prefix length; unset le => ge).
bool entry_matches(const PrefixListEntry& entry, net::Ipv4Prefix route) noexcept;

/// First-match evaluation of a prefix list. Returns the action of the
/// first matching entry; no match => kDeny (implicit deny).
Action evaluate_prefix_list(const PrefixList& pl, net::Ipv4Prefix route) noexcept;

/// Mutable route attributes a route map may rewrite.
struct RouteAttrs {
  std::uint32_t local_pref = kDefaultLocalPref;
  std::uint32_t med = 0;
  std::uint32_t metric = 0;

  friend bool operator==(const RouteAttrs&, const RouteAttrs&) = default;
};

/// Apply a route map to (route, attrs). Returns the rewritten attributes
/// if accepted, nullopt if rejected. Prefix lists referenced by clauses are
/// resolved against `device`; a clause referencing a missing prefix list
/// never matches (fail-closed).
std::optional<RouteAttrs> apply_route_map(const RouteMap& rm, const DeviceConfig& device,
                                          net::Ipv4Prefix route, RouteAttrs attrs);

/// A concrete flow for ACL evaluation (tests / trace queries).
struct Flow {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  IpProto proto = IpProto::kAny;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  friend bool operator==(const Flow&, const Flow&) = default;
};

/// Does `flow` match one ACL rule? kAny proto in the rule matches
/// everything; a concrete proto in the rule requires equality (a kAny flow
/// proto only matches kAny rules).
bool rule_matches(const AclRule& rule, const Flow& flow) noexcept;

/// First-match evaluation of an ACL; no match => kDeny (implicit deny).
Action evaluate_acl(const Acl& acl, const Flow& flow) noexcept;

}  // namespace rcfg::config
