#include "config/diff.h"

#include <algorithm>

#include "config/print.h"
#include "core/strings.h"

namespace rcfg::config {

namespace {

std::vector<std::string_view> nonempty_lines(std::string_view text) {
  std::vector<std::string_view> out;
  for (std::string_view l : core::split(text, '\n')) {
    if (!core::trim(l).empty()) out.push_back(l);
  }
  return out;
}

}  // namespace

std::vector<LineEdit> diff_lines(std::string_view old_text, std::string_view new_text) {
  const std::vector<std::string_view> a = nonempty_lines(old_text);
  const std::vector<std::string_view> b = nonempty_lines(new_text);
  const std::size_t n = a.size();
  const std::size_t m = b.size();

  // Classic LCS dynamic program; config stanzas are small enough that the
  // quadratic table is cheap, and it gives the minimal edit script.
  std::vector<std::vector<std::uint32_t>> lcs(n + 1, std::vector<std::uint32_t>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j] ? lcs[i + 1][j + 1] + 1
                               : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }

  std::vector<LineEdit> edits;
  std::size_t i = 0, j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      ++i;
      ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      edits.push_back(LineEdit{LineEdit::Kind::kDelete, i + 1, std::string{a[i]}});
      ++i;
    } else {
      edits.push_back(LineEdit{LineEdit::Kind::kInsert, j + 1, std::string{b[j]}});
      ++j;
    }
  }
  for (; i < n; ++i) edits.push_back(LineEdit{LineEdit::Kind::kDelete, i + 1, std::string{a[i]}});
  for (; j < m; ++j) edits.push_back(LineEdit{LineEdit::Kind::kInsert, j + 1, std::string{b[j]}});
  return edits;
}

std::vector<DeviceDiff> diff_networks(const NetworkConfig& old_net, const NetworkConfig& new_net) {
  std::vector<DeviceDiff> out;
  auto oi = old_net.devices.begin();
  auto ni = new_net.devices.begin();
  auto emit = [&](const std::string& name, const std::string& old_text,
                  const std::string& new_text) {
    std::vector<LineEdit> edits = diff_lines(old_text, new_text);
    if (!edits.empty()) out.push_back(DeviceDiff{name, std::move(edits)});
  };
  while (oi != old_net.devices.end() || ni != new_net.devices.end()) {
    if (ni == new_net.devices.end() ||
        (oi != old_net.devices.end() && oi->first < ni->first)) {
      emit(oi->first, print_device(oi->second), "");
      ++oi;
    } else if (oi == old_net.devices.end() || ni->first < oi->first) {
      emit(ni->first, "", print_device(ni->second));
      ++ni;
    } else {
      if (!(oi->second == ni->second)) {
        emit(oi->first, print_device(oi->second), print_device(ni->second));
      }
      ++oi;
      ++ni;
    }
  }
  return out;
}

std::size_t edit_count(const std::vector<DeviceDiff>& diffs) {
  std::size_t n = 0;
  for (const DeviceDiff& d : diffs) n += d.edits.size();
  return n;
}

}  // namespace rcfg::config
