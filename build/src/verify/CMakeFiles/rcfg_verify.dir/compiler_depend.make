# Empty compiler generated dependencies file for rcfg_verify.
# This may be replaced when dependencies are built.
