file(REMOVE_RECURSE
  "CMakeFiles/rcfg_verify.dir/checker.cpp.o"
  "CMakeFiles/rcfg_verify.dir/checker.cpp.o.d"
  "CMakeFiles/rcfg_verify.dir/failures.cpp.o"
  "CMakeFiles/rcfg_verify.dir/failures.cpp.o.d"
  "CMakeFiles/rcfg_verify.dir/realconfig.cpp.o"
  "CMakeFiles/rcfg_verify.dir/realconfig.cpp.o.d"
  "CMakeFiles/rcfg_verify.dir/trace.cpp.o"
  "CMakeFiles/rcfg_verify.dir/trace.cpp.o.d"
  "librcfg_verify.a"
  "librcfg_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfg_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
