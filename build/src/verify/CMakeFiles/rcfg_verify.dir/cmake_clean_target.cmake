file(REMOVE_RECURSE
  "librcfg_verify.a"
)
