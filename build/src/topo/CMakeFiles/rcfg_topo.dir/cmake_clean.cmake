file(REMOVE_RECURSE
  "CMakeFiles/rcfg_topo.dir/generators.cpp.o"
  "CMakeFiles/rcfg_topo.dir/generators.cpp.o.d"
  "CMakeFiles/rcfg_topo.dir/topology.cpp.o"
  "CMakeFiles/rcfg_topo.dir/topology.cpp.o.d"
  "librcfg_topo.a"
  "librcfg_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfg_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
