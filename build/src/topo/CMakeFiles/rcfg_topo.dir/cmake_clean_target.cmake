file(REMOVE_RECURSE
  "librcfg_topo.a"
)
