# Empty compiler generated dependencies file for rcfg_topo.
# This may be replaced when dependencies are built.
