file(REMOVE_RECURSE
  "librcfg_net.a"
)
