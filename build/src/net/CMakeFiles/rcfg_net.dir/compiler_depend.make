# Empty compiler generated dependencies file for rcfg_net.
# This may be replaced when dependencies are built.
