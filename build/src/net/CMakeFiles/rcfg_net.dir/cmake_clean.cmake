file(REMOVE_RECURSE
  "CMakeFiles/rcfg_net.dir/ipv4.cpp.o"
  "CMakeFiles/rcfg_net.dir/ipv4.cpp.o.d"
  "librcfg_net.a"
  "librcfg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
