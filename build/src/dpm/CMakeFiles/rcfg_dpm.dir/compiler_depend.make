# Empty compiler generated dependencies file for rcfg_dpm.
# This may be replaced when dependencies are built.
