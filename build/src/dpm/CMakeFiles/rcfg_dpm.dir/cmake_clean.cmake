file(REMOVE_RECURSE
  "CMakeFiles/rcfg_dpm.dir/bdd.cpp.o"
  "CMakeFiles/rcfg_dpm.dir/bdd.cpp.o.d"
  "CMakeFiles/rcfg_dpm.dir/ec.cpp.o"
  "CMakeFiles/rcfg_dpm.dir/ec.cpp.o.d"
  "CMakeFiles/rcfg_dpm.dir/model.cpp.o"
  "CMakeFiles/rcfg_dpm.dir/model.cpp.o.d"
  "CMakeFiles/rcfg_dpm.dir/packet_space.cpp.o"
  "CMakeFiles/rcfg_dpm.dir/packet_space.cpp.o.d"
  "librcfg_dpm.a"
  "librcfg_dpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfg_dpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
