file(REMOVE_RECURSE
  "librcfg_dpm.a"
)
