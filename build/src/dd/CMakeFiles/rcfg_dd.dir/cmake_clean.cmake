file(REMOVE_RECURSE
  "CMakeFiles/rcfg_dd.dir/graph.cpp.o"
  "CMakeFiles/rcfg_dd.dir/graph.cpp.o.d"
  "librcfg_dd.a"
  "librcfg_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfg_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
