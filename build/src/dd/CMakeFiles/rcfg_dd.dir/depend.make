# Empty dependencies file for rcfg_dd.
# This may be replaced when dependencies are built.
