file(REMOVE_RECURSE
  "librcfg_dd.a"
)
