
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/builders.cpp" "src/config/CMakeFiles/rcfg_config.dir/builders.cpp.o" "gcc" "src/config/CMakeFiles/rcfg_config.dir/builders.cpp.o.d"
  "/root/repo/src/config/diff.cpp" "src/config/CMakeFiles/rcfg_config.dir/diff.cpp.o" "gcc" "src/config/CMakeFiles/rcfg_config.dir/diff.cpp.o.d"
  "/root/repo/src/config/matchers.cpp" "src/config/CMakeFiles/rcfg_config.dir/matchers.cpp.o" "gcc" "src/config/CMakeFiles/rcfg_config.dir/matchers.cpp.o.d"
  "/root/repo/src/config/parse.cpp" "src/config/CMakeFiles/rcfg_config.dir/parse.cpp.o" "gcc" "src/config/CMakeFiles/rcfg_config.dir/parse.cpp.o.d"
  "/root/repo/src/config/print.cpp" "src/config/CMakeFiles/rcfg_config.dir/print.cpp.o" "gcc" "src/config/CMakeFiles/rcfg_config.dir/print.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rcfg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rcfg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/rcfg_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
