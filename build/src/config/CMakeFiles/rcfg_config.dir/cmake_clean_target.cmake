file(REMOVE_RECURSE
  "librcfg_config.a"
)
