file(REMOVE_RECURSE
  "CMakeFiles/rcfg_config.dir/builders.cpp.o"
  "CMakeFiles/rcfg_config.dir/builders.cpp.o.d"
  "CMakeFiles/rcfg_config.dir/diff.cpp.o"
  "CMakeFiles/rcfg_config.dir/diff.cpp.o.d"
  "CMakeFiles/rcfg_config.dir/matchers.cpp.o"
  "CMakeFiles/rcfg_config.dir/matchers.cpp.o.d"
  "CMakeFiles/rcfg_config.dir/parse.cpp.o"
  "CMakeFiles/rcfg_config.dir/parse.cpp.o.d"
  "CMakeFiles/rcfg_config.dir/print.cpp.o"
  "CMakeFiles/rcfg_config.dir/print.cpp.o.d"
  "librcfg_config.a"
  "librcfg_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfg_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
