# Empty dependencies file for rcfg_config.
# This may be replaced when dependencies are built.
