file(REMOVE_RECURSE
  "CMakeFiles/rcfg_baseline.dir/simulator.cpp.o"
  "CMakeFiles/rcfg_baseline.dir/simulator.cpp.o.d"
  "librcfg_baseline.a"
  "librcfg_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfg_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
