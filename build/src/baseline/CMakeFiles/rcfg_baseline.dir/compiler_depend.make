# Empty compiler generated dependencies file for rcfg_baseline.
# This may be replaced when dependencies are built.
