file(REMOVE_RECURSE
  "librcfg_baseline.a"
)
