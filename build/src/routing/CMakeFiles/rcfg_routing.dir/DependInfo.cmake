
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/decision.cpp" "src/routing/CMakeFiles/rcfg_routing.dir/decision.cpp.o" "gcc" "src/routing/CMakeFiles/rcfg_routing.dir/decision.cpp.o.d"
  "/root/repo/src/routing/facts.cpp" "src/routing/CMakeFiles/rcfg_routing.dir/facts.cpp.o" "gcc" "src/routing/CMakeFiles/rcfg_routing.dir/facts.cpp.o.d"
  "/root/repo/src/routing/generator.cpp" "src/routing/CMakeFiles/rcfg_routing.dir/generator.cpp.o" "gcc" "src/routing/CMakeFiles/rcfg_routing.dir/generator.cpp.o.d"
  "/root/repo/src/routing/policy.cpp" "src/routing/CMakeFiles/rcfg_routing.dir/policy.cpp.o" "gcc" "src/routing/CMakeFiles/rcfg_routing.dir/policy.cpp.o.d"
  "/root/repo/src/routing/semantics.cpp" "src/routing/CMakeFiles/rcfg_routing.dir/semantics.cpp.o" "gcc" "src/routing/CMakeFiles/rcfg_routing.dir/semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rcfg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rcfg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/rcfg_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/rcfg_config.dir/DependInfo.cmake"
  "/root/repo/build/src/dd/CMakeFiles/rcfg_dd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
