# Empty dependencies file for rcfg_routing.
# This may be replaced when dependencies are built.
