file(REMOVE_RECURSE
  "librcfg_routing.a"
)
