file(REMOVE_RECURSE
  "CMakeFiles/rcfg_routing.dir/decision.cpp.o"
  "CMakeFiles/rcfg_routing.dir/decision.cpp.o.d"
  "CMakeFiles/rcfg_routing.dir/facts.cpp.o"
  "CMakeFiles/rcfg_routing.dir/facts.cpp.o.d"
  "CMakeFiles/rcfg_routing.dir/generator.cpp.o"
  "CMakeFiles/rcfg_routing.dir/generator.cpp.o.d"
  "CMakeFiles/rcfg_routing.dir/policy.cpp.o"
  "CMakeFiles/rcfg_routing.dir/policy.cpp.o.d"
  "CMakeFiles/rcfg_routing.dir/semantics.cpp.o"
  "CMakeFiles/rcfg_routing.dir/semantics.cpp.o.d"
  "librcfg_routing.a"
  "librcfg_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfg_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
