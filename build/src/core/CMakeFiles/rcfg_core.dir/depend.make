# Empty dependencies file for rcfg_core.
# This may be replaced when dependencies are built.
