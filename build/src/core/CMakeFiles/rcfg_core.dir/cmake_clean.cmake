file(REMOVE_RECURSE
  "CMakeFiles/rcfg_core.dir/rng.cpp.o"
  "CMakeFiles/rcfg_core.dir/rng.cpp.o.d"
  "CMakeFiles/rcfg_core.dir/strings.cpp.o"
  "CMakeFiles/rcfg_core.dir/strings.cpp.o.d"
  "librcfg_core.a"
  "librcfg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcfg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
