file(REMOVE_RECURSE
  "librcfg_core.a"
)
