# Empty dependencies file for maintenance_ci.
# This may be replaced when dependencies are built.
