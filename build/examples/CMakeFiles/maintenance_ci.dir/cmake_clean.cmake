file(REMOVE_RECURSE
  "CMakeFiles/maintenance_ci.dir/maintenance_ci.cpp.o"
  "CMakeFiles/maintenance_ci.dir/maintenance_ci.cpp.o.d"
  "maintenance_ci"
  "maintenance_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
