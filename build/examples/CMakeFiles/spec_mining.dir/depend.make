# Empty dependencies file for spec_mining.
# This may be replaced when dependencies are built.
