file(REMOVE_RECURSE
  "CMakeFiles/spec_mining.dir/spec_mining.cpp.o"
  "CMakeFiles/spec_mining.dir/spec_mining.cpp.o.d"
  "spec_mining"
  "spec_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
