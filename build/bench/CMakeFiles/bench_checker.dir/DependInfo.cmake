
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_checker.cpp" "bench/CMakeFiles/bench_checker.dir/bench_checker.cpp.o" "gcc" "bench/CMakeFiles/bench_checker.dir/bench_checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verify/CMakeFiles/rcfg_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rcfg_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/dpm/CMakeFiles/rcfg_dpm.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/rcfg_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/rcfg_config.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/rcfg_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rcfg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dd/CMakeFiles/rcfg_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rcfg_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
