# Empty compiler generated dependencies file for bench_specmining.
# This may be replaced when dependencies are built.
