file(REMOVE_RECURSE
  "CMakeFiles/bench_specmining.dir/bench_specmining.cpp.o"
  "CMakeFiles/bench_specmining.dir/bench_specmining.cpp.o.d"
  "bench_specmining"
  "bench_specmining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_specmining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
