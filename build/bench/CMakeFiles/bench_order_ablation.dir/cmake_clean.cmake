file(REMOVE_RECURSE
  "CMakeFiles/bench_order_ablation.dir/bench_order_ablation.cpp.o"
  "CMakeFiles/bench_order_ablation.dir/bench_order_ablation.cpp.o.d"
  "bench_order_ablation"
  "bench_order_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_order_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
