file(REMOVE_RECURSE
  "CMakeFiles/bench_ec.dir/bench_ec.cpp.o"
  "CMakeFiles/bench_ec.dir/bench_ec.cpp.o.d"
  "bench_ec"
  "bench_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
