file(REMOVE_RECURSE
  "CMakeFiles/dd_tests.dir/operators_test.cpp.o"
  "CMakeFiles/dd_tests.dir/operators_test.cpp.o.d"
  "CMakeFiles/dd_tests.dir/recursion_test.cpp.o"
  "CMakeFiles/dd_tests.dir/recursion_test.cpp.o.d"
  "CMakeFiles/dd_tests.dir/zset_test.cpp.o"
  "CMakeFiles/dd_tests.dir/zset_test.cpp.o.d"
  "dd_tests"
  "dd_tests.pdb"
  "dd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
