# Empty compiler generated dependencies file for dd_tests.
# This may be replaced when dependencies are built.
