
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/config/builders_test.cpp" "tests/config/CMakeFiles/config_tests.dir/builders_test.cpp.o" "gcc" "tests/config/CMakeFiles/config_tests.dir/builders_test.cpp.o.d"
  "/root/repo/tests/config/diff_test.cpp" "tests/config/CMakeFiles/config_tests.dir/diff_test.cpp.o" "gcc" "tests/config/CMakeFiles/config_tests.dir/diff_test.cpp.o.d"
  "/root/repo/tests/config/matchers_test.cpp" "tests/config/CMakeFiles/config_tests.dir/matchers_test.cpp.o" "gcc" "tests/config/CMakeFiles/config_tests.dir/matchers_test.cpp.o.d"
  "/root/repo/tests/config/parse_print_test.cpp" "tests/config/CMakeFiles/config_tests.dir/parse_print_test.cpp.o" "gcc" "tests/config/CMakeFiles/config_tests.dir/parse_print_test.cpp.o.d"
  "/root/repo/tests/config/parser_robustness_test.cpp" "tests/config/CMakeFiles/config_tests.dir/parser_robustness_test.cpp.o" "gcc" "tests/config/CMakeFiles/config_tests.dir/parser_robustness_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rcfg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rcfg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/rcfg_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/rcfg_config.dir/DependInfo.cmake"
  "/root/repo/build/src/dd/CMakeFiles/rcfg_dd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
