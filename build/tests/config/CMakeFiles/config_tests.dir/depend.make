# Empty dependencies file for config_tests.
# This may be replaced when dependencies are built.
