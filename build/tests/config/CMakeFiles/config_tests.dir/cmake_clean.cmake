file(REMOVE_RECURSE
  "CMakeFiles/config_tests.dir/builders_test.cpp.o"
  "CMakeFiles/config_tests.dir/builders_test.cpp.o.d"
  "CMakeFiles/config_tests.dir/diff_test.cpp.o"
  "CMakeFiles/config_tests.dir/diff_test.cpp.o.d"
  "CMakeFiles/config_tests.dir/matchers_test.cpp.o"
  "CMakeFiles/config_tests.dir/matchers_test.cpp.o.d"
  "CMakeFiles/config_tests.dir/parse_print_test.cpp.o"
  "CMakeFiles/config_tests.dir/parse_print_test.cpp.o.d"
  "CMakeFiles/config_tests.dir/parser_robustness_test.cpp.o"
  "CMakeFiles/config_tests.dir/parser_robustness_test.cpp.o.d"
  "config_tests"
  "config_tests.pdb"
  "config_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
