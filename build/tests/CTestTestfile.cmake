# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("net")
subdirs("topo")
subdirs("config")
subdirs("dd")
subdirs("routing")
subdirs("baseline")
subdirs("dpm")
subdirs("verify")
subdirs("integration")
