# CMake generated Testfile for 
# Source directory: /root/repo/tests/routing
# Build directory: /root/repo/build/tests/routing
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/routing/routing_tests[1]_include.cmake")
