file(REMOVE_RECURSE
  "CMakeFiles/routing_tests.dir/aggregation_test.cpp.o"
  "CMakeFiles/routing_tests.dir/aggregation_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/differential_test.cpp.o"
  "CMakeFiles/routing_tests.dir/differential_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/facts_test.cpp.o"
  "CMakeFiles/routing_tests.dir/facts_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/generator_test.cpp.o"
  "CMakeFiles/routing_tests.dir/generator_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/policy_test.cpp.o"
  "CMakeFiles/routing_tests.dir/policy_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/rip_test.cpp.o"
  "CMakeFiles/routing_tests.dir/rip_test.cpp.o.d"
  "routing_tests"
  "routing_tests.pdb"
  "routing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
