# CMake generated Testfile for 
# Source directory: /root/repo/tests/dpm
# Build directory: /root/repo/build/tests/dpm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dpm/dpm_tests[1]_include.cmake")
