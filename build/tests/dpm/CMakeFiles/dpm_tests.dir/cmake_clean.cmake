file(REMOVE_RECURSE
  "CMakeFiles/dpm_tests.dir/bdd_test.cpp.o"
  "CMakeFiles/dpm_tests.dir/bdd_test.cpp.o.d"
  "CMakeFiles/dpm_tests.dir/ec_test.cpp.o"
  "CMakeFiles/dpm_tests.dir/ec_test.cpp.o.d"
  "CMakeFiles/dpm_tests.dir/model_test.cpp.o"
  "CMakeFiles/dpm_tests.dir/model_test.cpp.o.d"
  "CMakeFiles/dpm_tests.dir/packet_space_test.cpp.o"
  "CMakeFiles/dpm_tests.dir/packet_space_test.cpp.o.d"
  "dpm_tests"
  "dpm_tests.pdb"
  "dpm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
