# Empty dependencies file for dpm_tests.
# This may be replaced when dependencies are built.
