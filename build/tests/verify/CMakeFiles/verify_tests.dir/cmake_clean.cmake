file(REMOVE_RECURSE
  "CMakeFiles/verify_tests.dir/checker_test.cpp.o"
  "CMakeFiles/verify_tests.dir/checker_test.cpp.o.d"
  "CMakeFiles/verify_tests.dir/failures_test.cpp.o"
  "CMakeFiles/verify_tests.dir/failures_test.cpp.o.d"
  "CMakeFiles/verify_tests.dir/realconfig_test.cpp.o"
  "CMakeFiles/verify_tests.dir/realconfig_test.cpp.o.d"
  "CMakeFiles/verify_tests.dir/trace_test.cpp.o"
  "CMakeFiles/verify_tests.dir/trace_test.cpp.o.d"
  "verify_tests"
  "verify_tests.pdb"
  "verify_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
