// Packet tracing — the debugging payoff of explicitly generating data
// planes (paper §4: "dumping the full packet traces — what rules they
// match, which path they take").
//
//   $ ./examples/packet_trace
//
// Shows traces across ECMP fan-out, through an ACL, into a null route, and
// around a link failure.

#include <cstdio>

#include "config/builders.h"
#include "topo/generators.h"
#include "verify/realconfig.h"
#include "verify/trace.h"

using namespace rcfg;

namespace {

config::Flow make_flow(const topo::Topology& t, const char* dst_node, config::IpProto proto,
                       std::uint16_t dport) {
  config::Flow f;
  f.src = *net::Ipv4Addr::parse("192.0.2.1");
  f.dst = config::host_prefix(t.find_node(dst_node)).first();
  f.proto = proto;
  f.dst_port = dport;
  return f;
}

}  // namespace

int main() {
  const topo::Topology topo = topo::make_fat_tree(4);
  config::NetworkConfig cfg = config::build_ospf_network(topo);

  // A telnet filter at edge1-0's ingress and a quarantine null route.
  {
    auto& dev = cfg.devices.at("edge1-0");
    config::Acl acl;
    acl.name = "NO-TELNET";
    config::AclRule deny;
    deny.seq = 10;
    deny.action = config::Action::kDeny;
    deny.proto = config::IpProto::kTcp;
    deny.dst_ports = {23, 23};
    acl.rules.push_back(deny);
    config::AclRule permit;
    permit.seq = 20;
    acl.rules.push_back(permit);
    dev.acls["NO-TELNET"] = acl;
    for (auto& iface : dev.interfaces) {
      if (iface.name != "lan0") iface.acl_in = "NO-TELNET";
    }
    cfg.devices.at("core0").static_routes.push_back(
        {*net::Ipv4Prefix::parse("203.0.113.0/24"), "null0", 1});
  }

  verify::RealConfig rc(topo);
  rc.apply(cfg);
  const topo::NodeId ingress = topo.find_node("edge0-0");

  std::printf("=== 1. ECMP fan-out (every equal-cost path enumerated) ===\n");
  const auto ecmp = verify::trace_flow(
      topo, rc.model(), make_flow(topo, "edge3-1", config::IpProto::kUdp, 0), ingress);
  std::printf("%s\n", verify::to_string(ecmp, topo).c_str());

  std::printf("=== 2. The same destination, telnet vs http through the ACL ===\n");
  const auto telnet = verify::trace_flow(
      topo, rc.model(), make_flow(topo, "edge1-0", config::IpProto::kTcp, 23), ingress);
  std::printf("%s\n", verify::to_string(telnet, topo).c_str());
  const auto http = verify::trace_flow(
      topo, rc.model(), make_flow(topo, "edge1-0", config::IpProto::kTcp, 80), ingress);
  std::printf("%s\n", verify::to_string(http, topo).c_str());

  std::printf("=== 3. Quarantined prefix hits the null route ===\n");
  config::Flow quarantined;
  quarantined.dst = *net::Ipv4Addr::parse("203.0.113.7");
  // Nobody advertises it, so only core0's static route (reached from its
  // own position) shows the drop; trace from core0 itself.
  const auto dropped =
      verify::trace_flow(topo, rc.model(), quarantined, topo.find_node("core0"));
  std::printf("%s\n", verify::to_string(dropped, topo).c_str());

  std::printf("=== 4. After a link failure the trace reroutes ===\n");
  config::fail_link(cfg, topo, 0);  // edge0-0's first uplink
  rc.apply(cfg);
  const auto rerouted = verify::trace_flow(
      topo, rc.model(), make_flow(topo, "edge3-1", config::IpProto::kUdp, 0), ingress);
  std::printf("%s", verify::to_string(rerouted, topo).c_str());
  return 0;
}
