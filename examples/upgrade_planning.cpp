// Planning a large-scale change in small, individually verified steps
// (paper §2, modeled on Alibaba's ACL migration: move packet filters from
// core routers to dedicated edge devices, re-configuring a third of the
// network) — driven end to end through the rcfgd service layer's `order`
// verb.
//
// Instead of trying rollout steps one by one and rolling back on failure,
// the operator hands the WHOLE batch to the service: per-pod edge-ACL
// installs plus core decommissions, every step touching its own devices.
// Update-order synthesis searches the orderings on a scratch fork of the
// live verifier and either returns a rollout order in which every
// intermediate network satisfies every policy — or pins the minimal set of
// steps that block all orderings. The first plan contains a bug (pod 2's
// edge ACL forgets the catch-all permit, blackholing the pod) and the
// synthesizer names exactly that step; fixed, the same batch orders
// cleanly and the example replays it propose/commit by propose/commit.
//
//   $ ./examples/upgrade_planning

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "config/builders.h"
#include "config/print.h"
#include "service/engine.h"
#include "topo/generators.h"

using namespace rcfg;
using service::json::Value;

namespace {

constexpr unsigned kK = 4;
constexpr const char* kSession = "migration";

/// The subnet the security team quarantines: edge1-1's hosts.
net::Ipv4Prefix quarantined(const topo::Topology& t) {
  return config::host_prefix(t.find_node("edge1-1"));
}

config::Acl make_filter(const topo::Topology& t, bool forget_catch_all) {
  config::Acl acl;
  acl.name = "QUARANTINE";
  config::AclRule deny;
  deny.seq = 10;
  deny.action = config::Action::kDeny;
  deny.dst = quarantined(t);
  acl.rules.push_back(deny);
  if (!forget_catch_all) {
    config::AclRule permit;
    permit.seq = 20;
    permit.action = config::Action::kPermit;
    acl.rules.push_back(permit);
  }
  return acl;
}

void bind_on_uplinks(config::DeviceConfig& dev, const config::Acl& acl) {
  dev.acls[acl.name] = acl;
  for (auto& iface : dev.interfaces) {
    if (iface.name != "lan0") iface.acl_in = acl.name;
  }
}

void unbind(config::DeviceConfig& dev) {
  dev.acls.erase("QUARANTINE");
  for (auto& iface : dev.interfaces) iface.acl_in.reset();
}

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    std::exit(1);
  }
}

std::vector<std::string> names(const Value& body, const char* key) {
  std::vector<std::string> out;
  if (const Value* arr = body.find(key); arr != nullptr) {
    for (const Value& v : arr->as_array()) out.push_back(v.as_string());
  }
  return out;
}

}  // namespace

int main() {
  const topo::Topology topo = topo::make_fat_tree(kK);
  config::NetworkConfig cfg = config::build_ospf_network(topo);

  // Phase 0: today's state — the quarantine is enforced on every core
  // router.
  for (unsigned c = 0; c < kK * kK / 4; ++c) {
    bind_on_uplinks(cfg.devices.at("core" + std::to_string(c)), make_filter(topo, false));
  }

  // The migration batch: one edge-ACL install per pod, then the core
  // decommissions two cores at a time. Steps touch pairwise disjoint
  // devices, so the synthesizer is free to interleave them.
  struct PlanStep {
    std::string name;
    std::vector<std::string> devices;
    bool install = true;  ///< install edge filter vs unbind core filter
    bool buggy = false;
  };
  std::vector<PlanStep> plan;
  for (unsigned pod = 0; pod < kK; ++pod) {
    PlanStep s;
    s.name = "install-pod" + std::to_string(pod) + "-edges";
    for (unsigned e = 0; e < kK / 2; ++e) {
      s.devices.push_back("edge" + std::to_string(pod) + "-" + std::to_string(e));
    }
    s.buggy = pod == 2;  // the draft forgets pod 2's catch-all permit
    plan.push_back(std::move(s));
  }
  for (unsigned c = 0; c < kK * kK / 4; c += 2) {
    PlanStep s;
    s.name = "decommission-core" + std::to_string(c) + "-core" + std::to_string(c + 1);
    s.devices = {"core" + std::to_string(c), "core" + std::to_string(c + 1)};
    s.install = false;
    plan.push_back(std::move(s));
  }

  const auto step_json = [&](const PlanStep& s, bool fixed) {
    // Each step ships only its own devices' configs — the service overlays
    // them on the live configuration per candidate placement.
    config::NetworkConfig patch;
    for (const std::string& device : s.devices) {
      config::DeviceConfig dev = cfg.devices.at(device);
      if (s.install) {
        bind_on_uplinks(dev, make_filter(topo, s.buggy && !fixed));
      } else {
        unbind(dev);
      }
      patch.devices[device] = std::move(dev);
    }
    Value step;
    step["name"] = Value(s.name);
    step["config"] = Value(config::print_network(patch));
    return step;
  };
  const auto order_request = [&](int id, bool fixed) {
    Value req;
    req["id"] = Value(id);
    req["op"] = Value("order");
    req["session"] = Value(kSession);
    Value::Array steps;
    for (const PlanStep& s : plan) steps.push_back(step_json(s, fixed));
    req["steps"] = Value(std::move(steps));
    req["max_blocking"] = Value(2);
    return service::parse_request(req.dump());
  };

  // --- open a session and pin the migration's intent ----------------------
  service::Engine engine;
  Value topology;
  topology["kind"] = Value("fat_tree");
  topology["k"] = Value(kK);
  Value open;
  open["id"] = Value(1);
  open["op"] = Value("open");
  open["session"] = Value(kSession);
  open["topology"] = topology;
  open["config"] = Value(config::print_network(cfg));
  require(engine.call(service::parse_request(open.dump())).ok, "open failed");

  const auto add_policy = [&](int id, const char* kind, const char* name, const char* src,
                              const char* dst, net::Ipv4Prefix prefix) {
    Value policy;
    policy["kind"] = Value(kind);
    policy["name"] = Value(name);
    policy["src"] = Value(src);
    policy["dst"] = Value(dst);
    policy["prefix"] = Value(prefix.to_string());
    Value req;
    req["id"] = Value(id);
    req["op"] = Value("add_policy");
    req["session"] = Value(kSession);
    req["policy"] = policy;
    require(engine.call(service::parse_request(req.dump())).ok, "add_policy failed");
  };
  add_policy(2, "reachable", "pods-connected", "edge0-0", "edge2-0",
             config::host_prefix(topo.find_node("edge2-0")));
  add_policy(3, "isolated", "quarantine-near", "edge0-0", "edge1-1", quarantined(topo));
  add_policy(4, "isolated", "quarantine-far", "edge3-1", "edge1-1", quarantined(topo));
  std::printf("session '%s' open: fat-tree k=%u, 3 policies hold\n\n", kSession, kK);

  // --- round 1: the draft plan --------------------------------------------
  service::Response draft = engine.call(order_request(5, /*fixed=*/false));
  require(draft.ok, "order (draft) failed");
  const std::vector<std::string> blocking = names(draft.body, "blocking");
  std::printf("draft plan: found=%s, %lld placements verified\n",
              draft.body.get_bool("found") ? "yes" : "no",
              static_cast<long long>(draft.body.get_int("explored")));
  for (const std::string& b : blocking) std::printf("  blocking step: %s\n", b.c_str());
  require(blocking == std::vector<std::string>{"install-pod2-edges"},
          "the synthesizer did not pin the buggy step");
  require(draft.body.get_bool("blocking_minimal"), "blocking subset not proven minimal");
  std::printf("  -> pod 2's edge ACL blackholes the pod (no catch-all permit);\n"
              "     no ordering can place it, every other step still orders.\n\n");

  // --- round 2: the fixed plan --------------------------------------------
  service::Response fixed = engine.call(order_request(6, /*fixed=*/true));
  require(fixed.ok, "order (fixed) failed");
  require(fixed.body.get_bool("found"), "fixed plan should be orderable");
  require(names(fixed.body, "blocking").empty(), "fixed plan should have no blockers");
  const std::vector<std::string> rollout = names(fixed.body, "order");
  require(rollout.size() == plan.size(), "fixed plan should order every step");
  std::printf("fixed plan: safe rollout order synthesized\n");
  for (std::size_t i = 0; i < rollout.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1, rollout[i].c_str());
  }

  // --- replay: propose/commit each step in the synthesized order ----------
  std::printf("\nrolling out:\n");
  int id = 7;
  for (const std::string& step_name : rollout) {
    const auto it = std::find_if(plan.begin(), plan.end(),
                                 [&](const PlanStep& s) { return s.name == step_name; });
    require(it != plan.end(), "synthesized step name not in the plan");
    for (const std::string& device : it->devices) {
      auto& dev = cfg.devices.at(device);
      if (it->install) {
        bind_on_uplinks(dev, make_filter(topo, false));
      } else {
        unbind(dev);
      }
    }
    Value propose;
    propose["id"] = Value(id++);
    propose["op"] = Value("propose");
    propose["session"] = Value(kSession);
    propose["config"] = Value(config::print_network(cfg));
    const service::Response r = engine.call(service::parse_request(propose.dump()));
    require(r.ok, "propose failed");
    const Value* events = r.body.find("events");
    require(events == nullptr || events->as_array().empty(),
            "a synthesized step flipped a policy verdict");
    Value commit;
    commit["id"] = Value(id++);
    commit["op"] = Value("commit");
    commit["session"] = Value(kSession);
    require(engine.call(service::parse_request(commit.dump())).ok, "commit failed");
    std::printf("  %-34s committed, all policies hold\n", step_name.c_str());
  }

  std::printf("\nmigration complete: filters live at the edges, cores clean,\n"
              "every intermediate network verified before it ever existed.\n");
  return 0;
}
