// Planning a large-scale change in small, individually verified steps
// (paper §2, modeled on Alibaba's ACL migration: move packet filters from
// core routers to dedicated edge devices, re-configuring a third of the
// network).
//
// The plan: (1) install per-edge ACLs that deny a quarantined subnet,
// (2) remove the old core ACLs, pod by pod. One planned step contains a
// bug — the new edge ACL forgets the catch-all permit, blackholing
// everything — and incremental verification pins the violation on exactly
// that step instead of surfacing it after the whole migration.
//
//   $ ./examples/upgrade_planning

#include <cstdio>
#include <string>
#include <vector>

#include "config/builders.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

constexpr unsigned kK = 4;

/// The subnet the security team quarantines: edge1-1's hosts.
net::Ipv4Prefix quarantined(const topo::Topology& t) {
  return config::host_prefix(t.find_node("edge1-1"));
}

config::Acl make_filter(const topo::Topology& t, bool forget_catch_all) {
  config::Acl acl;
  acl.name = "QUARANTINE";
  config::AclRule deny;
  deny.seq = 10;
  deny.action = config::Action::kDeny;
  deny.dst = quarantined(t);
  acl.rules.push_back(deny);
  if (!forget_catch_all) {
    config::AclRule permit;
    permit.seq = 20;
    permit.action = config::Action::kPermit;
    acl.rules.push_back(permit);
  }
  return acl;
}

void bind_on_uplinks(config::DeviceConfig& dev, const config::Acl& acl) {
  dev.acls[acl.name] = acl;
  for (auto& iface : dev.interfaces) {
    if (iface.name != "lan0") iface.acl_in = acl.name;
  }
}

void unbind(config::DeviceConfig& dev) {
  dev.acls.erase("QUARANTINE");
  for (auto& iface : dev.interfaces) iface.acl_in.reset();
}

}  // namespace

int main() {
  const topo::Topology topo = topo::make_fat_tree(kK);
  config::NetworkConfig cfg = config::build_ospf_network(topo);

  // Phase 0: today's state — the quarantine is enforced on every core
  // router.
  for (unsigned c = 0; c < kK * kK / 4; ++c) {
    bind_on_uplinks(cfg.devices.at("core" + std::to_string(c)), make_filter(topo, false));
  }

  verify::RealConfig rc(topo);
  rc.apply(cfg);

  // Intent that must hold through the whole migration.
  const auto ok_prefix = config::host_prefix(topo.find_node("edge2-0"));
  rc.require_reachable("edge0-0", "edge2-0", ok_prefix);
  rc.require_isolated("edge0-0", "edge1-1", quarantined(topo));
  rc.require_isolated("edge3-1", "edge1-1", quarantined(topo));
  std::printf("migration start: %zu policies hold on the current network\n\n",
              rc.checker().policy_count());

  // The migration plan, one step per pod, then core cleanup.
  struct Step {
    std::string description;
    bool buggy;
  };
  unsigned step_no = 0;
  auto run_step = [&](const std::string& what, auto&& edit) {
    ++step_no;
    config::NetworkConfig draft = cfg;
    edit(draft);
    const auto report = rc.apply(draft);
    bool bad = false;
    for (const auto& event : report.check.events) bad |= !event.satisfied;
    std::printf("step %u: %-58s %s (%.1f ms, %zu ECs affected)\n", step_no, what.c_str(),
                bad ? "VIOLATION" : "ok", report.total_ms(),
                report.check.affected_ecs.size());
    if (bad) {
      for (const auto& event : report.check.events) {
        if (!event.satisfied) {
          std::printf("        broken: %s\n", rc.checker().policy(event.id).name.c_str());
        }
      }
      std::printf("        -> rolling back this step only\n");
      rc.apply(cfg);
      return false;
    }
    cfg = std::move(draft);
    return true;
  };

  // Phase 1: install edge filters pod by pod. Pod 2's step is the buggy one.
  for (unsigned pod = 0; pod < kK; ++pod) {
    const bool buggy = pod == 2;
    const bool landed = run_step(
        "install edge ACLs in pod " + std::to_string(pod) + (buggy ? " (buggy draft)" : ""),
        [&](config::NetworkConfig& draft) {
          for (unsigned e = 0; e < kK / 2; ++e) {
            auto& dev =
                draft.devices.at("edge" + std::to_string(pod) + "-" + std::to_string(e));
            bind_on_uplinks(dev, make_filter(topo, buggy));
          }
        });
    if (!landed) {
      // Fix the draft and retry the same step.
      run_step("install edge ACLs in pod " + std::to_string(pod) + " (fixed)",
               [&](config::NetworkConfig& draft) {
                 for (unsigned e = 0; e < kK / 2; ++e) {
                   auto& dev = draft.devices.at("edge" + std::to_string(pod) + "-" +
                                                std::to_string(e));
                   bind_on_uplinks(dev, make_filter(topo, false));
                 }
               });
    }
  }

  // Phase 2: remove the core ACLs, two cores at a time.
  for (unsigned c = 0; c < kK * kK / 4; c += 2) {
    run_step("decommission core ACLs on core" + std::to_string(c) + ", core" +
                 std::to_string(c + 1),
             [&](config::NetworkConfig& draft) {
               unbind(draft.devices.at("core" + std::to_string(c)));
               unbind(draft.devices.at("core" + std::to_string(c + 1)));
             });
  }

  std::printf("\nmigration complete; all %zu policies still hold\n",
              rc.checker().policy_count());
  return 0;
}
