// Specification mining under link failures (paper §2, Config2Spec-style).
//
// Which reachability guarantees does this network *actually* provide under
// every single-link failure? Sweeping all |E| failure scenarios with a
// from-scratch verifier costs |E| full verifications; RealConfig's
// verify::sweep_single_link_failures re-verifies each scenario
// incrementally, touching only the failure's blast radius.
//
//   $ ./examples/spec_mining [k]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "config/builders.h"
#include "topo/generators.h"
#include "verify/failures.h"

using namespace rcfg;

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const topo::Topology topo = topo::make_fat_tree(k);
  config::NetworkConfig cfg = config::build_ospf_network(topo);

  verify::RealConfig rc(topo);
  auto t0 = std::chrono::steady_clock::now();
  rc.apply(cfg);
  auto ms = [](auto a) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - a)
        .count();
  };
  const double full_ms = ms(t0);
  std::printf("fat tree k=%u (%zu nodes, %zu links); from-scratch verification %.0f ms\n", k,
              topo.node_count(), topo.link_count(), full_ms);

  t0 = std::chrono::steady_clock::now();
  const verify::FailureSweepResult mined = verify::sweep_single_link_failures(rc, cfg);
  const double sweep_ms = ms(t0);

  std::printf("\nmined fault-tolerant spec:\n");
  std::printf("  %zu of %zu healthy (s,d) pairs survive EVERY single-link failure\n",
              mined.fault_tolerant_pairs.size(), mined.healthy_pairs.size());
  std::printf("  %zu of %zu links are critical (their failure disconnects something)\n",
              mined.critical_links.size(), topo.link_count());
  std::printf("  %zu scenarios produced forwarding loops\n", mined.loop_scenarios.size());

  const double per_scenario = sweep_ms / static_cast<double>(mined.scenarios);
  std::printf("\nsweep cost: %zu scenarios in %.0f ms (%.1f ms/scenario, incremental)\n",
              mined.scenarios, sweep_ms, per_scenario);
  std::printf("from-scratch estimate: 2 x %zu x %.0f ms = %.0f ms  (speedup ~%.0fx)\n",
              mined.scenarios, full_ms, 2.0 * mined.scenarios * full_ms,
              2.0 * mined.scenarios * full_ms / sweep_ms);
  std::printf("(the paper reports ~20x for this workload on its 180-node fat tree)\n");
  return 0;
}
