// A client-side walk through the rcfgd service layer: build JSON-lines
// requests programmatically, run them through the same loop `rcfgd` runs,
// and read the responses back — all in process, no daemon needed.
//
//   $ ./examples/service_client
//
// The same script, written to a file, drives the standalone daemon:
//
//   $ ./src/service/rcfgd script.jsonl responses.jsonl
//
// Covers the whole verb set: open, add_policy, propose (twice, so the second
// coalesces the first inside one batch), commit, query, and stats.

#include <cstdio>
#include <sstream>
#include <string>

#include "config/builders.h"
#include "config/print.h"
#include "service/engine.h"
#include "topo/generators.h"

using namespace rcfg;
using service::json::Value;

namespace {

std::string line(Value::Object fields) { return Value(std::move(fields)).dump() + "\n"; }

}  // namespace

int main() {
  // --- the network under management: a 4-node OSPF ring -------------------
  const topo::Topology topo = topo::make_ring(4);
  const config::NetworkConfig good = config::build_ospf_network(topo);
  config::NetworkConfig drained = good;
  config::fail_link(drained, topo, 0);  // r0--r1 taken down for maintenance
  config::NetworkConfig rerouted = drained;
  config::fail_link(rerouted, topo, 2);  // ...and r2--r3 as well

  Value topology;
  topology["kind"] = Value("ring");
  topology["n"] = Value(4);
  Value policy;
  policy["kind"] = Value("reachable");
  policy["name"] = Value("r0-r2");
  policy["src"] = Value("r0");
  policy["dst"] = Value("r2");
  policy["prefix"] = Value(config::host_prefix(topo.find_node("r2")).to_string());

  // --- the request script, one JSON object per line -----------------------
  std::ostringstream script;
  script << "#pause\n";  // queue everything, then verify as one batch
  script << line({{"id", Value(1)},
                  {"op", Value("open")},
                  {"session", Value("ring4")},
                  {"topology", topology},
                  {"config", Value(config::print_network(good))}});
  script << line({{"id", Value(2)},
                  {"op", Value("add_policy")},
                  {"session", Value("ring4")},
                  {"policy", policy}});
  script << line({{"id", Value(3)},
                  {"op", Value("propose")},
                  {"session", Value("ring4")},
                  {"config", Value(config::print_network(drained))}});
  script << line({{"id", Value(4)},
                  {"op", Value("propose")},
                  {"session", Value("ring4")},
                  {"config", Value(config::print_network(rerouted))}});
  script << line({{"id", Value(5)}, {"op", Value("commit")}, {"session", Value("ring4")}});
  script << line({{"id", Value(6)}, {"op", Value("query")}, {"session", Value("ring4")}});
  script << "#resume\n";
  script << line({{"id", Value(7)}, {"op", Value("stats")}});

  std::printf("request script:\n%s\n", script.str().c_str());

  // --- run it through the rcfgd loop --------------------------------------
  std::istringstream in(script.str());
  std::ostringstream out;
  service::EngineOptions opts;
  opts.workers = 2;
  service::run_jsonl(in, out, opts);

  std::printf("responses:\n");
  std::istringstream lines(out.str());
  std::string response;
  while (std::getline(lines, response)) {
    const Value v = Value::parse(response);
    const std::int64_t id = v.get_int("id");
    if (id == 7) {
      // stats is a big nested object; summarise instead of dumping it raw.
      const Value* batching = v.find("metrics")->find("batching");
      std::printf("  id 7: ok, %lld batches, %lld proposes coalesced\n",
                  static_cast<long long>(batching->get_int("batches")),
                  static_cast<long long>(batching->get_int("coalesced_proposes")));
      continue;
    }
    std::printf("  %s\n", response.c_str());
  }

  std::printf("\nnote: propose #3 answers \"coalesced\" with superseded_by 4 — both\n"
              "proposals landed in one batch, and apply() takes the whole intended\n"
              "config, so verifying only the last one is equivalent.\n");
  return 0;
}
