// Quickstart: parse a small network's configuration from the DSL, verify
// it with RealConfig, make a change, and verify ONLY the change.
//
//   $ ./examples/quickstart
//
// Walks through the full public API surface: topology building, the config
// DSL parser, policies, incremental application, and packet tracing.

#include <cstdio>

#include "config/builders.h"
#include "config/diff.h"
#include "config/parse.h"
#include "config/print.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

void print_paths(const verify::RealConfig& rc_const, verify::RealConfig& rc,
                 const topo::Topology& t, const char* src, const char* dst) {
  const auto prefix = config::host_prefix(t.find_node(dst));
  const dpm::EcId ec = rc.ecs().ec_of(rc.packet_space().dst_prefix(prefix));
  std::printf("  packet traces %s -> %s (%s):\n", src, dst, prefix.to_string().c_str());
  for (const auto& path : rc.checker().trace(t.find_node(src), ec)) {
    std::printf("   ");
    for (const topo::NodeId n : path) std::printf(" %s", t.node(n).name.c_str());
    std::printf("\n");
  }
  (void)rc_const;
}

}  // namespace

int main() {
  // --- 1. topology: a 4-node ring -----------------------------------------
  const topo::Topology topo = topo::make_ring(4);
  std::printf("topology: %zu nodes, %zu links\n", topo.node_count(), topo.link_count());

  // --- 2. configuration: generated, then round-tripped through the DSL ----
  config::NetworkConfig cfg = config::build_ospf_network(topo);
  const std::string text = config::print_network(cfg);
  std::printf("\nconfig of r0 (Cisco-flavoured DSL):\n%s\n",
              config::print_device(cfg.devices.at("r0")).c_str());
  cfg = config::parse_network(text);  // parse/print round trip

  // --- 3. verify from scratch --------------------------------------------
  verify::RealConfig rc(topo);
  auto report = rc.apply(cfg);
  std::printf("full verification: %zu forwarding rules, %zu ECs, %zu reachable pairs "
              "(%.1f ms gen + %.1f ms model + %.1f ms check)\n",
              rc.generator().fib().size(), rc.ecs().ec_count(), rc.checker().pair_count(),
              report.generate_ms, report.model_ms, report.check_ms);

  // --- 4. register intent -------------------------------------------------
  const auto p2 = config::host_prefix(topo.find_node("r2"));
  const verify::PolicyId reach = rc.require_reachable("r0", "r2", p2);
  std::printf("policy [%s]: %s\n", rc.checker().policy(reach).name.c_str(),
              rc.checker().policy_satisfied(reach) ? "SATISFIED" : "VIOLATED");
  print_paths(rc, rc, topo, "r0", "r2");

  // --- 5. change the configuration, verify incrementally ------------------
  config::NetworkConfig changed = cfg;
  config::fail_link(changed, topo, 1);  // r1 -- r2 goes down
  const auto diffs = config::diff_networks(cfg, changed);
  std::printf("\nchange: %zu config line edits across %zu devices\n",
              config::edit_count(diffs), diffs.size());
  for (const auto& d : diffs) {
    for (const auto& e : d.edits) {
      std::printf("  %s %s: %s\n", e.kind == config::LineEdit::Kind::kInsert ? "+" : "-",
                  d.device.c_str(), e.text.c_str());
    }
  }

  report = rc.apply(changed);
  std::printf("incremental verification: %zu rule changes, %zu affected ECs, "
              "%zu affected pairs (%.2f ms gen + %.2f ms model + %.2f ms check)\n",
              report.dataplane.fib.size(), report.check.affected_ecs.size(),
              report.check.affected_pairs.size(), report.generate_ms, report.model_ms,
              report.check_ms);
  std::printf("policy [%s]: %s (ring reroutes the long way)\n",
              rc.checker().policy(reach).name.c_str(),
              rc.checker().policy_satisfied(reach) ? "SATISFIED" : "VIOLATED");
  print_paths(rc, rc, topo, "r0", "r2");

  // --- 6. a harmful change is flagged immediately -------------------------
  config::NetworkConfig broken = changed;
  config::fail_link(broken, topo, 2);  // r2 -- r3 too: r2 is cut off
  report = rc.apply(broken);
  for (const auto& event : report.check.events) {
    std::printf("\npolicy event: [%s] is now %s\n",
                rc.checker().policy(event.id).name.c_str(),
                event.satisfied ? "SATISFIED" : "VIOLATED");
  }
  return 0;
}
