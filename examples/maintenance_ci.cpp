// Regular maintenance as continuous integration (paper §2).
//
// A stream of small, frequent configuration changes hits a fat-tree
// network. Every proposed change is verified incrementally before
// "deployment": safe changes commit in milliseconds, harmful ones are
// rejected with the violated policies named — the CI-for-network-configs
// workflow the paper motivates.
//
//   $ ./examples/maintenance_ci [k]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "config/builders.h"
#include "config/diff.h"
#include "core/rng.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

using namespace rcfg;

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const topo::Topology topo = topo::make_fat_tree(k);
  config::NetworkConfig deployed = config::build_ospf_network(topo);

  verify::RealConfig rc(topo);
  const auto t0 = std::chrono::steady_clock::now();
  rc.apply(deployed);
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("fat tree k=%u: %zu nodes, %zu links; initial verification %.0f ms\n", k,
              topo.node_count(), topo.link_count(),
              std::chrono::duration<double, std::milli>(t1 - t0).count());

  // Intent: every edge switch reaches every other edge switch's hosts.
  unsigned pods = k, edges = k / 2;
  for (unsigned p = 0; p < pods; p += pods - 1) {       // first and last pod
    for (unsigned q = 0; q < pods; q += pods - 1) {
      if (p == q) continue;
      const std::string a = "edge" + std::to_string(p) + "-0";
      const std::string b = "edge" + std::to_string(q) + "-" + std::to_string(edges - 1);
      rc.require_reachable(a, b, config::host_prefix(topo.find_node(b)));
    }
  }
  std::printf("registered %zu reachability policies\n\n", rc.checker().policy_count());

  core::Rng rng{2026};
  unsigned committed = 0, rejected = 0;
  double total_ms = 0;

  for (int change = 1; change <= 20; ++change) {
    // Draft a change. Most are routine; some are fat-fingered.
    config::NetworkConfig draft = deployed;
    std::string description;
    const double dice = rng.next_double();
    if (dice < 0.4) {
      const auto l = static_cast<topo::LinkId>(rng.next_below(topo.link_count()));
      const auto& lk = topo.link(l);
      description = "drain link " + topo.node(lk.a).name + " -- " + topo.node(lk.b).name +
                    " for maintenance";
      config::fail_link(draft, topo, l);
    } else if (dice < 0.8) {
      const auto l = static_cast<topo::LinkId>(rng.next_below(topo.link_count()));
      const auto& lk = topo.link(l);
      const auto cost = static_cast<std::uint32_t>(rng.next_in(1, 20));
      description = "set cost " + std::to_string(cost) + " on " + topo.node(lk.a).name;
      config::set_ospf_cost(draft, topo.node(lk.a).name, topo.iface(lk.a_iface).name, cost);
    } else {
      // The fat-fingered change: shut down ALL uplinks of one edge switch.
      const std::string victim = "edge0-0";
      description = "oops: shutdown every uplink of " + victim;
      for (auto& iface : draft.devices.at(victim).interfaces) {
        if (iface.name != "lan0") iface.shutdown = true;
      }
    }

    const std::size_t edits = config::edit_count(config::diff_networks(deployed, draft));
    const auto c0 = std::chrono::steady_clock::now();
    const auto report = rc.apply(draft);
    const auto c1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(c1 - c0).count();
    total_ms += ms;

    bool violations = false;
    for (const auto& event : report.check.events) violations |= !event.satisfied;
    violations |= !report.check.loops_begun.empty();

    std::printf("change %2d (%2zu line edits, %6.1f ms): %-55s", change, edits, ms,
                description.c_str());
    if (violations) {
      ++rejected;
      std::printf(" REJECTED\n");
      for (const auto& event : report.check.events) {
        if (!event.satisfied) {
          std::printf("      violates: %s\n", rc.checker().policy(event.id).name.c_str());
        }
      }
      rc.apply(deployed);  // roll back
    } else {
      ++committed;
      std::printf(" ok\n");
      deployed = draft;
    }
  }

  std::printf("\n%u committed, %u rejected; mean verification %.1f ms per change\n",
              committed, rejected, total_ms / 20.0);
  return 0;
}
