// Provenance in action: why is my waypoint policy suddenly violated?
//
//   $ ./examples/explain_demo
//
// The script opens a traced session on a 4-node OSPF ring whose costs steer
// r0's traffic to r2 through r1, pins a waypoint policy to that path, then
// proposes a config that shuts the r0--r1 link. The `explain` verb answers
// with a witness packet, its hop-by-hop forwarding trace through the *new*
// data plane (LPM rule and ACL verdict per hop), and the provenance chain:
// which batch moved the policy's equivalence classes, and which config
// lines in that batch did it.

#include <cstdio>
#include <sstream>
#include <string>

#include "config/builders.h"
#include "config/print.h"
#include "service/engine.h"
#include "topo/generators.h"

using namespace rcfg;
using service::json::Value;

namespace {

std::string line(Value::Object fields) { return Value(std::move(fields)).dump() + "\n"; }

void print_explanation(const Value& v) {
  std::printf("  policy '%s' (%s): %s\n", v.get_string("policy").c_str(),
              v.get_string("kind").c_str(),
              v.get_bool("satisfied") ? "satisfied" : "VIOLATED");
  const Value* witness = v.find("witness");
  if (witness == nullptr) return;
  std::printf("  witness: EC %lld, %s -> %s (%s) entering at %s\n",
              static_cast<long long>(witness->get_int("ec")),
              witness->get_string("src").c_str(), witness->get_string("dst").c_str(),
              witness->get_string("proto").c_str(), witness->get_string("ingress").c_str());
  for (const Value& branch : v.find("branches")->as_array()) {
    std::printf("  path (%s):\n", branch.get_string("disposition").c_str());
    for (const Value& hop : branch.find("hops")->as_array()) {
      std::printf("    %-4s lpm=%-18s action=%s", hop.get_string("node").c_str(),
                  hop.get_string("lpm").c_str(), hop.get_string("action").c_str());
      if (hop.find("egress") != nullptr) {
        std::printf(" egress=%s", hop.get_string("egress").c_str());
      }
      if (hop.find("egress_acl") != nullptr) {
        std::printf(" egress_acl=[%s]", hop.get_string("egress_acl").c_str());
      }
      if (hop.find("ingress_acl") != nullptr) {
        std::printf(" ingress_acl=[%s]", hop.get_string("ingress_acl").c_str());
      }
      std::printf("\n");
    }
  }
  const Value* cause = v.find("cause");
  if (cause == nullptr) {
    std::printf("  cause: none recorded (tracing off or no batch moved these ECs)\n");
    return;
  }
  std::printf("  cause: batch %lld (%s), stages %.3f/%.3f/%.3f ms\n",
              static_cast<long long>(cause->get_int("batch")),
              cause->get_string("label").c_str(), cause->find("generate_ms")->as_double(),
              cause->find("model_ms")->as_double(), cause->find("check_ms")->as_double());
  for (const Value& dev : cause->find("devices")->as_array()) {
    std::printf("    device %s%s:\n", dev.get_string("device").c_str(),
                dev.get_bool("direct") ? " (rules moved here)" : "");
    for (const Value& edit : dev.find("edits")->as_array()) {
      std::printf("      %s line %lld: %s\n", edit.get_string("op").c_str(),
                  static_cast<long long>(edit.get_int("line")),
                  edit.get_string("text").c_str());
    }
  }
}

}  // namespace

int main() {
  // A ring where r0 reaches r2 clockwise through the waypoint r1 (the
  // counter-clockwise exit costs 10), until maintenance shuts r0--r1.
  const topo::Topology topo = topo::make_ring(4);
  config::NetworkConfig good = config::build_ospf_network(topo);
  config::set_ospf_cost(good, "r0", "to-r3", 10);
  config::NetworkConfig drained = good;
  config::fail_link(drained, topo, 0);

  Value topology;
  topology["kind"] = Value("ring");
  topology["n"] = Value(4);
  Value policy;
  policy["kind"] = Value("waypoint");
  policy["name"] = Value("via-r1");
  policy["src"] = Value("r0");
  policy["dst"] = Value("r2");
  policy["via"] = Value("r1");
  policy["prefix"] = Value(config::host_prefix(topo.find_node("r2")).to_string());

  std::ostringstream script;
  script << line({{"id", Value(1)},
                  {"op", Value("open")},
                  {"session", Value("ring4")},
                  {"topology", topology},
                  {"trace", Value(true)},  // provenance on: record every batch
                  {"config", Value(config::print_network(good))}});
  script << line({{"id", Value(2)},
                  {"op", Value("add_policy")},
                  {"session", Value("ring4")},
                  {"policy", policy}});
  script << line({{"id", Value(3)},
                  {"op", Value("propose")},
                  {"session", Value("ring4")},
                  {"config", Value(config::print_network(drained))}});
  // Empty "policy" means "explain the most recent verdict flip".
  script << line({{"id", Value(4)}, {"op", Value("explain")}, {"session", Value("ring4")}});

  std::printf("request script:\n%s\n", script.str().c_str());

  std::istringstream in(script.str());
  std::ostringstream out;
  service::run_jsonl(in, out);

  std::printf("responses:\n");
  std::istringstream lines(out.str());
  std::string response;
  while (std::getline(lines, response)) {
    const Value v = Value::parse(response);
    if (v.get_int("id") == 4) {
      std::printf("  id 4 (explain):\n");
      print_explanation(v);
    } else {
      std::printf("  %s\n", response.c_str());
    }
  }

  std::printf("\nnote: the explanation pairs the *symptom* (the witness detours\n"
              "r0 -> r3 -> r2, never crossing r1) with the *cause* (the propose\n"
              "batch whose 'shutdown' lines on r0/r1 moved the policy's ECs).\n");
  return 0;
}
