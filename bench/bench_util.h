#pragma once

// Shared helpers for the table-reproduction benches.
//
// Knobs (environment variables):
//   RCFG_FATTREE_K  fat-tree parameter k (default 8; paper scale is 12 —
//                   180 nodes / 864 links — which takes a few minutes of
//                   from-scratch time on a laptop-class core)
//   RCFG_SAMPLES    changes sampled per change type (default 5)
//   RCFG_ROUNDS     generator max_rounds (default 12; plenty for fat trees)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "service/cli.h"

namespace rcfg::bench {

/// Environment sizing knob: unset/empty means `fallback`; anything else
/// must be a strictly positive decimal count (the same bounds-checked
/// parser the rcfgd CLI uses), and junk exits 2 instead of being silently
/// swallowed into the fallback — a typo'd RCFG_FATTREE_K must not quietly
/// benchmark the wrong scale.
inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::optional<unsigned> parsed = service::parse_count_arg(v);
  if (!parsed) {
    std::fprintf(stderr, "%s: expected a positive count, got \"%s\"\n", name, v);
    std::exit(2);
  }
  return *parsed;
}

inline unsigned fat_tree_k() { return env_unsigned("RCFG_FATTREE_K", 8); }
inline unsigned samples() { return env_unsigned("RCFG_SAMPLES", 5); }
inline unsigned rounds() { return env_unsigned("RCFG_ROUNDS", 12); }

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct Stats {
  double sum = 0;
  double min = 1e300;
  double max = 0;
  unsigned n = 0;

  void add(double v) {
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    ++n;
  }
  double mean() const { return n == 0 ? 0 : sum / n; }
};

/// Interpolated percentile (p in [0,100]) of a sample; 0 when empty. Takes
/// the sample by value: callers keep their raw (unsorted) latency vectors.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace rcfg::bench
