// Table 2 reproduction: average data plane generation time on the fat-tree
// network.
//
// Paper (fat tree, 180 nodes / 864 links, one Xeon core):
//   | Protocol | Batfish Full | RealConfig Full | LinkFailure   | LC/LP        |
//   | OSPF     | 7.13 s       | 36.11 s         | 0.39 s (1.1%) | 0.39 s (1.1%)|
//   | BGP      | 3.81 s       | 3.92 s          | 0.19 s (4.8%) | 0.12 s (3.1%)|
//
// Roles here: "Batfish" = rcfg::baseline (domain-specific from-scratch
// simulator), "RealConfig" = rcfg::routing::IncrementalGenerator (the
// general-purpose incremental engine). Absolute numbers differ from the
// paper's hardware; the shape to check is (a) the domain-specific baseline
// beats the general-purpose engine on full computation, and (b) the
// incremental engine beats everything by 20x-92x on changes.
//
// Scale with RCFG_FATTREE_K (default 8; set 12 for paper scale).

#include <cstdio>

#include "baseline/simulator.h"
#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "routing/generator.h"
#include "topo/generators.h"

using namespace rcfg;

namespace {

struct Row {
  const char* protocol;
  double batfish_full_ms;
  double realconfig_full_ms;
  bench::Stats link_failure;
  bench::Stats attr_change;  // LC for OSPF, LP for BGP
};

Row run_protocol(const topo::Topology& topo, bool bgp) {
  Row row{bgp ? "BGP" : "OSPF", 0, 0, {}, {}};
  config::NetworkConfig cfg =
      bgp ? config::build_bgp_network(topo) : config::build_ospf_network(topo);

  {
    bench::Timer t;
    const auto result = baseline::simulate(topo, cfg);
    row.batfish_full_ms = t.ms();
    std::fprintf(stderr, "  [%s] baseline full: %zu FIB rows, %u bgp rounds\n", row.protocol,
                 result.fib.size(), result.bgp_rounds);
  }

  routing::GeneratorOptions opts;
  opts.max_rounds = bench::rounds();
  routing::IncrementalGenerator gen(topo, opts);
  {
    bench::Timer t;
    gen.apply(cfg);
    row.realconfig_full_ms = t.ms();
    std::fprintf(stderr, "  [%s] engine full: %zu FIB rows, %zu operators\n", row.protocol,
                 gen.fib().size(), gen.operator_count());
  }

  core::Rng rng{bgp ? 1002u : 1001u};
  const unsigned samples = bench::samples();

  // LinkFailure: deactivate both interfaces of a random link.
  for (unsigned i = 0; i < samples; ++i) {
    const auto l = static_cast<topo::LinkId>(rng.next_below(topo.link_count()));
    config::fail_link(cfg, topo, l);
    bench::Timer t;
    gen.apply(cfg);
    row.link_failure.add(t.ms());
    config::restore_link(cfg, topo, l);
    gen.apply(cfg);  // untimed revert
  }

  // LC (OSPF link cost 1 -> 100) or LP (BGP local pref 100 -> 150).
  for (unsigned i = 0; i < samples; ++i) {
    const auto l = static_cast<topo::LinkId>(rng.next_below(topo.link_count()));
    const auto& lk = topo.link(l);
    const std::string dev = topo.node(lk.a).name;
    const std::string iface = topo.iface(lk.a_iface).name;
    if (bgp) {
      config::set_local_pref(cfg, dev, iface, 150);
    } else {
      config::set_ospf_cost(cfg, dev, iface, 100);
    }
    bench::Timer t;
    gen.apply(cfg);
    row.attr_change.add(t.ms());
    if (bgp) {
      config::set_local_pref(cfg, dev, iface, config::kDefaultLocalPref);
    } else {
      config::set_ospf_cost(cfg, dev, iface, config::kDefaultOspfCost);
    }
    gen.apply(cfg);  // untimed revert
  }

  return row;
}

void print_row(const Row& r) {
  const double lf_pct = 100.0 * r.link_failure.mean() / r.realconfig_full_ms;
  const double at_pct = 100.0 * r.attr_change.mean() / r.realconfig_full_ms;
  std::printf("| %-8s | %9.2f s | %9.2f s | %7.3f s (%4.1f%%) | %7.3f s (%4.1f%%) |\n",
              r.protocol, r.batfish_full_ms / 1000.0, r.realconfig_full_ms / 1000.0,
              r.link_failure.mean() / 1000.0, lf_pct, r.attr_change.mean() / 1000.0, at_pct);
}

}  // namespace

int main() {
  const unsigned k = bench::fat_tree_k();
  const topo::Topology topo = topo::make_fat_tree(k);
  std::printf("Table 2: average data plane generation time\n");
  std::printf("fat tree k=%u: %zu nodes, %zu links; %u samples per change; %u rounds\n\n", k,
              topo.node_count(), topo.link_count(), bench::samples(), bench::rounds());
  std::printf("| Protocol | Batfish Full | RealConfig Full | LinkFailure       | LC/LP             |\n");
  std::printf("|----------|--------------|-----------------|-------------------|-------------------|\n");

  const Row ospf = run_protocol(topo, /*bgp=*/false);
  print_row(ospf);
  const Row bgp = run_protocol(topo, /*bgp=*/true);
  print_row(bgp);

  std::printf("\nspeedup (RealConfig full / incremental):\n");
  std::printf("  OSPF: LinkFailure %.0fx, LC %.0fx\n",
              ospf.realconfig_full_ms / ospf.link_failure.mean(),
              ospf.realconfig_full_ms / ospf.attr_change.mean());
  std::printf("  BGP:  LinkFailure %.0fx, LP %.0fx\n",
              bgp.realconfig_full_ms / bgp.link_failure.mean(),
              bgp.realconfig_full_ms / bgp.attr_change.mean());
  std::printf("\npaper's corresponding numbers (180 nodes): Batfish 7.13/3.81 s, RealConfig full\n"
              "36.11/3.92 s, incremental 0.39/0.19/0.12 s -> 20x-92x. Expect the same ordering\n"
              "and an incremental fraction of a few percent, not matching absolute times.\n");
  return 0;
}
