// Table 3 reproduction: model update and property checking on the fat-tree
// network running BGP.
//
// Paper (fat tree, 180 nodes / 864 links):
//   | Change      | #Rules        | Order | #ECs | T1   | #Pairs        | T2   |
//   | LinkFailure | +26/-28(0.3%) | +,-   | 28   | 3ms  | 286/10224     | 58ms |
//   |             |               | -,+   | 54   | 10ms | (2.79%)       |      |
//   | LP          | +54/-54(0.6%) | +,-   | 54   | 6ms  | 132/10224     | 61ms |
//   |             |               | -,+   | 108  | 20ms | (1.29%)       |      |
//
// Shape to check: affected rules are a fraction of a percent of the FIB;
// insertion-first ("+,-") moves each EC once while deletion-first ("-,+")
// detours via the drop port and roughly doubles the EC churn and T1; the
// affected pairs are a few percent of all pairs; T1+T2 stays well under the
// incremental generation time.
//
// Scale with RCFG_FATTREE_K (default 8; set 12 for paper scale).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "dpm/model.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

struct OrderStats {
  bench::Stats ecs;  // raw EC moves (paper's "#ECs")
  bench::Stats t1;   // model update ms
};

struct ChangeRow {
  std::string change;
  bench::Stats rule_inserts, rule_deletes;
  OrderStats orders[2];  // [0]=insert-first, [1]=delete-first
  bench::Stats pairs;    // affected pairs (measured on insert-first runs)
  bench::Stats t2;       // policy checking ms
};

/// One verification pipeline per update order, kept in sync with the same
/// change stream so both orders see identical rule batches.
struct Pipelines {
  verify::RealConfig insert_first;
  verify::RealConfig delete_first;

  Pipelines(const topo::Topology& t, dpm::BackendKind backend)
      : insert_first(t, make_options(dpm::UpdateOrder::kInsertFirst, backend)),
        delete_first(t, make_options(dpm::UpdateOrder::kDeleteFirst, backend)) {}

  static verify::RealConfigOptions make_options(dpm::UpdateOrder order,
                                                dpm::BackendKind backend) {
    verify::RealConfigOptions o;
    o.update_order = order;
    o.packet_space = backend;
    o.generator.max_rounds = bench::rounds();
    return o;
  }
};

void run_change(Pipelines& p, const config::NetworkConfig& cfg, ChangeRow& row) {
  const auto ri = p.insert_first.apply(cfg);
  row.rule_inserts.add(static_cast<double>(ri.dataplane.insertions()));
  row.rule_deletes.add(static_cast<double>(ri.dataplane.deletions()));
  row.orders[0].ecs.add(static_cast<double>(ri.model.stats.ec_moves));
  row.orders[0].t1.add(ri.model_ms);
  row.pairs.add(static_cast<double>(ri.check.affected_pairs.size()));
  row.t2.add(ri.check_ms);

  const auto rd = p.delete_first.apply(cfg);
  row.orders[1].ecs.add(static_cast<double>(rd.model.stats.ec_moves));
  row.orders[1].t1.add(rd.model_ms);
}

void revert(Pipelines& p, const config::NetworkConfig& cfg) {
  p.insert_first.apply(cfg);
  p.delete_first.apply(cfg);
}

}  // namespace

int main() {
  const unsigned k = bench::fat_tree_k();
  const topo::Topology topo = topo::make_fat_tree(k);

  std::printf("Table 3: model update and property checking (BGP fat tree)\n");
  std::printf("fat tree k=%u: %zu nodes, %zu links; %u samples per change type\n", k,
              topo.node_count(), topo.link_count(), bench::samples());

  // Both packet-space backends replay the identical change script (the BGP
  // fat tree registers dst prefixes only, so the interval lane never
  // migrates); the T1 column is where the backends differ.
  ChangeRow t1_reference[2];  // per-backend LinkFailure rows, for the summary
  for (const dpm::BackendKind backend :
       {dpm::BackendKind::kBdd, dpm::BackendKind::kInterval}) {
    const bool interval = backend == dpm::BackendKind::kInterval;
    std::printf("\n--- packet-space backend: %s ---\n\n", dpm::to_string(backend));
    config::NetworkConfig cfg = config::build_bgp_network(topo);

    Pipelines pipelines(topo, backend);
    pipelines.insert_first.apply(cfg);
    pipelines.delete_first.apply(cfg);
    const std::size_t total_rules = pipelines.insert_first.model().rule_count();
    const std::size_t total_pairs = pipelines.insert_first.checker().pair_count();
    std::fprintf(stderr, "  initial model: %zu rules, %zu ECs, %zu pairs\n", total_rules,
                 pipelines.insert_first.ecs().ec_count(), total_pairs);

    core::Rng rng{31};
    const unsigned samples = bench::samples();

    ChangeRow link_failure{"LinkFailure", {}, {}, {}, {}, {}};
    for (unsigned i = 0; i < samples; ++i) {
      const auto l = static_cast<topo::LinkId>(rng.next_below(topo.link_count()));
      config::fail_link(cfg, topo, l);
      run_change(pipelines, cfg, link_failure);
      config::restore_link(cfg, topo, l);
      revert(pipelines, cfg);
    }

    ChangeRow lp{"LP", {}, {}, {}, {}, {}};
    for (unsigned i = 0; i < samples; ++i) {
      const auto l = static_cast<topo::LinkId>(rng.next_below(topo.link_count()));
      const auto& lk = topo.link(l);
      const std::string dev = topo.node(lk.a).name;
      const std::string iface = topo.iface(lk.a_iface).name;
      config::set_local_pref(cfg, dev, iface, 150);
      run_change(pipelines, cfg, lp);
      config::set_local_pref(cfg, dev, iface, config::kDefaultLocalPref);
      revert(pipelines, cfg);
    }
    t1_reference[interval ? 1 : 0] = link_failure;

    std::printf(
        "| Change      | #Rules          | Order | #ECs  | T1       | #Pairs           | T2       |\n");
    std::printf(
        "|-------------|-----------------|-------|-------|----------|------------------|----------|\n");
    for (const ChangeRow* row : {&link_failure, &lp}) {
      const double rule_pct =
          100.0 * (row->rule_inserts.mean() + row->rule_deletes.mean()) / total_rules;
      std::printf("| %-11s | +%.0f/-%.0f (%.2f%%) | +,-   | %5.0f | %6.2fms | %5.0f/%zu (%.2f%%) | %6.2fms |\n",
                  row->change.c_str(), row->rule_inserts.mean(), row->rule_deletes.mean(),
                  rule_pct, row->orders[0].ecs.mean(), row->orders[0].t1.mean(),
                  row->pairs.mean(), total_pairs, 100.0 * row->pairs.mean() / total_pairs,
                  row->t2.mean());
      std::printf("| %-11s | %-15s | -,+   | %5.0f | %6.2fms | %-16s | %-8s |\n", "", "",
                  row->orders[1].ecs.mean(), row->orders[1].t1.mean(), "", "");
    }

    std::printf("\nshape checks:\n");
    std::printf("  deletion-first EC churn / insertion-first: %.1fx (LinkFailure), %.1fx (LP) — paper ~2x\n",
                link_failure.orders[1].ecs.mean() / std::max(1.0, link_failure.orders[0].ecs.mean()),
                lp.orders[1].ecs.mean() / std::max(1.0, lp.orders[0].ecs.mean()));
    std::printf("  affected rules: %.2f%% / %.2f%% of all rules — paper 0.32%% / 0.64%%\n",
                100.0 * (link_failure.rule_inserts.mean() + link_failure.rule_deletes.mean()) /
                    total_rules,
                100.0 * (lp.rule_inserts.mean() + lp.rule_deletes.mean()) / total_rules);
  }

  std::printf("\nbackend head-to-head (LinkFailure, insertion-first): T1 bdd/interval = %.1fx\n",
              t1_reference[0].orders[0].t1.mean() /
                  std::max(1e-6, t1_reference[1].orders[0].t1.mean()));
  return 0;
}
