// What-if sweep economics: the cost of standing up a failure-scenario
// replica by snapshot/fork versus building a verifier from scratch, and the
// cost of a full single-link-failure sweep under the two strategies:
//
//   reconverge  sweep_single_link_failures — one long-lived verifier,
//               fail -> verify -> restore -> verify per scenario (two
//               incremental applies each, and the EC partition drifts:
//               atoms split across scenarios never re-merge);
//   fork        sweep_failures — checkpoint once, every scenario is
//               restore -> apply -> check on a forked replica (one apply
//               each, pristine EC partition per scenario), optionally
//               sharded over a worker pool.
//
// Scenario outcomes are asserted identical scenario-for-scenario across the
// two strategies and across every thread count, so this bench doubles as
// the determinism check for forked replicas. Speedup from threads needs
// real cores; on a 1-CPU container the sharded rows show overhead only.
//
// Knobs (environment variables):
//   RCFG_FATTREE_K        fat-tree k (default 8)
//   RCFG_WHATIF_LINKS     links swept (default 24; 0 = every link)
//   RCFG_WHATIF_POLICIES  registered reachability policies (default 16)
//   RCFG_SAMPLES          fork/rebuild timing samples (default 5)
//
// Emits BENCH_whatif.json in the working directory.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "service/json.h"
#include "topo/generators.h"
#include "verify/failures.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

/// The semantic content of one scenario outcome (timings stripped).
struct Verdict {
  std::vector<topo::LinkId> links;
  bool diverged = false;
  std::size_t reachable_pairs = 0;
  std::size_t pairs_lost = 0;
  std::vector<verify::PolicyId> violated;
  bool gained_loop = false;

  static Verdict of(const verify::ScenarioOutcome& out) {
    return Verdict{out.scenario.links, out.diverged,    out.reachable_pairs,
                   out.pairs_lost,     out.violated,    out.gained_loop};
  }
  bool operator==(const Verdict&) const = default;
};

std::vector<Verdict> verdicts(const verify::FailureSweepResult& result) {
  std::vector<Verdict> out;
  out.reserve(result.outcomes.size());
  for (const verify::ScenarioOutcome& o : result.outcomes) out.push_back(Verdict::of(o));
  return out;
}

}  // namespace

int main() {
  const unsigned k = bench::fat_tree_k();
  const unsigned n_links = bench::env_unsigned("RCFG_WHATIF_LINKS", 24);
  const unsigned n_policies = bench::env_unsigned("RCFG_WHATIF_POLICIES", 16);
  const unsigned samples = bench::samples();

  const topo::Topology topo = topo::make_fat_tree(k);
  const config::NetworkConfig base = config::build_ospf_network(topo);

  verify::RealConfig rc(topo);
  core::Rng rng(0x9e3779b97f4a7c15ULL);
  for (unsigned p = 0; p < n_policies; ++p) {
    const topo::NodeId a = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
    topo::NodeId b = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
    if (b == a) b = (b + 1) % static_cast<topo::NodeId>(topo.node_count());
    rc.require_reachable(topo.node(a).name, topo.node(b).name, config::host_prefix(b));
  }

  bench::Timer scratch_timer;
  rc.apply(base);
  const double scratch_ms = scratch_timer.ms();

  std::vector<topo::LinkId> links(topo.link_count());
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) links[l] = l;
  rng.shuffle(links);
  if (n_links != 0 && links.size() > n_links) links.resize(n_links);

  std::printf("what-if sweeps: fat-tree k=%u (%zu nodes, %zu links), %zu links swept, "
              "%u policies\n\n",
              k, topo.node_count(), topo.link_count(), links.size(), n_policies);

  // --- replica standup: snapshot + fork-restore vs from-scratch rebuild ---
  bench::Stats snap_ms, fork_ms, rebuild_ms;
  for (unsigned s = 0; s < samples; ++s) {
    const bench::Timer t_snap;
    const auto snap = rc.snapshot();
    snap_ms.add(t_snap.ms());

    const bench::Timer t_fork;
    auto replica = rc.fork(*snap);
    fork_ms.add(t_fork.ms());

    const bench::Timer t_rebuild;
    verify::RealConfig fresh(topo);
    fresh.apply(base);
    rebuild_ms.add(t_rebuild.ms());
  }
  std::printf("replica standup (mean over %u samples):\n", samples);
  std::printf("  snapshot        %8.2f ms\n", snap_ms.mean());
  std::printf("  fork + restore  %8.2f ms\n", fork_ms.mean());
  std::printf("  scratch rebuild %8.2f ms  (%.1fx the fork)\n\n", rebuild_ms.mean(),
              fork_ms.mean() > 0 ? rebuild_ms.mean() / fork_ms.mean() : 0);

  // --- full sweeps: reconverge-in-place vs snapshot-fork, sharded ---------
  struct Row {
    std::string strategy;
    unsigned threads = 0;
    double sweep_ms = 0;
    double per_scenario_ms = 0;
    double speedup = 0;  ///< vs reconverge
  };
  std::vector<Row> rows;

  const verify::FailureSweepResult serial = sweep_single_link_failures(rc, base, links);
  const std::vector<Verdict> reference = verdicts(serial);
  rows.push_back(Row{"reconverge", 1, serial.sweep_ms,
                     serial.sweep_ms / static_cast<double>(serial.scenarios), 1.0});

  verify::FailureSweepOptions options;
  for (const topo::LinkId l : links) options.scenarios.push_back(verify::FailureScenario{{l}});
  for (const unsigned threads : {1u, 2u, 4u}) {
    options.threads = threads;
    const verify::FailureSweepResult forked = sweep_failures(rc, base, options);
    if (verdicts(forked) != reference) {
      std::fprintf(stderr,
                   "FAIL: fork-sweep outcomes at threads=%u differ from the reconverge "
                   "sweep\n",
                   threads);
      return 1;
    }
    rows.push_back(Row{"fork", threads, forked.sweep_ms,
                       forked.sweep_ms / static_cast<double>(forked.scenarios),
                       forked.sweep_ms > 0 ? serial.sweep_ms / forked.sweep_ms : 0});
  }

  std::printf("| Strategy   | Threads | Sweep ms | Per-scenario ms | Speedup |\n");
  std::printf("|------------|---------|----------|-----------------|---------|\n");
  for (const Row& row : rows) {
    std::printf("| %-10s | %7u | %8.1f | %15.2f | %6.2fx |\n", row.strategy.c_str(),
                row.threads, row.sweep_ms, row.per_scenario_ms, row.speedup);
  }
  std::printf("\noutcomes identical across both strategies and all thread counts\n");

  service::json::Value doc;
  doc["bench"] = service::json::Value("whatif");
  doc["fat_tree_k"] = service::json::Value(k);
  doc["nodes"] = service::json::Value(static_cast<std::uint64_t>(topo.node_count()));
  doc["links"] = service::json::Value(static_cast<std::uint64_t>(topo.link_count()));
  doc["links_swept"] = service::json::Value(static_cast<std::uint64_t>(links.size()));
  doc["policies"] = service::json::Value(n_policies);
  doc["scratch_apply_ms"] = service::json::Value(scratch_ms);
  doc["snapshot_ms"] = service::json::Value(snap_ms.mean());
  doc["fork_restore_ms"] = service::json::Value(fork_ms.mean());
  doc["rebuild_ms"] = service::json::Value(rebuild_ms.mean());
  service::json::Value out_rows;
  for (const Row& row : rows) {
    service::json::Value r;
    r["strategy"] = service::json::Value(row.strategy);
    r["threads"] = service::json::Value(row.threads);
    r["sweep_ms"] = service::json::Value(row.sweep_ms);
    r["per_scenario_ms"] = service::json::Value(row.per_scenario_ms);
    r["speedup"] = service::json::Value(row.speedup);
    out_rows.push_back(std::move(r));
  }
  doc["rows"] = std::move(out_rows);
  std::ofstream("BENCH_whatif.json") << doc.dump() << "\n";
  std::printf("wrote BENCH_whatif.json\n");
  return 0;
}
