// Deep failure-space exploration (k >= 3 simultaneous failures): how far
// dependency pruning, fat-tree pod-symmetry dedup, and prioritized budgeted
// generation stretch a fixed verification budget across a combinatorial
// scenario space (sweep_space.h, DESIGN.md decision 13).
//
// Two parts:
//   * parity (small k): on a fat-tree k=4 with two pod-pinned reachability
//     policies, a pruned sweep and a pruned+symmetry sweep must agree with
//     the exhaustive max_failures=2 sweep — identical policy_violations,
//     identical outcomes for every explored scenario, empty violation sets
//     on every scenario the pruner skipped, and exact accounting
//     (explored + replayed + pruned == total, coverage == 1).
//   * headline (recorded): fat-tree k=12 (paper scale: 180 nodes / 864
//     links, ~1.07e8 scenarios at max_failures=3), OSPF, four reachability
//     policies concentrated in pods 0-2, single core. Prune + symmetry +
//     budget account for the bulk of the space while verifying only
//     `budget` scenarios on replicas; the table records explored /
//     replayed / pruned / coverage and scenarios per second.
//
// Acceptance: parity must hold exactly, and the headline dedup ratio
// (pruned + replayed) / (explored + replayed + pruned) must be at least
// the floor (exit 1 otherwise).
//
// Knobs (environment variables):
//   RCFG_SWEEP_K          headline fat-tree k (default 12)
//   RCFG_SWEEP_MAXF       headline max simultaneous failures (default 3)
//   RCFG_SWEEP_BUDGET     headline explored-scenario budget (default 24)
//   RCFG_SWEEP_FLOOR_PCT  minimum headline dedup ratio, percent (default 50)
//
// Merges a "sweep_k3" section into BENCH_whatif.json in the working
// directory (the rest of the file, written by bench_whatif, is preserved).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "service/json.h"
#include "topo/generators.h"
#include "verify/failures.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

topo::NodeId find_node(const topo::Topology& t, const std::string& name) {
  for (topo::NodeId n = 0; n < static_cast<topo::NodeId>(t.node_count()); ++n) {
    if (t.node(n).name == name) return n;
  }
  std::fprintf(stderr, "FAIL: no node named %s\n", name.c_str());
  std::exit(1);
}

void require(verify::RealConfig& rc, const topo::Topology& t, const std::string& src,
             const std::string& dst) {
  rc.require_reachable(src, dst, config::host_prefix(find_node(t, dst)));
}

/// The semantic content of one outcome (timings and orbit width stripped).
struct Verdict {
  bool diverged = false;
  std::size_t reachable_pairs = 0;
  std::size_t pairs_lost = 0;
  std::vector<verify::PolicyId> violated;
  bool gained_loop = false;

  static Verdict of(const verify::ScenarioOutcome& out) {
    return Verdict{out.diverged, out.reachable_pairs, out.pairs_lost, out.violated,
                   out.gained_loop};
  }
  bool operator==(const Verdict&) const = default;
};

std::map<std::vector<topo::LinkId>, Verdict> by_scenario(
    const verify::FailureSweepResult& result) {
  std::map<std::vector<topo::LinkId>, Verdict> out;
  for (const verify::ScenarioOutcome& o : result.outcomes) {
    out.emplace(o.scenario.links, Verdict::of(o));
  }
  return out;
}

bool same_aggregates(const verify::FailureSweepResult& a,
                     const verify::FailureSweepResult& b) {
  return a.healthy_pairs == b.healthy_pairs &&
         a.fault_tolerant_pairs == b.fault_tolerant_pairs &&
         a.critical_links == b.critical_links &&
         a.policy_violations == b.policy_violations &&
         a.loop_scenarios == b.loop_scenarios && a.diverged_links == b.diverged_links &&
         a.diverged_scenarios == b.diverged_scenarios && a.scenarios == b.scenarios;
}

/// Exhaustive vs pruned vs pruned+symmetry on a fat-tree k=4, policies
/// pinned to pods 0-1 so pods 2-3 stay symmetric. Returns false (and
/// prints why) on any disagreement the reductions promise cannot happen.
bool parity_check() {
  const topo::Topology t = topo::make_fat_tree(4);
  const config::NetworkConfig base = config::build_ospf_network(t);
  verify::RealConfig rc(t);
  require(rc, t, "edge0-0", "edge1-0");
  require(rc, t, "edge1-1", "edge0-1");
  rc.apply(base);

  verify::FailureSweepOptions exhaustive;
  exhaustive.max_failures = 2;
  const verify::FailureSweepResult full = sweep_failures(rc, base, exhaustive);

  verify::FailureSweepOptions with_prune = exhaustive;
  with_prune.prune = true;
  const verify::FailureSweepResult pruned = sweep_failures(rc, base, with_prune);

  verify::FailureSweepOptions with_symmetry = with_prune;
  with_symmetry.symmetry = true;
  const verify::FailureSweepResult sym = sweep_failures(rc, base, with_symmetry);

  bool ok = true;
  if (pruned.explored_scenarios + pruned.pruned_scenarios != pruned.total_scenarios ||
      pruned.coverage != 1.0 || full.total_scenarios != pruned.total_scenarios) {
    std::fprintf(stderr, "FAIL: pruned-sweep accounting does not close\n");
    ok = false;
  }
  if (full.policy_violations != pruned.policy_violations ||
      full.policy_violations != sym.policy_violations) {
    std::fprintf(stderr, "FAIL: pruning/symmetry changed policy verdicts\n");
    ok = false;
  }
  const auto reference = by_scenario(full);
  for (const auto& [links, verdict] : by_scenario(pruned)) {
    const auto it = reference.find(links);
    if (it == reference.end() || !(it->second == verdict)) {
      std::fprintf(stderr, "FAIL: a pruned-sweep outcome differs from exhaustive\n");
      ok = false;
      break;
    }
  }
  // Soundness of the skip itself: every scenario the pruner never ran is
  // violation-free in the exhaustive sweep.
  const auto kept = by_scenario(pruned);
  for (const auto& [links, verdict] : reference) {
    if (kept.count(links) == 0 && !verdict.violated.empty()) {
      std::fprintf(stderr, "FAIL: the pruner skipped a violating scenario\n");
      ok = false;
      break;
    }
  }
  if (!same_aggregates(pruned, sym)) {
    std::fprintf(stderr, "FAIL: symmetry replay is not bit-identical to the pruned sweep\n");
    ok = false;
  }
  if (sym.replayed_scenarios == 0 ||
      sym.explored_scenarios + sym.replayed_scenarios != pruned.explored_scenarios) {
    std::fprintf(stderr, "FAIL: pod symmetry replayed nothing on a symmetric fat-tree\n");
    ok = false;
  }
  std::printf("parity (fat-tree k=4, max_failures=2): total %llu, exhaustive explored "
              "%llu, pruned explored %llu, symmetry explored %llu + replayed %llu%s\n\n",
              static_cast<unsigned long long>(full.total_scenarios),
              static_cast<unsigned long long>(full.explored_scenarios),
              static_cast<unsigned long long>(pruned.explored_scenarios),
              static_cast<unsigned long long>(sym.explored_scenarios),
              static_cast<unsigned long long>(sym.replayed_scenarios),
              ok ? " — all verdicts agree" : "");
  return ok;
}

}  // namespace

int main() {
  const unsigned k = bench::env_unsigned("RCFG_SWEEP_K", 12);
  const unsigned max_failures = bench::env_unsigned("RCFG_SWEEP_MAXF", 3);
  const unsigned budget = bench::env_unsigned("RCFG_SWEEP_BUDGET", 24);
  const unsigned floor_pct = bench::env_unsigned("RCFG_SWEEP_FLOOR_PCT", 50);
  bool ok = true;

  std::printf("deep failure-space sweeps: prune + symmetry + budget vs the raw space\n\n");
  if (!parity_check()) ok = false;

  // --- headline: fat-tree k, max_failures-deep space, one core ------------
  const topo::Topology topo = topo::make_fat_tree(k);
  const config::NetworkConfig base = config::build_ospf_network(topo);
  verify::RealConfig rc(topo);
  require(rc, topo, "edge0-0", "edge1-0");
  require(rc, topo, "edge0-1", "edge2-0");
  require(rc, topo, "edge1-0", "edge0-1");
  require(rc, topo, "edge2-1", "edge0-0");

  const bench::Timer scratch_timer;
  rc.apply(base);
  const double scratch_ms = scratch_timer.ms();
  std::printf("fat-tree k=%u: %zu nodes, %zu links, 4 policies in pods 0-2, "
              "scratch apply %.0f ms\n",
              k, topo.node_count(), topo.link_count(), scratch_ms);

  verify::FailureSweepOptions options;
  options.max_failures = max_failures;
  options.budget = budget;
  options.prune = true;
  options.symmetry = true;
  options.threads = 1;
  const verify::FailureSweepResult result = sweep_failures(rc, base, options);

  const std::uint64_t accounted =
      result.explored_scenarios + result.replayed_scenarios + result.pruned_scenarios;
  const double dedup_ratio =
      accounted > 0
          ? static_cast<double>(result.replayed_scenarios + result.pruned_scenarios) /
                static_cast<double>(accounted)
          : 0;
  const double verify_ms = result.sweep_ms - result.snapshot_ms;
  const double per_scenario_ms =
      result.explored_scenarios > 0
          ? verify_ms / static_cast<double>(result.explored_scenarios)
          : 0;
  const double accounted_per_s =
      result.sweep_ms > 0 ? static_cast<double>(accounted) / (result.sweep_ms / 1000.0) : 0;

  std::printf("\n| max_failures | Space        | Explored | Replayed | Pruned       | "
              "Coverage | Per-scenario ms |\n");
  std::printf("|--------------|--------------|----------|----------|--------------|"
              "----------|-----------------|\n");
  std::printf("| %12u | %12llu | %8llu | %8llu | %12llu | %7.4f%% | %15.1f |\n",
              max_failures, static_cast<unsigned long long>(result.total_scenarios),
              static_cast<unsigned long long>(result.explored_scenarios),
              static_cast<unsigned long long>(result.replayed_scenarios),
              static_cast<unsigned long long>(result.pruned_scenarios),
              result.coverage * 100.0, per_scenario_ms);
  std::printf("\nsweep %.0f ms (snapshot %.0f ms), %.0f scenarios/s accounted, "
              "dedup ratio %.4f (acceptance: >= %.2f)\n",
              result.sweep_ms, result.snapshot_ms, accounted_per_s, dedup_ratio,
              floor_pct / 100.0);
  if (dedup_ratio * 100.0 < static_cast<double>(floor_pct)) {
    std::fprintf(stderr, "FAIL: dedup ratio %.4f below the %u%% floor\n", dedup_ratio,
                 floor_pct);
    ok = false;
  }
  if (accounted > result.total_scenarios) {
    std::fprintf(stderr, "FAIL: accounted scenarios exceed the space\n");
    ok = false;
  }

  // Merge into BENCH_whatif.json without disturbing bench_whatif's fields.
  service::json::Value doc;
  {
    std::ifstream in("BENCH_whatif.json");
    if (in) {
      std::stringstream buf;
      buf << in.rdbuf();
      try {
        doc = service::json::Value::parse(buf.str());
      } catch (const std::exception&) {
        doc = service::json::Value();
      }
    }
  }
  service::json::Value sweep;
  sweep["fat_tree_k"] = service::json::Value(k);
  sweep["nodes"] = service::json::Value(static_cast<std::uint64_t>(topo.node_count()));
  sweep["links"] = service::json::Value(static_cast<std::uint64_t>(topo.link_count()));
  sweep["policies"] = service::json::Value(static_cast<std::uint64_t>(4));
  sweep["max_failures"] = service::json::Value(max_failures);
  sweep["budget"] = service::json::Value(budget);
  sweep["threads"] = service::json::Value(static_cast<std::uint64_t>(1));
  sweep["scratch_apply_ms"] = service::json::Value(scratch_ms);
  sweep["snapshot_ms"] = service::json::Value(result.snapshot_ms);
  sweep["sweep_ms"] = service::json::Value(result.sweep_ms);
  sweep["total_scenarios"] = service::json::Value(result.total_scenarios);
  sweep["explored"] = service::json::Value(result.explored_scenarios);
  sweep["replayed"] = service::json::Value(result.replayed_scenarios);
  sweep["pruned"] = service::json::Value(result.pruned_scenarios);
  sweep["coverage"] = service::json::Value(result.coverage);
  sweep["dedup_ratio"] = service::json::Value(dedup_ratio);
  sweep["per_scenario_ms"] = service::json::Value(per_scenario_ms);
  sweep["acceptance_min_dedup"] = service::json::Value(floor_pct / 100.0);
  doc["sweep_k3"] = std::move(sweep);
  std::ofstream("BENCH_whatif.json") << doc.dump() << "\n";
  std::printf("merged sweep_k3 into BENCH_whatif.json\n");
  return ok ? 0 : 1;
}
