// Micro-benchmarks for the incremental dataflow engine: operator costs and
// the incremental-vs-from-scratch gap at the engine level (supporting
// evidence for the Table 2 mechanism).

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "dd/operators.h"

using namespace rcfg;
using dd::Graph;
using dd::Input;
using dd::Join;
using dd::Map;
using dd::Output;
using dd::Reduce;
using dd::ZSet;

namespace {

using KV = std::pair<int, int>;

void BM_ZSetAdd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ZSet<int> z;
    for (int i = 0; i < n; ++i) z.add(i, 1);
    benchmark::DoNotOptimize(z.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ZSetAdd)->Arg(1000)->Arg(100000);

void BM_ZSetMerge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ZSet<int> a, b;
  for (int i = 0; i < n; ++i) {
    a.add(i, 1);
    b.add(i + n / 2, 1);
  }
  for (auto _ : state) {
    ZSet<int> c = a;
    c.merge(b);
    benchmark::DoNotOptimize(c.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ZSetMerge)->Arg(10000);

/// Join delta cost: arrangement size fixed, delta size varies.
void BM_JoinDelta(benchmark::State& state) {
  const int base = 100000;
  const int delta = static_cast<int>(state.range(0));
  Graph g;
  auto& left = g.make<Input<KV>>();
  auto& right = g.make<Input<KV>>();
  auto& join = g.make<Join<int, int, int, long>>(
      left.out, right.out,
      [](const int& k, const int& a, const int& b) { return long{k} + a + b; });
  auto& out = g.make<Output<long>>(join.out);
  core::Rng rng{1};
  for (int i = 0; i < base; ++i) {
    left.insert({i % 1000, i});
    right.insert({i % 1000, -i});
  }
  g.commit();
  int tick = 0;
  for (auto _ : state) {
    for (int i = 0; i < delta; ++i) {
      left.insert({static_cast<int>(rng.next_below(1000)), base + (++tick)});
    }
    g.commit();
    benchmark::DoNotOptimize(out.current().size());
  }
  state.SetItemsProcessed(state.iterations() * delta);
}
BENCHMARK(BM_JoinDelta)->Arg(1)->Arg(10)->Arg(100);

/// Reduce re-evaluates only touched groups: cost of one touched group among
/// many.
void BM_ReduceSingleGroupTouch(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  Graph g;
  auto& in = g.make<Input<KV>>();
  auto& red = g.make<Reduce<int, int, KV>>(
      in.out, [](const int& k, const ZSet<int>& group, std::vector<KV>& out) {
        int best = INT32_MAX;
        for (const auto& [v, w] : group) best = std::min(best, v);
        out.push_back({k, best});
      });
  auto& out = g.make<Output<KV>>(red.out);
  for (int k = 0; k < groups; ++k) {
    for (int v = 0; v < 8; ++v) in.insert({k, v * 100});
  }
  g.commit();
  int tick = 0;
  for (auto _ : state) {
    const int k = (++tick) % groups;
    in.insert({k, -tick});
    g.commit();
    benchmark::DoNotOptimize(out.current().size());
  }
}
BENCHMARK(BM_ReduceSingleGroupTouch)->Arg(1000)->Arg(100000);

/// End-to-end engine comparison on a recursive reachability program:
/// re-converging after one edge change vs computing from scratch.
struct ReachProgram {
  Graph graph;
  Input<std::pair<int, int>>* edges;
  Output<int>* reachable;

  ReachProgram() {
    using Edge = std::pair<int, int>;
    using Path = std::vector<int>;
    edges = &graph.make<Input<Edge>>("edges");
    auto& sources = graph.make<Input<int>>("sources");
    auto& paths = graph.make<dd::Concat<Path>>("paths");
    auto& seed =
        graph.make<Map<int, Path>>(sources.out, [](const int& s) { return Path{s}; });
    paths.add_input(seed.out);
    auto& keyed_paths = graph.make<Map<Path, std::pair<int, Path>>>(
        paths.out, [](const Path& p) { return std::pair<int, Path>{p.back(), p}; });
    auto& keyed_edges = graph.make<Map<Edge, std::pair<int, int>>>(
        edges->out, [](const Edge& e) { return std::pair<int, int>{e.first, e.second}; });
    auto& ext = graph.make<Join<int, Path, int, Path>>(
        keyed_paths.out, keyed_edges.out, [](const int&, const Path& p, const int& to) {
          Path q = p;
          q.push_back(to);
          return q;
        });
    auto& ok = graph.make<dd::Filter<Path>>(ext.out, [](const Path& p) {
      return std::find(p.begin(), p.end() - 1, p.back()) == p.end() - 1;
    });
    paths.add_input(ok.out);
    auto& heads = graph.make<Map<Path, int>>(paths.out, [](const Path& p) { return p.back(); });
    auto& nodes = graph.make<dd::Distinct<int>>(heads.out);
    reachable = &graph.make<Output<int>>(nodes.out);
    sources.insert(0);
  }
};

// Mind the shape: with a skip edge at EVERY node the loop-free path count
// grows like Fibonacci(n) and the enumeration explodes. Redundancy every
// 8th node keeps the path count at 2^(n/8).
void add_chainy_edges(Input<std::pair<int, int>>& edges, int n) {
  for (int i = 0; i + 1 < n; ++i) {
    edges.insert({i, i + 1});
    if (i % 8 == 0 && i + 2 < n) edges.insert({i, i + 2});
  }
}

void BM_RecursiveIncrementalEdgeFlip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ReachProgram p;
  add_chainy_edges(*p.edges, n);
  p.graph.commit();
  // Flip the final chain edge: a local change (only the last node's
  // reachability derivations are touched), the incremental sweet spot.
  for (auto _ : state) {
    p.edges->remove({n - 2, n - 1});
    p.graph.commit();
    p.edges->insert({n - 2, n - 1});
    p.graph.commit();
    benchmark::DoNotOptimize(p.reachable->current().size());
  }
}
BENCHMARK(BM_RecursiveIncrementalEdgeFlip)->Arg(64);

void BM_RecursiveFromScratch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ReachProgram p;
    add_chainy_edges(*p.edges, n);
    p.graph.commit();
    benchmark::DoNotOptimize(p.reachable->current().size());
  }
}
BENCHMARK(BM_RecursiveFromScratch)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
