// The rcfgd scale-out load harness (successor to bench_service): three
// phases, each with inline correctness assertions, all results appended to
// BENCH_service.json.
//
//   A. Replica speedup — N sessions under continuous propose pressure
//      (each session's primary re-verifies in a closed self-loop), with
//      closed-loop query clients. Run once without replicas (queries queue
//      on the session FIFO behind verifications — head-of-line blocking)
//      and once with 4 read replicas + a dedicated read-worker pool
//      (queries never wait for a propose). Same total thread budget both
//      runs. Asserts the query-throughput ratio meets RCFG_LOAD_FLOOR and
//      that replica answers are byte-identical to the primary's.
//
//   B. Scale-out — RCFG_LOAD_SESSIONS sessions (default 10k) sharded over
//      a 4-engine pool with admission control, then a mixed query/propose
//      window with query latency percentiles (p50/p95/p99). Asserts the
//      10k+1'th open is denied and that a full queue with reject_on_full
//      answers an explicit backpressure error.
//
//   C. Framing parse throughput — the same request stream decoded from
//      JSON-lines and from binary frames, requests/s and MB/s each way.
//
// Knobs (environment variables):
//   RCFG_LOAD_SESSIONS    phase-B session count        (default 10000)
//   RCFG_LOAD_RSESSIONS   phase-A session count        (default 64)
//   RCFG_LOAD_WINDOW_MS   measured window per phase    (default 3000)
//   RCFG_LOAD_FLOOR       phase-A speedup floor        (default 5)
//   RCFG_LOAD_QTHREADS    closed-loop query clients    (default 8)
//   RCFG_LOAD_FRAMES      phase-C request count        (default 20000)

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "config/print.h"
#include "service/engine.h"
#include "service/framing.h"
#include "service/pool.h"
#include "topo/generators.h"

using namespace rcfg;
using service::Request;
using service::Response;
using service::Verb;

namespace {

std::atomic<std::uint64_t> g_id{1000};

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "bench_load: FAILED: %s\n", message.c_str());
  std::exit(1);
}

Request open_request(const std::string& session, const std::string& kind, unsigned k,
                     const std::string& config_text, unsigned replicas = 0,
                     bool trace = false) {
  Request req;
  req.id = g_id.fetch_add(1);
  req.verb = Verb::kOpen;
  req.session = session;
  req.topology.kind = kind;
  req.topology.k = k;
  req.config_text = config_text;
  req.options.replicas = replicas;
  req.options.trace = trace;
  return req;
}

Request query_request(const std::string& session, bool primary = false) {
  Request req;
  req.id = g_id.fetch_add(1);
  req.verb = Verb::kQuery;
  req.session = session;
  req.force_primary = primary;
  return req;
}

/// A session's self-sustaining propose loop: each response resubmits the
/// next variant, so every session keeps exactly one verification in flight
/// without tying up a client thread.
struct WriterLoop {
  service::Engine* engine = nullptr;
  std::string session;
  const std::vector<std::string>* variants = nullptr;
  std::atomic<bool>* stop = nullptr;
  std::atomic<std::uint64_t>* proposes = nullptr;
  std::size_t next = 0;

  void pump() {
    if (stop->load(std::memory_order_relaxed)) return;
    Request req;
    req.id = g_id.fetch_add(1);
    req.verb = Verb::kPropose;
    req.session = session;
    req.config_text = (*variants)[next++ % variants->size()];
    engine->submit(std::move(req), [this](Response r) {
      if (r.ok) proposes->fetch_add(1, std::memory_order_relaxed);
      pump();
    });
  }
};

struct PhaseAResult {
  double qps = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t queries = 0;
  std::uint64_t proposes = 0;
  std::uint64_t replica_queries = 0;
  double wall_ms = 0;
};

PhaseAResult run_phase_a(unsigned sessions, unsigned replicas, unsigned window_ms,
                         unsigned qthreads, const std::string& base_text,
                         const std::vector<std::string>& variants) {
  service::EngineOptions opts;
  // Same total thread budget with and without replicas, so the ratio
  // measures routing (reads never queue behind verifications), not extra
  // hardware: 6 write workers, or 2 write + 4 read workers.
  opts.workers = replicas > 0 ? 2 : 6;
  opts.read_workers = replicas > 0 ? 4 : 1;
  service::Engine engine(opts);

  std::vector<std::string> names;
  names.reserve(sessions);
  for (unsigned s = 0; s < sessions; ++s) {
    names.push_back("load" + std::to_string(s));
    const Response r =
        engine.call(open_request(names.back(), "ring", 6, base_text, replicas, true));
    if (!r.ok) fail("phase A open: " + r.error);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> proposes{0};
  std::vector<std::unique_ptr<WriterLoop>> writers;
  writers.reserve(sessions);
  for (const std::string& name : names) {
    auto w = std::make_unique<WriterLoop>();
    w->engine = &engine;
    w->session = name;
    w->variants = &variants;
    w->stop = &stop;
    w->proposes = &proposes;
    writers.push_back(std::move(w));
  }
  for (auto& w : writers) w->pump();

  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::vector<double>> lat(qthreads);
  std::vector<std::thread> clients;
  clients.reserve(qthreads);
  const bench::Timer timer;
  for (unsigned q = 0; q < qthreads; ++q) {
    clients.emplace_back([&, q] {
      std::size_t rr = q;  // stagger the round-robin start per client
      while (!stop.load(std::memory_order_relaxed)) {
        const bench::Timer one;
        const Response r = engine.call(query_request(names[rr++ % names.size()]));
        lat[q].push_back(one.ms());
        queries.fetch_add(1, std::memory_order_relaxed);
        if (!r.ok) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  const double wall_ms = timer.ms();
  engine.drain();
  if (errors.load() != 0) fail("phase A: " + std::to_string(errors.load()) + " query errors");

  // Inline parity: every session's replica-served answer must serialize to
  // the same bytes as its primary's, for query and for explain. The paired
  // requests share an id so the comparison covers the whole response.
  for (const std::string& name : names) {
    Request replica_q = query_request(name, /*primary=*/false);
    Request primary_q = replica_q;
    primary_q.force_primary = true;
    if (service::serialize_response(engine.call(replica_q)) !=
        service::serialize_response(engine.call(primary_q))) {
      fail("replica/primary query mismatch on " + name);
    }
    Request replica_e;
    replica_e.id = g_id.fetch_add(1);
    replica_e.verb = Verb::kExplain;
    replica_e.session = name;
    Request primary_e = replica_e;
    primary_e.force_primary = true;
    if (service::serialize_response(engine.call(replica_e)) !=
        service::serialize_response(engine.call(primary_e))) {
      fail("replica/primary explain mismatch on " + name);
    }
  }
  if (replicas > 0 && engine.metrics().replica_lane_failures.value() != 0) {
    fail("phase A: replica lane failures");
  }

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  PhaseAResult out;
  out.wall_ms = wall_ms;
  out.queries = queries.load();
  out.proposes = proposes.load();
  out.replica_queries = engine.metrics().replica_queries.value();
  out.qps = wall_ms > 0 ? 1000.0 * static_cast<double>(out.queries) / wall_ms : 0;
  out.p50 = bench::percentile(all, 50);
  out.p95 = bench::percentile(all, 95);
  out.p99 = bench::percentile(all, 99);
  return out;
}

service::json::Value phase_a_json(const PhaseAResult& r) {
  service::json::Value v;
  v["qps"] = service::json::Value(r.qps);
  v["p50_ms"] = service::json::Value(r.p50);
  v["p95_ms"] = service::json::Value(r.p95);
  v["p99_ms"] = service::json::Value(r.p99);
  v["queries"] = service::json::Value(r.queries);
  v["proposes"] = service::json::Value(r.proposes);
  v["replica_queries"] = service::json::Value(r.replica_queries);
  v["wall_ms"] = service::json::Value(r.wall_ms);
  return v;
}

// ---------------------------------------------------------------------------

struct PhaseBResult {
  unsigned sessions = 0;
  double open_total_ms = 0;
  double open_p50 = 0, open_p95 = 0, open_p99 = 0;
  double qps = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t queries = 0;
  std::uint64_t proposes = 0;
};

PhaseBResult run_phase_b(unsigned sessions, unsigned window_ms, unsigned qthreads,
                         const std::string& base_text,
                         const std::vector<std::string>& variants) {
  service::PoolOptions popts;
  popts.engines = 4;
  popts.engine.workers = 2;
  popts.engine.read_workers = 1;
  popts.max_sessions = sessions;
  service::EnginePool pool(popts);

  PhaseBResult out;
  out.sessions = sessions;
  std::vector<std::string> names;
  names.reserve(sessions);
  std::vector<double> open_lat;
  open_lat.reserve(sessions);
  const bench::Timer open_timer;
  for (unsigned s = 0; s < sessions; ++s) {
    names.push_back("s" + std::to_string(s));
    const bench::Timer one;
    const Response r = pool.call(open_request(names.back(), "ring", 4, base_text));
    open_lat.push_back(one.ms());
    if (!r.ok) fail("phase B open " + names.back() + ": " + r.error);
  }
  out.open_total_ms = open_timer.ms();
  out.open_p50 = bench::percentile(open_lat, 50);
  out.open_p95 = bench::percentile(open_lat, 95);
  out.open_p99 = bench::percentile(open_lat, 99);

  // Admission control: the (N+1)'th session must be denied, explicitly.
  const Response denied = pool.call(open_request("overflow", "ring", 4, base_text));
  if (denied.ok || denied.error.find("admission denied") == std::string::npos) {
    fail("phase B: open beyond max_sessions was not denied (" + denied.error + ")");
  }
  if (pool.session_count() != sessions) fail("phase B: session count drifted");

  // Mixed traffic: closed-loop query clients over all sessions plus two
  // closed-loop propose/commit writers striding across them.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0}, proposes{0}, errors{0};
  std::vector<std::vector<double>> lat(qthreads);
  std::vector<std::thread> clients;
  const bench::Timer timer;
  for (unsigned q = 0; q < qthreads; ++q) {
    clients.emplace_back([&, q] {
      std::size_t rr = q * 7919;  // co-prime stride start per client
      while (!stop.load(std::memory_order_relaxed)) {
        const bench::Timer one;
        const Response r = pool.call(query_request(names[rr++ % names.size()]));
        lat[q].push_back(one.ms());
        queries.fetch_add(1, std::memory_order_relaxed);
        if (!r.ok) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (unsigned w = 0; w < 2; ++w) {
    clients.emplace_back([&, w] {
      std::size_t rr = w * 104729;
      std::size_t variant = w;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& name = names[rr++ % names.size()];
        Request req;
        req.id = g_id.fetch_add(1);
        req.verb = Verb::kPropose;
        req.session = name;
        req.config_text = variants[variant++ % variants.size()];
        if (pool.call(std::move(req)).ok) {
          proposes.fetch_add(1, std::memory_order_relaxed);
          Request commit;
          commit.id = g_id.fetch_add(1);
          commit.verb = Verb::kCommit;
          commit.session = name;
          pool.call(std::move(commit));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  const double wall_ms = timer.ms();
  pool.drain();
  if (errors.load() != 0) fail("phase B: " + std::to_string(errors.load()) + " query errors");

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  out.queries = queries.load();
  out.proposes = proposes.load();
  out.qps = wall_ms > 0 ? 1000.0 * static_cast<double>(out.queries) / wall_ms : 0;
  out.p50 = bench::percentile(all, 50);
  out.p95 = bench::percentile(all, 95);
  out.p99 = bench::percentile(all, 99);
  return out;
}

/// Backpressure probe: with reject_on_full and a capacity-1 queue, a
/// saturated session answers an explicit error instead of blocking.
void check_backpressure(const std::string& base_text) {
  service::EngineOptions opts;
  opts.queue_capacity = 1;
  opts.reject_on_full = true;
  service::Engine engine(opts);
  engine.pause();
  std::atomic<bool> opened{false};
  engine.submit(open_request("bp", "ring", 4, base_text),
                [&opened](Response r) { opened.store(r.ok); });
  Response rejected;
  engine.submit(query_request("bp"), [&rejected](Response r) { rejected = std::move(r); });
  if (rejected.ok || rejected.error.find("backpressure") == std::string::npos) {
    fail("backpressure probe: expected an explicit rejection, got '" + rejected.error + "'");
  }
  engine.resume();
  engine.drain();
  if (!opened.load()) fail("backpressure probe: open failed");
}

// ---------------------------------------------------------------------------

struct FramingResult {
  double jsonl_req_per_s = 0, jsonl_mb_per_s = 0;
  double binary_req_per_s = 0, binary_mb_per_s = 0;
  std::uint64_t requests = 0;
  std::uint64_t jsonl_bytes = 0, binary_bytes = 0;
};

FramingResult run_phase_c(unsigned count, const std::string& config_text) {
  std::vector<service::json::Value> docs;
  docs.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    service::json::Value doc;
    doc["id"] = service::json::Value(std::uint64_t{i + 1});
    doc["session"] = service::json::Value("net" + std::to_string(i % 97));
    switch (i % 10) {
      case 0:
      case 1: {
        doc["op"] = service::json::Value("propose");
        doc["config"] = service::json::Value(config_text);
        break;
      }
      case 2:
        doc["op"] = service::json::Value("commit");
        break;
      default:
        doc["op"] = service::json::Value("query");
        break;
    }
    docs.push_back(std::move(doc));
  }

  std::string jsonl;
  std::ostringstream frames;
  service::write_magic(frames);
  for (const auto& doc : docs) {
    jsonl += doc.dump();
    jsonl += '\n';
    std::string payload;
    service::encode_value(doc, payload);
    service::write_frame(frames, payload);
  }
  const std::string binary = frames.str();

  FramingResult out;
  out.requests = count;
  out.jsonl_bytes = jsonl.size();
  out.binary_bytes = binary.size();

  std::uint64_t parsed = 0;
  {
    const bench::Timer timer;
    std::istringstream in(jsonl);
    std::string line;
    while (std::getline(in, line)) {
      const Request req = service::parse_request(line);
      parsed += req.id != 0 ? 1 : 0;
    }
    const double ms = timer.ms();
    out.jsonl_req_per_s = ms > 0 ? 1000.0 * static_cast<double>(parsed) / ms : 0;
    out.jsonl_mb_per_s =
        ms > 0 ? static_cast<double>(jsonl.size()) / 1048576.0 * 1000.0 / ms : 0;
  }
  if (parsed != count) fail("phase C: jsonl parsed " + std::to_string(parsed));

  parsed = 0;
  {
    const bench::Timer timer;
    std::istringstream in(binary);
    service::read_magic(in);
    std::string payload;
    while (service::read_frame(in, payload)) {
      const Request req = service::parse_request_doc(service::decode_value(payload));
      parsed += req.id != 0 ? 1 : 0;
    }
    const double ms = timer.ms();
    out.binary_req_per_s = ms > 0 ? 1000.0 * static_cast<double>(parsed) / ms : 0;
    out.binary_mb_per_s =
        ms > 0 ? static_cast<double>(binary.size()) / 1048576.0 * 1000.0 / ms : 0;
  }
  if (parsed != count) fail("phase C: binary parsed " + std::to_string(parsed));
  return out;
}

}  // namespace

int main() {
  const unsigned sessions = bench::env_unsigned("RCFG_LOAD_SESSIONS", 10000);
  const unsigned rsessions = bench::env_unsigned("RCFG_LOAD_RSESSIONS", 64);
  const unsigned window_ms = bench::env_unsigned("RCFG_LOAD_WINDOW_MS", 3000);
  const unsigned floor = bench::env_unsigned("RCFG_LOAD_FLOOR", 5);
  const unsigned qthreads = bench::env_unsigned("RCFG_LOAD_QTHREADS", 8);
  const unsigned frames = bench::env_unsigned("RCFG_LOAD_FRAMES", 20000);

  // Phase A fixtures: ring-6 sessions with every single-link-failure
  // variant as the propose stream.
  const topo::Topology ring6 = topo::make_ring(6);
  const config::NetworkConfig base6 = config::build_ospf_network(ring6);
  const std::string base6_text = config::print_network(base6);
  std::vector<std::string> variants6;
  for (topo::LinkId l = 0; l < ring6.link_count(); ++l) {
    config::NetworkConfig cfg = base6;
    config::fail_link(cfg, ring6, static_cast<unsigned>(l));
    variants6.push_back(config::print_network(cfg));
  }
  // Phase B fixtures: the smallest sane network — 10k of them.
  const topo::Topology ring4 = topo::make_ring(4);
  const config::NetworkConfig base4 = config::build_ospf_network(ring4);
  const std::string base4_text = config::print_network(base4);
  std::vector<std::string> variants4;
  for (topo::LinkId l = 0; l < ring4.link_count(); ++l) {
    config::NetworkConfig cfg = base4;
    config::fail_link(cfg, ring4, static_cast<unsigned>(l));
    variants4.push_back(config::print_network(cfg));
  }

  std::printf("phase A: %u sessions, %u ms window, %u query clients\n", rsessions, window_ms,
              qthreads);
  const PhaseAResult baseline =
      run_phase_a(rsessions, /*replicas=*/0, window_ms, qthreads, base6_text, variants6);
  std::printf("  baseline  : %8.0f q/s  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  (%llu proposes)\n",
              baseline.qps, baseline.p50, baseline.p95, baseline.p99,
              static_cast<unsigned long long>(baseline.proposes));
  const PhaseAResult replicated =
      run_phase_a(rsessions, /*replicas=*/4, window_ms, qthreads, base6_text, variants6);
  std::printf("  4 replicas: %8.0f q/s  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  (%llu proposes)\n",
              replicated.qps, replicated.p50, replicated.p95, replicated.p99,
              static_cast<unsigned long long>(replicated.proposes));
  const double speedup = baseline.qps > 0 ? replicated.qps / baseline.qps : 0;
  std::printf("  speedup   : %.2fx (floor %ux)\n", speedup, floor);
  if (speedup < static_cast<double>(floor)) {
    fail("replica query speedup " + std::to_string(speedup) + "x below the " +
         std::to_string(floor) + "x floor");
  }

  std::printf("phase B: %u sessions over a 4-engine pool\n", sessions);
  const PhaseBResult scale =
      run_phase_b(sessions, window_ms, qthreads > 2 ? qthreads - 2 : qthreads, base4_text,
                  variants4);
  std::printf("  opens     : %u in %.0f ms  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
              scale.sessions, scale.open_total_ms, scale.open_p50, scale.open_p95,
              scale.open_p99);
  std::printf("  queries   : %8.0f q/s  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  (%llu proposes)\n",
              scale.qps, scale.p50, scale.p95, scale.p99,
              static_cast<unsigned long long>(scale.proposes));
  check_backpressure(base4_text);
  std::printf("  admission + backpressure checks passed\n");

  std::printf("phase C: %u requests per framing\n", frames);
  const FramingResult framing = run_phase_c(frames, base4_text);
  std::printf("  jsonl     : %9.0f req/s  %7.1f MB/s  (%llu bytes)\n", framing.jsonl_req_per_s,
              framing.jsonl_mb_per_s, static_cast<unsigned long long>(framing.jsonl_bytes));
  std::printf("  binary    : %9.0f req/s  %7.1f MB/s  (%llu bytes)\n",
              framing.binary_req_per_s, framing.binary_mb_per_s,
              static_cast<unsigned long long>(framing.binary_bytes));

  service::json::Value doc;
  doc["bench"] = service::json::Value("load");
  doc["window_ms"] = service::json::Value(window_ms);
  service::json::Value replica;
  replica["sessions"] = service::json::Value(rsessions);
  replica["query_clients"] = service::json::Value(qthreads);
  replica["baseline"] = phase_a_json(baseline);
  replica["replicas4"] = phase_a_json(replicated);
  replica["speedup"] = service::json::Value(speedup);
  replica["floor"] = service::json::Value(floor);
  replica["parity_sessions_checked"] = service::json::Value(rsessions);
  doc["replica_speedup"] = std::move(replica);
  service::json::Value scale_out;
  scale_out["sessions"] = service::json::Value(scale.sessions);
  scale_out["engines"] = service::json::Value(4);
  scale_out["open_total_ms"] = service::json::Value(scale.open_total_ms);
  scale_out["open_p50_ms"] = service::json::Value(scale.open_p50);
  scale_out["open_p95_ms"] = service::json::Value(scale.open_p95);
  scale_out["open_p99_ms"] = service::json::Value(scale.open_p99);
  scale_out["qps"] = service::json::Value(scale.qps);
  scale_out["p50_ms"] = service::json::Value(scale.p50);
  scale_out["p95_ms"] = service::json::Value(scale.p95);
  scale_out["p99_ms"] = service::json::Value(scale.p99);
  scale_out["queries"] = service::json::Value(scale.queries);
  scale_out["proposes"] = service::json::Value(scale.proposes);
  scale_out["admission_denial_verified"] = service::json::Value(true);
  scale_out["backpressure_verified"] = service::json::Value(true);
  doc["scale_out"] = std::move(scale_out);
  service::json::Value framing_json;
  framing_json["requests"] = service::json::Value(framing.requests);
  framing_json["jsonl_req_per_s"] = service::json::Value(framing.jsonl_req_per_s);
  framing_json["jsonl_mb_per_s"] = service::json::Value(framing.jsonl_mb_per_s);
  framing_json["jsonl_bytes"] = service::json::Value(framing.jsonl_bytes);
  framing_json["binary_req_per_s"] = service::json::Value(framing.binary_req_per_s);
  framing_json["binary_mb_per_s"] = service::json::Value(framing.binary_mb_per_s);
  framing_json["binary_bytes"] = service::json::Value(framing.binary_bytes);
  doc["framing"] = std::move(framing_json);

  std::ofstream("BENCH_service.json") << doc.dump() << "\n";
  std::printf("\nwrote BENCH_service.json\n");
  return 0;
}
