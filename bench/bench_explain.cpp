// Cost of provenance: the same propose workload with tracing off vs on
// (pay-as-you-go check — the traced column buys batch records and changed-
// device capture, the untraced column must not pay for them), plus the
// latency of the explain query itself (witness pick + hop-by-hop replay +
// cause walk over the provenance log).
//
// Knobs (environment variables):
//   RCFG_EXPLAIN_RING      ring size (default 8)
//   RCFG_EXPLAIN_PROPOSES  proposes per column (default 24)
//   RCFG_EXPLAIN_QUERIES   explain calls timed (default 50)
//
// Emits BENCH_explain.json in the working directory.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "config/print.h"
#include "service/engine.h"
#include "topo/generators.h"

using namespace rcfg;

namespace {

struct Column {
  bool trace = false;
  bench::Stats propose_ms;
};

Column run_proposes(bool trace, unsigned proposes, const std::string& base_text,
                    const std::vector<std::string>& variants) {
  service::Engine engine;
  service::Request open;
  open.id = 1;
  open.verb = service::Verb::kOpen;
  open.session = "net";
  open.topology.kind = "ring";
  open.topology.k = static_cast<unsigned>(variants.size());
  open.config_text = base_text;
  open.options.trace = trace;
  if (!engine.call(std::move(open)).ok) std::exit(1);

  Column col;
  col.trace = trace;
  for (unsigned i = 0; i < proposes; ++i) {
    service::Request req;
    req.id = i + 2;
    req.verb = service::Verb::kPropose;
    req.session = "net";
    req.config_text = variants[i % variants.size()];
    const bench::Timer t;
    const service::Response r = engine.call(std::move(req));
    if (!r.ok) std::exit(1);
    col.propose_ms.add(t.ms());
  }
  return col;
}

}  // namespace

int main() {
  const unsigned n = bench::env_unsigned("RCFG_EXPLAIN_RING", 8);
  const unsigned proposes = bench::env_unsigned("RCFG_EXPLAIN_PROPOSES", 24);
  const unsigned queries = bench::env_unsigned("RCFG_EXPLAIN_QUERIES", 50);

  const topo::Topology topo = topo::make_ring(n);
  config::NetworkConfig base = config::build_ospf_network(topo);
  config::set_ospf_cost(base, "r0", "to-r" + std::to_string(n - 1), 10);
  const std::string base_text = config::print_network(base);

  // One variant per ring link: fail it, keep everything else.
  std::vector<std::string> variants;
  for (unsigned l = 0; l < n; ++l) {
    config::NetworkConfig v = base;
    config::fail_link(v, topo, l);
    variants.push_back(config::print_network(v));
  }

  std::printf("ring %u, %u proposes per column, %u explain queries\n\n", n, proposes, queries);

  const Column off = run_proposes(false, proposes, base_text, variants);
  const Column on = run_proposes(true, proposes, base_text, variants);
  const double overhead =
      off.propose_ms.mean() == 0 ? 0 : (on.propose_ms.mean() / off.propose_ms.mean() - 1) * 100;
  std::printf("propose, trace off: mean %.3f ms (min %.3f, max %.3f)\n", off.propose_ms.mean(),
              off.propose_ms.min, off.propose_ms.max);
  std::printf("propose, trace on:  mean %.3f ms (min %.3f, max %.3f)  overhead %+.1f%%\n",
              on.propose_ms.mean(), on.propose_ms.min, on.propose_ms.max, overhead);

  // Explain latency: traced session, violated waypoint, repeated queries.
  service::Engine engine;
  service::Request open;
  open.id = 1;
  open.verb = service::Verb::kOpen;
  open.session = "net";
  open.topology.kind = "ring";
  open.topology.k = n;
  open.config_text = base_text;
  open.options.trace = true;
  if (!engine.call(std::move(open)).ok) std::exit(1);
  service::Request addp;
  addp.id = 2;
  addp.verb = service::Verb::kAddPolicy;
  addp.session = "net";
  addp.policy.kind = service::PolicySpec::Kind::kWaypoint;
  addp.policy.name = "via-r1";
  addp.policy.src = "r0";
  addp.policy.dst = "r2";
  addp.policy.via = "r1";
  addp.policy.prefix = config::host_prefix(2);
  if (!engine.call(std::move(addp)).ok) std::exit(1);
  service::Request prop;
  prop.id = 3;
  prop.verb = service::Verb::kPropose;
  prop.session = "net";
  prop.config_text = variants[0];  // fail r0--r1: the waypoint breaks
  if (!engine.call(std::move(prop)).ok) std::exit(1);

  bench::Stats explain_ms;
  for (unsigned i = 0; i < queries; ++i) {
    service::Request req;
    req.id = i + 4;
    req.verb = service::Verb::kExplain;
    req.session = "net";
    const bench::Timer t;
    const service::Response r = engine.call(std::move(req));
    if (!r.ok || r.body.get_bool("satisfied", true)) std::exit(1);
    explain_ms.add(t.ms());
  }
  std::printf("explain (violated waypoint): mean %.3f ms (min %.3f, max %.3f)\n",
              explain_ms.mean(), explain_ms.min, explain_ms.max);

  service::json::Value doc;
  doc["bench"] = service::json::Value("explain");
  doc["ring"] = service::json::Value(n);
  doc["proposes"] = service::json::Value(proposes);
  doc["propose_ms_trace_off"] = service::json::Value(off.propose_ms.mean());
  doc["propose_ms_trace_on"] = service::json::Value(on.propose_ms.mean());
  doc["trace_overhead_pct"] = service::json::Value(overhead);
  doc["explain_queries"] = service::json::Value(queries);
  doc["explain_ms_mean"] = service::json::Value(explain_ms.mean());
  doc["explain_ms_max"] = service::json::Value(explain_ms.max);
  std::ofstream("BENCH_explain.json") << doc.dump() << "\n";
  std::printf("\nwrote BENCH_explain.json\n");
  return 0;
}
