// Memory reclamation under churn: a long-lived verifier absorbing rounds of
// route announce/withdraw batches, with online reclamation (incremental EC
// merging + BDD GC after every batch) on vs. off. The table tracks the live
// working set — EC count and live BDD nodes — sampled after every withdraw
// batch, plus the reclaim step's own cost.
//
// The headline claims measured here:
//   * with reclamation the working set is flat: EC count returns to the
//     baseline every round and the BDD arena stops growing;
//   * without it both grow linearly with churn history;
//   * the reclaimed state is within 10% of (in practice: identical to) a
//     fresh rebuild of the final configuration;
//   * reports stay semantically identical across thread counts {1,2,4} and
//     across the reclaim on/off settings at the pair level.
//
// Knobs (environment variables):
//   RCFG_FATTREE_K      fat-tree k (default 8)
//   RCFG_MEMORY_ROUNDS  announce/withdraw rounds (default 40)
//   RCFG_MEMORY_ROUTES  routes per announce batch (default 16)
//
// Emits BENCH_memory.json in the working directory.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "service/json.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

net::Ipv4Prefix churn_prefix(unsigned round, unsigned i) {
  const unsigned slot = round * 16 + i;
  return net::Ipv4Prefix{
      net::Ipv4Addr{static_cast<std::uint8_t>(192 + slot / 65536),
                    static_cast<std::uint8_t>((slot / 256) % 256),
                    static_cast<std::uint8_t>(slot % 256), 0},
      24};
}

struct Lane {
  std::vector<std::size_t> pair_counts;  ///< one per apply, in order
  std::size_t final_ecs = 0;
  std::size_t final_bdd = 0;
  std::size_t peak_ecs = 0;
  std::size_t peak_bdd = 0;
  std::uint64_t reclaims = 0;
  std::size_t merged_ecs = 0;
  bench::Stats reclaim_ms;
  double apply_sum_ms = 0;
};

Lane run(bool reclaim, unsigned threads, const topo::Topology& topo,
         const std::vector<config::NetworkConfig>& sequence) {
  verify::RealConfigOptions opts;
  opts.threads = threads;
  opts.reclamation.enabled = reclaim;
  verify::RealConfig rc(topo, opts);

  Lane lane;
  for (const config::NetworkConfig& cfg : sequence) {
    const verify::RealConfig::Report report = rc.apply(cfg);
    lane.pair_counts.push_back(rc.checker().reachable_pairs().size());
    lane.apply_sum_ms += report.total_ms();
    lane.peak_ecs = std::max(lane.peak_ecs, report.ec_count);
    lane.peak_bdd = std::max(lane.peak_bdd, report.bdd_nodes);
    if (report.reclaim.ran) {
      ++lane.reclaims;
      lane.merged_ecs += report.reclaim.ecs_before - report.reclaim.ecs_after;
      lane.reclaim_ms.add(report.reclaim.reclaim_ms);
    }
  }
  lane.final_ecs = rc.ecs().ec_count();
  lane.final_bdd = rc.packet_space().bdd().node_count();
  return lane;
}

}  // namespace

int main() {
  const unsigned k = bench::fat_tree_k();
  const unsigned rounds = bench::env_unsigned("RCFG_MEMORY_ROUNDS", 40);
  const unsigned routes = bench::env_unsigned("RCFG_MEMORY_ROUTES", 16);

  const topo::Topology topo = topo::make_fat_tree(k);
  const config::NetworkConfig base = config::build_ospf_network(topo);

  // The churn script: each round announces `routes` fresh discard prefixes
  // on a rotating edge device, then withdraws them all. Every lane replays
  // the identical sequence.
  core::Rng rng(0x3E3A11ULL);
  std::vector<std::string> edges;
  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    if (topo.node(n).name.rfind("edge", 0) == 0) edges.push_back(topo.node(n).name);
  }
  std::vector<config::NetworkConfig> sequence;
  sequence.push_back(base);
  config::NetworkConfig cfg = base;
  for (unsigned round = 0; round < rounds; ++round) {
    auto& dev = cfg.devices.at(edges[rng.next_below(edges.size())]);
    for (unsigned i = 0; i < routes; ++i) {
      dev.static_routes.push_back({churn_prefix(round, i), config::kNullInterface});
    }
    sequence.push_back(cfg);
    dev.static_routes.clear();
    sequence.push_back(cfg);
  }

  std::printf("memory reclamation: fat-tree k=%u (%zu nodes), %u rounds x %u routes "
              "announce/withdraw\n\n",
              k, topo.node_count(), rounds, routes);

  // Fresh rebuild of the final configuration: the minimality yardstick.
  verify::RealConfig fresh(topo);
  fresh.apply(cfg);
  const std::size_t fresh_ecs = fresh.ecs().ec_count();
  const std::size_t fresh_pairs = fresh.checker().reachable_pairs().size();

  std::printf("| Reclaim | Threads | Final ECs | Peak ECs | Final BDD | Peak BDD | Reclaims | "
              "Merged | Reclaim mean ms |\n");
  std::printf("|---------|---------|-----------|----------|-----------|----------|----------|"
              "--------|-----------------|\n");

  service::json::Value out_rows;
  const std::vector<std::size_t>* reference_pairs = nullptr;
  std::vector<std::size_t> lane0_pairs;
  std::size_t reclaimed_final_ecs = 0;
  bool ok = true;
  for (const bool reclaim : {false, true}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      const Lane lane = run(reclaim, threads, topo, sequence);
      if (reference_pairs == nullptr) {
        lane0_pairs = lane.pair_counts;
        reference_pairs = &lane0_pairs;
      } else if (lane.pair_counts != *reference_pairs) {
        std::fprintf(stderr, "FAIL: pair counts diverge (reclaim=%d threads=%u)\n",
                     reclaim ? 1 : 0, threads);
        ok = false;
      }
      if (reclaim) reclaimed_final_ecs = lane.final_ecs;
      std::printf("| %7s | %7u | %9zu | %8zu | %9zu | %8zu | %8llu | %6zu | %15.3f |\n",
                  reclaim ? "on" : "off", threads, lane.final_ecs, lane.peak_ecs,
                  lane.final_bdd, lane.peak_bdd,
                  static_cast<unsigned long long>(lane.reclaims), lane.merged_ecs,
                  lane.reclaim_ms.mean());

      service::json::Value r;
      r["reclaim"] = service::json::Value(reclaim);
      r["threads"] = service::json::Value(threads);
      r["final_ecs"] = service::json::Value(static_cast<std::uint64_t>(lane.final_ecs));
      r["peak_ecs"] = service::json::Value(static_cast<std::uint64_t>(lane.peak_ecs));
      r["final_bdd_nodes"] = service::json::Value(static_cast<std::uint64_t>(lane.final_bdd));
      r["peak_bdd_nodes"] = service::json::Value(static_cast<std::uint64_t>(lane.peak_bdd));
      r["reclaims"] = service::json::Value(lane.reclaims);
      r["merged_ecs"] = service::json::Value(static_cast<std::uint64_t>(lane.merged_ecs));
      r["reclaim_mean_ms"] = service::json::Value(lane.reclaim_ms.mean());
      r["apply_sum_ms"] = service::json::Value(lane.apply_sum_ms);
      out_rows.push_back(std::move(r));
    }
  }

  const double ratio =
      fresh_ecs > 0 ? static_cast<double>(reclaimed_final_ecs) / static_cast<double>(fresh_ecs)
                    : 0;
  std::printf("\nfresh rebuild of final config: %zu ECs, %zu reachable pairs\n", fresh_ecs,
              fresh_pairs);
  std::printf("reclaimed lane final ECs / fresh: %.3f (acceptance: within 1.10)\n", ratio);
  if (ratio > 1.10) {
    std::fprintf(stderr, "FAIL: reclaimed EC count is >10%% above a fresh rebuild\n");
    ok = false;
  }
  if (!lane0_pairs.empty() && lane0_pairs.back() != fresh_pairs) {
    std::fprintf(stderr, "FAIL: final reachable pairs differ from fresh rebuild\n");
    ok = false;
  }
  if (ok) std::printf("pair counts identical across all lanes and the fresh rebuild\n");

  service::json::Value doc;
  doc["bench"] = service::json::Value("memory");
  doc["fat_tree_k"] = service::json::Value(k);
  doc["nodes"] = service::json::Value(static_cast<std::uint64_t>(topo.node_count()));
  doc["rounds"] = service::json::Value(rounds);
  doc["routes_per_round"] = service::json::Value(routes);
  doc["fresh_ecs"] = service::json::Value(static_cast<std::uint64_t>(fresh_ecs));
  doc["fresh_reachable_pairs"] = service::json::Value(static_cast<std::uint64_t>(fresh_pairs));
  doc["reclaimed_over_fresh_ecs"] = service::json::Value(ratio);
  doc["rows"] = std::move(out_rows);
  std::ofstream("BENCH_memory.json") << doc.dump() << "\n";
  std::printf("wrote BENCH_memory.json\n");
  return ok ? 0 : 1;
}
