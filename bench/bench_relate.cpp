// Relational verification economics: what does "how does the change behave
// differently?" cost when answered incrementally versus naively?
//
//   incremental  RelationalChecker::check — snapshot the live verifier,
//                fork a replica, apply the proposal incrementally, and
//                compare ONLY the ECs the apply touched (everything else is
//                provably identical through the fork's shared packet space);
//   naive        stand up TWO verifiers from scratch (base and proposed)
//                and compare every EC pair across the whole partition.
//
// The incremental diff is asserted bit-identical to the full pairwise walk
// before any timing is reported, so the bench doubles as the correctness
// check for the affected-set restriction. A second section measures
// update-order synthesis throughput (verified placements per second) on an
// upgrade-planning-style batch of pairwise-disjoint steps.
//
// Knobs (environment variables):
//   RCFG_FATTREE_K        fat-tree k (default 8)
//   RCFG_RELATE_POLICIES  registered reachability policies (default 16)
//   RCFG_SAMPLES          timing samples per strategy (default 5)
//
// Emits BENCH_relate.json in the working directory.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "relate/order.h"
#include "relate/relate.h"
#include "service/json.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

/// Quarantine `victim`'s host prefix at `device`: deny-then-permit ACL on
/// every transit interface.
void quarantine_at(config::NetworkConfig& cfg, const topo::Topology& t,
                   const std::string& device, net::Ipv4Prefix victim) {
  auto& dev = cfg.devices.at(device);
  config::Acl acl;
  acl.name = "QUARANTINE";
  config::AclRule deny;
  deny.seq = 10;
  deny.action = config::Action::kDeny;
  deny.dst = victim;
  acl.rules.push_back(deny);
  config::AclRule permit;
  permit.seq = 20;
  permit.action = config::Action::kPermit;
  acl.rules.push_back(permit);
  dev.acls[acl.name] = acl;
  for (auto& iface : dev.interfaces) {
    if (iface.name != "lan0") iface.acl_in = acl.name;
  }
}

}  // namespace

int main() {
  const unsigned k = bench::fat_tree_k();
  const unsigned n_policies = bench::env_unsigned("RCFG_RELATE_POLICIES", 16);
  const unsigned samples = bench::samples();

  const topo::Topology topo = topo::make_fat_tree(k);
  const config::NetworkConfig base = config::build_ospf_network(topo);

  verify::RealConfig rc(topo);
  core::Rng rng(0x9e3779b97f4a7c15ULL);
  for (unsigned p = 0; p < n_policies; ++p) {
    const topo::NodeId a = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
    topo::NodeId b = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
    if (b == a) b = (b + 1) % static_cast<topo::NodeId>(topo.node_count());
    rc.require_reachable(topo.node(a).name, topo.node(b).name, config::host_prefix(b));
  }
  rc.apply(base);

  // The proposed change: quarantine one edge switch's host prefix at every
  // core, plus an IGP cost bump — a routing change and a filter change in
  // one proposal, touching a handful of ECs out of the whole partition.
  const topo::NodeId victim_node = topo.find_node("edge1-1");
  const net::Ipv4Prefix victim = config::host_prefix(victim_node);
  config::NetworkConfig proposed = base;
  for (unsigned j = 0; j < k * k / 4; ++j) {
    quarantine_at(proposed, topo, "core" + std::to_string(j), victim);
  }
  config::set_ospf_cost(proposed, "agg0-0", "to-core0", 5);

  std::printf("relational diff: fat-tree k=%u (%zu nodes, %zu links), %u policies\n\n", k,
              topo.node_count(), topo.link_count(), n_policies);

  // --- incremental: snapshot -> fork -> apply -> affected-set diff --------
  bench::Stats inc_ms, inc_diff_ms;
  std::size_t diff_ecs = 0, ecs_compared = 0, fork_ec_count = 0;
  relate::RelationalChecker checker(rc);
  relate::RelationalResult result;
  for (unsigned s = 0; s < samples; ++s) {
    result = checker.check(
        proposed, {{relate::RelationalSpec::Kind::kOnlyDstIn, {victim}, "quarantine"}});
    inc_ms.add(result.total_ms());
    inc_diff_ms.add(result.diff_ms);
    diff_ecs = result.diff.ecs.size();
    ecs_compared = result.ecs_compared;
    fork_ec_count = checker.changed().ecs().ec_count();
  }

  // --- naive: two scratch verifiers + full pairwise EC comparison ---------
  bench::Stats naive_ms, naive_walk_ms;
  bool identical = true;
  for (unsigned s = 0; s < samples; ++s) {
    const bench::Timer t_naive;
    verify::RealConfig fresh_base(topo);
    fresh_base.apply(base);
    verify::RealConfig fresh_proposed(topo);
    fresh_proposed.apply(proposed);
    // Scratch partitions live in unrelated packet spaces, so the honest
    // naive walk runs on the checker's fork pair — same comparisons, same
    // result, and it gives us the inline equality assertion for free.
    const bench::Timer t_walk;
    const relate::RelationalDiff brute =
        relate::relational_diff_bruteforce(rc, checker.changed(), checker.base_of());
    naive_walk_ms.add(t_walk.ms());
    naive_ms.add(t_naive.ms());
    identical = identical && brute == result.diff;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: incremental diff differs from full pairwise walk\n");
    return 1;
  }

  const double ratio = inc_ms.mean() > 0 ? naive_ms.mean() / inc_ms.mean() : 0;
  std::printf("diffed %zu ECs (%zu candidates examined of %zu total)\n\n", diff_ecs,
              ecs_compared, fork_ec_count);
  std::printf("| Strategy    | Mean ms  | Diff-walk ms | ECs compared |\n");
  std::printf("|-------------|----------|--------------|--------------|\n");
  std::printf("| incremental | %8.1f | %12.2f | %12zu |\n", inc_ms.mean(),
              inc_diff_ms.mean(), ecs_compared);
  std::printf("| naive       | %8.1f | %12.2f | %12zu |\n", naive_ms.mean(),
              naive_walk_ms.mean(), fork_ec_count);
  std::printf("\nincremental diff is %.1fx cheaper; results bit-identical\n\n", ratio);

  // --- update-order synthesis throughput ----------------------------------
  // One quarantine step per pod's first edge switch — pairwise disjoint; the
  // synthesizer verifies placements until a safe total order emerges.
  std::vector<relate::UpdateStep> steps;
  for (unsigned pod = 0; pod < k; pod += 2) {
    config::NetworkConfig step_cfg = base;
    const std::string device = "edge" + std::to_string(pod) + "-0";
    quarantine_at(step_cfg, topo, device, victim);
    relate::UpdateStep step;
    step.name = "quarantine-" + device;
    step.patch.devices[device] = step_cfg.devices.at(device);
    steps.push_back(std::move(step));
  }
  relate::UpdateOrderSynthesizer synth(rc, base);
  const bench::Timer t_order;
  const relate::OrderResult order = synth.synthesize(steps);
  const double order_ms = t_order.ms();
  const double placements_per_sec =
      order.search_ms > 0 ? static_cast<double>(order.explored) / (order.search_ms / 1000.0)
                          : 0;
  std::printf("order synthesis: %zu steps, %zu placements verified, %zu restores\n",
              steps.size(), order.explored, order.restores);
  std::printf("  found=%s  search %.1f ms  (%.1f verified placements/sec)\n",
              order.found ? "yes" : "no", order.search_ms, placements_per_sec);

  service::json::Value doc;
  doc["bench"] = service::json::Value("relate");
  doc["fat_tree_k"] = service::json::Value(k);
  doc["nodes"] = service::json::Value(static_cast<std::uint64_t>(topo.node_count()));
  doc["links"] = service::json::Value(static_cast<std::uint64_t>(topo.link_count()));
  doc["policies"] = service::json::Value(n_policies);
  doc["diff_ecs"] = service::json::Value(static_cast<std::uint64_t>(diff_ecs));
  doc["ecs_compared"] = service::json::Value(static_cast<std::uint64_t>(ecs_compared));
  doc["ec_count"] = service::json::Value(static_cast<std::uint64_t>(fork_ec_count));
  doc["incremental_ms"] = service::json::Value(inc_ms.mean());
  doc["incremental_diff_walk_ms"] = service::json::Value(inc_diff_ms.mean());
  doc["naive_ms"] = service::json::Value(naive_ms.mean());
  doc["naive_walk_ms"] = service::json::Value(naive_walk_ms.mean());
  doc["speedup"] = service::json::Value(ratio);
  doc["diff_identical"] = service::json::Value(identical);
  service::json::Value order_doc;
  order_doc["steps"] = service::json::Value(static_cast<std::uint64_t>(steps.size()));
  order_doc["found"] = service::json::Value(order.found);
  order_doc["explored"] = service::json::Value(static_cast<std::uint64_t>(order.explored));
  order_doc["restores"] = service::json::Value(static_cast<std::uint64_t>(order.restores));
  order_doc["search_ms"] = service::json::Value(order.search_ms);
  order_doc["placements_per_sec"] = service::json::Value(placements_per_sec);
  doc["order"] = std::move(order_doc);
  std::ofstream("BENCH_relate.json") << doc.dump() << "\n";
  std::printf("wrote BENCH_relate.json\n");
  return 0;
}
