// §2 "Specification mining" claim reproduction: incremental data plane
// generation across single-link-failure scenarios vs from-scratch
// regeneration per scenario (the Config2Spec workload; paper reports ~20x).
//
// Scale with RCFG_FATTREE_K (default 8) and RCFG_SAMPLES (default 5
// scenarios; the full sweep would cover every link identically).

#include <cstdio>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "routing/generator.h"
#include "topo/generators.h"

using namespace rcfg;

int main() {
  const unsigned k = bench::fat_tree_k();
  const unsigned scenarios = bench::samples();
  const topo::Topology topo = topo::make_fat_tree(k);
  config::NetworkConfig cfg = config::build_ospf_network(topo);

  std::printf("Spec mining (paper §2): data plane generation per link-failure scenario\n");
  std::printf("fat tree k=%u (%zu nodes, %zu links), OSPF, %u sampled scenarios\n\n", k,
              topo.node_count(), topo.link_count(), scenarios);

  routing::GeneratorOptions opts;
  opts.max_rounds = bench::rounds();

  // Incremental: one long-lived generator, fail -> verify -> restore.
  routing::IncrementalGenerator gen(topo, opts);
  gen.apply(cfg);
  core::Rng rng{77};
  std::vector<topo::LinkId> sampled;
  for (unsigned i = 0; i < scenarios; ++i) {
    sampled.push_back(static_cast<topo::LinkId>(rng.next_below(topo.link_count())));
  }

  bench::Stats incremental;
  for (const topo::LinkId l : sampled) {
    bench::Timer t;
    config::fail_link(cfg, topo, l);
    gen.apply(cfg);
    config::restore_link(cfg, topo, l);
    gen.apply(cfg);
    incremental.add(t.ms());
  }

  // From scratch: a fresh generator per scenario.
  bench::Stats scratch;
  for (const topo::LinkId l : sampled) {
    bench::Timer t;
    config::fail_link(cfg, topo, l);
    routing::IncrementalGenerator fresh(topo, opts);
    fresh.apply(cfg);
    config::restore_link(cfg, topo, l);
    scratch.add(t.ms());
  }

  std::printf("| approach     | per-scenario mean | min        | max        |\n");
  std::printf("|--------------|-------------------|------------|------------|\n");
  std::printf("| incremental  | %12.1f ms   | %7.1f ms | %7.1f ms |\n", incremental.mean(),
              incremental.min, incremental.max);
  std::printf("| from scratch | %12.1f ms   | %7.1f ms | %7.1f ms |\n", scratch.mean(),
              scratch.min, scratch.max);
  std::printf("\nspeedup: %.1fx (paper reports ~20x for this workload)\n",
              scratch.mean() / incremental.mean());
  std::printf("full sweep extrapolation over all %zu links: incremental %.1f s vs "
              "from-scratch %.1f s\n",
              topo.link_count(), incremental.mean() * topo.link_count() / 1000.0,
              scratch.mean() * topo.link_count() / 1000.0);
  return 0;
}
