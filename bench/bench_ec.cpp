// Micro-benchmarks for the data plane model substrate: BDD operations,
// atomic-predicate (EC) maintenance cost as predicates accumulate, and the
// per-rule model update — the T1 mechanism behind Table 3.

#include <benchmark/benchmark.h>

#include "config/builders.h"
#include "core/rng.h"
#include "dpm/ec.h"
#include "dpm/model.h"

using namespace rcfg;

namespace {

net::Ipv4Prefix random_prefix(core::Rng& rng, int lo, int hi) {
  const auto len = static_cast<std::uint8_t>(rng.next_in(lo, hi));
  return net::Ipv4Prefix{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len};
}

/// Benchmarks taking a backend argument run head-to-head: arg 0 is the BDD
/// backend, arg 1 the interval-atom backend (bench_backend records the
/// aggregate churn ratio in BENCH_backend.json).
dpm::BackendKind backend_of(std::int64_t arg) {
  return arg == 0 ? dpm::BackendKind::kBdd : dpm::BackendKind::kInterval;
}

void BM_PrefixEncode(benchmark::State& state) {
  dpm::PacketSpace space(backend_of(state.range(0)));
  core::Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.dst_prefix(random_prefix(rng, 8, 32)));
  }
}
BENCHMARK(BM_PrefixEncode)->ArgNames({"backend"})->Arg(0)->Arg(1);

void BM_BddAndOr(benchmark::State& state) {
  dpm::PacketSpace space;
  core::Rng rng{2};
  std::vector<dpm::BddRef> pool;
  for (int i = 0; i < 256; ++i) pool.push_back(space.dst_prefix(random_prefix(rng, 6, 20)));
  std::size_t i = 0;
  for (auto _ : state) {
    const dpm::BddRef a = pool[i % pool.size()];
    const dpm::BddRef b = pool[(i * 7 + 3) % pool.size()];
    benchmark::DoNotOptimize(space.bdd().bdd_or(space.bdd().bdd_and(a, b), a));
    ++i;
  }
}
BENCHMARK(BM_BddAndOr);

/// Registering the Nth predicate: atoms scale with distinct prefixes, so
/// the scan cost grows — the reason APKeep keeps the EC set minimal.
void BM_EcRegisterNthPredicate(benchmark::State& state) {
  const int existing = static_cast<int>(state.range(0));
  dpm::PacketSpace space(backend_of(state.range(1)));
  dpm::EcManager ecs(space);
  core::Rng rng{3};
  for (int i = 0; i < existing; ++i) {
    ecs.register_predicate(space.dst_prefix(config::host_prefix(static_cast<topo::NodeId>(i))));
  }
  for (auto _ : state) {
    state.PauseTiming();
    const dpm::BddRef p = space.dst_prefix(random_prefix(rng, 10, 28));
    state.ResumeTiming();
    benchmark::DoNotOptimize(ecs.register_predicate(p));
  }
  state.counters["atoms"] = static_cast<double>(ecs.ec_count());
}
BENCHMARK(BM_EcRegisterNthPredicate)
    ->ArgNames({"existing", "backend"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_EcsInScan(benchmark::State& state) {
  const int atoms = static_cast<int>(state.range(0));
  dpm::PacketSpace space(backend_of(state.range(1)));
  dpm::EcManager ecs(space);
  for (int i = 0; i < atoms; ++i) {
    ecs.register_predicate(space.dst_prefix(config::host_prefix(static_cast<topo::NodeId>(i))));
  }
  const dpm::BddRef probe = space.dst_prefix(config::host_prefix(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecs.ecs_in(probe));
  }
  state.SetItemsProcessed(state.iterations() * ecs.ec_count());
}
BENCHMARK(BM_EcsInScan)
    ->ArgNames({"atoms", "backend"})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

void BM_AclPermitSetCompile(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  dpm::PacketSpace space;
  core::Rng rng{4};
  std::vector<routing::FilterRule> acl;
  for (int i = 0; i < rules; ++i) {
    routing::FilterRule r;
    r.priority = static_cast<std::uint32_t>(i);
    r.permit = rng.next_bool(0.7);
    r.dst = random_prefix(rng, 12, 24);
    if (rng.next_bool(0.5)) r.proto = static_cast<std::uint8_t>(config::IpProto::kTcp);
    if (rng.next_bool(0.3)) {
      const auto port = static_cast<std::uint16_t>(rng.next_in(1, 1024));
      r.dst_port_lo = r.dst_port_hi = port;
    }
    acl.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.acl_permit_set(acl));
  }
}
BENCHMARK(BM_AclPermitSetCompile)->Arg(10)->Arg(100);

/// One FIB rule update against a realistically sized model (the paper's
/// "update time is less than 10 ms" granularity, per single rule).
void BM_ModelSingleRuleUpdate(benchmark::State& state) {
  const unsigned devices = 64;
  const unsigned prefixes = 256;
  dpm::PacketSpace space;
  dpm::EcManager ecs(space);
  dpm::NetworkModel model(space, ecs, devices);
  routing::DataPlaneDelta init;
  for (unsigned d = 0; d < devices; ++d) {
    for (unsigned p = 0; p < prefixes; ++p) {
      routing::FibEntry e;
      e.node = d;
      e.prefix = config::host_prefix(p);
      e.action = routing::FibAction::kForward;
      e.out_ifaces = {static_cast<topo::IfaceId>(p % 4)};
      init.fib.add(e, 1);
    }
  }
  model.apply_batch(init, dpm::UpdateOrder::kInsertFirst);

  bool flip = false;
  for (auto _ : state) {
    routing::DataPlaneDelta d;
    routing::FibEntry old_rule;
    old_rule.node = 7;
    old_rule.prefix = config::host_prefix(13);
    old_rule.action = routing::FibAction::kForward;
    old_rule.out_ifaces = {flip ? 9u : 13u % 4u};
    routing::FibEntry new_rule = old_rule;
    new_rule.out_ifaces = {flip ? 13u % 4u : 9u};
    d.fib.add(old_rule, -1);
    d.fib.add(new_rule, 1);
    flip = !flip;
    benchmark::DoNotOptimize(model.apply_batch(d, dpm::UpdateOrder::kInsertFirst));
  }
}
BENCHMARK(BM_ModelSingleRuleUpdate);

}  // namespace

BENCHMARK_MAIN();
