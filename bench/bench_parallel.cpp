// Parallel-checker scaling: stage-3 latency as the checker's worker pool
// widens over a fixed workload. One RealConfig lane per thread count, all
// fed byte-identical inputs: a fat-tree OSPF network with a spread of
// registered policies, then a single batched change failing ~10% of the
// links (a maintenance-window event that touches many ECs at once — the
// shape the EC sharding is built for).
//
// The semantic fields of every lane's report are asserted equal to the
// single-threaded lane's, so this bench doubles as a determinism check.
// Speedup is only visible with real cores: on a 1-CPU container every lane
// runs at the same speed and the table shows overhead, not scaling.
//
// Knobs (environment variables):
//   RCFG_FATTREE_K          fat-tree k (default 8)
//   RCFG_PARALLEL_POLICIES  registered reachability policies (default 64)
//   RCFG_SAMPLES            timed change/restore rounds per lane (default 5)
//
// Emits BENCH_parallel.json in the working directory.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "service/json.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

struct Row {
  unsigned threads = 0;
  unsigned shards = 0;
  double check_mean_ms = 0;
  double check_min_ms = 0;
  double imbalance = 0;  ///< slowest shard / mean shard, last sample
  double speedup = 0;    ///< threads=1 mean / this mean
};

/// The semantic content of a report, flattened for equality comparison.
struct Semantics {
  std::vector<dpm::EcId> ecs;
  std::vector<std::pair<topo::NodeId, topo::NodeId>> affected, changed;
  std::vector<std::pair<verify::PolicyId, bool>> events;
  std::vector<dpm::EcId> lb, le, bb, be;

  static Semantics of(const verify::CheckResult& c) {
    Semantics s;
    s.ecs = c.affected_ecs;
    s.affected = c.affected_pairs;
    s.changed = c.changed_pairs;
    for (const verify::PolicyEvent& e : c.events) s.events.emplace_back(e.id, e.satisfied);
    s.lb = c.loops_begun;
    s.le = c.loops_ended;
    s.bb = c.blackholes_begun;
    s.be = c.blackholes_ended;
    return s;
  }
  bool operator==(const Semantics&) const = default;
};

struct Lane {
  std::vector<Semantics> reports;  ///< one per apply, in order
  double check_sum_ms = 0;
  double check_min_ms = 1e300;
  unsigned applies = 0;
  unsigned shards = 0;
  double imbalance = 0;
};

Lane run(unsigned threads, const topo::Topology& topo,
         const std::vector<config::NetworkConfig>& sequence,
         const std::vector<std::pair<std::string, std::string>>& policy_pairs) {
  verify::RealConfigOptions opts;
  opts.threads = threads;
  verify::RealConfig rc(topo, opts);
  for (const auto& [src, dst] : policy_pairs) {
    // Pair list is name-based so every lane registers identical policies.
    const topo::NodeId d = topo.find_node(dst);
    rc.require_reachable(src, dst, config::host_prefix(d));
  }

  Lane lane;
  bool first = true;
  for (const config::NetworkConfig& cfg : sequence) {
    const verify::RealConfig::Report report = rc.apply(cfg);
    lane.reports.push_back(Semantics::of(report.check));
    if (first) {
      first = false;  // from-scratch run excluded from the timing stats
      continue;
    }
    lane.check_sum_ms += report.check_ms;
    lane.check_min_ms = std::min(lane.check_min_ms, report.check_ms);
    ++lane.applies;
    lane.shards = report.check.parallel.shards;
    const std::vector<double>& ms = report.check.parallel.shard_ms;
    if (ms.size() > 1) {
      double sum = 0, slow = 0;
      for (const double m : ms) {
        sum += m;
        slow = std::max(slow, m);
      }
      const double mean = sum / static_cast<double>(ms.size());
      if (mean > 0) lane.imbalance = slow / mean;
    }
  }
  return lane;
}

}  // namespace

int main() {
  const unsigned k = bench::fat_tree_k();
  const unsigned n_policies = bench::env_unsigned("RCFG_PARALLEL_POLICIES", 64);
  const unsigned samples = bench::samples();

  const topo::Topology topo = topo::make_fat_tree(k);
  const config::NetworkConfig base = config::build_ospf_network(topo);

  // ~10% of links fail in one batch, then the repair lands in one batch;
  // `samples` rounds of that after the from-scratch apply.
  core::Rng rng(0x9e3779b97f4a7c15ULL);
  std::vector<topo::LinkId> links(topo.link_count());
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) links[l] = l;
  rng.shuffle(links);
  const std::size_t n_fail = std::max<std::size_t>(1, topo.link_count() / 10);

  std::vector<config::NetworkConfig> sequence;
  sequence.push_back(base);
  for (unsigned s = 0; s < samples; ++s) {
    config::NetworkConfig failed = base;
    for (std::size_t i = 0; i < n_fail; ++i) {
      config::fail_link(failed, topo, links[(s + i) % links.size()]);
    }
    sequence.push_back(failed);
    sequence.push_back(base);  // restore everything
  }

  std::vector<std::pair<std::string, std::string>> policy_pairs;
  for (unsigned p = 0; p < n_policies; ++p) {
    const topo::NodeId a = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
    topo::NodeId b = static_cast<topo::NodeId>(rng.next_below(topo.node_count()));
    if (b == a) b = (b + 1) % static_cast<topo::NodeId>(topo.node_count());
    policy_pairs.emplace_back(topo.node(a).name, topo.node(b).name);
  }

  std::printf("parallel checker: fat-tree k=%u (%zu nodes, %zu links), %zu links/batch, "
              "%u policies, %u rounds\n\n",
              k, topo.node_count(), topo.link_count(), n_fail, n_policies, samples);
  std::printf("| Threads | Shards | Check mean ms | Check min ms | Imbalance | Speedup |\n");
  std::printf("|---------|--------|---------------|--------------|-----------|---------|\n");

  std::vector<Row> rows;
  const Lane* reference = nullptr;
  Lane lane1;
  double base_mean = 0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const Lane lane = run(threads, topo, sequence, policy_pairs);
    if (reference == nullptr) {
      lane1 = lane;
      reference = &lane1;
      base_mean = lane.applies > 0 ? lane.check_sum_ms / lane.applies : 0;
    } else if (lane.reports != reference->reports) {
      std::fprintf(stderr, "FAIL: reports at threads=%u differ from threads=1\n", threads);
      return 1;
    }
    Row row;
    row.threads = threads;
    row.shards = lane.shards;
    row.check_mean_ms = lane.applies > 0 ? lane.check_sum_ms / lane.applies : 0;
    row.check_min_ms = lane.applies > 0 ? lane.check_min_ms : 0;
    row.imbalance = lane.imbalance;
    row.speedup = row.check_mean_ms > 0 ? base_mean / row.check_mean_ms : 0;
    std::printf("| %7u | %6u | %13.2f | %12.2f | %9.2f | %6.2fx |\n", row.threads, row.shards,
                row.check_mean_ms, row.check_min_ms, row.imbalance, row.speedup);
    rows.push_back(row);
  }
  std::printf("\nreports identical across all thread counts\n");

  service::json::Value doc;
  doc["bench"] = service::json::Value("parallel");
  doc["fat_tree_k"] = service::json::Value(k);
  doc["nodes"] = service::json::Value(static_cast<std::uint64_t>(topo.node_count()));
  doc["links"] = service::json::Value(static_cast<std::uint64_t>(topo.link_count()));
  doc["links_failed_per_batch"] = service::json::Value(static_cast<std::uint64_t>(n_fail));
  doc["policies"] = service::json::Value(n_policies);
  doc["rounds"] = service::json::Value(samples);
  service::json::Value out_rows;
  for (const Row& row : rows) {
    service::json::Value r;
    r["threads"] = service::json::Value(row.threads);
    r["shards"] = service::json::Value(row.shards);
    r["check_mean_ms"] = service::json::Value(row.check_mean_ms);
    r["check_min_ms"] = service::json::Value(row.check_min_ms);
    r["shard_imbalance"] = service::json::Value(row.imbalance);
    r["speedup"] = service::json::Value(row.speedup);
    out_rows.push_back(std::move(r));
  }
  doc["rows"] = std::move(out_rows);
  std::ofstream("BENCH_parallel.json") << doc.dump() << "\n";
  std::printf("wrote BENCH_parallel.json\n");
  return 0;
}
