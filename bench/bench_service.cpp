// Service-layer throughput: requests/sec through the rcfgd Engine as the
// worker count grows, plus the drained-batch size distribution that the
// coalescing optimisation feeds on. Each session is an independent ring
// network, so distinct sessions verify concurrently and the scaling curve
// isolates the engine's dispatch overhead from verification cost.
//
// Knobs (environment variables):
//   RCFG_SERVICE_SESSIONS   concurrent sessions / client threads (default 4)
//   RCFG_SERVICE_PROPOSES   proposes per session (default 32)
//   RCFG_SERVICE_RING       ring size per session network (default 6)
//
// Emits BENCH_service.json next to the binary's working directory.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "config/print.h"
#include "service/engine.h"
#include "topo/generators.h"

using namespace rcfg;

namespace {

struct Row {
  unsigned workers = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double wall_ms = 0;
  double req_per_s = 0;
  std::uint64_t batches = 0;
  double batch_mean = 0;
  double batch_max = 0;
  std::uint64_t coalesced = 0;
};

Row run(unsigned workers, unsigned sessions, unsigned proposes, const topo::Topology& topo,
        const std::string& base_text, const std::vector<std::string>& variant_texts) {
  service::EngineOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 64;
  service::Engine engine(opts);

  // Session setup is excluded from the timed window.
  for (unsigned s = 0; s < sessions; ++s) {
    service::Request open;
    open.id = s + 1;
    open.verb = service::Verb::kOpen;
    open.session = "net" + std::to_string(s);
    open.topology.kind = "ring";
    open.topology.k = static_cast<unsigned>(topo.node_count());
    open.config_text = base_text;
    const service::Response r = engine.call(std::move(open));
    if (!r.ok) {
      std::fprintf(stderr, "open failed: %s\n", r.error.c_str());
      std::exit(1);
    }
  }

  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> errors{0};
  const auto count = [&answered, &errors](service::Response r) {
    answered.fetch_add(1, std::memory_order_relaxed);
    if (!r.ok) errors.fetch_add(1, std::memory_order_relaxed);
  };

  std::uint64_t submitted = 0;
  const bench::Timer timer;
  {
    std::vector<std::thread> clients;
    clients.reserve(sessions);
    std::atomic<std::uint64_t> total{0};
    for (unsigned s = 0; s < sessions; ++s) {
      clients.emplace_back([&, s] {
        const std::string name = "net" + std::to_string(s);
        std::uint64_t sent = 0;
        std::uint64_t id = 1000 * (s + 1);
        for (unsigned i = 0; i < proposes; ++i) {
          service::Request req;
          req.id = ++id;
          req.verb = service::Verb::kPropose;
          req.session = name;
          req.config_text = variant_texts[i % variant_texts.size()];
          engine.submit(std::move(req), count);
          ++sent;
          if ((i + 1) % 8 == 0) {
            service::Request commit;
            commit.id = ++id;
            commit.verb = service::Verb::kCommit;
            commit.session = name;
            engine.submit(std::move(commit), count);
            ++sent;
          }
        }
        total.fetch_add(sent, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : clients) t.join();
    engine.drain();
    submitted = total.load();
  }

  Row row;
  row.workers = workers;
  row.requests = submitted;
  row.errors = errors.load();
  row.wall_ms = timer.ms();
  row.req_per_s = row.wall_ms > 0 ? 1000.0 * static_cast<double>(submitted) / row.wall_ms : 0;
  const service::ServiceMetrics& m = engine.metrics();
  row.batches = m.batches_total.value();
  row.batch_mean = m.batch_size.count() > 0
                       ? m.batch_size.sum() / static_cast<double>(m.batch_size.count())
                       : 0;
  row.batch_max = m.batch_size.max();
  row.coalesced = m.coalesced_proposes.value();
  if (answered.load() != submitted) {
    std::fprintf(stderr, "lost responses: %llu of %llu\n",
                 static_cast<unsigned long long>(answered.load()),
                 static_cast<unsigned long long>(submitted));
    std::exit(1);
  }
  return row;
}

}  // namespace

int main() {
  const unsigned sessions = bench::env_unsigned("RCFG_SERVICE_SESSIONS", 4);
  const unsigned proposes = bench::env_unsigned("RCFG_SERVICE_PROPOSES", 32);
  const unsigned ring = bench::env_unsigned("RCFG_SERVICE_RING", 6);

  const topo::Topology topo = topo::make_ring(ring);
  const config::NetworkConfig base = config::build_ospf_network(topo);
  const std::string base_text = config::print_network(base);
  std::vector<std::string> variants;
  variants.reserve(topo.link_count());
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    config::NetworkConfig cfg = base;
    config::fail_link(cfg, topo, l);
    variants.push_back(config::print_network(cfg));
  }

  std::printf("rcfgd service throughput: %u sessions x %u proposes (+ commits), ring n=%u\n\n",
              sessions, proposes, ring);
  std::printf("| Workers | Requests |  Wall ms |   Req/s | Batches | Mean batch | Max batch | Coalesced |\n");
  std::printf("|---------|----------|----------|---------|---------|------------|-----------|-----------|\n");

  std::vector<Row> rows;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    const Row row = run(workers, sessions, proposes, topo, base_text, variants);
    std::printf("| %7u | %8llu | %8.1f | %7.0f | %7llu | %10.2f | %9.0f | %9llu |\n",
                row.workers, static_cast<unsigned long long>(row.requests), row.wall_ms,
                row.req_per_s, static_cast<unsigned long long>(row.batches), row.batch_mean,
                row.batch_max, static_cast<unsigned long long>(row.coalesced));
    if (row.errors != 0) {
      std::fprintf(stderr, "%llu error responses at %u workers\n",
                   static_cast<unsigned long long>(row.errors), row.workers);
      return 1;
    }
    rows.push_back(row);
  }

  service::json::Value doc;
  doc["bench"] = service::json::Value("service");
  doc["sessions"] = service::json::Value(sessions);
  doc["proposes_per_session"] = service::json::Value(proposes);
  doc["ring"] = service::json::Value(ring);
  service::json::Value out_rows;
  for (const Row& row : rows) {
    service::json::Value r;
    r["workers"] = service::json::Value(row.workers);
    r["requests"] = service::json::Value(row.requests);
    r["wall_ms"] = service::json::Value(row.wall_ms);
    r["req_per_s"] = service::json::Value(row.req_per_s);
    r["batches"] = service::json::Value(row.batches);
    r["batch_mean"] = service::json::Value(row.batch_mean);
    r["batch_max"] = service::json::Value(row.batch_max);
    r["coalesced_proposes"] = service::json::Value(row.coalesced);
    out_rows.push_back(std::move(r));
  }
  doc["rows"] = std::move(out_rows);
  std::ofstream("BENCH_service.json") << doc.dump() << "\n";
  std::printf("\nwrote BENCH_service.json\n");
  return 0;
}
