// Packet-space backend head-to-head: the interval-atom backend vs. the BDD
// backend on a prefix-only fat-tree churn workload — the exact regime the
// interval representation targets (Delta-net-style sorted boundary arrays,
// no BDD node allocation, no cache-unfriendly hash-consing on the hot path).
//
// Two layers are measured:
//   * EC layer (the recorded ratio): a PacketSpace + EcManager stack per
//     backend replays an identical script — register every fat-tree host
//     prefix, then rounds of register/scan/unregister/compact over random
//     /16 and /24 prefixes. Both stacks must produce identical EC counts at
//     every step and identical per-EC minimal witnesses at the end; the
//     wall-time ratio bdd/interval is the headline number, measured at
//     fat-tree k=8 and k=12.
//   * verify layer (informative): the full RealConfig pipeline on static
//     null-route announce/withdraw churn at k=8, comparing the model-stage
//     time (stage 2: EC registration + model moves) between the pinned-BDD
//     and interval lanes.
//
// Acceptance: the EC-layer ratio at k=8 must be >= 3.0 (exit 1 otherwise).
//
// Knobs (environment variables):
//   RCFG_BACKEND_ROUNDS  churn rounds per k (default 12)
//   RCFG_BACKEND_ROUTES  prefixes per churn round (default 64)
//
// Emits BENCH_backend.json in the working directory.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "dpm/ec.h"
#include "service/json.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

struct EcScript {
  std::vector<net::Ipv4Prefix> base;  ///< registered up front, never removed
  struct Round {
    std::vector<net::Ipv4Prefix> churn;  ///< registered, scanned, unregistered
    net::Ipv4Prefix probe;               ///< ecs_in() scan target
  };
  std::vector<Round> rounds;
};

EcScript make_ec_script(unsigned k, unsigned rounds, unsigned routes) {
  const topo::Topology t = topo::make_fat_tree(k);
  EcScript script;
  for (topo::NodeId n = 0; n < t.node_count(); ++n) {
    script.base.push_back(config::host_prefix(n));
  }
  core::Rng rng(0xBACCBE5CULL + k);
  for (unsigned r = 0; r < rounds; ++r) {
    EcScript::Round round;
    for (unsigned i = 0; i < routes; ++i) {
      const auto len = static_cast<std::uint8_t>(rng.next_bool(0.5) ? 24 : 16);
      round.churn.push_back(
          net::Ipv4Prefix{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len});
    }
    round.probe =
        net::Ipv4Prefix{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, 16};
    script.rounds.push_back(std::move(round));
  }
  return script;
}

struct EcLane {
  double ms = 0;
  std::vector<std::size_t> ec_trace;  ///< EC count after every round phase
  std::size_t scan_hits = 0;          ///< summed ecs_in() result sizes
  std::vector<std::optional<std::vector<bool>>> witnesses;  ///< final, per EC
};

EcLane run_ec_churn(dpm::BackendKind kind, const EcScript& script) {
  dpm::PacketSpace space(kind);
  dpm::EcManager ecs(space);
  EcLane lane;
  const bench::Timer timer;
  for (const net::Ipv4Prefix& p : script.base) {
    ecs.register_predicate(space.dst_prefix(p));
  }
  lane.ec_trace.push_back(ecs.ec_count());
  for (const EcScript::Round& round : script.rounds) {
    for (const net::Ipv4Prefix& p : round.churn) {
      ecs.register_predicate(space.dst_prefix(p));
    }
    lane.ec_trace.push_back(ecs.ec_count());
    lane.scan_hits += ecs.ecs_in(space.dst_prefix(round.probe)).size();
    for (const net::Ipv4Prefix& p : round.churn) {
      ecs.unregister_predicate(space.dst_prefix(p));
    }
    ecs.compact();
    lane.ec_trace.push_back(ecs.ec_count());
  }
  lane.ms = timer.ms();
  // Outside the timed region: the per-EC witnesses both lanes must agree on.
  for (dpm::EcId e = 0; e < ecs.ec_count(); ++e) {
    lane.witnesses.push_back(space.pick_one(ecs.ec_bdd(e)));
  }
  return lane;
}

struct VerifyLane {
  double model_ms = 0;
  std::vector<std::size_t> pair_trace;
  std::size_t final_ecs = 0;
};

VerifyLane run_verify_churn(dpm::BackendKind kind, const topo::Topology& topo,
                            const std::vector<config::NetworkConfig>& sequence) {
  verify::RealConfigOptions opts;
  opts.packet_space = kind;
  verify::RealConfig rc(topo, opts);
  VerifyLane lane;
  for (const config::NetworkConfig& cfg : sequence) {
    lane.model_ms += rc.apply(cfg).model_ms;
    lane.pair_trace.push_back(rc.checker().reachable_pairs().size());
  }
  lane.final_ecs = rc.ecs().ec_count();
  return lane;
}

net::Ipv4Prefix churn_prefix(unsigned round, unsigned i) {
  const unsigned slot = round * 16 + i;
  return net::Ipv4Prefix{
      net::Ipv4Addr{static_cast<std::uint8_t>(10 + slot / 65536),
                    static_cast<std::uint8_t>((slot / 256) % 256),
                    static_cast<std::uint8_t>(slot % 256), 0},
      24};
}

}  // namespace

int main() {
  const unsigned rounds = bench::env_unsigned("RCFG_BACKEND_ROUNDS", 12);
  const unsigned routes = bench::env_unsigned("RCFG_BACKEND_ROUTES", 64);
  bool ok = true;
  service::json::Value out_rows;

  std::printf("packet-space backend head-to-head: %u rounds x %u prefixes churn\n\n",
              rounds, routes);
  std::printf("| Layer  | k  | ECs (final) | BDD ms    | Interval ms | Ratio  |\n");
  std::printf("|--------|----|-------------|-----------|-------------|--------|\n");

  double k8_ratio = 0;
  for (const unsigned k : {8u, 12u}) {
    const EcScript script = make_ec_script(k, rounds, routes);
    const EcLane bdd = run_ec_churn(dpm::BackendKind::kBdd, script);
    const EcLane interval = run_ec_churn(dpm::BackendKind::kInterval, script);

    if (bdd.ec_trace != interval.ec_trace || bdd.scan_hits != interval.scan_hits ||
        bdd.witnesses != interval.witnesses) {
      std::fprintf(stderr, "FAIL: backends diverge on the k=%u EC churn script\n", k);
      ok = false;
    }
    const double ratio = interval.ms > 0 ? bdd.ms / interval.ms : 0;
    if (k == 8) k8_ratio = ratio;
    std::printf("| ec     | %2u | %11zu | %9.2f | %11.2f | %5.1fx |\n", k,
                bdd.witnesses.size(), bdd.ms, interval.ms, ratio);

    service::json::Value r;
    r["layer"] = service::json::Value("ec");
    r["fat_tree_k"] = service::json::Value(k);
    r["final_ecs"] = service::json::Value(static_cast<std::uint64_t>(bdd.witnesses.size()));
    r["bdd_ms"] = service::json::Value(bdd.ms);
    r["interval_ms"] = service::json::Value(interval.ms);
    r["ratio"] = service::json::Value(ratio);
    out_rows.push_back(std::move(r));
  }

  // Verify-layer model stage at k=8 (informative, no threshold): the
  // backend's share of a full pipeline apply on prefix-only churn.
  {
    const unsigned k = 8;
    const topo::Topology topo = topo::make_fat_tree(k);
    const config::NetworkConfig base = config::build_ospf_network(topo);
    core::Rng rng(0xBACC0F1BULL);
    std::vector<std::string> edges;
    for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
      if (topo.node(n).name.rfind("edge", 0) == 0) edges.push_back(topo.node(n).name);
    }
    std::vector<config::NetworkConfig> sequence;
    sequence.push_back(base);
    config::NetworkConfig cfg = base;
    for (unsigned round = 0; round < rounds; ++round) {
      auto& dev = cfg.devices.at(edges[rng.next_below(edges.size())]);
      for (unsigned i = 0; i < 16; ++i) {
        dev.static_routes.push_back({churn_prefix(round, i), config::kNullInterface});
      }
      sequence.push_back(cfg);
      dev.static_routes.clear();
      sequence.push_back(cfg);
    }

    const VerifyLane bdd = run_verify_churn(dpm::BackendKind::kBdd, topo, sequence);
    const VerifyLane interval = run_verify_churn(dpm::BackendKind::kInterval, topo, sequence);
    if (bdd.pair_trace != interval.pair_trace || bdd.final_ecs != interval.final_ecs) {
      std::fprintf(stderr, "FAIL: backends diverge on the verify-layer churn\n");
      ok = false;
    }
    const double ratio = interval.model_ms > 0 ? bdd.model_ms / interval.model_ms : 0;
    std::printf("| model  | %2u | %11zu | %9.2f | %11.2f | %5.1fx |\n", k,
                bdd.final_ecs, bdd.model_ms, interval.model_ms, ratio);

    service::json::Value r;
    r["layer"] = service::json::Value("verify_model_stage");
    r["fat_tree_k"] = service::json::Value(k);
    r["final_ecs"] = service::json::Value(static_cast<std::uint64_t>(bdd.final_ecs));
    r["bdd_ms"] = service::json::Value(bdd.model_ms);
    r["interval_ms"] = service::json::Value(interval.model_ms);
    r["ratio"] = service::json::Value(ratio);
    out_rows.push_back(std::move(r));
  }

  std::printf("\nEC-layer ratio at k=8: %.1fx (acceptance: >= 3.0)\n", k8_ratio);
  if (k8_ratio < 3.0) {
    std::fprintf(stderr, "FAIL: interval backend is not >= 3x faster at k=8\n");
    ok = false;
  }
  if (ok) std::printf("backends bit-identical on every script\n");

  service::json::Value doc;
  doc["bench"] = service::json::Value("backend");
  doc["rounds"] = service::json::Value(rounds);
  doc["routes_per_round"] = service::json::Value(routes);
  doc["k8_ec_ratio"] = service::json::Value(k8_ratio);
  doc["acceptance_min_ratio"] = service::json::Value(3.0);
  doc["rows"] = std::move(out_rows);
  std::ofstream("BENCH_backend.json") << doc.dump() << "\n";
  std::printf("wrote BENCH_backend.json\n");
  return ok ? 0 : 1;
}
