// Continuous paper-scale performance tracking across the topology/workload
// matrix. One committed BENCH_scale.json per PR turns the scattered per-PR
// bench files into a single trajectory: if an incremental hot path regresses
// at paper scale, the fat-tree floors fail the build instead of hiding in a
// ratio measured at k=8.
//
// Four families run the full open -> churn -> verify -> sweep pipeline:
//   * fat_tree  — k=12 (paper scale: 180 nodes / 864 links), OSPF, the
//     paper's LC change (one interface cost 1 <-> 100) as churn. The
//     incremental-vs-scratch ratio and healthy policy verdicts carry
//     exit-code floors.
//   * torus3d   — s x s x s torus, OSPF, ACL-heavy campus churn
//     (campus_acl_churn_step): multi-field filters that force the
//     interval-atom backend through its one-time BDD migration.
//   * dragonfly — groups/routers/terminals (a=4, h=2, p=2), eBGP
//     everywhere, BGP-heavy ISP-edge churn (isp_route_churn_step:
//     local-pref rewrites + route announce/withdraw).
//   * wan       — weighted random graph, per-link metrics feeding
//     apply_link_costs, LC churn re-pricing one random link; the
//     generator's round budget comes from routing::recommended_max_rounds
//     (minimal-cost paths on weighted graphs are long in hops, so the
//     unweighted hop diameter under-provisions the stratified evaluation).
//
// Each family records wall-times (scratch apply, churn mean/max,
// failure-sweep), EC/BDD counts, and the incremental-vs-scratch ratio.
//
// Acceptance (exit 1 otherwise), all on the fat-tree entry:
//   * incremental-vs-scratch ratio >= RCFG_SCALE_FLOOR
//   * every registered policy holds on the healthy network, before and
//     after churn (LC churn must never break fat-tree reachability)
//   * the sweep accounts for every scenario it claims (accounted <= space)
//
// Knobs (environment variables, parse_count_arg-checked — junk exits 2):
//   RCFG_SCALE_K       fat-tree k (default 12, the paper scale)
//   RCFG_SCALE_TORUS   3-D torus side s (default 4 => 64 nodes)
//   RCFG_SCALE_GROUPS  dragonfly groups (default 9 => 36 routers + 72 terminals)
//   RCFG_SCALE_WAN     WAN node count (default 48; links = 2n)
//   RCFG_SCALE_CHURN   churn steps per family (default 8)
//   RCFG_SCALE_BUDGET  failure-sweep explored budget (default 12)
//   RCFG_SCALE_FLOOR   min fat-tree incremental-vs-scratch ratio (default 5)
//
// Writes BENCH_scale.json in the working directory.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "dd/graph.h"
#include "routing/metrics.h"
#include "service/json.h"
#include "topo/generators.h"
#include "verify/failures.h"
#include "verify/realconfig.h"

using namespace rcfg;

namespace {

topo::NodeId find_node(const topo::Topology& t, const std::string& name) {
  const topo::NodeId n = t.find_node(name);
  if (n == topo::kInvalidNode) {
    std::fprintf(stderr, "FAIL: no node named %s\n", name.c_str());
    std::exit(1);
  }
  return n;
}

/// One family's pipeline inputs.
struct Family {
  std::string name;
  topo::Topology topo;
  std::vector<std::uint32_t> link_cost;  ///< empty => unweighted
  config::NetworkConfig base;
  std::vector<std::pair<std::string, std::string>> policy_pairs;
  /// Mutates the configuration by one operator change.
  std::function<void(config::NetworkConfig&, const topo::Topology&, core::Rng&)> churn;
};

/// One family's recorded results.
struct FamilyResult {
  std::size_t nodes = 0, links = 0, policies = 0;
  unsigned max_rounds = 0;
  double scratch_ms = 0;
  unsigned churn_steps = 0, diverged_steps = 0;
  double churn_mean_ms = 0, churn_max_ms = 0;
  double ratio = 0;  ///< scratch_ms / churn_mean_ms
  std::size_t ec_count = 0, bdd_nodes = 0;
  std::size_t policies_holding = 0;  ///< after the churn sequence
  verify::FailureSweepResult sweep;
  double sweep_ms = 0;
  bool ok = true;
};

FamilyResult run_family(const Family& fam, unsigned churn_steps, unsigned sweep_budget,
                        std::uint64_t seed) {
  FamilyResult res;
  res.nodes = fam.topo.node_count();
  res.links = fam.topo.link_count();
  res.policies = fam.policy_pairs.size();

  verify::RealConfigOptions opts;
  opts.generator.max_rounds = routing::recommended_max_rounds(fam.topo, fam.link_cost);
  res.max_rounds = opts.generator.max_rounds;
  verify::RealConfig rc(fam.topo, opts);
  std::vector<verify::PolicyId> policies;
  for (const auto& [src, dst] : fam.policy_pairs) {
    policies.push_back(
        rc.require_reachable(src, dst, config::host_prefix(find_node(fam.topo, dst))));
  }

  // --- open: the from-scratch baseline ------------------------------------
  const bench::Timer scratch_timer;
  verify::RealConfig::Report report = rc.apply(fam.base);
  res.scratch_ms = scratch_timer.ms();
  for (const verify::PolicyId p : policies) {
    if (!rc.checker().policy_satisfied(p)) {
      std::fprintf(stderr, "FAIL: %s: policy %u does not hold on the healthy network\n",
                   fam.name.c_str(), p);
      res.ok = false;
    }
  }
  const auto healthy = rc.snapshot();

  // --- churn: incremental applies -----------------------------------------
  core::Rng rng(seed);
  config::NetworkConfig good = fam.base;
  double churn_sum = 0;
  for (unsigned step = 0; step < churn_steps; ++step) {
    config::NetworkConfig next = good;
    fam.churn(next, fam.topo, rng);
    const bench::Timer step_timer;
    try {
      report = rc.apply(next);
    } catch (const dd::NonterminationError&) {
      // An oscillating step: roll back to the last good state and keep
      // going — recorded, never fatal (mirrors the sweep's divergence
      // handling).
      ++res.diverged_steps;
      rc.restore(*healthy);
      rc.apply(good);
      continue;
    }
    const double ms = step_timer.ms();
    churn_sum += ms;
    res.churn_max_ms = std::max(res.churn_max_ms, ms);
    ++res.churn_steps;
    good = std::move(next);
  }
  res.churn_mean_ms = res.churn_steps > 0 ? churn_sum / res.churn_steps : 0;
  res.ratio = res.churn_mean_ms > 0 ? res.scratch_ms / res.churn_mean_ms : 0;

  // --- verify: end-of-churn state -----------------------------------------
  res.ec_count = report.ec_count;
  res.bdd_nodes = report.bdd_nodes;
  for (const verify::PolicyId p : policies) {
    if (rc.checker().policy_satisfied(p)) ++res.policies_holding;
  }

  // --- sweep: budgeted failure exploration on the churned network ---------
  verify::FailureSweepOptions sweep_opts;
  sweep_opts.max_failures = 2;
  sweep_opts.budget = sweep_budget;
  sweep_opts.prune = true;
  sweep_opts.symmetry = true;
  sweep_opts.threads = 1;
  const bench::Timer sweep_timer;
  res.sweep = sweep_failures(rc, good, sweep_opts);
  res.sweep_ms = sweep_timer.ms();
  const std::uint64_t accounted = res.sweep.explored_scenarios +
                                  res.sweep.replayed_scenarios +
                                  res.sweep.pruned_scenarios;
  if (accounted > res.sweep.total_scenarios) {
    std::fprintf(stderr, "FAIL: %s: sweep accounted %llu of %llu scenarios\n",
                 fam.name.c_str(), static_cast<unsigned long long>(accounted),
                 static_cast<unsigned long long>(res.sweep.total_scenarios));
    res.ok = false;
  }
  return res;
}

service::json::Value to_json(const std::string& name, const FamilyResult& r) {
  service::json::Value v;
  v["family"] = service::json::Value(name);
  v["nodes"] = service::json::Value(static_cast<std::uint64_t>(r.nodes));
  v["links"] = service::json::Value(static_cast<std::uint64_t>(r.links));
  v["policies"] = service::json::Value(static_cast<std::uint64_t>(r.policies));
  v["max_rounds"] = service::json::Value(r.max_rounds);
  v["scratch_apply_ms"] = service::json::Value(r.scratch_ms);
  v["churn_steps"] = service::json::Value(r.churn_steps);
  v["diverged_steps"] = service::json::Value(r.diverged_steps);
  v["churn_mean_ms"] = service::json::Value(r.churn_mean_ms);
  v["churn_max_ms"] = service::json::Value(r.churn_max_ms);
  v["incremental_vs_scratch"] = service::json::Value(r.ratio);
  v["ec_count"] = service::json::Value(static_cast<std::uint64_t>(r.ec_count));
  v["bdd_nodes"] = service::json::Value(static_cast<std::uint64_t>(r.bdd_nodes));
  v["policies_holding"] = service::json::Value(static_cast<std::uint64_t>(r.policies_holding));
  service::json::Value s;
  s["max_failures"] = service::json::Value(static_cast<std::uint64_t>(2));
  s["total_scenarios"] = service::json::Value(r.sweep.total_scenarios);
  s["explored"] = service::json::Value(r.sweep.explored_scenarios);
  s["replayed"] = service::json::Value(r.sweep.replayed_scenarios);
  s["pruned"] = service::json::Value(r.sweep.pruned_scenarios);
  s["coverage"] = service::json::Value(r.sweep.coverage);
  s["sweep_ms"] = service::json::Value(r.sweep_ms);
  v["sweep"] = std::move(s);
  return v;
}

void print_row(const std::string& name, const FamilyResult& r) {
  std::printf("| %-9s | %5zu | %5zu | %6u | %11.0f | %9.1f | %7.1fx | %5zu | %7zu | "
              "%5zu/%zu | %8.0f |\n",
              name.c_str(), r.nodes, r.links, r.max_rounds, r.scratch_ms, r.churn_mean_ms,
              r.ratio, r.ec_count, r.bdd_nodes, r.policies_holding, r.policies,
              r.sweep_ms);
}

}  // namespace

int main() {
  const unsigned k = bench::env_unsigned("RCFG_SCALE_K", 12);
  const unsigned torus_side = bench::env_unsigned("RCFG_SCALE_TORUS", 4);
  const unsigned groups = bench::env_unsigned("RCFG_SCALE_GROUPS", 9);
  const unsigned wan_nodes = bench::env_unsigned("RCFG_SCALE_WAN", 48);
  const unsigned churn_steps = bench::env_unsigned("RCFG_SCALE_CHURN", 8);
  const unsigned budget = bench::env_unsigned("RCFG_SCALE_BUDGET", 12);
  const unsigned floor = bench::env_unsigned("RCFG_SCALE_FLOOR", 5);
  bool ok = true;

  std::printf("paper-scale trajectory: open -> churn (%u steps) -> verify -> sweep "
              "(budget %u) per family\n\n",
              churn_steps, budget);

  std::vector<Family> families;

  // fat_tree: the paper's evaluation topology with the paper's LC change.
  {
    Family f;
    f.name = "fat_tree";
    f.topo = topo::make_fat_tree(k);
    f.base = config::build_ospf_network(f.topo);
    f.policy_pairs = {{"edge0-0", "edge1-0"},
                      {"edge0-1", "edge2-0"},
                      {"edge1-0", "edge0-1"},
                      {"edge2-1", "edge0-0"}};
    f.churn = [](config::NetworkConfig& cfg, const topo::Topology& t, core::Rng& rng) {
      // LC: flip one aggregation uplink cost between 1 and 100.
      std::vector<std::pair<std::string, std::string>> aggs;
      for (topo::NodeId n = 0; n < t.node_count(); ++n) {
        if (!t.node(n).name.starts_with("agg")) continue;
        for (const auto& adj : t.adjacencies(n)) {
          aggs.emplace_back(t.node(n).name, t.iface(adj.iface).name);
        }
      }
      const auto& [dev, iface] = aggs[rng.next_below(aggs.size())];
      const std::uint32_t now =
          cfg.devices.at(dev).find_interface(iface)->ospf_cost;
      config::set_ospf_cost(cfg, dev, iface, now == 1 ? 100 : 1);
    };
    families.push_back(std::move(f));
  }

  // torus3d: OSPF fabric under ACL-heavy campus churn.
  {
    Family f;
    f.name = "torus3d";
    f.topo = topo::make_torus(torus_side, torus_side, torus_side);
    f.base = config::build_ospf_network(f.topo);
    const std::string far = "ts" + std::to_string(torus_side - 1) + "-" +
                            std::to_string(torus_side - 1) + "-" +
                            std::to_string(torus_side - 1);
    f.policy_pairs = {{"ts0-0-0", far}, {far, "ts0-0-0"}};
    f.churn = [](config::NetworkConfig& cfg, const topo::Topology& t, core::Rng& rng) {
      config::campus_acl_churn_step(cfg, t, rng);
    };
    families.push_back(std::move(f));
  }

  // dragonfly: eBGP everywhere under ISP-edge churn.
  {
    Family f;
    f.name = "dragonfly";
    topo::DragonflyParams p;
    p.groups = groups;
    p.routers_per_group = 4;
    p.global_per_router = 2;
    p.terminals_per_router = 2;
    f.topo = topo::make_dragonfly(p);
    f.base = config::build_bgp_network(f.topo);
    const std::string far = "dft" + std::to_string(groups - 1) + "-3-1";
    f.policy_pairs = {{"dft0-0-0", far}, {far, "dft0-0-0"}};
    f.churn = [](config::NetworkConfig& cfg, const topo::Topology& t, core::Rng& rng) {
      config::isp_route_churn_step(cfg, t, rng);
    };
    families.push_back(std::move(f));
  }

  // wan: weighted random graph, metric-aware rounds, LC churn on metrics.
  {
    Family f;
    f.name = "wan";
    topo::WanParams p;
    p.nodes = wan_nodes;
    p.links = wan_nodes * 2;
    p.min_cost = 1;
    p.max_cost = 64;
    core::Rng rng(0x5CA1EBA5ULL);
    topo::WeightedTopology wan = topo::make_wan(p, rng);
    f.base = config::build_wan_ospf_network(wan);
    f.topo = std::move(wan.topo);
    f.link_cost = std::move(wan.link_cost);
    f.policy_pairs = {{"w0", "w" + std::to_string(wan_nodes - 1)},
                      {"w" + std::to_string(wan_nodes / 2), "w1"}};
    f.churn = [](config::NetworkConfig& cfg, const topo::Topology& t, core::Rng& step_rng) {
      // LC on a weighted graph: re-price one random link end to end.
      const auto l = static_cast<topo::LinkId>(step_rng.next_below(t.link_count()));
      const auto cost = static_cast<std::uint32_t>(step_rng.next_in(1, 64));
      const topo::Link& lk = t.link(l);
      config::set_ospf_cost(cfg, t.node(lk.a).name, t.iface(lk.a_iface).name, cost);
      config::set_ospf_cost(cfg, t.node(lk.b).name, t.iface(lk.b_iface).name, cost);
    };
    families.push_back(std::move(f));
  }

  std::printf("| Family    | Nodes | Links | Rounds | Scratch ms  | Churn ms  | "
              "Ratio    | ECs   | BDDs    | Policies | Sweep ms |\n");
  std::printf("|-----------|-------|-------|--------|-------------|-----------|"
              "----------|-------|---------|----------|----------|\n");

  service::json::Value rows;
  double fat_tree_ratio = 0;
  for (const Family& fam : families) {
    const FamilyResult r = run_family(fam, churn_steps, budget, 0x5CA1E000ULL + k);
    print_row(fam.name, r);
    if (!r.ok) ok = false;
    if (fam.name == "fat_tree") {
      fat_tree_ratio = r.ratio;
      if (r.policies_holding != r.policies) {
        std::fprintf(stderr,
                     "FAIL: fat-tree LC churn broke %zu of %zu reachability policies\n",
                     r.policies - r.policies_holding, r.policies);
        ok = false;
      }
    }
    rows.push_back(to_json(fam.name, r));
  }

  std::printf("\nfat-tree k=%u incremental-vs-scratch: %.1fx (acceptance: >= %u)\n",
              k, fat_tree_ratio, floor);
  if (fat_tree_ratio < static_cast<double>(floor)) {
    std::fprintf(stderr, "FAIL: fat-tree ratio %.1f below the %ux floor\n",
                 fat_tree_ratio, floor);
    ok = false;
  }

  service::json::Value doc;
  doc["bench"] = service::json::Value("scale");
  doc["fat_tree_k"] = service::json::Value(k);
  doc["churn_steps"] = service::json::Value(churn_steps);
  doc["sweep_budget"] = service::json::Value(budget);
  doc["acceptance_min_ratio"] = service::json::Value(static_cast<std::uint64_t>(floor));
  doc["families"] = std::move(rows);
  std::ofstream("BENCH_scale.json") << doc.dump() << "\n";
  std::printf("wrote BENCH_scale.json\n");
  return ok ? 0 : 1;
}
