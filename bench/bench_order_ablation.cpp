// Ablation: batch update order in the data plane model (paper §4.2 leaves
// "optimal scheduling of model updates" as future work; Table 3 shows the
// insertion-first / deletion-first gap). This bench adds our third
// strategy, per-(device,prefix) interleaving, and covers OSPF as well.
//
// Scale with RCFG_FATTREE_K (default 8).

#include <cstdio>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "dpm/model.h"
#include "routing/generator.h"
#include "topo/generators.h"

using namespace rcfg;

namespace {

constexpr dpm::UpdateOrder kOrders[] = {dpm::UpdateOrder::kInsertFirst,
                                        dpm::UpdateOrder::kDeleteFirst,
                                        dpm::UpdateOrder::kInterleaved};

void run_protocol(const topo::Topology& topo, bool bgp) {
  config::NetworkConfig cfg =
      bgp ? config::build_bgp_network(topo) : config::build_ospf_network(topo);

  routing::GeneratorOptions gopts;
  gopts.max_rounds = bench::rounds();
  routing::IncrementalGenerator gen(topo, gopts);

  // One model per order, all fed the same batches.
  struct Lane {
    dpm::PacketSpace space;
    dpm::EcManager ecs{space};
    dpm::NetworkModel model;
    bench::Stats moves, t1;
    explicit Lane(std::size_t nodes) : model(space, ecs, nodes) {}
  };
  // Lanes are self-referential (model holds references to space/ecs), so
  // they must never relocate: reserve before constructing in place.
  std::vector<Lane> lanes;
  lanes.reserve(3);
  for (std::size_t i = 0; i < 3; ++i) lanes.emplace_back(topo.node_count());

  auto feed = [&](const routing::DataPlaneDelta& delta, bool record) {
    for (std::size_t i = 0; i < 3; ++i) {
      bench::Timer t;
      const dpm::ModelDelta md = lanes[i].model.apply_batch(delta, kOrders[i]);
      if (record) {
        lanes[i].t1.add(t.ms());
        lanes[i].moves.add(static_cast<double>(md.stats.ec_moves));
      }
    }
  };

  feed(gen.apply(cfg), /*record=*/false);  // initial full FIB

  core::Rng rng{909};
  for (unsigned i = 0; i < bench::samples(); ++i) {
    const auto l = static_cast<topo::LinkId>(rng.next_below(topo.link_count()));
    config::fail_link(cfg, topo, l);
    feed(gen.apply(cfg), /*record=*/true);
    config::restore_link(cfg, topo, l);
    feed(gen.apply(cfg), /*record=*/false);

    const auto& lk = topo.link(l);
    if (bgp) {
      config::set_local_pref(cfg, topo.node(lk.a).name, topo.iface(lk.a_iface).name, 150);
    } else {
      config::set_ospf_cost(cfg, topo.node(lk.a).name, topo.iface(lk.a_iface).name, 100);
    }
    feed(gen.apply(cfg), /*record=*/true);
    if (bgp) {
      config::set_local_pref(cfg, topo.node(lk.a).name, topo.iface(lk.a_iface).name,
                             config::kDefaultLocalPref);
    } else {
      config::set_ospf_cost(cfg, topo.node(lk.a).name, topo.iface(lk.a_iface).name,
                            config::kDefaultOspfCost);
    }
    feed(gen.apply(cfg), /*record=*/false);
  }

  std::printf("%s:\n", bgp ? "BGP" : "OSPF");
  std::printf("  | order        | mean EC moves | mean T1    |\n");
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("  | %-12s | %13.1f | %7.3f ms |\n", dpm::to_string(kOrders[i]),
                lanes[i].moves.mean(), lanes[i].t1.mean());
  }
  // Sanity: all orders converge to the same number of ECs.
  std::printf("  final ECs per lane: %zu / %zu / %zu (must match)\n\n",
              lanes[0].ecs.ec_count(), lanes[1].ecs.ec_count(), lanes[2].ecs.ec_count());
}

}  // namespace

int main() {
  const unsigned k = bench::fat_tree_k();
  const topo::Topology topo = topo::make_fat_tree(k);
  std::printf("Update-order ablation (fat tree k=%u, link failures + attribute changes)\n\n", k);
  run_protocol(topo, /*bgp=*/false);
  run_protocol(topo, /*bgp=*/true);
  return 0;
}
