// Stage-2+3 ablation: incremental model update + policy checking versus
// re-checking the whole data plane (the "only check policies related to the
// affected ECs" claim of paper §4.2).
//
// Scale with RCFG_FATTREE_K (default 8).

#include <cstdio>

#include "bench_util.h"
#include "config/builders.h"
#include "core/rng.h"
#include "routing/generator.h"
#include "topo/generators.h"
#include "verify/checker.h"

using namespace rcfg;

int main() {
  const unsigned k = bench::fat_tree_k();
  const topo::Topology topo = topo::make_fat_tree(k);
  config::NetworkConfig cfg = config::build_bgp_network(topo);

  routing::GeneratorOptions gopts;
  gopts.max_rounds = bench::rounds();
  routing::IncrementalGenerator gen(topo, gopts);

  dpm::PacketSpace space;
  dpm::EcManager ecs(space);
  dpm::NetworkModel model(space, ecs, topo.node_count());
  verify::IncrementalChecker checker(topo, space, ecs, model);

  const routing::DataPlaneDelta full = gen.apply(cfg);
  double full_model_ms, full_check_ms;
  {
    bench::Timer t;
    const dpm::ModelDelta md = model.apply_batch(full, dpm::UpdateOrder::kInsertFirst);
    full_model_ms = t.ms();
    bench::Timer t2;
    checker.process(md);
    full_check_ms = t2.ms();
  }
  std::printf("Checker ablation (BGP fat tree k=%u: %zu rules, %zu ECs, %zu pairs)\n\n", k,
              model.rule_count(), ecs.ec_count(), checker.pair_count());
  std::printf("from-scratch:  model update %8.1f ms, policy check %8.1f ms\n", full_model_ms,
              full_check_ms);

  core::Rng rng{404};
  bench::Stats t1, t2, affected;
  for (unsigned i = 0; i < bench::samples(); ++i) {
    const auto l = static_cast<topo::LinkId>(rng.next_below(topo.link_count()));
    config::fail_link(cfg, topo, l);
    const routing::DataPlaneDelta d = gen.apply(cfg);
    {
      bench::Timer m;
      const dpm::ModelDelta md = model.apply_batch(d, dpm::UpdateOrder::kInsertFirst);
      t1.add(m.ms());
      bench::Timer c;
      const verify::CheckResult cr = checker.process(md);
      t2.add(c.ms());
      affected.add(static_cast<double>(cr.affected_ecs.size()));
    }
    config::restore_link(cfg, topo, l);
    // Untimed revert, keeping model and checker in sync.
    checker.process(model.apply_batch(gen.apply(cfg), dpm::UpdateOrder::kInsertFirst));
  }
  std::printf("incremental:   model update %8.2f ms, policy check %8.2f ms "
              "(mean over %u link failures, %.0f ECs affected)\n",
              t1.mean(), t2.mean(), bench::samples(), affected.mean());
  std::printf("\nspeedup: model %.0fx, check %.0fx — the paper's 'less than 100ms for model\n"
              "update and policy checking' granularity (Table 3's T1+T2)\n",
              full_model_ms / t1.mean(), full_check_ms / t2.mean());
  return 0;
}
