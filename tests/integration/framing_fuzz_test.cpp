// Framing-parity fuzz oracle (the "fuzz" label, FUZZ_ITERS widens):
//
//   (1) random JSON values round-trip the binary codec exactly
//       (decode(encode(v)) == v), and the encoding is canonical
//       (encode(decode(bytes)) == bytes for codec-produced bytes);
//   (2) random service scripts — open (replicas 0 or 2, trace on/off),
//       proposes, queries, explains, commits, aborts, add_policy, including
//       ill-sequenced requests that must answer errors — replayed through
//       run_service once as JSON-lines and once as binary frames produce
//       value-identical responses keyed by request id, after scrubbing the
//       wall-clock *_ms measurement fields (the only nondeterministic
//       bytes; `stats` is excluded for the same reason).
//
// Every iteration is seeded deterministically; the seed is in the trace.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "config/builders.h"
#include "config/print.h"
#include "core/rng.h"
#include "service/framing.h"
#include "service/io.h"
#include "topo/generators.h"

namespace rcfg {
namespace {

using service::json::Value;

unsigned fuzz_iters() {
  const char* v = std::getenv("FUZZ_ITERS");
  if (v == nullptr || *v == '\0') return 6;  // tier-1 budget
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<unsigned>(parsed) : 6;
}

Value random_value(core::Rng& rng, unsigned depth) {
  // Containers only while shallow; leaves past depth 4.
  const std::uint64_t pick = rng.next_below(depth >= 4 ? 5 : 7);
  switch (pick) {
    case 0:
      return Value();
    case 1:
      return Value(rng.next_below(2) == 0);
    case 2:
      return Value(static_cast<std::int64_t>(rng.next()));
    case 3:
      return Value(static_cast<double>(rng.next_in(-1'000'000, 1'000'000)) / 997.0);
    case 4: {
      std::string s;
      const std::uint64_t len = rng.next_below(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.next_below(256)));  // NUL and UTF-8 junk welcome
      }
      return Value(s);
    }
    case 5: {
      Value arr(Value::Array{});
      const std::uint64_t n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i) arr.push_back(random_value(rng, depth + 1));
      return arr;
    }
    default: {
      Value obj(Value::Object{});
      const std::uint64_t n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        obj["k" + std::to_string(rng.next_below(8))] = random_value(rng, depth + 1);
      }
      return obj;
    }
  }
}

TEST(FramingFuzz, RandomValuesRoundTripAndEncodeCanonically) {
  const unsigned iters = fuzz_iters();
  for (unsigned iter = 0; iter < iters; ++iter) {
    core::Rng rng{0xF7A3'0000ULL + iter};
    for (unsigned i = 0; i < 200; ++i) {
      SCOPED_TRACE("iter " + std::to_string(iter) + " value " + std::to_string(i));
      const Value v = random_value(rng, 0);
      std::string bytes;
      service::encode_value(v, bytes);
      const Value back = service::decode_value(bytes);
      ASSERT_EQ(back, v);
      // Canonical: re-encoding the decoded value reproduces the bytes
      // (objects keep sorted keys, so there is exactly one encoding).
      std::string bytes2;
      service::encode_value(back, bytes2);
      ASSERT_EQ(bytes2, bytes);
    }
  }
}

// ---------------------------------------------------------------------------
// Script replay across framings.

/// Drop every object key ending in "_ms" — wall-clock measurements are the
/// only response bytes allowed to differ between two replays.
void scrub_timings(Value& v) {
  if (v.is_object()) {
    auto& obj = v.as_object();
    for (auto it = obj.begin(); it != obj.end();) {
      const std::string& key = it->first;
      if (key.size() > 3 && key.compare(key.size() - 3, 3, "_ms") == 0) {
        it = obj.erase(it);
      } else {
        scrub_timings(it->second);
        ++it;
      }
    }
  } else if (v.is_array()) {
    for (Value& child : v.as_array()) scrub_timings(child);
  }
}

std::vector<Value> random_script(core::Rng& rng) {
  const unsigned n = 4 + static_cast<unsigned>(rng.next_below(3));
  const topo::Topology t = topo::make_ring(n);
  const config::NetworkConfig base = config::build_ospf_network(t);

  std::uint64_t id = 0;
  std::vector<Value> script;

  Value open;
  open["id"] = Value(++id);
  open["op"] = Value("open");
  open["session"] = Value("fuzz");
  Value topology;
  topology["kind"] = Value("ring");
  topology["n"] = Value(n);
  open["topology"] = std::move(topology);
  open["config"] = Value(config::print_network(base));
  if (rng.next_below(2) == 0) open["replicas"] = Value(2);  // replicas 0 | 2
  if (rng.next_below(2) == 0) open["trace"] = Value(true);
  script.push_back(std::move(open));

  bool policy_added = false;
  const unsigned ops = 8 + static_cast<unsigned>(rng.next_below(8));
  for (unsigned i = 0; i < ops; ++i) {
    Value req;
    req["id"] = Value(++id);
    req["session"] = Value("fuzz");
    switch (rng.next_below(7)) {
      case 0: {  // propose a random link-failure variant (always convergent)
        config::NetworkConfig cfg = base;
        config::fail_link(cfg, t, static_cast<unsigned>(rng.next_below(t.link_count())));
        req["op"] = Value("propose");
        req["config"] = Value(config::print_network(cfg));
        break;
      }
      case 1:
        req["op"] = Value("commit");  // may answer "nothing staged" — both
        break;                        // framings must agree on that too
      case 2:
        req["op"] = Value("abort");
        break;
      case 3: {
        req["op"] = Value("add_policy");
        Value policy;
        policy["kind"] = Value("reachable");
        policy["name"] = Value("p" + std::to_string(rng.next_below(3)));
        policy["src"] = Value("r0");
        policy["dst"] = Value("r" + std::to_string(1 + rng.next_below(n - 1)));
        policy["prefix"] =
            Value(config::host_prefix(t.find_node("r" + std::to_string(n - 1))).to_string());
        req["policy"] = std::move(policy);
        policy_added = true;
        break;
      }
      case 4:
        req["op"] = Value("query");
        if (policy_added && rng.next_below(2) == 0) req["policy"] = Value("p0");
        break;
      case 5:
        req["op"] = Value("explain");
        break;
      default:
        req["op"] = Value("query");
        req["primary"] = Value(true);
        break;
    }
    script.push_back(std::move(req));
  }
  return script;
}

std::map<std::int64_t, Value> replay(const std::vector<Value>& script, bool binary) {
  std::string input;
  if (binary) {
    std::ostringstream frames;
    service::write_magic(frames);
    for (const Value& req : script) {
      std::string payload;
      service::encode_value(req, payload);
      service::write_frame(frames, payload);
    }
    input = frames.str();
  } else {
    for (const Value& req : script) input += req.dump() + "\n";
  }

  service::ServiceOptions options;
  options.engine.coalesce = false;  // coalescing depends on queue timing
  std::istringstream in(input);
  std::ostringstream out;
  service::run_service(in, out, options);

  std::map<std::int64_t, Value> by_id;
  if (binary) {
    std::istringstream result(out.str());
    service::read_magic(result);
    std::string payload;
    while (service::read_frame(result, payload)) {
      Value doc = service::decode_value(payload);
      scrub_timings(doc);
      by_id[doc.get_int("id")] = std::move(doc);
    }
  } else {
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
      Value doc = Value::parse(line);
      scrub_timings(doc);
      by_id[doc.get_int("id")] = std::move(doc);
    }
  }
  return by_id;
}

TEST(FramingFuzz, ScriptReplayAnswersAgreeAcrossFramings) {
  const unsigned iters = fuzz_iters();
  for (unsigned iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("seed " + std::to_string(0xF7A3'1000ULL + iter));
    core::Rng rng{0xF7A3'1000ULL + iter};
    const std::vector<Value> script = random_script(rng);

    const std::map<std::int64_t, Value> jsonl = replay(script, /*binary=*/false);
    const std::map<std::int64_t, Value> binary = replay(script, /*binary=*/true);

    ASSERT_EQ(jsonl.size(), script.size());
    ASSERT_EQ(binary.size(), script.size());
    for (const auto& [id, want] : jsonl) {
      SCOPED_TRACE("request id " + std::to_string(id));
      const auto it = binary.find(id);
      ASSERT_NE(it, binary.end());
      ASSERT_EQ(it->second, want) << "jsonl: " << want.dump() << "\nbinary: "
                                  << it->second.dump();
    }
  }
}

}  // namespace
}  // namespace rcfg
