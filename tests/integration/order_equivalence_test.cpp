// Property: the batch update ORDER changes EC churn (Table 3) but never
// the final model state. Three models fed identical random change streams
// under the three orders must agree on the forwarding behaviour of every
// probe packet — and on the checker's verdicts.

#include <gtest/gtest.h>

#include "config/builders.h"
#include "core/rng.h"
#include "routing/generator.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

namespace rcfg {
namespace {

class OrderEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(OrderEquivalence, FinalStateIndependentOfOrder) {
  const std::string protocol = GetParam();
  const topo::Topology t = topo::make_fat_tree(4);
  config::NetworkConfig cfg = protocol == "ospf"   ? config::build_ospf_network(t)
                              : protocol == "bgp"  ? config::build_bgp_network(t)
                                                   : config::build_rip_network(t);

  constexpr dpm::UpdateOrder kOrders[] = {dpm::UpdateOrder::kInsertFirst,
                                          dpm::UpdateOrder::kDeleteFirst,
                                          dpm::UpdateOrder::kInterleaved};
  std::vector<std::unique_ptr<verify::RealConfig>> lanes;
  for (const auto order : kOrders) {
    verify::RealConfigOptions o;
    o.update_order = order;
    lanes.push_back(std::make_unique<verify::RealConfig>(t, o));
    lanes.back()->apply(cfg);
  }

  core::Rng rng{protocol == "ospf" ? 71u : protocol == "bgp" ? 72u : 73u};
  for (int step = 0; step < 6; ++step) {
    const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
    if (rng.next_bool(0.5)) {
      config::fail_link(cfg, t, l);
    } else {
      config::restore_link(cfg, t, l);
    }
    for (auto& lane : lanes) lane->apply(cfg);

    // Per-probe forwarding behaviour must agree across lanes (EC ids may
    // differ; the packet-level function may not).
    for (int probe = 0; probe < 24; ++probe) {
      const net::Ipv4Addr dst{static_cast<std::uint32_t>(rng.next())};
      const auto cube =
          lanes[0]->packet_space().dst_prefix(net::Ipv4Prefix{dst, 32});
      const dpm::EcId e0 = lanes[0]->ecs().ec_of(cube);
      for (std::size_t lane = 1; lane < lanes.size(); ++lane) {
        const auto cube_l =
            lanes[lane]->packet_space().dst_prefix(net::Ipv4Prefix{dst, 32});
        const dpm::EcId el = lanes[lane]->ecs().ec_of(cube_l);
        for (topo::NodeId n = 0; n < t.node_count(); ++n) {
          ASSERT_EQ(lanes[0]->model().port_of(n, e0), lanes[lane]->model().port_of(n, el))
              << protocol << " step " << step << " node " << n << " dst "
              << dst.to_string() << " lane " << lane;
        }
      }
    }
    // Checker aggregates agree too.
    for (std::size_t lane = 1; lane < lanes.size(); ++lane) {
      ASSERT_EQ(lanes[0]->checker().pair_count(), lanes[lane]->checker().pair_count());
      ASSERT_EQ(lanes[0]->checker().loop_count(), lanes[lane]->checker().loop_count());
      ASSERT_EQ(lanes[0]->checker().blackhole_count(),
                lanes[lane]->checker().blackhole_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, OrderEquivalence,
                         ::testing::Values("ospf", "bgp", "rip"));

// Randomized-input version of the same property: arbitrary connected
// topologies and change batches, with policies registered, must leave all
// three orders agreeing on per-probe forwarding AND on every verdict. The
// seed is in the trace for replay.
TEST(OrderEquivalence, RandomInputsAgreeOnModelAndVerdicts) {
  for (unsigned trial = 0; trial < 4; ++trial) {
    const std::uint64_t seed = 0x0DE40000ULL + trial;
    SCOPED_TRACE("order-equivalence seed " + std::to_string(seed));
    core::Rng rng(seed);

    const unsigned n = static_cast<unsigned>(rng.next_in(5, 10));
    const unsigned links = n - 1 + static_cast<unsigned>(rng.next_below(n));
    const topo::Topology t = topo::make_random_connected(n, links, rng);
    config::NetworkConfig cfg = rng.next_bool(0.5) ? config::build_ospf_network(t)
                                                   : config::build_bgp_network(t);

    constexpr dpm::UpdateOrder kOrders[] = {dpm::UpdateOrder::kInsertFirst,
                                            dpm::UpdateOrder::kDeleteFirst,
                                            dpm::UpdateOrder::kInterleaved};
    std::vector<std::unique_ptr<verify::RealConfig>> lanes;
    std::vector<verify::PolicyId> policies;
    for (const auto order : kOrders) {
      verify::RealConfigOptions o;
      o.update_order = order;
      lanes.push_back(std::make_unique<verify::RealConfig>(t, o));
    }
    for (int p = 0; p < 3; ++p) {
      const auto src = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      auto dst = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      if (dst == src) dst = (dst + 1) % static_cast<topo::NodeId>(t.node_count());
      verify::PolicyId id = 0;
      for (auto& lane : lanes) {
        id = lane->require_reachable(t.node(src).name, t.node(dst).name,
                                     config::host_prefix(dst));
      }
      policies.push_back(id);
    }
    for (auto& lane : lanes) lane->apply(cfg);

    for (int step = 0; step < 4; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      // A batch of 1-3 link flips lands as ONE apply, so the order knob
      // actually has interleaving to exercise.
      const int flips = static_cast<int>(rng.next_in(1, 3));
      for (int f = 0; f < flips; ++f) {
        const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
        if (rng.next_bool(0.5)) {
          config::fail_link(cfg, t, l);
        } else {
          config::restore_link(cfg, t, l);
        }
      }
      for (auto& lane : lanes) lane->apply(cfg);

      for (int probe = 0; probe < 16; ++probe) {
        const net::Ipv4Addr dst{static_cast<std::uint32_t>(rng.next())};
        const auto cube = lanes[0]->packet_space().dst_prefix(net::Ipv4Prefix{dst, 32});
        const dpm::EcId e0 = lanes[0]->ecs().ec_of(cube);
        for (std::size_t lane = 1; lane < lanes.size(); ++lane) {
          const auto cube_l =
              lanes[lane]->packet_space().dst_prefix(net::Ipv4Prefix{dst, 32});
          const dpm::EcId el = lanes[lane]->ecs().ec_of(cube_l);
          for (topo::NodeId node = 0; node < t.node_count(); ++node) {
            ASSERT_EQ(lanes[0]->model().port_of(node, e0),
                      lanes[lane]->model().port_of(node, el))
                << "node " << node << " dst " << dst.to_string() << " lane " << lane;
          }
        }
      }
      for (const verify::PolicyId id : policies) {
        for (std::size_t lane = 1; lane < lanes.size(); ++lane) {
          ASSERT_EQ(lanes[0]->checker().policy_satisfied(id),
                    lanes[lane]->checker().policy_satisfied(id))
              << "policy " << id << " lane " << lane;
        }
      }
    }
  }
}

}  // namespace
}  // namespace rcfg
