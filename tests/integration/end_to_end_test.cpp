// Whole-system integration: configurations authored as DSL text, a
// topology with OSPF + RIP + BGP + statics + ACLs + redistribution +
// aggregation all at once, verified end to end through RealConfig, with
// the baseline simulator as the oracle.

#include <gtest/gtest.h>

#include "baseline/simulator.h"
#include "config/builders.h"
#include "config/parse.h"
#include "config/print.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

namespace rcfg {
namespace {

// Topology: square ring r0-r1-r2-r3. Protocol mix:
//   r0 -- r1 : OSPF          r1 -- r2 : BGP
//   r2 -- r3 : BGP           r3 -- r0 : RIP
// r1 redistributes OSPF<->BGP, r3 redistributes RIP<->BGP via r2? No — r3
// speaks RIP (to r0) and BGP (to r2) and bridges them. r2 aggregates.
// r0 additionally null-routes a quarantined prefix and filters telnet.
constexpr const char* kConfigs = R"(
hostname r0
!
interface lan0
  ip address 10.0.0.0/24
  ospf area 0
  ospf passive
  rip enable
!
interface to-r1
  ip address 172.16.0.0/31
  ospf area 0
!
interface to-r3
  ip address 172.16.0.6/31
  rip enable
  ip access-group NO-TELNET in
!
ip route 203.0.113.0/24 null0
!
ip access-list NO-TELNET
  10 deny tcp any any eq 23
  20 permit ip any any
!
router ospf
!
router rip
!
hostname r1
!
interface lan0
  ip address 10.0.1.0/24
  ospf area 0
  ospf passive
!
interface to-r0
  ip address 172.16.0.0/31
  ospf area 0
!
interface to-r2
  ip address 172.16.0.2/31
!
router ospf
  redistribute bgp
!
router bgp 65001
  neighbor to-r2 remote-as 65002
  redistribute ospf
!
hostname r2
!
interface lan0
  ip address 10.0.2.0/24
!
interface to-r1
  ip address 172.16.0.2/31
!
interface to-r3
  ip address 172.16.0.4/31
!
router bgp 65002
  network 10.0.2.0/24
  aggregate-address 10.0.0.0/22
  neighbor to-r1 remote-as 65001
  neighbor to-r3 remote-as 65003
!
hostname r3
!
interface lan0
  ip address 10.0.3.0/24
  rip enable
!
interface to-r2
  ip address 172.16.0.4/31
!
interface to-r0
  ip address 172.16.0.6/31
  rip enable
!
router rip
  redistribute bgp
!
router bgp 65003
  neighbor to-r2 remote-as 65002
  redistribute rip
!
)";

struct System {
  topo::Topology topo = topo::make_ring(4);
  config::NetworkConfig cfg = config::parse_network(kConfigs);
};

TEST(EndToEnd, MixedProtocolNetworkConverges) {
  System s;
  verify::RealConfig rc(s.topo);
  const auto report = rc.apply(s.cfg);
  EXPECT_FALSE(report.dataplane.fib.empty());
  EXPECT_FALSE(report.dataplane.filters.empty());  // the telnet ACL

  // Every lan prefix is reachable from every other node despite the three
  // different protocols involved (redistribution glues the domains). The
  // probe is a UDP packet: the telnet ACL splits r0's prefix into a blocked
  // tcp/23 EC and an open remainder, and we want the open one.
  for (topo::NodeId s_node = 0; s_node < 4; ++s_node) {
    for (topo::NodeId d = 0; d < 4; ++d) {
      if (s_node == d) continue;
      auto& space = rc.packet_space();
      const dpm::BddRef probe = space.bdd().bdd_and(
          space.dst_prefix(config::host_prefix(d)), space.proto(config::IpProto::kUdp));
      const dpm::EcId ec = rc.ecs().ec_of(probe);
      EXPECT_TRUE(rc.checker().reachable(s_node, d, ec))
          << "r" << s_node << " -> r" << d;
    }
  }
  EXPECT_EQ(rc.checker().loop_count(), 0u);
}

TEST(EndToEnd, EngineMatchesBaselineOnMixedNetwork) {
  System s;
  routing::IncrementalGenerator gen(s.topo);
  gen.apply(s.cfg);
  const baseline::SimulationResult sim = baseline::simulate(s.topo, s.cfg);
  EXPECT_TRUE(gen.fib() == sim.fib);
}

TEST(EndToEnd, DslRoundTripPreservesSemantics) {
  System s;
  const config::NetworkConfig reparsed =
      config::parse_network(config::print_network(s.cfg));
  EXPECT_EQ(reparsed, s.cfg);

  routing::IncrementalGenerator a(s.topo), b(s.topo);
  a.apply(s.cfg);
  b.apply(reparsed);
  EXPECT_TRUE(a.fib() == b.fib());
}

TEST(EndToEnd, AclFiltersTelnetAcrossProtocolBorder) {
  System s;
  verify::RealConfig rc(s.topo);
  rc.apply(s.cfg);

  // Telnet (tcp/23) into r0 from r3's side is denied; HTTP passes.
  auto& space = rc.packet_space();
  const dpm::BddRef telnet = space.bdd().bdd_and(
      space.bdd().bdd_and(space.dst_prefix(config::host_prefix(0)),
                          space.proto(config::IpProto::kTcp)),
      space.dst_port_range(23, 23));
  const verify::PolicyId blocked = rc.checker().add_isolation(3, 0, telnet, "no telnet");
  EXPECT_TRUE(rc.checker().policy_satisfied(blocked));

  const dpm::BddRef http = space.bdd().bdd_and(
      space.bdd().bdd_and(space.dst_prefix(config::host_prefix(0)),
                          space.proto(config::IpProto::kTcp)),
      space.dst_port_range(80, 80));
  const verify::PolicyId open = rc.checker().add_reachability(3, 0, http, "http ok");
  EXPECT_TRUE(rc.checker().policy_satisfied(open));
}

TEST(EndToEnd, NullRouteDropsQuarantinedPrefix) {
  System s;
  verify::RealConfig rc(s.topo);
  rc.apply(s.cfg);
  const dpm::EcId ec = rc.ecs().ec_of(
      rc.packet_space().dst_prefix(*net::Ipv4Prefix::parse("203.0.113.5/32")));
  EXPECT_EQ(rc.model().port_of(0, ec).action, routing::FibAction::kDrop);
}

TEST(EndToEnd, IncrementalChangeAcrossProtocolBorders) {
  System s;
  verify::RealConfig rc(s.topo);
  rc.apply(s.cfg);
  const verify::PolicyId reach =
      rc.require_reachable("r0", "r2", config::host_prefix(2));
  EXPECT_TRUE(rc.checker().policy_satisfied(reach));

  // Fail the RIP link r3--r0 and the OSPF link r0--r1: r0 is cut off.
  config::NetworkConfig broken = s.cfg;
  config::fail_link(broken, s.topo, 0);  // r0 -- r1
  config::fail_link(broken, s.topo, 3);  // r3 -- r0
  const auto rep = rc.apply(broken);
  EXPECT_FALSE(rc.checker().policy_satisfied(reach));
  bool flipped = false;
  for (const auto& e : rep.check.events) flipped |= (e.id == reach && !e.satisfied);
  EXPECT_TRUE(flipped);

  // Repair only the RIP side: reachability returns via r3 (through the
  // RIP<->BGP redistribution at r3).
  config::restore_link(broken, s.topo, 3);
  rc.apply(broken);
  EXPECT_TRUE(rc.checker().policy_satisfied(reach));
}

}  // namespace
}  // namespace rcfg
