// Long-lived-session soak: one verifier, hundreds of insert/withdraw
// batches, eager online reclamation — the scenario the memory-reclamation
// work exists for. The test asserts the *bounded growth* contract directly:
//
//   * after every withdraw batch the partition returns to its baseline size
//     (EC residue does not accumulate across rounds);
//   * the live BDD node count stays pinned below a fixed high-water mark
//     observed early in the run (the arena stops growing once the working
//     set stabilizes);
//   * pair-level semantics keep matching a non-reclaiming control lane.
//
// Runs under the "soak" ctest label, excluded from tier-1 by default:
//   ctest -L soak                 # ~optimized: a few seconds
//   SOAK_ROUNDS=500 ctest -L soak # wider sweep
// The ASan recipe runs this label with detect_leaks=1, so every BddRef pin
// and EC root taken during churn must be released on the way down.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "config/builders.h"
#include "core/rng.h"
#include "topo/generators.h"
#include "verify/realconfig.h"

namespace rcfg {
namespace {

unsigned soak_rounds() {
  const char* v = std::getenv("SOAK_ROUNDS");
  if (v == nullptr || *v == '\0') return 120;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<unsigned>(parsed) : 120;
}

net::Ipv4Prefix churn_prefix(unsigned round, unsigned i) {
  // Cycle through 64 distinct /24s so later rounds re-register prefixes GC
  // already swept — exercising the free-slot recycling path, not just growth.
  const unsigned slot = (round * 4 + i) % 64;
  return net::Ipv4Prefix{
      net::Ipv4Addr{192, 168, static_cast<std::uint8_t>(slot), 0}, 24};
}

TEST(Soak, LongChurnHoldsMemoryFlat) {
  const unsigned rounds = soak_rounds();
  const topo::Topology t = topo::make_fat_tree(4);
  const config::NetworkConfig base = config::build_ospf_network(t);

  verify::RealConfigOptions eager;
  eager.reclamation.enabled = true;
  verify::RealConfig reclaiming(t, eager);
  verify::RealConfig control(t);
  reclaiming.apply(base);
  control.apply(base);

  const std::size_t baseline_ecs = reclaiming.ecs().ec_count();
  // High-water mark taken after one full warm-up round (below).
  std::size_t bdd_high_water = 0;

  core::Rng rng{0x50A10001ULL};
  config::NetworkConfig cfg = base;
  for (unsigned round = 0; round < rounds; ++round) {
    SCOPED_TRACE("soak round " + std::to_string(round));
    // Spread the churn over a random edge device each round.
    const std::string dev = "edge" + std::to_string(rng.next_below(2)) + "-" +
                            std::to_string(rng.next_below(2));
    auto& routes = cfg.devices.at(dev).static_routes;
    for (unsigned i = 0; i < 4; ++i) {
      routes.push_back({churn_prefix(round, i), config::kNullInterface});
    }
    reclaiming.apply(cfg);
    control.apply(cfg);
    ASSERT_EQ(reclaiming.checker().reachable_pairs(), control.checker().reachable_pairs());

    routes.clear();
    reclaiming.apply(cfg);
    control.apply(cfg);
    ASSERT_EQ(reclaiming.checker().reachable_pairs(), control.checker().reachable_pairs());

    // Bounded growth: partition back to baseline, BDD arena below the mark.
    ASSERT_EQ(reclaiming.ecs().ec_count(), baseline_ecs);
    const std::size_t live = reclaiming.packet_space().bdd().node_count();
    if (round == 0) {
      bdd_high_water = live * 2;  // generous: growth must *stop*, round 0 sets scale
    } else {
      ASSERT_LT(live, bdd_high_water);
    }
  }

  // The whole churn history collapses to the final configuration's state.
  verify::RealConfig fresh(t);
  fresh.apply(cfg);
  EXPECT_EQ(reclaiming.ecs().ec_count(), fresh.ecs().ec_count());
  EXPECT_EQ(reclaiming.checker().reachable_pairs(), fresh.checker().reachable_pairs());
  EXPECT_EQ(reclaiming.checker().loop_count(), fresh.checker().loop_count());
  EXPECT_EQ(reclaiming.checker().blackhole_count(), fresh.checker().blackhole_count());
}

}  // namespace
}  // namespace rcfg
