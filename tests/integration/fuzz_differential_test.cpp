// Randomized differential fuzzing of the whole pipeline: random connected
// topologies, random protocol/ACL/static-route mixes, random change
// sequences — and four independent oracles per step:
//
//   (1) the incremental generator's FIB equals the baseline simulator's
//       (different algorithms, so agreement pins both down);
//   (2) RealConfig lanes at threads 1, 2 and 4 produce semantically
//       identical reports (the parallel checker's determinism claim);
//   (3) every registered policy holds the same verdict in every lane;
//   (4) NetworkModel::permits() never takes its BDD fallback — the eager
//       permit_by_ec maintenance provably keeps worker threads away from
//       the non-thread-safe BddManager.
//   (5) what-if failure sweeps agree scenario-for-scenario between the
//       reconverge-in-place strategy, the snapshot-fork strategy (sharded
//       over 2 workers), and a from-scratch verifier built directly on
//       each failed configuration; and deep (max_failures=2) pruned sweeps
//       stay bit-identical to exhaustive sweeps over the same universe
//       wherever both looked — identical policy_violations, identical
//       outcomes for every explored scenario, violation-free exhaustive
//       counterparts for every scenario the pruner skipped, and closed
//       accounting (explored + replayed + pruned == total). A separate
//       fat-tree lane throws random asymmetries (costs, null routes,
//       ACLs) at the pod-symmetry admission check, which must either
//       replay correctly or refuse — never replay wrong.
//   (6) lanes running online memory reclamation (eager EC merging + BDD GC
//       after every batch) stay pair- and verdict-equivalent to the
//       non-reclaiming lanes at every step, are bit-identical across thread
//       counts among themselves, and finish the change sequence with
//       exactly as many ECs as a fresh rebuild of the final configuration
//       (merging reclaimed everything withdrawals left behind — and nothing
//       more);
//   (7) the relational checker's incremental fork-pair diff is bit-identical
//       to a brute-force comparison of EVERY fork EC against its base
//       ancestor, and bit-identical across thread counts; and update-order
//       synthesis agrees exactly with a ground truth built by evaluating
//       every placed SET on a scratch verifier (disjoint steps commute, so
//       an order is safe iff every prefix set is safe): a safe order exists
//       iff the synthesizer finds one, every returned order walks only safe
//       sets, and a claimed minimal blocking pair really has no size-1
//       alternative.
//   (8) packet-space backend equivalence: lanes pinned to the BDD backend,
//       lanes on "auto" (interval atoms until a multi-field predicate), and
//       reclaiming auto lanes run the identical change sequence — with a
//       deterministic mid-run ACL injection that forces the one-time
//       interval->BDD migration — and EC partitions, policy verdicts, and
//       explain witnesses stay bit-identical across backends and across
//       thread counts {1, 2, 4}.
//
// Change selection follows the uniquely-convergent rule from
// tests/routing/differential_test.cpp: link failures/restores, OSPF costs,
// local-pref at a single fixed node, and static null routes — BGP networks
// with arbitrary preference structures can have several legitimate
// converged states, which would make FIB disagreement a false alarm.
//
// Every iteration is seeded deterministically and the seed is in the trace,
// so any failure replays with a one-line filter. Tier-1 runs a bounded
// number of iterations; FUZZ_ITERS=200 (or more) widens the sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <optional>
#include <tuple>

#include "baseline/simulator.h"
#include "config/builders.h"
#include "core/rng.h"
#include "dd/graph.h"
#include "explain/explain.h"
#include "relate/order.h"
#include "relate/relate.h"
#include "routing/generator.h"
#include "topo/generators.h"
#include "verify/failures.h"
#include "verify/realconfig.h"

namespace rcfg {
namespace {

unsigned fuzz_iters() {
  const char* v = std::getenv("FUZZ_ITERS");
  if (v == nullptr || *v == '\0') return 6;  // tier-1 budget
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<unsigned>(parsed) : 6;
}

/// The semantic fields of a CheckResult (everything except the
/// observability-only Parallelism block), comparable across lanes.
struct Semantics {
  std::vector<dpm::EcId> ecs, lb, le, bb, be;
  std::vector<std::pair<topo::NodeId, topo::NodeId>> affected, changed;
  std::vector<std::pair<verify::PolicyId, bool>> events;

  static Semantics of(const verify::CheckResult& c) {
    Semantics s;
    s.ecs = c.affected_ecs;
    s.affected = c.affected_pairs;
    s.changed = c.changed_pairs;
    for (const verify::PolicyEvent& e : c.events) s.events.emplace_back(e.id, e.satisfied);
    s.lb = c.loops_begun;
    s.le = c.loops_ended;
    s.bb = c.blackholes_begun;
    s.be = c.blackholes_ended;
    return s;
  }
  bool operator==(const Semantics&) const = default;
};

TEST(FuzzDifferential, RandomNetworksAgreeAcrossOraclesAndThreadCounts) {
  constexpr unsigned kLaneThreads[] = {1, 2, 4};
  const unsigned iters = fuzz_iters();

  for (unsigned iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = 0xF0550000ULL + iter;
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) + " (iteration " +
                 std::to_string(iter) + ")");
    core::Rng rng(seed);

    // --- random network ---------------------------------------------------
    const unsigned n = static_cast<unsigned>(rng.next_in(5, 12));
    const unsigned links = n - 1 + static_cast<unsigned>(rng.next_below(n));
    const topo::Topology t = topo::make_random_connected(n, links, rng);
    const bool bgp = rng.next_bool(0.4);
    config::NetworkConfig cfg =
        bgp ? config::build_bgp_network(t) : config::build_ospf_network(t);

    // A sprinkle of data-plane-only state: ACLs and discard routes don't
    // touch the FIB oracle but push the model/checker down the filter and
    // blackhole paths.
    if (rng.next_bool(0.5)) {
      const auto node = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      const auto adj = t.adjacencies(node);
      const auto& ifc = t.iface(adj[rng.next_below(adj.size())].iface).name;
      config::attach_random_acl(cfg, t, t.node(node).name, ifc, rng.next_bool(0.5),
                                static_cast<unsigned>(rng.next_in(1, 4)), rng);
    }
    if (rng.next_bool(0.3)) {
      const auto victim = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      const auto holder = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      cfg.devices.at(t.node(holder).name)
          .static_routes.push_back({config::host_prefix(victim), config::kNullInterface, 1});
    }

    // --- lanes ------------------------------------------------------------
    // Lanes [0, kReclaimBase) run plain; lanes [kReclaimBase, ...) run with
    // eager online reclamation (merge + GC after every batch), same thread
    // spread.
    std::vector<std::unique_ptr<verify::RealConfig>> lanes;
    for (const bool reclaim : {false, true}) {
      for (const unsigned threads : kLaneThreads) {
        verify::RealConfigOptions o;
        o.threads = threads;
        o.reclamation.enabled = reclaim;
        lanes.push_back(std::make_unique<verify::RealConfig>(t, o));
      }
    }
    const std::size_t kReclaimBase = std::size(kLaneThreads);

    struct PolicySpec {
      bool isolated;
      topo::NodeId src, dst;
    };
    std::vector<PolicySpec> policy_specs;
    std::vector<verify::PolicyId> policies;
    for (int p = 0; p < 4; ++p) {
      const auto src = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      auto dst = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      if (dst == src) dst = (dst + 1) % static_cast<topo::NodeId>(t.node_count());
      const bool isolated = rng.next_bool(0.25);
      verify::PolicyId id = 0;
      for (auto& lane : lanes) {
        id = isolated
                 ? lane->require_isolated(t.node(src).name, t.node(dst).name,
                                          config::host_prefix(dst))
                 : lane->require_reachable(t.node(src).name, t.node(dst).name,
                                           config::host_prefix(dst));
      }
      policy_specs.push_back({isolated, src, dst});
      policies.push_back(id);
    }

    // --- initial apply + change sequence ----------------------------------
    std::vector<topo::LinkId> failed;
    const topo::NodeId lp_node = 0;  // uniquely-convergent: one fixed LP node
    for (int step = -1; step < 4; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      if (step >= 0) {
        const double dice = rng.next_double();
        if (dice < 0.35) {
          const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
          config::fail_link(cfg, t, l);
          failed.push_back(l);
        } else if (dice < 0.55 && !failed.empty()) {
          const auto idx = rng.next_below(failed.size());
          config::restore_link(cfg, t, failed[idx]);
          failed.erase(failed.begin() + static_cast<std::ptrdiff_t>(idx));
        } else if (dice < 0.7) {
          const auto victim = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
          const auto holder = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
          auto& routes = cfg.devices.at(t.node(holder).name).static_routes;
          if (routes.empty()) {
            routes.push_back({config::host_prefix(victim), config::kNullInterface, 1});
          } else {
            routes.pop_back();
          }
        } else if (!bgp) {
          const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
          const topo::Link& lk = t.link(l);
          config::set_ospf_cost(cfg, t.node(lk.a).name, t.iface(lk.a_iface).name,
                                static_cast<std::uint32_t>(rng.next_in(1, 100)));
        } else {
          const auto adj = t.adjacencies(lp_node);
          const auto& ifc = t.iface(adj[rng.next_below(adj.size())].iface).name;
          config::set_local_pref(cfg, t.node(lp_node).name, ifc,
                                 rng.next_bool(0.5) ? 150u : config::kDefaultLocalPref);
        }
      }

      std::vector<Semantics> reports;
      for (auto& lane : lanes) reports.push_back(Semantics::of(lane->apply(cfg).check));

      // Oracle 2: thread-count invariance of the whole report, within each
      // reclamation setting (across settings EC ids legitimately renumber
      // after merges, so only oracle 6's pair/verdict comparison applies).
      for (std::size_t base : {std::size_t{0}, kReclaimBase}) {
        for (std::size_t i = 1; i < std::size(kLaneThreads); ++i) {
          EXPECT_TRUE(reports[base] == reports[base + i])
              << "report at threads=" << kLaneThreads[i] << " (reclaim="
              << (base == kReclaimBase) << ") differs from threads=1";
        }
      }
      // Oracle 3: identical verdicts everywhere.
      for (const verify::PolicyId id : policies) {
        for (std::size_t lane = 1; lane < lanes.size(); ++lane) {
          EXPECT_EQ(lanes[0]->checker().policy_satisfied(id),
                    lanes[lane]->checker().policy_satisfied(id))
              << "policy " << id << " verdict at threads=" << kLaneThreads[lane];
        }
      }
      // Oracle 1: the engine's FIB equals the independent baseline's.
      const baseline::SimulationResult sim = baseline::simulate(t, cfg);
      EXPECT_TRUE(lanes[0]->generator().fib() == sim.fib)
          << "engine FIB differs from baseline simulator";

      // Oracle 4: permits() never fell back to a live BDD query — the
      // permit_by_ec bitmaps stayed complete, so the checker's worker
      // threads provably never touched the non-thread-safe BddManager.
      for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
        EXPECT_EQ(lanes[lane]->model().permit_fallback_count(), 0u)
            << "permits() BDD fallback reached in lane " << lane;
      }

      // Oracle 6 (per step): the reclaiming lane's pair-level semantics and
      // anomaly counts match the non-reclaiming lane's despite the merges.
      EXPECT_EQ(lanes[kReclaimBase]->checker().reachable_pairs(),
                lanes[0]->checker().reachable_pairs());
      EXPECT_EQ(lanes[kReclaimBase]->checker().loop_count(),
                lanes[0]->checker().loop_count());
      EXPECT_EQ(lanes[kReclaimBase]->checker().blackhole_count(),
                lanes[0]->checker().blackhole_count());
      EXPECT_LE(lanes[kReclaimBase]->ecs().ec_count(), lanes[0]->ecs().ec_count());

      if (::testing::Test::HasFailure()) return;
    }

    // --- Oracle 6 (end of sequence): fresh-rebuild minimality -------------
    // A brand-new verifier over the final configuration (with the same
    // policies) has the coarsest partition the current predicates allow; a
    // churned-then-reclaimed lane must land on exactly that size.
    {
      verify::RealConfigOptions o;
      o.reclamation.enabled = true;
      verify::RealConfig rebuilt(t, o);
      for (const PolicySpec& p : policy_specs) {
        if (p.isolated) {
          rebuilt.require_isolated(t.node(p.src).name, t.node(p.dst).name,
                                   config::host_prefix(p.dst));
        } else {
          rebuilt.require_reachable(t.node(p.src).name, t.node(p.dst).name,
                                    config::host_prefix(p.dst));
        }
      }
      rebuilt.apply(cfg);
      EXPECT_EQ(lanes[kReclaimBase]->ecs().ec_count(), rebuilt.ecs().ec_count())
          << "reclaimed partition is not as small as a fresh rebuild's";
      EXPECT_EQ(lanes[kReclaimBase]->checker().reachable_pairs(),
                rebuilt.checker().reachable_pairs());
    }

    // --- Oracle 5: what-if sweep agreement --------------------------------
    // Sample a few links that are up in the final configuration (sweeping a
    // link the config already failed would make the serial sweep's
    // restore_link un-fail it behind the oracle's back).
    std::vector<topo::LinkId> sweep_links;
    for (topo::LinkId l = 0; l < t.link_count() && sweep_links.size() < 4; ++l) {
      if (std::find(failed.begin(), failed.end(), l) == failed.end()) {
        sweep_links.push_back(l);
      }
    }
    const verify::FailureSweepResult serial =
        verify::sweep_single_link_failures(*lanes[0], cfg, sweep_links);

    verify::FailureSweepOptions sweep_options;
    for (const topo::LinkId l : sweep_links) {
      sweep_options.scenarios.push_back(verify::FailureScenario{{l}});
    }
    sweep_options.threads = 2;
    const verify::FailureSweepResult forked =
        verify::sweep_failures(*lanes[0], cfg, sweep_options);

    ASSERT_EQ(forked.outcomes.size(), serial.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      SCOPED_TRACE("sweep scenario " + std::to_string(i));
      const verify::ScenarioOutcome& a = serial.outcomes[i];
      const verify::ScenarioOutcome& b = forked.outcomes[i];
      EXPECT_EQ(b.scenario, a.scenario);
      EXPECT_EQ(b.diverged, a.diverged);
      EXPECT_EQ(b.reachable_pairs, a.reachable_pairs);
      EXPECT_EQ(b.pairs_lost, a.pairs_lost);
      EXPECT_EQ(b.violated, a.violated);
      EXPECT_EQ(b.gained_loop, a.gained_loop);

      // From-scratch rebuild on the failed configuration: the incremental
      // restore-then-delta path must land on the same reachable set.
      if (!a.diverged) {
        config::NetworkConfig scenario_cfg = cfg;
        config::fail_link(scenario_cfg, t, a.scenario.links.front());
        verify::RealConfig scratch(t);
        scratch.apply(scenario_cfg);
        EXPECT_EQ(a.reachable_pairs, scratch.checker().reachable_pairs().size());
        EXPECT_EQ(b.gained_loop,
                  scratch.checker().loop_count() > lanes[0]->checker().loop_count());
      }
    }
    EXPECT_EQ(forked.fault_tolerant_pairs, serial.fault_tolerant_pairs);
    EXPECT_EQ(forked.critical_links, serial.critical_links);

    // Both sweeps hand the verifier back in its healthy state.
    EXPECT_EQ(lanes[0]->checker().reachable_pairs(), serial.healthy_pairs);

    // --- Oracle 5 (deep space): pruned vs exhaustive, same universe -------
    // max_failures=2 over the sampled links: dependency pruning may only
    // skip scenarios that cannot move a policy, and must say how many.
    verify::FailureSweepOptions deep;
    deep.links = sweep_links;
    deep.max_failures = 2;
    deep.threads = 2;
    const verify::FailureSweepResult deep_full =
        verify::sweep_failures(*lanes[0], cfg, deep);
    verify::FailureSweepOptions deep_prune = deep;
    deep_prune.prune = true;
    const verify::FailureSweepResult deep_red =
        verify::sweep_failures(*lanes[0], cfg, deep_prune);

    EXPECT_EQ(deep_full.total_scenarios, deep_red.total_scenarios);
    EXPECT_EQ(deep_red.explored_scenarios + deep_red.replayed_scenarios +
                  deep_red.pruned_scenarios,
              deep_red.total_scenarios);
    EXPECT_EQ(deep_red.coverage, 1.0);
    EXPECT_EQ(deep_full.policy_violations, deep_red.policy_violations);
    std::map<std::vector<topo::LinkId>, const verify::ScenarioOutcome*> deep_ref;
    for (const verify::ScenarioOutcome& o : deep_full.outcomes) {
      deep_ref.emplace(o.scenario.links, &o);
    }
    std::set<std::vector<topo::LinkId>> deep_kept;
    for (const verify::ScenarioOutcome& o : deep_red.outcomes) {
      SCOPED_TRACE("deep pruned scenario");
      deep_kept.insert(o.scenario.links);
      const auto it = deep_ref.find(o.scenario.links);
      ASSERT_NE(it, deep_ref.end()) << "pruned sweep explored an unknown scenario";
      EXPECT_EQ(o.diverged, it->second->diverged);
      EXPECT_EQ(o.reachable_pairs, it->second->reachable_pairs);
      EXPECT_EQ(o.pairs_lost, it->second->pairs_lost);
      EXPECT_EQ(o.violated, it->second->violated);
      EXPECT_EQ(o.gained_loop, it->second->gained_loop);
    }
    // Soundness of the skip: everything the pruner never ran is
    // violation-free in the exhaustive sweep.
    for (const verify::ScenarioOutcome& o : deep_full.outcomes) {
      if (deep_kept.count(o.scenario.links) == 0) {
        EXPECT_TRUE(o.violated.empty())
            << "the pruner skipped a policy-violating scenario";
      }
    }
    if (::testing::Test::HasFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Oracle 5 (symmetry admission): random asymmetries on a fat tree
// ---------------------------------------------------------------------------

// Pod-symmetry dedup replays one representative's outcome across its orbit,
// so a single wrongly-admitted pod permutation silently corrupts replayed
// aggregates. This lane perturbs a fat tree with random cost tweaks, null
// routes, and ACLs (multi-field predicates force the BDD backend, reaching
// the support-query path of the admission check), then demands the reduced
// sweep still matches the exhaustive one exactly where the reductions
// promise: admission must shrink pod orbits rather than replay wrong.
TEST(FuzzDifferential, SymmetryAdmissionSurvivesRandomAsymmetries) {
  const unsigned iters = fuzz_iters();

  for (unsigned iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = 0xF0AA0000ULL + iter;
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) + " (iteration " +
                 std::to_string(iter) + ")");
    core::Rng rng(seed);

    const topo::Topology t = topo::make_fat_tree(4);
    config::NetworkConfig cfg = config::build_ospf_network(t);
    const unsigned mutations = static_cast<unsigned>(rng.next_below(3));
    for (unsigned m = 0; m < mutations; ++m) {
      const auto node = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      const auto adj = t.adjacencies(node);
      const auto& ifc = t.iface(adj[rng.next_below(adj.size())].iface).name;
      const double dice = rng.next_double();
      if (dice < 0.4) {
        config::set_ospf_cost(cfg, t.node(node).name, ifc,
                              static_cast<std::uint32_t>(rng.next_in(1, 100)));
      } else if (dice < 0.7) {
        const auto victim = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
        cfg.devices.at(t.node(node).name)
            .static_routes.push_back({config::host_prefix(victim), config::kNullInterface, 1});
      } else {
        config::attach_random_acl(cfg, t, t.node(node).name, ifc, rng.next_bool(0.5),
                                  static_cast<unsigned>(rng.next_in(1, 4)), rng);
      }
    }

    std::vector<topo::NodeId> edges;
    for (topo::NodeId n = 0; n < static_cast<topo::NodeId>(t.node_count()); ++n) {
      if (t.node(n).name.rfind("edge", 0) == 0) edges.push_back(n);
    }
    verify::RealConfig rc(t);
    for (int p = 0; p < 2; ++p) {
      const topo::NodeId src = edges[rng.next_below(edges.size())];
      topo::NodeId dst = edges[rng.next_below(edges.size())];
      if (dst == src) dst = edges[(rng.next_below(edges.size() - 1) + 1) % edges.size()];
      rc.require_reachable(t.node(src).name, t.node(dst).name, config::host_prefix(dst));
    }
    rc.apply(cfg);

    verify::FailureSweepOptions exhaustive;
    exhaustive.max_failures = 1;
    exhaustive.threads = 2;
    const verify::FailureSweepResult full = sweep_failures(rc, cfg, exhaustive);
    verify::FailureSweepOptions reduced_options = exhaustive;
    reduced_options.prune = true;
    reduced_options.symmetry = true;
    reduced_options.threads = 2;
    const verify::FailureSweepResult reduced = sweep_failures(rc, cfg, reduced_options);

    // Accounting closes exactly, and orbit widths cover what replay claims.
    EXPECT_EQ(full.total_scenarios, reduced.total_scenarios);
    EXPECT_EQ(reduced.explored_scenarios + reduced.replayed_scenarios +
                  reduced.pruned_scenarios,
              reduced.total_scenarios);
    EXPECT_EQ(reduced.coverage, 1.0);
    std::uint64_t covered = 0;
    for (const verify::ScenarioOutcome& o : reduced.outcomes) covered += o.orbit;
    EXPECT_EQ(covered, reduced.explored_scenarios + reduced.replayed_scenarios);

    // Policy verdicts are exact under both reductions; a wrongly-admitted
    // orbit would relabel violations onto the wrong links and break this.
    EXPECT_EQ(full.policy_violations, reduced.policy_violations);

    // Representatives agree field-for-field with their exhaustive runs.
    std::map<std::vector<topo::LinkId>, const verify::ScenarioOutcome*> ref;
    for (const verify::ScenarioOutcome& o : full.outcomes) ref.emplace(o.scenario.links, &o);
    for (const verify::ScenarioOutcome& o : reduced.outcomes) {
      const auto it = ref.find(o.scenario.links);
      ASSERT_NE(it, ref.end());
      EXPECT_EQ(o.diverged, it->second->diverged);
      EXPECT_EQ(o.reachable_pairs, it->second->reachable_pairs);
      EXPECT_EQ(o.pairs_lost, it->second->pairs_lost);
      EXPECT_EQ(o.violated, it->second->violated);
      EXPECT_EQ(o.gained_loop, it->second->gained_loop);
    }

    // Mined aggregates are coverage-limited under pruning, never invented:
    // the reduced fault-tolerant spec can only be coarser (a superset), and
    // every critical link or loop/divergence report must exist exhaustively.
    EXPECT_TRUE(std::includes(reduced.fault_tolerant_pairs.begin(),
                              reduced.fault_tolerant_pairs.end(),
                              full.fault_tolerant_pairs.begin(),
                              full.fault_tolerant_pairs.end()));
    EXPECT_TRUE(std::includes(full.critical_links.begin(), full.critical_links.end(),
                              reduced.critical_links.begin(),
                              reduced.critical_links.end()));
    EXPECT_TRUE(std::includes(full.loop_scenarios.begin(), full.loop_scenarios.end(),
                              reduced.loop_scenarios.begin(),
                              reduced.loop_scenarios.end()));
    EXPECT_TRUE(std::includes(full.diverged_links.begin(), full.diverged_links.end(),
                              reduced.diverged_links.begin(),
                              reduced.diverged_links.end()));
    if (::testing::Test::HasFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Oracle 7: relational diffing and update-order synthesis
// ---------------------------------------------------------------------------

/// Mutate exactly one device of `cfg` (static null route, IGP cost, local
/// pref, or a random ACL) — the building block for both the relate proposal
/// and the pairwise-disjoint order steps.
void mutate_device(config::NetworkConfig& cfg, const topo::Topology& t, topo::NodeId node,
                   bool bgp, core::Rng& rng) {
  const auto adj = t.adjacencies(node);
  const auto& ifc = t.iface(adj[rng.next_below(adj.size())].iface).name;
  const double dice = rng.next_double();
  if (dice < 0.35) {
    const auto victim = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
    cfg.devices.at(t.node(node).name)
        .static_routes.push_back({config::host_prefix(victim), config::kNullInterface, 1});
  } else if (dice < 0.6) {
    config::attach_random_acl(cfg, t, t.node(node).name, ifc, true,
                              static_cast<unsigned>(rng.next_in(1, 4)), rng);
  } else if (!bgp) {
    config::set_ospf_cost(cfg, t.node(node).name, ifc,
                          static_cast<std::uint32_t>(rng.next_in(1, 100)));
  } else {
    config::set_local_pref(cfg, t.node(node).name, ifc,
                           rng.next_bool(0.5) ? 150u : config::kDefaultLocalPref);
  }
}

/// The lane-comparable projection of an OrderResult (timings dropped).
struct OrderSemantics {
  bool found = false, minimal = false;
  std::vector<std::size_t> order, blocking;
  std::vector<std::tuple<std::size_t, bool, std::vector<verify::PolicyId>>> verdicts;
  std::size_t explored = 0;

  static OrderSemantics of(const relate::OrderResult& r) {
    OrderSemantics s;
    s.found = r.found;
    s.minimal = r.blocking_minimal;
    s.order = r.order;
    s.blocking = r.blocking;
    for (const relate::StepVerdict& v : r.verdicts) {
      s.verdicts.emplace_back(v.step, v.converged, v.violated);
    }
    s.explored = r.explored;
    return s;
  }
  bool operator==(const OrderSemantics&) const = default;
};

TEST(FuzzDifferential, RelationalDiffAndOrderSynthesisAgreeWithGroundTruth) {
  constexpr unsigned kLaneThreads[] = {1, 2, 4};
  constexpr std::size_t kSteps = 3;
  const unsigned iters = fuzz_iters();

  for (unsigned iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = 0xF0770000ULL + iter;
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) + " (iteration " +
                 std::to_string(iter) + ")");
    core::Rng rng(seed);

    const unsigned n = static_cast<unsigned>(rng.next_in(5, 10));
    const unsigned links = n - 1 + static_cast<unsigned>(rng.next_below(n));
    const topo::Topology t = topo::make_random_connected(n, links, rng);
    const bool bgp = rng.next_bool(0.3);
    config::NetworkConfig cfg =
        bgp ? config::build_bgp_network(t) : config::build_ospf_network(t);

    // Identical policy slates on every lane and on the ground-truth scratch.
    struct PolicySpec {
      bool isolated;
      topo::NodeId src, dst;
    };
    std::vector<PolicySpec> policy_specs;
    for (int p = 0; p < 4; ++p) {
      const auto src = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      auto dst = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      if (dst == src) dst = (dst + 1) % static_cast<topo::NodeId>(t.node_count());
      policy_specs.push_back({rng.next_bool(0.25), src, dst});
    }
    const auto register_policies = [&](verify::RealConfig& rc) {
      for (const PolicySpec& p : policy_specs) {
        if (p.isolated) {
          rc.require_isolated(t.node(p.src).name, t.node(p.dst).name,
                              config::host_prefix(p.dst));
        } else {
          rc.require_reachable(t.node(p.src).name, t.node(p.dst).name,
                               config::host_prefix(p.dst));
        }
      }
    };

    std::vector<std::unique_ptr<verify::RealConfig>> lanes;
    for (const unsigned threads : kLaneThreads) {
      verify::RealConfigOptions o;
      o.threads = threads;
      lanes.push_back(std::make_unique<verify::RealConfig>(t, o));
      register_policies(*lanes.back());
      lanes.back()->apply(cfg);
    }

    // --- Oracle 7a: incremental diff == brute force, lane-invariant -------
    config::NetworkConfig proposed = cfg;
    const auto mutated = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
    mutate_device(proposed, t, mutated, bgp, rng);

    std::vector<relate::RelationalSpec> specs;
    const auto allowed_dst = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
    specs.push_back({relate::RelationalSpec::Kind::kOnlyDstIn,
                     {config::host_prefix(allowed_dst)},
                     "confined"});
    specs.push_back({relate::RelationalSpec::Kind::kNone, {}, "frozen"});

    std::optional<relate::RelationalResult> first;
    for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
      SCOPED_TRACE("relate lane threads=" + std::to_string(kLaneThreads[lane]));
      relate::RelationalChecker checker(*lanes[lane]);
      relate::RelationalResult r = checker.check(proposed, specs);
      // The diff the affected-set walk produced is exactly what comparing
      // EVERY fork EC produces: the unexamined ECs really were identical.
      const relate::RelationalDiff brute = relate::relational_diff_bruteforce(
          *lanes[lane], checker.changed(), checker.base_of());
      EXPECT_EQ(r.diff, brute);
      if (!first.has_value()) {
        first = std::move(r);
        continue;
      }
      // Bit-identical across thread counts: same ECs, ports, pairs, flags,
      // same violating EC sets, same witness flows.
      EXPECT_EQ(r.diff, first->diff);
      EXPECT_EQ(r.holds, first->holds);
      ASSERT_EQ(r.violations.size(), first->violations.size());
      for (std::size_t v = 0; v < r.violations.size(); ++v) {
        EXPECT_EQ(r.violations[v].spec, first->violations[v].spec);
        EXPECT_EQ(r.violations[v].ecs, first->violations[v].ecs);
        ASSERT_EQ(r.violations[v].witness.has_value(),
                  first->violations[v].witness.has_value());
        if (r.violations[v].witness.has_value()) {
          EXPECT_EQ(r.violations[v].witness->flow, first->violations[v].witness->flow);
          EXPECT_EQ(r.violations[v].witness->ingress,
                    first->violations[v].witness->ingress);
        }
      }
    }
    if (::testing::Test::HasFailure()) return;

    // --- Oracle 7b: order synthesis vs placed-set ground truth ------------
    // kSteps pairwise-disjoint single-device steps.
    std::vector<topo::NodeId> devices;
    while (devices.size() < kSteps) {
      const auto d = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      if (std::find(devices.begin(), devices.end(), d) == devices.end()) {
        devices.push_back(d);
      }
    }
    std::vector<relate::UpdateStep> steps;
    for (std::size_t i = 0; i < kSteps; ++i) {
      config::NetworkConfig scratch_cfg = cfg;
      mutate_device(scratch_cfg, t, devices[i], bgp, rng);
      relate::UpdateStep step;
      step.name = "step-" + std::to_string(i);
      step.patch.devices[t.node(devices[i]).name] =
          scratch_cfg.devices.at(t.node(devices[i]).name);
      steps.push_back(std::move(step));
    }
    const auto compose = [&](std::uint64_t mask) {
      config::NetworkConfig c = cfg;
      for (std::size_t i = 0; i < kSteps; ++i) {
        if (!(mask & (std::uint64_t{1} << i))) continue;
        for (const auto& [device, dev_cfg] : steps[i].patch.devices) {
          c.devices[device] = dev_cfg;
        }
      }
      return c;
    };

    // Ground truth: disjoint steps commute, so an order is safe iff every
    // prefix SET is safe — evaluate all 2^kSteps sets on a scratch verifier.
    verify::RealConfig scratch(t);
    register_policies(scratch);
    scratch.apply(cfg);
    std::vector<verify::PolicyId> watched;
    for (verify::PolicyId id = 0; id < scratch.checker().policy_count(); ++id) {
      if (scratch.checker().policy_satisfied(id)) watched.push_back(id);
    }
    const auto snap = scratch.snapshot();
    std::vector<bool> safe(std::size_t{1} << kSteps, true);  // safe[0]: base holds
    for (std::uint64_t mask = 1; mask < safe.size(); ++mask) {
      scratch.restore(*snap);
      try {
        scratch.apply(compose(mask));
        for (const verify::PolicyId id : watched) {
          if (!scratch.checker().policy_satisfied(id)) safe[mask] = false;
        }
      } catch (const dd::NonterminationError&) {
        safe[mask] = false;  // a non-converging placement is unsafe
      }
    }
    // A safe chain from `from` to the full `allowed` set exists?
    const auto chain_exists = [&](std::uint64_t allowed) {
      std::vector<bool> reach(safe.size(), false);
      reach[0] = true;
      for (std::uint64_t mask = 0; mask < safe.size(); ++mask) {
        if (!reach[mask]) continue;
        if (mask == allowed) return true;
        for (std::size_t s = 0; s < kSteps; ++s) {
          const std::uint64_t next = mask | (std::uint64_t{1} << s);
          if ((allowed & (std::uint64_t{1} << s)) && next != mask && safe[next]) {
            reach[next] = true;
          }
        }
      }
      return false;
    };
    const std::uint64_t full = (std::uint64_t{1} << kSteps) - 1;

    std::optional<OrderSemantics> first_order;
    for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
      SCOPED_TRACE("order lane threads=" + std::to_string(kLaneThreads[lane]));
      relate::UpdateOrderSynthesizer synth(*lanes[lane], cfg);
      const relate::OrderResult r = synth.synthesize(steps);

      // Sound and complete on the full set: found-with-no-blocking iff a
      // safe chain exists.
      EXPECT_EQ(r.found && r.blocking.empty(), chain_exists(full));
      if (r.found) {
        // Every prefix of the returned order is a safe placed set.
        std::uint64_t mask = 0;
        for (const std::size_t s : r.order) {
          mask |= std::uint64_t{1} << s;
          EXPECT_TRUE(safe[mask]) << "order walks through unsafe set " << mask;
        }
        std::uint64_t excluded = 0;
        for (const std::size_t s : r.blocking) excluded |= std::uint64_t{1} << s;
        EXPECT_EQ(mask, full & ~excluded);
        for (const relate::StepVerdict& v : r.verdicts) {
          EXPECT_TRUE(v.converged);
          EXPECT_TRUE(v.violated.empty());
        }
      }
      if (!r.blocking.empty()) {
        // The exclusion really unblocks the remainder...
        EXPECT_TRUE(chain_exists(full & ~[&] {
          std::uint64_t e = 0;
          for (const std::size_t s : r.blocking) e |= std::uint64_t{1} << s;
          return e;
        }()));
        // ...and a claimed-minimal pair has no single-step alternative.
        if (r.blocking_minimal && r.blocking.size() == 2) {
          for (std::size_t s = 0; s < kSteps; ++s) {
            EXPECT_FALSE(chain_exists(full & ~(std::uint64_t{1} << s)));
          }
        }
      }

      if (!first_order.has_value()) {
        first_order = OrderSemantics::of(r);
      } else {
        EXPECT_TRUE(OrderSemantics::of(r) == *first_order)
            << "order synthesis differs across thread counts";
      }
    }
    if (::testing::Test::HasFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Oracle 8: packet-space backend equivalence under forced migration
// ---------------------------------------------------------------------------

TEST(FuzzDifferential, BackendsAgreeAcrossMigrationAndThreadCounts) {
  constexpr unsigned kLaneThreads[] = {1, 2, 4};
  constexpr int kAclStep = 1;  // deterministic mid-run migration trigger
  const unsigned iters = fuzz_iters();

  for (unsigned iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = 0xF0880000ULL + iter;
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) + " (iteration " +
                 std::to_string(iter) + ")");
    core::Rng rng(seed);

    const unsigned n = static_cast<unsigned>(rng.next_in(5, 12));
    const unsigned links = n - 1 + static_cast<unsigned>(rng.next_below(n));
    const topo::Topology t = topo::make_random_connected(n, links, rng);
    const bool bgp = rng.next_bool(0.4);
    // No ACLs in the base configuration: the auto lanes must provably run on
    // interval atoms until kAclStep injects the first multi-field predicate.
    config::NetworkConfig cfg =
        bgp ? config::build_bgp_network(t) : config::build_ospf_network(t);

    // Lanes [0, 6): {bdd, auto} x threads {1,2,4}, no reclamation — these
    // must be bit-identical in EVERY field, EC ids included (identical split
    // sequences produce identical ids on both backends). Lanes [6, 9): auto
    // with eager reclamation, compared like oracle 6's reclaim lanes.
    std::vector<std::unique_ptr<verify::RealConfig>> lanes;
    std::vector<int> migrations;  // per-lane migration-listener fire count
    const auto add_lane = [&](dpm::BackendKind backend, bool reclaim, unsigned threads) {
      verify::RealConfigOptions o;
      o.packet_space = backend;
      o.threads = threads;
      o.reclamation.enabled = reclaim;
      lanes.push_back(std::make_unique<verify::RealConfig>(t, o));
      migrations.push_back(0);
      const std::size_t lane_idx = migrations.size() - 1;
      lanes.back()->packet_space().subscribe_migration(
          [&migrations, lane_idx] { ++migrations[lane_idx]; });
    };
    for (const dpm::BackendKind backend : {dpm::BackendKind::kBdd, dpm::BackendKind::kAuto}) {
      for (const unsigned threads : kLaneThreads) add_lane(backend, false, threads);
    }
    for (const unsigned threads : kLaneThreads) {
      add_lane(dpm::BackendKind::kAuto, true, threads);
    }
    const std::size_t kAutoBase = std::size(kLaneThreads);
    const std::size_t kReclaimBase = 2 * std::size(kLaneThreads);

    std::vector<verify::PolicyId> policies;
    for (int p = 0; p < 4; ++p) {
      const auto src = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      auto dst = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
      if (dst == src) dst = (dst + 1) % static_cast<topo::NodeId>(t.node_count());
      const bool isolated = rng.next_bool(0.25);
      verify::PolicyId id = 0;
      for (auto& lane : lanes) {
        id = isolated
                 ? lane->require_isolated(t.node(src).name, t.node(dst).name,
                                          config::host_prefix(dst))
                 : lane->require_reachable(t.node(src).name, t.node(dst).name,
                                           config::host_prefix(dst));
      }
      policies.push_back(id);
    }

    std::vector<topo::LinkId> failed;
    for (int step = -1; step < 4; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      if (step == kAclStep) {
        // The forced migration point: the first multi-field predicate of the
        // run. Every lane sees the identical ACL.
        const auto node = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
        const auto adj = t.adjacencies(node);
        const auto& ifc = t.iface(adj[rng.next_below(adj.size())].iface).name;
        config::attach_random_acl(cfg, t, t.node(node).name, ifc, rng.next_bool(0.5),
                                  static_cast<unsigned>(rng.next_in(1, 4)), rng);
      } else if (step >= 0) {
        const double dice = rng.next_double();
        if (dice < 0.35) {
          const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
          config::fail_link(cfg, t, l);
          failed.push_back(l);
        } else if (dice < 0.55 && !failed.empty()) {
          const auto idx = rng.next_below(failed.size());
          config::restore_link(cfg, t, failed[idx]);
          failed.erase(failed.begin() + static_cast<std::ptrdiff_t>(idx));
        } else if (dice < 0.7) {
          const auto victim = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
          const auto holder = static_cast<topo::NodeId>(rng.next_below(t.node_count()));
          auto& routes = cfg.devices.at(t.node(holder).name).static_routes;
          if (routes.empty()) {
            routes.push_back({config::host_prefix(victim), config::kNullInterface, 1});
          } else {
            routes.pop_back();
          }
        } else if (!bgp) {
          const auto l = static_cast<topo::LinkId>(rng.next_below(t.link_count()));
          const topo::Link& lk = t.link(l);
          config::set_ospf_cost(cfg, t.node(lk.a).name, t.iface(lk.a_iface).name,
                                static_cast<std::uint32_t>(rng.next_in(1, 100)));
        } else {
          const auto adj = t.adjacencies(0);
          const auto& ifc = t.iface(adj[rng.next_below(adj.size())].iface).name;
          config::set_local_pref(cfg, t.node(0).name, ifc,
                                 rng.next_bool(0.5) ? 150u : config::kDefaultLocalPref);
        }
      }

      std::vector<Semantics> reports;
      for (auto& lane : lanes) reports.push_back(Semantics::of(lane->apply(cfg).check));

      // Backend state: auto lanes run interval atoms strictly before the ACL
      // step and BDDs (after exactly one migration) from it onwards; pinned
      // lanes never migrate.
      for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
        const bool pinned_bdd = lane < kAutoBase;
        const dpm::PacketSpace& space = lanes[lane]->packet_space();
        if (pinned_bdd) {
          EXPECT_EQ(space.active_backend(), dpm::BackendKind::kBdd);
          EXPECT_EQ(migrations[lane], 0) << "lane " << lane;
        } else if (step < kAclStep) {
          EXPECT_EQ(space.active_backend(), dpm::BackendKind::kInterval)
              << "lane " << lane;
          EXPECT_EQ(migrations[lane], 0) << "lane " << lane;
        } else {
          EXPECT_EQ(space.active_backend(), dpm::BackendKind::kBdd) << "lane " << lane;
          EXPECT_TRUE(space.migrated()) << "lane " << lane;
          EXPECT_EQ(migrations[lane], 1) << "lane " << lane;
        }
      }

      // Full-report bit-identity across every non-reclaim lane: both
      // backends, all thread counts — EC ids and all.
      for (std::size_t lane = 1; lane < kReclaimBase; ++lane) {
        EXPECT_TRUE(reports[0] == reports[lane])
            << "lane " << lane << " report differs from pinned-BDD threads=1";
      }
      // Reclaim lanes: bit-identical among themselves, verdict/pair-level
      // equivalent to the rest (EC ids legitimately renumber after merges).
      for (std::size_t i = 1; i < std::size(kLaneThreads); ++i) {
        EXPECT_TRUE(reports[kReclaimBase] == reports[kReclaimBase + i])
            << "reclaim-auto lane threads=" << kLaneThreads[i] << " differs";
      }
      EXPECT_EQ(lanes[kReclaimBase]->checker().reachable_pairs(),
                lanes[0]->checker().reachable_pairs());

      // Identical verdicts and identical explain answers everywhere. The
      // witness comparison is the sharp end: same witness EC id, same
      // concrete packet — pick_one agrees bit for bit across backends.
      for (const verify::PolicyId id : policies) {
        const explain::Explanation ref = explain::explain_policy(*lanes[0], id, nullptr);
        for (std::size_t lane = 1; lane < lanes.size(); ++lane) {
          SCOPED_TRACE("policy " + std::to_string(id) + " lane " + std::to_string(lane));
          EXPECT_EQ(lanes[0]->checker().policy_satisfied(id),
                    lanes[lane]->checker().policy_satisfied(id));
          const explain::Explanation e = explain::explain_policy(*lanes[lane], id, nullptr);
          EXPECT_EQ(e.satisfied, ref.satisfied);
          EXPECT_EQ(e.has_witness, ref.has_witness);
          if (lane < kReclaimBase) {
            EXPECT_EQ(e.witness_ec, ref.witness_ec);
            EXPECT_EQ(e.witness, ref.witness);
          }
        }
      }

      // permits() never fell back to a live BDD query in any lane, on either
      // backend, before or after migration.
      for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
        EXPECT_EQ(lanes[lane]->model().permit_fallback_count(), 0u)
            << "permits() BDD fallback reached in lane " << lane;
      }

      if (::testing::Test::HasFailure()) return;
    }
  }
}

}  // namespace
}  // namespace rcfg
