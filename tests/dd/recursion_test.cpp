// Recursive (feedback) dataflow tests: the engine's contract for recursion
// is that derivations must be *well-founded* — each derived tuple carries a
// strictly-growing bounded measure (here: a loop-free path), exactly like
// the route tuples in rcfg::routing. Under that contract, insertions AND
// deletions converge to the unique fixpoint. The tests also exercise the
// divergence detectors on a deliberately oscillating program (paper §6).

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>
#include <vector>

#include "core/rng.h"
#include "dd/operators.h"

namespace rcfg::dd {
namespace {

using Edge = std::pair<int, int>;
using Path = std::vector<int>;  // nodes visited, starting at the source

/// Reachability-with-paths program: reach(path) holds for every loop-free
/// path from `source`. Reachable nodes = distinct projection of path heads.
struct ReachProgram {
  Graph graph;
  Input<int>* sources = nullptr;
  Input<Edge>* edges = nullptr;
  Output<int>* reachable = nullptr;

  ReachProgram() {
    sources = &graph.make<Input<int>>("sources");
    edges = &graph.make<Input<Edge>>("edges");

    auto& paths = graph.make<Concat<Path>>("paths");
    auto& seed = graph.make<Map<int, Path>>(sources->out,
                                            [](const int& s) { return Path{s}; }, "seed");
    paths.add_input(seed.out);

    // Key paths by their last node, join with edges keyed by tail.
    auto& keyed_paths = graph.make<Map<Path, std::pair<int, Path>>>(
        paths.out, [](const Path& p) { return std::pair<int, Path>{p.back(), p}; },
        "key_paths");
    auto& keyed_edges = graph.make<Map<Edge, std::pair<int, int>>>(
        edges->out, [](const Edge& e) { return std::pair<int, int>{e.first, e.second}; },
        "key_edges");
    auto& extended = graph.make<Join<int, Path, int, Path>>(
        keyed_paths.out, keyed_edges.out,
        [](const int&, const Path& p, const int& to) {
          Path q = p;
          q.push_back(to);
          return q;
        },
        "extend");
    // Loop check: drop any path that revisits a node. This is what makes
    // the recursion well-founded and deletion-safe.
    auto& loop_free = graph.make<Filter<Path>>(
        extended.out,
        [](const Path& p) {
          return std::find(p.begin(), p.end() - 1, p.back()) == p.end() - 1;
        },
        "loop_check");
    paths.add_input(loop_free.out);

    auto& heads = graph.make<Map<Path, int>>(
        paths.out, [](const Path& p) { return p.back(); }, "heads");
    auto& nodes = graph.make<Distinct<int>>(heads.out, "distinct_nodes");
    reachable = &graph.make<Output<int>>(nodes.out, "reachable");
  }
};

std::set<int> bfs(const std::set<Edge>& edges, int source) {
  std::set<int> seen{source};
  std::queue<int> q;
  q.push(source);
  while (!q.empty()) {
    const int n = q.front();
    q.pop();
    for (const Edge& e : edges) {
      if (e.first == n && !seen.contains(e.second)) {
        seen.insert(e.second);
        q.push(e.second);
      }
    }
  }
  return seen;
}

std::set<int> current_nodes(const Output<int>& out) {
  std::set<int> s;
  for (const auto& [n, w] : out.current()) {
    EXPECT_EQ(w, 1);
    s.insert(n);
  }
  return s;
}

TEST(Recursion, ReachabilityOnDag) {
  ReachProgram p;
  p.sources->insert(0);
  for (const Edge& e : {Edge{0, 1}, Edge{1, 2}, Edge{0, 2}, Edge{3, 4}}) p.edges->insert(e);
  p.graph.commit();
  EXPECT_EQ(current_nodes(*p.reachable), (std::set<int>{0, 1, 2}));
}

TEST(Recursion, InsertionExtendsReachability) {
  ReachProgram p;
  p.sources->insert(0);
  p.edges->insert({0, 1});
  p.graph.commit();
  EXPECT_EQ(current_nodes(*p.reachable), (std::set<int>{0, 1}));

  p.edges->insert({1, 2});
  p.graph.commit();
  EXPECT_EQ(current_nodes(*p.reachable), (std::set<int>{0, 1, 2}));
}

TEST(Recursion, DeletionThroughCycleIsCorrect) {
  // The classic incremental-view-maintenance trap: 1->2->3->1 is a cycle
  // that could "self-support" reachability after the entry edge 0->1 is
  // deleted. Path well-foundedness prevents that.
  ReachProgram p;
  p.sources->insert(0);
  for (const Edge& e : {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}, Edge{3, 1}}) p.edges->insert(e);
  p.graph.commit();
  EXPECT_EQ(current_nodes(*p.reachable), (std::set<int>{0, 1, 2, 3}));

  p.edges->remove({0, 1});
  p.graph.commit();
  EXPECT_EQ(current_nodes(*p.reachable), (std::set<int>{0}));
}

TEST(Recursion, AlternativePathSurvivesDeletion) {
  ReachProgram p;
  p.sources->insert(0);
  for (const Edge& e : {Edge{0, 1}, Edge{0, 2}, Edge{2, 1}, Edge{1, 3}}) p.edges->insert(e);
  p.graph.commit();
  EXPECT_EQ(current_nodes(*p.reachable), (std::set<int>{0, 1, 2, 3}));

  p.edges->remove({0, 1});  // 1 still reachable via 2
  p.graph.commit();
  EXPECT_EQ(current_nodes(*p.reachable), (std::set<int>{0, 1, 2, 3}));
}

TEST(Recursion, MultipleSources) {
  ReachProgram p;
  p.sources->insert(0);
  p.sources->insert(5);
  p.edges->insert({5, 6});
  p.edges->insert({0, 1});
  p.graph.commit();
  EXPECT_EQ(current_nodes(*p.reachable), (std::set<int>{0, 1, 5, 6}));

  p.sources->remove(5);
  p.graph.commit();
  EXPECT_EQ(current_nodes(*p.reachable), (std::set<int>{0, 1}));
}

/// Property: random edit sequences against a BFS oracle, on dense little
/// graphs full of cycles.
TEST(RecursionProperty, RandomEditsMatchBfsOracle) {
  core::Rng rng{77};
  constexpr int kNodes = 8;

  for (int trial = 0; trial < 5; ++trial) {
    ReachProgram p;
    p.sources->insert(0);
    std::set<Edge> edges;

    for (int step = 0; step < 60; ++step) {
      const Edge e{static_cast<int>(rng.next_below(kNodes)),
                   static_cast<int>(rng.next_below(kNodes))};
      if (e.first == e.second) continue;
      if (edges.contains(e)) {
        if (rng.next_bool(0.5)) {
          edges.erase(e);
          p.edges->remove(e);
        }
      } else {
        edges.insert(e);
        p.edges->insert(e);
      }
      if (rng.next_bool(0.25)) {
        p.graph.commit();
        EXPECT_EQ(current_nodes(*p.reachable), bfs(edges, 0))
            << "trial " << trial << " step " << step;
      }
    }
    p.graph.commit();
    EXPECT_EQ(current_nodes(*p.reachable), bfs(edges, 0));
  }
}

// ---------------------------------------------------------------------------
// Divergence detection (paper §6)
// ---------------------------------------------------------------------------

/// A deliberately ill-founded program: a reduce whose output flips a marker
/// tuple on and off through a feedback edge, mimicking a BGP configuration
/// with no stable converged state.
struct OscillatorProgram {
  Graph graph;
  Input<std::pair<int, int>>* seed = nullptr;

  OscillatorProgram() {
    seed = &graph.make<Input<std::pair<int, int>>>("seed");
    auto& hub = graph.make<Concat<std::pair<int, int>>>("hub");
    hub.add_input(seed->out);
    auto& flip = graph.make<Reduce<int, int, std::pair<int, int>>>(
        hub.out,
        [](const int& k, const ZSet<int>& group, std::vector<std::pair<int, int>>& out) {
          // If the marker (1) is present, emit nothing (retract it);
          // if absent, emit it. No fixpoint exists.
          if (group.weight(1) <= 0) out.push_back({k, 1});
        },
        "flip");
    hub.add_input(flip.out);
  }
};

TEST(Divergence, FlushBudgetExceededThrows) {
  OscillatorProgram p;
  p.graph.set_flush_budget(10'000);
  p.graph.set_recurrence_threshold(0);  // force the plain budget path
  p.seed->insert({0, 0});
  EXPECT_THROW(p.graph.commit(), NonterminationError);
}

TEST(Divergence, RecurringStateDetectedEarly) {
  OscillatorProgram p;
  p.graph.set_flush_budget(1'000'000);
  p.graph.set_recurrence_threshold(50);
  p.seed->insert({0, 0});
  EXPECT_THROW(p.graph.commit(), RecurringStateError);
  // The heuristic must fire orders of magnitude before the budget.
  EXPECT_LT(p.graph.last_commit_flushes(), 1'000'000u);
}

TEST(Divergence, ConvergentProgramUnaffectedByDetectors) {
  ReachProgram p;
  p.graph.set_recurrence_threshold(1);  // hyper-sensitive
  p.sources->insert(0);
  for (int i = 0; i < 6; ++i) p.edges->insert({i, i + 1});
  EXPECT_NO_THROW(p.graph.commit());
  EXPECT_EQ(current_nodes(*p.reachable).size(), 7u);
}

}  // namespace
}  // namespace rcfg::dd
