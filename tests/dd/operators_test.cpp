#include "dd/operators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/rng.h"

namespace rcfg::dd {
namespace {

TEST(Input, SetToStagesMinimalDelta) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& out = g.make<Output<int>>(in.out);

  in.insert(1);
  in.insert(2);
  g.commit();
  EXPECT_EQ(out.current().weight(1), 1);
  EXPECT_EQ(out.current().weight(2), 1);

  ZSet<int> target;
  target.add(2, 1);
  target.add(3, 1);
  in.set_to(target);
  g.commit();

  const ZSet<int> d = out.take_delta();
  // Across both commits: 1 appeared then vanished (net +1 -1), 2 stays +1,
  // 3 appears. take_delta accumulates since last drain (never drained).
  EXPECT_EQ(d.weight(1), 0);
  EXPECT_EQ(d.weight(2), 1);
  EXPECT_EQ(d.weight(3), 1);
  EXPECT_EQ(out.current(), target);
}

TEST(Input, InsertRemoveCancelBeforeCommit) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& out = g.make<Output<int>>(in.out);
  in.insert(5);
  in.remove(5);
  g.commit();
  EXPECT_TRUE(out.current().empty());
}

TEST(MapFilter, TransformAndDrop) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& doubled = g.make<Map<int, int>>(in.out, [](const int& x) { return 2 * x; });
  auto& evens = g.make<Filter<int>>(doubled.out, [](const int& x) { return x % 4 == 0; });
  auto& out = g.make<Output<int>>(evens.out);

  for (int i = 1; i <= 4; ++i) in.insert(i);
  g.commit();
  // doubled: 2 4 6 8; keep multiples of 4: 4, 8
  EXPECT_EQ(out.current().size(), 2u);
  EXPECT_EQ(out.current().weight(4), 1);
  EXPECT_EQ(out.current().weight(8), 1);

  in.remove(2);
  g.commit();
  EXPECT_EQ(out.current().weight(4), 0);
}

TEST(Map, CollisionsAccumulateWeight) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& mod = g.make<Map<int, int>>(in.out, [](const int& x) { return x % 2; });
  auto& out = g.make<Output<int>>(mod.out);
  for (int i = 0; i < 6; ++i) in.insert(i);
  g.commit();
  EXPECT_EQ(out.current().weight(0), 3);
  EXPECT_EQ(out.current().weight(1), 3);
}

TEST(FlatMap, ExpandsWithWeights) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& fm = g.make<FlatMap<int, int>>(in.out, [](const int& x, std::vector<int>& out) {
    for (int i = 0; i < x; ++i) out.push_back(i);
  });
  auto& out = g.make<Output<int>>(fm.out);
  in.insert(3);
  g.commit();
  EXPECT_EQ(out.current().weight(0), 1);
  EXPECT_EQ(out.current().weight(2), 1);

  in.insert(2);  // adds another 0 and 1
  g.commit();
  EXPECT_EQ(out.current().weight(0), 2);
  EXPECT_EQ(out.current().weight(1), 2);
  EXPECT_EQ(out.current().weight(2), 1);

  in.remove(3);
  g.commit();
  EXPECT_EQ(out.current().weight(2), 0);
  EXPECT_EQ(out.current().weight(0), 1);
}

using KV = std::pair<int, std::string>;
using KW = std::pair<int, int>;

TEST(Join, MatchesOnKey) {
  Graph g;
  auto& left = g.make<Input<KV>>();
  auto& right = g.make<Input<KW>>();
  auto& j = g.make<Join<int, std::string, int, std::string>>(
      left.out, right.out,
      [](const int& k, const std::string& a, const int& b) {
        return a + ":" + std::to_string(k * b);
      });
  auto& out = g.make<Output<std::string>>(j.out);

  left.insert({1, "a"});
  left.insert({2, "b"});
  right.insert({1, 10});
  g.commit();
  EXPECT_EQ(out.current().weight("a:10"), 1);
  EXPECT_EQ(out.current().size(), 1u);

  right.insert({2, 20});
  g.commit();
  EXPECT_EQ(out.current().weight("b:40"), 1);

  left.remove({1, "a"});
  g.commit();
  EXPECT_EQ(out.current().weight("a:10"), 0);
  EXPECT_EQ(out.current().size(), 1u);
}

TEST(Join, SimultaneousDeltasBothSides) {
  Graph g;
  auto& left = g.make<Input<KW>>();
  auto& right = g.make<Input<KW>>();
  auto& j = g.make<Join<int, int, int, int>>(
      left.out, right.out, [](const int&, const int& a, const int& b) { return a + b; });
  auto& out = g.make<Output<int>>(j.out);

  // Insert matching tuples on both sides in the same commit: the bilinear
  // rule must count the cross term exactly once.
  left.insert({7, 1});
  right.insert({7, 2});
  g.commit();
  EXPECT_EQ(out.current().weight(3), 1);

  // Remove both in the same commit.
  left.remove({7, 1});
  right.remove({7, 2});
  g.commit();
  EXPECT_TRUE(out.current().empty());
}

TEST(Join, WeightsMultiply) {
  Graph g;
  auto& left = g.make<Input<KW>>();
  auto& right = g.make<Input<KW>>();
  auto& j = g.make<Join<int, int, int, int>>(
      left.out, right.out, [](const int&, const int& a, const int& b) { return a * 100 + b; });
  auto& out = g.make<Output<int>>(j.out);

  left.update({1, 5}, 2);
  right.update({1, 6}, 3);
  g.commit();
  EXPECT_EQ(out.current().weight(506), 6);
}

TEST(Reduce, MinWithRetraction) {
  Graph g;
  auto& in = g.make<Input<KW>>();
  auto& r = g.make<Reduce<int, int, KW>>(
      in.out, [](const int& k, const ZSet<int>& group, std::vector<KW>& out) {
        int best = INT32_MAX;
        for (const auto& [v, w] : group) best = std::min(best, v);
        out.push_back({k, best});
      });
  auto& out = g.make<Output<KW>>(r.out);

  in.insert({1, 30});
  in.insert({1, 10});
  in.insert({2, 5});
  g.commit();
  EXPECT_EQ(out.current().weight({1, 10}), 1);
  EXPECT_EQ(out.current().weight({2, 5}), 1);
  EXPECT_EQ(out.current().size(), 2u);

  in.remove({1, 10});  // second-best takes over
  g.commit();
  EXPECT_EQ(out.current().weight({1, 10}), 0);
  EXPECT_EQ(out.current().weight({1, 30}), 1);

  in.remove({1, 30});  // group empties: output retracted entirely
  g.commit();
  EXPECT_EQ(out.current().size(), 1u);
  EXPECT_EQ(out.current().weight({2, 5}), 1);
}

TEST(Reduce, UntouchedGroupsNotRecomputed) {
  Graph g;
  int evaluations = 0;
  auto& in = g.make<Input<KW>>();
  auto& r = g.make<Reduce<int, int, KW>>(
      in.out, [&evaluations](const int& k, const ZSet<int>& group, std::vector<KW>& out) {
        ++evaluations;
        int best = INT32_MAX;
        for (const auto& [v, w] : group) best = std::min(best, v);
        out.push_back({k, best});
      });
  auto& out = g.make<Output<KW>>(r.out);

  for (int k = 0; k < 100; ++k) in.insert({k, k});
  g.commit();
  EXPECT_EQ(evaluations, 100);

  in.insert({42, -1});
  g.commit();
  EXPECT_EQ(evaluations, 101);  // only group 42 re-evaluated
  EXPECT_EQ(out.current().weight({42, -1}), 1);
}

TEST(Distinct, SignSemantics) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& d = g.make<Distinct<int>>(in.out);
  auto& out = g.make<Output<int>>(d.out);

  in.update(1, 3);  // three derivations
  g.commit();
  EXPECT_EQ(out.current().weight(1), 1);

  in.update(1, -2);  // still one derivation left
  g.commit();
  EXPECT_EQ(out.current().weight(1), 1);

  in.update(1, -1);  // last derivation gone
  g.commit();
  EXPECT_EQ(out.current().weight(1), 0);
}

TEST(Concat, UnionsInputs) {
  Graph g;
  auto& a = g.make<Input<int>>();
  auto& b = g.make<Input<int>>();
  auto& c = g.make<Concat<int>>();
  c.add_input(a.out);
  c.add_input(b.out);
  auto& out = g.make<Output<int>>(c.out);

  a.insert(1);
  b.insert(1);
  b.insert(2);
  g.commit();
  EXPECT_EQ(out.current().weight(1), 2);
  EXPECT_EQ(out.current().weight(2), 1);
}

TEST(Inspect, SeesEachCommitDelta) {
  Graph g;
  auto& in = g.make<Input<int>>();
  ZSet<int> seen;
  g.make<Inspect<int>>(in.out, [&seen](const ZSet<int>& d) { seen.merge(d); });

  in.insert(1);
  g.commit();
  in.remove(1);
  in.insert(2);
  g.commit();
  EXPECT_EQ(seen.weight(1), 0);
  EXPECT_EQ(seen.weight(2), 1);
}

TEST(Output, TakeDeltaDrains) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& out = g.make<Output<int>>(in.out);
  in.insert(1);
  g.commit();
  EXPECT_EQ(out.take_delta().weight(1), 1);
  EXPECT_TRUE(out.take_delta().empty());  // drained
  in.insert(2);
  g.commit();
  EXPECT_EQ(out.take_delta().weight(2), 1);
}

TEST(Graph, CommitCountsAndIdleCommit) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& out = g.make<Output<int>>(in.out);
  g.commit();  // nothing pending
  EXPECT_EQ(g.last_commit_flushes(), 0u);
  in.insert(1);
  g.commit();
  EXPECT_GE(g.last_commit_flushes(), 2u);
  EXPECT_EQ(g.commit_count(), 2u);
  EXPECT_EQ(out.current().weight(1), 1);
}

/// The central incremental-correctness property at operator level: a
/// pipeline fed by random edit sequences must end in exactly the state a
/// fresh pipeline computes from the final input.
TEST(PipelineProperty, IncrementalEqualsFromScratch) {
  core::Rng rng{2024};

  auto build = [](Graph& g, Input<KW>*& in, Output<KW>*& out) {
    in = &g.make<Input<KW>>();
    auto& filtered =
        g.make<Filter<KW>>(in->out, [](const KW& kv) { return kv.second % 3 != 0; });
    auto& keyed = g.make<Map<KW, KW>>(filtered.out,
                                      [](const KW& kv) { return KW{kv.first % 5, kv.second}; });
    auto& reduced = g.make<Reduce<int, int, KW>>(
        keyed.out, [](const int& k, const ZSet<int>& group, std::vector<KW>& o) {
          int best = INT32_MAX;
          for (const auto& [v, w] : group) best = std::min(best, v);
          o.push_back({k, best});
        });
    out = &g.make<Output<KW>>(reduced.out);
  };

  for (int trial = 0; trial < 10; ++trial) {
    Graph inc;
    Input<KW>* inc_in = nullptr;
    Output<KW>* inc_out = nullptr;
    build(inc, inc_in, inc_out);

    ZSet<KW> contents;
    for (int step = 0; step < 50; ++step) {
      const KW kv{static_cast<int>(rng.next_below(20)), static_cast<int>(rng.next_below(50))};
      if (contents.weight(kv) > 0 && rng.next_bool(0.4)) {
        contents.add(kv, -1);
        inc_in->remove(kv);
      } else {
        contents.add(kv, 1);
        inc_in->insert(kv);
      }
      if (rng.next_bool(0.3)) inc.commit();
    }
    inc.commit();

    Graph scratch;
    Input<KW>* s_in = nullptr;
    Output<KW>* s_out = nullptr;
    build(scratch, s_in, s_out);
    s_in->set_to(contents);
    scratch.commit();

    EXPECT_EQ(inc_out->current(), s_out->current()) << "trial " << trial;
  }
}


TEST(Negate, FlipsWeights) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& neg = g.make<dd::Negate<int>>(in.out);
  auto& out = g.make<Output<int>>(neg.out);
  in.update(1, 3);
  in.update(2, -2);
  g.commit();
  EXPECT_EQ(out.current().weight(1), -3);
  EXPECT_EQ(out.current().weight(2), 2);
}

TEST(Negate, DifferenceViaConcat) {
  // concat(a, negate(b)) materializes a - b: empty iff a == b.
  Graph g;
  auto& a = g.make<Input<int>>();
  auto& b = g.make<Input<int>>();
  auto& neg = g.make<dd::Negate<int>>(b.out);
  auto& diff = g.make<dd::Concat<int>>();
  diff.add_input(a.out);
  diff.add_input(neg.out);
  auto& out = g.make<Output<int>>(diff.out);

  a.insert(1);
  a.insert(2);
  b.insert(1);
  b.insert(2);
  g.commit();
  EXPECT_TRUE(out.current().empty());

  b.insert(3);
  g.commit();
  EXPECT_EQ(out.current().weight(3), -1);
}

TEST(Input, SetToOverridesStagedEdits) {
  Graph g;
  auto& in = g.make<Input<int>>();
  auto& out = g.make<Output<int>>(in.out);
  in.insert(1);
  g.commit();

  in.insert(99);  // staged but never committed...
  ZSet<int> target;
  target.add(2, 1);
  in.set_to(target);  // ...and discarded here
  g.commit();
  EXPECT_EQ(out.current(), target);
}

}  // namespace
}  // namespace rcfg::dd
