#include "dd/zset.h"

#include <gtest/gtest.h>

#include <string>

namespace rcfg::dd {
namespace {

TEST(ZSet, AddConsolidates) {
  ZSet<int> z;
  z.add(1, 2);
  z.add(1, -2);
  EXPECT_TRUE(z.empty());
  EXPECT_EQ(z.weight(1), 0);

  z.add(2, 1);
  z.add(2, 1);
  EXPECT_EQ(z.weight(2), 2);
  EXPECT_EQ(z.size(), 1u);
}

TEST(ZSet, ZeroWeightIgnored) {
  ZSet<int> z;
  z.add(1, 0);
  EXPECT_TRUE(z.empty());
}

TEST(ZSet, MergeIsGroupAddition) {
  ZSet<std::string> a, b;
  a.add("x", 1);
  a.add("y", -1);
  b.add("x", -1);
  b.add("z", 3);
  a.merge(b);
  EXPECT_EQ(a.weight("x"), 0);
  EXPECT_EQ(a.weight("y"), -1);
  EXPECT_EQ(a.weight("z"), 3);
  EXPECT_EQ(a.size(), 2u);
}

TEST(ZSet, MoveMergeIntoEmpty) {
  ZSet<int> a, b;
  b.add(7, 2);
  a.merge(std::move(b));
  EXPECT_EQ(a.weight(7), 2);
  EXPECT_TRUE(b.empty());
}

TEST(ZSet, Difference) {
  ZSet<int> to, from;
  to.add(1, 1);
  to.add(2, 1);
  from.add(2, 1);
  from.add(3, 1);
  const auto d = ZSet<int>::difference(to, from);
  EXPECT_EQ(d.weight(1), 1);
  EXPECT_EQ(d.weight(2), 0);
  EXPECT_EQ(d.weight(3), -1);

  // from + d == to
  ZSet<int> check = from;
  check.merge(d);
  EXPECT_EQ(check, to);
}

TEST(ZSet, IsSetLike) {
  ZSet<int> z;
  z.add(1, 1);
  z.add(2, 5);
  EXPECT_TRUE(z.is_set_like());
  z.add(3, -1);
  EXPECT_FALSE(z.is_set_like());
}

TEST(ZSet, ContentHashOrderIndependent) {
  ZSet<int> a, b;
  a.add(1, 1);
  a.add(2, 2);
  b.add(2, 2);
  b.add(1, 1);
  EXPECT_EQ(a.content_hash(), b.content_hash());

  b.add(3, 1);
  EXPECT_NE(a.content_hash(), b.content_hash());
  EXPECT_EQ(ZSet<int>{}.content_hash(), 0u);
}

TEST(ZSet, WorksWithPairsAndVectors) {
  ZSet<std::pair<int, std::string>> zp;
  zp.add({1, "a"}, 1);
  zp.add({1, "b"}, 1);
  EXPECT_EQ(zp.size(), 2u);

  ZSet<std::vector<int>> zv;
  zv.add({1, 2, 3}, 1);
  zv.add({1, 2, 3}, 1);
  EXPECT_EQ(zv.weight({1, 2, 3}), 2);
}

}  // namespace
}  // namespace rcfg::dd
