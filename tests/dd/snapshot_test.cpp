// Graph snapshot/restore tests: a snapshot captures every operator's
// accumulated state at a quiescent point; restore rewinds the graph (or a
// structurally identical twin — the fork case) to it, clearing any
// leftover pending buffers so the next commit starts clean. That last part
// is what makes restore the sanctioned recovery path after a divergent
// commit: divergence aborts mid-flush with tuples still parked in operator
// pendings.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dd/operators.h"

namespace rcfg::dd {
namespace {

using Entry = std::pair<int, int>;  // (key, value)

/// A little program with every stateful operator kind: Input, Join,
/// Reduce (via feedback), Distinct, Output. keys() reads the distinct
/// joined keys currently derivable.
struct JoinProgram {
  Graph graph;
  Input<Entry>* left = nullptr;
  Input<Entry>* right = nullptr;
  Output<int>* keys = nullptr;

  JoinProgram() {
    left = &graph.make<Input<Entry>>("left");
    right = &graph.make<Input<Entry>>("right");
    auto& joined = graph.make<Join<int, int, int, int>>(
        left->out, right->out,
        [](const int& k, const int&, const int&) { return k; }, "join");
    auto& distinct = graph.make<Distinct<int>>(joined.out, "distinct");
    keys = &graph.make<Output<int>>(distinct.out, "keys");
  }

  std::set<int> current() const {
    std::set<int> s;
    for (const auto& [k, w] : keys->current()) {
      EXPECT_EQ(w, 1);
      s.insert(k);
    }
    return s;
  }
};

/// Feedback program whose key 0 oscillates forever and every other key is
/// stable: a divergence trigger with observable convergent state alongside.
struct MixedOscillator {
  Graph graph;
  Input<Entry>* seed = nullptr;
  Output<Entry>* out = nullptr;

  MixedOscillator() {
    seed = &graph.make<Input<Entry>>("seed");
    auto& hub = graph.make<Concat<Entry>>("hub");
    hub.add_input(seed->out);
    auto& flip = graph.make<Reduce<int, int, Entry>>(
        hub.out,
        [](const int& k, const ZSet<int>& group, std::vector<Entry>& emit) {
          if (k != 0) {
            emit.push_back({k, 2});
            return;
          }
          // Key 0: emit the marker iff absent. No fixpoint exists.
          if (group.weight(1) <= 0) emit.push_back({k, 1});
        },
        "flip");
    hub.add_input(flip.out);
    out = &graph.make<Output<Entry>>(flip.out, "out");
  }
};

TEST(GraphSnapshot, RoundTripRestoresOperatorState) {
  JoinProgram p;
  for (int k = 0; k < 4; ++k) {
    p.left->insert({k, 10 + k});
    p.right->insert({k, 20 + k});
  }
  p.graph.commit();
  ASSERT_EQ(p.current(), (std::set<int>{0, 1, 2, 3}));

  const GraphSnapshot snap = p.graph.snapshot();
  const std::uint64_t commits_at_snap = p.graph.commit_count();

  p.left->remove({1, 11});
  p.right->insert({7, 27});
  p.left->insert({7, 17});
  p.graph.commit();
  ASSERT_EQ(p.current(), (std::set<int>{0, 2, 3, 7}));

  p.graph.restore(snap);
  EXPECT_EQ(p.current(), (std::set<int>{0, 1, 2, 3}));
  EXPECT_EQ(p.graph.commit_count(), commits_at_snap);

  // Incremental work from the restored state: the arrangements must be
  // back too, or this join would mis-derive.
  p.right->remove({2, 22});
  p.graph.commit();
  EXPECT_EQ(p.current(), (std::set<int>{0, 1, 3}));
}

TEST(GraphSnapshot, RestoreIntoStructuralTwin) {
  // The fork case: a snapshot taken on one graph seeds a second graph
  // built by the same deterministic constructor.
  JoinProgram a;
  for (int k = 0; k < 3; ++k) {
    a.left->insert({k, k});
    a.right->insert({k, k});
  }
  a.graph.commit();

  JoinProgram b;
  b.graph.restore(a.graph.snapshot());
  EXPECT_EQ(b.current(), a.current());

  // Both sides evolve identically from here.
  a.left->insert({9, 9});
  a.right->insert({9, 9});
  a.graph.commit();
  b.left->insert({9, 9});
  b.right->insert({9, 9});
  b.graph.commit();
  EXPECT_EQ(b.current(), a.current());
}

TEST(GraphSnapshot, SnapshotRejectsPendingInput) {
  JoinProgram p;
  p.graph.commit();
  p.left->insert({1, 1});
  EXPECT_THROW(p.graph.snapshot(), std::logic_error);
  p.graph.commit();
  EXPECT_NO_THROW(p.graph.snapshot());
}

TEST(GraphSnapshot, RestoreRejectsMismatchedGraph) {
  JoinProgram p;
  p.graph.commit();
  MixedOscillator other;
  EXPECT_THROW(other.graph.restore(p.graph.snapshot()), std::logic_error);
}

TEST(GraphSnapshot, RestoreRecoversFromDivergence) {
  MixedOscillator p;
  p.graph.set_flush_budget(1'000'000);
  p.graph.set_recurrence_threshold(50);

  p.seed->insert({5, 0});
  p.graph.commit();
  const GraphSnapshot snap = p.graph.snapshot();

  p.seed->insert({0, 0});  // the oscillating key
  ASSERT_THROW(p.graph.commit(), NonterminationError);

  // The aborted flush left tuples in operator pendings; restore must clear
  // them, or they would leak into the next commit.
  p.graph.restore(snap);
  p.seed->insert({7, 0});
  p.graph.commit();

  std::set<int> keys;
  for (const auto& [e, w] : p.out->current()) {
    EXPECT_GT(w, 0);
    keys.insert(e.first);
  }
  EXPECT_EQ(keys, (std::set<int>{5, 7}));  // no trace of key 0
}

}  // namespace
}  // namespace rcfg::dd
